// Fig. 16 — lack of correlation between jitter and bit rate / frame
// rate: 1,500 random per-second video samples, Pearson and Spearman.
// Low frame rates are usually user-interaction artifacts (thumbnail
// mode), not network problems.
#include <cstdio>
#include <vector>

#include "analysis/campus_run.h"
#include "bench_common.h"
#include "util/rng.h"
#include "util/stats.h"

using namespace zpm;

int main() {
  bench::banner("Fig. 16", "Lack of Correlation between Jitter and other Metrics");
  const auto& run = analysis::default_campus_run();

  // Collect video samples with a jitter estimate, then draw 1500
  // uniformly (the paper's methodology).
  std::vector<const analysis::SampleRow*> video;
  for (const auto& s : run.samples) {
    if (static_cast<zoom::MediaKind>(s.kind) != zoom::MediaKind::Video) continue;
    if (s.jitter_ms < 0 || s.media_bitrate_bps <= 0) continue;
    video.push_back(&s);
  }
  util::Rng rng(16);
  std::vector<double> jitter, bitrate, fps;
  std::size_t want = std::min<std::size_t>(1500, video.size());
  for (std::size_t i = 0; i < want; ++i) {
    const auto* s = video[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(video.size()) - 1))];
    jitter.push_back(s->jitter_ms);
    bitrate.push_back(s->media_bitrate_bps / 1e6);
    fps.push_back(s->frame_rate);
  }
  std::printf("samples: %zu random 1-second video bins (of %zu available)\n\n",
              want, video.size());

  util::TextTable table;
  table.header({"Pair", "Pearson r", "Spearman rho"},
               {util::Align::Left, util::Align::Right, util::Align::Right});
  double p_rate = util::pearson(jitter, bitrate);
  double s_rate = util::spearman(jitter, bitrate);
  double p_fps = util::pearson(jitter, fps);
  double s_fps = util::spearman(jitter, fps);
  table.row({"jitter vs bit rate (16a)", util::fixed(p_rate, 3), util::fixed(s_rate, 3)});
  table.row({"jitter vs frame rate (16b)", util::fixed(p_fps, 3), util::fixed(s_fps, 3)});
  std::printf("%s\n", table.render().c_str());

  // The two frame-rate modes visible as clusters (Fig. 16b).
  int near14 = 0, near28 = 0;
  for (double f : fps) {
    if (f >= 11 && f <= 17) ++near14;
    if (f >= 24 && f <= 31) ++near28;
  }
  std::printf("frame-rate clusters: %.0f%% near 14 fps, %.0f%% near 28 fps\n",
              100.0 * near14 / static_cast<double>(want),
              100.0 * near28 / static_cast<double>(want));
  std::printf("\npaper: no direct correlation between jitter and either metric\n");
  std::printf("(bit-/frame-rate adaptations mostly NOT network-driven).\n");
  std::printf("reproduced: |r| < 0.3 for both pairs: %s\n",
              (std::abs(p_rate) < 0.3 && std::abs(p_fps) < 0.3) ? "yes" : "NO");
  return 0;
}
