// Fig. 12 — frame-level interarrival time: RTP packets arrive in
// back-to-back bursts per frame; the frame-level view (first packet per
// RTP timestamp) recovers the encoder's pacing, and the packetization
// time follows the RTP timestamp increments.
#include <cstdio>

#include "bench_common.h"
#include "core/analyzer.h"
#include "sim/meeting.h"
#include "util/stats.h"

using namespace zpm;

int main() {
  bench::banner("Fig. 12", "Frame-level Interarrival Time Calculation");

  sim::MeetingConfig mc;
  mc.seed = 12;
  mc.start = util::Timestamp::from_seconds(0);
  mc.duration = util::Duration::seconds(60);
  sim::ParticipantConfig a, b;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  a.video.reduced_mode_fraction = 0.0;
  b.ip = net::Ipv4Addr(10, 8, 0, 2);
  mc.participants = {a, b};
  sim::MeetingSim sim(mc);

  core::AnalyzerConfig cfg;
  core::Analyzer analyzer(cfg);
  while (auto pkt = sim.next_packet()) analyzer.offer(*pkt);
  analyzer.finish();

  const core::StreamInfo* video = nullptr;
  for (const auto& s : analyzer.streams().streams())
    if (s->kind == zoom::MediaKind::Video && s->client_ip == a.ip &&
        s->direction == core::StreamDirection::ToSfu)
      video = s.get();
  if (!video) return 1;

  const auto& frames = video->metrics->frames();
  std::printf("stream: %zu completed frames\n\n", frames.size());
  std::printf("%-8s %-8s %-10s %-12s %-12s %s\n", "frame", "packets", "size [B]",
              "pkt'ization", "delivery", "RTP ts delta");
  std::printf("---------------------------------------------------------------\n");
  util::RunningStats pkt_time, delivery, per_frame_packets;
  std::int64_t prev_ts = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto& f = frames[i];
    per_frame_packets.add(f.packets);
    delivery.add(f.delay().ms());
    if (f.packetization_time) pkt_time.add(f.packetization_time->ms());
    if (i >= 10 && i < 18) {
      std::printf("%-8zu %-8u %-10u %-12s %-12s %lld\n", i, f.packets,
                  f.payload_bytes,
                  f.packetization_time
                      ? (util::fixed(f.packetization_time->ms(), 1) + " ms").c_str()
                      : "-",
                  (util::fixed(f.delay().ms(), 2) + " ms").c_str(),
                  static_cast<long long>(f.rtp_timestamp - prev_ts));
    }
    prev_ts = f.rtp_timestamp;
  }

  std::printf("\nburst structure (paper: packets of a frame go back-to-back,\n");
  std::printf("then a pause until the next frame):\n");
  std::printf("  mean packets/frame:      %.1f\n", per_frame_packets.mean());
  std::printf("  mean intra-frame delivery: %.2f ms (back-to-back burst)\n",
              delivery.mean());
  std::printf("  mean packetization time:  %.1f ms (~encoder frame interval)\n",
              pkt_time.mean());
  std::printf("  delivery << packetization: %s (jitter buffer stays full,\n",
              delivery.mean() * 5 < pkt_time.mean() ? "yes" : "NO");
  std::printf("  §5.5 stall criterion not triggered)\n");
  return 0;
}
