// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <cstdio>
#include <string>

#include "util/strings.h"
#include "util/table.h"

namespace zpm::bench {

/// Prints the standard experiment banner.
inline void banner(const std::string& id, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("(reproduction on synthetic campus traffic; compare shapes,\n");
  std::printf(" not absolute numbers — see EXPERIMENTS.md)\n");
  std::printf("==============================================================\n\n");
}

/// Renders a sparkline-style ASCII bar of width proportional to
/// value/max (for time-series figures).
inline std::string bar(double value, double max, int width = 50) {
  if (max <= 0) return "";
  int n = static_cast<int>(value / max * width + 0.5);
  if (n > width) n = width;
  return std::string(static_cast<std::size_t>(n), '#');
}

}  // namespace zpm::bench
