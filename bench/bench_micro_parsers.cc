// Engineering microbenchmarks: parser hot paths (google-benchmark).
#include <benchmark/benchmark.h>

#include "net/build.h"
#include "net/packet.h"
#include "proto/rtp.h"
#include "proto/stun.h"
#include "sim/wire.h"
#include "util/rng.h"
#include "zoom/classify.h"

namespace {

using namespace zpm;

std::vector<std::uint8_t> sample_media_payload(bool server) {
  util::Rng rng(1);
  sim::MediaPacketSpec spec;
  spec.encap_type = zoom::MediaEncapType::Video;
  spec.payload_type = zoom::pt::kVideoMain;
  spec.ssrc = 0x42;
  spec.packets_in_frame = 3;
  spec.payload_bytes = 1100;
  auto inner = sim::build_media_payload(spec, rng);
  return server ? sim::wrap_sfu(inner, 7, true) : inner;
}

void BM_DissectServerMedia(benchmark::State& state) {
  auto payload = sample_media_payload(true);
  for (auto _ : state) {
    auto zp = zoom::dissect(payload, zoom::Transport::ServerBased);
    benchmark::DoNotOptimize(zp);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_DissectServerMedia);

void BM_DissectP2pMedia(benchmark::State& state) {
  auto payload = sample_media_payload(false);
  for (auto _ : state) {
    auto zp = zoom::dissect(payload, zoom::Transport::P2P);
    benchmark::DoNotOptimize(zp);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}
BENCHMARK(BM_DissectP2pMedia);

void BM_RtpParse(benchmark::State& state) {
  proto::RtpHeader h;
  h.payload_type = 98;
  h.sequence = 100;
  h.timestamp = 90000;
  h.ssrc = 0x42;
  util::ByteWriter w;
  h.serialize(w);
  w.fill(1100, 0xab);
  auto bytes = w.take();
  for (auto _ : state) {
    auto parsed = proto::parse_rtp_packet(bytes);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_RtpParse);

void BM_StunParse(benchmark::State& state) {
  std::array<std::uint8_t, 12> txn{};
  util::ByteWriter w;
  proto::make_binding_request(txn).serialize(w);
  auto bytes = w.take();
  for (auto _ : state) {
    auto parsed = proto::StunMessage::parse(bytes);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_StunParse);

void BM_FullFrameDecode(benchmark::State& state) {
  auto payload = sample_media_payload(true);
  auto pkt = net::build_udp(util::Timestamp::from_seconds(1),
                            net::Ipv4Addr(10, 8, 0, 1), 40000,
                            net::Ipv4Addr(170, 114, 0, 10), 8801, payload);
  for (auto _ : state) {
    auto view = net::decode_packet(pkt);
    benchmark::DoNotOptimize(view);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(pkt.data.size()));
}
BENCHMARK(BM_FullFrameDecode);

}  // namespace

BENCHMARK_MAIN();
