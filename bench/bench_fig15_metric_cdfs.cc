// Fig. 15 — distributions of the per-second performance metrics per
// media type over the campus trace: (a) data rate, (b) frame rate,
// (c) frame size, (d) frame-level jitter (video only, §5.4).
#include <cstdio>

#include "analysis/campus_run.h"
#include "bench_common.h"
#include "util/stats.h"

using namespace zpm;

namespace {

void print_cdf(const char* title, const char* unit,
               std::map<std::string, util::QuantileSketch>& by_kind,
               int decimals = 1) {
  std::printf("%s\n", title);
  util::TextTable table;
  table.header({"Series", "N", "p10", "p25", "p50", "p75", "p90", "p99"},
               {util::Align::Left, util::Align::Right, util::Align::Right,
                util::Align::Right, util::Align::Right, util::Align::Right,
                util::Align::Right, util::Align::Right});
  for (auto& [name, sketch] : by_kind) {
    if (sketch.count() == 0) continue;
    table.row({name + " [" + unit + "]", std::to_string(sketch.count()),
               util::fixed(sketch.quantile(0.10), decimals),
               util::fixed(sketch.quantile(0.25), decimals),
               util::fixed(sketch.quantile(0.50), decimals),
               util::fixed(sketch.quantile(0.75), decimals),
               util::fixed(sketch.quantile(0.90), decimals),
               util::fixed(sketch.quantile(0.99), decimals)});
  }
  std::printf("%s\n", table.render().c_str());
}

const char* kind_name(std::uint8_t k) {
  switch (static_cast<zoom::MediaKind>(k)) {
    case zoom::MediaKind::Audio: return "Audio";
    case zoom::MediaKind::Video: return "Video";
    case zoom::MediaKind::ScreenShare: return "Screen Share";
  }
  return "?";
}

}  // namespace

int main() {
  bench::banner("Fig. 15", "Distribution of Performance Metrics per Media Type");
  const auto& run = analysis::default_campus_run();

  std::map<std::string, util::QuantileSketch> rate, fps, jitter;
  double screen_zero_fps = 0, screen_secs = 0;
  double video_low_fps = 0, video_secs = 0, video_high_jitter = 0, video_jitter_n = 0;
  for (const auto& s : run.samples) {
    std::string name = kind_name(s.kind);
    if (s.media_bitrate_bps > 0)
      rate[name].add(s.media_bitrate_bps / 1e6);
    auto kind = static_cast<zoom::MediaKind>(s.kind);
    if (kind != zoom::MediaKind::Audio) {
      fps[name].add(s.frame_rate);
      if (kind == zoom::MediaKind::ScreenShare) {
        ++screen_secs;
        if (s.frame_rate == 0) ++screen_zero_fps;
      }
      if (kind == zoom::MediaKind::Video) {
        ++video_secs;
        if (s.frame_rate < 20) ++video_low_fps;
        if (s.jitter_ms >= 0) {
          jitter[name].add(s.jitter_ms);
          ++video_jitter_n;
          if (s.jitter_ms > 20) ++video_high_jitter;
        }
      }
    }
  }
  std::map<std::string, util::QuantileSketch> sizes;
  for (const auto& [kind, list] : run.frame_sizes) {
    auto& sketch = sizes[kind_name(kind)];
    for (float v : list) sketch.add(v);
  }

  print_cdf("(a) Data Rate", "Mbit/s", rate, 3);
  print_cdf("(b) Frame Rate (video & screen share)", "fps", fps);
  print_cdf("(c) Frame Size", "byte", sizes);
  print_cdf("(d) Frame-level Jitter (video; 90 kHz clock known)", "ms", jitter);

  std::printf("paper shape checks:\n");
  double screen_zero_frac = screen_secs ? screen_zero_fps / screen_secs : 0;
  std::printf("  ~15%% of screen-share fps samples are zero: measured %.0f%%\n",
              screen_zero_frac * 100);
  std::printf("  screen-share rate CDF closer to audio than video: median "
              "%.2f / %.2f / %.2f Mbit/s (audio/screen/video)\n",
              rate["Audio"].quantile(0.5), rate["Screen Share"].quantile(0.5),
              rate["Video"].quantile(0.5));
  std::printf("  video fps bimodal around ~14 and ~28: p25 %.0f, p75 %.0f\n",
              fps["Video"].quantile(0.25), fps["Video"].quantile(0.75));
  std::printf("  majority of video frames < 2000 B: p50 %.0f B\n",
              sizes["Video"].quantile(0.5));
  std::printf("  over half of screen-share frames small, long tail: p50 %.0f B, "
              "p99 %.0f B\n",
              sizes["Screen Share"].quantile(0.5),
              sizes["Screen Share"].quantile(0.99));
  std::printf("  most video jitter < 20 ms, long tail: p90 %.1f ms\n",
              jitter["Video"].quantile(0.9));
  std::printf("  low fps (<20) far more common than high jitter (>20 ms): "
              "%.0f%% vs %.0f%%\n",
              100 * video_low_fps / std::max(video_secs, 1.0),
              100 * video_high_jitter / std::max(video_jitter_n, 1.0));
  return 0;
}
