// Ablation — why the paper's techniques work at all: Zoom's SFU
// forwards RTP headers verbatim ("Zoom's SFU does not translate
// timestamps or sequence numbers", §4.3). This bench runs the same
// meeting against a hypothetical header-rewriting SFU and shows that
// duplicate-stream matching (and with it meeting grouping and the
// RTP-copy RTT method) collapses.
#include <cstdio>

#include "bench_common.h"
#include "core/analyzer.h"
#include "sim/meeting.h"

using namespace zpm;

namespace {

struct Outcome {
  std::uint64_t media;       // distinct media ids found
  std::size_t meetings;
  std::size_t rtt_samples;   // §5.3 method-1 probes
};

Outcome run(bool rewrites) {
  sim::MeetingConfig mc;
  mc.seed = 700;
  mc.start = util::Timestamp::from_seconds(0);
  mc.duration = util::Duration::seconds(45);
  mc.sfu_rewrites_rtp = rewrites;
  sim::ParticipantConfig a, b;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  b.ip = net::Ipv4Addr(10, 8, 0, 2);
  mc.participants = {a, b};
  sim::MeetingSim sim(mc);
  core::AnalyzerConfig cfg;
  core::Analyzer analyzer(cfg);
  while (auto pkt = sim.next_packet()) analyzer.offer(*pkt);
  analyzer.finish();
  return Outcome{analyzer.streams().media_count(),
                 analyzer.meetings().meeting_count(),
                 analyzer.sfu_rtt_samples().size()};
}

}  // namespace

int main() {
  bench::banner("Ablation", "Verbatim-forwarding SFU (Zoom) vs rewriting SFU");

  Outcome zoom_like = run(false);
  Outcome rewriting = run(true);

  util::TextTable table;
  table.header({"SFU behaviour", "Distinct media", "Meetings", "RTT probes"},
               {util::Align::Left, util::Align::Right, util::Align::Right,
                util::Align::Right});
  table.row({"forwards RTP verbatim (Zoom)", std::to_string(zoom_like.media),
             std::to_string(zoom_like.meetings),
             std::to_string(zoom_like.rtt_samples)});
  table.row({"rewrites seq+ts per receiver", std::to_string(rewriting.media),
             std::to_string(rewriting.meetings),
             std::to_string(rewriting.rtt_samples)});
  std::printf("%s\n", table.render().c_str());

  std::printf("two-party meeting, 4 real media streams. With verbatim\n");
  std::printf("forwarding, uplink+downlink copies collapse to 4 media and one\n");
  std::printf("meeting, and every forwarded packet is an RTT probe. A\n");
  std::printf("rewriting SFU makes every wire stream look like fresh media —\n");
  std::printf("no copies to match (%llu media), and zero RTT probes: the\n",
              static_cast<unsigned long long>(rewriting.media));
  std::printf("paper's §4.3/§5.3 techniques are possible *because* Zoom's SFU\n");
  std::printf("is a pure forwarder.\n\n");
  std::printf("checks: verbatim media==4: %s | rewriting probes==0: %s\n",
              zoom_like.media == 4 ? "yes" : "NO",
              rewriting.rtt_samples == 0 ? "yes" : "NO");
  return 0;
}
