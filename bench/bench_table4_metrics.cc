// Table 4 — the metric capability matrix: which metrics need Zoom
// header parsing, which are visible in the Zoom client, and which this
// repository validates against ground truth. Each row is backed by a
// live check against a small simulated meeting.
#include <cstdio>

#include "bench_common.h"
#include "core/analyzer.h"
#include "sim/meeting.h"

using namespace zpm;

int main() {
  bench::banner("Table 4", "Key Zoom Performance and Quality Metrics");

  // One small meeting to demonstrate each metric is actually computable.
  sim::MeetingConfig mc;
  mc.seed = 4;
  mc.start = util::Timestamp::from_seconds(100);
  mc.duration = util::Duration::seconds(30);
  sim::ParticipantConfig a, b;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  b.ip = net::Ipv4Addr(10, 8, 0, 2);
  mc.participants = {a, b};
  sim::MeetingSim sim(mc);
  core::AnalyzerConfig cfg;
  core::Analyzer analyzer(cfg);
  while (auto pkt = sim.next_packet()) analyzer.offer(*pkt);
  analyzer.finish();

  bool have_overall = analyzer.counters().zoom_bytes > 0;
  bool have_media = false, have_fps = false, have_size = false, have_jitter = false;
  for (const auto& s : analyzer.streams().streams()) {
    for (const auto& sec : s->metrics->seconds()) {
      if (sec.media_bytes > 0) have_media = true;
      if (sec.frames_completed > 0) have_fps = true;
      if (sec.avg_frame_bytes) have_size = true;
      if (sec.jitter_ms) have_jitter = true;
    }
  }
  bool have_latency = !analyzer.sfu_rtt_samples().empty();

  util::TextTable table;
  table.header({"Metric", "Requires Headers", "Avail. in Z. Client", "Validated",
                "Computed here"});
  auto row = [&table](const char* metric, bool headers, bool client,
                      const char* validated, bool computed) {
    table.row({metric, headers ? "yes" : "no", client ? "yes" : "no", validated,
               computed ? "yes" : "NO"});
  };
  row("Overall Bit Rate (5.1)", false, false, "-", have_overall);
  row("Media Bit Rate (5.1)", true, false, "-", have_media);
  row("Frame Rate (5.2)", true, true, "Fig. 10a", have_fps);
  row("Frame Size (5.2)", true, false, "-", have_size);
  row("Latency (5.3)", true, true, "Fig. 10b", have_latency);
  row("Jitter (5.4)", true, true, "Fig. 10c", have_jitter);
  std::printf("%s\n", table.render().c_str());
  std::printf("all six metric families computed from passive bytes alone: %s\n",
              (have_overall && have_media && have_fps && have_size && have_latency &&
               have_jitter)
                  ? "yes"
                  : "NO");
  return 0;
}
