// Table 5 — hardware resource usage of the Tofino capture program,
// derived from the pipeline component specs via the switch resource
// model (stages/instructions reflect the program structure; TCAM/SRAM
// fractions derive from declared table and register sizes).
#include <cstdio>

#include "bench_common.h"
#include "capture/filter.h"

using namespace zpm;

int main() {
  bench::banner("Table 5", "Hardware Resource Usage of the Tofino-based Capture Program");
  capture::CaptureConfig cfg;
  cfg.campus_subnets = {net::Ipv4Subnet(net::Ipv4Addr(10, 8, 0, 0), 16)};
  capture::CaptureFilter filter(cfg);
  auto report = filter.resource_report();

  util::TextTable table;
  table.header({"Resource Type", "Zoom IP Match", "P2P Detection", "Anonymization"},
               {util::Align::Left, util::Align::Right, util::Align::Right,
                util::Align::Right});
  auto pct = [](double f) { return util::fixed(f * 100.0, 1) + "%"; };
  table.row({"Stages", std::to_string(report[0].stages),
             std::to_string(report[1].stages), std::to_string(report[2].stages)});
  table.row({"TCAM", pct(report[0].tcam), pct(report[1].tcam), pct(report[2].tcam)});
  table.row({"SRAM", pct(report[0].sram), pct(report[1].sram), pct(report[2].sram)});
  table.row({"Instructions", pct(report[0].instructions), pct(report[1].instructions),
             pct(report[2].instructions)});
  table.row({"Hash Units", pct(report[0].hash_units), pct(report[1].hash_units),
             pct(report[2].hash_units)});
  std::printf("%s\n", table.render().c_str());

  std::printf("paper (Table 5):      stages 2/7/11; TCAM 0.7/1.0/1.4%%;\n");
  std::printf("  SRAM 0.1/10.9/1.1%%; instr 1.3/3.4/5.2%%; hash 0/16.7/8.3%%\n");
  std::printf("shape checks: P2P detection dominates SRAM+hash; anonymization\n");
  std::printf("  dominates stages+instructions; IP match cheapest: %s\n",
              (report[1].sram > report[2].sram && report[1].hash_units > report[2].hash_units &&
               report[2].instructions > report[1].instructions &&
               report[0].instructions < report[1].instructions)
                  ? "hold"
                  : "VIOLATED");
  return 0;
}
