// Table 5 — hardware resource usage of the Tofino capture program,
// derived from the pipeline component specs via the switch resource
// model (stages/instructions reflect the program structure; TCAM/SRAM
// fractions derive from declared table and register sizes).
//
// The extended program appends the data-plane metric offload's two
// components (capture/offload.h): the RTT/jitter histogram registers
// and the spin-bit RTT probe. With --check the bench enforces the
// budget: every component must fit the stage count individually, and
// the extended program's summed TCAM/SRAM/instruction/hash fractions
// must stay within the switch (exit 1 on violation — the CI gate that
// keeps the offload switch-legal as it grows).
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.h"
#include "capture/filter.h"
#include "capture/offload.h"

using namespace zpm;

namespace {

void print_component_table(const std::vector<capture::ResourceUsage>& report) {
  util::TextTable table;
  std::vector<std::string> header{"Resource Type"};
  std::vector<util::Align> aligns{util::Align::Left};
  for (const auto& u : report) {
    header.push_back(u.component);
    aligns.push_back(util::Align::Right);
  }
  table.header(header, aligns);
  auto pct = [](double f) { return util::fixed(f * 100.0, 1) + "%"; };
  auto row = [&](const char* label, auto&& cell) {
    std::vector<std::string> cells{label};
    for (const auto& u : report) cells.push_back(cell(u));
    table.row(cells);
  };
  row("Stages", [](const auto& u) { return std::to_string(u.stages); });
  row("TCAM", [&](const auto& u) { return pct(u.tcam); });
  row("SRAM", [&](const auto& u) { return pct(u.sram); });
  row("Instructions", [&](const auto& u) { return pct(u.instructions); });
  row("Hash Units", [&](const auto& u) { return pct(u.hash_units); });
  std::printf("%s\n", table.render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--check]\n", argv[0]);
      return 2;
    }
  }

  bench::banner("Table 5", "Hardware Resource Usage of the Tofino-based Capture Program");
  capture::CaptureConfig cfg;
  cfg.campus_subnets = {net::Ipv4Subnet(net::Ipv4Addr(10, 8, 0, 0), 16)};
  capture::CaptureFilter filter(cfg);
  auto report = filter.resource_report();
  print_component_table(report);

  std::printf("paper (Table 5):      stages 2/7/11; TCAM 0.7/1.0/1.4%%;\n");
  std::printf("  SRAM 0.1/10.9/1.1%%; instr 1.3/3.4/5.2%%; hash 0/16.7/8.3%%\n");
  std::printf("shape checks: P2P detection dominates SRAM+hash; anonymization\n");
  const bool shapes_hold =
      report[1].sram > report[2].sram && report[1].hash_units > report[2].hash_units &&
      report[2].instructions > report[1].instructions &&
      report[0].instructions < report[1].instructions;
  std::printf("  dominates stages+instructions; IP match cheapest: %s\n",
              shapes_hold ? "hold" : "VIOLATED");

  // Extended program: the data-plane metric offload rides in the same
  // pipeline; its components join the accounting.
  const capture::SwitchModel model;
  auto extended = report;
  for (const auto& spec : capture::offload_program_components())
    extended.push_back(capture::estimate_usage(spec, model));

  std::printf("\nextended program (+ data-plane metric offload):\n\n");
  print_component_table(extended);

  std::size_t max_stages = 0;
  double tcam = 0, sram = 0, instr = 0, hash = 0;
  for (const auto& u : extended) {
    if (u.stages > max_stages) max_stages = u.stages;
    tcam += u.tcam;
    sram += u.sram;
    instr += u.instructions;
    hash += u.hash_units;
  }
  std::printf("extended totals: max stages %zu/%zu | TCAM %.1f%% | SRAM %.1f%% | "
              "instr %.1f%% | hash %.1f%%\n",
              max_stages, model.stages, tcam * 100.0, sram * 100.0, instr * 100.0,
              hash * 100.0);

  if (check) {
    // Budget gate: components share physical stages (the base program's
    // 2/7/11 spans overlap), so the stage constraint is per-component;
    // the memory/ALU/hash fractions are additive across the program.
    bool ok = shapes_hold;
    for (const auto& u : extended) {
      if (u.stages > model.stages) {
        std::printf("CHECK FAIL: %s spans %zu stages (> %zu available)\n",
                    u.component.c_str(), u.stages, model.stages);
        ok = false;
      }
    }
    if (tcam > 1.0 || sram > 1.0 || instr > 1.0 || hash > 1.0) {
      std::printf("CHECK FAIL: extended program exceeds a resource budget "
                  "(TCAM %.1f%%, SRAM %.1f%%, instr %.1f%%, hash %.1f%%)\n",
                  tcam * 100.0, sram * 100.0, instr * 100.0, hash * 100.0);
      ok = false;
    }
    if (!shapes_hold) std::printf("CHECK FAIL: Table 5 shape checks violated\n");
    std::printf("table5 resource check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
  }
  return 0;
}
