// Fig. 11 — the two session-latency methods side by side: (1) RTP
// sequence-number matching of SFU-forwarded copies (monitor<->SFU RTT)
// and (2) TCP control-connection seq/ack matching, split into
// monitor<->client and monitor<->server halves to localize congestion.
#include <cstdio>

#include "bench_common.h"
#include "core/analyzer.h"
#include "sim/meeting.h"
#include "util/stats.h"

using namespace zpm;

int main() {
  bench::banner("Fig. 11", "Methods for Measuring Session Latency");

  sim::MeetingConfig mc;
  mc.seed = 11;
  mc.start = util::Timestamp::from_seconds(0);
  mc.duration = util::Duration::seconds(120);
  sim::ParticipantConfig a, b;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  a.access_path.base_delay_ms = 3.0;  // monitor<->client: ~6 ms RTT
  a.wan_path.base_delay_ms = 16.0;    // monitor<->SFU:    ~32 ms RTT
  b.ip = net::Ipv4Addr(10, 8, 0, 2);
  b.access_path.base_delay_ms = 3.0;
  b.wan_path.base_delay_ms = 16.0;
  mc.participants = {a, b};

  sim::MeetingSim sim(mc);
  core::AnalyzerConfig cfg;
  core::Analyzer analyzer(cfg);
  while (auto pkt = sim.next_packet()) analyzer.offer(*pkt);
  analyzer.finish();

  // Method 1: RTP copies.
  util::RunningStats rtp_rtt;
  for (const auto& s : analyzer.sfu_rtt_samples()) rtp_rtt.add(s.rtt.ms());

  // Method 2: TCP proxy, both halves, all control connections.
  util::RunningStats tcp_server, tcp_client;
  for (const auto& [flow, est] : analyzer.tcp_rtt()) {
    for (const auto& s : est.server_rtt()) tcp_server.add(s.rtt.ms());
    for (const auto& s : est.client_rtt()) tcp_client.add(s.rtt.ms());
  }

  util::TextTable table;
  table.header({"Method", "Samples", "Mean RTT", "Expected", "Measures"},
               {util::Align::Left, util::Align::Right, util::Align::Right,
                util::Align::Right, util::Align::Left});
  table.row({"(1) RTP seq matching", std::to_string(rtp_rtt.count()),
             util::fixed(rtp_rtt.mean(), 1) + " ms", "~32 ms", "monitor <-> SFU"});
  table.row({"(3) TCP data->ack (out)", std::to_string(tcp_server.count()),
             util::fixed(tcp_server.mean(), 1) + " ms", "~32 ms",
             "monitor <-> SFU"});
  table.row({"(2) TCP data->ack (in)", std::to_string(tcp_client.count()),
             util::fixed(tcp_client.mean(), 1) + " ms", "~6 ms",
             "monitor <-> client"});
  std::printf("%s\n", table.render().c_str());

  std::printf("properties the paper reports, checked here:\n");
  std::printf("  - RTP method yields far more samples than TCP: %s (%zux)\n",
              rtp_rtt.count() > 5 * (tcp_server.count() + 1) ? "yes" : "NO",
              tcp_server.count() ? rtp_rtt.count() / tcp_server.count() : 0);
  std::printf("  - RTP RTT agrees with TCP server-side RTT: %s (Δ %.1f ms)\n",
              std::abs(rtp_rtt.mean() - tcp_server.mean()) < 6.0 ? "yes" : "NO",
              rtp_rtt.mean() - tcp_server.mean());
  std::printf("  - client-side RTT << server-side RTT (congestion localizable\n");
  std::printf("    inside vs outside the campus): %s\n",
              tcp_client.mean() < tcp_server.mean() / 2 ? "yes" : "NO");
  return 0;
}
