// Fig. 4/5 — entropy-based packet header analysis: extract 1/2/4-byte
// value sequences from one simulated Zoom UDP flow, classify each
// (random / identifier / counter), and show that the RTP locator + type
// differencing rediscover the Table 2 offsets with no Zoom knowledge.
#include <cstdio>

#include "bench_common.h"
#include "entropy/analysis.h"
#include "net/packet.h"
#include "sim/meeting.h"
#include "zoom/constants.h"

using namespace zpm;

int main() {
  bench::banner("Fig. 4/5 (§4.2)", "Entropy-based Packet Header Analysis");

  // Capture the P2P flow of one meeting: pure media encapsulation after
  // the UDP header, like the flows the paper plotted.
  sim::MeetingConfig mc;
  mc.seed = 5;
  mc.start = util::Timestamp::from_seconds(0);
  mc.duration = util::Duration::seconds(60);
  sim::ParticipantConfig a, b;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  a.send_screen_share = true;
  b.ip = net::Ipv4Addr(98, 0, 0, 9);
  b.on_campus = false;
  mc.participants = {a, b};
  mc.p2p_switch_after = util::Duration::seconds(2);
  sim::MeetingSim sim(mc);

  std::vector<std::vector<std::uint8_t>> payloads;
  while (auto pkt = sim.next_packet()) {
    auto view = net::decode_packet(*pkt);
    if (!view || view->l4 != net::L4Proto::Udp) continue;
    if (view->udp.dst_port == 3478 || view->udp.src_port == 3478) continue;
    if (view->udp.dst_port == zoom::kServerMediaPort ||
        view->udp.src_port == zoom::kServerMediaPort)
      continue;
    payloads.emplace_back(view->l4_payload.begin(), view->l4_payload.end());
  }
  std::printf("flow under analysis: %zu packets (single UDP 5-tuple)\n\n",
              payloads.size());

  // Step 1+2: extract and classify all 1/2/4-byte sequences.
  auto sequences = entropy::extract_sequences(payloads, 40);
  util::TextTable table;
  table.header({"Offset", "Width", "Class", "H/H_max", "Distinct", "Monotone"},
               {util::Align::Right, util::Align::Right, util::Align::Left,
                util::Align::Right, util::Align::Right, util::Align::Right});
  // Print the most informative offsets (the ones Fig. 5 shows).
  for (const auto& seq : sequences) {
    if (!((seq.width == 1 && seq.offset <= 1) ||
          (seq.width == 2 && (seq.offset == 9 || seq.offset == 21)) ||
          (seq.width == 4 && (seq.offset == 11 || seq.offset == 36))))
      continue;
    auto c = entropy::classify_sequence(seq);
    table.row({std::to_string(seq.offset), std::to_string(seq.width),
               entropy::field_class_name(c.cls), util::fixed(c.normalized_entropy, 2),
               util::fixed(c.distinct_ratio, 2), util::fixed(c.monotone_ratio, 2)});
  }
  std::printf("%s\n", table.render().c_str());

  // Step 3: offset-group differencing rediscovers Table 2.
  auto offsets = entropy::discover_type_offsets(payloads);
  std::printf("type-byte differencing (§4.2.2) — discovered RTP offsets:\n");
  bool ok = true;
  for (const auto& [type, offset] : offsets) {
    std::size_t expected = zoom::media_payload_offset(type);
    std::printf("  type %3d -> RTP at +%zu   (Table 2: +%zu) %s\n", type, offset,
                expected, offset == expected ? "match" : "MISMATCH");
    ok = ok && offset == expected;
  }
  if (offsets.empty()) ok = false;

  // Step 4: RTCP discovery via SSRC cross-reference.
  std::vector<std::vector<std::uint8_t>> rtp_like, residual;
  for (const auto& p : payloads) {
    if (!p.empty() && offsets.contains(p[0])) rtp_like.push_back(p);
    else residual.push_back(p);
  }
  std::set<std::uint32_t> ssrcs;
  for (const auto& [type, offset] : offsets) {
    std::vector<std::vector<std::uint8_t>> group;
    for (const auto& p : rtp_like)
      if (p[0] == type) group.push_back(p);
    auto found = entropy::collect_ssrcs(group, offset);
    ssrcs.insert(found.begin(), found.end());
  }
  auto hits = entropy::find_ssrc_references(residual, ssrcs);
  std::printf("\nRTCP search: %zu media SSRCs cross-referenced against %zu\n",
              ssrcs.size(), residual.size());
  std::printf("residual packets; SSRC found at offsets:");
  for (const auto& [off, n] : hits)
    if (n > 4) std::printf(" +%zu(x%zu)", off, n);
  std::printf("\n(paper: RTCP sender reports found by exactly this method)\n\n");

  std::printf("verdict: format rediscovered from bytes alone: %s\n",
              ok ? "yes" : "NO");
  return 0;
}
