// Fig. 8 / Fig. 9 — grouping streams into meetings: the two-step
// heuristic on a multi-meeting trace, plus the two documented failure
// modes (invisible passive participants; NAT-merged meetings).
#include <cstdio>

#include "bench_common.h"
#include "core/analyzer.h"
#include "sim/meeting.h"

using namespace zpm;

namespace {

core::AnalyzerConfig analyzer_config() {
  core::AnalyzerConfig c;
  return c;
}

sim::ParticipantConfig participant(net::Ipv4Addr ip, bool on_campus) {
  sim::ParticipantConfig p;
  p.ip = ip;
  p.on_campus = on_campus;
  return p;
}

core::Analyzer run(std::vector<sim::MeetingConfig> configs) {
  core::Analyzer analyzer(analyzer_config());
  for (auto& mc : configs) {
    sim::MeetingSim sim(mc);
    while (auto pkt = sim.next_packet()) analyzer.offer(*pkt);
  }
  analyzer.finish();
  return analyzer;
}

sim::MeetingConfig meeting(std::uint64_t seed, std::uint32_t ssrc_base,
                           std::vector<sim::ParticipantConfig> parts) {
  sim::MeetingConfig mc;
  mc.seed = seed;
  mc.start = util::Timestamp::from_seconds(0);
  mc.duration = util::Duration::seconds(25);
  mc.ssrc_base = ssrc_base;
  mc.participants = std::move(parts);
  return mc;
}

}  // namespace

int main() {
  bench::banner("Fig. 8 / Fig. 9", "Grouping Streams Into Meetings");

  // Scenario A (Fig. 8): two concurrent meetings, deliberately with the
  // SAME SSRC bases (Zoom SSRCs are not unique across meetings!).
  {
    auto analyzer = run({
        meeting(81, 64, {participant(net::Ipv4Addr(10, 8, 0, 1), true),
                         participant(net::Ipv4Addr(10, 8, 0, 2), true)}),
        meeting(82, 64, {participant(net::Ipv4Addr(10, 8, 1, 1), true),
                         participant(net::Ipv4Addr(10, 8, 1, 2), true),
                         participant(net::Ipv4Addr(98, 0, 0, 9), false)}),
    });
    std::printf("A) two concurrent meetings, colliding SSRCs:\n");
    std::printf("   wire streams: %zu, distinct media: %llu, meetings found: %zu "
                "(expected 2)\n",
                analyzer.streams().size(),
                static_cast<unsigned long long>(analyzer.streams().media_count()),
                analyzer.meetings().meeting_count());
    for (const auto* m : analyzer.meetings().meetings()) {
      std::printf("   meeting %u: %zu active participants, %zu streams, "
                  "%zu RTT samples\n",
                  m->id, m->active_participants(), m->stream_count,
                  m->rtt_to_sfu.size());
    }
  }

  // Scenario B (Fig. 9 left): passive off-campus participant -> invisible.
  {
    auto passive = participant(net::Ipv4Addr(98, 0, 0, 50), false);
    passive.send_audio = false;
    passive.send_video = false;
    auto analyzer = run({meeting(83, 0, {participant(net::Ipv4Addr(10, 8, 0, 5), true),
                                         participant(net::Ipv4Addr(10, 8, 0, 6), true),
                                         passive})});
    auto meetings = analyzer.meetings().meetings();
    std::printf("\nB) 3-party meeting, one passive off-campus participant:\n");
    std::printf("   active participants observed: %zu (true count 3) — the\n",
                meetings.empty() ? 0 : meetings[0]->active_participants());
    std::printf("   passive participant is invisible by construction (Fig. 9)\n");
  }

  // Scenario C (Fig. 9 right): two meetings behind one NAT address merge.
  {
    net::Ipv4Addr nat(10, 8, 7, 7);
    auto analyzer = run({
        meeting(84, 0, {participant(nat, true),
                        participant(net::Ipv4Addr(98, 0, 0, 60), false)}),
        meeting(85, 128, {participant(nat, true),
                          participant(net::Ipv4Addr(98, 0, 0, 61), false)}),
    });
    std::printf("\nC) two meetings behind one campus NAT address:\n");
    std::printf("   meetings found: %zu (true count 2) — NAT merges them, the\n",
                analyzer.meetings().meeting_count());
    std::printf("   documented limitation of client-IP keying (Fig. 9 right)\n");
  }

  // Scenario D: P2P mode switch keeps one meeting (duplicate-stream id).
  {
    auto mc = meeting(86, 0, {participant(net::Ipv4Addr(10, 8, 0, 9), true),
                              participant(net::Ipv4Addr(98, 0, 0, 70), false)});
    mc.duration = util::Duration::seconds(40);
    mc.p2p_switch_after = util::Duration::seconds(10);
    auto analyzer = run({mc});
    std::printf("\nD) server->P2P mode switch (new 5-tuples mid-meeting):\n");
    std::printf("   meetings found: %zu (expected 1, linked via RTP-level\n",
                analyzer.meetings().meeting_count());
    std::printf("   duplicate-stream matching across the switch, §4.3 step 1)\n");
  }
  return 0;
}
