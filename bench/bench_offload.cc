// Data-plane metric offload: what the host saves when the switch keeps
// the RTT/jitter registers (capture/offload.h).
//
// Three experiment groups:
//
//   * metric-path micro-harness: the analyzer's per-packet metric work
//     for a covered media stream pair — StreamMetrics updates plus the
//     §5.3 copy-matcher (serial flavor) or journal-event production +
//     merge replay (sharded flavor) — timed with the offload off
//     (covered=false, full work) and on (covered=true, estimator and
//     matcher work skipped, exactly the analyzer's gate). The sharded
//     flavor's speedup is the headline claim: offload on must cut
//     per-packet metric-path time by ZPM_OFFLOAD_SPEEDUP_MIN (default
//     1.3x).
//   * end-to-end pipeline passes over the campus+meeting trace at 1 and
//     4 shards, offload off/on (informational: full runs are dominated
//     by decode, so the metric-path saving shows up diluted).
//   * correctness gates: warm classification with the offload on
//     performs zero steady-state allocations (the offload update path
//     is register-array work, nothing else); epoch reports with the
//     offload off are byte-identical serial vs 4-shard; and the
//     offload-on histograms agree with an exact-sample reference
//     bit-for-bit, with quantile estimates within one bucket width of
//     the exact per-packet CDF.
//
// Usage: bench_offload [--check] [output.json]
//   --check  exit non-zero when a gate fails (CI smoke mode).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/epoch.h"
#include "capture/batch_filter.h"
#include "capture/offload.h"
#include "core/analyzer.h"
#include "metrics/latency.h"
#include "metrics/stream_metrics.h"
#include "net/packet.h"
#include "pipeline/parallel_analyzer.h"
#include "sim/campus.h"
#include "sim/meeting.h"
#include "util/bytes.h"

// --------------------------------------------------------------------------
// Counting allocator: per-thread so unrelated threads can't pollute the
// loop measurements (same scheme as bench_ingest / bench_filter).

namespace {
thread_local std::uint64_t t_allocs = 0;
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  ++t_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++t_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace zpm;
using Clock = std::chrono::steady_clock;

struct ModeResult {
  std::string name;
  std::uint64_t packets = 0;  // per pass
  double seconds = 0;         // fastest single pass
  std::uint64_t steady_allocs = 0;

  [[nodiscard]] double ns_per_pkt() const {
    return packets > 0 ? seconds * 1e9 / static_cast<double>(packets) : 0;
  }
};

/// Same campus-style mix as bench_filter: heavy non-Zoom background
/// woven with a genuine 4-participant meeting.
std::vector<net::RawPacket> make_trace() {
  sim::CampusConfig cc;
  cc.seed = 7;
  cc.duration = util::Duration::seconds(60);
  cc.meetings_per_peak_hour = 10.0;
  cc.background_ratio = 3.0;
  sim::CampusSimulation campus(cc);
  std::vector<net::RawPacket> background;
  while (auto pkt = campus.next_packet()) background.push_back(std::move(*pkt));

  sim::MeetingConfig mc;
  mc.seed = 1;
  mc.start = cc.day_start + util::Duration::seconds(2);
  mc.duration = util::Duration::seconds(55);
  sim::ParticipantConfig a, b, c, d;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  b.ip = net::Ipv4Addr(10, 8, 0, 2);
  b.send_screen_share = true;
  c.ip = net::Ipv4Addr(10, 8, 0, 3);
  d.ip = net::Ipv4Addr(98, 0, 0, 4);
  d.on_campus = false;
  mc.participants = {a, b, c, d};
  auto meeting = sim::run_meeting(mc);

  std::vector<net::RawPacket> trace;
  trace.reserve(background.size() + meeting.size());
  std::size_t i = 0, j = 0;
  while (i < background.size() || j < meeting.size()) {
    bool take_bg = j == meeting.size() ||
                   (i < background.size() && background[i].ts <= meeting[j].ts);
    trace.push_back(std::move(take_bg ? background[i++] : meeting[j++]));
  }
  return trace;
}

// --------------------------------------------------------------------------
// Metric-path micro-harness.

/// One replayed journal event (the sharded pipeline defers the §5.3
/// copy-match to the merge step's global replay; covered packets never
/// produce these events).
struct CopyEvent {
  bool egress = false;
  std::uint32_t ssrc = 0;
  std::uint16_t seq = 0;
  std::uint32_t rtp_ts = 0;
  util::Timestamp t;
};

constexpr std::size_t kMicroIters = 25'000;  // 8 packets per iteration
constexpr int kMicroRounds = 8;              // first is warm-up, discarded

/// One pass of the synthetic covered-stream schedule: per ~33 ms video
/// frame tick, a 3-packet video frame up + its SFU-forwarded copy down,
/// plus one audio packet each way. Deterministic arrival jitter and RTT
/// from an LCG. Returns the loop wall time; `packets` and `allocs` are
/// accumulated. `covered` replicates the analyzer's offload gate:
/// StreamMetrics skips its estimator work and no copy-matcher /
/// journal-event work happens at all.
double micro_pass(bool covered, bool sharded, std::uint64_t& packets,
                  std::uint64_t& allocs) {
  auto make_metrics = [](zoom::MediaKind kind, std::uint32_t ssrc) {
    auto cfg = metrics::default_config(kind);
    cfg.keep_frames = false;
    return metrics::StreamMetrics(kind, ssrc, cfg);
  };
  metrics::StreamMetrics video_up = make_metrics(zoom::MediaKind::Video, 101);
  metrics::StreamMetrics video_down = make_metrics(zoom::MediaKind::Video, 101);
  metrics::StreamMetrics audio_up = make_metrics(zoom::MediaKind::Audio, 202);
  metrics::StreamMetrics audio_down = make_metrics(zoom::MediaKind::Audio, 202);
  metrics::RtpCopyMatcher matcher;
  std::vector<CopyEvent> journal;
  journal.reserve(sharded && !covered ? kMicroIters * 8 : 0);

  zoom::MediaEncap video_encap;
  video_encap.type = static_cast<std::uint8_t>(zoom::MediaEncapType::Video);
  video_encap.packets_in_frame = 3;
  zoom::MediaEncap audio_encap;
  audio_encap.type = static_cast<std::uint8_t>(zoom::MediaEncapType::Audio);

  proto::RtpHeader video_rtp;
  video_rtp.payload_type = zoom::pt::kVideoMain;
  video_rtp.ssrc = 101;
  proto::RtpHeader audio_rtp;
  audio_rtp.payload_type = zoom::pt::kAudioSpeaking;
  audio_rtp.ssrc = 202;

  std::uint64_t lcg = 0x2545F4914F6CDD1Dull;
  auto rnd = [&](std::uint64_t mod) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return (lcg >> 33) % mod;
  };

  const std::uint64_t before = t_allocs;
  const auto start = Clock::now();
  std::uint16_t vseq = 0, aseq = 0;
  for (std::size_t i = 0; i < kMicroIters; ++i) {
    const std::int64_t base_us = static_cast<std::int64_t>(i) * 33'333;
    const std::int64_t arrival_jitter = static_cast<std::int64_t>(rnd(4'000));
    const std::int64_t rtt_us = 15'000 + static_cast<std::int64_t>(rnd(5'000));
    const std::uint32_t vts = static_cast<std::uint32_t>(i * 3'000);  // 90 kHz

    // Video frame: 3 packets up, then the SFU-forwarded copy down.
    for (int k = 0; k < 3; ++k) {
      const auto t_up =
          util::Timestamp::from_micros(base_us + arrival_jitter + k * 200);
      video_encap.sequence = vseq;
      video_rtp.sequence = vseq;
      video_rtp.timestamp = vts;
      video_up.on_media_packet(t_up, video_encap, video_rtp, 900, 930, covered);
      if (!covered) {
        if (sharded)
          journal.push_back({true, 101, vseq, vts, t_up});
        else
          matcher.on_egress(t_up, 101, vseq, vts);
      }
      const auto t_down = util::Timestamp::from_micros(t_up.us() + rtt_us);
      video_down.on_media_packet(t_down, video_encap, video_rtp, 900, 930,
                                 covered);
      if (!covered) {
        if (sharded) {
          journal.push_back({false, 101, vseq, vts, t_down});
        } else if (auto s = matcher.on_ingress(t_down, 101, vseq, vts)) {
          video_down.on_rtt_sample(*s);
        }
      }
      ++vseq;
    }

    // One audio packet each way (48 kHz clock, fresh timestamp).
    const std::uint32_t ats = static_cast<std::uint32_t>(i * 1'600);
    const auto a_up = util::Timestamp::from_micros(base_us + arrival_jitter + 70);
    audio_encap.sequence = aseq;
    audio_rtp.sequence = aseq;
    audio_rtp.timestamp = ats;
    audio_up.on_media_packet(a_up, audio_encap, audio_rtp, 120, 150, covered);
    if (!covered) {
      if (sharded)
        journal.push_back({true, 202, aseq, ats, a_up});
      else
        matcher.on_egress(a_up, 202, aseq, ats);
    }
    const auto a_down = util::Timestamp::from_micros(a_up.us() + rtt_us);
    audio_down.on_media_packet(a_down, audio_encap, audio_rtp, 120, 150, covered);
    if (!covered) {
      if (sharded) {
        journal.push_back({false, 202, aseq, ats, a_down});
      } else if (auto s = matcher.on_ingress(a_down, 202, aseq, ats)) {
        audio_down.on_rtt_sample(*s);
      }
    }
    ++aseq;
  }
  // Sharded flavor: the merge step replays the journal globally and
  // injects the matched samples — part of the host's metric path.
  if (sharded && !covered) {
    for (const auto& ev : journal) {
      if (ev.egress) {
        matcher.on_egress(ev.t, ev.ssrc, ev.seq, ev.rtp_ts);
      } else if (auto s = matcher.on_ingress(ev.t, ev.ssrc, ev.seq, ev.rtp_ts)) {
        (ev.ssrc == 101 ? video_down : audio_down).on_rtt_sample(*s);
      }
    }
  }
  video_up.finish();
  video_down.finish();
  audio_up.finish();
  audio_down.finish();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  allocs = t_allocs - before;
  packets = kMicroIters * 8;
  return seconds;
}

ModeResult run_micro_mode(const char* name, bool covered, bool sharded) {
  ModeResult r;
  r.name = name;
  r.seconds = 1e30;
  for (int round = 0; round < kMicroRounds; ++round) {
    std::uint64_t packets = 0, allocs = 0;
    const double s = micro_pass(covered, sharded, packets, allocs);
    if (round == 0) continue;
    r.packets = packets;
    r.seconds = std::min(r.seconds, s);
    r.steady_allocs = allocs;
  }
  return r;
}

// --------------------------------------------------------------------------
// End-to-end pipeline passes.

constexpr std::size_t kBatch = 1024;
constexpr int kPipeRounds = 4;  // first is warm-up, discarded

ModeResult run_pipeline_mode(const char* name,
                             std::span<const net::RawPacketView> views,
                             std::size_t shards, bool offload) {
  ModeResult r;
  r.name = name;
  r.seconds = 1e30;
  for (int round = 0; round < kPipeRounds; ++round) {
    core::AnalyzerConfig cfg;
    cfg.keep_frames = false;
    capture::BatchFilterConfig fc;
    fc.shards = shards;
    fc.flow_memory_budget = 0;
    fc.dataplane_offload = offload;
    capture::BatchFilter filter(fc);
    capture::BatchVerdicts verdicts;
    std::optional<core::Analyzer> serial;
    std::optional<pipeline::ParallelAnalyzer> parallel;
    if (shards > 1) {
      pipeline::ParallelAnalyzerConfig pc;
      pc.analyzer = cfg;
      pc.shards = shards;
      parallel.emplace(std::move(pc));
    } else {
      serial.emplace(cfg);
    }
    const std::uint64_t before = t_allocs;
    const auto start = Clock::now();
    for (std::size_t off = 0; off < views.size(); off += kBatch) {
      const std::size_t n = std::min(kBatch, views.size() - off);
      const std::span<const net::RawPacketView> batch(views.data() + off, n);
      filter.classify(batch, verdicts);
      if (parallel) {
        parallel->offer_batch(batch, pipeline::BatchLifetime::Pinned, verdicts);
      } else {
        for (std::size_t i = 0; i < n; ++i) {
          if (verdicts.verdicts[i] == capture::Verdict::Reject)
            serial->account_frontend_rejected(batch[i]);
          else
            serial->offer(batch[i],
                          verdicts.verdicts[i] == capture::Verdict::Admit &&
                              (verdicts.flags[i] &
                               capture::kFlagOffloadCovered) != 0);
        }
      }
    }
    if (parallel)
      parallel->finish();
    else
      serial->finish();
    const double s = std::chrono::duration<double>(Clock::now() - start).count();
    if (round == 0) continue;
    r.packets = views.size();
    r.seconds = std::min(r.seconds, s);
    r.steady_allocs = t_allocs - before;
  }
  return r;
}

// --------------------------------------------------------------------------
// Correctness gates.

/// Warm classification with the offload enabled must not allocate: the
/// offload update is fixed register-array arithmetic.
bool classify_steady_alloc_gate(std::span<const net::RawPacketView> views,
                                std::uint64_t& steady_allocs) {
  capture::BatchFilterConfig fc;
  fc.shards = 4;
  fc.dataplane_offload = true;
  capture::BatchFilter filter(fc);
  capture::BatchVerdicts verdicts;
  auto pass = [&]() {
    for (std::size_t off = 0; off < views.size(); off += kBatch) {
      const std::size_t n = std::min(kBatch, views.size() - off);
      filter.classify({views.data() + off, n}, verdicts);
    }
  };
  pass();  // warm-up: table growth, verdict buffers
  const std::uint64_t before = t_allocs;
  pass();
  steady_allocs = t_allocs - before;
  return steady_allocs == 0;
}

/// Offload off: the durable epoch record must be byte-identical serial
/// vs 4-shard (sketch tier off so no legitimately shard-dependent
/// section is in play).
bool report_identity_gate(std::span<const net::RawPacketView> views) {
  auto run = [&](std::size_t shards) {
    analysis::EpochEngineConfig ec;
    ec.analyzer.keep_frames = false;
    ec.shards = shards;
    ec.frontend = true;
    ec.flow_memory_budget = 0;
    ec.limits.max_packets = 0;
    ec.limits.max_span = util::Duration::micros(0);
    analysis::EpochEngine engine(std::move(ec));
    std::vector<analysis::EpochReport> completed;
    for (std::size_t off = 0; off < views.size(); off += kBatch) {
      const std::size_t n = std::min(kBatch, views.size() - off);
      engine.offer({views.data() + off, n}, pipeline::BatchLifetime::Pinned,
                   completed);
    }
    auto rep = engine.flush();
    util::ByteWriter w;
    if (rep) analysis::encode_epoch_report(*rep, w);
    return w.take();
  };
  return run(1) == run(4);
}

/// Offload on (1 shard so the reference sees the identical stream): the
/// register histograms must equal the exact-sample reference bit for
/// bit, and the bucketed quantiles must sit within one bucket width of
/// the exact per-packet CDF.
bool cdf_agreement_gate(std::span<const net::RawPacketView> views,
                        std::uint64_t& covered, bool& quantiles_ok) {
  capture::BatchFilterConfig fc;
  fc.shards = 1;
  fc.dataplane_offload = true;
  capture::BatchFilter filter(fc);
  capture::OffloadReference reference;
  capture::BatchVerdicts verdicts;
  for (std::size_t off = 0; off < views.size(); off += kBatch) {
    const std::size_t n = std::min(kBatch, views.size() - off);
    const std::span<const net::RawPacketView> batch(views.data() + off, n);
    filter.classify(batch, verdicts);
    for (std::size_t i = 0; i < n; ++i) {
      if (verdicts.verdicts[i] != capture::Verdict::Admit ||
          (verdicts.flags[i] & capture::kFlagOffloadCovered) == 0)
        continue;
      const auto fields = capture::extract_offload_fields(batch[i].data);
      if (fields) reference.on_media_packet(batch[i].ts, *fields);
    }
  }
  const auto hist = filter.offload_report();
  const auto ref = reference.report();
  covered = hist.covered_packets;

  // Quantile agreement: the bucketed estimate's bucket must contain the
  // exact sample value, so the estimate error is bounded by one bucket
  // width (the histogram resolution claim).
  auto quantiles_within_one_bucket =
      [](const capture::OffloadHistogram& h, std::vector<std::uint64_t> exact) {
        if (exact.empty()) return true;
        std::sort(exact.begin(), exact.end());
        for (const double q : {0.5, 0.9, 0.99}) {
          const std::size_t idx = static_cast<std::size_t>(
              q * static_cast<double>(exact.size() - 1));
          const std::uint64_t rank = idx + 1;
          std::uint64_t cum = 0;
          std::size_t bucket = capture::kOffloadBuckets - 1;
          for (std::size_t b = 0; b < capture::kOffloadBuckets; ++b) {
            cum += h.buckets[b];
            if (cum >= rank) {
              bucket = b;
              break;
            }
          }
          if (capture::offload_bucket(exact[idx]) != bucket) return false;
        }
        return true;
      };
  quantiles_ok =
      quantiles_within_one_bucket(hist.jitter, reference.jitter_samples_us()) &&
      quantiles_within_one_bucket(hist.rtt, reference.rtt_samples_us());
  return hist == ref && covered > 0 && hist.jitter.samples > 0 &&
         hist.rtt.samples > 0;
}

void write_json(const std::string& path, const std::vector<ModeResult>& results,
                double micro_serial_speedup, double micro_sharded_speedup,
                double threshold, std::uint64_t classify_steady_allocs,
                bool allocs_clean, bool identity, bool cdf_exact,
                bool quantiles_ok, std::uint64_t covered, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"offload\",\n  \"modes\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"packets\": %llu, \"seconds\": %.6f, "
                 "\"ns_per_pkt\": %.2f, \"steady_allocs\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.packets),
                 r.seconds, r.ns_per_pkt(),
                 static_cast<unsigned long long>(r.steady_allocs),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"metric_path_serial_speedup\": %.3f,\n"
               "  \"metric_path_sharded_speedup\": %.3f,\n"
               "  \"speedup_threshold\": %.2f,\n"
               "  \"classify_steady_allocs\": %llu,\n"
               "  \"classify_allocs_clean\": %s,\n"
               "  \"report_identity_offload_off\": %s,\n"
               "  \"histograms_match_reference\": %s,\n"
               "  \"quantiles_within_one_bucket\": %s,\n"
               "  \"covered_packets\": %llu,\n  \"pass\": %s\n}\n",
               micro_serial_speedup, micro_sharded_speedup, threshold,
               static_cast<unsigned long long>(classify_steady_allocs),
               allocs_clean ? "true" : "false", identity ? "true" : "false",
               cdf_exact ? "true" : "false", quantiles_ok ? "true" : "false",
               static_cast<unsigned long long>(covered),
               pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_offload.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else {
      out_path = argv[i];
    }
  }
  double threshold = 1.3;
  if (const char* env = std::getenv("ZPM_OFFLOAD_SPEEDUP_MIN"))
    threshold = std::atof(env);

  auto trace = make_trace();
  std::vector<net::RawPacketView> views;
  views.reserve(trace.size());
  for (const auto& pkt : trace) views.push_back(net::as_view(pkt));
  std::printf("trace: %zu packets\n\n", trace.size());

  std::vector<ModeResult> results;
  results.push_back(run_micro_mode("metric_path_serial_off", false, false));
  results.push_back(run_micro_mode("metric_path_serial_on", true, false));
  results.push_back(run_micro_mode("metric_path_sharded_off", false, true));
  results.push_back(run_micro_mode("metric_path_sharded_on", true, true));
  results.push_back(run_pipeline_mode("pipeline_1shard_off", views, 1, false));
  results.push_back(run_pipeline_mode("pipeline_1shard_on", views, 1, true));
  results.push_back(run_pipeline_mode("pipeline_4shard_off", views, 4, false));
  results.push_back(run_pipeline_mode("pipeline_4shard_on", views, 4, true));

  for (const auto& r : results)
    std::printf("%-26s %9.1f ns/pkt  %8.4f s/pass  (allocs %llu)\n",
                r.name.c_str(), r.ns_per_pkt(), r.seconds,
                static_cast<unsigned long long>(r.steady_allocs));

  const double serial_speedup =
      results[1].ns_per_pkt() > 0
          ? results[0].ns_per_pkt() / results[1].ns_per_pkt()
          : 0;
  const double sharded_speedup =
      results[3].ns_per_pkt() > 0
          ? results[2].ns_per_pkt() / results[3].ns_per_pkt()
          : 0;

  std::uint64_t classify_steady_allocs = 0;
  const bool allocs_clean =
      classify_steady_alloc_gate(views, classify_steady_allocs);
  const bool identity = report_identity_gate(views);
  std::uint64_t covered = 0;
  bool quantiles_ok = false;
  const bool cdf_exact = cdf_agreement_gate(views, covered, quantiles_ok);

  const bool pass = sharded_speedup >= threshold && allocs_clean && identity &&
                    cdf_exact && quantiles_ok;

  std::printf("\nmetric-path speedup (offload on vs off): serial %.2fx, "
              "sharded %.2fx (threshold %.2fx)\n",
              serial_speedup, sharded_speedup, threshold);
  std::printf("classify steady-state allocs with offload on: %llu\n",
              static_cast<unsigned long long>(classify_steady_allocs));
  std::printf("epoch report identity (offload off, 1 vs 4 shards): %s\n",
              identity ? "byte-identical" : "MISMATCH");
  std::printf("offload histograms vs exact reference (%llu covered): %s, "
              "quantiles within one bucket: %s\n",
              static_cast<unsigned long long>(covered),
              cdf_exact ? "bit-identical" : "MISMATCH",
              quantiles_ok ? "yes" : "NO");
  std::printf("%s\n", pass ? "PASS" : "FAIL");

  write_json(out_path, results, serial_speedup, sharded_speedup, threshold,
             classify_steady_allocs, allocs_clean, identity, cdf_exact,
             quantiles_ok, covered, pass);
  return check && !pass ? 1 : 0;
}
