// Trace-ingest throughput: the zero-copy mapped readers against the
// seed's streaming per-packet loop, plus the batched pipeline handoff.
//
// Reports pkts/s, bytes/s and heap allocations per packet for each mode
// (a replaced global operator new counts per-thread allocations), and
// asserts the two structural claims behind the fast path:
//   * mapped + batched reading beats the streaming per-packet baseline
//     by the configured factor (default 3x; ZPM_INGEST_SPEEDUP_MIN),
//   * the steady-state producer side — mapped batch reads and
//     ParallelAnalyzer::offer_batch dispatch — performs zero per-packet
//     heap allocations.
//
// Usage: bench_ingest [--check] [output.json]
//   --check  exit non-zero when an assertion fails (CI smoke mode).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "core/analyzer.h"
#include "net/pcap.h"
#include "net/trace_source.h"
#include "pipeline/parallel_analyzer.h"
#include "sim/meeting.h"

// --------------------------------------------------------------------------
// Counting allocator: per-thread so worker-shard allocations don't
// pollute producer-side measurements.

namespace {
thread_local std::uint64_t t_allocs = 0;
}  // namespace

// GCC pairs its builtin knowledge of operator new[] with free() at
// inlined call sites and warns, even though these replacements make the
// pairing correct by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  ++t_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++t_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace zpm;
using Clock = std::chrono::steady_clock;

struct ModeResult {
  std::string name;
  std::uint64_t packets = 0;       // cumulative over timed passes
  std::uint64_t bytes = 0;
  double seconds = 0;              // fastest single pass
  std::uint64_t allocs = 0;        // read-loop allocs over timed passes
  std::uint64_t steady_allocs = 0; // read-loop allocs of the final pass
  int passes = 0;

  // Throughput of the fastest pass: the headline number. Averaging
  // instead would let one descheduled pass on a shared machine decide
  // the speedup comparison.
  [[nodiscard]] double pkts_per_s() const {
    return seconds > 0 && passes > 0
               ? static_cast<double>(packets) / passes / seconds
               : 0;
  }
  [[nodiscard]] double bytes_per_s() const {
    return seconds > 0 && passes > 0
               ? static_cast<double>(bytes) / passes / seconds
               : 0;
  }
};

std::vector<net::RawPacket> make_trace() {
  sim::MeetingConfig mc;
  mc.seed = 1;
  mc.start = util::Timestamp::from_seconds(0);
  mc.duration = util::Duration::seconds(120);
  sim::ParticipantConfig a, b, c, d;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  b.ip = net::Ipv4Addr(10, 8, 0, 2);
  b.send_screen_share = true;
  c.ip = net::Ipv4Addr(10, 8, 0, 3);
  d.ip = net::Ipv4Addr(98, 0, 0, 4);
  d.on_campus = false;
  mc.participants = {a, b, c, d};
  return sim::run_meeting(mc);
}

constexpr int kRounds = 16;       // file passes per mode (first = warm-up)
constexpr std::size_t kBatch = 1024;

/// One benchmark mode: a pass function that reads the whole file once,
/// accumulating into the given ModeResult and leaving the allocation
/// count of its read loop (construction excluded) in `loop_allocs`.
struct Mode {
  ModeResult result;
  std::function<void(ModeResult&)> pass;
};

void print_result(const ModeResult& r) {
  std::printf("%-28s %9.2f Mpkt/s %9.1f MB/s  %8.4f allocs/pkt  (steady %llu)\n",
              r.name.c_str(), r.pkts_per_s() / 1e6, r.bytes_per_s() / 1e6,
              r.packets ? static_cast<double>(r.allocs) / static_cast<double>(r.packets)
                        : 0.0,
              static_cast<unsigned long long>(r.steady_allocs));
}

void write_json(const std::string& path, const std::vector<ModeResult>& results,
                double speedup, double threshold, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"ingest\",\n  \"modes\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"packets\": %llu, \"bytes\": %llu, "
                 "\"seconds\": %.6f, \"pkts_per_s\": %.1f, \"bytes_per_s\": %.1f, "
                 "\"allocs\": %llu, \"steady_allocs\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.packets),
                 static_cast<unsigned long long>(r.bytes), r.seconds,
                 r.pkts_per_s(), r.bytes_per_s(),
                 static_cast<unsigned long long>(r.allocs),
                 static_cast<unsigned long long>(r.steady_allocs),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"mapped_batched_speedup\": %.2f,\n"
               "  \"speedup_threshold\": %.2f,\n  \"pass\": %s\n}\n",
               speedup, threshold, pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_ingest.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else {
      out_path = argv[i];
    }
  }
  double threshold = 3.0;
  if (const char* env = std::getenv("ZPM_INGEST_SPEEDUP_MIN"))
    threshold = std::atof(env);

  auto trace = make_trace();
  std::string path = "/tmp/zpm_bench_ingest.pcap";
  {
    net::PcapWriter writer(path);
    for (const auto& pkt : trace) writer.write(pkt);
  }
  std::uint64_t trace_bytes = 0;
  for (const auto& pkt : trace) trace_bytes += pkt.data.size();
  std::printf("trace: %zu packets, %.1f MB on disk\n\n", trace.size(),
              static_cast<double>(trace_bytes) / 1e6);

  // Every pass lambda reads the whole file once and records the wall
  // time and allocation count of its read loop in `loop_seconds` /
  // `loop_allocs`. Reader construction (open/mmap/prefault) is excluded
  // from both, for every mode alike, so the comparison is loop against
  // loop. The harness below interleaves passes round-robin across modes
  // so transient machine-wide interference degrades every mode's
  // samples instead of sinking one mode's entire window, which would
  // skew the speedup ratio.
  double loop_seconds = 0;
  std::uint64_t loop_allocs = 0;
  std::vector<net::RawPacketView> batch;
  batch.reserve(kBatch);

  std::vector<Mode> modes;
  auto add_mode = [&](const char* name, std::function<void(ModeResult&)> fn) {
    modes.emplace_back();
    modes.back().result.name = name;
    modes.back().pass = std::move(fn);
  };

  // Seed baseline: streaming reader, one owned RawPacket per record.
  add_mode("streaming_per_packet", [&](ModeResult& r) {
    net::PcapReader reader(path);
    std::uint64_t before = t_allocs;
    auto start = Clock::now();
    while (auto pkt = reader.next()) {
      r.bytes += pkt->data.size();
      ++r.packets;
    }
    loop_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    loop_allocs = t_allocs - before;
  });

  // Streaming reader with buffer reuse (the non-mmap fallback's core).
  add_mode("streaming_next_into", [&](ModeResult& r) {
    net::PcapReader reader(path);
    net::RawPacket pkt;
    std::uint64_t before = t_allocs;
    auto start = Clock::now();
    while (reader.next_into(pkt)) {
      r.bytes += pkt.data.size();
      ++r.packets;
    }
    loop_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    loop_allocs = t_allocs - before;
  });

  // Mapped reader, one view at a time.
  add_mode("mapped_per_packet", [&](ModeResult& r) {
    net::TraceSource source(path);
    std::uint64_t before = t_allocs;
    auto start = Clock::now();
    while (auto view = source.next()) {
      r.bytes += view->data.size();
      ++r.packets;
    }
    loop_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    loop_allocs = t_allocs - before;
  });

  // Mapped reader, batched — the fast path zpm_analyze uses.
  add_mode("mapped_batched", [&](ModeResult& r) {
    net::TraceSource source(path);
    std::uint64_t before = t_allocs;
    auto start = Clock::now();
    while (source.next_batch(batch, kBatch) > 0) {
      for (const auto& v : batch) r.bytes += v.data.size();
      r.packets += batch.size();
    }
    loop_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    loop_allocs = t_allocs - before;
  });

  // Round 0 warms every mode (page cache, allocator pools) and is
  // discarded. Timed rounds keep each mode's fastest pass; the last
  // round's loop allocations are the reported steady state.
  for (auto& m : modes) m.result.seconds = 1e30;
  for (int round = 0; round < kRounds; ++round) {
    for (auto& m : modes) {
      ModeResult scratch;
      ModeResult& target = round == 0 ? scratch : m.result;
      m.pass(target);
      if (round == 0) continue;
      if (loop_seconds < m.result.seconds) m.result.seconds = loop_seconds;
      ++m.result.passes;
      m.result.allocs += loop_allocs;
      m.result.steady_allocs = loop_allocs;
    }
  }
  std::vector<ModeResult> results;
  for (auto& m : modes) results.push_back(std::move(m.result));

  // End to end: mapped batches dispatched into the sharded pipeline
  // with pinned lifetime. Runs after the reader modes (not interleaved
  // with them) because the analyzer's shard threads spin-wait on the
  // ring while idle and would steal cycles from every other mode. One
  // analyzer consumes every pass, so the warm-up pass establishes the
  // staging capacities and later passes measure the true steady state.
  // Producer-side allocations only (the counting allocator is
  // per-thread); shards run on their own threads.
  {
    ModeResult r;
    r.name = "mapped_batched_offer";
    pipeline::ParallelAnalyzerConfig cfg;
    cfg.analyzer.keep_frames = false;
    cfg.shards = 2;
    pipeline::ParallelAnalyzer analyzer(cfg);
    // Pinned lifetime: every mapping must outlive finish(), so the
    // sources are kept alive for the analyzer's whole run.
    std::vector<std::unique_ptr<net::TraceSource>> sources;
    r.seconds = 1e30;
    for (int rep = 0; rep < kRounds; ++rep) {
      sources.push_back(std::make_unique<net::TraceSource>(path));
      net::TraceSource& source = *sources.back();
      std::uint64_t rep_allocs = t_allocs;
      auto start = Clock::now();  // loop-only, like the reader modes
      while (source.next_batch(batch, kBatch) > 0) {
        if (rep > 0) {
          for (const auto& v : batch) r.bytes += v.data.size();
          r.packets += batch.size();
        }
        analyzer.offer_batch(batch, pipeline::BatchLifetime::Pinned);
      }
      if (rep > 0) {
        double pass_s =
            std::chrono::duration<double>(Clock::now() - start).count();
        if (pass_s < r.seconds) r.seconds = pass_s;
        ++r.passes;
        r.allocs += t_allocs - rep_allocs;
      }
      if (rep == kRounds - 1) r.steady_allocs = t_allocs - rep_allocs;
    }
    analyzer.finish();
    results.push_back(r);
  }

  for (const auto& r : results) print_result(r);

  double base = results[0].pkts_per_s();
  double fast = results[3].pkts_per_s();
  double speedup = base > 0 ? fast / base : 0;
  // Steady-state (capacities warm) reads and dispatch must not allocate
  // at all — zero per whole file pass, not merely per packet.
  bool reads_clean = results[3].steady_allocs == 0;
  bool offer_clean = results[4].steady_allocs == 0;
  bool pass = speedup >= threshold && reads_clean && offer_clean;

  std::printf("\nmapped_batched vs streaming_per_packet: %.2fx (threshold %.2fx)\n",
              speedup, threshold);
  std::printf("steady-state allocations per pass: mapped_batched=%llu, "
              "offer path=%llu\n",
              static_cast<unsigned long long>(results[3].steady_allocs),
              static_cast<unsigned long long>(results[4].steady_allocs));
  std::printf("%s\n", pass ? "PASS" : "FAIL");

  write_json(out_path, results, speedup, threshold, pass);
  std::remove(path.c_str());
  return check && !pass ? 1 : 0;
}
