// Table 6 (Appendix A) — capture summary of the campus trace.
#include <algorithm>
#include <cstdio>

#include "analysis/campus_run.h"
#include "analysis/tables.h"
#include "bench_common.h"

using namespace zpm;

int main() {
  bench::banner("Table 6 / Appendix A", "Capture Summary");
  const auto& run = analysis::default_campus_run();

  double duration_s = std::max((run.last_packet - run.first_packet).sec(), 1.0);
  double zoom_pps = static_cast<double>(run.counters.zoom_packets) / duration_s;
  double bitrate = static_cast<double>(run.counters.zoom_bytes) * 8.0 / duration_s;

  // RTP media streams: wire-level streams carrying media (§6, Table 6's
  // 59,020 row counts per-(flow, SSRC) streams).
  util::TextTable table;
  table.header({"Metric", "Measured", "Paper"});
  table.row({"Capture duration", util::fixed(duration_s / 3600.0, 1) + " h", "12 h"});
  table.row({"Zoom packets",
             util::with_commas(run.counters.zoom_packets) + " (" +
                 util::fixed(zoom_pps, 0) + "/s)",
             "1,846 M (42,733/s)"});
  table.row({"Zoom flows", util::with_commas(run.zoom_flow_count), "583,777"});
  table.row({"Zoom data", util::human_bytes(run.counters.zoom_bytes) + " (" +
                              util::human_bitrate(bitrate) + ")",
             "1,203 GB (222.9 Mbit/s)"});
  table.row({"RTP media streams", util::with_commas(run.stream_count), "59,020"});
  table.row({"  (distinct media)", util::with_commas(run.media_count), "n/a"});
  table.row({"Meetings observed", util::with_commas(run.meeting_count), "n/a"});
  std::printf("%s\n", table.render().c_str());

  if (run.health.all_clear()) {
    std::printf("analyzer health: all clear (every record fully analyzed)\n\n");
  } else {
    util::TextTable health;
    health.header({"Health counter", "Records", "Dropped?"},
                  {util::Align::Left, util::Align::Right, util::Align::Left});
    for (const auto& row : analysis::health_rows(run.health))
      health.row({std::string(row.category), util::with_commas(row.count),
                  row.dropped ? "yes" : "no"});
    std::printf("analyzer health (%s records dropped):\n%s\n",
                util::with_commas(run.health.dropped_records()).c_str(),
                health.render().c_str());
  }

  std::printf("shape: absolute volume scales with ZPM_CAMPUS_SCALE; the\n");
  std::printf("streams-per-flow and bytes-per-packet ratios are comparable:\n");
  std::printf("  bytes/zoom packet: measured %.0f, paper %.0f\n",
              static_cast<double>(run.counters.zoom_bytes) /
                  std::max<double>(1.0, static_cast<double>(run.counters.zoom_packets)),
              1'203e9 / 1'846e6);
  return 0;
}
