// Fig. 2 — connection establishment in a P2P meeting: the STUN exchange
// with a zone controller on :3478 from the very port the later media
// flow uses. Prints the observed packet timeline from a simulated
// two-party meeting.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "net/packet.h"
#include "proto/stun.h"
#include "sim/meeting.h"
#include "zoom/constants.h"

using namespace zpm;

int main() {
  bench::banner("Fig. 2", "Connection Establishment in a P2P Meeting");

  sim::MeetingConfig mc;
  mc.seed = 2;
  mc.start = util::Timestamp::from_seconds(0);
  mc.duration = util::Duration::seconds(30);
  sim::ParticipantConfig a, b;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  b.ip = net::Ipv4Addr(98, 0, 0, 9);
  b.on_campus = false;
  mc.participants = {a, b};
  mc.p2p_switch_after = util::Duration::seconds(10);
  sim::MeetingSim sim(mc);

  std::printf("%-10s %-42s %s\n", "time [s]", "packet", "note");
  std::printf("--------------------------------------------------------------------\n");
  int stun_shown = 0, media_shown = 0;
  std::uint16_t stun_port = 0;
  bool p2p_port_matches = false;
  while (auto pkt = sim.next_packet()) {
    auto view = net::decode_packet(*pkt);
    if (!view || view->l4 != net::L4Proto::Udp) continue;
    bool is_stun = view->udp.dst_port == proto::kStunPort ||
                   view->udp.src_port == proto::kStunPort;
    bool is_server = view->udp.dst_port == zoom::kServerMediaPort ||
                     view->udp.src_port == zoom::kServerMediaPort;
    if (is_stun && stun_shown < 6) {
      bool outgoing = view->udp.dst_port == proto::kStunPort;
      std::printf("%-10.3f %-42s %s\n", view->ts.sec(),
                  (view->five_tuple().to_string()).c_str(),
                  outgoing ? "STUN binding request (cleartext)"
                           : "STUN binding response");
      if (outgoing) stun_port = view->udp.src_port;
      ++stun_shown;
    } else if (!is_stun && !is_server && media_shown < 5) {
      std::printf("%-10.3f %-42s %s\n", view->ts.sec(),
                  (view->five_tuple().to_string()).c_str(), "P2P media flow");
      if (view->udp.src_port == stun_port || view->udp.dst_port == stun_port)
        p2p_port_matches = true;
      ++media_shown;
    }
    if (stun_shown >= 6 && media_shown >= 5) break;
  }
  std::printf("\nkey property (§4.1): the client port used for the STUN exchange\n");
  std::printf("(:%u) is the port of the later P2P media flow -> %s\n", stun_port,
              p2p_port_matches ? "CONFIRMED" : "NOT OBSERVED");
  return 0;
}
