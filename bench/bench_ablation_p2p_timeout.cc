// Ablation — P2P detection timeout sweep (DESIGN.md decision 5): the
// STUN exchange can precede the first P2P media by tens of seconds
// (§3: the client "sometimes establishes the direct P2P connection
// within tens of seconds"), so a short candidate timeout misses the
// flow; a long timeout admits more port-reuse false-positive candidates
// — all of which the packet-format check then discards (§4.1).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/analyzer.h"
#include "net/build.h"
#include "proto/stun.h"
#include "sim/wire.h"

using namespace zpm;

int main() {
  bench::banner("Ablation", "P2P detection timeout sweep (§4.1)");

  const net::Ipv4Addr kClient(10, 8, 0, 1);
  const net::Ipv4Addr kZc(170, 114, 0, 200);
  const net::Ipv4Addr kPeer(98, 0, 0, 9);
  const std::uint16_t kPort = 47000;
  util::Rng rng(500);

  // Hand-crafted trace with a controlled STUN -> media gap of 20 s:
  //   t=0..0.5    STUN exchange from kClient:47000
  //   t=20..80    Zoom P2P media on that endpoint (1 pkt / 100 ms)
  //   t=90..140   port reuse: non-Zoom UDP from the same endpoint
  std::vector<net::RawPacket> trace;
  std::array<std::uint8_t, 12> txn{};
  for (int i = 0; i < 3; ++i) {
    util::ByteWriter stun;
    proto::make_binding_request(txn).serialize(stun);
    trace.push_back(net::build_udp(util::Timestamp::from_seconds(i * 0.2), kClient,
                                   kPort, kZc, proto::kStunPort, stun.view()));
  }
  std::uint16_t seq = 100;
  std::uint32_t ts = 90'000;
  for (int i = 0; i < 600; ++i) {
    sim::MediaPacketSpec spec;
    spec.encap_type = zoom::MediaEncapType::Video;
    spec.payload_type = zoom::pt::kVideoMain;
    spec.ssrc = 0x77;
    spec.rtp_seq = seq++;
    spec.rtp_timestamp = ts += 9000;
    spec.marker = true;
    spec.packets_in_frame = 1;
    spec.payload_bytes = 500;
    auto payload = sim::build_media_payload(spec, rng);
    trace.push_back(net::build_udp(util::Timestamp::from_seconds(20.0 + i * 0.1),
                                   kClient, kPort, kPeer, 52000, payload));
  }
  std::vector<std::uint8_t> quic(120, 0x40);
  for (int i = 0; i < 50; ++i) {
    trace.push_back(net::build_udp(util::Timestamp::from_seconds(90.0 + i),
                                   kClient, kPort, net::Ipv4Addr(142, 250, 1, 1),
                                   443, quic));
  }

  util::TextTable table;
  table.header({"timeout [s]", "P2P pkts found", "FP candidates dissected",
                "FP classified Zoom"},
               {util::Align::Right, util::Align::Right, util::Align::Right,
                util::Align::Right});
  for (double timeout_s : {1.0, 5.0, 10.0, 30.0, 60.0, 300.0}) {
    core::AnalyzerConfig cfg;
    cfg.p2p_timeout = util::Duration::seconds(timeout_s);
    core::Analyzer analyzer(cfg);
    for (const auto& pkt : trace) analyzer.offer(pkt);
    analyzer.finish();
    table.row({util::fixed(timeout_s, 0),
               std::to_string(analyzer.counters().p2p_udp_packets),
               std::to_string(analyzer.counters().p2p_false_positives),
               std::to_string(analyzer.counters().p2p_udp_packets > 0 &&
                                      analyzer.counters().p2p_false_positives > 600
                                  ? 1
                                  : 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("the 20-s STUN->media gap defeats timeouts of 1-10 s (0 P2P\n");
  std::printf("packets found); 30 s+ captures the full flow. Port-reuse\n");
  std::printf("traffic becomes a candidate under any timeout >= its lag but\n");
  std::printf("is ALWAYS rejected by dissection — zero false Zoom packets,\n");
  std::printf("matching §4.1's field experience.\n");
  return 0;
}
