// Engineering microbenchmarks: full-pipeline per-packet costs — the
// capture filter and the analyzer hot path (google-benchmark).
#include <benchmark/benchmark.h>

#include <array>

#include "capture/filter.h"
#include "core/analyzer.h"
#include "proto/stun.h"
#include "sim/meeting.h"

namespace {

using namespace zpm;

/// Pre-generates a small meeting's packet trace once.
const std::vector<net::RawPacket>& trace() {
  static const std::vector<net::RawPacket> packets = [] {
    sim::MeetingConfig mc;
    mc.seed = 1;
    mc.start = util::Timestamp::from_seconds(0);
    mc.duration = util::Duration::seconds(20);
    sim::ParticipantConfig a, b;
    a.ip = net::Ipv4Addr(10, 8, 0, 1);
    b.ip = net::Ipv4Addr(10, 8, 0, 2);
    mc.participants = {a, b};
    return sim::run_meeting(mc);
  }();
  return packets;
}

void BM_CaptureFilter(benchmark::State& state) {
  capture::CaptureConfig cfg;
  cfg.campus_subnets = {net::Ipv4Subnet(net::Ipv4Addr(10, 8, 0, 0), 16)};
  cfg.anonymize = state.range(0) != 0;
  capture::CaptureFilter filter(cfg);
  const auto& packets = trace();
  std::size_t i = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto& pkt = packets[i++ % packets.size()];
    bytes += pkt.data.size();
    auto out = filter.process(pkt);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.SetLabel(cfg.anonymize ? "anonymizing" : "plain");
}
BENCHMARK(BM_CaptureFilter)->Arg(0)->Arg(1);

void BM_AnalyzerPerPacket(benchmark::State& state) {
  core::AnalyzerConfig cfg;
  cfg.keep_frames = false;
  core::Analyzer analyzer(cfg);
  const auto& packets = trace();
  std::size_t i = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    const auto& pkt = packets[i++ % packets.size()];
    bytes += pkt.data.size();
    bool zoom = analyzer.offer(pkt);
    benchmark::DoNotOptimize(zoom);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_AnalyzerPerPacket);

/// The dispatcher's STUN pre-validation (allocation-free) against the
/// full parse it replaced on the broadcast path.
void BM_StunValidateVsParse(benchmark::State& state) {
  std::array<std::uint8_t, 12> txn{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  util::ByteWriter w;
  proto::make_binding_response(txn, net::Ipv4Addr(10, 8, 0, 1), 40000)
      .serialize(w);
  auto bytes = w.take();
  const bool parse = state.range(0) != 0;
  for (auto _ : state) {
    if (parse) {
      auto msg = proto::StunMessage::parse(bytes);
      benchmark::DoNotOptimize(msg);
    } else {
      bool ok = proto::StunMessage::validates(bytes);
      benchmark::DoNotOptimize(ok);
    }
  }
  state.SetLabel(parse ? "parse" : "validates");
}
BENCHMARK(BM_StunValidateVsParse)->Arg(0)->Arg(1);

void BM_AnonymizeAddress(benchmark::State& state) {
  capture::PrefixPreservingAnonymizer anon(0xfeed);
  std::uint32_t ip = 0x0a080001;
  for (auto _ : state) {
    auto out = anon.anonymize(net::Ipv4Addr(ip++));
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AnonymizeAddress);

void BM_MeetingSimGeneration(benchmark::State& state) {
  std::uint64_t seed = 100;
  for (auto _ : state) {
    sim::MeetingConfig mc;
    mc.seed = seed++;
    mc.start = util::Timestamp::from_seconds(0);
    mc.duration = util::Duration::seconds(2);
    sim::ParticipantConfig a, b;
    a.ip = net::Ipv4Addr(10, 8, 0, 1);
    b.ip = net::Ipv4Addr(10, 8, 0, 2);
    mc.participants = {a, b};
    auto packets = sim::run_meeting(mc);
    benchmark::DoNotOptimize(packets);
    state.counters["pkts_per_sim"] = static_cast<double>(packets.size());
  }
}
BENCHMARK(BM_MeetingSimGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
