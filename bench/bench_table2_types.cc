// Table 2 — Zoom media encapsulation type values: % packets / % bytes
// over the campus-day trace, with per-type payload offsets.
#include <cstdio>

#include "analysis/campus_run.h"
#include "analysis/tables.h"
#include "bench_common.h"

using namespace zpm;

int main() {
  bench::banner("Table 2", "Zoom Media Encapsulation Type Values");
  const auto& run = analysis::default_campus_run();
  auto rows = analysis::table2_rows(run.counters);

  util::TextTable table;
  table.header({"Value", "Packet Type", "Offset", "% Pkts.", "% Bytes"},
               {util::Align::Right, util::Align::Left, util::Align::Right,
                util::Align::Right, util::Align::Right});
  double pkt_sum = 0, byte_sum = 0;
  for (const auto& row : rows) {
    table.row({std::to_string(row.value), row.packet_type,
               std::to_string(row.offset), util::fixed(row.pct_packets * 100, 2),
               util::fixed(row.pct_bytes * 100, 2)});
    pkt_sum += row.pct_packets;
    byte_sum += row.pct_bytes;
  }
  table.separator();
  table.row({"", "Sum:", "", util::fixed(pkt_sum * 100, 2),
             util::fixed(byte_sum * 100, 2)});
  std::printf("%s\n", table.render().c_str());

  std::printf("paper: 90.03%% of packets / 91.57%% of bytes decodable as the\n");
  std::printf("five known types; video dominates both columns.\n");
  std::printf("measured: %.2f%% of packets decodable; video row first: %s\n",
              pkt_sum * 100, rows.empty() ? "-" : rows[0].packet_type.c_str());
  return 0;
}
