// Indexed metric-journal queries vs monolithic recompute: what the
// footer index buys (src/query/).
//
// Experiment groups:
//
//   * windowed-query latency: a 1-epoch window answered from a sealed
//     ~120-epoch journal (mmap + binary-searched index, only the
//     overlapping records decoded) against the same window answered by
//     analysis::recompute_query_result — a full EpochEngine pass over
//     the entire packet trace. The headline gate: the indexed path must
//     win by ZPM_QUERY_SPEEDUP_MIN (default 10x). A full-range journal
//     query is timed too (informational: that path re-decodes every
//     record, the honest worst case).
//   * steady-state allocations: a warmed QueryEngine re-running the
//     full aggregation loop (select + per-record CRC/decode into a
//     reused scratch slice + add_slice) must allocate exactly zero —
//     decode reuses row capacity and the group/distinct tables only
//     grow (query.h's contract).
//   * bit-identity gates: encode_query_result() bytes must be equal
//     journal-vs-recompute for every metric (serial journal AND 4-shard
//     journal, windowed AND full range), and a two-site merged query
//     must equal the monolithic recompute over the concatenated
//     two-site trace (the multi-site merged-CDF claim).
//
// Usage: bench_query [--check] [output.json]
//   --check  exit non-zero when a gate fails (CI smoke mode).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <new>
#include <string>
#include <vector>

#include <unistd.h>

#include "analysis/recompute.h"
#include "net/packet.h"
#include "query/query.h"
#include "sim/meeting.h"
#include "util/bytes.h"

// --------------------------------------------------------------------------
// Counting allocator: per-thread so unrelated threads can't pollute the
// loop measurements (same scheme as bench_ingest / bench_filter).

namespace {
thread_local std::uint64_t t_allocs = 0;
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  ++t_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++t_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace zpm;
using Clock = std::chrono::steady_clock;
namespace fs = std::filesystem;

constexpr int kQueryRounds = 200;      // windowed journal query passes
constexpr int kRecomputeRounds = 3;    // full-recompute passes (expensive)
constexpr std::size_t kTargetEpochs = 120;

/// One simulated meeting (three participants, one off-campus), started
/// at `start_seconds`. Two disjoint starts give the two "sites".
std::vector<net::RawPacket> make_site_trace(std::uint32_t seed,
                                            std::int64_t start_seconds) {
  sim::MeetingConfig mc;
  mc.seed = seed;
  mc.start = util::Timestamp::from_seconds(static_cast<double>(start_seconds));
  mc.duration = util::Duration::seconds(40);
  sim::ParticipantConfig a, b, c;
  a.ip = net::Ipv4Addr(10, 8, 1, 20);
  b.ip = net::Ipv4Addr(10, 8, 2, 31);
  b.send_screen_share = true;
  c.ip = net::Ipv4Addr(98, 0, 0, 3);
  c.on_campus = false;
  mc.participants = {a, b, c};
  sim::MeetingSim sim(mc);
  std::vector<net::RawPacket> out;
  while (auto pkt = sim.next_packet()) out.push_back(std::move(*pkt));
  return out;
}

std::vector<net::RawPacketView> views_of(
    const std::vector<net::RawPacket>& pkts) {
  std::vector<net::RawPacketView> views;
  views.reserve(pkts.size());
  for (const auto& p : pkts) views.push_back(net::as_view(p));
  return views;
}

analysis::EpochEngineConfig engine_config(std::size_t total_packets,
                                          std::size_t shards) {
  analysis::EpochEngineConfig config;
  config.shards = shards;
  config.limits.max_packets =
      std::max<std::uint64_t>(1, total_packets / kTargetEpochs);
  // Far above one site's 40 s extent: only the inter-site gap rotates
  // by span, so solo-site and merged epoch contents coincide.
  config.limits.max_span = util::Duration::seconds(300.0);
  config.collect_journal = true;
  return config;
}

std::vector<query::EpochSliceSet> run_slices(
    const analysis::EpochEngineConfig& config,
    const std::vector<net::RawPacketView>& views) {
  analysis::EpochEngine engine(config);
  std::vector<analysis::EpochReport> completed;
  std::vector<query::EpochSliceSet> sets;
  engine.offer(views, pipeline::BatchLifetime::Pinned, completed, &sets);
  query::EpochSliceSet last;
  if (engine.flush(&last)) sets.push_back(std::move(last));
  return sets;
}

std::string write_journal(const fs::path& path,
                          const std::vector<query::EpochSliceSet>& sets,
                          const std::string& site) {
  query::JournalWriter writer;
  std::string error;
  const std::uint32_t shards =
      sets.empty() ? 1u : sets.front().front().shard_count;
  if (!writer.open(path.string(), site, shards, &error) ) {
    std::fprintf(stderr, "journal open failed: %s\n", error.c_str());
    std::exit(1);
  }
  for (const auto& set : sets)
    for (const auto& slice : set)
      if (!writer.append(slice, &error)) {
        std::fprintf(stderr, "journal append failed: %s\n", error.c_str());
        std::exit(1);
      }
  if (!writer.finalize(&error)) {
    std::fprintf(stderr, "journal finalize failed: %s\n", error.c_str());
    std::exit(1);
  }
  return path.string();
}

std::vector<std::uint8_t> encode_result(const query::QueryResult& result) {
  util::ByteWriter w;
  query::encode_query_result(result, w);
  return w.take();
}

query::QueryResult query_readers(
    const query::QueryRequest& request,
    const std::vector<query::JournalReader*>& readers,
    const std::vector<std::uint32_t>& site_of,
    const std::vector<std::string>& site_names) {
  query::QueryResult result;
  std::string error;
  if (!query::run_query(request, readers, site_of, site_names, result,
                        &error)) {
    std::fprintf(stderr, "run_query failed: %s\n", error.c_str());
    std::exit(1);
  }
  return result;
}

query::QueryRequest window_request(std::int64_t from, std::int64_t to,
                                   query::QueryMetric metric,
                                   query::QueryGroupBy group) {
  query::QueryRequest request;
  request.from_us = from;
  request.to_us = to;
  request.metric = metric;
  request.group = group;
  return request;
}

/// Fastest-of-N wall time for `fn`.
template <typename Fn>
double best_seconds(int rounds, Fn&& fn) {
  double best = std::numeric_limits<double>::max();
  for (int r = 0; r < rounds; ++r) {
    const auto start = Clock::now();
    fn();
    const std::chrono::duration<double> dt = Clock::now() - start;
    best = std::min(best, dt.count());
  }
  return best;
}

void write_json(const std::string& path, std::size_t trace_packets,
                std::size_t journal_records, double window_query_s,
                double full_query_s, double recompute_s, double speedup,
                double threshold, std::uint64_t window_records_read,
                std::uint64_t steady_allocs, bool allocs_clean,
                bool identity_serial, bool identity_sharded,
                bool identity_multisite, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(
      f,
      "{\n  \"benchmark\": \"query\",\n"
      "  \"trace_packets\": %zu,\n"
      "  \"journal_records\": %zu,\n"
      "  \"window_query_seconds\": %.9f,\n"
      "  \"full_range_query_seconds\": %.9f,\n"
      "  \"recompute_seconds\": %.9f,\n"
      "  \"window_speedup\": %.1f,\n"
      "  \"speedup_threshold\": %.1f,\n"
      "  \"window_records_read\": %llu,\n"
      "  \"steady_allocs\": %llu,\n"
      "  \"allocs_clean\": %s,\n"
      "  \"identity_serial\": %s,\n"
      "  \"identity_sharded\": %s,\n"
      "  \"identity_multisite\": %s,\n"
      "  \"pass\": %s\n}\n",
      trace_packets, journal_records, window_query_s, full_query_s,
      recompute_s, speedup, threshold,
      static_cast<unsigned long long>(window_records_read),
      static_cast<unsigned long long>(steady_allocs),
      allocs_clean ? "true" : "false", identity_serial ? "true" : "false",
      identity_sharded ? "true" : "false",
      identity_multisite ? "true" : "false", pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_query.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else {
      out_path = argv[i];
    }
  }
  double threshold = 10.0;
  if (const char* env = std::getenv("ZPM_QUERY_SPEEDUP_MIN"))
    threshold = std::atof(env);

  const auto trace_a = make_site_trace(31, 1'700'000'000);
  const auto trace_b = make_site_trace(47, 1'700'001'000);  // 1000 s later
  const auto views_a = views_of(trace_a);
  const auto views_b = views_of(trace_b);
  std::printf("trace: site-a %zu packets, site-b %zu packets\n", trace_a.size(),
              trace_b.size());

  const auto config_1 = engine_config(trace_a.size(), 1);
  const auto config_4 = engine_config(trace_a.size(), 4);
  const auto sets_a = run_slices(config_1, views_a);
  const auto sets_a4 = run_slices(config_4, views_a);
  const auto sets_b = run_slices(config_1, views_b);
  std::printf("journal: %zu epochs (target %zu), %zu at 4 shards\n",
              sets_a.size(), kTargetEpochs, sets_a4.size());

  const fs::path dir =
      fs::temp_directory_path() / ("bench_query." + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  const auto path_a = write_journal(dir / "site-a.zpmj", sets_a, "site-a");
  const auto path_a4 = write_journal(dir / "site-a4.zpmj", sets_a4, "site-a");
  const auto path_b = write_journal(dir / "site-b.zpmj", sets_b, "site-b");

  query::JournalReader reader_a, reader_a4, reader_b;
  std::string error;
  if (!reader_a.open(path_a, &error) || !reader_a4.open(path_a4, &error) ||
      !reader_b.open(path_b, &error)) {
    std::fprintf(stderr, "reader open failed: %s\n", error.c_str());
    return 1;
  }

  // The timed window: one mid-journal epoch.
  const std::size_t mid = sets_a.size() / 2;
  const std::int64_t win_from = sets_a[mid][0].first_us;
  const std::int64_t win_to = sets_a[mid][0].last_us;
  const auto window_req = window_request(win_from, win_to,
                                         query::QueryMetric::Rtt,
                                         query::QueryGroupBy::Meeting);
  const auto full_req = window_request(std::numeric_limits<std::int64_t>::min(),
                                       std::numeric_limits<std::int64_t>::max(),
                                       query::QueryMetric::Rtt,
                                       query::QueryGroupBy::Meeting);

  const std::vector<query::JournalReader*> serial_readers{&reader_a};
  const std::vector<std::uint32_t> one_site{0};
  const std::vector<std::string> site_a_name{"site-a"};

  // --- timed passes -------------------------------------------------------
  query::QueryResult window_result;
  const double window_query_s = best_seconds(kQueryRounds, [&] {
    window_result =
        query_readers(window_req, serial_readers, one_site, site_a_name);
  });
  const double full_query_s = best_seconds(8, [&] {
    (void)query_readers(full_req, serial_readers, one_site, site_a_name);
  });
  query::QueryResult recompute_window;
  const double recompute_s = best_seconds(kRecomputeRounds, [&] {
    analysis::recompute_query_result(window_req, views_a, config_1, "site-a",
                                     recompute_window);
  });
  const double speedup =
      window_query_s > 0 ? recompute_s / window_query_s : 0.0;

  std::printf(
      "windowed query  %10.1f µs  (reads %llu of %zu records)\n"
      "full-range query%10.1f µs\n"
      "full recompute  %10.1f µs\n",
      window_query_s * 1e6,
      static_cast<unsigned long long>(window_result.records_read),
      reader_a.records().size(), full_query_s * 1e6, recompute_s * 1e6);

  // --- steady-state allocation gate --------------------------------------
  // Drive the aggregation loop the way run_query does, but with engine,
  // scratch slice and result owned outside the loop: after one warm
  // pass, a full re-run (select + CRC/decode + add_slice) must not
  // allocate at all.
  std::uint64_t steady_allocs = 0;
  {
    query::QueryEngine engine;
    query::EpochSlice scratch;
    const auto [begin, end] =
        reader_a.select(full_req.from_us, full_req.to_us);
    const auto pass = [&] {
      engine.begin(full_req, site_a_name);
      for (std::size_t i = begin; i < end; ++i)
        if (reader_a.read(i, scratch)) engine.add_slice(scratch, 0);
    };
    pass();  // warm: tables and row capacity reach their high-water mark
    const std::uint64_t before = t_allocs;
    pass();
    steady_allocs = t_allocs - before;
    query::QueryResult discard;
    engine.finish(discard);
  }
  const bool allocs_clean = steady_allocs == 0;
  std::printf("steady-state allocs over %zu records: %llu\n",
              reader_a.records().size(),
              static_cast<unsigned long long>(steady_allocs));

  // --- bit-identity gates -------------------------------------------------
  const std::vector<query::JournalReader*> sharded_readers{&reader_a4};
  bool identity_serial = true, identity_sharded = true;
  for (const auto metric :
       {query::QueryMetric::Rtt, query::QueryMetric::Jitter,
        query::QueryMetric::Bitrate, query::QueryMetric::SfuRtt}) {
    for (const auto& span :
         {std::pair<std::int64_t, std::int64_t>{win_from, win_to},
          {std::numeric_limits<std::int64_t>::min(),
           std::numeric_limits<std::int64_t>::max()}}) {
      const auto req = window_request(span.first, span.second, metric,
                                      query::QueryGroupBy::Meeting);
      query::QueryResult reference;
      analysis::recompute_query_result(req, views_a, config_1, "site-a",
                                       reference);
      const auto ref = encode_result(reference);
      identity_serial &=
          encode_result(query_readers(req, serial_readers, one_site,
                                      site_a_name)) == ref;
      identity_sharded &=
          encode_result(query_readers(req, sharded_readers, one_site,
                                      site_a_name)) == ref;
    }
  }

  // Multi-site: per-site journals merged at query time vs one engine
  // over the concatenated trace.
  bool identity_multisite = true;
  {
    std::vector<net::RawPacket> merged = trace_a;
    merged.insert(merged.end(), trace_b.begin(), trace_b.end());
    const auto merged_views = views_of(merged);
    const std::vector<query::JournalReader*> both{&reader_a, &reader_b};
    const std::vector<std::uint32_t> site_of{0, 1};
    const std::vector<std::string> names{"site-a", "site-b"};
    for (const auto group :
         {query::QueryGroupBy::All, query::QueryGroupBy::Meeting}) {
      const auto req =
          window_request(std::numeric_limits<std::int64_t>::min(),
                         std::numeric_limits<std::int64_t>::max(),
                         query::QueryMetric::Rtt, group);
      query::QueryResult reference;
      analysis::recompute_query_result(req, merged_views, config_1, "merged",
                                       reference);
      identity_multisite &=
          encode_result(query_readers(req, both, site_of, names)) ==
          encode_result(reference);
    }
  }

  const bool pass = speedup >= threshold && allocs_clean && identity_serial &&
                    identity_sharded && identity_multisite;

  std::printf(
      "\nwindowed-query speedup vs recompute: %.1fx (threshold %.1fx)\n"
      "bit-identity: serial %s, 4-shard %s, multi-site %s\n"
      "%s\n",
      speedup, threshold, identity_serial ? "ok" : "FAIL",
      identity_sharded ? "ok" : "FAIL", identity_multisite ? "ok" : "FAIL",
      pass ? "PASS" : "FAIL");

  write_json(out_path, trace_a.size(), reader_a.records().size(),
             window_query_s, full_query_s, recompute_s, speedup, threshold,
             window_result.records_read, steady_allocs, allocs_clean,
             identity_serial, identity_sharded, identity_multisite, pass);

  fs::remove_all(dir);
  return check && !pass ? 1 : 0;
}
