// Fig. 17 — packet rate at the capture switch over the campus day: all
// processed packets vs. the Zoom packets the P4 filter passes through.
#include <algorithm>
#include <cstdio>

#include "analysis/campus_run.h"
#include "bench_common.h"
#include "util/csv.h"

using namespace zpm;

int main(int argc, char** argv) {
  bench::banner("Fig. 17", "Packet Rate in Campus Trace (All vs. Zoom)");
  const auto& run = analysis::default_campus_run();

  std::unique_ptr<util::CsvWriter> csv;
  if (argc > 1) {
    csv = std::make_unique<util::CsvWriter>(argv[1]);
    csv->row({"time", "all_pps", "zoom_pps"});
  }

  double max_all = 0;
  for (const auto& bin : run.all_packet_rate)
    max_all = std::max(max_all, bin.per_second);

  auto zoom_at = [&](util::Timestamp t) {
    for (const auto& bin : run.zoom_packet_rate)
      if (bin.start == t) return bin.per_second;
    return 0.0;
  };

  std::printf("%-6s %10s %10s  all(#)/zoom(*)\n", "time", "all pps", "zoom pps");
  std::printf("----------------------------------------------------------------\n");
  double all_sum = 0, zoom_sum = 0;
  int i = 0;
  for (const auto& bin : run.all_packet_rate) {
    double z = zoom_at(bin.start);
    all_sum += bin.per_second;
    zoom_sum += z;
    if (csv)
      csv->row({util::clock_label(static_cast<std::int64_t>(bin.start.sec())),
                util::fixed(bin.per_second, 1), util::fixed(z, 1)});
    if (i++ % 15 == 0) {
      std::string all_bar = bench::bar(bin.per_second, max_all, 34);
      auto zoom_len = static_cast<std::size_t>(z / max_all * 34 + 0.5);
      for (std::size_t k = 0; k < std::min(zoom_len, all_bar.size()); ++k)
        all_bar[k] = '*';
      std::printf("%-6s %10.0f %10.0f  %s\n",
                  util::clock_label(static_cast<std::int64_t>(bin.start.sec())).c_str(),
                  bin.per_second, z, all_bar.c_str());
    }
  }
  double n = static_cast<double>(run.all_packet_rate.size());
  std::printf("\naverages: %.0f pps processed, %.0f pps Zoom (ratio %.1fx)\n",
              all_sum / n, zoom_sum / n, all_sum / std::max(zoom_sum, 1.0));
  std::printf("paper: 626,069 pps processed, 43,733 pps Zoom (ratio 14.3x;\n");
  std::printf("our background_ratio config scales the synthetic ratio).\n");
  std::printf("filter counters: processed=%llu passed=%llu dropped=%llu\n",
              static_cast<unsigned long long>(run.capture.processed),
              static_cast<unsigned long long>(run.capture.passed),
              static_cast<unsigned long long>(run.capture.dropped));
  return 0;
}
