// Parallel-pipeline throughput: packets/sec of the sharded analyzer at
// 1/2/4/8 shards against the serial baseline, plus raw SPSC-ring
// throughput (google-benchmark). The speedup target (≥2.5x at 4 shards)
// assumes ≥4 physical cores; on fewer cores the numbers degenerate to
// the dispatch overhead.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "core/analyzer.h"
#include "pipeline/parallel_analyzer.h"
#include "sim/meeting.h"
#include "util/spsc_ring.h"

namespace {

using namespace zpm;

/// Pre-generates one multi-participant meeting trace, shared by all runs.
const std::vector<net::RawPacket>& trace() {
  static const std::vector<net::RawPacket> packets = [] {
    sim::MeetingConfig mc;
    mc.seed = 1;
    mc.start = util::Timestamp::from_seconds(0);
    mc.duration = util::Duration::seconds(45);
    sim::ParticipantConfig a, b, c, d;
    a.ip = net::Ipv4Addr(10, 8, 0, 1);
    b.ip = net::Ipv4Addr(10, 8, 0, 2);
    b.send_screen_share = true;
    c.ip = net::Ipv4Addr(10, 8, 0, 3);
    d.ip = net::Ipv4Addr(98, 0, 0, 4);
    d.on_campus = false;
    mc.participants = {a, b, c, d};
    return sim::run_meeting(mc);
  }();
  return packets;
}

/// Serial baseline: one core::Analyzer over the whole trace.
void BM_SerialWholeTrace(benchmark::State& state) {
  const auto& packets = trace();
  for (auto _ : state) {
    core::AnalyzerConfig cfg;
    cfg.keep_frames = false;
    core::Analyzer analyzer(cfg);
    for (const auto& pkt : packets) analyzer.offer(pkt);
    analyzer.finish();
    benchmark::DoNotOptimize(analyzer.counters().zoom_packets);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets.size()));
}
BENCHMARK(BM_SerialWholeTrace)->Unit(benchmark::kMillisecond)->UseRealTime();

/// The sharded pipeline end to end (decode + dispatch + shards + merge).
void BM_ParallelPipeline(benchmark::State& state) {
  const auto& packets = trace();
  for (auto _ : state) {
    pipeline::ParallelAnalyzerConfig cfg;
    cfg.analyzer.keep_frames = false;
    cfg.shards = static_cast<std::size_t>(state.range(0));
    pipeline::ParallelAnalyzer analyzer(cfg);
    for (const auto& pkt : packets) analyzer.offer(pkt);
    analyzer.finish();
    benchmark::DoNotOptimize(analyzer.counters().zoom_packets);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets.size()));
  state.SetLabel(std::to_string(std::thread::hardware_concurrency()) + " cores");
}
BENCHMARK(BM_ParallelPipeline)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The sharded pipeline fed through offer_batch() with pinned views —
/// the mapped-ingest fast path (one ring publish per shard per batch,
/// no per-packet copies).
void BM_ParallelPipelineBatched(benchmark::State& state) {
  const auto& packets = trace();
  // The owned trace outlives every run, so Pinned is legal.
  std::vector<net::RawPacketView> views;
  views.reserve(packets.size());
  for (const auto& pkt : packets) views.push_back(net::as_view(pkt));
  constexpr std::size_t kBatch = 1024;
  for (auto _ : state) {
    pipeline::ParallelAnalyzerConfig cfg;
    cfg.analyzer.keep_frames = false;
    cfg.shards = static_cast<std::size_t>(state.range(0));
    pipeline::ParallelAnalyzer analyzer(cfg);
    for (std::size_t i = 0; i < views.size(); i += kBatch) {
      auto n = std::min(kBatch, views.size() - i);
      analyzer.offer_batch(std::span<const net::RawPacketView>(&views[i], n),
                           pipeline::BatchLifetime::Pinned);
    }
    analyzer.finish();
    benchmark::DoNotOptimize(analyzer.counters().zoom_packets);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(packets.size()));
  state.SetLabel(std::to_string(std::thread::hardware_concurrency()) + " cores");
}
BENCHMARK(BM_ParallelPipelineBatched)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Raw ring throughput: one producer, one consumer, 64-bit items.
void BM_SpscRingThroughput(benchmark::State& state) {
  constexpr std::uint64_t kBatch = 1 << 20;
  for (auto _ : state) {
    util::SpscRing<std::uint64_t> ring(1 << 12);
    std::thread producer([&ring] {
      for (std::uint64_t i = 0; i < kBatch; ++i) ring.push(i);
      ring.close();
    });
    std::uint64_t sum = 0;
    while (auto v = ring.pop()) sum += *v;
    producer.join();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_SpscRingThroughput)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Ring throughput with batched push/pop (one atomic publish per batch)
/// at the arg'd batch size — the pipeline handoff's building block.
void BM_SpscRingBatchThroughput(benchmark::State& state) {
  constexpr std::uint64_t kItems = 1 << 20;
  const auto batch_size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    util::SpscRing<std::uint64_t> ring(1 << 12);
    std::thread producer([&ring, batch_size] {
      std::vector<std::uint64_t> batch(batch_size);
      std::uint64_t next = 0;
      while (next < kItems) {
        for (auto& v : batch) v = next++;
        ring.push_batch(std::span<std::uint64_t>(batch));
      }
      ring.close();
    });
    std::uint64_t sum = 0;
    std::vector<std::uint64_t> out;
    out.reserve(batch_size);
    while (ring.pop_batch(out, batch_size) > 0) {
      for (std::uint64_t v : out) sum += v;
      out.clear();
    }
    producer.join();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kItems));
}
BENCHMARK(BM_SpscRingBatchThroughput)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
