// Front-end filter throughput: the vectorized two-stage batch
// pre-filter (capture::BatchFilter, SWAR/SSE2 probes + flat
// flow-dispatch table) against the legacy per-packet software-Tofino
// filter (capture::CaptureFilter) on a mixed campus trace.
//
// Reports pkts/s, bytes/s and heap allocations per packet for each mode
// (a replaced global operator new counts per-thread allocations), and
// asserts the structural claims behind the front end:
//   * the vector batch classifier beats the legacy per-packet filter by
//     the configured factor (default 3x; ZPM_FILTER_SPEEDUP_MIN),
//   * warm batch classification — scalar and vector alike — performs
//     zero steady-state heap allocations,
//   * the scalar reference and the vector path agree on every verdict
//     tally (the cheap end of the bit-identity contract; the full check
//     lives in test_batch_filter and fuzz_batch_filter).
//
// Usage: bench_filter [--check] [output.json]
//   --check  exit non-zero when an assertion fails (CI smoke mode).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <new>
#include <span>
#include <string>
#include <vector>

#include "capture/batch_filter.h"
#include "capture/filter.h"
#include "net/packet.h"
#include "sim/campus.h"

// --------------------------------------------------------------------------
// Counting allocator: per-thread so unrelated threads can't pollute the
// loop measurements (same scheme as bench_ingest).

namespace {
thread_local std::uint64_t t_allocs = 0;
}  // namespace

// GCC pairs its builtin knowledge of operator new[] with free() at
// inlined call sites and warns, even though these replacements make the
// pairing correct by construction.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  ++t_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++t_allocs;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace zpm;
using Clock = std::chrono::steady_clock;

struct ModeResult {
  std::string name;
  std::uint64_t packets = 0;       // cumulative over timed passes
  std::uint64_t bytes = 0;
  double seconds = 0;              // fastest single pass
  std::uint64_t allocs = 0;        // loop allocs over timed passes
  std::uint64_t steady_allocs = 0; // loop allocs of the final pass
  int passes = 0;

  // Throughput of the fastest pass: the headline number. Averaging
  // instead would let one descheduled pass on a shared machine decide
  // the speedup comparison.
  [[nodiscard]] double pkts_per_s() const {
    return seconds > 0 && passes > 0
               ? static_cast<double>(packets) / passes / seconds
               : 0;
  }
  [[nodiscard]] double bytes_per_s() const {
    return seconds > 0 && passes > 0
               ? static_cast<double>(bytes) / passes / seconds
               : 0;
  }
};

/// A campus-style mix: heavy non-Zoom background (the reject path, the
/// dominant traffic class on a real tap) woven with a genuine meeting
/// (the admit + Zoom-shape path). The campus scheduler drops meetings
/// clamped under two minutes, so the meeting is simulated separately
/// and merged into the same window.
std::vector<net::RawPacket> make_trace() {
  sim::CampusConfig cc;
  cc.seed = 7;
  cc.duration = util::Duration::seconds(60);
  cc.meetings_per_peak_hour = 10.0;
  cc.background_ratio = 3.0;
  sim::CampusSimulation campus(cc);
  std::vector<net::RawPacket> background;
  while (auto pkt = campus.next_packet()) background.push_back(std::move(*pkt));

  sim::MeetingConfig mc;
  mc.seed = 1;
  mc.start = cc.day_start + util::Duration::seconds(2);
  mc.duration = util::Duration::seconds(55);
  sim::ParticipantConfig a, b, c, d;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  b.ip = net::Ipv4Addr(10, 8, 0, 2);
  b.send_screen_share = true;
  c.ip = net::Ipv4Addr(10, 8, 0, 3);
  d.ip = net::Ipv4Addr(98, 0, 0, 4);
  d.on_campus = false;
  mc.participants = {a, b, c, d};
  auto meeting = sim::run_meeting(mc);

  std::vector<net::RawPacket> trace;
  trace.reserve(background.size() + meeting.size());
  std::size_t i = 0, j = 0;
  while (i < background.size() || j < meeting.size()) {
    bool take_bg = j == meeting.size() ||
                   (i < background.size() && background[i].ts <= meeting[j].ts);
    trace.push_back(std::move(take_bg ? background[i++] : meeting[j++]));
  }
  return trace;
}

constexpr int kRounds = 16;       // trace passes per mode (first = warm-up)
constexpr std::size_t kBatch = 1024;

struct Mode {
  ModeResult result;
  std::function<void(ModeResult&)> pass;
};

void print_result(const ModeResult& r) {
  std::printf("%-24s %9.2f Mpkt/s %9.1f MB/s  %8.4f allocs/pkt  (steady %llu)\n",
              r.name.c_str(), r.pkts_per_s() / 1e6, r.bytes_per_s() / 1e6,
              r.packets ? static_cast<double>(r.allocs) / static_cast<double>(r.packets)
                        : 0.0,
              static_cast<unsigned long long>(r.steady_allocs));
}

void write_json(const std::string& path, const std::vector<ModeResult>& results,
                double speedup, double threshold, bool parity, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"filter\",\n  \"modes\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"packets\": %llu, \"bytes\": %llu, "
                 "\"seconds\": %.6f, \"pkts_per_s\": %.1f, \"bytes_per_s\": %.1f, "
                 "\"allocs\": %llu, \"steady_allocs\": %llu}%s\n",
                 r.name.c_str(), static_cast<unsigned long long>(r.packets),
                 static_cast<unsigned long long>(r.bytes), r.seconds,
                 r.pkts_per_s(), r.bytes_per_s(),
                 static_cast<unsigned long long>(r.allocs),
                 static_cast<unsigned long long>(r.steady_allocs),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"vector_vs_legacy_speedup\": %.2f,\n"
               "  \"speedup_threshold\": %.2f,\n"
               "  \"verdict_parity\": %s,\n  \"pass\": %s\n}\n",
               speedup, threshold, parity ? "true" : "false",
               pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_filter.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else {
      out_path = argv[i];
    }
  }
  double threshold = 3.0;
  if (const char* env = std::getenv("ZPM_FILTER_SPEEDUP_MIN"))
    threshold = std::atof(env);

  auto trace = make_trace();
  std::uint64_t trace_bytes = 0;
  for (const auto& pkt : trace) trace_bytes += pkt.data.size();
  std::printf("trace: %zu packets, %.1f MB\n\n", trace.size(),
              static_cast<double>(trace_bytes) / 1e6);

  std::vector<net::RawPacketView> views;
  views.reserve(trace.size());
  for (const auto& pkt : trace) views.push_back(net::as_view(pkt));

  // Every pass lambda classifies the whole trace once and records the
  // wall time and allocation count of its classification loop in
  // `loop_seconds` / `loop_allocs`. The filters are constructed once and
  // kept warm across passes — the first (discarded) round establishes
  // the flow-table and candidate-set capacities, so timed rounds measure
  // the steady state, exactly the regime a long-running tap is in. The
  // harness interleaves passes round-robin across modes so transient
  // machine-wide interference degrades every mode's samples instead of
  // sinking one mode's entire window.
  double loop_seconds = 0;
  std::uint64_t loop_allocs = 0;

  // Legacy path: the per-packet software-Tofino filter (decode + match
  // + anonymize-free copy-out). Anonymization off so the comparison is
  // filtering against filtering, not filtering against crypto.
  capture::CaptureConfig legacy_cfg;
  legacy_cfg.anonymize = false;
  legacy_cfg.campus_subnets = {net::Ipv4Subnet(net::Ipv4Addr(10, 8, 0, 0), 16)};
  capture::CaptureFilter legacy(legacy_cfg);

  capture::BatchFilterConfig fe_cfg;
  fe_cfg.shards = 4;
  capture::BatchFilter scalar(fe_cfg, capture::BatchFilter::Mode::ForceScalar);
  capture::BatchFilter vector(fe_cfg, capture::BatchFilter::Mode::ForceSimd);
  capture::BatchVerdicts verdicts;

  std::vector<Mode> modes;
  auto add_mode = [&](const char* name, std::function<void(ModeResult&)> fn) {
    modes.emplace_back();
    modes.back().result.name = name;
    modes.back().pass = std::move(fn);
  };

  add_mode("legacy_per_packet", [&](ModeResult& r) {
    std::uint64_t before = t_allocs;
    auto start = Clock::now();
    std::uint64_t passed = 0;
    for (const auto& pkt : trace) {
      if (legacy.process(pkt)) ++passed;
      r.bytes += pkt.data.size();
      ++r.packets;
    }
    loop_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    loop_allocs = t_allocs - before;
    (void)passed;
  });

  auto batch_pass = [&](capture::BatchFilter& filter, ModeResult& r) {
    std::uint64_t before = t_allocs;
    auto start = Clock::now();
    for (std::size_t off = 0; off < views.size(); off += kBatch) {
      std::size_t n = std::min(kBatch, views.size() - off);
      std::span<const net::RawPacketView> batch(views.data() + off, n);
      filter.classify(batch, verdicts);
      for (const auto& v : batch) r.bytes += v.data.size();
      r.packets += n;
    }
    loop_seconds = std::chrono::duration<double>(Clock::now() - start).count();
    loop_allocs = t_allocs - before;
  };

  add_mode("batch_scalar", [&](ModeResult& r) { batch_pass(scalar, r); });
  add_mode("batch_vector", [&](ModeResult& r) { batch_pass(vector, r); });

  // Round 0 warms every mode (flow table, candidate set, verdict
  // buffers, allocator pools) and is discarded. Timed rounds keep each
  // mode's fastest pass; the last round's loop allocations are the
  // reported steady state.
  for (auto& m : modes) m.result.seconds = 1e30;
  for (int round = 0; round < kRounds; ++round) {
    for (auto& m : modes) {
      ModeResult scratch;
      ModeResult& target = round == 0 ? scratch : m.result;
      m.pass(target);
      if (round == 0) continue;
      if (loop_seconds < m.result.seconds) m.result.seconds = loop_seconds;
      ++m.result.passes;
      m.result.allocs += loop_allocs;
      m.result.steady_allocs = loop_allocs;
    }
  }
  std::vector<ModeResult> results;
  for (auto& m : modes) results.push_back(std::move(m.result));

  for (const auto& r : results) print_result(r);

  const auto& ss = scalar.stats();
  const auto& vs = vector.stats();
  bool parity = ss.packets == vs.packets && ss.admitted == vs.admitted &&
                ss.rejected == vs.rejected && ss.full_parse == vs.full_parse &&
                ss.zoom_shaped == vs.zoom_shaped &&
                ss.stun_flagged == vs.stun_flagged &&
                scalar.flow_count() == vector.flow_count() &&
                scalar.candidate_endpoint_count() ==
                    vector.candidate_endpoint_count();

  double base = results[0].pkts_per_s();
  double fast = results[2].pkts_per_s();
  double speedup = base > 0 ? fast / base : 0;
  // Warm classification must not allocate at all — zero per whole trace
  // pass, not merely per packet.
  bool scalar_clean = results[1].steady_allocs == 0;
  bool vector_clean = results[2].steady_allocs == 0;
  bool pass = speedup >= threshold && scalar_clean && vector_clean && parity;

  std::printf("\nverdict mix (vector): %llu admitted, %llu rejected, "
              "%llu full-parse of %llu\n",
              static_cast<unsigned long long>(vs.admitted),
              static_cast<unsigned long long>(vs.rejected),
              static_cast<unsigned long long>(vs.full_parse),
              static_cast<unsigned long long>(vs.packets));
  std::printf("batch_vector vs legacy_per_packet: %.2fx (threshold %.2fx)\n",
              speedup, threshold);
  std::printf("steady-state allocations per pass: scalar=%llu, vector=%llu\n",
              static_cast<unsigned long long>(results[1].steady_allocs),
              static_cast<unsigned long long>(results[2].steady_allocs));
  std::printf("scalar/vector verdict parity: %s\n", parity ? "yes" : "NO");
  std::printf("%s\n", pass ? "PASS" : "FAIL");

  write_json(out_path, results, speedup, threshold, parity, pass);
  return check && !pass ? 1 : 0;
}
