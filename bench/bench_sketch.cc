// Sketch-tier benchmark: O(1)-memory background summarization against
// the exact per-flow state it replaces, on a synthetic million-flow
// Zipf background trace (sim::BackgroundTraffic).
//
// Sweeps the --flow-memory-budget sizes {256 KiB, 1 MiB, 4 MiB} and
// reports, per budget: absorb throughput, the tier's actual allocated
// footprint vs. its budget, heavy-hitter recall@100 against the
// generator's realized byte tallies, and the exact-baseline bytes an
// unordered_map would have spent on the same flows (the unbounded
// growth the tier replaces). Asserts (--check, CI smoke mode):
//   * the tier footprint stays within 1.25x the configured budget,
//   * warm absorb performs zero steady-state heap allocations,
//   * recall@100 >= 95% at the 4 MiB budget (ZPM_SKETCH_RECALL_MIN),
//   * the Zoom-admitted report is byte-identical with the tier on or
//     off, serial and 4-shard alike (digest over counters, streams,
//     meetings, RTT samples and health).
//
// Usage: bench_sketch [--check] [output.json]
//   ZPM_SKETCH_FLOWS / ZPM_SKETCH_PACKETS scale the background trace.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "capture/batch_filter.h"
#include "net/packet.h"
#include "pipeline/parallel_analyzer.h"
#include "sim/background.h"
#include "sim/campus.h"
#include "sim/meeting.h"

// --------------------------------------------------------------------------
// Counting allocator: per-thread counts and bytes (same scheme as
// bench_filter/bench_ingest, plus a byte tally so the exact-baseline
// growth is measured, not estimated).

namespace {
thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_alloc_bytes = 0;
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  ++t_allocs;
  t_alloc_bytes += size;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++t_allocs;
  t_alloc_bytes += size;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace zpm;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kBatch = 1024;
constexpr std::size_t kTopK = 100;

struct BudgetResult {
  std::size_t budget = 0;
  std::size_t tier_bytes = 0;    // actual allocated tier footprint
  double footprint_ratio = 0;    // tier_bytes / budget
  double recall_at_100 = 0;
  double seconds = 0;            // cumulative classify time
  std::uint64_t packets = 0;
  std::uint64_t evictions = 0;
  std::size_t tracked_flows = 0;

  [[nodiscard]] double pkts_per_s() const {
    return seconds > 0 ? static_cast<double>(packets) / seconds : 0;
  }
};

std::uint64_t vm_hwm_kb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (!std::strncmp(line, "VmHWM:", 6)) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

// --------------------------------------------------------------------------
// Report digest: everything the Zoom-admitted report exposes, hashed.
// Any byte of difference between tier-on/off or serial/sharded runs
// changes the digest.

struct Digest {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void flow(const net::FiveTuple& t) {
    const net::PackedFlowKey key(t);
    u64(key.k1);
    u64(key.k2);
  }
};

std::uint64_t report_digest(const pipeline::ParallelAnalyzer& par) {
  Digest d;
  const core::AnalyzerCounters& c = par.counters();
  d.u64(c.total_packets);
  d.u64(c.total_bytes);
  d.u64(c.zoom_packets);
  d.u64(c.zoom_bytes);
  d.u64(c.server_udp_packets);
  d.u64(c.p2p_udp_packets);
  d.u64(c.stun_packets);
  d.u64(c.tcp_control_packets);
  d.u64(c.media_packets);
  d.u64(c.rtcp_packets);
  for (const auto& [type, tally] : c.encap_types()) {
    d.u64(type);
    d.u64(tally.packets);
    d.u64(tally.bytes);
  }
  for (const auto& [key, tally] : c.payload_types()) {
    d.u64(static_cast<std::uint64_t>(key.first) << 8 | key.second);
    d.u64(tally.packets);
    d.u64(tally.bytes);
  }

  core::AnalyzerHealth health = par.health();
  health.ring_wait_spins = 0;  // documented nondeterministic
  d.u64(health.frontend_rejected);
  d.u64(health.dropped_records());
  d.u64(health.snaplen_truncated + health.non_monotonic_ts +
        health.quarantined_flows + health.unknown_payload_type);

  d.u64(par.zoom_flow_count());
  d.u64(par.media_count());
  for (const core::StreamInfo* s : par.streams()) {
    d.u64(s->index);
    d.flow(s->key.flow);
    d.u64(s->key.ssrc);
    d.u64(static_cast<std::uint64_t>(s->kind));
    d.u64(static_cast<std::uint64_t>(s->direction));
    d.u64(s->media_id);
    d.u64(s->meeting_id);
    d.u64(static_cast<std::uint64_t>(s->first_seen.us()));
    d.u64(static_cast<std::uint64_t>(s->last_seen.us()));
    d.u64(s->metrics->media_packets());
    d.u64(s->metrics->media_payload_bytes());
    d.u64(s->metrics->total_loss().gap_packets);
    d.f64(s->metrics->jitter_ms().value_or(-1.0));
    d.f64(s->metrics->mean_latency_ms().value_or(-1.0));
    for (const auto& sec : s->metrics->seconds()) {
      d.u64(static_cast<std::uint64_t>(sec.bin_start.us()));
      d.u64(sec.packets);
      d.u64(sec.media_bytes);
      d.u64(sec.transport_bytes);
      d.u64(sec.frames_completed);
      d.f64(sec.frame_rate_fps);
      d.f64(sec.jitter_ms.value_or(-1.0));
      d.f64(sec.latency_ms.value_or(-1.0));
      d.u64(sec.duplicates);
      d.u64(sec.reordered);
      d.u64(sec.gap_packets);
    }
  }
  for (const auto* m : par.meetings().meetings()) {
    d.u64(m->id);
    d.u64(m->stream_count);
    d.u64(m->media_ids.size());
    d.u64(m->client_ips.size());
    d.u64(static_cast<std::uint64_t>(m->first_seen.us()));
    d.u64(static_cast<std::uint64_t>(m->last_seen.us()));
    d.u64(m->saw_p2p ? 1 : 0);
    for (const auto& s : m->rtt_to_sfu) {
      d.u64(static_cast<std::uint64_t>(s.when.us()));
      d.u64(static_cast<std::uint64_t>(s.rtt.us()));
    }
  }
  for (const auto& s : par.sfu_rtt_samples()) {
    d.u64(static_cast<std::uint64_t>(s.when.us()));
    d.u64(static_cast<std::uint64_t>(s.rtt.us()));
  }
  // tcp_rtt is an unordered_map: hash in sorted-key order.
  std::vector<net::FiveTuple> tcp_keys;
  for (const auto& [flow, est] : par.tcp_rtt()) tcp_keys.push_back(flow);
  std::sort(tcp_keys.begin(), tcp_keys.end());
  for (const auto& flow : tcp_keys) {
    const auto& est = par.tcp_rtt().at(flow);
    d.flow(flow);
    d.u64(est.server_rtt().size());
    d.u64(est.client_rtt().size());
  }
  return d.h;
}

/// A small Zoom-bearing campus slice (meeting + background noise) for
/// the bit-identity check.
std::vector<net::RawPacket> make_zoom_trace() {
  sim::CampusConfig cc;
  cc.seed = 21;
  cc.duration = util::Duration::seconds(180);
  cc.meetings_per_peak_hour = 60.0;
  cc.background_ratio = 1.0;
  sim::CampusSimulation campus(cc);
  std::vector<net::RawPacket> trace;
  while (auto pkt = campus.next_packet()) trace.push_back(std::move(*pkt));
  return trace;
}

/// Runs the Zoom trace through BatchFilter + ParallelAnalyzer with the
/// given shard count and tier budget; returns the report digest.
std::uint64_t run_screened(const std::vector<net::RawPacket>& trace,
                           std::size_t shards, std::size_t budget) {
  capture::BatchFilterConfig fc;
  fc.shards = shards;
  fc.flow_memory_budget = budget;
  capture::BatchFilter filter(fc);

  pipeline::ParallelAnalyzerConfig pc;
  pc.shards = shards;
  pipeline::ParallelAnalyzer par(pc);

  capture::BatchVerdicts verdicts;
  std::vector<net::RawPacketView> views;
  views.reserve(kBatch);
  for (std::size_t off = 0; off < trace.size(); off += kBatch) {
    views.clear();
    const std::size_t n = std::min(kBatch, trace.size() - off);
    for (std::size_t j = 0; j < n; ++j)
      views.push_back(net::as_view(trace[off + j]));
    filter.classify(views, verdicts);
    par.offer_batch(views, pipeline::BatchLifetime::Pinned, verdicts);
  }
  par.finish();
  return report_digest(par);
}

void write_json(const std::string& path, const std::vector<BudgetResult>& budgets,
                std::size_t flows, std::uint64_t packets,
                std::uint64_t exact_baseline_bytes, std::uint64_t steady_allocs,
                bool report_identical, double recall_min, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"sketch\",\n");
  std::fprintf(f, "  \"flows\": %zu,\n  \"packets\": %llu,\n", flows,
               static_cast<unsigned long long>(packets));
  std::fprintf(f, "  \"budgets\": [\n");
  for (std::size_t i = 0; i < budgets.size(); ++i) {
    const auto& b = budgets[i];
    std::fprintf(f,
                 "    {\"budget_bytes\": %zu, \"tier_bytes\": %zu, "
                 "\"footprint_ratio\": %.3f, \"recall_at_100\": %.4f, "
                 "\"pkts_per_s\": %.1f, \"evictions\": %llu, "
                 "\"tracked_flows\": %zu}%s\n",
                 b.budget, b.tier_bytes, b.footprint_ratio, b.recall_at_100,
                 b.pkts_per_s(), static_cast<unsigned long long>(b.evictions),
                 b.tracked_flows, i + 1 < budgets.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n  \"exact_baseline_bytes\": %llu,\n"
               "  \"steady_allocs\": %llu,\n"
               "  \"peak_rss_kb\": %llu,\n"
               "  \"report_identical\": %s,\n"
               "  \"recall_threshold\": %.2f,\n  \"pass\": %s\n}\n",
               static_cast<unsigned long long>(exact_baseline_bytes),
               static_cast<unsigned long long>(steady_allocs),
               static_cast<unsigned long long>(vm_hwm_kb()),
               report_identical ? "true" : "false", recall_min,
               pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_sketch.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else {
      out_path = argv[i];
    }
  }

  sim::BackgroundConfig bg;
  bg.seed = 11;
  bg.flows = 1'000'000;
  if (const char* env = std::getenv("ZPM_SKETCH_FLOWS"))
    bg.flows = std::strtoull(env, nullptr, 10);
  bg.packets = bg.flows * 4;
  if (const char* env = std::getenv("ZPM_SKETCH_PACKETS"))
    bg.packets = std::strtoull(env, nullptr, 10);
  double recall_min = 0.95;
  if (const char* env = std::getenv("ZPM_SKETCH_RECALL_MIN"))
    recall_min = std::atof(env);

  std::printf("background: %zu flows, %zu packets (Zipf s=%.2f)\n\n", bg.flows,
              bg.packets, bg.zipf_s);

  // One streamed generation pass feeds every budget's filter (identical
  // packets, independent tiers) plus the exact-state baseline.
  const std::vector<std::size_t> kBudgets = {256 << 10, 1 << 20, 4 << 20};
  std::vector<BudgetResult> results;
  std::vector<capture::BatchFilter> filters;
  filters.reserve(kBudgets.size());
  for (std::size_t budget : kBudgets) {
    capture::BatchFilterConfig fc;
    fc.shards = 4;
    fc.flow_memory_budget = budget;
    filters.emplace_back(fc);
    BudgetResult r;
    r.budget = budget;
    std::size_t tier_bytes = 0;
    for (std::size_t s = 0; s < fc.shards; ++s)
      tier_bytes += filters.back().tier(s).memory_bytes();
    r.tier_bytes = tier_bytes;
    r.footprint_ratio =
        static_cast<double>(tier_bytes) / static_cast<double>(budget);
    results.push_back(r);
  }

  sim::BackgroundTraffic gen(bg);
  std::unordered_map<net::FiveTuple, sim::FlowLoad> exact_baseline;
  std::uint64_t exact_bytes = 0;
  capture::BatchVerdicts verdicts;
  std::vector<net::RawPacket> batch_pkts;
  std::vector<net::RawPacketView> views;
  std::uint64_t absorbed_total = 0;
  for (;;) {
    batch_pkts.clear();
    if (gen.next_batch(kBatch, batch_pkts) == 0) break;
    views.clear();
    for (const auto& pkt : batch_pkts) views.push_back(net::as_view(pkt));
    for (std::size_t i = 0; i < filters.size(); ++i) {
      const auto start = Clock::now();
      filters[i].classify(views, verdicts);
      results[i].seconds +=
          std::chrono::duration<double>(Clock::now() - start).count();
      results[i].packets += views.size();
    }
    // The exact baseline the tier replaces: one hash-map entry per flow,
    // growth measured in actual allocated bytes.
    const std::uint64_t before = t_alloc_bytes;
    for (const auto& pkt : batch_pkts) {
      net::DecodeFailure df{};
      auto view = net::decode_packet(pkt.ts, pkt.data, &df);
      if (!view) continue;
      auto& load = exact_baseline[view->five_tuple().canonical()];
      load.packets += 1;
      load.bytes += pkt.data.size();
    }
    exact_bytes += t_alloc_bytes - before;
    absorbed_total += batch_pkts.size();
  }

  // Everything must have been rejected (the generator avoids every Zoom
  // discriminant); any admit would break the screening premise.
  bool all_rejected = true;
  for (auto& f : filters)
    all_rejected = all_rejected && f.stats().rejected == f.stats().packets;

  // Heavy-hitter recall@100 against the generator's realized tallies.
  const std::vector<std::size_t> truth = gen.top_flows(kTopK);
  for (std::size_t i = 0; i < filters.size(); ++i) {
    const sketch::TierReport report = filters[i].sketch_report(kTopK);
    std::size_t hits = 0;
    for (std::size_t rank : truth) {
      const net::FiveTuple want = gen.flow(rank).canonical();
      for (const auto& hh : report.heavy_hitters) {
        if (hh.flow.canonical() == want) {
          ++hits;
          break;
        }
      }
    }
    results[i].recall_at_100 =
        static_cast<double>(hits) / static_cast<double>(truth.size());
    results[i].evictions = report.stats.evictions;
    std::size_t tracked = 0;
    for (std::size_t s = 0; s < 4; ++s)
      tracked += filters[i].tier(s).tracked_flows();
    results[i].tracked_flows = tracked;
  }

  // Steady-state allocation check: a warmed tier absorbs with zero heap
  // traffic (batch generation excluded from the count).
  std::uint64_t steady_allocs = 0;
  {
    sim::BackgroundConfig small = bg;
    small.flows = std::min<std::size_t>(bg.flows, 50'000);
    small.packets = small.flows * 4;
    sim::BackgroundTraffic small_gen(small);
    std::vector<net::RawPacket> small_trace;
    while (small_gen.next_batch(kBatch, small_trace) != 0) {
    }
    std::vector<net::RawPacketView> small_views;
    small_views.reserve(small_trace.size());
    for (const auto& pkt : small_trace) small_views.push_back(net::as_view(pkt));
    capture::BatchFilterConfig fc;
    fc.shards = 4;
    fc.flow_memory_budget = 1 << 20;
    capture::BatchFilter warm(fc);
    capture::BatchVerdicts wv;
    auto run = [&] {
      for (std::size_t off = 0; off < small_views.size(); off += kBatch) {
        const std::size_t n = std::min(kBatch, small_views.size() - off);
        warm.classify(std::span<const net::RawPacketView>(
                          small_views.data() + off, n),
                      wv);
      }
    };
    run();  // warm pass: tables, verdict buffers
    const std::uint64_t before = t_allocs;
    run();
    steady_allocs = t_allocs - before;
  }

  // Bit-identity: Zoom-admitted report digest with the tier on vs. off,
  // serial vs. 4 shards.
  const std::vector<net::RawPacket> zoom_trace = make_zoom_trace();
  const std::uint64_t d_off_1 = run_screened(zoom_trace, 1, 0);
  const std::uint64_t d_on_1 = run_screened(zoom_trace, 1, 1 << 20);
  const std::uint64_t d_off_4 = run_screened(zoom_trace, 4, 0);
  const std::uint64_t d_on_4 = run_screened(zoom_trace, 4, 1 << 20);
  const bool report_identical =
      d_off_1 == d_on_1 && d_off_1 == d_off_4 && d_off_1 == d_on_4;

  bool footprint_ok = true;
  for (const auto& r : results) {
    std::printf(
        "budget %7zu KiB: %8.2f Mpkt/s  footprint %7zu KiB (%.2fx)  "
        "recall@100 %.1f%%  tracked %zu  evictions %llu\n",
        r.budget >> 10, r.pkts_per_s() / 1e6, r.tier_bytes >> 10,
        r.footprint_ratio, r.recall_at_100 * 100, r.tracked_flows,
        static_cast<unsigned long long>(r.evictions));
    footprint_ok = footprint_ok && r.footprint_ratio <= 1.25;
  }
  const double recall_4m = results.back().recall_at_100;
  const bool recall_ok = recall_4m >= recall_min;
  const bool steady_ok = steady_allocs == 0;
  const bool pass = footprint_ok && recall_ok && steady_ok && report_identical &&
                    all_rejected;

  std::printf("\nexact-baseline flow state: %.1f MB for %zu flows "
              "(tier: bounded by budget)\n",
              static_cast<double>(exact_bytes) / 1e6, exact_baseline.size());
  std::printf("steady-state allocations per warm pass: %llu\n",
              static_cast<unsigned long long>(steady_allocs));
  std::printf("screening: %s\n", all_rejected ? "all background rejected"
                                              : "UNEXPECTED ADMITS");
  std::printf("report identity (tier on/off x serial/4-shard): %s\n",
              report_identical ? "yes" : "NO");
  std::printf("recall@100 at 4 MiB: %.1f%% (threshold %.0f%%)\n",
              recall_4m * 100, recall_min * 100);
  std::printf("%s\n", pass ? "PASS" : "FAIL");

  write_json(out_path, results, bg.flows, absorbed_total, exact_bytes,
             steady_allocs, report_identical, recall_min, pass);
  return check && !pass ? 1 : 0;
}
