// Fig. 10 — validation of the frame-rate, latency and jitter estimators
// against the client-side ground truth ("Zoom QoS data"): a 5-6 minute
// two-party call with two cross-traffic bursts, exactly the §5
// controlled-experiment setup.
#include <cmath>
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "core/analyzer.h"
#include "sim/meeting.h"
#include "util/csv.h"
#include "util/stats.h"

using namespace zpm;

int main(int argc, char** argv) {
  bench::banner("Fig. 10", "Estimation Accuracies From Single Experiment");

  // Controlled experiment: 2 participants, 340 s, cross-traffic at
  // ~100 s and ~220 s for ~18 s each (the paper ran bandwidth tests
  // twice per call).
  sim::MeetingConfig mc;
  mc.seed = 10;
  mc.start = util::Timestamp::from_seconds(0);
  mc.duration = util::Duration::seconds(340);
  mc.collect_qos = true;
  sim::ParticipantConfig a, b;
  a.ip = net::Ipv4Addr(10, 8, 0, 1);
  b.ip = net::Ipv4Addr(10, 8, 0, 2);
  a.video.reduced_mode_fraction = 0.0;  // steady 28 fps unless congested
  b.video.reduced_mode_fraction = 0.0;
  a.wan_path.base_delay_ms = 9.0;
  b.wan_path.base_delay_ms = 9.0;
  for (double start_s : {100.0, 220.0}) {
    sim::CongestionEpisode ep;
    ep.start = util::Timestamp::from_seconds(start_s);
    ep.end = util::Timestamp::from_seconds(start_s + 18.0);
    ep.extra_delay_ms = 45.0;
    ep.extra_loss = 0.015;
    a.congestion.push_back(ep);
    b.congestion.push_back(ep);
  }
  mc.participants = {a, b};

  sim::MeetingSim sim(mc);
  core::AnalyzerConfig cfg;
  core::Analyzer analyzer(cfg);
  while (auto pkt = sim.next_packet()) analyzer.offer(*pkt);
  analyzer.finish();

  // Ground truth per second (receiver 1 watches participant 0's video).
  std::map<int, sim::QosSample> qos_by_sec;
  for (const auto& q : sim.qos_samples())
    if (q.receiver == 1) qos_by_sec[static_cast<int>(q.t.sec())] = q;

  // Estimates per second from the downlink copy of participant 0's video
  // stream arriving at participant 1.
  const core::StreamInfo* watched = nullptr;
  for (const auto& s : analyzer.streams().streams()) {
    if (s->kind == zoom::MediaKind::Video &&
        s->direction == core::StreamDirection::FromSfu && s->client_ip == b.ip) {
      watched = s.get();
      break;
    }
  }
  if (!watched) {
    std::printf("ERROR: watched stream not found\n");
    return 1;
  }

  const char* csv_path = argc > 1 ? argv[1] : nullptr;
  std::unique_ptr<util::CsvWriter> csv;
  if (csv_path) {
    csv = std::make_unique<util::CsvWriter>(csv_path);
    csv->row({"t_s", "est_fps", "qos_fps", "est_latency_ms", "qos_latency_ms",
              "est_jitter_ms", "qos_jitter_ms"});
  }

  util::RunningStats fps_abs_err, lat_err;
  double est_jitter_peak = 0, qos_jitter_peak = 0;
  double fps_quiet_sum = 0, fps_burst_sum = 0;
  int fps_quiet_n = 0, fps_burst_n = 0;
  std::printf("time   est_fps qos_fps | est_lat qos_lat | est_jit qos_jit\n");
  std::printf("----------------------------------------------------------\n");
  for (const auto& sec : watched->metrics->seconds()) {
    int t = static_cast<int>(sec.bin_start.sec());
    auto it = qos_by_sec.find(t);
    if (it == qos_by_sec.end()) continue;
    const auto& q = it->second;
    double est_fps = sec.frame_rate_fps;
    double est_lat = sec.latency_ms.value_or(-1);
    double est_jit = sec.jitter_ms.value_or(-1);
    fps_abs_err.add(std::abs(est_fps - q.frame_rate));
    if (est_lat >= 0) lat_err.add(est_lat - q.latency_ms);
    if (est_jit > est_jitter_peak) est_jitter_peak = est_jit;
    if (q.jitter_ms > qos_jitter_peak) qos_jitter_peak = q.jitter_ms;
    bool in_burst = (t >= 98 && t <= 122) || (t >= 218 && t <= 242);
    if (in_burst) {
      fps_burst_sum += est_fps;
      ++fps_burst_n;
    } else if (t > 10) {
      fps_quiet_sum += est_fps;
      ++fps_quiet_n;
    }
    if (csv)
      csv->row_numeric({static_cast<double>(t), est_fps, q.frame_rate, est_lat,
                        q.latency_ms, est_jit, q.jitter_ms},
                       2);
    if (t % 20 == 0)
      std::printf("%4d   %7.1f %7.1f | %7.1f %7.1f | %7.2f %7.2f\n", t, est_fps,
                  q.frame_rate, est_lat, q.latency_ms, est_jit, q.jitter_ms);
  }

  double fps_quiet = fps_quiet_n ? fps_quiet_sum / fps_quiet_n : 0;
  double fps_burst = fps_burst_n ? fps_burst_sum / fps_burst_n : 0;
  std::printf("\nFig. 10a (frame rate): mean |est - client| = %.2f fps;\n",
              fps_abs_err.mean());
  std::printf("  quiet-period fps %.1f vs burst fps %.1f -> congestion dips\n",
              fps_quiet, fps_burst);
  std::printf("  reproduced: %s (paper: ~27 fps dropping during downloads)\n",
              (fps_quiet > fps_burst + 3.0 && fps_abs_err.mean() < 4.0) ? "yes" : "NO");
  std::printf("Fig. 10b (latency): mean est-client error %.2f ms; continuous\n",
              lat_err.mean());
  std::printf("  RTT probes: %zu (client refreshes once per 5 s)\n",
              analyzer.sfu_rtt_samples().size());
  std::printf("Fig. 10c (jitter): peak estimate %.1f ms vs client-reported\n",
              est_jitter_peak);
  std::printf("  peak %.1f ms — the paper found the same mismatch: Zoom\n",
              qos_jitter_peak);
  std::printf("  reports <2 ms jitter even under congestion while the RFC 3550\n");
  std::printf("  computation reflects the latency fluctuation. Reproduced: %s\n",
              (est_jitter_peak > 3.0 && qos_jitter_peak < 2.1) ? "yes" : "NO");
  if (csv_path) std::printf("\nper-second series written to %s\n", csv_path);
  return 0;
}
