// Ablation — duplicate-stream matching features (DESIGN.md decision 4):
// SSRC-only matching merges unrelated meetings because Zoom SSRCs are
// small and reused (§4.3.1); adding the RTP-timestamp feature fixes it.
#include <cstdio>

#include "bench_common.h"
#include "core/analyzer.h"
#include "sim/meeting.h"

using namespace zpm;

namespace {

std::size_t run_with(bool require_timestamp_match, std::uint64_t seed,
                     std::size_t* media_out) {
  // Four concurrent 2-party meetings that all use the SAME SSRC base —
  // the worst case the paper's challenge 2 describes.
  core::AnalyzerConfig cfg;
  cfg.duplicate_match.require_timestamp_match = require_timestamp_match;
  core::Analyzer analyzer(cfg);
  for (int m = 0; m < 4; ++m) {
    sim::MeetingConfig mc;
    mc.seed = seed + static_cast<std::uint64_t>(m);
    mc.start = util::Timestamp::from_seconds(m * 3.0);
    mc.duration = util::Duration::seconds(30);
    mc.ssrc_base = 0;  // colliding SSRCs across all meetings
    sim::ParticipantConfig a, b;
    a.ip = net::Ipv4Addr(10, 8, static_cast<std::uint8_t>(m), 1);
    b.ip = net::Ipv4Addr(10, 8, static_cast<std::uint8_t>(m), 2);
    mc.participants = {a, b};
    sim::MeetingSim sim(mc);
    while (auto pkt = sim.next_packet()) analyzer.offer(*pkt);
  }
  analyzer.finish();
  *media_out = analyzer.streams().media_count();
  return analyzer.meetings().meeting_count();
}

}  // namespace

int main() {
  bench::banner("Ablation", "Duplicate-stream matching: 4 features vs SSRC-only");

  util::TextTable table;
  table.header({"Matcher", "Meetings found", "Distinct media", "Truth"},
               {util::Align::Left, util::Align::Right, util::Align::Right,
                util::Align::Right});
  std::size_t media_full = 0, media_ssrc = 0;
  std::size_t full = run_with(true, 400, &media_full);
  std::size_t ssrc_only = run_with(false, 400, &media_ssrc);
  table.row({"time+SSRC+seq+timestamp (ours)", std::to_string(full),
             std::to_string(media_full), "4 / 16"});
  table.row({"SSRC only (ablation)", std::to_string(ssrc_only),
             std::to_string(media_ssrc), "4 / 16"});
  std::printf("%s\n", table.render().c_str());
  std::printf("4 concurrent 2-party meetings, all with colliding SSRCs\n");
  std::printf("(Zoom SSRCs are neither unique nor random, §4.3.1).\n\n");
  std::printf("ours separates all meetings: %s\n", full == 4 ? "yes" : "NO");
  std::printf("SSRC-only collapses media across meetings: %s (%zu < %zu)\n",
              media_ssrc < media_full ? "yes" : "no", media_ssrc, media_full);
  return 0;
}
