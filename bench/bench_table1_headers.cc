// Table 1 / Fig. 7 — cleartext header fields of the two Zoom
// encapsulations, verified by serializing representative packets with
// the simulator and re-reading every documented field at its byte range.
#include <cstdio>

#include "bench_common.h"
#include "sim/wire.h"
#include "zoom/classify.h"

using namespace zpm;

namespace {

void verify_and_print(util::TextTable& table, const char* field, std::size_t lo,
                      std::size_t hi, const char* comment, bool ok) {
  char range[32];
  if (lo == hi) std::snprintf(range, sizeof(range), "%zu", lo);
  else std::snprintf(range, sizeof(range), "%zu-%zu", lo, hi);
  table.row({field, range, comment, ok ? "verified" : "MISMATCH"});
}

}  // namespace

int main() {
  bench::banner("Table 1 / Fig. 7", "Select Header Fields in Cleartext");

  util::Rng rng(1);
  // Build a server-based video packet with distinctive field values.
  sim::MediaPacketSpec spec;
  spec.encap_type = zoom::MediaEncapType::Video;
  spec.payload_type = zoom::pt::kVideoMain;
  spec.ssrc = 0xcafe;
  spec.rtp_seq = 0x1111;
  spec.rtp_timestamp = 0x22334455;
  spec.frame_sequence = 0x6677;
  spec.packets_in_frame = 5;
  spec.media_encap_seq = 0x99aa;
  spec.media_encap_ts = 0x22334455;
  spec.payload_bytes = 100;
  auto inner = sim::build_media_payload(spec, rng);
  auto pkt = sim::wrap_sfu(inner, 0xbbcc, /*from_sfu=*/true);

  util::TextTable table;
  table.header({"Field Name", "Byte Range", "Comment", "Check"});

  table.row({"Zoom SFU Encapsulation", "", "", ""});
  verify_and_print(table, "- Type", 0, 0, "0x05 = media encap follows",
                   pkt[0] == 0x05);
  verify_and_print(table, "- Sequence #", 1, 2, "",
                   pkt[1] == 0xbb && pkt[2] == 0xcc);
  verify_and_print(table, "- Direction", 7, 7, "0x00/0x04 - to/from SFU",
                   pkt[7] == 0x04);

  table.row({"Zoom Media Encapsulation", "", "", ""});
  const std::size_t b = 8;  // media encap starts after the SFU header
  verify_and_print(table, "- Type", 0, 0, "media type or RTCP", pkt[b + 0] == 16);
  verify_and_print(table, "- Sequence #", 9, 10, "",
                   pkt[b + 9] == 0x99 && pkt[b + 10] == 0xaa);
  verify_and_print(table, "- Timestamp", 11, 14, "",
                   pkt[b + 11] == 0x22 && pkt[b + 14] == 0x55);
  verify_and_print(table, "- Frame seq. #", 21, 22, "only in video packets",
                   pkt[b + 21] == 0x66 && pkt[b + 22] == 0x77);
  verify_and_print(table, "- # Packets/frame", 23, 23, "only in video packets",
                   pkt[b + 23] == 5);
  std::printf("%s\n", table.render().c_str());

  // Fig. 7: payload offsets per media encapsulation type, confirmed by
  // dissecting one packet of each type.
  util::TextTable offsets;
  offsets.header({"Encap type", "Value", "RTP/RTCP offset", "Dissects"});
  struct Case {
    const char* name;
    zoom::MediaEncapType type;
    std::uint8_t pt;
  };
  for (const Case& c : {Case{"RTP (Audio)", zoom::MediaEncapType::Audio, 112},
                        Case{"RTP Video (H.264 FU-A)", zoom::MediaEncapType::Video, 98},
                        Case{"RTP (Screen Share)", zoom::MediaEncapType::ScreenShare, 99}}) {
    sim::MediaPacketSpec s;
    s.encap_type = c.type;
    s.payload_type = c.pt;
    s.packets_in_frame = 1;
    s.payload_bytes = 60;
    auto bytes = sim::build_media_payload(s, rng);
    auto zp = zoom::dissect(bytes, zoom::Transport::P2P);
    offsets.row({c.name, std::to_string(static_cast<int>(c.type)),
                 "+" + std::to_string(zoom::media_payload_offset(
                           static_cast<std::uint8_t>(c.type))),
                 zp && zp->is_media() ? "yes" : "NO"});
  }
  offsets.row({"RTCP", "33/34", "+16", "yes"});
  std::printf("%s\n", offsets.render().c_str());
  return 0;
}
