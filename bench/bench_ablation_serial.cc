// Ablation — serial-number arithmetic (DESIGN.md decision 2): naive
// integer comparison of RTP sequence numbers breaks at the 16-bit wrap,
// corrupting loss/reorder statistics; RFC 1982-style arithmetic does not.
#include <cstdio>

#include "bench_common.h"
#include "metrics/loss.h"
#include "util/rng.h"

using namespace zpm;

namespace {

// A deliberately naive tracker using plain integer comparison.
struct NaiveTracker {
  std::uint64_t reordered = 0;
  std::uint64_t gaps = 0;
  bool have_prev = false;
  std::uint16_t prev = 0;
  void on_packet(std::uint16_t seq) {
    if (have_prev) {
      if (seq < prev) ++reordered;                 // wrap looks like reorder
      else if (seq > prev + 1) gaps += seq - prev - 1;
    }
    prev = std::max(prev, seq);
    have_prev = true;
  }
};

}  // namespace

int main() {
  bench::banner("Ablation", "Serial vs. naive sequence-number arithmetic");

  // A clean in-order stream of 500k packets starting near the wrap:
  // ground truth is ZERO loss and ZERO reordering.
  const int kPackets = 500'000;
  metrics::SeqTracker serial;
  NaiveTracker naive;
  std::uint16_t seq = 65'000;
  for (int i = 0; i < kPackets; ++i) {
    serial.on_packet(util::Timestamp::from_micros(i * 1000), seq);
    naive.on_packet(seq);
    ++seq;  // wraps ~7 times
  }
  serial.finish();

  util::TextTable table;
  table.header({"Tracker", "False reorders", "False gap packets"},
               {util::Align::Left, util::Align::Right, util::Align::Right});
  table.row({"RFC1982 serial (ours)",
             std::to_string(serial.counters().reordered),
             std::to_string(serial.counters().gap_packets)});
  table.row({"naive integer compare", std::to_string(naive.reordered),
             std::to_string(naive.gaps)});
  std::printf("%s\n", table.render().c_str());
  std::printf("%d in-order packets crossing the 16-bit wrap %d times.\n",
              kPackets, kPackets / 65536);
  std::printf("ours correct: %s; naive false events: %llu\n",
              (serial.counters().reordered == 0 && serial.counters().gap_packets == 0)
                  ? "yes"
                  : "NO",
              static_cast<unsigned long long>(naive.reordered + naive.gaps));
  return 0;
}
