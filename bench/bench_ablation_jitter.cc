// Ablation — jitter computation (DESIGN.md decision 6): RFC 3550
// packetization-corrected frame-level jitter vs. naive packet
// interarrival variance. The naive estimator reads Zoom's bursty,
// variable-packetization traffic as huge jitter even on a clean path.
#include <cstdio>

#include "bench_common.h"
#include "metrics/jitter.h"
#include "util/serial.h"
#include "net/packet.h"
#include "proto/rtp.h"
#include "sim/meeting.h"
#include "zoom/classify.h"

using namespace zpm;

int main() {
  bench::banner("Ablation", "RFC 3550 frame-level jitter vs naive interarrival");

  // One clean meeting (nearly no network jitter) and one congested.
  for (double path_jitter_ms : {0.2, 6.0}) {
    sim::MeetingConfig mc;
    mc.seed = 600;
    mc.start = util::Timestamp::from_seconds(0);
    mc.duration = util::Duration::seconds(40);
    sim::ParticipantConfig a, b;
    a.ip = net::Ipv4Addr(10, 8, 0, 1);
    b.ip = net::Ipv4Addr(10, 8, 0, 2);
    a.wan_path.jitter_ms = path_jitter_ms;
    b.wan_path.jitter_ms = path_jitter_ms;
    a.video.reduced_mode_fraction = 0.0;
    mc.participants = {a, b};
    sim::MeetingSim sim(mc);

    // Feed ONE video stream (a single SSRC on a single downlink flow —
    // the sub-stream discipline §5.4 demands) into both estimators.
    metrics::JitterEstimator frame_level(zoom::kVideoClockHz);
    metrics::NaiveInterarrivalJitter naive;
    std::optional<std::uint32_t> watched_ssrc;
    std::optional<net::FiveTuple> watched_flow;
    std::uint32_t last_ts = 0;
    bool have_ts = false;
    while (auto pkt = sim.next_packet()) {
      auto view = net::decode_packet(*pkt);
      if (!view || view->l4 != net::L4Proto::Udp) continue;
      if (view->udp.src_port != zoom::kServerMediaPort) continue;
      auto zp = zoom::dissect(view->l4_payload, zoom::Transport::ServerBased);
      if (!zp || !zp->is_media()) continue;
      if (zp->media_kind() != zoom::MediaKind::Video) continue;
      if (zp->rtp->payload_type != zoom::pt::kVideoMain) continue;
      if (!watched_ssrc) {
        watched_ssrc = zp->rtp->ssrc;
        watched_flow = view->five_tuple();
      }
      if (zp->rtp->ssrc != *watched_ssrc || !(view->five_tuple() == *watched_flow))
        continue;
      naive.add(view->ts);  // every packet: the naive way
      if (!have_ts || util::serial_less(last_ts, zp->rtp->timestamp)) {
        // First packet of each new frame (advancing media time — late
        // retransmissions carry old timestamps and are skipped).
        frame_level.add(view->ts, zp->rtp->timestamp);
        last_ts = zp->rtp->timestamp;
        have_ts = true;
      }
    }
    std::printf("path jitter %.1f ms:\n", path_jitter_ms);
    std::printf("  RFC 3550 frame-level estimate: %7.2f ms  (tracks the path)\n",
                frame_level.jitter_ms());
    std::printf("  naive interarrival stddev:     %7.2f ms  (dominated by frame\n",
                naive.jitter_ms());
    std::printf("  pacing + packet bursts, regardless of the network)\n\n");
  }
  std::printf("conclusion (§5.4): without RTP-timestamp correction and frame\n");
  std::printf("grouping, 'jitter' mostly measures the codec, not the network.\n");
  return 0;
}
