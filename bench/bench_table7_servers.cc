// Table 7 / Appendix B — Zoom server infrastructure census: parse the
// reverse-DNS naming scheme over the (synthetic) address inventory and
// tally MMRs / Zone Controllers per location.
#include <cstdio>

#include "bench_common.h"
#include "util/rng.h"
#include "zoom/server_db.h"

using namespace zpm;

int main() {
  bench::banner("Table 7 / Appendix B", "Locations of Zoom Servers");

  util::Rng rng(2022);
  auto records = zoom::synthesize_infrastructure(rng, /*noise_count=*/250);
  std::printf("inventory: %zu addresses (incl. %d non-MMR/ZC names the census\n",
              records.size(), 250);
  std::printf("must skip: www/api/turn/... hosts)\n\n");

  auto tallies = zoom::census_tally(records);
  util::TextTable table;
  table.header({"Location", "# MMRs", "# ZCs"},
               {util::Align::Left, util::Align::Right, util::Align::Right});
  int mmrs = 0, zcs = 0;
  for (const auto& t : tallies) {
    table.row({t.label, std::to_string(t.mmrs), std::to_string(t.zcs)});
    mmrs += t.mmrs;
    zcs += t.zcs;
  }
  table.separator();
  table.row({"Total", std::to_string(mmrs), std::to_string(zcs)});
  std::printf("%s\n", table.render().c_str());
  std::printf("paper totals: 5,452 MMRs / 256 ZCs across 14 sites;\n");
  std::printf("measured:     %d MMRs / %d ZCs across %zu sites — %s\n", mmrs, zcs,
              tallies.size(),
              (mmrs == 5452 && zcs == 256) ? "exact" : "MISMATCH");
  return 0;
}
