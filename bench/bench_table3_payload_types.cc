// Table 3 — RTP payload type mix over the campus-day trace.
#include <cstdio>

#include "analysis/campus_run.h"
#include "analysis/tables.h"
#include "bench_common.h"

using namespace zpm;

int main() {
  bench::banner("Table 3", "RTP Payload Type Values in Trace");
  const auto& run = analysis::default_campus_run();
  auto rows = analysis::table3_rows(run.counters);

  util::TextTable table;
  table.header({"Media Type", "RTP PT", "Description", "% Pkts.", "% Bytes"},
               {util::Align::Left, util::Align::Right, util::Align::Left,
                util::Align::Right, util::Align::Right});
  double pkt_sum = 0, byte_sum = 0;
  for (const auto& row : rows) {
    table.row({row.media_type, std::to_string(row.rtp_pt), row.description,
               util::fixed(row.pct_packets * 100, 2),
               util::fixed(row.pct_bytes * 100, 2)});
    pkt_sum += row.pct_packets;
    byte_sum += row.pct_bytes;
  }
  table.separator();
  table.row({"", "", "Sum:", util::fixed(pkt_sum * 100, 2),
             util::fixed(byte_sum * 100, 2)});
  std::printf("%s\n", table.render().c_str());

  std::printf("paper shape: video PT 98 largest in packets (62%%) and bytes\n");
  std::printf("(79%%); audio many packets few bytes; FEC sub-streams minor;\n");
  std::printf("silent-mode audio (PT 99) present but small.\n");
  return 0;
}
