// Fig. 14 — data rate per media type over the campus day: hourly spikes
// as meetings start, lunch dip, evening decline; video dominates.
#include <cstdio>

#include "analysis/campus_run.h"
#include "bench_common.h"
#include "util/csv.h"

using namespace zpm;

int main(int argc, char** argv) {
  bench::banner("Fig. 14", "Data Rate per Media Type in Campus Trace");
  const auto& run = analysis::default_campus_run();

  auto series_for = [&](zoom::MediaKind kind)
      -> const std::vector<util::IntervalBinner::Bin>* {
    auto it = run.media_rate.find(static_cast<std::uint8_t>(kind));
    return it == run.media_rate.end() ? nullptr : &it->second;
  };
  const auto* video = series_for(zoom::MediaKind::Video);
  const auto* audio = series_for(zoom::MediaKind::Audio);
  const auto* screen = series_for(zoom::MediaKind::ScreenShare);
  if (!video) {
    std::printf("no video traffic in trace\n");
    return 1;
  }

  double max_rate = 0;
  for (const auto& bin : *video) max_rate = std::max(max_rate, bin.per_second * 8);

  std::unique_ptr<util::CsvWriter> csv;
  if (argc > 1) {
    csv = std::make_unique<util::CsvWriter>(argv[1]);
    csv->row({"time", "video_bps", "audio_bps", "screen_bps"});
  }

  std::printf("%-6s %12s %12s %12s  video rate\n", "time", "video", "audio",
              "screen");
  std::printf("--------------------------------------------------------------\n");
  auto rate_at = [](const std::vector<util::IntervalBinner::Bin>* s,
                    util::Timestamp t) {
    if (!s) return 0.0;
    for (const auto& bin : *s)
      if (bin.start == t) return bin.per_second * 8;
    return 0.0;
  };
  int i = 0;
  for (const auto& bin : *video) {
    double v = bin.per_second * 8;
    double au = rate_at(audio, bin.start);
    double sc = rate_at(screen, bin.start);
    if (csv)
      csv->row({util::clock_label(static_cast<std::int64_t>(bin.start.sec())),
                util::fixed(v, 0), util::fixed(au, 0), util::fixed(sc, 0)});
    // Print every 15 minutes.
    if (i++ % 15 == 0) {
      std::printf("%-6s %12s %12s %12s  %s\n",
                  util::clock_label(static_cast<std::int64_t>(bin.start.sec())).c_str(),
                  util::human_bitrate(v).c_str(), util::human_bitrate(au).c_str(),
                  util::human_bitrate(sc).c_str(), bench::bar(v, max_rate, 30).c_str());
    }
  }

  // Shape checks.
  double video_total = 0, audio_total = 0, screen_total = 0;
  for (const auto& bin : *video) video_total += bin.total;
  if (audio) for (const auto& bin : *audio) audio_total += bin.total;
  if (screen) for (const auto& bin : *screen) screen_total += bin.total;
  double total = video_total + audio_total + screen_total;
  std::printf("\nbyte shares: video %.0f%%, audio %.0f%%, screen %.0f%%\n",
              100 * video_total / total, 100 * audio_total / total,
              100 * screen_total / total);
  std::printf("paper: video carries the vast majority of bytes; spikes at\n");
  std::printf("full/half hours; lunch dip; decline after work hours.\n");
  return 0;
}
