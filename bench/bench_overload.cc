// Overload-governor benchmark: what graceful degradation costs when it
// is idle, and what it guarantees when it fires.
//
// Runs a simulated campus slice (meetings + background) through the
// epoch engine three ways — ungoverned, governed at zero injected
// pressure, and governed under a forced overload schedule that rides
// the ladder to L4 and back — and reports throughput plus the shed
// accounting. Asserts (--check, CI smoke mode):
//   * byte-identity: the governed-but-calm run produces epoch records
//     byte-identical to the ungoverned run, serial and 4-shard alike
//     (the L0 path must cost nothing in output),
//   * calm-governor overhead stays under ZPM_OVERLOAD_OVERHEAD_MAX
//     (default 1.5x — the governor does one observation per window and
//     one level check per batch, so the real ratio is ~1.0),
//   * determinism: two forced-overload replays (different batch sizes)
//     produce byte-identical records and identical shed totals,
//   * the forced run actually sheds (reaches L4) and recovers (ends
//     back at L0),
//   * conservation on every epoch record:
//     packets == counters.total_packets + shed(L1..L4).
//
// Usage: bench_overload [--check] [output.json]
//   ZPM_OVERLOAD_MINUTES scales the trace (default 3 simulated minutes).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "analysis/epoch.h"
#include "sim/campus.h"
#include "util/bytes.h"

namespace {

using namespace zpm;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kBatch = 1024;

std::vector<net::RawPacket> make_trace(double minutes) {
  sim::CampusConfig cc;
  cc.seed = 31;
  cc.duration = util::Duration::seconds(minutes * 60.0);
  cc.meetings_per_peak_hour = 60.0;
  cc.background_ratio = 1.0;
  sim::CampusSimulation campus(cc);
  std::vector<net::RawPacket> trace;
  while (auto pkt = campus.next_packet()) trace.push_back(std::move(*pkt));
  return trace;
}

struct RunResult {
  std::vector<analysis::EpochReport> reports;
  double seconds = 0;
  std::uint64_t offered = 0;
};

RunResult run(const std::vector<net::RawPacket>& trace,
              const analysis::EpochEngineConfig& config, std::size_t batch) {
  std::vector<net::RawPacketView> views;
  views.reserve(trace.size());
  for (const auto& p : trace) views.push_back(net::as_view(p));

  RunResult r;
  analysis::EpochEngine engine(config);
  const auto start = Clock::now();
  for (std::size_t off = 0; off < views.size(); off += batch) {
    const std::size_t n = std::min(batch, views.size() - off);
    engine.offer(std::span<const net::RawPacketView>(views).subspan(off, n),
                 pipeline::BatchLifetime::Pinned, r.reports);
  }
  if (auto last = engine.flush()) r.reports.push_back(std::move(*last));
  r.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  r.offered = views.size();
  return r;
}

/// FNV over the concatenated epoch-record encodings: any byte of
/// difference between two runs changes the digest.
std::uint64_t digest(const std::vector<analysis::EpochReport>& reports) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& rep : reports) {
    util::ByteWriter w;
    analysis::encode_epoch_report(rep, w);
    for (const std::uint8_t b : w.data()) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

struct ShedTotals {
  std::uint64_t l1 = 0, l2 = 0, l3 = 0, l4 = 0;
  std::uint32_t max_level = 0;
  bool conserved = true;

  [[nodiscard]] std::uint64_t total() const { return l1 + l2 + l3 + l4; }
};

ShedTotals tally(const std::vector<analysis::EpochReport>& reports) {
  ShedTotals t;
  for (const auto& rep : reports) {
    t.l1 += rep.health.overload_shed_l1;
    t.l2 += rep.health.overload_shed_l2;
    t.l3 += rep.health.overload_shed_l3;
    t.l4 += rep.health.overload_shed_l4;
    if (rep.max_overload_level > t.max_level) t.max_level = rep.max_overload_level;
    if (rep.packets !=
        rep.counters.total_packets + rep.health.overload_shed_total())
      t.conserved = false;
  }
  return t;
}

void write_json(const std::string& path, std::uint64_t packets,
                double plain_pps, double calm_pps, double overhead,
                double overloaded_pps, const ShedTotals& shed,
                bool identical, bool deterministic, bool recovered,
                double overhead_max, bool pass) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"overload\",\n");
  std::fprintf(f, "  \"packets\": %llu,\n",
               static_cast<unsigned long long>(packets));
  std::fprintf(f,
               "  \"ungoverned_pkts_per_s\": %.1f,\n"
               "  \"calm_governed_pkts_per_s\": %.1f,\n"
               "  \"calm_overhead_ratio\": %.3f,\n"
               "  \"overhead_threshold\": %.2f,\n"
               "  \"overloaded_pkts_per_s\": %.1f,\n",
               plain_pps, calm_pps, overhead, overhead_max, overloaded_pps);
  std::fprintf(f,
               "  \"shed_l1\": %llu,\n  \"shed_l2\": %llu,\n"
               "  \"shed_l3\": %llu,\n  \"shed_l4\": %llu,\n"
               "  \"max_level\": %u,\n",
               static_cast<unsigned long long>(shed.l1),
               static_cast<unsigned long long>(shed.l2),
               static_cast<unsigned long long>(shed.l3),
               static_cast<unsigned long long>(shed.l4), shed.max_level);
  std::fprintf(f,
               "  \"calm_identical\": %s,\n  \"deterministic\": %s,\n"
               "  \"recovered\": %s,\n  \"conserved\": %s,\n"
               "  \"pass\": %s\n}\n",
               identical ? "true" : "false", deterministic ? "true" : "false",
               recovered ? "true" : "false", shed.conserved ? "true" : "false",
               pass ? "true" : "false");
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  std::string out_path = "BENCH_overload.json";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--check")) {
      check = true;
    } else {
      out_path = argv[i];
    }
  }
  double minutes = 3.0;
  if (const char* env = std::getenv("ZPM_OVERLOAD_MINUTES"))
    minutes = std::atof(env);
  double overhead_max = 1.5;
  if (const char* env = std::getenv("ZPM_OVERLOAD_OVERHEAD_MAX"))
    overhead_max = std::atof(env);

  const std::vector<net::RawPacket> trace = make_trace(minutes);
  std::printf("campus trace: %zu packets (%.1f simulated minutes)\n\n",
              trace.size(), minutes);

  analysis::EpochEngineConfig base;
  base.analyzer.keep_frames = false;
  base.limits.max_packets = 200'000;
  base.limits.max_span = util::Duration::micros(0);
  // Shard-invariance of the records needs the sketch tier out of the
  // digest (its eviction pattern legitimately depends on the shard
  // count); its cost is benchmarked separately in bench_sketch.
  base.flow_memory_budget = 0;

  analysis::EpochEngineConfig calm = base;
  calm.overload.enabled = true;
  calm.overload.inject = "0-1:0.0";  // pinned zero pressure: wall-clock-free

  // Pressure saturated for the first 60% of the stream, calm after: the
  // ladder climbs to L4, sheds, and must walk back down to L0.
  analysis::EpochEngineConfig stormy = base;
  stormy.overload.enabled = true;
  stormy.overload.window_packets = 2048;
  {
    char spec[64];
    std::snprintf(spec, sizeof spec, "0-%zu:1.0", trace.size() * 6 / 10);
    stormy.overload.inject = spec;
  }

  // -- calm path: identity + overhead, serial and 4-shard --------------
  const RunResult plain_1 = run(trace, base, kBatch);
  const RunResult calm_1 = run(trace, calm, kBatch);
  analysis::EpochEngineConfig base_4 = base, calm_4 = calm;
  base_4.shards = 4;
  calm_4.shards = 4;
  const RunResult plain_4 = run(trace, base_4, kBatch);
  const RunResult calm_4r = run(trace, calm_4, kBatch);
  const bool identical = digest(plain_1.reports) == digest(calm_1.reports) &&
                         digest(plain_4.reports) == digest(calm_4r.reports);

  const double plain_pps =
      static_cast<double>(plain_1.offered) / plain_1.seconds;
  const double calm_pps = static_cast<double>(calm_1.offered) / calm_1.seconds;
  const double overhead = plain_pps > 0 ? plain_pps / calm_pps : 0;

  // -- forced overload: determinism, shedding, recovery, conservation --
  const RunResult storm_a = run(trace, stormy, kBatch);
  const RunResult storm_b = run(trace, stormy, 257);
  const bool deterministic = digest(storm_a.reports) == digest(storm_b.reports);
  const ShedTotals shed = tally(storm_a.reports);
  const double overloaded_pps =
      static_cast<double>(storm_a.offered) / storm_a.seconds;
  // Recovery: the last epoch must have walked the ladder back down (no
  // L3+ degradation in the calm tail of the stream).
  const bool recovered =
      !storm_a.reports.empty() && storm_a.reports.back().max_overload_level < 3;

  const bool overhead_ok = overhead <= overhead_max;
  const bool shed_ok = shed.total() > 0 && shed.max_level == 4;
  const bool pass = identical && overhead_ok && deterministic && shed_ok &&
                    recovered && shed.conserved;

  std::printf("ungoverned:        %8.2f Mpkt/s (%zu epochs)\n",
              plain_pps / 1e6, plain_1.reports.size());
  std::printf("governed, calm:    %8.2f Mpkt/s  overhead %.3fx (max %.2fx)\n",
              calm_pps / 1e6, overhead, overhead_max);
  std::printf("governed, overload:%8.2f Mpkt/s\n", overloaded_pps / 1e6);
  std::printf("calm byte-identity (serial + 4-shard): %s\n",
              identical ? "yes" : "NO");
  std::printf("forced-overload determinism (batch 1024 vs 257): %s\n",
              deterministic ? "yes" : "NO");
  std::printf(
      "shed: L1 %llu  L2 %llu  L3 %llu  L4 %llu (max level %u, %s, %s)\n",
      static_cast<unsigned long long>(shed.l1),
      static_cast<unsigned long long>(shed.l2),
      static_cast<unsigned long long>(shed.l3),
      static_cast<unsigned long long>(shed.l4), shed.max_level,
      recovered ? "recovered" : "DID NOT RECOVER",
      shed.conserved ? "conserved" : "CONSERVATION VIOLATED");
  std::printf("%s\n", pass ? "PASS" : "FAIL");

  write_json(out_path, trace.size(), plain_pps, calm_pps, overhead,
             overloaded_pps, shed, identical, deterministic, recovered,
             overhead_max, pass);
  return check && !pass ? 1 : 0;
}
