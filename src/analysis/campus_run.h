// Shared end-to-end experiment driver: campus simulation -> P4 capture
// filter -> anonymization -> passive analyzer. Every campus-scale table
// and figure bench runs through this once and reads different slices of
// the result.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "capture/filter.h"
#include "core/analyzer.h"
#include "sim/campus.h"
#include "util/rate.h"

namespace zpm::analysis {

/// Configuration of a full campus run.
struct CampusRunConfig {
  sim::CampusConfig campus;
  /// Anonymize at the filter (the analyzer then works on anonymized
  /// addresses with an equally-anonymized server/campus subnet list —
  /// possible because anonymization is prefix-preserving).
  bool anonymize = true;
  /// Bin width for the rate time series (Fig. 14 / 17).
  util::Duration rate_bin = util::Duration::seconds(60);
  /// Frame-record subsampling inside the analyzer (memory bound).
  std::uint32_t frame_sample_every = 4;
  /// Analyzer shards. 1 = legacy serial path; >1 routes packets through
  /// pipeline::ParallelAnalyzer (results are bit-identical either way).
  std::size_t analysis_threads = 1;
  /// Abort analysis at the first malformed record (core::AnalyzerConfig
  /// strict mode); the violation lands in CampusRunResult.
  bool strict = false;
};

/// Compact per-second per-stream sample used by the distribution
/// figures (kept deliberately small: campus runs produce millions).
struct SampleRow {
  float media_bitrate_bps = 0.0f;
  float frame_rate = 0.0f;
  float avg_frame_bytes = 0.0f;   // <0 when no frame completed
  float jitter_ms = -1.0f;        // <0 when unknown
  std::uint8_t kind = 0;          // zoom::MediaKind
};

/// Everything the benches need from one campus run.
struct CampusRunResult {
  sim::CampusSimulation::Summary sim_summary;
  capture::CaptureCounters capture;
  core::AnalyzerCounters counters;
  std::size_t stream_count = 0;
  std::uint64_t media_count = 0;  // distinct media ids
  std::size_t meeting_count = 0;
  std::size_t zoom_flow_count = 0;  // distinct canonical 5-tuples

  /// Per-category drop/distrust accounting; all_clear() on clean traces.
  core::AnalyzerHealth health;
  /// First malformed record when config.strict fired.
  std::optional<core::StrictViolation> strict_violation;
  /// What the fault injector did when campus.corruption was set.
  std::optional<sim::CorruptionStats> corruption;

  /// All per-second stream samples (Fig. 15/16 distributions).
  std::vector<SampleRow> samples;
  /// Sampled per-frame payload sizes per kind (Fig. 15c).
  std::map<std::uint8_t, std::vector<float>> frame_sizes;

  /// Media bytes per rate_bin per kind (Fig. 14) — already per-second.
  std::map<std::uint8_t, std::vector<util::IntervalBinner::Bin>> media_rate;
  /// Packet rates: all processed vs. Zoom-filtered (Fig. 17).
  std::vector<util::IntervalBinner::Bin> all_packet_rate;
  std::vector<util::IntervalBinner::Bin> zoom_packet_rate;

  util::Timestamp first_packet;
  util::Timestamp last_packet;
};

/// Runs the full pipeline. Deterministic for a fixed config.
CampusRunResult run_campus(const CampusRunConfig& config);

/// Process-wide cached run for the default bench configuration, so the
/// several Table/Figure benches that share a trace don't regenerate it.
const CampusRunResult& default_campus_run();

/// The default bench configuration (also used by tests that want a
/// smaller variant to start from).
CampusRunConfig default_campus_config();

}  // namespace zpm::analysis
