#include "analysis/campus_run.h"

#include <cstdlib>

#include "pipeline/parallel_analyzer.h"

namespace zpm::analysis {

namespace {

/// Anonymizes a subnet list with the same key the filter uses, so the
/// analyzer can keep matching after anonymization (prefix-preserving).
std::vector<net::Ipv4Subnet> anonymize_subnets(
    const capture::PrefixPreservingAnonymizer& anon,
    const std::vector<net::Ipv4Subnet>& subnets) {
  std::vector<net::Ipv4Subnet> out;
  out.reserve(subnets.size());
  for (const auto& s : subnets)
    out.emplace_back(anon.anonymize(s.base()), s.prefix_len());
  return out;
}

/// Folds per-stream metrics into the result. Shared by the serial and
/// sharded paths so both produce the exact same output.
void extract_streams(const std::vector<const core::StreamInfo*>& streams,
                     util::Duration rate_bin, CampusRunResult& result) {
  // Campus runs produce millions of rows; size the buffers once.
  std::size_t total_seconds = 0;
  std::map<std::uint8_t, std::size_t> frames_per_kind;
  for (const auto* stream : streams) {
    total_seconds += stream->metrics->seconds().size();
    frames_per_kind[static_cast<std::uint8_t>(stream->kind)] +=
        stream->metrics->frames().size();
  }
  result.samples.reserve(total_seconds);
  for (const auto& [kind, count] : frames_per_kind)
    result.frame_sizes[kind].reserve(count);

  // Per-kind media-rate binning + sample extraction.
  std::map<std::uint8_t, util::IntervalBinner> media_bins;
  for (const auto* stream : streams) {
    auto kind = static_cast<std::uint8_t>(stream->kind);
    auto [it, _] = media_bins.try_emplace(kind, rate_bin);
    SampleRow row;
    row.kind = kind;
    for (const auto& sec : stream->metrics->seconds()) {
      it->second.add(sec.bin_start, static_cast<double>(sec.media_bytes));
      row.media_bitrate_bps = static_cast<float>(sec.media_bitrate_bps());
      row.frame_rate = static_cast<float>(sec.frame_rate_fps);
      row.avg_frame_bytes =
          sec.avg_frame_bytes ? static_cast<float>(*sec.avg_frame_bytes) : -1.0f;
      row.jitter_ms = sec.jitter_ms ? static_cast<float>(*sec.jitter_ms) : -1.0f;
      result.samples.push_back(row);
    }
    auto& sizes = result.frame_sizes[kind];
    for (const auto& frame : stream->metrics->frames())
      sizes.push_back(static_cast<float>(frame.payload_bytes));
  }
  for (auto& [kind, binner] : media_bins)
    result.media_rate[kind] = binner.series();
}

}  // namespace

CampusRunResult run_campus(const CampusRunConfig& config) {
  CampusRunResult result;

  sim::CampusSimulation campus(config.campus);

  capture::CaptureConfig cap_cfg;
  cap_cfg.campus_subnets = {config.campus.campus_subnet};
  cap_cfg.anonymize = config.anonymize;
  capture::CaptureFilter filter(cap_cfg);

  core::AnalyzerConfig an_cfg;
  an_cfg.frame_sample_every = config.frame_sample_every;
  an_cfg.strict = config.strict;
  if (config.anonymize) {
    capture::PrefixPreservingAnonymizer anon(cap_cfg.anonymization_key);
    an_cfg.server_db =
        zoom::ServerDb(anonymize_subnets(anon, cap_cfg.server_db.subnets()));
  }

  util::IntervalBinner all_rate(config.rate_bin);
  util::IntervalBinner zoom_rate(config.rate_bin);

  auto ingest = [&](auto&& offer) {
    while (auto pkt = campus.next_packet()) {
      if (result.first_packet.is_zero()) result.first_packet = pkt->ts;
      result.last_packet = pkt->ts;
      all_rate.add(pkt->ts);
      auto kept = filter.process(*pkt);
      if (!kept) continue;
      zoom_rate.add(kept->ts);
      offer(std::move(*kept));
    }
  };

  std::vector<const core::StreamInfo*> streams;
  if (config.analysis_threads > 1) {
    pipeline::ParallelAnalyzerConfig par_cfg;
    par_cfg.analyzer = an_cfg;
    par_cfg.shards = config.analysis_threads;
    pipeline::ParallelAnalyzer analyzer(par_cfg);
    ingest([&](net::RawPacket pkt) { analyzer.offer(std::move(pkt)); });
    analyzer.finish();

    result.counters = analyzer.counters();
    result.stream_count = analyzer.streams().size();
    result.media_count = analyzer.media_count();
    result.meeting_count = analyzer.meetings().meeting_count();
    result.zoom_flow_count = analyzer.zoom_flow_count();
    result.health = analyzer.health();
    result.strict_violation = analyzer.strict_violation();
    streams.assign(analyzer.streams().begin(), analyzer.streams().end());
    extract_streams(streams, config.rate_bin, result);
  } else {
    core::Analyzer analyzer(an_cfg);
    ingest([&](net::RawPacket pkt) { analyzer.offer(pkt); });
    analyzer.finish();

    result.counters = analyzer.counters();
    result.stream_count = analyzer.streams().size();
    result.media_count = analyzer.streams().media_count();
    result.meeting_count = analyzer.meetings().meeting_count();
    result.zoom_flow_count = analyzer.zoom_flow_count();
    result.health = analyzer.health();
    result.strict_violation = analyzer.strict_violation();
    streams.reserve(analyzer.streams().streams().size());
    for (const auto& s : analyzer.streams().streams()) streams.push_back(s.get());
    extract_streams(streams, config.rate_bin, result);
  }

  result.sim_summary = campus.summary();
  result.capture = filter.counters();
  if (const auto* stats = campus.corruption_stats()) result.corruption = *stats;
  result.all_packet_rate = all_rate.series();
  result.zoom_packet_rate = zoom_rate.series();
  return result;
}

CampusRunConfig default_campus_config() {
  CampusRunConfig config;
  config.campus.seed = 2022;
  // Scaled-down campus day; ZPM_CAMPUS_SCALE multiplies meeting volume,
  // ZPM_CAMPUS_HOURS overrides the duration and ZPM_ANALYSIS_THREADS
  // shards the analyzer, so the full 12-hour run is one environment
  // variable away.
  double scale = 1.0;
  if (const char* s = std::getenv("ZPM_CAMPUS_SCALE")) scale = std::atof(s);
  double hours = 12.0;
  if (const char* h = std::getenv("ZPM_CAMPUS_HOURS")) hours = std::atof(h);
  if (const char* t = std::getenv("ZPM_ANALYSIS_THREADS"))
    config.analysis_threads =
        static_cast<std::size_t>(std::strtoul(t, nullptr, 10));
  config.campus.duration = util::Duration::seconds(hours * 3600.0);
  config.campus.meetings_per_peak_hour = 3.0 * (scale > 0 ? scale : 1.0);
  config.campus.background_ratio = 1.5;
  return config;
}

const CampusRunResult& default_campus_run() {
  static const CampusRunResult result = run_campus(default_campus_config());
  return result;
}

}  // namespace zpm::analysis
