// Monolithic recompute — the reference path for query bit-identity.
//
// The journal path answers a window query from pre-aggregated records;
// this path answers the same query by running the *entire* packet
// stream through a fresh EpochEngine (journal collection on), keeping
// only the epochs whose spans overlap the window, and folding their
// slices through the same QueryEngine. It is O(trace) regardless of
// window size — exactly what the indexed journal exists to avoid — and
// serves two purposes: tests compare encode_query_result() bytes
// between the two paths (the exactness oracle), and bench_query uses
// the runtime ratio as its ≥10x speedup gate.
#pragma once

#include <span>
#include <string>

#include "analysis/epoch.h"
#include "net/trace_source.h"
#include "query/query.h"

namespace zpm::analysis {

/// Answers `request` by full recompute over `packets` (pinned storage —
/// it must outlive the call). The engine config's `collect_journal` is
/// forced on; `shards` is honored (slice rows are shard-count-invariant,
/// so the answer is too).
void recompute_query_result(const query::QueryRequest& request,
                            std::span<const net::RawPacketView> packets,
                            const EpochEngineConfig& engine_config,
                            const std::string& site,
                            query::QueryResult& out);

}  // namespace zpm::analysis
