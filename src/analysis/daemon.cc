#include "analysis/daemon.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>
#include <vector>

namespace zpm::analysis {

namespace {

std::int64_t steady_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Trims ASCII whitespace from both ends.
std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r'))
    --e;
  return s.substr(b, e - b);
}

MonitorDaemon* g_signal_daemon = nullptr;

void daemon_signal_handler(int sig) {
  MonitorDaemon* d = g_signal_daemon;
  if (d == nullptr) return;
#if defined(SIGHUP)
  if (sig == SIGHUP) {
    d->request_reload();
    return;
  }
#endif
  (void)sig;
  d->request_shutdown();
}

}  // namespace

void MonitorDaemon::install_signal_handlers(MonitorDaemon* daemon) {
  g_signal_daemon = daemon;
  const auto handler = daemon != nullptr ? daemon_signal_handler : SIG_DFL;
  std::signal(SIGTERM, handler);
  std::signal(SIGINT, handler);
#if defined(SIGHUP)
  std::signal(SIGHUP, handler);
#endif
}

MonitorDaemon::MonitorDaemon(DaemonConfig config)
    : config_(std::move(config)) {}

void MonitorDaemon::restore() {
  if (config_.engine.frontend && config_.engine.flow_memory_budget > 0)
    lifetime_tier_.emplace(config_.engine.flow_memory_budget);
  if (config_.snapshot_path.empty()) {
    restore_status_ = RestoreStatus::Missing;
    return;
  }
  SnapshotData data;
  std::string error;
  restore_status_ = load_snapshot(config_.snapshot_path, data, &error);
  switch (restore_status_) {
    case RestoreStatus::Missing:
      if (config_.verbose)
        std::fprintf(stderr, "zpm-daemon: no snapshot, fresh start\n");
      return;
    case RestoreStatus::Corrupt:
      if (config_.verbose)
        std::fprintf(stderr, "zpm-daemon: snapshot rejected (%s), fresh start\n",
                     error.c_str());
      return;
    case RestoreStatus::Ok:
      break;
  }
  cumulative_ = std::move(data);
  recent_.assign(cumulative_.recent_epochs.begin(),
                 cumulative_.recent_epochs.end());
  engine_->set_next_seq(cumulative_.next_epoch_seq);
  engine_->set_global_packets(cumulative_.packets_consumed);
  if (lifetime_tier_ && !cumulative_.background_tier.empty()) {
    util::ByteReader r(cumulative_.background_tier);
    if (!lifetime_tier_->deserialize(r)) {
      // Budget changed between runs (or the blob is stale): the tier's
      // geometry cannot be restored 1:1 — start its summary fresh.
      lifetime_tier_.emplace(config_.engine.flow_memory_budget);
      if (config_.verbose)
        std::fprintf(stderr,
                     "zpm-daemon: background-tier image incompatible, "
                     "tier restarted fresh\n");
    }
  }
  if (config_.verbose)
    std::fprintf(stderr,
                 "zpm-daemon: restored snapshot: resuming at packet %llu, "
                 "epoch %llu\n",
                 static_cast<unsigned long long>(cumulative_.packets_consumed),
                 static_cast<unsigned long long>(cumulative_.next_epoch_seq));
}

void MonitorDaemon::open_journal() {
  if (!config_.engine.collect_journal || config_.report_dir.empty()) return;
  // No fixed name buffer: a long --site must not truncate away the
  // epoch-seq suffix (the restart-collision guard) or two runs would
  // compute the same filename and clobber a crashed segment.
  char seq[32];
  std::snprintf(seq, sizeof(seq), "%012llu",
                static_cast<unsigned long long>(engine_->next_seq()));
  journal_name_ = "journal-" + config_.site + "-" + seq + ".zpmj";
  // A restart must not orphan earlier segments: merge into whatever
  // MANIFEST the directory already has (crashed segments stay listed
  // and stay queryable via the reader's scan fallback).
  std::string error;
  if (!query::load_manifest(config_.report_dir, manifest_, &error))
    manifest_ = query::Manifest{};
  if (!journal_.open(config_.report_dir + "/" + journal_name_, config_.site,
                     static_cast<std::uint32_t>(
                         config_.engine.shards > 0 ? config_.engine.shards : 1),
                     &error)) {
    std::fprintf(stderr, "zpm-daemon: journal open failed: %s\n",
                 error.c_str());
    journal_name_.clear();
    return;
  }
  if (config_.verbose)
    std::fprintf(stderr, "zpm-daemon: journal segment %s opened\n",
                 journal_name_.c_str());
}

void MonitorDaemon::update_manifest() {
  if (journal_name_.empty()) return;
  query::ManifestEntry entry;
  entry.path = journal_name_;
  entry.site = config_.site;
  entry.first_us = journal_.first_us();
  entry.last_us = journal_.last_us();
  entry.epochs = journal_.epochs();
  entry.records = journal_.records();
  bool replaced = false;
  for (auto& existing : manifest_.entries) {
    if (existing.path == entry.path) {
      existing = entry;
      replaced = true;
      break;
    }
  }
  if (!replaced) manifest_.entries.push_back(entry);
  std::string error;
  if (!query::save_manifest(manifest_, config_.report_dir, &error))
    std::fprintf(stderr, "zpm-daemon: manifest write failed: %s\n",
                 error.c_str());
}

bool MonitorDaemon::on_epoch(const EpochReport& report,
                             const query::EpochSliceSet* slices) {
  cumulative_.cumulative_counters.merge(report.counters);
  cumulative_.cumulative_health.merge(report.health);
  stats_.offered_packets += report.packets;
  stats_.admitted_packets += report.counters.total_packets;
  stats_.shed_packets += report.health.overload_shed_total();
  cumulative_.next_epoch_seq = report.seq + 1;
  // Resume position: the packet right after the completed epoch. The
  // in-progress epoch's packets are deliberately not covered — they are
  // the "at most one epoch" a crash may lose.
  cumulative_.packets_consumed = report.first_packet + report.packets;
  if (lifetime_tier_) {
    lifetime_tier_->fold_stats(report.tier_stats);
    for (const auto& h : report.heavy_hitters) {
      const net::PackedFlowKey key(h.flow);
      lifetime_tier_->fold(key, net::canonical_flow_hash(key),
                           sketch::FlowStats{h.packets, h.bytes});
    }
    util::ByteWriter w;
    lifetime_tier_->serialize(w);
    cumulative_.background_tier = w.take();
  }
  recent_.push_back(report);
  while (recent_.size() > kSnapshotRecentEpochs) recent_.pop_front();
  cumulative_.recent_epochs.assign(recent_.begin(), recent_.end());
  ++stats_.epochs_rotated;

  bool ok = true;
  std::string error;
  if (!config_.report_dir.empty()) {
    char name[32];
    std::snprintf(name, sizeof(name), "epoch-%08llu.bin",
                  static_cast<unsigned long long>(report.seq));
    if (save_epoch_report(report, config_.report_dir + "/" + name, &error)) {
      ++stats_.epoch_files_written;
    } else {
      ok = false;
      std::fprintf(stderr, "zpm-daemon: epoch report write failed: %s\n",
                   error.c_str());
    }
  }
  if (slices != nullptr && journal_.is_open()) {
    for (const auto& slice : *slices) {
      if (journal_.append(slice, &error)) {
        ++stats_.journal_records_written;
      } else {
        ok = false;
        std::fprintf(stderr, "zpm-daemon: journal append failed: %s\n",
                     error.c_str());
        break;
      }
    }
    update_manifest();
  }
  if (!config_.snapshot_path.empty()) {
    if (save_snapshot(cumulative_, config_.snapshot_path, &error)) {
      ++stats_.snapshots_written;
    } else {
      ok = false;
      std::fprintf(stderr, "zpm-daemon: snapshot write failed: %s\n",
                   error.c_str());
    }
  }
  if (config_.verbose) {
    std::fprintf(stderr,
                 "zpm-daemon: epoch %llu rotated: %llu packets, %llu zoom, "
                 "%llu streams, %llu meetings, %llu flows retired\n",
                 static_cast<unsigned long long>(report.seq),
                 static_cast<unsigned long long>(report.packets),
                 static_cast<unsigned long long>(report.counters.zoom_packets),
                 static_cast<unsigned long long>(report.stream_count),
                 static_cast<unsigned long long>(report.meeting_count),
                 static_cast<unsigned long long>(report.zoom_flow_count));
    if (report.max_overload_level > 0)
      std::fprintf(stderr,
                   "zpm-daemon: epoch %llu overload: max level L%u, shed "
                   "l1=%llu l2=%llu l3=%llu l4=%llu\n",
                   static_cast<unsigned long long>(report.seq),
                   report.max_overload_level,
                   static_cast<unsigned long long>(report.health.overload_shed_l1),
                   static_cast<unsigned long long>(report.health.overload_shed_l2),
                   static_cast<unsigned long long>(report.health.overload_shed_l3),
                   static_cast<unsigned long long>(report.health.overload_shed_l4));
  }
  return ok;
}

void MonitorDaemon::reload_config_file() {
  ++stats_.config_reloads;
  if (config_.config_path.empty()) {
    if (config_.verbose)
      std::fprintf(stderr, "zpm-daemon: reload requested but no config file\n");
    return;
  }
  std::ifstream in(config_.config_path);
  if (!in) {
    std::fprintf(stderr, "zpm-daemon: cannot read config %s\n",
                 config_.config_path.c_str());
    return;
  }
  EpochLimits limits = engine_->config().limits;
  core::AnalyzerConfig analyzer = engine_->config().analyzer;
  bool frontend = engine_->config().frontend;
  std::size_t budget = engine_->config().flow_memory_budget;
  overload::GovernorConfig governor = engine_->config().overload.governor;
  bool staged_change = false;
  bool governor_change = false;
  std::string line;
  while (std::getline(in, line)) {
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::size_t eq = stripped.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = trim(stripped.substr(0, eq));
    const std::string value = trim(stripped.substr(eq + 1));
    if (key == "epoch_packets") {
      limits.max_packets = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "epoch_seconds") {
      limits.max_span = util::Duration::seconds(std::atof(value.c_str()));
    } else if (key == "watchdog_seconds") {
      config_.watchdog = util::Duration::seconds(std::atof(value.c_str()));
    } else if (key == "p2p_timeout_seconds") {
      analyzer.p2p_timeout = util::Duration::seconds(std::atof(value.c_str()));
      staged_change = true;
    } else if (key == "frontend") {
      frontend = value != "0";
      staged_change = true;
    } else if (key == "flow_memory_budget") {
      budget = static_cast<std::size_t>(std::strtoull(value.c_str(), nullptr, 10));
      staged_change = true;
    } else if (key == "overload_high_watermark") {
      governor.high_watermark = std::atof(value.c_str());
      governor_change = true;
    } else if (key == "overload_low_watermark") {
      governor.low_watermark = std::atof(value.c_str());
      governor_change = true;
    } else if (key == "overload_alpha") {
      governor.alpha = std::atof(value.c_str());
      governor_change = true;
    } else if (key == "overload_escalate_after") {
      governor.escalate_after =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
      governor_change = true;
    } else if (key == "overload_recover_after") {
      governor.recover_after =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
      governor_change = true;
    } else if (config_.verbose) {
      std::fprintf(stderr, "zpm-daemon: config: unknown key '%s' ignored\n",
                   key.c_str());
    }
  }
  // Epoch limits act on the in-progress window immediately; engine
  // changes are staged to the next rotation so live flow state is
  // never dropped mid-window. Governor thresholds retune live too —
  // overload response must not wait for a rotation.
  engine_->set_limits(limits);
  if (governor_change) engine_->set_overload_thresholds(governor);
  if (staged_change) engine_->stage_config(analyzer, frontend, budget);
  if (config_.verbose)
    std::fprintf(stderr,
                 "zpm-daemon: config reloaded from %s (%s)\n",
                 config_.config_path.c_str(),
                 staged_change ? "engine changes staged to next rotation"
                               : "limits applied");
}

void MonitorDaemon::final_flush() {
  query::EpochSliceSet last_slices;
  if (auto report = engine_->flush(&last_slices))
    on_epoch(*report, last_slices.empty() ? nullptr : &last_slices);
  if (journal_.is_open()) {
    std::string error;
    if (journal_.finalize(&error)) {
      update_manifest();
      if (config_.verbose)
        std::fprintf(stderr, "zpm-daemon: journal segment %s sealed "
                             "(%llu records)\n",
                     journal_name_.c_str(),
                     static_cast<unsigned long long>(
                         stats_.journal_records_written));
    } else {
      std::fprintf(stderr, "zpm-daemon: journal finalize failed: %s\n",
                   error.c_str());
    }
  }
  const overload::GovernorStats gov = engine_->governor_stats();
  stats_.overload_escalations = gov.escalations;
  stats_.overload_recoveries = gov.recoveries;
  stats_.overload_max_level = gov.max_level;
  const std::uint64_t dropped = cumulative_.cumulative_health.dropped_records();
  if (config_.verbose) {
    std::fprintf(stderr,
                 "zpm-daemon: graceful shutdown: %llu epochs, %llu packets, "
                 "%llu stalls, %llu reloads\n",
                 static_cast<unsigned long long>(stats_.epochs_rotated),
                 static_cast<unsigned long long>(stats_.packets_processed),
                 static_cast<unsigned long long>(stats_.source_stalls),
                 static_cast<unsigned long long>(stats_.config_reloads));
    std::fprintf(stderr, "zpm-daemon: health: %llu dropped records%s\n",
                 static_cast<unsigned long long>(dropped),
                 dropped == 0 ? " (all clear)" : "");
    if (config_.engine.overload.enabled) {
      // Conservation over this run's completed epochs: every offered
      // packet is either admitted (analyzer totals) or shed by a ladder
      // level; kernel drops happen upstream of `offered` and are
      // reported alongside. `unaccounted=0` is the invariant the stress
      // smoke asserts.
      const std::uint64_t accounted =
          stats_.admitted_packets + stats_.shed_packets;
      const std::uint64_t unaccounted =
          stats_.offered_packets >= accounted
              ? stats_.offered_packets - accounted
              : accounted - stats_.offered_packets;
      std::fprintf(
          stderr,
          "zpm-daemon: overload: max level L%d, %llu escalations, %llu "
          "recoveries\n",
          gov.max_level, static_cast<unsigned long long>(gov.escalations),
          static_cast<unsigned long long>(gov.recoveries));
      std::fprintf(
          stderr,
          "zpm-daemon: conservation: offered=%llu admitted=%llu shed=%llu "
          "kernel_drops=%llu unaccounted=%llu %s\n",
          static_cast<unsigned long long>(stats_.offered_packets),
          static_cast<unsigned long long>(stats_.admitted_packets),
          static_cast<unsigned long long>(stats_.shed_packets),
          static_cast<unsigned long long>(stats_.kernel_drops),
          static_cast<unsigned long long>(unaccounted),
          unaccounted == 0 ? "OK" : "VIOLATION");
    }
    if (cumulative_.cumulative_health.kernel_packets > 0 ||
        cumulative_.cumulative_health.kernel_drops > 0)
      std::fprintf(
          stderr, "zpm-daemon: kernel: %llu packets seen, %llu drops\n",
          static_cast<unsigned long long>(
              cumulative_.cumulative_health.kernel_packets),
          static_cast<unsigned long long>(
              cumulative_.cumulative_health.kernel_drops));
  }
}

int MonitorDaemon::run(net::BatchSource& source) {
  engine_.emplace(config_.engine);
  restore();
  // After restore: the segment is named by the resumed epoch seq, so a
  // restarted daemon opens a fresh file and never clobbers the crashed
  // (index-less, scan-recoverable) one.
  open_journal();
  if (cumulative_.packets_consumed > 0 &&
      !source.skip_to(cumulative_.packets_consumed)) {
    std::fprintf(stderr,
                 "zpm-daemon: source cannot seek to packet %llu; continuing "
                 "from its current position\n",
                 static_cast<unsigned long long>(cumulative_.packets_consumed));
  }

  const auto lifetime = source.pinned() ? pipeline::BatchLifetime::Pinned
                                        : pipeline::BatchLifetime::Transient;
  std::vector<net::RawPacketView> batch;
  batch.reserve(config_.max_batch);
  std::vector<EpochReport> completed;
  std::vector<query::EpochSliceSet> completed_slices;
  const bool journaling = journal_.is_open();
  std::int64_t last_data_us = steady_us();
  util::Duration backoff = config_.backoff_initial;
  std::int64_t next_reopen_us = 0;
  net::KernelCaptureStats kernel_base;  // last absolute reading
  int last_overload_level = engine_->overload_level();

  for (;;) {
    if (shutdown_.load(std::memory_order_relaxed)) {
      final_flush();
      return 0;
    }
    if (reload_.exchange(false, std::memory_order_relaxed))
      reload_config_file();

    const net::SourceStatus status = source.poll_batch(batch, config_.max_batch);

    // Kernel capture gauges: the source reports absolute counters; keep
    // them as this-run deltas so reopen() resetting the kernel ring (the
    // counters shrink) re-bases instead of corrupting the gauges. Drop
    // deltas feed the governor as a pinned-pressure signal.
    const net::KernelCaptureStats kernel_now = source.kernel_stats();
    if (kernel_now.kernel_packets < kernel_base.kernel_packets ||
        kernel_now.kernel_drops < kernel_base.kernel_drops) {
      kernel_base = kernel_now;  // ring reset after reopen
    } else {
      const std::uint64_t dp = kernel_now.kernel_packets - kernel_base.kernel_packets;
      const std::uint64_t dd = kernel_now.kernel_drops - kernel_base.kernel_drops;
      kernel_base = kernel_now;
      if (dp > 0) cumulative_.cumulative_health.kernel_packets += dp;
      if (dd > 0) {
        cumulative_.cumulative_health.kernel_drops += dd;
        stats_.kernel_drops += dd;
        engine_->note_kernel_drops(dd);
      }
    }

    switch (status) {
      case net::SourceStatus::Batch: {
        last_data_us = steady_us();
        backoff = config_.backoff_initial;
        next_reopen_us = 0;
        stats_.packets_processed += batch.size();
        completed.clear();
        completed_slices.clear();
        engine_->offer(batch, lifetime, completed,
                       journaling ? &completed_slices : nullptr);
        const int level = engine_->overload_level();
        if (level != last_overload_level) {
          if (config_.verbose)
            std::fprintf(stderr,
                         "zpm-daemon: overload %s L%d -> L%d (pressure %.2f)\n",
                         level > last_overload_level ? "escalation" : "recovery",
                         last_overload_level, level, engine_->overload_pressure());
          last_overload_level = level;
        }
        for (std::size_t i = 0; i < completed.size(); ++i) {
          on_epoch(completed[i], journaling && i < completed_slices.size()
                                     ? &completed_slices[i]
                                     : nullptr);
        }
        if (config_.halt_after_epochs > 0 && !completed.empty() &&
            stats_.epochs_rotated >= config_.halt_after_epochs) {
          // Crash simulation: stop with no drain and no final persist —
          // on-disk state is exactly what kill -9 here leaves behind.
          if (config_.verbose)
            std::fprintf(stderr,
                         "zpm-daemon: halting after %llu epochs "
                         "(crash simulation)\n",
                         static_cast<unsigned long long>(
                             stats_.epochs_rotated));
          return 0;
        }
        break;
      }
      case net::SourceStatus::Idle: {
        const std::int64_t now = steady_us();
        const bool watchdog_on = config_.watchdog > util::Duration::micros(0);
        if (watchdog_on && now - last_data_us >= config_.watchdog.us() &&
            now >= next_reopen_us) {
          // Stalled: health-account and reopen under capped backoff.
          ++stats_.source_stalls;
          ++cumulative_.cumulative_health.source_stalls;
          const bool reopened = source.reopen();
          ++stats_.source_reopens;
          if (config_.verbose)
            std::fprintf(stderr,
                         "zpm-daemon: source stall (quiet %.1fs); reopen %s, "
                         "next retry in %.1fs\n",
                         static_cast<double>(now - last_data_us) / 1e6,
                         reopened ? "succeeded" : "failed", backoff.sec());
          next_reopen_us = now + backoff.us();
          backoff = backoff * 2 > config_.backoff_max ? config_.backoff_max
                                                      : backoff * 2;
          if (reopened) last_data_us = steady_us();
        } else if (config_.idle_sleep > util::Duration::micros(0)) {
          std::this_thread::sleep_for(
              std::chrono::microseconds(config_.idle_sleep.us()));
        }
        break;
      }
      case net::SourceStatus::EndOfStream:
        if (config_.verbose)
          std::fprintf(stderr, "zpm-daemon: end of stream, draining\n");
        final_flush();
        return 0;
      case net::SourceStatus::Error: {
        std::fprintf(stderr, "zpm-daemon: source error: %s\n",
                     source.error().c_str());
        if (!source.reopen()) {
          std::fprintf(stderr, "zpm-daemon: source cannot be reopened; "
                               "fatal\n");
          final_flush();
          return 1;
        }
        ++stats_.source_reopens;
        // Backoff can reach backoff_max (seconds); sleep in short slices
        // so a shutdown signal interrupts it promptly.
        for (std::int64_t left = backoff.us();
             left > 0 && !shutdown_.load(std::memory_order_relaxed);) {
          const std::int64_t slice = left < 50'000 ? left : 50'000;
          std::this_thread::sleep_for(std::chrono::microseconds(slice));
          left -= slice;
        }
        backoff = backoff * 2 > config_.backoff_max ? config_.backoff_max
                                                    : backoff * 2;
        break;
      }
    }
  }
}

}  // namespace zpm::analysis
