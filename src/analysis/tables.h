// Formatting helpers turning analyzer counters into the paper's table
// rows (Tables 2 and 3), shared by benches and examples.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "capture/batch_filter.h"
#include "core/analyzer.h"

namespace zpm::analysis {

/// One row of Table 2 (media-encap type distribution).
struct EncapTypeRow {
  std::uint8_t value = 0;
  std::string packet_type;   // "RTP: Video" etc.
  std::size_t offset = 0;    // payload offset from the media encap start
  double pct_packets = 0.0;  // of all Zoom UDP packets
  double pct_bytes = 0.0;
};

/// Builds Table 2 rows from analyzer counters, ordered by packet share.
std::vector<EncapTypeRow> table2_rows(const core::AnalyzerCounters& counters);

/// One row of Table 3 (RTP payload-type distribution).
struct PayloadTypeRow {
  std::string media_type;  // "Video (16)" etc.
  std::uint8_t rtp_pt = 0;
  std::string description;
  double pct_packets = 0.0;  // of all media packets
  double pct_bytes = 0.0;
};

/// Builds Table 3 rows, ordered by packet share.
std::vector<PayloadTypeRow> table3_rows(const core::AnalyzerCounters& counters);

/// One row of the analyzer-health table (one non-zero health counter).
struct HealthRow {
  std::string_view category;     // stable kebab-case counter name
  std::string_view description;  // one-line operator explanation
  std::uint64_t count = 0;
  bool dropped = false;  // counts toward AnalyzerHealth::dropped_records()
};

/// Non-zero health counters in struct declaration order; empty exactly
/// when health.all_clear().
std::vector<HealthRow> health_rows(const core::AnalyzerHealth& health);

/// Capture front-end selectivity counters (--frontend-stats), rendered
/// with the same row shape as health_rows so drivers reuse one printer.
/// Unlike health_rows, zero-count rows for the three verdicts are kept:
/// "rejected 0" on a pure-Zoom trace is itself the interesting datum.
std::vector<HealthRow> frontend_rows(const capture::FrontEndStats& stats);

}  // namespace zpm::analysis
