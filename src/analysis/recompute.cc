#include "analysis/recompute.h"

#include <vector>

namespace zpm::analysis {

void recompute_query_result(const query::QueryRequest& request,
                            std::span<const net::RawPacketView> packets,
                            const EpochEngineConfig& engine_config,
                            const std::string& site,
                            query::QueryResult& out) {
  EpochEngineConfig config = engine_config;
  config.collect_journal = true;
  EpochEngine engine(config);
  std::vector<EpochReport> completed;
  std::vector<query::EpochSliceSet> slice_sets;
  engine.offer(packets, pipeline::BatchLifetime::Pinned, completed,
               &slice_sets);
  query::EpochSliceSet last;
  if (engine.flush(&last)) slice_sets.push_back(std::move(last));

  const std::vector<std::string> sites{site};
  query::QueryEngine aggregate;
  aggregate.begin(request, sites);
  out = query::QueryResult{};
  for (const auto& set : slice_sets) {
    for (const auto& slice : set) {
      // Same selection predicate as JournalReader::select(): whole
      // epochs, by closed-span overlap with the closed window.
      if (slice.last_us < request.from_us || slice.first_us > request.to_us)
        continue;
      aggregate.add_slice(slice, 0);
      ++out.records_read;
    }
  }
  aggregate.finish(out);
}

}  // namespace zpm::analysis
