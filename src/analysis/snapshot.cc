#include "analysis/snapshot.h"

#include <cstring>

#include "util/crc32.h"
#include "util/fsio.h"

namespace zpm::analysis {

namespace {

constexpr std::uint8_t kSnapshotMagic[4] = {'Z', 'P', 'M', 'S'};
constexpr std::uint8_t kEpochMagic[4] = {'Z', 'P', 'M', 'E'};

std::vector<std::uint8_t> wrap(const std::uint8_t (&magic)[4],
                               std::vector<std::uint8_t> payload) {
  util::ByteWriter w(payload.size() + 20);
  w.bytes(std::span<const std::uint8_t>(magic, 4));
  w.u32be(kSnapshotVersion);
  w.u64be(payload.size());
  w.u32be(util::crc32(payload));
  w.bytes(payload);
  return w.take();
}

/// Validates the wrapper and returns the payload span, or an empty
/// optional-like (ok=false) result. Exact-length: trailing bytes are a
/// framing error (a truncated-then-appended file must not validate).
bool unwrap(std::span<const std::uint8_t> bytes,
            const std::uint8_t (&magic)[4],
            std::span<const std::uint8_t>& payload) {
  util::ByteReader r(bytes);
  const auto m = r.bytes(4);
  if (m.size() != 4 || std::memcmp(m.data(), magic, 4) != 0) return false;
  if (r.u32be() != kSnapshotVersion) return false;
  const std::uint64_t len = r.u64be();
  const std::uint32_t crc = r.u32be();
  if (!r.ok() || r.remaining() != len) return false;
  payload = r.rest();
  return util::crc32(payload) == crc;
}

}  // namespace

// ---------------------------------------------------------------------------
// Snapshot

std::vector<std::uint8_t> encode_snapshot(const SnapshotData& data) {
  util::ByteWriter w(4096);
  w.u64be(data.next_epoch_seq);
  w.u64be(data.packets_consumed);
  // Cumulative aggregates reuse the epoch-record field codecs so the
  // two formats cannot drift.
  EpochReport cumulative;
  cumulative.counters = data.cumulative_counters;
  cumulative.health = data.cumulative_health;
  encode_epoch_report(cumulative, w);
  w.u32be(static_cast<std::uint32_t>(data.recent_epochs.size()));
  for (const auto& epoch : data.recent_epochs) encode_epoch_report(epoch, w);
  w.u64be(data.background_tier.size());
  w.bytes(data.background_tier);
  return wrap(kSnapshotMagic, w.take());
}

bool parse_snapshot(std::span<const std::uint8_t> bytes, SnapshotData& data) {
  std::span<const std::uint8_t> payload;
  if (!unwrap(bytes, kSnapshotMagic, payload)) return false;
  util::ByteReader r(payload);
  data.next_epoch_seq = r.u64be();
  data.packets_consumed = r.u64be();
  EpochReport cumulative;
  if (!decode_epoch_report(r, cumulative)) return false;
  data.cumulative_counters = cumulative.counters;
  data.cumulative_health = cumulative.health;
  const std::uint32_t epochs = r.u32be();
  if (epochs > kSnapshotRecentEpochs) return false;
  data.recent_epochs.clear();
  for (std::uint32_t i = 0; i < epochs; ++i) {
    EpochReport epoch;
    if (!decode_epoch_report(r, epoch)) return false;
    data.recent_epochs.push_back(std::move(epoch));
  }
  const std::uint64_t tier_len = r.u64be();
  if (!r.can_read(tier_len)) return false;
  const auto tier = r.bytes(tier_len);
  data.background_tier.assign(tier.begin(), tier.end());
  // Exact-length payload: trailing bytes mean a framing bug or a
  // mis-spliced file; refuse rather than half-trust.
  return r.ok() && r.remaining() == 0;
}

bool save_snapshot(const SnapshotData& data, const std::string& path,
                   std::string* error) {
  return util::write_file_atomic(encode_snapshot(data), path, error);
}

RestoreStatus load_snapshot(const std::string& path, SnapshotData& data,
                            std::string* error) {
  std::vector<std::uint8_t> bytes;
  bool missing = false;
  if (!util::read_file_all(path, bytes, missing)) {
    if (missing) return RestoreStatus::Missing;
    if (error != nullptr) *error = "cannot read " + path;
    return RestoreStatus::Corrupt;
  }
  SnapshotData parsed;
  if (!parse_snapshot(bytes, parsed)) {
    if (error != nullptr) *error = path + ": failed validation";
    return RestoreStatus::Corrupt;
  }
  data = std::move(parsed);
  return RestoreStatus::Ok;
}

// ---------------------------------------------------------------------------
// Per-epoch report files

std::vector<std::uint8_t> encode_epoch_file(const EpochReport& report) {
  util::ByteWriter w(1024);
  encode_epoch_report(report, w);
  return wrap(kEpochMagic, w.take());
}

bool parse_epoch_file(std::span<const std::uint8_t> bytes,
                      EpochReport& report) {
  std::span<const std::uint8_t> payload;
  if (!unwrap(bytes, kEpochMagic, payload)) return false;
  util::ByteReader r(payload);
  return decode_epoch_report(r, report) && r.remaining() == 0;
}

bool save_epoch_report(const EpochReport& report, const std::string& path,
                       std::string* error) {
  return util::write_file_atomic(encode_epoch_file(report), path, error);
}

bool load_epoch_report(const std::string& path, EpochReport& report,
                       std::string* error) {
  std::vector<std::uint8_t> bytes;
  bool missing = false;
  if (!util::read_file_all(path, bytes, missing)) {
    if (error != nullptr) *error = "cannot read " + path;
    return false;
  }
  if (!parse_epoch_file(bytes, report)) {
    if (error != nullptr) *error = path + ": failed validation";
    return false;
  }
  return true;
}

}  // namespace zpm::analysis
