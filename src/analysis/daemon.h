// The continuous-operation monitor: epoch engine + snapshot durability
// + signal lifecycle around any net::BatchSource.
//
// One MonitorDaemon::run() call is the whole service loop:
//
//   * Batch   -> feed the epoch engine; at each rotation, persist the
//               finished epoch (own report file + atomic snapshot) and
//               fold it into the daemon-lifetime aggregates.
//   * Idle    -> wall-clock watchdog: a source that stays quiet past
//               `watchdog` is stalled; the stall is health-accounted
//               (`source-stalls`) and the source reopened under capped
//               exponential backoff. A healthy-but-quiet tap below the
//               threshold just idles.
//   * EndOfStream -> drain (flush the final epoch), persist, exit 0.
//   * Error   -> one reopen attempt per backoff window; a source that
//               cannot be reopened is fatal (exit 1).
//
// Signals: SIGTERM/SIGINT request a graceful drain (same path as
// EndOfStream); SIGHUP reloads the config file — epoch limits apply
// immediately, analyzer/front-end changes are staged to the next
// rotation so no flow state is dropped mid-window. Handlers only set
// flags; all real work happens on the run() thread. Tests drive the
// same flags directly via request_shutdown()/request_reload().
//
// Crash recovery: on start the daemon restores the newest snapshot
// (exactly-or-fresh, see snapshot.h), resumes the source at the
// recorded packet position, and continues the epoch numbering. Epochs
// are packet-sequence-deterministic, so the epoch reports written
// after a kill -9 + restart are byte-identical to an uninterrupted
// run's (tests/test_daemon.cc).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "analysis/epoch.h"
#include "analysis/snapshot.h"
#include "net/batch_source.h"
#include "sketch/sketch.h"
#include "util/time.h"

namespace zpm::analysis {

/// Daemon configuration around an EpochEngineConfig.
struct DaemonConfig {
  EpochEngineConfig engine;
  /// Snapshot file written atomically at every rotation; empty
  /// disables durability.
  std::string snapshot_path;
  /// Directory receiving one `epoch-NNNNNNNN.bin` per completed epoch;
  /// empty disables the per-epoch files. With `engine.collect_journal`
  /// it also receives the metric-journal segments
  /// (`journal-<site>-NNNNNNNNNNNN.zpmj`, named by their starting epoch
  /// seq so restarts never collide) and a `MANIFEST` rewritten
  /// atomically at every rotation (journal paths + epoch time spans —
  /// what zpm_query discovers its inputs from).
  std::string report_dir;
  /// Site label stamped into journal headers and the MANIFEST (multi-
  /// site merges group by it).
  std::string site = "campus";
  /// key=value file re-read on SIGHUP (see reload_config_file()).
  std::string config_path;
  /// Wall-clock quiet time after which an Idle source counts as
  /// stalled. Zero/negative disables the watchdog.
  util::Duration watchdog = util::Duration::seconds(5.0);
  /// Reopen backoff: first retry after `backoff_initial`, doubling to
  /// at most `backoff_max`.
  util::Duration backoff_initial = util::Duration::seconds(0.5);
  util::Duration backoff_max = util::Duration::seconds(30.0);
  /// Packets per poll_batch() call.
  std::size_t max_batch = 1024;
  /// Sleep per Idle poll (keeps a quiet replay source from busy-
  /// spinning; live sources already block in poll(2)).
  util::Duration idle_sleep = util::Duration::millis(2);
  /// Test hook: stop abruptly after this many rotations — no final
  /// flush, no shutdown snapshot, exactly the on-disk state a kill -9
  /// at that point leaves behind. 0 disables.
  std::uint64_t halt_after_epochs = 0;
  /// Status lines on stderr.
  bool verbose = true;
};

/// Operational counters for one run() (not persisted).
struct DaemonStats {
  std::uint64_t epochs_rotated = 0;
  std::uint64_t packets_processed = 0;
  std::uint64_t source_stalls = 0;
  std::uint64_t source_reopens = 0;
  std::uint64_t config_reloads = 0;
  std::uint64_t snapshots_written = 0;
  std::uint64_t epoch_files_written = 0;
  std::uint64_t journal_records_written = 0;
  // Overload governor (zeros when the governor is disabled).
  std::uint64_t overload_escalations = 0;
  std::uint64_t overload_recoveries = 0;
  int overload_max_level = 0;
  /// Kernel ring drops observed this run (live sources).
  std::uint64_t kernel_drops = 0;
  // This-run conservation ledger over completed epochs: offered ==
  // admitted + shed must hold exactly (kernel drops happen upstream of
  // `offered`). final_flush() prints the check.
  std::uint64_t offered_packets = 0;
  std::uint64_t admitted_packets = 0;
  std::uint64_t shed_packets = 0;
};

/// See file comment.
class MonitorDaemon {
 public:
  explicit MonitorDaemon(DaemonConfig config);

  MonitorDaemon(const MonitorDaemon&) = delete;
  MonitorDaemon& operator=(const MonitorDaemon&) = delete;

  /// Runs the service loop until drain, halt, or fatal source error.
  /// Returns the process exit code: 0 graceful, 1 fatal source error.
  int run(net::BatchSource& source);

  /// Asks the loop to drain and exit (what SIGTERM/SIGINT trigger).
  /// Safe from signal handlers and other threads.
  void request_shutdown() { shutdown_.store(true, std::memory_order_relaxed); }
  /// Asks the loop to re-read the config file (what SIGHUP triggers).
  void request_reload() { reload_.store(true, std::memory_order_relaxed); }

  /// Installs SIGTERM/SIGINT/SIGHUP handlers that route to `daemon`'s
  /// request_*() flags. Pass nullptr to leave the signals at their
  /// defaults again. One daemon per process.
  static void install_signal_handlers(MonitorDaemon* daemon);

  [[nodiscard]] const DaemonStats& stats() const { return stats_; }
  /// What restore found at startup (valid after run() began).
  [[nodiscard]] RestoreStatus restore_status() const { return restore_status_; }
  /// Daemon-lifetime aggregates (cumulative counters/health, recent
  /// epochs, background-tier image) as of the last rotation.
  [[nodiscard]] const SnapshotData& cumulative() const { return cumulative_; }

 private:
  /// Persists + folds one finished epoch. `slices` (may be null) is the
  /// epoch's journal slice set, appended to the live journal segment.
  /// Returns false on I/O failure (logged; the daemon keeps running —
  /// losing a report file is not fatal to measurement).
  bool on_epoch(const EpochReport& report, const query::EpochSliceSet* slices);
  /// Opens a new journal segment named by the starting epoch seq and
  /// merges its entry into the (possibly pre-existing) MANIFEST.
  void open_journal();
  /// Updates the live segment's MANIFEST entry (span/record counts).
  void update_manifest();
  void reload_config_file();
  void final_flush();
  void restore();

  DaemonConfig config_;
  std::optional<EpochEngine> engine_;
  /// Daemon-lifetime background-traffic summary, persisted across
  /// restarts (folds every finished epoch's tier report).
  std::optional<sketch::FlowTier> lifetime_tier_;

  // Metric-journal lifecycle (active when engine.collect_journal and
  // report_dir is set). Records are flushed as appended; the index is
  // written at graceful drain only — a crash leaves a scan-recoverable
  // segment, never a torn index.
  query::JournalWriter journal_;
  query::Manifest manifest_;
  std::string journal_name_;  // segment filename (MANIFEST-relative)

  SnapshotData cumulative_;
  std::deque<EpochReport> recent_;  // mirror of cumulative_.recent_epochs
  DaemonStats stats_;
  RestoreStatus restore_status_ = RestoreStatus::Missing;
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> reload_{false};
};

}  // namespace zpm::analysis
