#include "analysis/tables.h"

#include <algorithm>

namespace zpm::analysis {

namespace {

std::string encap_type_label(std::uint8_t value) {
  switch (static_cast<zoom::MediaEncapType>(value)) {
    case zoom::MediaEncapType::Video: return "RTP: Video";
    case zoom::MediaEncapType::Audio: return "RTP: Audio";
    case zoom::MediaEncapType::ScreenShare: return "RTP: Screen Share";
    case zoom::MediaEncapType::RtcpSr: return "RTCP: SR";
    case zoom::MediaEncapType::RtcpSrSdes: return "RTCP: SR + SDES";
    default: return "unknown (" + std::to_string(value) + ")";
  }
}

std::string media_kind_label(zoom::MediaKind kind) {
  switch (kind) {
    case zoom::MediaKind::Video: return "Video (16)";
    case zoom::MediaKind::Audio: return "Audio (15)";
    case zoom::MediaKind::ScreenShare: return "Screen Share (13)";
  }
  return "?";
}

}  // namespace

std::vector<EncapTypeRow> table2_rows(const core::AnalyzerCounters& counters) {
  // Denominator: all Zoom UDP packets (server + P2P), as in the paper.
  double total_packets =
      static_cast<double>(counters.server_udp_packets + counters.p2p_udp_packets);
  double total_bytes = 0;
  for (const auto& [value, tally] : counters.encap_types)
    total_bytes += static_cast<double>(tally.bytes);
  // Undecoded packets also carry bytes; approximate the byte denominator
  // with zoom_bytes-scaled share of UDP payloads when available.
  double denom_bytes = static_cast<double>(counters.zoom_bytes);
  if (denom_bytes <= 0) denom_bytes = total_bytes;

  std::vector<EncapTypeRow> rows;
  for (const auto& [value, tally] : counters.encap_types) {
    EncapTypeRow row;
    row.value = value;
    row.packet_type = encap_type_label(value);
    row.offset = zoom::media_payload_offset(value);
    row.pct_packets =
        total_packets > 0 ? static_cast<double>(tally.packets) / total_packets : 0.0;
    row.pct_bytes = denom_bytes > 0 ? static_cast<double>(tally.bytes) / denom_bytes : 0.0;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const EncapTypeRow& a, const EncapTypeRow& b) {
    return a.pct_packets > b.pct_packets;
  });
  return rows;
}

std::vector<PayloadTypeRow> table3_rows(const core::AnalyzerCounters& counters) {
  double total_packets = 0;
  double total_bytes = 0;
  for (const auto& [key, tally] : counters.payload_types) {
    total_packets += static_cast<double>(tally.packets);
    total_bytes += static_cast<double>(tally.bytes);
  }
  std::vector<PayloadTypeRow> rows;
  for (const auto& [key, tally] : counters.payload_types) {
    auto kind = static_cast<zoom::MediaKind>(key.first);
    PayloadTypeRow row;
    row.media_type = media_kind_label(kind);
    row.rtp_pt = key.second;
    row.description = std::string(zoom::payload_type_description(kind, key.second));
    row.pct_packets =
        total_packets > 0 ? static_cast<double>(tally.packets) / total_packets : 0.0;
    row.pct_bytes = total_bytes > 0 ? static_cast<double>(tally.bytes) / total_bytes : 0.0;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const PayloadTypeRow& a, const PayloadTypeRow& b) {
              return a.pct_packets > b.pct_packets;
            });
  return rows;
}

}  // namespace zpm::analysis
