#include "analysis/tables.h"

#include <algorithm>

namespace zpm::analysis {

namespace {

std::string encap_type_label(std::uint8_t value) {
  switch (static_cast<zoom::MediaEncapType>(value)) {
    case zoom::MediaEncapType::Video: return "RTP: Video";
    case zoom::MediaEncapType::Audio: return "RTP: Audio";
    case zoom::MediaEncapType::ScreenShare: return "RTP: Screen Share";
    case zoom::MediaEncapType::RtcpSr: return "RTCP: SR";
    case zoom::MediaEncapType::RtcpSrSdes: return "RTCP: SR + SDES";
    default: return "unknown (" + std::to_string(value) + ")";
  }
}

std::string media_kind_label(zoom::MediaKind kind) {
  switch (kind) {
    case zoom::MediaKind::Video: return "Video (16)";
    case zoom::MediaKind::Audio: return "Audio (15)";
    case zoom::MediaKind::ScreenShare: return "Screen Share (13)";
  }
  return "?";
}

}  // namespace

std::vector<EncapTypeRow> table2_rows(const core::AnalyzerCounters& counters) {
  // Denominator: all Zoom UDP packets (server + P2P), as in the paper.
  double total_packets =
      static_cast<double>(counters.server_udp_packets + counters.p2p_udp_packets);
  const auto encap_types = counters.encap_types();
  double total_bytes = 0;
  for (const auto& [value, tally] : encap_types)
    total_bytes += static_cast<double>(tally.bytes);
  // Undecoded packets also carry bytes; approximate the byte denominator
  // with zoom_bytes-scaled share of UDP payloads when available.
  double denom_bytes = static_cast<double>(counters.zoom_bytes);
  if (denom_bytes <= 0) denom_bytes = total_bytes;

  std::vector<EncapTypeRow> rows;
  for (const auto& [value, tally] : encap_types) {
    EncapTypeRow row;
    row.value = value;
    row.packet_type = encap_type_label(value);
    row.offset = zoom::media_payload_offset(value);
    row.pct_packets =
        total_packets > 0 ? static_cast<double>(tally.packets) / total_packets : 0.0;
    row.pct_bytes = denom_bytes > 0 ? static_cast<double>(tally.bytes) / denom_bytes : 0.0;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const EncapTypeRow& a, const EncapTypeRow& b) {
    return a.pct_packets > b.pct_packets;
  });
  return rows;
}

std::vector<PayloadTypeRow> table3_rows(const core::AnalyzerCounters& counters) {
  const auto payload_types = counters.payload_types();
  double total_packets = 0;
  double total_bytes = 0;
  for (const auto& [key, tally] : payload_types) {
    total_packets += static_cast<double>(tally.packets);
    total_bytes += static_cast<double>(tally.bytes);
  }
  std::vector<PayloadTypeRow> rows;
  for (const auto& [key, tally] : payload_types) {
    auto kind = static_cast<zoom::MediaKind>(key.first);
    PayloadTypeRow row;
    row.media_type = media_kind_label(kind);
    row.rtp_pt = key.second;
    row.description = std::string(zoom::payload_type_description(kind, key.second));
    row.pct_packets =
        total_packets > 0 ? static_cast<double>(tally.packets) / total_packets : 0.0;
    row.pct_bytes = total_bytes > 0 ? static_cast<double>(tally.bytes) / total_bytes : 0.0;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(),
            [](const PayloadTypeRow& a, const PayloadTypeRow& b) {
              return a.pct_packets > b.pct_packets;
            });
  return rows;
}

std::vector<HealthRow> health_rows(const core::AnalyzerHealth& h) {
  std::vector<HealthRow> rows;
  auto add = [&](std::string_view category, std::string_view description,
                 std::uint64_t count, bool dropped) {
    if (count > 0) rows.push_back(HealthRow{category, description, count, dropped});
  };
  add("truncated-l2", "frame shorter than an Ethernet header", h.truncated_l2, true);
  add("non-ipv4", "non-IPv4 ethertype (ARP/IPv6/...; benign)", h.non_ipv4, false);
  add("bad-l3", "truncated or inconsistent IPv4 header", h.bad_l3, true);
  add("ip-fragments", "non-first IP fragments (no L4 header)", h.ip_fragments, false);
  add("unsupported-l4", "IP protocol other than UDP/TCP (benign)", h.unsupported_l4,
      false);
  add("bad-l4", "truncated or inconsistent UDP/TCP header", h.bad_l4, true);
  add("snaplen-truncated", "captured bytes < reported wire length",
      h.snaplen_truncated, false);
  add("non-monotonic-ts", "timestamp regressed vs. previous record",
      h.non_monotonic_ts, false);
  add("frontend-rejected", "screened out by the capture front end (never decoded)",
      h.frontend_rejected, false);
  add("sketch-evicted", "sketch-tier flow churn: heavy-hitter evictions + demotions",
      h.sketch_evicted, false);
  add("bad-sfu-encap", "server payload below the 8-byte SFU encap", h.bad_sfu_encap,
      true);
  add("bad-media-encap", "known encap type with truncated header", h.bad_media_encap,
      true);
  add("malformed-rtp", "media encap promised RTP, parse failed", h.malformed_rtp,
      true);
  add("malformed-rtcp", "RTCP encap with empty compound parse", h.malformed_rtcp,
      true);
  add("malformed-stun", "port-3478 exchange that is not STUN", h.malformed_stun,
      true);
  add("unknown-payload-type", "RTP payload type outside Table 3",
      h.unknown_payload_type, false);
  add("quarantined-flows", "flows exceeding the malformed-streak threshold",
      h.quarantined_flows, false);
  add("quarantined-packets", "packets skipped on quarantined flows",
      h.quarantined_packets, true);
  add("epoch-evicted-flows", "flow state retired at epoch rotation (bounded memory)",
      h.epoch_evicted_flows, false);
  add("epoch-evicted-meetings", "meeting state retired at epoch rotation",
      h.epoch_evicted_meetings, false);
  add("overload-shed-l1", "overload L1: front-end rejects dropped pre-dispatch",
      h.overload_shed_l1, false);
  add("overload-shed-l2", "overload L2: non-Zoom-candidate admission sampling",
      h.overload_shed_l2, false);
  add("overload-shed-l3", "overload L3: media-flow packet sampling (degraded)",
      h.overload_shed_l3, false);
  add("overload-shed-l4", "overload L4: whole-batch head-drop + ring sheds",
      h.overload_shed_l4, false);
  add("ring-wait-spins", "producer spins on a full shard ring (timing-dependent)",
      h.ring_wait_spins, false);
  add("source-stalls", "watchdog-detected source stalls + reopens (timing-dependent)",
      h.source_stalls, false);
  add("kernel-packets", "packets seen at the kernel capture point (live gauge)",
      h.kernel_packets, false);
  add("kernel-drops", "kernel ring drops before the daemon saw the packet",
      h.kernel_drops, false);
  add("offload-covered", "metric work absorbed by the data-plane offload",
      h.offload_covered_packets, false);
  add("offload-collisions", "offload probe/telemetry register slot overwrites",
      h.offload_collisions, false);
  add("offload-evictions", "offload jitter scratch slots lost to colliding streams",
      h.offload_evictions, false);
  return rows;
}

std::vector<HealthRow> frontend_rows(const capture::FrontEndStats& s) {
  std::vector<HealthRow> rows;
  rows.push_back({"frontend-admitted", "pre-classified Zoom-relevant, fast dispatch",
                  s.admitted, false});
  rows.push_back({"frontend-rejected", "screened out without header decode",
                  s.rejected, false});
  rows.push_back({"frontend-full-parse", "uncertain, routed to the normal decode path",
                  s.full_parse, false});
  auto add = [&](std::string_view category, std::string_view description,
                 std::uint64_t count) {
    if (count > 0) rows.push_back(HealthRow{category, description, count, false});
  };
  add("frontend-zoom-shaped", "admits matching a Zoom payload shape", s.zoom_shaped);
  add("frontend-stun-flagged", "admits touching the STUN port", s.stun_flagged);
  add("frontend-simd-batches", "batches classified by the SWAR/SSE2 probe",
      s.simd_batches);
  add("frontend-scalar-batches", "batches classified by the scalar reference probe",
      s.scalar_batches);
  add("offload-covered", "admits absorbed by the data-plane metric offload",
      s.offload_covered);
  add("offload-collisions", "offload probe/telemetry register slot overwrites",
      s.offload_collisions);
  add("offload-evictions", "offload jitter scratch slots lost to colliding streams",
      s.offload_evictions);
  return rows;
}

}  // namespace zpm::analysis
