#include "analysis/epoch.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace zpm::analysis {

namespace {

/// Sparse tally encoding: only touched entries are written, as
/// (index, packets, bytes) triples. Campus-scale traffic touches a
/// handful of the 256/768 slots, so this keeps epoch records small.
template <std::size_t N>
void encode_tallies(const std::array<core::Tally, N>& tallies,
                    util::ByteWriter& w) {
  std::uint32_t touched = 0;
  for (const auto& t : tallies)
    if (t.packets != 0 || t.bytes != 0) ++touched;
  w.u32be(touched);
  for (std::size_t i = 0; i < N; ++i) {
    const auto& t = tallies[i];
    if (t.packets == 0 && t.bytes == 0) continue;
    w.u16be(static_cast<std::uint16_t>(i));
    w.u64be(t.packets);
    w.u64be(t.bytes);
  }
}

template <std::size_t N>
bool decode_tallies(util::ByteReader& r, std::array<core::Tally, N>& tallies) {
  tallies.fill(core::Tally{});
  const std::uint32_t touched = r.u32be();
  if (!r.can_read(std::size_t{touched} * 18)) return false;
  for (std::uint32_t i = 0; i < touched; ++i) {
    const std::uint16_t idx = r.u16be();
    if (idx >= N) return false;
    tallies[idx].packets = r.u64be();
    tallies[idx].bytes = r.u64be();
  }
  return r.ok();
}

void encode_health(const core::AnalyzerHealth& h, util::ByteWriter& w) {
  w.u64be(h.truncated_l2);
  w.u64be(h.non_ipv4);
  w.u64be(h.bad_l3);
  w.u64be(h.ip_fragments);
  w.u64be(h.unsupported_l4);
  w.u64be(h.bad_l4);
  w.u64be(h.snaplen_truncated);
  w.u64be(h.non_monotonic_ts);
  w.u64be(h.frontend_rejected);
  w.u64be(h.sketch_evicted);
  w.u64be(h.bad_sfu_encap);
  w.u64be(h.bad_media_encap);
  w.u64be(h.malformed_rtp);
  w.u64be(h.malformed_rtcp);
  w.u64be(h.malformed_stun);
  w.u64be(h.unknown_payload_type);
  w.u64be(h.quarantined_flows);
  w.u64be(h.quarantined_packets);
  w.u64be(h.epoch_evicted_flows);
  w.u64be(h.epoch_evicted_meetings);
  w.u64be(h.overload_shed_l1);
  w.u64be(h.overload_shed_l2);
  w.u64be(h.overload_shed_l3);
  w.u64be(h.overload_shed_l4);
  w.u64be(h.ring_wait_spins);
  w.u64be(h.source_stalls);
  w.u64be(h.kernel_packets);
  w.u64be(h.kernel_drops);
  w.u64be(h.offload_covered_packets);
  w.u64be(h.offload_collisions);
  w.u64be(h.offload_evictions);
}

bool decode_health(util::ByteReader& r, core::AnalyzerHealth& h) {
  h.truncated_l2 = r.u64be();
  h.non_ipv4 = r.u64be();
  h.bad_l3 = r.u64be();
  h.ip_fragments = r.u64be();
  h.unsupported_l4 = r.u64be();
  h.bad_l4 = r.u64be();
  h.snaplen_truncated = r.u64be();
  h.non_monotonic_ts = r.u64be();
  h.frontend_rejected = r.u64be();
  h.sketch_evicted = r.u64be();
  h.bad_sfu_encap = r.u64be();
  h.bad_media_encap = r.u64be();
  h.malformed_rtp = r.u64be();
  h.malformed_rtcp = r.u64be();
  h.malformed_stun = r.u64be();
  h.unknown_payload_type = r.u64be();
  h.quarantined_flows = r.u64be();
  h.quarantined_packets = r.u64be();
  h.epoch_evicted_flows = r.u64be();
  h.epoch_evicted_meetings = r.u64be();
  h.overload_shed_l1 = r.u64be();
  h.overload_shed_l2 = r.u64be();
  h.overload_shed_l3 = r.u64be();
  h.overload_shed_l4 = r.u64be();
  h.ring_wait_spins = r.u64be();
  h.source_stalls = r.u64be();
  h.kernel_packets = r.u64be();
  h.kernel_drops = r.u64be();
  h.offload_covered_packets = r.u64be();
  h.offload_collisions = r.u64be();
  h.offload_evictions = r.u64be();
  return r.ok();
}

void encode_counters(const core::AnalyzerCounters& c, util::ByteWriter& w) {
  w.u64be(c.total_packets);
  w.u64be(c.total_bytes);
  w.u64be(c.zoom_packets);
  w.u64be(c.zoom_bytes);
  w.u64be(c.server_udp_packets);
  w.u64be(c.p2p_udp_packets);
  w.u64be(c.stun_packets);
  w.u64be(c.tcp_control_packets);
  w.u64be(c.media_packets);
  w.u64be(c.rtcp_packets);
  w.u64be(c.unknown_sfu_packets);
  w.u64be(c.unknown_media_packets);
  w.u64be(c.p2p_false_positives);
  encode_tallies(c.encap_tally, w);
  encode_tallies(c.payload_tally, w);
}

bool decode_counters(util::ByteReader& r, core::AnalyzerCounters& c) {
  c.total_packets = r.u64be();
  c.total_bytes = r.u64be();
  c.zoom_packets = r.u64be();
  c.zoom_bytes = r.u64be();
  c.server_udp_packets = r.u64be();
  c.p2p_udp_packets = r.u64be();
  c.stun_packets = r.u64be();
  c.tcp_control_packets = r.u64be();
  c.media_packets = r.u64be();
  c.rtcp_packets = r.u64be();
  c.unknown_sfu_packets = r.u64be();
  c.unknown_media_packets = r.u64be();
  c.p2p_false_positives = r.u64be();
  return r.ok() && decode_tallies(r, c.encap_tally) &&
         decode_tallies(r, c.payload_tally);
}

}  // namespace

void encode_epoch_report(const EpochReport& report, util::ByteWriter& w) {
  w.u64be(report.seq);
  w.u64be(report.first_packet);
  w.u64be(report.packets);
  w.u64be(static_cast<std::uint64_t>(report.first_ts.us()));
  w.u64be(static_cast<std::uint64_t>(report.last_ts.us()));
  encode_counters(report.counters, w);
  encode_health(report.health, w);
  w.u64be(report.stream_count);
  w.u64be(report.media_count);
  w.u64be(report.meeting_count);
  w.u64be(report.zoom_flow_count);
  w.u64be(report.tier_stats.absorbed_packets);
  w.u64be(report.tier_stats.absorbed_bytes);
  w.u64be(report.tier_stats.promotions);
  w.u64be(report.tier_stats.demotions);
  w.u64be(report.tier_stats.evictions);
  w.u32be(static_cast<std::uint32_t>(report.heavy_hitters.size()));
  for (const auto& h : report.heavy_hitters) {
    const net::PackedFlowKey key(h.flow);
    w.u64be(key.k1);
    w.u64be(key.k2);
    w.u64be(h.bytes);
    w.u64be(h.packets);
    w.u64be(h.error_bytes);
  }
  w.u32be(report.max_overload_level);
  capture::encode_offload_report(report.offload, w);
}

bool decode_epoch_report(util::ByteReader& r, EpochReport& report) {
  report.seq = r.u64be();
  report.first_packet = r.u64be();
  report.packets = r.u64be();
  report.first_ts =
      util::Timestamp::from_micros(static_cast<std::int64_t>(r.u64be()));
  report.last_ts =
      util::Timestamp::from_micros(static_cast<std::int64_t>(r.u64be()));
  if (!decode_counters(r, report.counters)) return false;
  if (!decode_health(r, report.health)) return false;
  report.stream_count = r.u64be();
  report.media_count = r.u64be();
  report.meeting_count = r.u64be();
  report.zoom_flow_count = r.u64be();
  report.tier_stats.absorbed_packets = r.u64be();
  report.tier_stats.absorbed_bytes = r.u64be();
  report.tier_stats.promotions = r.u64be();
  report.tier_stats.demotions = r.u64be();
  report.tier_stats.evictions = r.u64be();
  const std::uint32_t hitters = r.u32be();
  if (!r.can_read(std::size_t{hitters} * 40)) return false;
  report.heavy_hitters.clear();
  report.heavy_hitters.reserve(hitters);
  for (std::uint32_t i = 0; i < hitters; ++i) {
    net::PackedFlowKey key;
    key.k1 = r.u64be();
    key.k2 = r.u64be();
    sketch::HeavyHitter h;
    h.flow = key.unpack();
    h.bytes = r.u64be();
    h.packets = r.u64be();
    h.error_bytes = r.u64be();
    report.heavy_hitters.push_back(h);
  }
  report.max_overload_level = r.u32be();
  auto offload = capture::decode_offload_report(r);
  if (!offload) return false;
  report.offload = *offload;
  return r.ok();
}

// ---------------------------------------------------------------------------
// EpochEngine

EpochEngine::EpochEngine(EpochEngineConfig config)
    : config_(std::move(config)) {
  if (config_.overload.enabled) {
    if (config_.overload.window_packets == 0)
      config_.overload.window_packets = 2048;
    governor_.emplace(config_.overload.governor);
    shedder_ = overload::LoadShedder(config_.overload.shed);
    if (!config_.overload.inject.empty())
      schedule_.parse(config_.overload.inject);
    next_observe_ = config_.overload.window_packets;
  }
  open_epoch();
}

EpochEngine::~EpochEngine() = default;

void EpochEngine::open_epoch() {
  if (staged_) {
    // Limits changes were applied live (set_limits); carry the current
    // values over the staged engine swap.
    staged_->limits = config_.limits;
    staged_->heavy_hitter_limit = config_.heavy_hitter_limit;
    config_ = std::move(*staged_);
    staged_.reset();
  }
  serial_.reset();
  parallel_.reset();
  filter_.reset();
  if (config_.shards > 1) {
    pipeline::ParallelAnalyzerConfig pc;
    pc.analyzer = config_.analyzer;
    pc.shards = config_.shards;
    pc.bounded_push = config_.bounded_dispatch;
    pc.fault_slow_shard = config_.fault_slow_shard;
    pc.fault_slow_us = config_.fault_slow_us;
    parallel_.emplace(std::move(pc));
  } else {
    serial_.emplace(config_.analyzer);
  }
  if (config_.frontend) {
    capture::BatchFilterConfig fc;
    fc.server_db = config_.analyzer.server_db;
    fc.shards = config_.shards;
    fc.flow_memory_budget = config_.flow_memory_budget;
    fc.dataplane_offload = config_.dataplane_offload;
    fc.offload = config_.offload;
    filter_.emplace(std::move(fc));
  }
  // Overload bookkeeping: the governor's level/EWMA carry across the
  // rotation (sustained pressure is the whole point), but the per-flow
  // sampling counters restart with the fresh front end's slot ids, the
  // shed baseline re-anchors so each epoch records its own deltas, and
  // the producer-spin baseline resets with the fresh pipeline.
  shedder_.reset_flow_state();
  shed_base_ = shedder_.stats();
  spins_base_ = 0;
  epoch_max_level_ = governor_ ? governor_->level() : 0;
  packets_ = 0;
  first_ts_ = util::Timestamp{};
  last_ts_ = util::Timestamp{};
  epoch_open_ = true;
}

bool EpochEngine::rotate_before(util::Timestamp ts) const {
  if (packets_ == 0) return false;  // an epoch never closes empty
  if (config_.limits.max_packets > 0 && packets_ >= config_.limits.max_packets)
    return true;
  return config_.limits.max_span > util::Duration::micros(0) &&
         ts - first_ts_ >= config_.limits.max_span;
}

void EpochEngine::feed(std::span<const net::RawPacketView> run,
                       pipeline::BatchLifetime lifetime) {
  if (run.empty()) return;
  const int level = governor_ ? governor_->level() : 0;
  // Feed latency is a real pressure signal only when the governor runs
  // on live signals; injected runs skip the clock so their decisions
  // stay a pure function of the packet sequence.
  const bool timed = governor_ && schedule_.empty();
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};

  if (level >= overload::kMaxLevel) {
    // L4: head-drop the whole run before any classification work.
    shedder_.apply(level, run, nullptr, shed_run_, shed_verdicts_);
  } else if (filter_) {
    filter_->classify(run, verdicts_);
    std::span<const net::RawPacketView> dispatch = run;
    const capture::BatchVerdicts* verdicts = &verdicts_;
    if (level > 0 &&
        shedder_.apply(level, run, &verdicts_, shed_run_, shed_verdicts_)) {
      dispatch = shed_run_;
      verdicts = &shed_verdicts_;
    }
    if (parallel_) {
      parallel_->offer_batch(dispatch, lifetime, *verdicts);
    } else {
      for (std::size_t i = 0; i < dispatch.size(); ++i) {
        if (verdicts->verdicts[i] == capture::Verdict::Reject)
          serial_->account_frontend_rejected(dispatch[i]);
        else
          serial_->offer(dispatch[i],
                         verdicts->verdicts[i] == capture::Verdict::Admit &&
                             (verdicts->flags[i] & capture::kFlagOffloadCovered) != 0);
      }
    }
  } else if (parallel_) {
    parallel_->offer_batch(run, lifetime);
  } else {
    for (const auto& view : run) serial_->offer(view);
  }

  if (timed) {
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      static_cast<double>(run.size());
    feed_latency_ewma_us_ += 0.3 * (us - feed_latency_ewma_us_);
  }
}

void EpochEngine::observe_window() {
  if (!governor_) return;
  int level;
  if (!schedule_.empty()) {
    level = governor_->observe_pressure(schedule_.pressure_at(global_packets_));
  } else {
    overload::PressureSignals signals;
    if (parallel_) {
      signals.ring_occupancy = parallel_->max_ring_occupancy();
      const std::uint64_t spins = parallel_->producer_wait_spins();
      signals.spins_delta = spins - spins_base_;
      spins_base_ = spins;
    }
    signals.latency_us = feed_latency_ewma_us_;
    signals.kernel_drops_delta = pending_kernel_drops_;
    pending_kernel_drops_ = 0;
    level = governor_->observe(signals);
  }
  epoch_max_level_ = std::max(epoch_max_level_, level);
}

void EpochEngine::set_overload_thresholds(
    const overload::GovernorConfig& config) {
  if (!governor_) return;
  config_.overload.governor = config;
  governor_->set_config(config);
}

void EpochEngine::set_global_packets(std::uint64_t n) {
  global_packets_ = n;
  if (governor_) {
    const std::uint64_t w = config_.overload.window_packets;
    next_observe_ = (n / w + 1) * w;
  }
}

void EpochEngine::offer(std::span<const net::RawPacketView> batch,
                        pipeline::BatchLifetime lifetime,
                        std::vector<EpochReport>& completed,
                        std::vector<query::EpochSliceSet>* slices) {
  // Packet-exact splitting: rotation falls between exactly the same two
  // packets no matter how the source batched them, so epoch content is
  // independent of batch alignment (the crash-recovery contract).
  std::size_t run_start = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (rotate_before(batch[i].ts)) {
      feed(batch.subspan(run_start, i - run_start), lifetime);
      run_start = i;
      if (slices != nullptr && config_.collect_journal) {
        slices->emplace_back();
        completed.push_back(close_epoch(&slices->back()));
      } else {
        completed.push_back(close_epoch());
      }
      open_epoch();
    }
    // Observation boundaries are absolute global-index multiples of the
    // window, split packet-exactly like rotations — so governor
    // decisions (and therefore shed decisions) are independent of how
    // the source batched the stream.
    if (governor_ && global_packets_ >= next_observe_) {
      feed(batch.subspan(run_start, i - run_start), lifetime);
      run_start = i;
      observe_window();
      next_observe_ += config_.overload.window_packets;
    }
    if (packets_ == 0) first_ts_ = batch[i].ts;
    last_ts_ = batch[i].ts;
    ++packets_;
    ++global_packets_;
  }
  feed(batch.subspan(run_start), lifetime);
}

EpochReport EpochEngine::close_epoch(query::EpochSliceSet* slices) {
  EpochReport rep;
  rep.seq = next_seq_++;
  rep.first_packet = global_packets_ - packets_;
  rep.packets = packets_;
  rep.first_ts = first_ts_;
  rep.last_ts = last_ts_;
  if (parallel_) {
    parallel_->finish();
    rep.counters = parallel_->counters();
    rep.health = parallel_->health();
    rep.stream_count = parallel_->streams().size();
    rep.media_count = parallel_->media_count();
    rep.meeting_count = parallel_->meetings().meeting_count();
    rep.zoom_flow_count = parallel_->zoom_flow_count();
  } else {
    serial_->finish();
    rep.counters = serial_->counters();
    rep.health = serial_->health();
    rep.stream_count = serial_->streams().size();
    rep.media_count = serial_->streams().media_count();
    rep.meeting_count = serial_->meetings().meeting_count();
    rep.zoom_flow_count = serial_->zoom_flow_count();
  }
  if (filter_) {
    rep.health.sketch_evicted = filter_->sketch_evicted();
    auto tier = filter_->sketch_report(config_.heavy_hitter_limit);
    rep.tier_stats = tier.stats;
    rep.heavy_hitters = std::move(tier.heavy_hitters);
    if (filter_->offload_enabled()) {
      // Fold the merged per-shard offload registers into the durable
      // record; the health counters mirror the report's accounting so
      // coverage shows up in the standard health table.
      rep.offload = filter_->offload_report();
      rep.health.offload_covered_packets = rep.offload.covered_packets;
      rep.health.offload_collisions = rep.offload.collisions();
      rep.health.offload_evictions = rep.offload.flow_evictions;
    }
  }
  // Rotation retires the window's flow/meeting state — that is the
  // memory bound, and it is accounted here so it is never silent.
  rep.health.epoch_evicted_flows = rep.zoom_flow_count;
  rep.health.epoch_evicted_meetings = rep.meeting_count;
  // Ladder sheds: this epoch's deltas of the shedder's lifetime totals
  // (+= — bounded-dispatch L4 ring sheds already live in the pipeline's
  // health and must not be overwritten).
  const overload::ShedStats& shed = shedder_.stats();
  rep.health.overload_shed_l1 += shed.l1_packets - shed_base_.l1_packets;
  rep.health.overload_shed_l2 += shed.l2_packets - shed_base_.l2_packets;
  rep.health.overload_shed_l3 += shed.l3_packets - shed_base_.l3_packets;
  rep.health.overload_shed_l4 += shed.l4_packets - shed_base_.l4_packets;
  rep.max_overload_level = static_cast<std::uint32_t>(epoch_max_level_);
  // Durable records carry only sequence-deterministic values.
  rep.health.ring_wait_spins = 0;
  rep.health.source_stalls = 0;
  rep.health.kernel_packets = 0;
  rep.health.kernel_drops = 0;
  // Journal slices are built from the retiring analyzer state *after*
  // the gauge zeroing above, so the report bytes shard 0 carries equal
  // the durable epoch record byte-for-byte.
  if (slices != nullptr && config_.collect_journal) {
    query::SliceSource src;
    src.seq = rep.seq;
    src.first_packet = rep.first_packet;
    src.packets = rep.packets;
    src.first_us = rep.first_ts.us();
    src.last_us = rep.last_ts.us();
    src.shard_count = static_cast<std::uint32_t>(
        config_.shards > 0 ? config_.shards : 1);
    util::ByteWriter report_bytes(1024);
    encode_epoch_report(rep, report_bytes);
    src.report = report_bytes.view();
    if (parallel_) {
      const auto& streams = parallel_->streams();
      src.streams = std::span<const core::StreamInfo* const>(
          streams.data(), streams.size());
      src.grouper = &parallel_->meetings();
      query::build_epoch_slices(src, *slices);
    } else {
      slice_streams_.clear();
      for (const auto& s : serial_->streams().streams())
        slice_streams_.push_back(s.get());
      src.streams = slice_streams_;
      src.grouper = &serial_->meetings();
      query::build_epoch_slices(src, *slices);
    }
  }
  epoch_open_ = false;
  return rep;
}

std::optional<EpochReport> EpochEngine::flush(query::EpochSliceSet* slices) {
  if (packets_ == 0) return std::nullopt;
  EpochReport rep = close_epoch(slices);
  open_epoch();
  return rep;
}

void EpochEngine::stage_config(const core::AnalyzerConfig& analyzer,
                               bool frontend,
                               std::size_t flow_memory_budget) {
  EpochEngineConfig next = config_;
  next.analyzer = analyzer;
  next.frontend = frontend;
  next.flow_memory_budget = flow_memory_budget;
  staged_ = std::move(next);
}

void EpochEngine::set_next_seq(std::uint64_t seq) { next_seq_ = seq; }

}  // namespace zpm::analysis
