// Versioned, checksummed snapshot + restore for the continuous daemon.
//
// The durability unit is the *completed epoch*: at every rotation the
// daemon quiesces its engine (epochs are independent windows, so there
// is no mid-flight analyzer state at a boundary), folds the finished
// epoch into its cumulative aggregates, and writes one snapshot file
// atomically (temp file + rename). A `kill -9` therefore loses at most
// the in-progress epoch; restart resumes the packet stream at the
// recorded position and the epoch numbering where it left off.
//
// Failure model: restore must either succeed *exactly* or fail cleanly
// into fresh-start mode — never crash, never half-load (fuzzed by
// tests/fuzz/fuzz_snapshot.cc). The wrapper is
//   magic "ZPMS" | version u32 | payload_len u64 | crc32(payload) | payload
// and every parse is bounds-checked; a bad magic, version, length or
// checksum yields RestoreStatus::Corrupt with the data untouched.
//
// Per-epoch report files share the scheme with magic "ZPME" and a
// single encoded EpochReport as payload. They are the crash-recovery
// byte-compare artifact: an interrupted-then-restored run must write
// byte-identical files for every completed epoch.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/epoch.h"

namespace zpm::analysis {

// Version 2: AnalyzerHealth gained the overload-shed counters and the
// kernel capture gauges, and EpochReport gained max_overload_level.
// Version 3: AnalyzerHealth gained the data-plane offload accounting
// (offload_covered_packets/collisions/evictions) and EpochReport
// gained the OffloadReport histogram section. Older-version files
// fail validation and trigger a logged fresh start (the established
// exactly-or-fresh posture).
inline constexpr std::uint32_t kSnapshotVersion = 3;

/// Everything a restarted daemon needs to continue. Bounded: the epoch
/// list holds only the most recent records (kSnapshotRecentEpochs);
/// cumulative aggregates carry the full history.
struct SnapshotData {
  /// Sequence number the next completed epoch will carry.
  std::uint64_t next_epoch_seq = 0;
  /// Global packet-stream position at the snapshot boundary — the
  /// resume point (BatchSource::skip_to target).
  std::uint64_t packets_consumed = 0;
  /// Daemon-lifetime aggregates over all completed epochs.
  core::AnalyzerCounters cumulative_counters;
  core::AnalyzerHealth cumulative_health;
  /// Most recent completed epochs (diagnostics; bounded).
  std::vector<EpochReport> recent_epochs;
  /// Serialized daemon-lifetime sketch::FlowTier (background-traffic
  /// summary across epochs); empty when the tier is disabled.
  std::vector<std::uint8_t> background_tier;

  bool operator==(const SnapshotData&) const = default;
};

/// How many recent epoch records a snapshot retains.
inline constexpr std::size_t kSnapshotRecentEpochs = 16;

enum class RestoreStatus : std::uint8_t {
  Ok,       ///< snapshot validated and loaded exactly
  Missing,  ///< no snapshot file — first start, fresh state
  Corrupt,  ///< file exists but failed validation — fresh-start mode
};

/// Full snapshot file image (wrapper + payload). Deterministic.
std::vector<std::uint8_t> encode_snapshot(const SnapshotData& data);
/// Validates and decodes a snapshot image. False on any framing,
/// version, length or checksum failure; `data` contents are then
/// unspecified and must be discarded.
bool parse_snapshot(std::span<const std::uint8_t> bytes, SnapshotData& data);

/// Writes the snapshot atomically: `path`.tmp, fsync, rename. False
/// (with `error` set) on any I/O failure; a failed write never
/// clobbers an existing good snapshot.
bool save_snapshot(const SnapshotData& data, const std::string& path,
                   std::string* error);
/// Loads and validates `path`. On Corrupt/Missing, `data` is left
/// default — the caller starts fresh.
RestoreStatus load_snapshot(const std::string& path, SnapshotData& data,
                            std::string* error);

/// Per-epoch report file ("ZPME" wrapper, one EpochReport payload).
std::vector<std::uint8_t> encode_epoch_file(const EpochReport& report);
bool parse_epoch_file(std::span<const std::uint8_t> bytes, EpochReport& report);
bool save_epoch_report(const EpochReport& report, const std::string& path,
                       std::string* error);
bool load_epoch_report(const std::string& path, EpochReport& report,
                       std::string* error);

}  // namespace zpm::analysis
