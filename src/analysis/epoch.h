// Epoch rotation for continuous operation.
//
// A long-running monitor cannot hold per-flow state forever, and a
// crash must not cost a week of results. The epoch engine bounds both:
// the packet stream is cut into *epochs* — independent measurement
// windows, each analyzed by a fresh analyzer/front-end instance — and
// every completed epoch becomes one immutable, serializable record.
// Rotation retires the previous window's flow and meeting state, which
// is the memory bound; the retirement is accounted in the finished
// epoch's health (`epoch-evicted-flows`, `epoch-evicted-meetings`) so
// eviction is visible, never silent.
//
// Determinism contract (what makes crash recovery testable): rotation
// triggers are pure functions of the packet sequence — a packet count
// and a capture-timestamp span, never the wall clock — and the engine
// splits incoming batches packet-exactly at the boundary. Epoch N's
// record is therefore a function of (packet stream, configuration)
// alone: identical across batch sizes and interrupted/restarted runs.
// The analyzer-derived fields are additionally shard-count-invariant
// (the pipeline's bit-identity contract); the sketch-tier summary is
// not — the front end partitions its flow tables by shard, so tier
// eviction patterns legitimately depend on the shard count, though
// they stay deterministic for any fixed count. Nondeterministic
// gauges (`ring_wait_spins`, `source_stalls`) are zeroed in the
// durable record.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "capture/batch_filter.h"
#include "core/analyzer.h"
#include "pipeline/parallel_analyzer.h"
#include "sketch/sketch.h"
#include "util/bytes.h"
#include "util/time.h"

namespace zpm::analysis {

/// Rotation triggers; an epoch closes when either fires. Both are
/// capture-sequence-deterministic (see file comment).
struct EpochLimits {
  /// Close after this many offered packets. 0 disables the trigger.
  std::uint64_t max_packets = 1'000'000;
  /// Close when the epoch's capture-time extent reaches this span
  /// (first to current packet timestamp). Zero/negative disables.
  util::Duration max_span = util::Duration::seconds(60.0);

  [[nodiscard]] bool any_enabled() const {
    return max_packets > 0 || max_span > util::Duration::micros(0);
  }
};

/// Engine configuration. `analyzer`/`frontend`/`flow_memory_budget`
/// mirror the zpm_analyze pipeline; `shards` > 1 routes through
/// pipeline::ParallelAnalyzer (epoch records are bit-identical).
struct EpochEngineConfig {
  core::AnalyzerConfig analyzer;
  std::size_t shards = 1;
  bool frontend = true;
  std::size_t flow_memory_budget = std::size_t{1} << 20;  // 0 = no sketch tier
  EpochLimits limits;
  /// Heavy hitters retained per epoch record.
  std::size_t heavy_hitter_limit = 16;
};

/// One completed epoch: the durable unit of the daemon. Everything in
/// here is deterministic (see file comment) and round-trips through
/// encode_epoch_report()/decode_epoch_report().
struct EpochReport {
  std::uint64_t seq = 0;            ///< 0-based epoch sequence number
  std::uint64_t first_packet = 0;   ///< global index of the first packet
  std::uint64_t packets = 0;        ///< packets offered to this epoch
  util::Timestamp first_ts;         ///< capture time of the first packet
  util::Timestamp last_ts;          ///< capture time of the last packet
  core::AnalyzerCounters counters;
  core::AnalyzerHealth health;      ///< nondeterministic gauges zeroed
  std::uint64_t stream_count = 0;
  std::uint64_t media_count = 0;
  std::uint64_t meeting_count = 0;
  std::uint64_t zoom_flow_count = 0;
  sketch::TierStats tier_stats;
  std::vector<sketch::HeavyHitter> heavy_hitters;

  bool operator==(const EpochReport&) const = default;
};

/// Deterministic binary encoding (big-endian, sparse tallies). Equal
/// reports encode to equal bytes — the crash-recovery byte-compare
/// artifact.
void encode_epoch_report(const EpochReport& report, util::ByteWriter& w);
/// Bounds-checked decode; false on truncation or malformed framing
/// (`report` may be partially filled — discard it).
bool decode_epoch_report(util::ByteReader& r, EpochReport& report);

/// See file comment. Single producer thread; drives a serial Analyzer
/// or a ParallelAnalyzer per epoch plus an optional capture front end.
class EpochEngine {
 public:
  explicit EpochEngine(EpochEngineConfig config);
  ~EpochEngine();

  EpochEngine(const EpochEngine&) = delete;
  EpochEngine& operator=(const EpochEngine&) = delete;

  /// Feeds one batch, splitting it packet-exactly at rotation
  /// boundaries; every epoch completed inside the batch is appended to
  /// `completed`. `lifetime` follows the pipeline contract (Pinned
  /// requires the batch storage to outlive the epoch it lands in).
  void offer(std::span<const net::RawPacketView> batch,
             pipeline::BatchLifetime lifetime,
             std::vector<EpochReport>& completed);

  /// Closes the in-progress epoch (graceful drain / end of stream).
  /// nullopt when the current epoch is empty.
  std::optional<EpochReport> flush();

  /// Immediate limit change (SIGHUP): applies to the current epoch too,
  /// so a shortened span can close it on the very next packet.
  void set_limits(const EpochLimits& limits) { config_.limits = limits; }
  /// Staged engine change (SIGHUP): the new analyzer/front-end
  /// configuration takes effect at the next rotation, so the current
  /// epoch's flow state is never dropped mid-window.
  void stage_config(const core::AnalyzerConfig& analyzer, bool frontend,
                    std::size_t flow_memory_budget);

  /// Sequence number the next completed epoch will carry.
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
  /// Restores the epoch numbering after a snapshot restore.
  void set_next_seq(std::uint64_t seq);
  /// Packets offered to the in-progress epoch.
  [[nodiscard]] std::uint64_t packets_in_current() const { return packets_; }
  /// Global packet index of the next offered packet.
  [[nodiscard]] std::uint64_t global_packets() const { return global_packets_; }
  /// Restores the global packet position after a snapshot restore.
  void set_global_packets(std::uint64_t n) { global_packets_ = n; }

  [[nodiscard]] const EpochEngineConfig& config() const { return config_; }

 private:
  void open_epoch();
  EpochReport close_epoch();
  /// True when the epoch must rotate before admitting a packet at `ts`.
  [[nodiscard]] bool rotate_before(util::Timestamp ts) const;
  void feed(std::span<const net::RawPacketView> run,
            pipeline::BatchLifetime lifetime);

  EpochEngineConfig config_;
  std::optional<EpochEngineConfig> staged_;  // applies at next rotation

  // Per-epoch engines, rebuilt at every rotation (epochs are
  // independent windows; this reset *is* the memory bound).
  std::optional<core::Analyzer> serial_;
  std::optional<pipeline::ParallelAnalyzer> parallel_;
  std::optional<capture::BatchFilter> filter_;
  capture::BatchVerdicts verdicts_;  // classify() scratch, reused

  std::uint64_t next_seq_ = 0;
  std::uint64_t global_packets_ = 0;  // next packet's global index
  std::uint64_t packets_ = 0;         // offered to the current epoch
  util::Timestamp first_ts_;
  util::Timestamp last_ts_;
  bool epoch_open_ = false;
};

}  // namespace zpm::analysis
