// Epoch rotation for continuous operation.
//
// A long-running monitor cannot hold per-flow state forever, and a
// crash must not cost a week of results. The epoch engine bounds both:
// the packet stream is cut into *epochs* — independent measurement
// windows, each analyzed by a fresh analyzer/front-end instance — and
// every completed epoch becomes one immutable, serializable record.
// Rotation retires the previous window's flow and meeting state, which
// is the memory bound; the retirement is accounted in the finished
// epoch's health (`epoch-evicted-flows`, `epoch-evicted-meetings`) so
// eviction is visible, never silent.
//
// Determinism contract (what makes crash recovery testable): rotation
// triggers are pure functions of the packet sequence — a packet count
// and a capture-timestamp span, never the wall clock — and the engine
// splits incoming batches packet-exactly at the boundary. Epoch N's
// record is therefore a function of (packet stream, configuration)
// alone: identical across batch sizes and interrupted/restarted runs.
// The analyzer-derived fields are additionally shard-count-invariant
// (the pipeline's bit-identity contract); the sketch-tier summary is
// not — the front end partitions its flow tables by shard, so tier
// eviction patterns legitimately depend on the shard count, though
// they stay deterministic for any fixed count. The data-plane offload
// summary follows the same rule: which packets are *covered* is a pure
// per-packet predicate (shard-invariant), but the offload's register
// histograms and collision counters live in per-shard instances, so
// their slot-collision churn depends on the shard count while staying
// deterministic for any fixed count. Nondeterministic gauges
// (`ring_wait_spins`, `source_stalls`) are zeroed in the durable
// record.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "capture/batch_filter.h"
#include "core/analyzer.h"
#include "overload/overload.h"
#include "pipeline/parallel_analyzer.h"
#include "query/journal.h"
#include "sketch/sketch.h"
#include "util/bytes.h"
#include "util/time.h"

namespace zpm::analysis {

/// Rotation triggers; an epoch closes when either fires. Both are
/// capture-sequence-deterministic (see file comment).
struct EpochLimits {
  /// Close after this many offered packets. 0 disables the trigger.
  std::uint64_t max_packets = 1'000'000;
  /// Close when the epoch's capture-time extent reaches this span
  /// (first to current packet timestamp). Zero/negative disables.
  util::Duration max_span = util::Duration::seconds(60.0);

  [[nodiscard]] bool any_enabled() const {
    return max_packets > 0 || max_span > util::Duration::micros(0);
  }
};

/// Engine configuration. `analyzer`/`frontend`/`flow_memory_budget`
/// mirror the zpm_analyze pipeline; `shards` > 1 routes through
/// pipeline::ParallelAnalyzer (epoch records are bit-identical).
struct EpochEngineConfig {
  core::AnalyzerConfig analyzer;
  std::size_t shards = 1;
  bool frontend = true;
  std::size_t flow_memory_budget = std::size_t{1} << 20;  // 0 = no sketch tier
  /// Data-plane metric offload (capture/offload.h): the front end keeps
  /// in-dataplane RTT/jitter histograms for covered media flows and the
  /// host skips the per-packet estimator work for them. Requires the
  /// front end; ignored when `frontend` is false.
  bool dataplane_offload = false;
  capture::OffloadConfig offload;
  EpochLimits limits;
  /// Heavy hitters retained per epoch record.
  std::size_t heavy_hitter_limit = 16;
  /// Overload governance (zpm::overload). Disabled by default; enabled
  /// with an empty inject spec the governor reads real pipeline signals
  /// (live mode), with a spec it is fully deterministic.
  overload::OverloadOptions overload;
  /// Live-mode bounded dispatch for the sharded pipeline: the producer
  /// never blocks on a full shard ring; overflow is shed and accounted
  /// (overload_shed_l4). Leave false for lossless replay/file analysis.
  bool bounded_dispatch = false;
  /// Fault injection passed through to the pipeline (overload tests):
  /// shard `fault_slow_shard` sleeps `fault_slow_us` per drained batch.
  std::size_t fault_slow_shard = SIZE_MAX;
  std::uint32_t fault_slow_us = 0;
  /// Metric-journal collection (query/journal.h): every completed epoch
  /// additionally yields `shards` journal slices — per-stream and
  /// per-meeting aggregate rows built from the analyzer state retired
  /// at rotation, plus the encoded epoch report on shard 0. The slices
  /// are returned through offer()/flush()'s out-params; the engine
  /// itself never touches a file.
  bool collect_journal = false;
};

/// One completed epoch: the durable unit of the daemon. Everything in
/// here is deterministic (see file comment) and round-trips through
/// encode_epoch_report()/decode_epoch_report().
struct EpochReport {
  std::uint64_t seq = 0;            ///< 0-based epoch sequence number
  std::uint64_t first_packet = 0;   ///< global index of the first packet
  std::uint64_t packets = 0;        ///< packets offered to this epoch
  util::Timestamp first_ts;         ///< capture time of the first packet
  util::Timestamp last_ts;          ///< capture time of the last packet
  core::AnalyzerCounters counters;
  core::AnalyzerHealth health;      ///< nondeterministic gauges zeroed
  std::uint64_t stream_count = 0;
  std::uint64_t media_count = 0;
  std::uint64_t meeting_count = 0;
  std::uint64_t zoom_flow_count = 0;
  sketch::TierStats tier_stats;
  std::vector<sketch::HeavyHitter> heavy_hitters;
  /// Highest overload level the governor reached during this epoch.
  /// >= 3 means media-flow coverage was degraded (sampled); the shed
  /// totals are in health.overload_shed_l1..l4.
  std::uint32_t max_overload_level = 0;
  /// Data-plane offload summary: merged per-shard RTT/jitter histogram
  /// registers plus coverage/collision accounting. All-zero when the
  /// offload is disabled (and encoded as such — the record format is
  /// fixed, not conditional).
  capture::OffloadReport offload;

  bool operator==(const EpochReport&) const = default;
};

/// Deterministic binary encoding (big-endian, sparse tallies). Equal
/// reports encode to equal bytes — the crash-recovery byte-compare
/// artifact.
void encode_epoch_report(const EpochReport& report, util::ByteWriter& w);
/// Bounds-checked decode; false on truncation or malformed framing
/// (`report` may be partially filled — discard it).
bool decode_epoch_report(util::ByteReader& r, EpochReport& report);

/// See file comment. Single producer thread; drives a serial Analyzer
/// or a ParallelAnalyzer per epoch plus an optional capture front end.
class EpochEngine {
 public:
  explicit EpochEngine(EpochEngineConfig config);
  ~EpochEngine();

  EpochEngine(const EpochEngine&) = delete;
  EpochEngine& operator=(const EpochEngine&) = delete;

  /// Feeds one batch, splitting it packet-exactly at rotation
  /// boundaries; every epoch completed inside the batch is appended to
  /// `completed`. `lifetime` follows the pipeline contract (Pinned
  /// requires the batch storage to outlive the epoch it lands in).
  /// With `collect_journal`, one EpochSliceSet per completed epoch is
  /// appended to `slices` (ignored when null or collection is off).
  void offer(std::span<const net::RawPacketView> batch,
             pipeline::BatchLifetime lifetime,
             std::vector<EpochReport>& completed,
             std::vector<query::EpochSliceSet>* slices = nullptr);

  /// Closes the in-progress epoch (graceful drain / end of stream).
  /// nullopt when the current epoch is empty. With `collect_journal`,
  /// the closed epoch's slices land in `*slices` when non-null.
  std::optional<EpochReport> flush(query::EpochSliceSet* slices = nullptr);

  /// Immediate limit change (SIGHUP): applies to the current epoch too,
  /// so a shortened span can close it on the very next packet.
  void set_limits(const EpochLimits& limits) { config_.limits = limits; }
  /// Staged engine change (SIGHUP): the new analyzer/front-end
  /// configuration takes effect at the next rotation, so the current
  /// epoch's flow state is never dropped mid-window.
  void stage_config(const core::AnalyzerConfig& analyzer, bool frontend,
                    std::size_t flow_memory_budget);

  /// Sequence number the next completed epoch will carry.
  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
  /// Restores the epoch numbering after a snapshot restore.
  void set_next_seq(std::uint64_t seq);
  /// Packets offered to the in-progress epoch.
  [[nodiscard]] std::uint64_t packets_in_current() const { return packets_; }
  /// Global packet index of the next offered packet.
  [[nodiscard]] std::uint64_t global_packets() const { return global_packets_; }
  /// Restores the global packet position after a snapshot restore.
  /// Re-aligns the overload observation boundary: window boundaries are
  /// absolute global-index multiples, so a restarted run observes at
  /// the same points an uninterrupted one does.
  void set_global_packets(std::uint64_t n);

  [[nodiscard]] const EpochEngineConfig& config() const { return config_; }

  // --- Overload governance ---------------------------------------------

  /// Current ladder level (0 when the governor is disabled).
  [[nodiscard]] int overload_level() const {
    return governor_ ? governor_->level() : 0;
  }
  /// Smoothed pressure after the last observation (0 when disabled).
  [[nodiscard]] double overload_pressure() const {
    return governor_ ? governor_->pressure() : 0.0;
  }
  /// Governor lifetime counters (all zero when disabled).
  [[nodiscard]] overload::GovernorStats governor_stats() const {
    return governor_ ? governor_->stats() : overload::GovernorStats{};
  }
  /// Shedder lifetime totals (ladder sheds only; bounded-dispatch ring
  /// sheds are accounted in the epoch healths' overload_shed_l4).
  [[nodiscard]] const overload::ShedStats& shed_stats() const {
    return shedder_.stats();
  }
  /// Live retune of the governor thresholds (daemon SIGHUP). Applies
  /// immediately; level, streaks and counters are preserved. No-op when
  /// the governor is disabled.
  void set_overload_thresholds(const overload::GovernorConfig& config);
  /// Feeds kernel drop deltas from the live source into the next
  /// pressure observation (daemon poll loop).
  void note_kernel_drops(std::uint64_t delta) {
    pending_kernel_drops_ += delta;
  }

 private:
  void open_epoch();
  /// With journal collection on and `slices` non-null, also builds the
  /// closed epoch's journal slices — after the report's gauge zeroing,
  /// so the slice-carried report bytes equal the durable epoch record.
  EpochReport close_epoch(query::EpochSliceSet* slices = nullptr);
  /// True when the epoch must rotate before admitting a packet at `ts`.
  [[nodiscard]] bool rotate_before(util::Timestamp ts) const;
  void feed(std::span<const net::RawPacketView> run,
            pipeline::BatchLifetime lifetime);
  /// One governor observation at the current global-index window
  /// boundary (injected pressure, or real signals).
  void observe_window();

  EpochEngineConfig config_;
  std::optional<EpochEngineConfig> staged_;  // applies at next rotation

  // Per-epoch engines, rebuilt at every rotation (epochs are
  // independent windows; this reset *is* the memory bound).
  std::optional<core::Analyzer> serial_;
  std::optional<pipeline::ParallelAnalyzer> parallel_;
  std::optional<capture::BatchFilter> filter_;
  capture::BatchVerdicts verdicts_;  // classify() scratch, reused

  // Overload governance. The governor persists across rotations — the
  // ladder tracks sustained pressure, not epoch boundaries — while the
  // shedder's per-flow sampling counters reset with the front end's
  // slot ids at every rotation.
  std::optional<overload::OverloadGovernor> governor_;
  overload::PressureSchedule schedule_;
  overload::LoadShedder shedder_;
  overload::ShedStats shed_base_;        // shedder totals at epoch open
  std::uint64_t next_observe_ = 0;       // next observation boundary (global)
  std::uint64_t spins_base_ = 0;         // producer wait spins at last observe
  std::uint64_t pending_kernel_drops_ = 0;
  double feed_latency_ewma_us_ = 0.0;    // smoothed per-packet feed latency
  int epoch_max_level_ = 0;
  std::vector<net::RawPacketView> shed_run_;  // shedder scratch, reused
  capture::BatchVerdicts shed_verdicts_;
  std::vector<const core::StreamInfo*> slice_streams_;  // slice-build scratch

  std::uint64_t next_seq_ = 0;
  std::uint64_t global_packets_ = 0;  // next packet's global index
  std::uint64_t packets_ = 0;         // offered to the current epoch
  util::Timestamp first_ts_;
  util::Timestamp last_ts_;
  bool epoch_open_ = false;
};

}  // namespace zpm::analysis
