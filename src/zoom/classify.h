// Per-packet Zoom dissection: UDP payload -> encapsulation headers ->
// RTP/RTCP, mirroring the recipe of paper §4.2 and the Wireshark plugin
// (Appendix C).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "proto/h264.h"
#include "proto/rtcp.h"
#include "proto/rtp.h"
#include "proto/stun.h"
#include "zoom/encap.h"

namespace zpm::zoom {

/// How the packet reached us (determines whether the 8-byte SFU
/// encapsulation precedes the media encapsulation).
enum class Transport : std::uint8_t { ServerBased, P2P };

/// Dissection outcome categories.
enum class PacketCategory : std::uint8_t {
  Media,         // RTP audio/video/screen-share (types 13/15/16)
  Rtcp,          // RTCP SR / SR+SDES (types 33/34)
  Stun,          // cleartext STUN (P2P pre-flight, §4.1)
  UnknownSfu,    // SFU encap type != 0x05 (≈1.6% of server packets)
  UnknownMedia,  // media encap type outside {13,15,16,33,34} (<10%)
};

/// Fully dissected Zoom UDP payload. Spans borrow the input buffer.
struct ZoomPacket {
  Transport transport = Transport::ServerBased;
  PacketCategory category = PacketCategory::UnknownMedia;
  std::optional<SfuEncap> sfu;       // present iff server-based
  std::optional<MediaEncap> media;   // present for known media-encap types
  std::optional<proto::RtpHeader> rtp;
  std::vector<proto::RtcpPacket> rtcp;
  std::optional<proto::FuA> fu_a;    // H.264 FU-A indication (video only)
  std::optional<proto::StunMessage> stun;
  /// Encrypted media payload after RTP header (and FU-A bytes if video).
  std::span<const std::uint8_t> rtp_payload;

  [[nodiscard]] bool is_media() const { return category == PacketCategory::Media; }
  [[nodiscard]] std::optional<MediaKind> media_kind() const {
    return media ? media->media_kind() : std::nullopt;
  }
  /// SSRC of the RTP stream, or the sender SSRC of the first RTCP packet.
  [[nodiscard]] std::optional<std::uint32_t> ssrc() const;
};

/// Why a dissection fell short of a fully parsed packet. Reported even
/// when dissect() still returns a (partially classified) ZoomPacket, so
/// the analyzer can separate "unknown but well-formed" (expected in the
/// wild: undocumented encap types) from "known type but mangled bytes"
/// (truncation / corruption), which feeds health accounting.
enum class DissectFlaw : std::uint8_t {
  None,                 // fully parsed, or clean unknown-SFU-type packet
  TruncatedSfu,         // server payload shorter than the 8-byte SFU encap
  TruncatedMediaEncap,  // known media-encap type, buffer shorter than its header
  UnknownMediaType,     // type byte outside the documented set (not corruption)
  BadRtp,               // media encap promised RTP but the header didn't parse
  BadRtcp,              // RTCP encap type whose compound body didn't parse
};

/// Dissects one Zoom UDP payload. Returns nullopt when the payload is
/// not recognizably Zoom at all (used to discard P2P false positives,
/// §4.1: "they can easily be filtered out by inspecting the packet
/// format"). When `flaw` is non-null it is set to the parse shortfall
/// (DissectFlaw::None when the packet parsed fully).
std::optional<ZoomPacket> dissect(std::span<const std::uint8_t> udp_payload,
                                  Transport transport,
                                  DissectFlaw* flaw = nullptr);

/// Dissects a STUN exchange packet (client <-> zone controller, port
/// 3478). Thin wrapper kept symmetrical with dissect().
std::optional<ZoomPacket> dissect_stun(std::span<const std::uint8_t> udp_payload);

/// True when (media kind, RTP payload type) is one of the documented
/// combinations of Table 3.
bool is_known_payload_type(MediaKind kind, std::uint8_t payload_type);

/// Single-byte screen over the union of Table 3's RTP payload types
/// (any media kind): {98, 99, 110, 112, 113}. The capture front end's
/// fixed-offset shape probe (capture::BatchFilter) uses this before a
/// packet is dissected; full (kind, pt) validation stays with
/// is_known_payload_type.
constexpr bool is_known_rtp_payload_type(std::uint8_t payload_type) {
  return payload_type == pt::kVideoMain || payload_type == pt::kAudioSilent ||
         payload_type == pt::kFec || payload_type == pt::kAudioSpeaking ||
         payload_type == pt::kAudioUnknownMode;
}

/// Human-readable description for Table 3 rows, e.g. "speaking mode".
std::string_view payload_type_description(MediaKind kind, std::uint8_t payload_type);

}  // namespace zpm::zoom
