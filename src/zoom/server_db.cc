#include "zoom/server_db.h"

#include <algorithm>
#include <cctype>

namespace zpm::zoom {

ServerDb::ServerDb(std::vector<net::Ipv4Subnet> subnets) : subnets_(std::move(subnets)) {
  rebuild_intervals();
}

void ServerDb::add(net::Ipv4Subnet subnet) {
  subnets_.push_back(subnet);
  rebuild_intervals();
}

void ServerDb::rebuild_intervals() {
  intervals_.clear();
  intervals_.reserve(subnets_.size());
  for (const auto& s : subnets_) {
    std::uint32_t start = s.base().value();
    std::uint32_t end = start + static_cast<std::uint32_t>(s.size() - 1);
    intervals_.emplace_back(start, end);
  }
  std::sort(intervals_.begin(), intervals_.end());
  // Merge overlaps so lookup is a single binary search.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> merged;
  for (const auto& iv : intervals_) {
    if (!merged.empty() && iv.first <= merged.back().second + 1 &&
        merged.back().second >= iv.first - 1) {
      merged.back().second = std::max(merged.back().second, iv.second);
    } else {
      merged.push_back(iv);
    }
  }
  intervals_ = std::move(merged);
}

bool ServerDb::contains(net::Ipv4Addr ip) const {
  std::uint32_t v = ip.value();
  auto it = std::upper_bound(intervals_.begin(), intervals_.end(),
                             std::pair<std::uint32_t, std::uint32_t>{v, 0xffffffffu});
  if (it == intervals_.begin()) return false;
  --it;
  return v >= it->first && v <= it->second;
}

std::uint64_t ServerDb::address_count() const {
  std::uint64_t total = 0;
  for (const auto& iv : intervals_) total += std::uint64_t{iv.second} - iv.first + 1;
  return total;
}

const ServerDb& ServerDb::official() {
  static const ServerDb db = [] {
    // Representative of the published list's structure (Appendix B):
    // Zoom's own AS30103 block plus AWS and Oracle Cloud allocations.
    std::vector<net::Ipv4Subnet> nets;
    auto push = [&nets](const char* cidr) {
      auto s = net::Ipv4Subnet::parse(cidr);
      if (s) nets.push_back(*s);
    };
    push("170.114.0.0/16");    // AS30103 — MMR/ZC pool used by the simulator
    push("206.247.0.0/16");    // AS30103
    push("221.122.88.64/27");  // Chinese ISP block
    push("52.202.62.192/26");  // AWS
    push("52.61.100.0/24");    // AWS
    push("3.235.69.0/25");     // AWS
    push("99.79.20.0/25");     // AWS
    push("18.205.93.128/25");  // AWS
    push("130.61.164.0/22");   // Oracle Cloud
    push("134.224.0.0/16");    // Oracle Cloud
    return ServerDb(std::move(nets));
  }();
  return db;
}

std::optional<ParsedServerName> parse_server_name(std::string_view name) {
  // zoom<loc><id><type>.<loc>.zoom.us
  constexpr std::string_view kPrefix = "zoom";
  if (name.substr(0, kPrefix.size()) != kPrefix) return std::nullopt;
  std::string_view rest = name.substr(kPrefix.size());

  if (rest.size() < 2 || !std::isalpha(static_cast<unsigned char>(rest[0])) ||
      !std::isalpha(static_cast<unsigned char>(rest[1])))
    return std::nullopt;
  std::string loc(rest.substr(0, 2));
  rest.remove_prefix(2);

  std::size_t digits = 0;
  int id = 0;
  while (digits < rest.size() && std::isdigit(static_cast<unsigned char>(rest[digits]))) {
    id = id * 10 + (rest[digits] - '0');
    ++digits;
  }
  if (digits == 0) return std::nullopt;
  rest.remove_prefix(digits);

  ServerKind kind;
  if (rest.substr(0, 3) == "mmr") {
    kind = ServerKind::Mmr;
    rest.remove_prefix(3);
  } else if (rest.substr(0, 2) == "zc") {
    kind = ServerKind::Zc;
    rest.remove_prefix(2);
  } else {
    return std::nullopt;
  }

  std::string expected_suffix = "." + loc + ".zoom.us";
  if (rest != expected_suffix) return std::nullopt;
  return ParsedServerName{loc, id, kind};
}

const std::vector<ServerSite>& census_sites() {
  static const std::vector<ServerSite> sites = [] {
    std::vector<ServerSite> out;
    int block = 0;
    auto add = [&out, &block](const char* code, const char* label, int mmrs, int zcs) {
      // Each site gets a /20 inside 170.114.0.0/16 (4096 addresses:
      // ample for the largest site's 1478 servers).
      net::Ipv4Addr base(170, 114, static_cast<std::uint8_t>(block * 16), 0);
      out.push_back(ServerSite{code, label, mmrs, zcs, net::Ipv4Subnet(base, 20)});
      ++block;
    };
    // Counts copied from Table 7 of the paper.
    add("ca", "United States - California (multiple)", 1410, 68);
    add("ny", "United States - New York (New York City)", 1280, 62);
    add("dv", "United States - Colorado (Denver)", 758, 21);
    add("dc", "United States - Virginia (Washington D.C.)", 166, 4);
    add("se", "United States - Washington (Seattle)", 96, 12);
    add("am", "Netherlands (Amsterdam)", 419, 21);
    add("hk", "China (Hongkong)", 274, 8);
    add("fr", "Germany (Frankfurt)", 214, 2);
    add("sy", "Australia (Sydney, Melbourne)", 210, 20);
    add("mb", "India (Mumbai, Hyderabad)", 196, 10);
    add("ty", "Japan (Tokyo)", 128, 2);
    add("sp", "Brasil (Sao Paulo)", 124, 6);
    add("to", "Canada (Toronto)", 93, 12);
    add("bj", "China (Mainland)", 84, 8);
    return out;
  }();
  return sites;
}

std::vector<ServerRecord> synthesize_infrastructure(util::Rng& rng, int noise_count) {
  std::vector<ServerRecord> records;
  for (const auto& site : census_sites()) {
    std::uint32_t next_ip = site.subnet.base().value() + 1;
    for (int i = 1; i <= site.mmrs; ++i) {
      records.push_back(ServerRecord{
          net::Ipv4Addr(next_ip++),
          "zoom" + site.code + std::to_string(i) + "mmr." + site.code + ".zoom.us"});
    }
    for (int i = 1; i <= site.zcs; ++i) {
      records.push_back(ServerRecord{
          net::Ipv4Addr(next_ip++),
          "zoom" + site.code + std::to_string(i) + "zc." + site.code + ".zoom.us"});
    }
  }
  // Non-MMR/ZC infrastructure (web, API, TURN, ...) whose names do not
  // follow the scheme; the census must skip these.
  for (int i = 0; i < noise_count; ++i) {
    std::uint32_t ip = 0xcef70000u /* 206.247.0.0 */ +
                       static_cast<std::uint32_t>(rng.uniform_int(1, 65000));
    const char* kinds[] = {"www", "api", "turn", "rwg", "web"};
    records.push_back(ServerRecord{
        net::Ipv4Addr(ip),
        std::string(kinds[static_cast<std::size_t>(rng.uniform_int(0, 4))]) +
            std::to_string(rng.uniform_int(1, 99)) + ".zoom.us"});
  }
  return records;
}

std::vector<SiteTally> census_tally(const std::vector<ServerRecord>& records) {
  // code -> tally, labelled via the site list when known.
  std::vector<SiteTally> tallies;
  auto find_or_add = [&tallies](const std::string& code) -> SiteTally& {
    std::string label = code;
    for (const auto& site : census_sites())
      if (site.code == code) label = site.label;
    for (auto& t : tallies)
      if (t.label == label) return t;
    tallies.push_back(SiteTally{label, 0, 0});
    return tallies.back();
  };
  for (const auto& rec : records) {
    auto parsed = parse_server_name(rec.dns_name);
    if (!parsed) continue;  // not an MMR/ZC name
    auto& tally = find_or_add(parsed->location);
    if (parsed->kind == ServerKind::Mmr)
      ++tally.mmrs;
    else
      ++tally.zcs;
  }
  std::sort(tallies.begin(), tallies.end(),
            [](const SiteTally& a, const SiteTally& b) { return a.mmrs > b.mmrs; });
  return tallies;
}

}  // namespace zpm::zoom
