// Wire constants of Zoom's proprietary protocol as reverse-engineered in
// the paper (§4.2, Tables 1-3, Fig. 7). Everything here was observed in
// cleartext in 2021/2022-era Zoom traffic.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace zpm::zoom {

/// UDP port Zoom servers (MMRs) use for media (§3).
inline constexpr std::uint16_t kServerMediaPort = 8801;
/// UDP port Zoom Zone Controllers answer STUN on (§4.1).
inline constexpr std::uint16_t kStunServerPort = 3478;

/// SFU encapsulation type that indicates a media encapsulation header
/// follows (98.4% of server-based packets, Table 1).
inline constexpr std::uint8_t kSfuTypeMedia = 0x05;

/// SFU encapsulation direction values (Table 1, byte 7).
inline constexpr std::uint8_t kSfuDirToSfu = 0x00;
inline constexpr std::uint8_t kSfuDirFromSfu = 0x04;

/// Zoom media encapsulation type values (Table 2).
enum class MediaEncapType : std::uint8_t {
  ScreenShare = 13,
  Audio = 15,
  Video = 16,
  RtcpSr = 33,       // sender report
  RtcpSrSdes = 34,   // sender report + source description
};

/// Media stream kinds derived from the encapsulation type.
enum class MediaKind : std::uint8_t { Audio, Video, ScreenShare };

/// Returns the media kind for an encapsulation type, if it is one of the
/// three RTP media types.
constexpr std::optional<MediaKind> media_kind_of(std::uint8_t encap_type) {
  switch (static_cast<MediaEncapType>(encap_type)) {
    case MediaEncapType::Audio: return MediaKind::Audio;
    case MediaEncapType::Video: return MediaKind::Video;
    case MediaEncapType::ScreenShare: return MediaKind::ScreenShare;
    default: return std::nullopt;
  }
}

constexpr std::string_view media_kind_name(MediaKind k) {
  switch (k) {
    case MediaKind::Audio: return "audio";
    case MediaKind::Video: return "video";
    case MediaKind::ScreenShare: return "screen_share";
  }
  return "?";
}

/// True for the two RTCP-carrying encapsulation types.
constexpr bool is_rtcp_encap_type(std::uint8_t encap_type) {
  return encap_type == static_cast<std::uint8_t>(MediaEncapType::RtcpSr) ||
         encap_type == static_cast<std::uint8_t>(MediaEncapType::RtcpSrSdes);
}

/// Offset from the start of the media encapsulation header to the
/// encapsulated RTP/RTCP payload (Table 2 / Fig. 7), or 0 for unknown
/// types.
constexpr std::size_t media_payload_offset(std::uint8_t encap_type) {
  switch (static_cast<MediaEncapType>(encap_type)) {
    case MediaEncapType::ScreenShare: return 27;
    case MediaEncapType::Audio: return 19;
    case MediaEncapType::Video: return 24;
    case MediaEncapType::RtcpSr: return 16;
    case MediaEncapType::RtcpSrSdes: return 16;
    default: return 0;
  }
}

/// RTP payload types Zoom uses per media kind (Table 3).
namespace pt {
inline constexpr std::uint8_t kVideoMain = 98;
inline constexpr std::uint8_t kFec = 110;            // video + audio FEC substream
inline constexpr std::uint8_t kAudioSpeaking = 112;  // participant talking
inline constexpr std::uint8_t kAudioSilent = 99;     // fixed 40 B silence packets
inline constexpr std::uint8_t kAudioUnknownMode = 113;  // mobile clients
inline constexpr std::uint8_t kScreenShareMain = 99;
}  // namespace pt

/// Fixed RTP payload size of silent-mode audio packets (§4.2.3).
inline constexpr std::size_t kSilentAudioPayloadBytes = 40;

/// Video RTP timestamp clock (§5.2, RFC 3551 recommendation).
inline constexpr std::uint32_t kVideoClockHz = 90'000;
/// Audio RTP timestamp clock (Opus-style 48 kHz; audio uses 20 ms frames).
inline constexpr std::uint32_t kAudioClockHz = 48'000;

/// Zoom retransmits a lost media packet at most this many times (§5.5).
inline constexpr int kMaxRetransmissions = 2;
/// Observed retransmission timeout added on top of the RTT (§5.5).
inline constexpr std::int64_t kRetransmitTimeoutUs = 100'000;

}  // namespace zpm::zoom
