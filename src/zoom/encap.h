// Zoom's two proprietary encapsulation headers (paper §4.2.2, Table 1,
// Fig. 7).
//
// Server-based traffic:  UDP | SFU encap (8 B) | media encap | RTP/RTCP
// P2P traffic:           UDP | media encap | RTP/RTCP
//
// The paper documents a subset of fields; the remaining bytes are kept
// as raw "undocumented" bytes so (a) the dissector can show them and
// (b) serialization round-trips byte-for-byte.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "util/bytes.h"
#include "zoom/constants.h"

namespace zpm::zoom {

/// Zoom SFU encapsulation: fixed 8-byte header present on all
/// server-based UDP packets (absent on P2P).
struct SfuEncap {
  std::uint8_t type = kSfuTypeMedia;      // byte 0; 0x05 = media encap follows
  std::uint16_t sequence = 0;             // bytes 1-2
  std::array<std::uint8_t, 4> undocumented{};  // bytes 3-6
  std::uint8_t direction = kSfuDirToSfu;  // byte 7; 0x00 to / 0x04 from SFU

  static constexpr std::size_t kSize = 8;

  [[nodiscard]] bool is_from_sfu() const { return direction == kSfuDirFromSfu; }
  /// True when a media encapsulation header follows this one.
  [[nodiscard]] bool carries_media_encap() const { return type == kSfuTypeMedia; }

  static std::optional<SfuEncap> parse(util::ByteReader& r);
  void serialize(util::ByteWriter& w) const;
};

/// Zoom media encapsulation: variable-length header whose first byte
/// (the type) determines where the encapsulated RTP/RTCP starts
/// (Table 2). Fields at fixed offsets per Table 1.
struct MediaEncap {
  std::uint8_t type = 0;            // byte 0 (13/15/16/33/34 understood)
  std::uint16_t sequence = 0;       // bytes 9-10
  std::uint32_t timestamp = 0;      // bytes 11-14
  std::uint16_t frame_sequence = 0; // bytes 21-22 (video only)
  std::uint8_t packets_in_frame = 0;// byte 23 (video only)
  /// The undocumented filler bytes, in header order, excluding the
  /// documented fields above. Sized for the largest (screen share)
  /// header; only the first `undocumented_size()` entries are meaningful.
  std::array<std::uint8_t, 20> undocumented{};

  /// Header length for this packet's type (Table 2 offset), 0 if the
  /// type is not one of the five understood values.
  [[nodiscard]] std::size_t header_length() const { return media_payload_offset(type); }
  [[nodiscard]] bool is_video() const {
    return type == static_cast<std::uint8_t>(MediaEncapType::Video);
  }
  [[nodiscard]] bool is_rtcp() const { return is_rtcp_encap_type(type); }
  [[nodiscard]] std::optional<MediaKind> media_kind() const { return media_kind_of(type); }

  /// Number of undocumented bytes for this type.
  [[nodiscard]] std::size_t undocumented_size() const;

  /// Parses a media encapsulation header of a known type. nullopt when
  /// the first byte is not a known type or the buffer is shorter than
  /// the type's header length. On success the reader sits at the
  /// encapsulated RTP/RTCP payload.
  static std::optional<MediaEncap> parse(util::ByteReader& r);

  void serialize(util::ByteWriter& w) const;
};

}  // namespace zpm::zoom
