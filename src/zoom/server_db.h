// Zoom server infrastructure knowledge (paper §3, §6.1, Appendix B):
// the published IP-subnet list used for stateless server-traffic
// matching, and the MMR/ZC census methodology behind Table 7.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/addr.h"
#include "util/rng.h"

namespace zpm::zoom {

/// Set of IPv4 subnets belonging to Zoom; answers membership queries in
/// O(log n) over merged intervals. This is the stateless half of the
/// Fig. 13 capture filter.
class ServerDb {
 public:
  ServerDb() = default;
  explicit ServerDb(std::vector<net::Ipv4Subnet> subnets);

  /// A representative instance of Zoom's published IP list (the real
  /// list is public; this subset covers the AS30103 / AWS / Oracle
  /// split described in Appendix B and is what the simulator allocates
  /// server addresses from).
  static const ServerDb& official();

  void add(net::Ipv4Subnet subnet);
  [[nodiscard]] bool contains(net::Ipv4Addr ip) const;
  [[nodiscard]] const std::vector<net::Ipv4Subnet>& subnets() const { return subnets_; }
  /// Total addresses covered (after interval merging).
  [[nodiscard]] std::uint64_t address_count() const;

 private:
  void rebuild_intervals();
  std::vector<net::Ipv4Subnet> subnets_;
  // Merged, sorted [start, end] closed intervals for lookup.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> intervals_;
};

/// Server role decoded from the reverse-DNS naming scheme.
enum class ServerKind : std::uint8_t { Mmr, Zc };

/// One server as discovered by the Appendix-B census (IP + reverse DNS).
struct ServerRecord {
  net::Ipv4Addr ip;
  std::string dns_name;
};

/// Decoded `zoom<location><id><type>.<location>.zoom.us` name.
struct ParsedServerName {
  std::string location;  // two-letter site code
  int id = 0;
  ServerKind kind = ServerKind::Mmr;
};

/// Parses the naming scheme; nullopt for names that do not match
/// (census treats those as non-MMR/ZC addresses).
std::optional<ParsedServerName> parse_server_name(std::string_view name);

/// A census site with its paper-reported server counts (Table 7).
struct ServerSite {
  std::string code;     // two-letter id used in DNS names
  std::string label;    // human-readable location, as printed in Table 7
  int mmrs = 0;
  int zcs = 0;
  net::Ipv4Subnet subnet;  // where this site's addresses are allocated
};

/// The site list backing the synthetic infrastructure (counts mirror
/// Table 7 of the paper).
const std::vector<ServerSite>& census_sites();

/// Generates the full synthetic server inventory: one ServerRecord per
/// MMR/ZC with scheme-conformant DNS names, plus `noise_count` non-media
/// addresses with unrelated names (census must ignore them).
std::vector<ServerRecord> synthesize_infrastructure(util::Rng& rng,
                                                    int noise_count = 200);

/// Census result row.
struct SiteTally {
  std::string label;
  int mmrs = 0;
  int zcs = 0;
};

/// Reproduces the Table 7 method: parse every record's DNS name,
/// classify MMR vs ZC, and tally per site (rows ordered by MMR count,
/// descending). Records with non-conforming names are skipped.
std::vector<SiteTally> census_tally(const std::vector<ServerRecord>& records);

}  // namespace zpm::zoom
