#include "zoom/encap.h"

namespace zpm::zoom {

std::optional<SfuEncap> SfuEncap::parse(util::ByteReader& r) {
  if (!r.can_read(kSize)) return std::nullopt;
  SfuEncap h;
  h.type = r.u8();
  h.sequence = r.u16be();
  for (auto& b : h.undocumented) b = r.u8();
  h.direction = r.u8();
  return h;
}

void SfuEncap::serialize(util::ByteWriter& w) const {
  w.u8(type);
  w.u16be(sequence);
  w.bytes(undocumented);
  w.u8(direction);
}

std::size_t MediaEncap::undocumented_size() const {
  // Documented bytes: type (1) + seq (2) + ts (4) = 7 common bytes, plus
  // frame seq (2) + pkts-in-frame (1) for video. Everything else in the
  // type's header length is undocumented filler.
  std::size_t len = header_length();
  if (len == 0) return 0;
  std::size_t documented = 1 + 2 + 4 + (is_video() ? 3 : 0);
  return len - documented;
}

std::optional<MediaEncap> MediaEncap::parse(util::ByteReader& r) {
  std::uint8_t type = r.peek_u8();
  std::size_t len = media_payload_offset(type);
  if (len == 0 || !r.can_read(len)) return std::nullopt;

  MediaEncap h;
  h.type = r.u8();
  std::size_t undoc = 0;
  // Bytes 1-8: undocumented.
  for (std::size_t i = 1; i <= 8; ++i) h.undocumented[undoc++] = r.u8();
  h.sequence = r.u16be();   // bytes 9-10
  h.timestamp = r.u32be();  // bytes 11-14
  if (h.is_video()) {
    // Bytes 15-20 undocumented, 21-22 frame seq, 23 pkts-in-frame.
    for (std::size_t i = 15; i <= 20; ++i) h.undocumented[undoc++] = r.u8();
    h.frame_sequence = r.u16be();
    h.packets_in_frame = r.u8();
  } else {
    // Remaining bytes up to the payload offset are undocumented.
    for (std::size_t i = 15; i < len; ++i) h.undocumented[undoc++] = r.u8();
  }
  return r.ok() ? std::optional(h) : std::nullopt;
}

void MediaEncap::serialize(util::ByteWriter& w) const {
  std::size_t len = header_length();
  if (len == 0) return;  // unknown type: nothing sensible to emit
  w.u8(type);
  std::size_t undoc = 0;
  for (std::size_t i = 1; i <= 8; ++i) w.u8(undocumented[undoc++]);
  w.u16be(sequence);
  w.u32be(timestamp);
  if (is_video()) {
    for (std::size_t i = 15; i <= 20; ++i) w.u8(undocumented[undoc++]);
    w.u16be(frame_sequence);
    w.u8(packets_in_frame);
  } else {
    for (std::size_t i = 15; i < len; ++i) w.u8(undocumented[undoc++]);
  }
}

}  // namespace zpm::zoom
