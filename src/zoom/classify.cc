#include "zoom/classify.h"

namespace zpm::zoom {

std::optional<std::uint32_t> ZoomPacket::ssrc() const {
  if (rtp) return rtp->ssrc;
  for (const auto& pkt : rtcp) {
    if (const auto* sr = std::get_if<proto::SenderReport>(&pkt)) return sr->sender_ssrc;
    if (const auto* rr = std::get_if<proto::ReceiverReport>(&pkt)) return rr->sender_ssrc;
  }
  return std::nullopt;
}

std::optional<ZoomPacket> dissect(std::span<const std::uint8_t> udp_payload,
                                  Transport transport,
                                  DissectFlaw* flaw) {
  if (flaw) *flaw = DissectFlaw::None;
  util::ByteReader r(udp_payload);
  ZoomPacket out;
  out.transport = transport;

  if (transport == Transport::ServerBased) {
    auto sfu = SfuEncap::parse(r);
    if (!sfu) {
      if (flaw) *flaw = DissectFlaw::TruncatedSfu;
      return std::nullopt;
    }
    out.sfu = *sfu;
    if (!sfu->carries_media_encap()) {
      out.category = PacketCategory::UnknownSfu;
      return out;
    }
  }

  auto media = MediaEncap::parse(r);
  if (!media) {
    // Disambiguate the two parse-failure causes: an undocumented type
    // byte is expected traffic; a documented type with too few bytes
    // behind it is a mangled or truncated record.
    bool known_type = r.remaining() > 0 && media_payload_offset(r.peek_u8()) != 0;
    if (flaw) {
      *flaw = known_type ? DissectFlaw::TruncatedMediaEncap
                         : DissectFlaw::UnknownMediaType;
    }
    if (transport == Transport::P2P) {
      // A P2P candidate that does not carry a known media encapsulation
      // is not Zoom traffic (port-reuse false positive).
      return std::nullopt;
    }
    out.category = PacketCategory::UnknownMedia;
    return out;
  }
  out.media = *media;

  if (media->is_rtcp()) {
    out.rtcp = proto::parse_rtcp_compound(r.rest());
    if (out.rtcp.empty()) {
      if (flaw) *flaw = DissectFlaw::BadRtcp;
      out.category = PacketCategory::UnknownMedia;
      return out;
    }
    out.category = PacketCategory::Rtcp;
    return out;
  }

  // Media types 13/15/16 carry RTP at the type-specific offset.
  auto rtp = proto::RtpHeader::parse(r);
  if (!rtp) {
    if (flaw) *flaw = DissectFlaw::BadRtp;
    if (transport == Transport::P2P) return std::nullopt;
    out.category = PacketCategory::UnknownMedia;
    return out;
  }
  out.rtp = *rtp;
  out.category = PacketCategory::Media;
  out.rtp_payload = r.rest();

  // Video payloads start with an H.264 FU-A indication (§4.2.3).
  if (media->is_video()) {
    if (auto fu = proto::parse_fu_a(out.rtp_payload)) {
      out.fu_a = *fu;
      out.rtp_payload = out.rtp_payload.subspan(2);
    }
  }
  return out;
}

std::optional<ZoomPacket> dissect_stun(std::span<const std::uint8_t> udp_payload) {
  auto msg = proto::StunMessage::parse(udp_payload);
  if (!msg) return std::nullopt;
  ZoomPacket out;
  out.category = PacketCategory::Stun;
  out.stun = std::move(*msg);
  return out;
}

bool is_known_payload_type(MediaKind kind, std::uint8_t payload_type) {
  switch (kind) {
    case MediaKind::Video:
      return payload_type == pt::kVideoMain || payload_type == pt::kFec;
    case MediaKind::Audio:
      return payload_type == pt::kAudioSpeaking || payload_type == pt::kAudioSilent ||
             payload_type == pt::kAudioUnknownMode || payload_type == pt::kFec;
    case MediaKind::ScreenShare:
      return payload_type == pt::kScreenShareMain;
  }
  return false;
}

std::string_view payload_type_description(MediaKind kind, std::uint8_t payload_type) {
  switch (kind) {
    case MediaKind::Video:
      if (payload_type == pt::kVideoMain) return "main stream";
      if (payload_type == pt::kFec) return "FEC";
      break;
    case MediaKind::Audio:
      if (payload_type == pt::kAudioSpeaking) return "speaking mode";
      if (payload_type == pt::kAudioSilent) return "silent mode";
      if (payload_type == pt::kAudioUnknownMode) return "mode unknown";
      if (payload_type == pt::kFec) return "FEC";
      break;
    case MediaKind::ScreenShare:
      if (payload_type == pt::kScreenShareMain) return "main stream";
      break;
  }
  return "unknown";
}

}  // namespace zpm::zoom
