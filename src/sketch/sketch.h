// Sketch-backed flow tier: O(1)-memory summarization of background
// traffic, the software analogue of DUNE-style switch sketch tiers.
//
// The paper's campus tap (§5) sees every 5-tuple on the network; the
// Tofino filter rejects the non-Zoom bulk at line rate, but a software
// deployment still wants *some* visibility into what it rejects — flow
// counts, byte volumes, who the elephants are — without paying exact
// per-flow state for millions of concurrent background flows. This
// module bounds that cost at a fixed byte budget:
//
//   * CountMinSketch — conservative-update count-min over packed
//     canonical flow keys, cells laid out so every row starts on a
//     cache-line boundary. Per-key indices come from one 64-bit
//     canonical hash via Kirsch–Mitzenmacher double hashing, so the
//     tier never hashes a packet the front end hasn't already hashed.
//   * HeavyTable — SpaceSaving-style top-K table (exact keys, byte and
//     packet counts with the classic overestimate bound) with an
//     intrusive min-heap and an open-addressing index, all sized at
//     construction.
//   * FlowTier — the facade the capture front end drives: absorb() on
//     every rejected packet, promote() when the filter admits a flow to
//     exact tracking (returns the carried byte/packet aggregate),
//     demote() when exact tracking lets a flow go.
//
// Everything is sized once from a byte budget and never reallocates:
// the hot path (absorb / estimate) is allocation-free, and a tier is
// owned by exactly one producer thread per shard — lock-free by
// construction, merged at report time (flows map to exactly one shard,
// so the merge is exact concatenation).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/five_tuple.h"
#include "util/bytes.h"

namespace zpm::sketch {

/// The per-flow aggregate the tier carries for a flow: what promotion
/// hands to the exact tracker and demotion hands back.
struct FlowStats {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  bool operator==(const FlowStats&) const = default;
};

/// Count-min sketch with conservative update over 64-bit canonical flow
/// hashes. Each cell tracks packets and bytes; the two counters are
/// updated independently (each is a valid conservative-update CM in its
/// own right), so both estimates are upper bounds that never undercount.
class CountMinSketch {
 public:
  static constexpr std::size_t kRows = 4;

  /// Sizes the widest power-of-two row layout that fits `budget_bytes`
  /// (minimum 64 cells per row). Rows are contiguous and every row
  /// starts on a 64-byte boundary.
  explicit CountMinSketch(std::size_t budget_bytes);

  /// Conservative update: only the minimal cells advance, so point
  /// queries tighten toward true counts under heavy collision load.
  void add(std::uint64_t hash, std::uint32_t packet_inc, std::uint32_t byte_inc);

  /// Point query: min over rows; an upper bound on the true counts.
  [[nodiscard]] FlowStats estimate(std::uint64_t hash) const;

  [[nodiscard]] std::size_t width() const { return mask_ + 1; }
  [[nodiscard]] std::size_t memory_bytes() const {
    return cells_.capacity() * sizeof(Cell);
  }

  /// Appends the cell array (width header + raw counters) to `w`
  /// (snapshot persistence).
  void serialize(util::ByteWriter& w) const;
  /// Restores the cells from `r`. Fails (returns false, sketch
  /// unchanged semantics not guaranteed — discard it) when the stored
  /// width does not match this sketch's geometry or `r` underflows.
  bool deserialize(util::ByteReader& r);

 private:
  struct Cell {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  [[nodiscard]] const Cell& cell(std::size_t row, std::uint64_t hash) const {
    // Kirsch–Mitzenmacher: two 32-bit halves of the canonical hash give
    // kRows pairwise-distinct probe sequences from a single hash call.
    const std::uint64_t h1 = hash & 0xffffffffu;
    const std::uint64_t h2 = (hash >> 32) | 1u;  // odd, never degenerate
    return base_[row * width() + ((h1 + row * h2) & mask_)];
  }
  [[nodiscard]] Cell& cell(std::size_t row, std::uint64_t hash) {
    return const_cast<Cell&>(std::as_const(*this).cell(row, hash));
  }

  std::uint64_t mask_ = 0;
  std::vector<Cell> cells_;  // over-allocated so base_ is 64B-aligned
  Cell* base_ = nullptr;
};

/// SpaceSaving-style heavy-hitter table: tracks the top-`capacity`
/// flows by byte volume with exact keys. When a new flow arrives at a
/// full table the minimum entry is evicted and the newcomer inherits
/// its count as the classic overestimate (recorded in `error_bytes`).
/// Fixed capacity, free-list entry storage, intrusive min-heap — no
/// allocation after construction.
class HeavyTable {
 public:
  struct Entry {
    net::PackedFlowKey key;
    std::uint64_t bytes = 0;        ///< count (includes inherited error)
    std::uint64_t packets = 0;      ///< count (inherits on takeover, like bytes)
    std::uint64_t error_bytes = 0;  ///< inherited overestimate bound
    std::uint32_t heap_pos = 0;
    std::uint32_t next_free = 0;
  };

  explicit HeavyTable(std::size_t capacity);

  /// Adds one observation. May evict the minimum entry (returns true
  /// when it does — the caller health-accounts evictions).
  bool offer(const net::PackedFlowKey& key, std::uint64_t hash,
             std::uint64_t packet_inc, std::uint64_t byte_inc);

  /// The tracked entry for `key`, or nullptr when untracked.
  [[nodiscard]] const Entry* find(const net::PackedFlowKey& key,
                                  std::uint64_t hash) const;

  /// Removes `key` (promotion to exact tracking). Returns true when the
  /// key was tracked.
  bool erase(const net::PackedFlowKey& key, std::uint64_t hash);

  /// Tracked entries, largest byte count first.
  [[nodiscard]] std::vector<Entry> top() const;

  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] std::size_t capacity() const { return entries_.size(); }

  /// Appends capacity + tracked entries (in deterministic top() order,
  /// exact counts including error_bytes) to `w`.
  void serialize(util::ByteWriter& w) const;
  /// Restores from `r` into an exact copy of the serialized table
  /// (entries, counts, overestimate bounds). Fails on capacity
  /// mismatch, duplicate keys, overflow, or reader underflow; the
  /// table is reset to empty first, so a failed restore leaves it
  /// empty, never half-loaded.
  bool deserialize(util::ByteReader& r);
  [[nodiscard]] std::size_t memory_bytes() const {
    return entries_.capacity() * sizeof(Entry) +
           index_.capacity() * sizeof(std::uint32_t) +
           heap_.capacity() * sizeof(std::uint32_t);
  }

 private:
  [[nodiscard]] std::uint32_t* index_slot(const net::PackedFlowKey& key,
                                          std::uint64_t hash);
  void index_erase(const net::PackedFlowKey& key, std::uint64_t hash);
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);

  void reset();  // empty the table, re-thread the free list
  bool restore_entry(const Entry& e, std::uint64_t hash);

  std::vector<Entry> entries_;        // fixed storage, free-list linked
  std::vector<std::uint32_t> index_;  // open addressing: entry idx + 1, 0 empty
  std::vector<std::uint32_t> heap_;   // min-heap over entry bytes
  std::uint64_t index_mask_ = 0;
  std::uint32_t free_head_ = 0;       // entry idx + 1, 0 = none
};

/// Cumulative tier counters (reported by `--sketch-stats`; never part
/// of the standard report, which must stay bit-identical tier on/off).
struct TierStats {
  std::uint64_t absorbed_packets = 0;  ///< rejected packets summarized
  std::uint64_t absorbed_bytes = 0;
  std::uint64_t promotions = 0;   ///< flows moved to exact tracking
  std::uint64_t demotions = 0;    ///< flows handed back by the exact tier
  std::uint64_t evictions = 0;    ///< SpaceSaving minimum-entry evictions

  bool operator==(const TierStats&) const = default;

  void merge(const TierStats& other) {
    absorbed_packets += other.absorbed_packets;
    absorbed_bytes += other.absorbed_bytes;
    promotions += other.promotions;
    demotions += other.demotions;
    evictions += other.evictions;
  }
};

/// One ranked heavy flow in a tier (or merged cross-shard) report.
struct HeavyHitter {
  net::FiveTuple flow;
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
  std::uint64_t error_bytes = 0;

  bool operator==(const HeavyHitter&) const = default;
};

/// See file comment. One instance per pipeline shard; single-threaded.
class FlowTier {
 public:
  /// Splits `budget_bytes` between the heavy-hitter table (~1/4, at
  /// least 16 entries) and the count-min cells (the rest); the total
  /// allocated footprint never exceeds the budget by more than small
  /// fixed overhead (asserted by bench_sketch against 1.25x).
  explicit FlowTier(std::size_t budget_bytes);

  /// Summarizes one rejected packet. Allocation-free.
  void absorb(const net::PackedFlowKey& key, std::uint64_t hash,
              std::uint32_t wire_bytes);

  /// The flow is being admitted to exact tracking: returns the carried
  /// aggregate (heavy-table counts when tracked, else the CM point
  /// estimate — an upper bound) and drops the flow from the heavy
  /// table. Flows the tier never saw return zeros.
  FlowStats promote(const net::PackedFlowKey& key, std::uint64_t hash);

  /// The exact tier let the flow go; its accumulated aggregate folds
  /// back into the sketch so tier reports stay whole-trace.
  void demote(const net::PackedFlowKey& key, std::uint64_t hash,
              const FlowStats& carried);

  /// CM point estimate (upper bound), heavy-table exact when tracked.
  [[nodiscard]] FlowStats estimate(const net::PackedFlowKey& key,
                                   std::uint64_t hash) const;

  /// Folds an externally-accumulated flow aggregate into the tier —
  /// how the daemon carries a finished epoch's tier report into its
  /// daemon-lifetime background summary. Like demote(), but the counts
  /// were already stats-accounted in their epoch, so only the
  /// structures (and eviction accounting) advance here; pair with
  /// fold_stats() for the counters.
  void fold(const net::PackedFlowKey& key, std::uint64_t hash,
            const FlowStats& agg);
  /// Merges externally-accumulated tier counters (epoch report stats).
  void fold_stats(const TierStats& s) { stats_.merge(s); }

  /// Appends the full tier (budget, stats, CM cells, heavy entries) to
  /// `w` (snapshot persistence). Deterministic: equal tiers serialize
  /// to equal bytes.
  void serialize(util::ByteWriter& w) const;
  /// Restores from `r`. Fails when the stored byte budget differs from
  /// this tier's (geometry must match exactly) or the payload is
  /// malformed; on failure the caller should discard the tier and
  /// start fresh.
  bool deserialize(util::ByteReader& r);

  [[nodiscard]] const TierStats& stats() const { return stats_; }
  /// Top tracked flows, largest byte volume first, at most `limit`.
  [[nodiscard]] std::vector<HeavyHitter> heavy_hitters(std::size_t limit) const;
  [[nodiscard]] std::size_t tracked_flows() const { return heavy_.size(); }
  /// Actual allocated footprint (cells + entries + index + heap).
  [[nodiscard]] std::size_t memory_bytes() const {
    return cm_.memory_bytes() + heavy_.memory_bytes();
  }
  [[nodiscard]] std::size_t budget_bytes() const { return budget_; }

 private:
  std::size_t budget_;
  // Declaration order is initialization order: the CM sketch is sized
  // from whatever budget the heavy table leaves over.
  HeavyTable heavy_;
  CountMinSketch cm_;
  TierStats stats_;
};

/// Report-time merge of per-shard tiers: stats sum; heavy hitters are
/// exact concatenation (a flow lives in exactly one shard's tier, by
/// the canonical-hash routing) re-ranked by bytes, at most `limit`.
struct TierReport {
  TierStats stats;
  std::vector<HeavyHitter> heavy_hitters;
};
TierReport merge_tiers(const std::vector<const FlowTier*>& tiers,
                       std::size_t limit);

}  // namespace zpm::sketch
