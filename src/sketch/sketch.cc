#include "sketch/sketch.h"

#include <algorithm>
#include <cstdint>

namespace zpm::sketch {

namespace {

constexpr std::size_t kCacheLine = 64;

/// Largest power of two <= n (n >= 1).
std::size_t floor_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// CountMinSketch

CountMinSketch::CountMinSketch(std::size_t budget_bytes) {
  const std::size_t min_cells = kRows * 64;
  std::size_t cells = budget_bytes / sizeof(Cell);
  if (cells < min_cells) cells = min_cells;
  const std::size_t width = floor_pow2(cells / kRows);
  mask_ = width - 1;
  // Over-allocate one cache line so rows can start 64B-aligned; width
  // is a multiple of 4 cells (64 bytes), so row starts stay aligned.
  cells_.resize(kRows * width + kCacheLine / sizeof(Cell));
  auto addr = reinterpret_cast<std::uintptr_t>(cells_.data());
  const std::uintptr_t aligned = (addr + kCacheLine - 1) & ~std::uintptr_t{kCacheLine - 1};
  base_ = cells_.data() + (aligned - addr) / sizeof(Cell);
}

void CountMinSketch::add(std::uint64_t hash, std::uint32_t packet_inc,
                         std::uint32_t byte_inc) {
  // Conservative update, per counter: raise a cell only as far as the
  // new lower bound (current min + increment) requires.
  std::uint64_t min_packets = cell(0, hash).packets;
  std::uint64_t min_bytes = cell(0, hash).bytes;
  for (std::size_t r = 1; r < kRows; ++r) {
    const Cell& c = cell(r, hash);
    min_packets = std::min(min_packets, c.packets);
    min_bytes = std::min(min_bytes, c.bytes);
  }
  const std::uint64_t new_packets = min_packets + packet_inc;
  const std::uint64_t new_bytes = min_bytes + byte_inc;
  for (std::size_t r = 0; r < kRows; ++r) {
    Cell& c = cell(r, hash);
    c.packets = std::max(c.packets, new_packets);
    c.bytes = std::max(c.bytes, new_bytes);
  }
}

void CountMinSketch::serialize(util::ByteWriter& w) const {
  w.u64be(width());
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t i = 0; i < width(); ++i) {
      const Cell& c = base_[r * width() + i];
      w.u64be(c.packets);
      w.u64be(c.bytes);
    }
  }
}

bool CountMinSketch::deserialize(util::ByteReader& r) {
  if (r.u64be() != width()) return false;
  for (std::size_t row = 0; row < kRows; ++row) {
    for (std::size_t i = 0; i < width(); ++i) {
      Cell& c = base_[row * width() + i];
      c.packets = r.u64be();
      c.bytes = r.u64be();
    }
  }
  return r.ok();
}

FlowStats CountMinSketch::estimate(std::uint64_t hash) const {
  FlowStats est{cell(0, hash).packets, cell(0, hash).bytes};
  for (std::size_t r = 1; r < kRows; ++r) {
    const Cell& c = cell(r, hash);
    est.packets = std::min(est.packets, c.packets);
    est.bytes = std::min(est.bytes, c.bytes);
  }
  return est;
}

// ---------------------------------------------------------------------------
// HeavyTable

HeavyTable::HeavyTable(std::size_t capacity) {
  if (capacity < 4) capacity = 4;
  entries_.resize(capacity);
  heap_.reserve(capacity);
  // Index at least 2x capacity keeps open-addressing probes short.
  std::size_t index_size = 8;
  while (index_size < capacity * 2) index_size *= 2;
  index_.assign(index_size, 0);
  index_mask_ = index_size - 1;
  // Thread the free list through the fixed entry storage.
  for (std::size_t i = 0; i < capacity; ++i)
    entries_[i].next_free = static_cast<std::uint32_t>(i + 2 <= capacity ? i + 2 : 0);
  free_head_ = 1;
}

std::uint32_t* HeavyTable::index_slot(const net::PackedFlowKey& key,
                                      std::uint64_t hash) {
  std::size_t idx = hash & index_mask_;
  for (;;) {
    std::uint32_t slot = index_[idx];
    if (slot == 0 || entries_[slot - 1].key == key) return &index_[idx];
    idx = (idx + 1) & index_mask_;
  }
}

void HeavyTable::index_erase(const net::PackedFlowKey& key, std::uint64_t hash) {
  std::size_t idx = hash & index_mask_;
  while (index_[idx] == 0 || !(entries_[index_[idx] - 1].key == key))
    idx = (idx + 1) & index_mask_;
  // Backward-shift deletion, same scheme as FlowDispatchTable::erase.
  std::size_t hole = idx;
  for (std::size_t next = (hole + 1) & index_mask_;; next = (next + 1) & index_mask_) {
    const std::uint32_t slot = index_[next];
    if (slot == 0) break;
    const std::size_t home =
        net::canonical_flow_hash(entries_[slot - 1].key) & index_mask_;
    if (((next - home) & index_mask_) >= ((next - hole) & index_mask_)) {
      index_[hole] = slot;
      hole = next;
    }
  }
  index_[hole] = 0;
}

void HeavyTable::sift_up(std::uint32_t pos) {
  const std::uint32_t entry = heap_[pos];
  const std::uint64_t bytes = entries_[entry].bytes;
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 2;
    if (entries_[heap_[parent]].bytes <= bytes) break;
    heap_[pos] = heap_[parent];
    entries_[heap_[pos]].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = entry;
  entries_[entry].heap_pos = pos;
}

void HeavyTable::sift_down(std::uint32_t pos) {
  const std::uint32_t entry = heap_[pos];
  const std::uint64_t bytes = entries_[entry].bytes;
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    std::uint32_t child = pos * 2 + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        entries_[heap_[child + 1]].bytes < entries_[heap_[child]].bytes)
      ++child;
    if (entries_[heap_[child]].bytes >= bytes) break;
    heap_[pos] = heap_[child];
    entries_[heap_[pos]].heap_pos = pos;
    pos = child;
  }
  heap_[pos] = entry;
  entries_[entry].heap_pos = pos;
}

bool HeavyTable::offer(const net::PackedFlowKey& key, std::uint64_t hash,
                       std::uint64_t packet_inc, std::uint64_t byte_inc) {
  std::uint32_t* slot = index_slot(key, hash);
  if (*slot != 0) {
    Entry& e = entries_[*slot - 1];
    e.bytes += byte_inc;
    e.packets += packet_inc;
    sift_down(e.heap_pos);
    return false;
  }
  if (free_head_ != 0) {
    // Room left: claim a free entry.
    const std::uint32_t idx = free_head_ - 1;
    Entry& e = entries_[idx];
    free_head_ = e.next_free;
    e.key = key;
    e.bytes = byte_inc;
    e.packets = packet_inc;
    e.error_bytes = 0;
    *slot = idx + 1;
    heap_.push_back(idx);
    sift_up(static_cast<std::uint32_t>(heap_.size() - 1));
    return false;
  }
  // SpaceSaving replacement: the newcomer takes over the minimum entry,
  // inheriting its count as the overestimate bound.
  const std::uint32_t idx = heap_[0];
  Entry& e = entries_[idx];
  index_erase(e.key, net::canonical_flow_hash(e.key));
  // The index slot for `key` may have shifted during the erase.
  *index_slot(key, hash) = idx + 1;
  e.key = key;
  e.error_bytes = e.bytes;
  e.bytes += byte_inc;
  // Packets inherit too (classic SpaceSaving): both counters must stay
  // upper bounds or FlowTier::estimate could undercount a flow whose
  // entry changed hands (caught by fuzz_sketch).
  e.packets += packet_inc;
  sift_down(0);
  return true;
}

const HeavyTable::Entry* HeavyTable::find(const net::PackedFlowKey& key,
                                          std::uint64_t hash) const {
  std::size_t idx = hash & index_mask_;
  for (;;) {
    const std::uint32_t slot = index_[idx];
    if (slot == 0) return nullptr;
    if (entries_[slot - 1].key == key) return &entries_[slot - 1];
    idx = (idx + 1) & index_mask_;
  }
}

bool HeavyTable::erase(const net::PackedFlowKey& key, std::uint64_t hash) {
  const Entry* found = find(key, hash);
  if (found == nullptr) return false;
  const std::uint32_t idx =
      static_cast<std::uint32_t>(found - entries_.data());
  index_erase(key, hash);
  // Remove from the heap: move the last element into the hole.
  const std::uint32_t pos = entries_[idx].heap_pos;
  const std::uint32_t last = heap_.back();
  heap_.pop_back();
  if (pos < heap_.size()) {
    heap_[pos] = last;
    entries_[last].heap_pos = pos;
    sift_down(pos);
    sift_up(entries_[last].heap_pos);
  }
  entries_[idx].next_free = free_head_;
  free_head_ = idx + 1;
  return true;
}

void HeavyTable::serialize(util::ByteWriter& w) const {
  w.u64be(capacity());
  w.u64be(size());
  // top() order is a deterministic total order, so equal tables
  // serialize to equal bytes regardless of internal heap layout.
  for (const Entry& e : top()) {
    w.u64be(e.key.k1);
    w.u64be(e.key.k2);
    w.u64be(e.bytes);
    w.u64be(e.packets);
    w.u64be(e.error_bytes);
  }
}

void HeavyTable::reset() {
  std::fill(index_.begin(), index_.end(), 0u);
  heap_.clear();
  const std::size_t cap = entries_.size();
  for (std::size_t i = 0; i < cap; ++i)
    entries_[i].next_free = static_cast<std::uint32_t>(i + 2 <= cap ? i + 2 : 0);
  free_head_ = 1;
}

bool HeavyTable::restore_entry(const Entry& e, std::uint64_t hash) {
  std::uint32_t* slot = index_slot(e.key, hash);
  if (*slot != 0) return false;  // duplicate key in the stored stream
  if (free_head_ == 0) return false;
  const std::uint32_t idx = free_head_ - 1;
  Entry& dst = entries_[idx];
  free_head_ = dst.next_free;
  dst.key = e.key;
  dst.bytes = e.bytes;
  dst.packets = e.packets;
  dst.error_bytes = e.error_bytes;
  *slot = idx + 1;
  heap_.push_back(idx);
  sift_up(static_cast<std::uint32_t>(heap_.size() - 1));
  return true;
}

bool HeavyTable::deserialize(util::ByteReader& r) {
  if (r.u64be() != capacity()) return false;
  const std::uint64_t count = r.u64be();
  if (!r.ok() || count > capacity()) return false;
  reset();
  for (std::uint64_t i = 0; i < count; ++i) {
    Entry e;
    e.key.k1 = r.u64be();
    e.key.k2 = r.u64be();
    e.bytes = r.u64be();
    e.packets = r.u64be();
    e.error_bytes = r.u64be();
    if (!r.ok()) return false;
    if (!restore_entry(e, net::canonical_flow_hash(e.key))) return false;
  }
  return true;
}

std::vector<HeavyTable::Entry> HeavyTable::top() const {
  std::vector<Entry> out;
  out.reserve(heap_.size());
  for (std::uint32_t idx : heap_) out.push_back(entries_[idx]);
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.bytes != b.bytes) return a.bytes > b.bytes;
    // Deterministic total order for equal counts.
    if (a.key.k1 != b.key.k1) return a.key.k1 < b.key.k1;
    return a.key.k2 < b.key.k2;
  });
  return out;
}

// ---------------------------------------------------------------------------
// FlowTier

FlowTier::FlowTier(std::size_t budget_bytes)
    : budget_(budget_bytes),
      // ~1/4 of the budget buys heavy-hitter entries; each costs its
      // Entry plus its share of the 2x index and the heap slot.
      heavy_(std::max<std::size_t>(
          16, (budget_bytes / 4) /
                  (sizeof(HeavyTable::Entry) + 3 * sizeof(std::uint32_t)))),
      cm_(budget_bytes > heavy_.memory_bytes()
              ? budget_bytes - heavy_.memory_bytes()
              : 0) {}

void FlowTier::absorb(const net::PackedFlowKey& key, std::uint64_t hash,
                      std::uint32_t wire_bytes) {
  ++stats_.absorbed_packets;
  stats_.absorbed_bytes += wire_bytes;
  cm_.add(hash, 1, wire_bytes);
  if (heavy_.offer(key, hash, 1, wire_bytes)) ++stats_.evictions;
}

FlowStats FlowTier::promote(const net::PackedFlowKey& key, std::uint64_t hash) {
  const FlowStats est = estimate(key, hash);
  if (heavy_.erase(key, hash) || est.packets > 0) ++stats_.promotions;
  // Flows the tier never saw estimate to zero and don't count as
  // promotions.
  return est;
}

void FlowTier::demote(const net::PackedFlowKey& key, std::uint64_t hash,
                      const FlowStats& carried) {
  ++stats_.demotions;
  stats_.absorbed_packets += carried.packets;
  stats_.absorbed_bytes += carried.bytes;
  constexpr std::uint64_t kU32Max = 0xffffffffu;
  cm_.add(hash, static_cast<std::uint32_t>(std::min(carried.packets, kU32Max)),
          static_cast<std::uint32_t>(std::min(carried.bytes, kU32Max)));
  if (heavy_.offer(key, hash, carried.packets, carried.bytes))
    ++stats_.evictions;
}

FlowStats FlowTier::estimate(const net::PackedFlowKey& key,
                             std::uint64_t hash) const {
  // Per-counter max of the two structures. The heavy entry alone is
  // not an upper bound: a flow evicted under pressure and later
  // re-tracked restarts its entry from the re-entry increment, with
  // the earlier history surviving only in the CM (caught by
  // fuzz_sketch). The CM alone almost is — except demote() must clamp
  // each add to 32 bits, so a demoted aggregate past 4 Gi lives fully
  // only in the 64-bit heavy entry. The max of the two stays an upper
  // bound in every interleaving.
  FlowStats est = cm_.estimate(hash);
  if (const HeavyTable::Entry* e = heavy_.find(key, hash)) {
    est.packets = std::max(est.packets, e->packets);
    est.bytes = std::max(est.bytes, e->bytes);
  }
  return est;
}

void FlowTier::fold(const net::PackedFlowKey& key, std::uint64_t hash,
                    const FlowStats& agg) {
  constexpr std::uint64_t kU32Max = 0xffffffffu;
  cm_.add(hash, static_cast<std::uint32_t>(std::min(agg.packets, kU32Max)),
          static_cast<std::uint32_t>(std::min(agg.bytes, kU32Max)));
  if (heavy_.offer(key, hash, agg.packets, agg.bytes)) ++stats_.evictions;
}

void FlowTier::serialize(util::ByteWriter& w) const {
  w.u64be(budget_);
  w.u64be(stats_.absorbed_packets);
  w.u64be(stats_.absorbed_bytes);
  w.u64be(stats_.promotions);
  w.u64be(stats_.demotions);
  w.u64be(stats_.evictions);
  cm_.serialize(w);
  heavy_.serialize(w);
}

bool FlowTier::deserialize(util::ByteReader& r) {
  // Geometry is a pure function of the budget; a different stored
  // budget means the cells/entries cannot be placed 1:1.
  if (r.u64be() != budget_) return false;
  stats_.absorbed_packets = r.u64be();
  stats_.absorbed_bytes = r.u64be();
  stats_.promotions = r.u64be();
  stats_.demotions = r.u64be();
  stats_.evictions = r.u64be();
  if (!r.ok()) return false;
  return cm_.deserialize(r) && heavy_.deserialize(r);
}

std::vector<HeavyHitter> FlowTier::heavy_hitters(std::size_t limit) const {
  std::vector<HeavyHitter> out;
  const std::vector<HeavyTable::Entry> ranked = heavy_.top();
  out.reserve(std::min(limit, ranked.size()));
  for (const HeavyTable::Entry& e : ranked) {
    if (out.size() >= limit) break;
    out.push_back(HeavyHitter{e.key.unpack(), e.bytes, e.packets, e.error_bytes});
  }
  return out;
}

TierReport merge_tiers(const std::vector<const FlowTier*>& tiers,
                       std::size_t limit) {
  TierReport report;
  std::vector<HeavyHitter> all;
  for (const FlowTier* tier : tiers) {
    if (tier == nullptr) continue;
    report.stats.merge(tier->stats());
    // Each shard's full table; ranking happens after concatenation.
    std::vector<HeavyHitter> hh = tier->heavy_hitters(tier->tracked_flows());
    all.insert(all.end(), hh.begin(), hh.end());
  }
  std::sort(all.begin(), all.end(), [](const HeavyHitter& a, const HeavyHitter& b) {
    if (a.bytes != b.bytes) return a.bytes > b.bytes;
    return net::PackedFlowKey(a.flow).k1 != net::PackedFlowKey(b.flow).k1
               ? net::PackedFlowKey(a.flow).k1 < net::PackedFlowKey(b.flow).k1
               : net::PackedFlowKey(a.flow).k2 < net::PackedFlowKey(b.flow).k2;
  });
  if (all.size() > limit) all.resize(limit);
  report.heavy_hitters = std::move(all);
  return report;
}

}  // namespace zpm::sketch
