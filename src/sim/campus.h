// Campus-day workload: schedules a full day of Zoom meetings with the
// diurnal pattern the paper observed (hourly spikes as meetings start on
// the hour and half-hour, a lunchtime dip, decline after the work day —
// §6.2 Fig. 14), plus non-Zoom background traffic so the capture filter
// has something to discard (Fig. 17).
//
// This is the stand-in for the paper's 12-hour campus tap: the absolute
// volumes are scaled down (configurable), the mechanisms and formats are
// not.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "sim/corruptor.h"
#include "sim/meeting.h"
#include "util/rng.h"

namespace zpm::sim {

/// Campus-day configuration.
struct CampusConfig {
  std::uint64_t seed = 2022;
  /// Trace start, seconds since local midnight (paper trace ran ~09:00-21:00).
  util::Timestamp day_start = util::Timestamp::from_seconds(9 * 3600);
  util::Duration duration = util::Duration::seconds(12 * 3600);
  /// Campus address space the monitor covers.
  net::Ipv4Subnet campus_subnet{net::Ipv4Addr(10, 8, 0, 0), 16};
  /// Expected meetings starting per *peak* hour (scale knob; the paper's
  /// campus is far larger).
  double meetings_per_peak_hour = 14.0;
  /// Background (non-Zoom) packets per Zoom packet, roughly (Fig. 17
  /// shows ~14x on the real campus; default lower to keep runtimes sane).
  double background_ratio = 3.0;
  /// Fraction of two-party meetings that switch to P2P.
  double p2p_probability = 0.45;
  bool collect_qos = false;
  /// Optional fault-injection pass over the merged packet stream (tap
  /// truncation, bit flips, drops/dups, capture cuts, look-alike
  /// traffic). nullopt = clean trace, byte-identical to pre-corruptor
  /// behaviour. Capture-cut windows default to the campus day extent.
  std::optional<CorruptorConfig> corruption;
};

/// Pull-based generator merging all meetings + background traffic into
/// one monitor-ordered packet stream.
class CampusSimulation {
 public:
  explicit CampusSimulation(CampusConfig config);
  ~CampusSimulation();
  CampusSimulation(CampusSimulation&&) noexcept;
  CampusSimulation& operator=(CampusSimulation&&) noexcept;

  /// Next monitor packet in timestamp order; nullopt at end of day.
  std::optional<net::RawPacket> next_packet();

  /// True if this packet index was produced by the background generator
  /// (set for the most recently returned packet).
  [[nodiscard]] bool last_was_background() const;

  [[nodiscard]] const CampusConfig& config() const;
  /// Scheduled meeting configurations (inspection / tests).
  [[nodiscard]] const std::vector<MeetingConfig>& meeting_configs() const;
  /// Fault-injection tallies when config.corruption is set, else nullptr.
  /// Note last_was_background() describes the clean stream and is not
  /// meaningful for corrupted output (duplicates, injected packets).
  [[nodiscard]] const CorruptionStats* corruption_stats() const;

  struct Summary {
    std::size_t meetings = 0;
    std::size_t participants = 0;
    std::size_t campus_participants = 0;
    std::uint64_t zoom_packets = 0;
    std::uint64_t background_packets = 0;
  };
  [[nodiscard]] const Summary& summary() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Relative meeting-start intensity for the hour of day (0-23); peaks
/// during work hours, dips at lunch, near zero at night.
double diurnal_weight(int hour_of_day);

}  // namespace zpm::sim
