// Event-driven simulation of one Zoom meeting as seen by a campus
// border monitor.
//
// Reproduces the wire behaviour the paper reverse-engineered: per-media
// UDP flows to an MMR on port 8801 wrapped in SFU + media encapsulations;
// SFU fan-out that copies RTP headers verbatim; STUN pre-flight on port
// 3478 followed by a P2P flow (fresh ephemeral ports, no SFU encap) for
// two-party meetings, reverting to the server when a third participant
// joins; RTCP sender reports every second; FEC sub-streams on PT 110;
// loss-triggered retransmissions (same RTP seq, ≤2 attempts, ~100 ms
// timeout); undecodable control packets; and a TCP control connection
// per participant for the §5.3 TCP-RTT method.
//
// The meeting also records ground-truth QoS samples at each receiving
// client — the stand-in for the Zoom SDK statistics used to validate the
// estimators (Fig. 10), including Zoom's reporting quirks (1 Hz refresh,
// 5 s latency updates, implausibly smoothed jitter).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "net/packet.h"
#include "sim/corruptor.h"
#include "sim/media.h"
#include "sim/network.h"
#include "util/rng.h"
#include "zoom/constants.h"

namespace zpm::sim {

/// Ground-truth per-second QoS sample at a receiving client (the
/// simulated counterpart of the Zoom SDK statistics feed).
struct QosSample {
  util::Timestamp t;
  int receiver = 0;                 // participant index
  zoom::MediaKind kind = zoom::MediaKind::Video;
  double frame_rate = 0.0;          // delivered fps as the client reports it
  double latency_ms = 0.0;          // client-reported latency (5 s refresh)
  double jitter_ms = 0.0;           // client-reported jitter (heavily smoothed)
};

/// One meeting participant.
struct ParticipantConfig {
  net::Ipv4Addr ip;
  bool on_campus = true;
  bool send_video = true;
  bool send_audio = true;
  bool send_screen_share = false;
  bool mobile = false;  // audio PT 113
  /// Joins this long after the meeting starts (0 = founding member).
  util::Duration join_after = util::Duration::micros(0);
  /// Leaves this long after joining (nullopt = stays to the end).
  std::optional<util::Duration> leave_after;
  /// Client <-> campus-border (on-campus) or client <-> SFU-side (off-
  /// campus) leg.
  PathModel::Params access_path{2.0, 0.4, 0.002, 8.0, 0.0005};
  /// Border <-> SFU leg (where the interesting congestion lives).
  PathModel::Params wan_path{14.0, 1.2, 0.006, 32.0, 0.0015};
  /// Congestion episodes applied to this participant's WAN leg.
  std::vector<CongestionEpisode> congestion;
  VideoSource::Params video;
  AudioSource::Params audio;
  ScreenShareSource::Params screen;
};

/// Whole-meeting configuration.
struct MeetingConfig {
  std::uint64_t seed = 1;
  util::Timestamp start = util::Timestamp::from_seconds(0);
  util::Duration duration = util::Duration::seconds(300);
  net::Ipv4Addr sfu_ip{170, 114, 0, 10};
  net::Ipv4Addr zone_controller_ip{170, 114, 0, 200};
  std::vector<ParticipantConfig> participants;
  /// Two-party meetings switch to P2P this long after start (nullopt =
  /// never switch).
  std::optional<util::Duration> p2p_switch_after;
  /// A third participant joining reverts P2P to the server (§3). Set via
  /// a participant with join_after > p2p_switch_after.
  /// Emit undecodable control packets (fraction of media packet rate).
  double unknown_packet_fraction = 0.10;
  /// Fraction of SFU-encapsulated packets with a non-0x05 SFU type.
  double odd_sfu_type_fraction = 0.016;
  /// Emit a TCP control connection per campus participant.
  bool with_tcp_control = true;
  /// Collect ground-truth QoS samples (disable for campus-scale runs).
  bool collect_qos = false;
  /// SSRC base; small and non-random on purpose (§4.3.1 challenge 2).
  std::uint32_t ssrc_base = 0;
  /// Hypothetical SFU that rewrites RTP sequence numbers and timestamps
  /// per receiver (Zoom's real SFU does NOT — §4.3 step 1 depends on
  /// that; this switch exists for the ablation that shows how the
  /// paper's duplicate-stream matching and RTP-RTT method would break).
  bool sfu_rewrites_rtp = false;
  /// Optional fault-injection pass over the emitted stream (see
  /// sim/corruptor.h). nullopt = clean trace, byte-identical to
  /// pre-corruptor behaviour. Capture-cut windows default to the
  /// meeting extent.
  std::optional<CorruptorConfig> corruption;
};

/// See file comment. Pull-based: call next_packet() until nullopt.
class MeetingSim {
 public:
  explicit MeetingSim(MeetingConfig config);
  ~MeetingSim();
  MeetingSim(MeetingSim&&) noexcept;
  MeetingSim& operator=(MeetingSim&&) noexcept;

  /// Next monitor-visible packet in timestamp order; nullopt when the
  /// meeting has ended and all packets are drained.
  std::optional<net::RawPacket> next_packet();

  /// Ground-truth QoS samples (populated when config.collect_qos).
  [[nodiscard]] const std::vector<QosSample>& qos_samples() const;
  [[nodiscard]] const MeetingConfig& config() const;

  /// True RTT (client access + WAN legs, both ways, no jitter) between
  /// participant and SFU — handy for test assertions.
  [[nodiscard]] double nominal_rtt_ms(int participant) const;

  /// Statistics for tests: packets the monitor saw / packets dropped on
  /// legs / retransmissions sent.
  struct Stats {
    std::uint64_t monitor_packets = 0;
    std::uint64_t media_packets_sent = 0;
    std::uint64_t drops = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t stun_packets = 0;
    std::uint64_t p2p_media_packets = 0;
  };
  [[nodiscard]] const Stats& stats() const;

  /// Fault-injection tallies when config.corruption is set, else nullptr.
  [[nodiscard]] const CorruptionStats* corruption_stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: drains a meeting into a vector (small meetings/tests).
std::vector<net::RawPacket> run_meeting(MeetingConfig config,
                                        std::vector<QosSample>* qos = nullptr);

}  // namespace zpm::sim
