#include "sim/corruptor.h"

#include <algorithm>

#include "net/build.h"
#include "zoom/constants.h"

namespace zpm::sim {

namespace {

// Headers end after eth (14) + minimal IPv4 (20) + UDP (8).
constexpr std::size_t kHeaderBytes = 42;

}  // namespace

CorruptorConfig CorruptorConfig::hostile(std::uint64_t seed) {
  CorruptorConfig c;
  c.seed = seed;
  c.truncate_prob = 0.02;
  c.snaplen = 96;
  c.header_flip_prob = 0.01;
  c.payload_flip_prob = 0.02;
  c.drop_prob = 0.01;
  c.duplicate_prob = 0.005;
  c.ts_regression_prob = 0.002;
  c.lookalike_prob = 0.01;
  c.capture_cuts = 2;
  c.cut_duration = util::Duration::seconds(3);
  return c;
}

TraceCorruptor::TraceCorruptor(const CorruptorConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.capture_cuts > 0 && config_.trace_duration > util::Duration{}) {
    // Place the tap-restart windows uniformly over the trace extent.
    // Drawn up front so cut placement does not interact with the
    // per-record decision stream.
    std::int64_t span = config_.trace_duration.us();
    for (std::size_t i = 0; i < config_.capture_cuts; ++i) {
      auto offset = util::Duration::micros(rng_.uniform_int(0, span));
      util::Timestamp from = config_.trace_start + offset;
      cuts_.emplace_back(from, from + config_.cut_duration);
    }
    std::sort(cuts_.begin(), cuts_.end());
  }
}

net::RawPacket TraceCorruptor::make_lookalike(util::Timestamp ts) {
  // A campus host talking UDP on a Zoom port. Half the injections hit
  // unrelated external addresses (squatters the filter must ignore);
  // half hit Zoom server space with garbage payloads (traffic that
  // *will* reach the dissector and must be survived).
  net::Ipv4Addr campus(10, 8, static_cast<std::uint8_t>(rng_.uniform_int(0, 255)),
                       static_cast<std::uint8_t>(rng_.uniform_int(1, 254)));
  bool hit_zoom_space = rng_.chance(0.5);
  net::Ipv4Addr remote =
      hit_zoom_space
          ? net::Ipv4Addr(170, 114, static_cast<std::uint8_t>(rng_.uniform_int(0, 255)),
                          static_cast<std::uint8_t>(rng_.uniform_int(1, 254)))
          : net::Ipv4Addr(23, static_cast<std::uint8_t>(rng_.uniform_int(0, 255)),
                          static_cast<std::uint8_t>(rng_.uniform_int(0, 255)),
                          static_cast<std::uint8_t>(rng_.uniform_int(1, 254)));
  std::uint16_t zoom_port = rng_.chance(0.5) ? zoom::kServerMediaPort
                                             : zoom::kStunServerPort;
  auto sport = static_cast<std::uint16_t>(rng_.uniform_int(1024, 65000));
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(rng_.uniform_int(32, 1200)));
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng_.next_u32() >> 24);
  bool outbound = rng_.chance(0.5);
  return outbound ? net::build_udp(ts, campus, sport, remote, zoom_port, payload)
                  : net::build_udp(ts, remote, zoom_port, campus, sport, payload);
}

void TraceCorruptor::process(net::RawPacket pkt, std::vector<net::RawPacket>& out) {
  ++stats_.offered;

  for (const auto& [from, to] : cuts_) {
    if (pkt.ts >= from && pkt.ts < to) {
      ++stats_.cut_dropped;
      return;
    }
  }
  if (config_.drop_prob > 0.0 && rng_.chance(config_.drop_prob)) {
    ++stats_.dropped;
    return;
  }

  if (config_.ts_regression_prob > 0.0 && rng_.chance(config_.ts_regression_prob)) {
    std::int64_t max_us = std::max<std::int64_t>(config_.ts_regression_max.us(), 1);
    pkt.ts = pkt.ts - util::Duration::micros(rng_.uniform_int(1, max_us));
    ++stats_.ts_regressions;
  }
  if (config_.truncate_prob > 0.0 && pkt.data.size() > config_.snaplen &&
      rng_.chance(config_.truncate_prob)) {
    if (pkt.orig_len < pkt.data.size())
      pkt.orig_len = static_cast<std::uint32_t>(pkt.data.size());
    pkt.data.resize(config_.snaplen);
    ++stats_.truncated;
  }
  if (config_.header_flip_prob > 0.0 && !pkt.data.empty() &&
      rng_.chance(config_.header_flip_prob)) {
    std::size_t limit = std::min(kHeaderBytes, pkt.data.size());
    auto idx = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(limit) - 1));
    pkt.data[idx] = static_cast<std::uint8_t>(rng_.next_u32() >> 24);
    ++stats_.header_flips;
  }
  if (config_.payload_flip_prob > 0.0 && pkt.data.size() > kHeaderBytes &&
      rng_.chance(config_.payload_flip_prob)) {
    auto idx = static_cast<std::size_t>(
        rng_.uniform_int(static_cast<std::int64_t>(kHeaderBytes),
                         static_cast<std::int64_t>(pkt.data.size()) - 1));
    auto bit = static_cast<std::uint8_t>(1u << rng_.uniform_int(0, 7));
    pkt.data[idx] ^= bit;
    ++stats_.payload_flips;
  }

  bool duplicate =
      config_.duplicate_prob > 0.0 && rng_.chance(config_.duplicate_prob);
  bool inject = config_.lookalike_prob > 0.0 && rng_.chance(config_.lookalike_prob);

  util::Timestamp ts = pkt.ts;
  if (duplicate) {
    net::RawPacket copy = pkt;
    out.push_back(std::move(copy));
    ++stats_.duplicated;
    ++stats_.emitted;
  }
  out.push_back(std::move(pkt));
  ++stats_.emitted;
  if (inject) {
    out.push_back(make_lookalike(ts));
    ++stats_.lookalikes_injected;
    ++stats_.emitted;
  }
}

}  // namespace zpm::sim
