#include "sim/campus.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "net/build.h"
#include "zoom/server_db.h"

namespace zpm::sim {

namespace {
using util::Duration;
using util::Timestamp;
}  // namespace

double diurnal_weight(int hour_of_day) {
  // Work-hours curve with a lunch dip and evening tail (Fig. 14).
  static constexpr double kWeights[24] = {
      0.02, 0.01, 0.01, 0.01, 0.02, 0.05, 0.12, 0.35, 0.75, 0.95, 1.00, 0.90,
      0.55, 0.85, 1.00, 0.95, 0.80, 0.60, 0.40, 0.28, 0.18, 0.12, 0.08, 0.04};
  return kWeights[((hour_of_day % 24) + 24) % 24];
}

// ---------------------------------------------------------------------------

struct CampusSimulation::Impl {
  CampusConfig cfg;
  util::Rng rng;
  std::vector<MeetingConfig> meeting_cfgs;
  std::vector<std::unique_ptr<MeetingSim>> meetings;
  Summary summary;

  // Background traffic state.
  Timestamp bg_next;
  double zoom_pps_estimate = 0.0;

  // Merge heap.
  struct Head {
    Timestamp t;
    std::size_t src;  // meeting index, or SIZE_MAX for background
    bool operator>(const Head& o) const {
      return t != o.t ? t > o.t : src > o.src;
    }
  };
  std::priority_queue<Head, std::vector<Head>, std::greater<>> heap;
  std::vector<std::optional<net::RawPacket>> staged;  // per meeting
  std::optional<net::RawPacket> staged_bg;
  bool last_was_bg = false;
  bool started = false;

  std::uint32_t next_campus_host = 100;
  std::uint32_t next_external_host = 0;

  std::optional<CorruptionQueue> corruption;

  explicit Impl(CampusConfig config) : cfg(std::move(config)), rng(cfg.seed) {
    schedule_meetings();
    bg_next = cfg.day_start;
    if (cfg.corruption) {
      CorruptorConfig cc = *cfg.corruption;
      if (cc.capture_cuts > 0 && cc.trace_duration <= Duration{}) {
        cc.trace_start = cfg.day_start;
        cc.trace_duration = cfg.duration;
      }
      corruption.emplace(cc);
    }
  }

  net::Ipv4Addr alloc_campus_ip() {
    std::uint32_t host = next_campus_host++;
    return net::Ipv4Addr(cfg.campus_subnet.base().value() + 2 + host);
  }

  net::Ipv4Addr alloc_external_ip() {
    // Residential-ISP-looking space, guaranteed outside the Zoom list.
    std::uint32_t host = next_external_host++;
    return net::Ipv4Addr(0x62000000u /*98.0.0.0*/ + 0x100 + host * 7 + (host % 5));
  }

  net::Ipv4Addr pick_sfu(util::Rng& r) {
    // MMRs live in the census sites' /20s inside 170.114/16 (Appendix B);
    // pick a site biased toward the nearby ones.
    const auto& sites = zoom::census_sites();
    std::size_t idx = r.chance(0.7) ? static_cast<std::size_t>(r.uniform_int(0, 2))
                                    : static_cast<std::size_t>(r.uniform_int(
                                          0, static_cast<std::int64_t>(sites.size()) - 1));
    const auto& site = sites[idx];
    return net::Ipv4Addr(site.subnet.base().value() + 3000 +
                         static_cast<std::uint32_t>(r.uniform_int(0, 900)));
  }

  void schedule_meetings() {
    double total_hours = cfg.duration.sec() / 3600.0;
    int hours = static_cast<int>(std::ceil(total_hours));
    std::uint64_t meeting_seed = cfg.seed * 977;
    for (int h = 0; h < hours; ++h) {
      // The last hour may be partial; scale the arrival rate with the
      // covered fraction so sub-hour runs still get meetings.
      double fraction = std::min(1.0, total_hours - h);
      Timestamp hour_start = cfg.day_start + Duration::seconds(3600.0 * h);
      int hour_of_day = static_cast<int>(hour_start.sec() / 3600.0) % 24;
      double expected =
          cfg.meetings_per_peak_hour * diurnal_weight(hour_of_day) * fraction;
      // Poisson via thinning on a per-hour basis.
      int count = 0;
      double acc = rng.exponential(1.0);
      while (acc < expected) {
        ++count;
        acc += rng.exponential(1.0);
      }
      for (int m = 0; m < count; ++m) {
        // Meetings cluster at :00 (60%), :30 (20%), else anywhere —
        // clamped into the covered part of the hour.
        double window_s = fraction * 3600.0;
        double offset_s;
        double roll = rng.uniform();
        if (roll < 0.6) {
          offset_s = rng.uniform(0.0, 240.0);
        } else if (roll < 0.8) {
          offset_s = 1800.0 + rng.uniform(0.0, 240.0);
        } else {
          offset_s = rng.uniform(0.0, 3600.0);
        }
        if (offset_s >= window_s) offset_s = rng.uniform(0.0, window_s);
        make_meeting(hour_start + Duration::seconds(offset_s), ++meeting_seed);
      }
    }
    staged.resize(meetings.size());
  }

  void make_meeting(Timestamp start, std::uint64_t seed) {
    MeetingConfig mc;
    mc.seed = seed;
    mc.start = start;
    // Durations cluster around 30 and 55 minutes.
    double dur_min = rng.chance(0.55) ? rng.uniform(22, 35) : rng.uniform(45, 62);
    mc.duration = Duration::seconds(dur_min * 60.0);
    Timestamp day_end = cfg.day_start + cfg.duration;
    if (start + mc.duration > day_end) mc.duration = day_end - start;
    if (mc.duration < Duration::seconds(120.0)) return;

    mc.sfu_ip = pick_sfu(rng);
    mc.zone_controller_ip =
        net::Ipv4Addr(zoom::census_sites()[0].subnet.base().value() + 1500 +
                      static_cast<std::uint32_t>(rng.uniform_int(0, 60)));
    mc.collect_qos = cfg.collect_qos;
    mc.ssrc_base = static_cast<std::uint32_t>((seed % 40) * 64);

    // Participants: mostly small meetings.
    int n;
    double roll = rng.uniform();
    if (roll < 0.35) n = 2;
    else if (roll < 0.65) n = 3;
    else if (roll < 0.85) n = static_cast<int>(rng.uniform_int(4, 6));
    else n = static_cast<int>(rng.uniform_int(7, 12));

    // Larger meetings are more often presentations: screen share likely,
    // attendees muted with cameras off (matters for the media mix —
    // §6.2 observes substantial screen-share traffic).
    bool presentation = rng.chance(std::min(0.2 + 0.1 * n, 0.95));
    int screen_holder = presentation ? static_cast<int>(rng.uniform_int(0, n - 1)) : -1;
    for (int i = 0; i < n; ++i) {
      ParticipantConfig pc;
      // First participant always on campus (otherwise invisible).
      pc.on_campus = (i == 0) ? true : rng.chance(0.40);
      pc.ip = pc.on_campus ? alloc_campus_ip() : alloc_external_ip();
      // Muted participants emit no audio stream at all (§4.3.1);
      // presentation attendees mostly mute and disable video.
      pc.send_audio = rng.chance(presentation ? 0.45 : 0.8);
      pc.mobile = rng.chance(0.12);
      pc.send_video = rng.chance(presentation ? 0.45 : 0.85);
      if (!pc.send_audio && !pc.send_video) pc.send_audio = true;
      pc.send_screen_share = (i == screen_holder);
      if (pc.send_screen_share) pc.send_video = rng.chance(0.7);
      if (i > 0 && rng.chance(0.25)) {
        pc.join_after = Duration::seconds(rng.uniform(5.0, 180.0));
      }
      // Mild heterogeneity in paths.
      pc.wan_path.base_delay_ms = rng.uniform(8.0, 35.0);
      pc.wan_path.jitter_ms = rng.uniform(0.6, 3.5);
      pc.wan_path.loss = rng.uniform(0.0005, 0.004);
      pc.access_path.base_delay_ms = rng.uniform(0.8, 4.0);
      // A few unlucky participants suffer a congestion episode.
      if (rng.chance(0.15)) {
        CongestionEpisode ep;
        double at = rng.uniform(0.2, 0.7) * mc.duration.sec();
        ep.start = start + Duration::seconds(at);
        ep.end = ep.start + Duration::seconds(rng.uniform(10.0, 45.0));
        ep.extra_delay_ms = rng.uniform(15.0, 60.0);
        ep.extra_loss = rng.uniform(0.01, 0.05);
        pc.congestion.push_back(ep);
      }
      mc.participants.push_back(std::move(pc));
    }

    if (n == 2 && rng.chance(cfg.p2p_probability)) {
      mc.p2p_switch_after = Duration::seconds(rng.uniform(8.0, 40.0));
    }

    summary.participants += static_cast<std::size_t>(n);
    for (const auto& pc : mc.participants)
      summary.campus_participants += pc.on_campus ? 1 : 0;
    ++summary.meetings;
    meeting_cfgs.push_back(mc);
    meetings.push_back(std::make_unique<MeetingSim>(mc));
  }

  // -- background traffic ----------------------------------------------------

  double background_pps(Timestamp t) const {
    int hour_of_day = static_cast<int>(t.sec() / 3600.0) % 24;
    // Rough per-meeting Zoom rate: ~120 pps visible per campus
    // participant; use the configured ratio against that.
    double active_share = diurnal_weight(hour_of_day);
    double est_zoom_pps =
        std::max(20.0, cfg.meetings_per_peak_hour * 3.0 * 120.0 * active_share * 0.5);
    return est_zoom_pps * cfg.background_ratio;
  }

  net::RawPacket make_background(Timestamp t) {
    // Random campus <-> Internet traffic, never matching Zoom subnets.
    net::Ipv4Addr campus(cfg.campus_subnet.base().value() + 40000 +
                         (rng.next_u32() % 20000));
    net::Ipv4Addr external(0x17000000u /*23.0.0.0*/ + (rng.next_u32() % 0x00ffffff));
    if (zoom::ServerDb::official().contains(external))
      external = net::Ipv4Addr(0x17000001u);
    bool outbound = rng.chance(0.5);
    auto payload_len = static_cast<std::size_t>(rng.uniform_int(0, 1300));
    std::vector<std::uint8_t> payload(payload_len, 0xaa);
    if (rng.chance(0.7)) {
      std::uint16_t sport = static_cast<std::uint16_t>(rng.uniform_int(1024, 65000));
      return outbound
                 ? net::build_tcp(t, campus, sport, external, 443,
                                  rng.next_u32(), rng.next_u32(), net::kTcpAck, payload)
                 : net::build_tcp(t, external, 443, campus, sport, rng.next_u32(),
                                  rng.next_u32(), net::kTcpAck, payload);
    }
    std::uint16_t sport = static_cast<std::uint16_t>(rng.uniform_int(1024, 65000));
    std::uint16_t dport = static_cast<std::uint16_t>(rng.uniform_int(1024, 65000));
    return outbound ? net::build_udp(t, campus, sport, external, dport, payload)
                    : net::build_udp(t, external, dport, campus, sport, payload);
  }

  void stage_background() {
    if (cfg.background_ratio <= 0.0) {
      staged_bg.reset();
      return;
    }
    double pps = background_pps(bg_next);
    bg_next += Duration::seconds(rng.exponential(1.0 / pps));
    if (bg_next > cfg.day_start + cfg.duration) {
      staged_bg.reset();
      return;
    }
    staged_bg = make_background(bg_next);
  }

  // -- merge -----------------------------------------------------------------

  void start() {
    started = true;
    for (std::size_t i = 0; i < meetings.size(); ++i) {
      staged[i] = meetings[i]->next_packet();
      if (staged[i]) heap.push(Head{staged[i]->ts, i});
    }
    stage_background();
    if (staged_bg) heap.push(Head{staged_bg->ts, SIZE_MAX});
  }

  std::optional<net::RawPacket> next_packet() {
    if (!started) start();
    if (heap.empty()) return std::nullopt;
    Head head = heap.top();
    heap.pop();
    net::RawPacket pkt;
    if (head.src == SIZE_MAX) {
      pkt = std::move(*staged_bg);
      last_was_bg = true;
      ++summary.background_packets;
      stage_background();
      if (staged_bg) heap.push(Head{staged_bg->ts, SIZE_MAX});
    } else {
      pkt = std::move(*staged[head.src]);
      last_was_bg = false;
      ++summary.zoom_packets;
      staged[head.src] = meetings[head.src]->next_packet();
      if (staged[head.src]) heap.push(Head{staged[head.src]->ts, head.src});
    }
    return pkt;
  }
};

CampusSimulation::CampusSimulation(CampusConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}
CampusSimulation::~CampusSimulation() = default;
CampusSimulation::CampusSimulation(CampusSimulation&&) noexcept = default;
CampusSimulation& CampusSimulation::operator=(CampusSimulation&&) noexcept = default;

std::optional<net::RawPacket> CampusSimulation::next_packet() {
  if (!impl_->corruption) return impl_->next_packet();
  return impl_->corruption->next([this] { return impl_->next_packet(); });
}

const CorruptionStats* CampusSimulation::corruption_stats() const {
  return impl_->corruption ? &impl_->corruption->corruptor().stats() : nullptr;
}

bool CampusSimulation::last_was_background() const { return impl_->last_was_bg; }

const CampusConfig& CampusSimulation::config() const { return impl_->cfg; }

const std::vector<MeetingConfig>& CampusSimulation::meeting_configs() const {
  return impl_->meeting_cfgs;
}

const CampusSimulation::Summary& CampusSimulation::summary() const {
  return impl_->summary;
}

}  // namespace zpm::sim
