#include "sim/network.h"

#include <algorithm>

namespace zpm::sim {

double CongestionEpisode::intensity(util::Timestamp t) const {
  if (t < start || t > end) return 0.0;
  double len = (end - start).sec();
  if (len <= 0.0) return 0.0;
  double pos = (t - start).sec() / len;  // 0..1 through the episode
  double r = std::clamp(ramp, 0.01, 0.5);
  if (pos < r) return pos / r;
  if (pos > 1.0 - r) return (1.0 - pos) / r;
  return 1.0;
}

util::Duration PathModel::sample_delay(util::Timestamp t) {
  double delay_ms = params_.base_delay_ms;
  delay_ms += rng_.exponential(params_.jitter_ms);
  if (rng_.chance(params_.spike_prob)) delay_ms += rng_.uniform(0.5, 1.0) * params_.spike_ms;
  double c = congestion(t);
  if (c > 0.0) {
    for (const auto& ep : episodes_) {
      double i = ep.intensity(t);
      if (i > 0.0) delay_ms += i * ep.extra_delay_ms * rng_.uniform(0.6, 1.2);
    }
  }
  return util::Duration::micros(static_cast<std::int64_t>(delay_ms * 1000.0));
}

util::Timestamp PathModel::delivery_time(util::Timestamp send, int channel) {
  util::Timestamp exit = send + sample_delay(send);
  auto& frontier = last_exit_us_[channel & 1];
  // FIFO: a packet cannot leave the leg before its predecessor (plus a
  // minimal serialization gap).
  if (exit.us() <= frontier) exit = util::Timestamp::from_micros(frontier + 2);
  frontier = exit.us();
  return exit;
}

bool PathModel::drops(util::Timestamp t) {
  double p = params_.loss;
  for (const auto& ep : episodes_) p += ep.intensity(t) * ep.extra_loss;
  return rng_.chance(p);
}

double PathModel::congestion(util::Timestamp t) const {
  double c = 0.0;
  for (const auto& ep : episodes_) c = std::max(c, ep.intensity(t));
  return c;
}

}  // namespace zpm::sim
