// Network path model: per-leg one-way delay with jitter, random loss,
// and scheduled congestion episodes (the "cross-traffic bursts" of the
// paper's controlled validation experiments, §5/Fig. 10).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/time.h"

namespace zpm::sim {

/// A period of elevated delay/loss on a path (competing download etc.).
struct CongestionEpisode {
  util::Timestamp start;
  util::Timestamp end;
  double extra_delay_ms = 30.0;  // peak added one-way delay
  double extra_loss = 0.02;      // added loss probability
  /// Ramp fraction: the episode ramps up/down over this fraction of its
  /// length at each end (triangular profile when 0.5).
  double ramp = 0.3;

  /// Episode intensity in [0,1] at time t (0 outside the episode).
  [[nodiscard]] double intensity(util::Timestamp t) const;
};

/// One direction of one network leg (e.g. campus border -> SFU).
class PathModel {
 public:
  struct Params {
    double base_delay_ms = 15.0;
    /// Jitter: delay = base + Exp(mean=jitter_ms) + rare spikes.
    double jitter_ms = 1.5;
    double spike_prob = 0.005;
    double spike_ms = 25.0;
    double loss = 0.0015;
  };

  PathModel(Params params, util::Rng rng) : params_(params), rng_(rng) {}

  void add_episode(CongestionEpisode episode) { episodes_.push_back(episode); }
  [[nodiscard]] const std::vector<CongestionEpisode>& episodes() const {
    return episodes_;
  }

  /// Samples the one-way delay for a packet sent at `t`.
  util::Duration sample_delay(util::Timestamp t);

  /// Delivery time for a packet sent at `t`, enforcing FIFO order per
  /// direction (`channel` 0/1): real network paths are queues, and a
  /// later packet cannot overtake an earlier one on the same leg. The
  /// paper's reordering observations come from retransmissions and
  /// multi-path effects, not from per-packet delay dice.
  util::Timestamp delivery_time(util::Timestamp send, int channel);

  /// True if a packet sent at `t` is dropped on this leg.
  bool drops(util::Timestamp t);
  /// Congestion intensity in [0,1] at `t` (max over episodes); the
  /// encoder's rate adaptation reads this as its congestion signal.
  [[nodiscard]] double congestion(util::Timestamp t) const;
  [[nodiscard]] double base_delay_ms() const { return params_.base_delay_ms; }

 private:
  Params params_;
  util::Rng rng_;
  std::vector<CongestionEpisode> episodes_;
  // FIFO frontier per direction (microseconds since epoch).
  std::int64_t last_exit_us_[2] = {0, 0};
};

}  // namespace zpm::sim
