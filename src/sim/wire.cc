#include "sim/wire.h"

#include "proto/h264.h"

namespace zpm::sim {

namespace {

void fill_random(util::ByteWriter& w, std::size_t n, util::Rng& rng) {
  // Eight pseudo-ciphertext bytes per generator call: payload filling is
  // the simulator's hottest loop.
  while (n >= 8) {
    w.u64be(rng.next_u64());
    n -= 8;
  }
  if (n > 0) {
    std::uint64_t v = rng.next_u64();
    for (std::size_t i = 0; i < n; ++i) w.u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

// Zoom's undocumented filler bytes are not random on the wire (they sit
// below the entropy threshold in §4.2 plots); emit small structured
// values so the entropy analysis can tell them apart from ciphertext.
void fill_undocumented(zoom::MediaEncap& encap, util::Rng& rng) {
  for (std::size_t i = 0; i < encap.undocumented.size(); ++i)
    encap.undocumented[i] = static_cast<std::uint8_t>((i * 7 + 1) & 0x1f);
  // One byte varies slightly (observed flag-like field).
  encap.undocumented[0] = static_cast<std::uint8_t>(rng.chance(0.1) ? 0x02 : 0x00);
}

}  // namespace

std::vector<std::uint8_t> build_media_payload(const MediaPacketSpec& spec,
                                              util::Rng& rng) {
  zoom::MediaEncap encap;
  encap.type = static_cast<std::uint8_t>(spec.encap_type);
  encap.sequence = spec.media_encap_seq;
  encap.timestamp = spec.media_encap_ts;
  encap.frame_sequence = spec.frame_sequence;
  encap.packets_in_frame = spec.packets_in_frame;
  fill_undocumented(encap, rng);

  proto::RtpHeader rtp;
  rtp.payload_type = spec.payload_type;
  rtp.marker = spec.marker;
  rtp.sequence = spec.rtp_seq;
  rtp.timestamp = spec.rtp_timestamp;
  rtp.ssrc = spec.ssrc;

  util::ByteWriter w(encap.header_length() + rtp.header_length() + spec.payload_bytes);
  encap.serialize(w);
  rtp.serialize(w);
  if (spec.encap_type == zoom::MediaEncapType::Video && spec.payload_bytes >= 2) {
    // H.264 FU-A indication before the encrypted payload.
    proto::NalHeader ind{false, 2, proto::kNalTypeFuA};
    proto::FuHeader fu{spec.frame_sequence % 30 == 0, spec.marker, 1};
    w.u8(ind.to_byte());
    w.u8(fu.to_byte());
    fill_random(w, spec.payload_bytes - 2, rng);
  } else {
    fill_random(w, spec.payload_bytes, rng);
  }
  return w.take();
}

std::vector<std::uint8_t> build_rtcp_payload(std::uint32_t ssrc,
                                             const proto::SenderReport& sr,
                                             bool include_sdes,
                                             std::uint16_t media_encap_seq,
                                             util::Rng& rng) {
  zoom::MediaEncap encap;
  encap.type = static_cast<std::uint8_t>(include_sdes ? zoom::MediaEncapType::RtcpSrSdes
                                                      : zoom::MediaEncapType::RtcpSr);
  encap.sequence = media_encap_seq;
  encap.timestamp = sr.rtp_timestamp;
  fill_undocumented(encap, rng);

  util::ByteWriter w;
  encap.serialize(w);
  proto::serialize_sender_report(w, sr);
  if (include_sdes) proto::serialize_empty_sdes(w, ssrc);
  return w.take();
}

std::vector<std::uint8_t> wrap_sfu(std::span<const std::uint8_t> inner,
                                   std::uint16_t sfu_seq, bool from_sfu,
                                   std::uint8_t sfu_type) {
  zoom::SfuEncap sfu;
  sfu.type = sfu_type;
  sfu.sequence = sfu_seq;
  sfu.direction = from_sfu ? zoom::kSfuDirFromSfu : zoom::kSfuDirToSfu;
  sfu.undocumented = {0x00, 0x01, 0x00, 0x00};
  util::ByteWriter w(zoom::SfuEncap::kSize + inner.size());
  sfu.serialize(w);
  w.bytes(inner);
  return w.take();
}

std::vector<std::uint8_t> build_unknown_payload(std::uint8_t type_byte,
                                                std::uint16_t counter,
                                                std::size_t total_bytes,
                                                util::Rng& rng) {
  util::ByteWriter w(total_bytes);
  w.u8(type_byte);
  w.u16be(counter);
  if (total_bytes > 3) fill_random(w, total_bytes - 3, rng);
  return w.take();
}

}  // namespace zpm::sim
