#include "sim/background.h"

#include <algorithm>
#include <cmath>

#include "net/build.h"

namespace zpm::sim {

namespace {

/// Cheap per-rank mixer for payload sizing and address spreading;
/// unrelated to net::canonical_flow_hash so flow placement in the
/// sketch is not correlated with generation.
std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

BackgroundTraffic::BackgroundTraffic(BackgroundConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.flows == 0) config_.flows = 1;
  if (config_.packets < config_.flows) config_.packets = config_.flows;
  cum_.resize(config_.flows);
  double total = 0;
  for (std::size_t r = 0; r < config_.flows; ++r) {
    total += std::pow(static_cast<double>(r + 1), -config_.zipf_s);
    cum_[r] = total;
  }
  realized_.resize(config_.flows);
}

net::FiveTuple BackgroundTraffic::flow(std::size_t rank) const {
  // Campus host 10.8.x.y <-> external 23.z peer; the rank bits make
  // tuples pairwise distinct, the mixed bits spread addresses. Ports
  // stay clear of 8801/3478 (and the server subnets are never used), so
  // the capture front end rejects every packet of every flow.
  const std::uint64_t h = mix(rank * 0x9e3779b97f4a7c15ULL + config_.seed);
  const auto src_ip = net::Ipv4Addr(10, 8, static_cast<std::uint8_t>(rank >> 8),
                                    static_cast<std::uint8_t>(rank));
  const auto dst_ip =
      net::Ipv4Addr(23, static_cast<std::uint8_t>(1 + ((h >> 8) & 0x7f)),
                    static_cast<std::uint8_t>(h >> 16),
                    static_cast<std::uint8_t>(h >> 24));
  const auto src_port =
      static_cast<std::uint16_t>(20000 + (rank >> 16) * 16 + ((h >> 32) & 0xf));
  const auto dst_port = static_cast<std::uint16_t>(40000 + (rank & 0x3fff));
  return net::FiveTuple{src_ip, dst_ip, src_port, dst_port, 17};
}

std::size_t BackgroundTraffic::draw_rank() {
  const double u = rng_.uniform() * cum_.back();
  const auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
  return static_cast<std::size_t>(it - cum_.begin());
}

std::size_t BackgroundTraffic::next_batch(std::size_t n,
                                          std::vector<net::RawPacket>& out) {
  std::size_t produced = 0;
  std::vector<std::uint8_t> payload;
  while (produced < n && emitted_ < config_.packets) {
    // Interleave first-sight packets (flow arrivals) with Zipf draws:
    // one packet in four introduces the next unseen flow until the full
    // population is concurrent.
    std::size_t rank;
    if (next_unseen_ < config_.flows &&
        (emitted_ % 4 == 0 ||
         config_.packets - emitted_ <= config_.flows - next_unseen_)) {
      rank = next_unseen_++;
    } else {
      rank = draw_rank();
    }

    // Payload size is a per-flow constant (heavier flows lean larger),
    // so realized byte tallies follow the Zipf law too.
    const std::uint64_t h = mix(rank + 0x5bd1e995u);
    payload.assign(64 + (h % 1137), static_cast<std::uint8_t>(h >> 56));

    util::Timestamp ts;
    if (config_.burst_period.us() > 0) {
      // Square-wave pacing: advance the cursor by one inter-packet gap
      // at the rate of the current phase. The duty comparison uses the
      // cursor *before* the advance so the first packet of each period
      // is always in the high phase.
      const auto period = static_cast<double>(config_.burst_period.us());
      const double phase = std::fmod(burst_cursor_us_, period);
      const bool high = phase < config_.burst_duty * period;
      const double pps = high ? config_.burst_high_pps : config_.burst_low_pps;
      ts = config_.start + util::Duration::micros(
                               static_cast<std::int64_t>(burst_cursor_us_));
      burst_cursor_us_ += 1e6 / (pps > 1.0 ? pps : 1.0);
    } else {
      const auto frac = static_cast<double>(emitted_) /
                        static_cast<double>(config_.packets);
      ts = config_.start + util::Duration::micros(static_cast<std::int64_t>(
                               frac * static_cast<double>(config_.duration.us())));
    }

    const net::FiveTuple t = flow(rank);
    out.push_back(net::build_udp(ts, t.src_ip, t.src_port, t.dst_ip, t.dst_port,
                                 payload));
    realized_[rank].packets += 1;
    realized_[rank].bytes += out.back().data.size();
    ++emitted_;
    ++produced;
  }
  return produced;
}

std::vector<std::size_t> BackgroundTraffic::top_flows(std::size_t k) const {
  std::vector<std::size_t> ranks(realized_.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) ranks[i] = i;
  const std::size_t cut = std::min(k, ranks.size());
  std::partial_sort(ranks.begin(), ranks.begin() + static_cast<std::ptrdiff_t>(cut),
                    ranks.end(), [this](std::size_t a, std::size_t b) {
                      if (realized_[a].bytes != realized_[b].bytes)
                        return realized_[a].bytes > realized_[b].bytes;
                      return a < b;
                    });
  ranks.resize(cut);
  return ranks;
}

}  // namespace zpm::sim
