// Media source models: what a Zoom client's encoders emit.
//
// These models are calibrated to reproduce the *shapes* the paper
// reports from campus traffic (§6.2, Fig. 15): video frames mostly
// <2 kB with a tail past 5 kB at ~14 or ~28 fps; screen-share frames
// mostly tiny (incremental updates) with a long tail (slide changes) and
// frame rates that are often zero; audio alternating between 20 ms
// talk-spurt packets (PT 112) and fixed 40-byte silence packets (PT 99).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/rng.h"
#include "util/time.h"
#include "zoom/constants.h"

namespace zpm::sim {

/// One encoded frame ready for packetization.
struct EncodedFrame {
  std::uint32_t size_bytes = 0;
  /// Media-clock duration this frame covers (drives the RTP timestamp
  /// increment; variable packetization intervals per §5.4).
  util::Duration duration;
  bool is_keyframe = false;
};

/// Video encoder model: GoP structure (periodic large I-frames), motion-
/// modulated P-frame sizes, and Zoom's two observed frame-rate modes
/// (~28 fps normally, ~14 fps for thumbnails / under congestion — §6.2).
class VideoSource {
 public:
  struct Params {
    double base_fps = 28.0;
    double reduced_fps = 14.0;
    /// Median P-frame size at motion factor 1.0.
    double p_frame_median_bytes = 1450.0;
    double p_frame_sigma = 0.55;       // lognormal spread
    double keyframe_multiplier = 6.0;  // I-frame vs P-frame size
    util::Duration gop_period = util::Duration::seconds(6.0);
    /// Fraction of this stream's lifetime spent in reduced-fps mode
    /// (thumbnail view etc.); sampled per mode episode.
    double reduced_mode_fraction = 0.35;
    double motion_min = 0.4, motion_max = 2.2;  // random-walk bounds
  };

  VideoSource(Params params, util::Rng rng);

  /// Produces the next frame and advances internal time.
  EncodedFrame next_frame();

  /// Congestion response (§5.2): clamp the encoder to reduced fps and
  /// shrink frames; `severity` in [0,1].
  void set_congestion(double severity);
  /// Current encoder fps (ground truth for Fig. 10a).
  [[nodiscard]] double current_fps() const;

 private:
  void maybe_switch_mode();

  Params params_;
  util::Rng rng_;
  double motion_ = 1.0;
  bool reduced_mode_ = false;
  double congestion_ = 0.0;
  util::Duration since_keyframe_ = util::Duration::micros(0);
  util::Duration since_mode_switch_ = util::Duration::micros(0);
  util::Duration mode_episode_length_ = util::Duration::seconds(20.0);
};

/// Audio encoder model: two-state talk/silence Markov process. Talking
/// emits PT 112 packets every 20 ms; silence emits fixed 40-byte PT 99
/// packets every 40 ms. Mobile clients use PT 113 exclusively.
class AudioSource {
 public:
  struct Params {
    util::Duration mean_talk = util::Duration::seconds(4.0);
    util::Duration mean_silence = util::Duration::seconds(12.0);
    util::Duration talk_packet_interval = util::Duration::millis(20);
    /// Silence keep-alives are sparse (Table 3: silent-mode packets are
    /// only ~2.6% of all packets despite long silent stretches).
    util::Duration silence_packet_interval = util::Duration::millis(160);
    double talk_payload_median = 90.0;
    double talk_payload_sigma = 0.25;
    bool mobile = false;  // PT 113 only, mode opaque
  };

  struct AudioPacket {
    std::uint8_t payload_type = zoom::pt::kAudioSpeaking;
    std::uint32_t payload_bytes = 0;
    util::Duration interval;  // time to next packet & RTP clock advance
  };

  AudioSource(Params params, util::Rng rng);

  /// Produces the next audio packet spec.
  AudioPacket next_packet();
  [[nodiscard]] bool talking() const { return talking_; }

 private:
  Params params_;
  util::Rng rng_;
  bool talking_ = false;
  util::Duration state_remaining_ = util::Duration::micros(0);
};

/// Screen-share model: long quiet stretches (no frames at all — the
/// source of the ~15% zero-fps samples), small incremental updates, and
/// rare large slide-change frames.
class ScreenShareSource {
 public:
  struct Params {
    util::Duration mean_slide_change = util::Duration::seconds(12.0);
    /// While content is "settling" after a change, incremental frames
    /// arrive at up to this rate.
    double active_fps = 25.0;
    util::Duration mean_quiet = util::Duration::seconds(1.3);
    double incremental_median_bytes = 320.0;
    double incremental_sigma = 0.8;
    double slide_median_bytes = 4200.0;
    double slide_sigma = 0.7;
  };

  /// A frame plus the gap since the previous one (gaps can be seconds
  /// long, yielding zero-fps samples).
  struct TimedFrame {
    EncodedFrame frame;
    util::Duration gap;  // time since previous frame
  };

  ScreenShareSource(Params params, util::Rng rng);
  TimedFrame next_frame();

 private:
  Params params_;
  util::Rng rng_;
  util::Duration until_slide_change_;
  util::Duration settle_remaining_ = util::Duration::micros(0);
};

}  // namespace zpm::sim
