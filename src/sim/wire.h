// Wire-format construction for simulated Zoom traffic.
//
// The simulator never hands in-memory structs to the analyzer: every
// packet is serialized to real bytes here (SFU encap + media encap +
// RTP/RTCP + pseudo-encrypted payload) and re-parsed by the analyzer
// from scratch, keeping generator and analyzer honest with each other.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/rtcp.h"
#include "proto/rtp.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "zoom/encap.h"

namespace zpm::sim {

/// Parameters for one serialized media packet.
struct MediaPacketSpec {
  zoom::MediaEncapType encap_type = zoom::MediaEncapType::Video;
  std::uint8_t payload_type = zoom::pt::kVideoMain;
  std::uint32_t ssrc = 0;
  std::uint16_t rtp_seq = 0;
  std::uint32_t rtp_timestamp = 0;
  bool marker = false;
  std::uint16_t frame_sequence = 0;   // video only
  std::uint8_t packets_in_frame = 0;  // video only
  std::uint16_t media_encap_seq = 0;
  std::uint32_t media_encap_ts = 0;
  std::size_t payload_bytes = 0;  // encrypted media payload size
};

/// Serializes a Zoom media packet (media encap + RTP + payload). The
/// payload is filled with uniform random bytes — indistinguishable from
/// ciphertext, which is exactly what the entropy analysis expects to
/// see. Video payloads are prefixed with an H.264 FU-A header (§4.2.3).
std::vector<std::uint8_t> build_media_payload(const MediaPacketSpec& spec,
                                              util::Rng& rng);

/// Serializes a Zoom RTCP packet (media encap type 33/34 + SR [+ SDES]).
std::vector<std::uint8_t> build_rtcp_payload(std::uint32_t ssrc,
                                             const proto::SenderReport& sr,
                                             bool include_sdes,
                                             std::uint16_t media_encap_seq,
                                             util::Rng& rng);

/// Prepends the 8-byte SFU encapsulation to a media/RTCP payload
/// (server-based traffic only).
std::vector<std::uint8_t> wrap_sfu(std::span<const std::uint8_t> inner,
                                   std::uint16_t sfu_seq, bool from_sfu,
                                   std::uint8_t sfu_type = zoom::kSfuTypeMedia);

/// Builds an unknown-type payload (the <10% of Zoom packets the paper
/// could not decode, e.g. congestion-control messages). Starts with a
/// type byte outside the known set, then a small counter and random
/// bytes.
std::vector<std::uint8_t> build_unknown_payload(std::uint8_t type_byte,
                                                std::uint16_t counter,
                                                std::size_t total_bytes,
                                                util::Rng& rng);

}  // namespace zpm::sim
