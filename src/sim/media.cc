#include "sim/media.h"

#include <algorithm>
#include <cmath>

namespace zpm::sim {

VideoSource::VideoSource(Params params, util::Rng rng)
    : params_(params), rng_(rng) {
  motion_ = rng_.uniform(params_.motion_min, params_.motion_max);
  mode_episode_length_ = util::Duration::seconds(rng_.uniform(10.0, 45.0));
  reduced_mode_ = rng_.chance(params_.reduced_mode_fraction);
}

void VideoSource::maybe_switch_mode() {
  if (since_mode_switch_ >= mode_episode_length_) {
    since_mode_switch_ = util::Duration::micros(0);
    mode_episode_length_ = util::Duration::seconds(rng_.uniform(10.0, 45.0));
    reduced_mode_ = rng_.chance(params_.reduced_mode_fraction);
  }
}

double VideoSource::current_fps() const {
  double fps = reduced_mode_ ? params_.reduced_fps : params_.base_fps;
  if (congestion_ > 0.0) {
    // Congestion pushes the encoder toward the reduced mode smoothly.
    fps = std::max(params_.reduced_fps * (1.0 - 0.4 * congestion_),
                   fps * (1.0 - 0.5 * congestion_));
  }
  return fps;
}

void VideoSource::set_congestion(double severity) {
  congestion_ = std::clamp(severity, 0.0, 1.0);
}

EncodedFrame VideoSource::next_frame() {
  maybe_switch_mode();
  double fps = current_fps();
  // Small timing wobble: encoders are not metronomes.
  double interval_s = (1.0 / fps) * rng_.uniform(0.97, 1.03);
  auto duration = util::Duration::seconds(interval_s);
  since_keyframe_ += duration;
  since_mode_switch_ += duration;

  // Motion follows a bounded random walk.
  motion_ = std::clamp(motion_ + rng_.normal(0.0, 0.06), params_.motion_min,
                       params_.motion_max);

  EncodedFrame frame;
  frame.duration = duration;
  bool keyframe = since_keyframe_ >= params_.gop_period;
  if (keyframe) since_keyframe_ = util::Duration::micros(0);
  frame.is_keyframe = keyframe;

  double quality = 1.0 - 0.55 * congestion_;
  double median = params_.p_frame_median_bytes * motion_ * quality;
  if (reduced_mode_) median *= 0.6;  // thumbnails are smaller too
  double size = rng_.lognormal(median, params_.p_frame_sigma);
  if (keyframe) size *= params_.keyframe_multiplier;
  frame.size_bytes = static_cast<std::uint32_t>(std::clamp(size, 120.0, 60000.0));
  return frame;
}

AudioSource::AudioSource(Params params, util::Rng rng) : params_(params), rng_(rng) {
  talking_ = rng_.chance(0.4);
  state_remaining_ = util::Duration::seconds(
      rng_.exponential(talking_ ? params_.mean_talk.sec() : params_.mean_silence.sec()));
}

AudioSource::AudioPacket AudioSource::next_packet() {
  if (state_remaining_ <= util::Duration::micros(0)) {
    talking_ = !talking_;
    state_remaining_ = util::Duration::seconds(rng_.exponential(
        talking_ ? params_.mean_talk.sec() : params_.mean_silence.sec()));
  }
  AudioPacket pkt;
  if (params_.mobile) {
    pkt.payload_type = zoom::pt::kAudioUnknownMode;
    pkt.payload_bytes = static_cast<std::uint32_t>(
        std::clamp(rng_.lognormal(70.0, 0.3), 30.0, 400.0));
    pkt.interval = params_.talk_packet_interval;
  } else if (talking_) {
    pkt.payload_type = zoom::pt::kAudioSpeaking;
    pkt.payload_bytes = static_cast<std::uint32_t>(std::clamp(
        rng_.lognormal(params_.talk_payload_median, params_.talk_payload_sigma),
        40.0, 400.0));
    pkt.interval = params_.talk_packet_interval;
  } else {
    pkt.payload_type = zoom::pt::kAudioSilent;
    pkt.payload_bytes = zoom::kSilentAudioPayloadBytes;
    pkt.interval = params_.silence_packet_interval;
  }
  state_remaining_ -= pkt.interval;
  return pkt;
}

ScreenShareSource::ScreenShareSource(Params params, util::Rng rng)
    : params_(params), rng_(rng) {
  until_slide_change_ =
      util::Duration::seconds(rng_.exponential(params_.mean_slide_change.sec()));
}

ScreenShareSource::TimedFrame ScreenShareSource::next_frame() {
  TimedFrame out;
  if (until_slide_change_ <= util::Duration::micros(0)) {
    // Slide change: a large frame, then a settle period of incremental
    // updates.
    out.gap = util::Duration::millis(static_cast<std::int64_t>(rng_.uniform(40, 150)));
    out.frame.size_bytes = static_cast<std::uint32_t>(std::clamp(
        rng_.lognormal(params_.slide_median_bytes, params_.slide_sigma), 800.0, 90000.0));
    out.frame.is_keyframe = true;
    settle_remaining_ = util::Duration::seconds(rng_.uniform(3.0, 9.0));
    until_slide_change_ =
        util::Duration::seconds(rng_.exponential(params_.mean_slide_change.sec()));
  } else if (settle_remaining_ > util::Duration::micros(0)) {
    // Incremental updates after a change.
    double interval_s = 1.0 / params_.active_fps * rng_.uniform(0.8, 1.6);
    out.gap = util::Duration::seconds(interval_s);
    out.frame.size_bytes = static_cast<std::uint32_t>(std::clamp(
        rng_.lognormal(params_.incremental_median_bytes, params_.incremental_sigma),
        60.0, 20000.0));
    settle_remaining_ -= out.gap;
  } else {
    // Quiet stretch: nothing changes on screen for a while, then a
    // small update. These multi-second gaps produce the zero-fps bins.
    double quiet_s = rng_.exponential(params_.mean_quiet.sec());
    out.gap = util::Duration::seconds(std::max(quiet_s, 0.2));
    out.frame.size_bytes = static_cast<std::uint32_t>(std::clamp(
        rng_.lognormal(params_.incremental_median_bytes * 1.5, params_.incremental_sigma),
        60.0, 20000.0));
  }
  until_slide_change_ -= out.gap;
  out.frame.duration = out.gap;  // RTP clock advances with wall time
  return out;
}

}  // namespace zpm::sim
