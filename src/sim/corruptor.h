// Deterministic fault injection for generated traces.
//
// The clean simulator never produces what a production tap delivers:
// snaplen-truncated records, middlebox-mangled bytes, dropped and
// duplicated records, tap restarts that cut holes into the capture,
// clock steps that make timestamps regress, and unrelated UDP traffic
// squatting on Zoom's ports. TraceCorruptor applies exactly those
// impairments as a PRNG-seeded pass over any packet stream, so the
// analyzer's robustness (and its AnalyzerHealth accounting) can be
// exercised reproducibly: same input + same seed -> bit-identical
// corrupted trace.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "util/rng.h"
#include "util/time.h"

namespace zpm::sim {

/// Impairment mix. All probabilities are per-record Bernoulli trials
/// (0 disables the impairment); independent impairments can hit the
/// same record.
struct CorruptorConfig {
  std::uint64_t seed = 0xC0221;

  /// Snaplen truncation: keep only the first `snaplen` bytes, recording
  /// the original length (as a capture with a short snaplen would).
  double truncate_prob = 0.0;
  std::size_t snaplen = 96;

  /// Overwrite one random byte in the first 42 bytes (eth+ip+udp
  /// headers) with a random value — middlebox/NIC header mangling.
  double header_flip_prob = 0.0;

  /// Flip one random bit past the headers (payload corruption).
  double payload_flip_prob = 0.0;

  /// Record loss (capture drop, not network loss: the packet reached
  /// the wire but never the trace).
  double drop_prob = 0.0;

  /// Record duplication (tap/span port artifacts).
  double duplicate_prob = 0.0;

  /// Timestamp regression: shift this record's timestamp backwards by
  /// up to `ts_regression_max` (clock steps, reordering capture stacks).
  double ts_regression_prob = 0.0;
  util::Duration ts_regression_max = util::Duration::millis(400);

  /// Injection of look-alike non-Zoom UDP on ports 8801/3478 right
  /// after a real record: half aimed at non-Zoom addresses (port
  /// squatters), half at Zoom server space with garbage payloads.
  double lookalike_prob = 0.0;

  /// Mid-trace capture cuts (tap restarts): `capture_cuts` windows of
  /// `cut_duration` placed deterministically inside
  /// [trace_start, trace_start + trace_duration); every record whose
  /// timestamp falls inside a window is lost. Requires a non-zero
  /// trace_duration (the campus/meeting simulators fill it in).
  std::size_t capture_cuts = 0;
  util::Duration cut_duration = util::Duration::seconds(5);
  util::Timestamp trace_start;
  util::Duration trace_duration;

  /// The documented "hostile trace" mix used by tests, docs and the
  /// zpm_analyze --corrupt flag: every impairment enabled at rates that
  /// leave the trace analyzable but thoroughly dirty.
  static CorruptorConfig hostile(std::uint64_t seed);
};

/// What the corruptor did, category by category. `emitted` counts
/// records written out (including duplicates and injected look-alikes);
/// mutation counters count affected records.
struct CorruptionStats {
  std::uint64_t offered = 0;
  std::uint64_t emitted = 0;
  std::uint64_t truncated = 0;
  std::uint64_t header_flips = 0;
  std::uint64_t payload_flips = 0;
  std::uint64_t dropped = 0;
  std::uint64_t cut_dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t ts_regressions = 0;
  std::uint64_t lookalikes_injected = 0;

  bool operator==(const CorruptionStats&) const = default;
};

/// See file comment.
class TraceCorruptor {
 public:
  explicit TraceCorruptor(const CorruptorConfig& config);

  /// Feeds one record through the impairment pass, appending 0..3
  /// records to `out` (0: dropped/cut; up to 3: record + duplicate +
  /// injected look-alike). Decisions consume the PRNG in a fixed order,
  /// so equal inputs yield equal outputs.
  void process(net::RawPacket pkt, std::vector<net::RawPacket>& out);

  [[nodiscard]] const CorruptionStats& stats() const { return stats_; }
  [[nodiscard]] const CorruptorConfig& config() const { return config_; }
  /// The scheduled capture-cut windows (inspection / tests).
  [[nodiscard]] const std::vector<std::pair<util::Timestamp, util::Timestamp>>&
  cut_windows() const {
    return cuts_;
  }

 private:
  net::RawPacket make_lookalike(util::Timestamp ts);

  CorruptorConfig config_;
  util::Rng rng_;
  CorruptionStats stats_;
  std::vector<std::pair<util::Timestamp, util::Timestamp>> cuts_;
};

/// FIFO adapter wrapping a pull-based generator with a corruption pass:
/// `next(source)` pulls records from `source` (a callable returning
/// std::optional<net::RawPacket>) until the corruptor emits at least
/// one, then hands them out one at a time.
class CorruptionQueue {
 public:
  explicit CorruptionQueue(const CorruptorConfig& config) : corruptor_(config) {}

  template <typename Source>
  std::optional<net::RawPacket> next(Source&& source) {
    while (head_ == pending_.size()) {
      pending_.clear();
      head_ = 0;
      auto pkt = source();
      if (!pkt) return std::nullopt;
      corruptor_.process(std::move(*pkt), pending_);
    }
    return std::move(pending_[head_++]);
  }

  [[nodiscard]] const TraceCorruptor& corruptor() const { return corruptor_; }

 private:
  TraceCorruptor corruptor_;
  std::vector<net::RawPacket> pending_;
  std::size_t head_ = 0;
};

}  // namespace zpm::sim
