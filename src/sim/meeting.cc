#include "sim/meeting.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>

#include "net/build.h"
#include "proto/stun.h"
#include "sim/wire.h"

namespace zpm::sim {

namespace {

using util::Duration;
using util::Timestamp;

constexpr std::size_t kMtuPayload = 1150;  // media bytes per RTP packet
constexpr double kSfuProcMsMin = 0.3;
constexpr double kSfuProcMsMax = 1.0;

/// Expected (jitter-free) one-way delay of a path at time t, for
/// ground-truth latency reporting.
double expected_delay_ms(const PathModel& path, Timestamp t) {
  double ms = path.base_delay_ms();
  for (const auto& ep : path.episodes()) ms += ep.intensity(t) * ep.extra_delay_ms;
  return ms;
}

}  // namespace

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

struct MeetingSim::Impl {
  // -- event machinery ------------------------------------------------------
  enum class EvKind : std::uint8_t {
    Join,
    VideoFrame,
    AudioPacket,
    ScreenFrame,
    RtcpTick,
    UnknownTick,
    TcpTick,
    QosTick,
    P2pSwitch,
    RetransUp,
    RetransDown,
    Leave,
  };

  /// Everything needed to (re)send one media packet.
  struct PacketDesc {
    int sender = 0;
    zoom::MediaKind kind = zoom::MediaKind::Video;
    std::uint8_t payload_type = 0;
    std::uint16_t rtp_seq = 0;
    std::uint32_t rtp_ts = 0;
    bool marker = false;
    std::uint16_t frame_seq = 0;
    std::uint8_t pkts_in_frame = 0;
    std::uint32_t payload_bytes = 0;
  };

  struct Event {
    Timestamp t;
    std::uint64_t id = 0;  // tie-breaker for determinism
    EvKind kind = EvKind::VideoFrame;
    int p = 0;              // participant
    int aux = 0;            // media kind index / receiver / attempt
    PacketDesc desc;        // retransmissions only

    bool operator>(const Event& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  struct PendingPacket {
    Timestamp t;
    std::uint64_t id;
    net::RawPacket pkt;
    bool operator>(const PendingPacket& o) const {
      return t != o.t ? t > o.t : id > o.id;
    }
  };

  // -- per-stream sender state ----------------------------------------------
  struct StreamState {
    bool active = false;
    std::uint8_t encap_type = 0;
    std::uint32_t ssrc = 0;
    std::uint32_t clock_hz = zoom::kVideoClockHz;
    std::uint32_t rtp_ts = 0;
    std::uint16_t rtp_seq = 0;
    std::uint16_t fec_seq = 0;
    std::uint16_t frame_seq = 0;
    std::uint32_t sr_packets = 0;  // RTCP SR counters
    std::uint32_t sr_octets = 0;
  };

  // -- per-receiver ground-truth frame tracking ------------------------------
  struct RxFrame {
    std::uint32_t need = 0;
    std::uint32_t got = 0;
  };
  struct RxStream {
    std::map<std::uint32_t, RxFrame> partial;
    std::deque<Timestamp> deliveries;
    // Recently completed frame timestamps, so retransmitted duplicates
    // are not double-counted as fresh deliveries.
    std::set<std::uint32_t> completed;
    std::deque<std::uint32_t> completed_order;
  };

  struct Participant {
    ParticipantConfig cfg;
    bool joined = false;
    std::unique_ptr<PathModel> access;  // client <-> border (or ISP leg)
    std::unique_ptr<PathModel> wan;     // border <-> SFU
    std::optional<VideoSource> video_src;
    std::optional<AudioSource> audio_src;
    std::optional<ScreenShareSource> screen_src;
    std::array<StreamState, 3> streams;  // indexed by MediaKind
    std::array<std::uint16_t, 3> server_port{};  // client port per media kind
    std::uint16_t p2p_port = 0;
    std::uint16_t next_port = 0;
    // Encapsulation counters: uplink (this client sends) and downlink
    // (SFU sends to this client) per media kind, plus P2P.
    std::array<std::uint16_t, 3> sfu_seq_up{}, sfu_seq_down{};
    std::array<std::uint16_t, 3> media_seq_up{}, media_seq_down{};
    std::uint16_t p2p_media_seq = 0;
    // TCP control connection.
    std::uint16_t tcp_port = 0;
    std::uint32_t tcp_client_seq = 1000;
    std::uint32_t tcp_server_seq = 9000;
    // Screen-share frame waiting for its send event (frames are fetched
    // one ahead so the inter-frame gap is known for scheduling).
    std::optional<EncodedFrame> pending_screen;
    // Rewriting-SFU ablation state: per-receiver sequence spaces and a
    // per-receiver timestamp offset.
    std::array<std::uint16_t, 3> rewrite_seq{};
    std::uint32_t rewrite_ts_offset = 0;
    // Ground-truth receive state, keyed by (sender, kind).
    std::map<std::pair<int, int>, RxStream> rx;
    // Smoothed QoS reporting state.
    std::deque<double> fps_history;
    double reported_latency_ms = 0.0;
    Timestamp last_latency_refresh;
    double reported_jitter_ms = 0.0;
  };

  enum class Mode : std::uint8_t { Server, P2p };

  // -- fields ----------------------------------------------------------------
  MeetingConfig cfg;
  util::Rng rng;
  std::vector<Participant> parts;
  Mode mode = Mode::Server;
  Timestamp end_time;
  std::uint64_t next_id = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  std::priority_queue<PendingPacket, std::vector<PendingPacket>, std::greater<>> out;
  std::vector<QosSample> qos;
  Stats stats;
  std::optional<CorruptionQueue> corruption;

  explicit Impl(MeetingConfig config) : cfg(std::move(config)), rng(cfg.seed) {
    if (cfg.corruption) {
      CorruptorConfig cc = *cfg.corruption;
      if (cc.capture_cuts > 0 && cc.trace_duration <= Duration{}) {
        cc.trace_start = cfg.start;
        cc.trace_duration = cfg.duration;
      }
      corruption.emplace(cc);
    }
    end_time = cfg.start + cfg.duration;
    int index = 0;
    for (const auto& pc : cfg.participants) {
      Participant p;
      p.cfg = pc;
      p.access = std::make_unique<PathModel>(pc.access_path, rng.fork());
      auto wan = std::make_unique<PathModel>(pc.wan_path, rng.fork());
      for (const auto& ep : pc.congestion) wan->add_episode(ep);
      p.wan = std::move(wan);
      p.next_port = static_cast<std::uint16_t>(40000 + rng.uniform_int(0, 8000));
      p.rewrite_ts_offset = rng.next_u32();
      std::uint32_t base = cfg.ssrc_base + static_cast<std::uint32_t>(index) * 4;
      for (int k = 0; k < 3; ++k) {
        auto& s = p.streams[static_cast<std::size_t>(k)];
        s.ssrc = base + static_cast<std::uint32_t>(k) + 1;
        s.rtp_ts = rng.next_u32();
        s.rtp_seq = static_cast<std::uint16_t>(rng.next_u32());
        s.clock_hz = (k == static_cast<int>(zoom::MediaKind::Audio))
                         ? zoom::kAudioClockHz
                         : zoom::kVideoClockHz;
      }
      parts.push_back(std::move(p));
      ++index;
    }
    for (int p = 0; p < static_cast<int>(parts.size()); ++p) {
      schedule(cfg.start + parts[static_cast<std::size_t>(p)].cfg.join_after,
               EvKind::Join, p);
    }
    if (cfg.p2p_switch_after && cfg.participants.size() >= 2) {
      schedule(cfg.start + *cfg.p2p_switch_after, EvKind::P2pSwitch, 0);
    }
  }

  // -- helpers ---------------------------------------------------------------
  static std::size_t ki(zoom::MediaKind k) { return static_cast<std::size_t>(k); }

  void schedule(Timestamp t, EvKind kind, int p, int aux, PacketDesc desc) {
    events.push(Event{t, next_id++, kind, p, aux, desc});
  }
  void schedule(Timestamp t, EvKind kind, int p, int aux = 0);

  void emit(Timestamp t, net::RawPacket pkt) {
    pkt.ts = t;
    ++stats.monitor_packets;
    out.push(PendingPacket{t, next_id++, std::move(pkt)});
  }

  std::uint16_t alloc_port(Participant& p) {
    p.next_port = static_cast<std::uint16_t>(p.next_port + 1 + (rng.next_u32() % 7));
    if (p.next_port < 32768) p.next_port = static_cast<std::uint16_t>(32768 + p.next_port % 8000);
    return p.next_port;
  }

  Duration sfu_proc() {
    return Duration::micros(
        static_cast<std::int64_t>(rng.uniform(kSfuProcMsMin, kSfuProcMsMax) * 1000));
  }

  /// Number of *joined* participants at the moment.
  int joined_count() const {
    int n = 0;
    for (const auto& p : parts) n += p.joined ? 1 : 0;
    return n;
  }

  bool p2p_active() const { return mode == Mode::P2p; }

  // ---------------------------------------------------------------------
  // Packet emission paths
  // ---------------------------------------------------------------------

  /// Serializes the Zoom payload for a media packet.
  std::vector<std::uint8_t> media_bytes(const PacketDesc& d, std::uint16_t encap_seq) {
    MediaPacketSpec spec;
    auto& s = parts[static_cast<std::size_t>(d.sender)].streams[ki(d.kind)];
    spec.encap_type = static_cast<zoom::MediaEncapType>(s.encap_type);
    spec.payload_type = d.payload_type;
    spec.ssrc = s.ssrc;
    spec.rtp_seq = d.rtp_seq;
    spec.rtp_timestamp = d.rtp_ts;
    spec.marker = d.marker;
    spec.frame_sequence = d.frame_seq;
    spec.packets_in_frame = d.pkts_in_frame;
    spec.media_encap_seq = encap_seq;
    spec.media_encap_ts = d.rtp_ts;
    spec.payload_bytes = d.payload_bytes;
    return build_media_payload(spec, rng);
  }

  std::uint8_t pick_sfu_type() {
    if (rng.chance(cfg.odd_sfu_type_fraction)) {
      static constexpr std::array<std::uint8_t, 3> kOdd = {0x01, 0x02, 0x07};
      return kOdd[rng.next_u32() % kOdd.size()];
    }
    return zoom::kSfuTypeMedia;
  }

  /// Sends one media packet from `d.sender`; handles monitor
  /// observation, SFU fan-out / P2P delivery, losses and
  /// retransmission scheduling. `attempt` is 0 for the original send.
  void send_media_packet(Timestamp t_send, const PacketDesc& d, int attempt) {
    ++stats.media_packets_sent;
    if (attempt > 0) ++stats.retransmissions;
    if (p2p_active()) {
      send_media_p2p(t_send, d, attempt);
    } else {
      send_media_server(t_send, d, attempt);
    }
  }

  void send_media_server(Timestamp t_send, const PacketDesc& d, int attempt) {
    auto& sender = parts[static_cast<std::size_t>(d.sender)];
    std::size_t k = ki(d.kind);

    Timestamp t_at_sfu = t_send;
    bool reached_sfu = true;
    if (sender.cfg.on_campus) {
      if (sender.access->drops(t_send)) {
        // Lost inside campus: invisible to the monitor.
        ++stats.drops;
        schedule_uplink_retransmit(t_send, d, attempt);
        return;
      }
      Timestamp t_border = sender.access->delivery_time(t_send, 0);
      auto payload = media_bytes(d, sender.media_seq_up[k]++);
      auto wrapped = wrap_sfu(payload, sender.sfu_seq_up[k]++, false, pick_sfu_type());
      emit(t_border,
           net::build_udp(t_border, sender.cfg.ip, sender.server_port[k], cfg.sfu_ip,
                          zoom::kServerMediaPort, wrapped));
      if (sender.wan->drops(t_border)) {
        ++stats.drops;
        reached_sfu = false;
        schedule_uplink_retransmit(t_send, d, attempt);
      } else {
        t_at_sfu = sender.wan->delivery_time(t_border, 0);
      }
    } else {
      // Off-campus sender: single invisible leg to the SFU.
      if (sender.wan->drops(t_send)) {
        ++stats.drops;
        schedule_uplink_retransmit(t_send, d, attempt);
        return;
      }
      t_at_sfu = sender.wan->delivery_time(
          sender.access->delivery_time(t_send, 0), 0);
    }
    if (!reached_sfu) return;

    // SFU fan-out to every other joined participant.
    for (int r = 0; r < static_cast<int>(parts.size()); ++r) {
      if (r == d.sender) continue;
      if (!parts[static_cast<std::size_t>(r)].joined) continue;
      forward_to_receiver(t_at_sfu + sfu_proc(), d, r, 0);
    }
  }

  void schedule_uplink_retransmit(Timestamp t_send, const PacketDesc& d, int attempt) {
    if (attempt >= zoom::kMaxRetransmissions) return;
    const auto& sender = parts[static_cast<std::size_t>(d.sender)];
    double rtt_ms = 2.0 * (expected_delay_ms(*sender.access, t_send) +
                           expected_delay_ms(*sender.wan, t_send));
    Timestamp t_retx = t_send +
                       Duration::micros(zoom::kRetransmitTimeoutUs) +
                       Duration::millis(static_cast<std::int64_t>(rtt_ms));
    schedule(t_retx, EvKind::RetransUp, d.sender, attempt + 1, d);
  }

  /// SFU -> receiver leg (server mode).
  void forward_to_receiver(Timestamp t_fwd, const PacketDesc& d, int r, int attempt) {
    auto& rx = parts[static_cast<std::size_t>(r)];
    std::size_t k = ki(d.kind);
    Timestamp t_client;
    // The rewriting-SFU ablation gives each receiver its own RTP
    // sequence space and timestamp base (an MCU-like behaviour Zoom
    // does not exhibit).
    PacketDesc fwd = d;
    if (cfg.sfu_rewrites_rtp) {
      fwd.rtp_seq = rx.rewrite_seq[k]++;
      fwd.rtp_ts = d.rtp_ts + rx.rewrite_ts_offset;
    }
    if (rx.cfg.on_campus) {
      if (rx.wan->drops(t_fwd)) {
        // Lost before the border: monitor misses this copy entirely.
        ++stats.drops;
        schedule_downlink_retransmit(t_fwd, d, r, attempt);
        return;
      }
      Timestamp t_border = rx.wan->delivery_time(t_fwd, 1);
      auto payload = media_bytes(fwd, rx.media_seq_down[k]++);
      auto wrapped = wrap_sfu(payload, rx.sfu_seq_down[k]++, true, pick_sfu_type());
      emit(t_border,
           net::build_udp(t_border, cfg.sfu_ip, zoom::kServerMediaPort, rx.cfg.ip,
                          rx.server_port[k], wrapped));
      if (rx.access->drops(t_border)) {
        // Lost inside campus: monitor saw it; the retransmitted copy
        // will appear as a duplicate.
        ++stats.drops;
        schedule_downlink_retransmit(t_fwd, d, r, attempt);
        return;
      }
      t_client = rx.access->delivery_time(t_border, 1);
    } else {
      if (rx.wan->drops(t_fwd)) {
        ++stats.drops;
        schedule_downlink_retransmit(t_fwd, d, r, attempt);
        return;
      }
      t_client = rx.access->delivery_time(rx.wan->delivery_time(t_fwd, 1), 1);
    }
    deliver_to_client(t_client, d, r);
  }

  void schedule_downlink_retransmit(Timestamp t_fwd, const PacketDesc& d, int r,
                                    int attempt) {
    if (attempt >= zoom::kMaxRetransmissions) return;
    const auto& rx = parts[static_cast<std::size_t>(r)];
    double rtt_ms = 2.0 * (expected_delay_ms(*rx.access, t_fwd) +
                           expected_delay_ms(*rx.wan, t_fwd));
    Timestamp t_retx = t_fwd + Duration::micros(zoom::kRetransmitTimeoutUs) +
                       Duration::millis(static_cast<std::int64_t>(rtt_ms));
    schedule(t_retx, EvKind::RetransDown, r, attempt + 1, d);
  }

  void send_media_p2p(Timestamp t_send, const PacketDesc& d, int attempt) {
    // Exactly two joined participants in P2P mode.
    int peer = -1;
    for (int r = 0; r < static_cast<int>(parts.size()); ++r)
      if (r != d.sender && parts[static_cast<std::size_t>(r)].joined) peer = r;
    if (peer < 0) return;
    auto& sender = parts[static_cast<std::size_t>(d.sender)];
    auto& rx = parts[static_cast<std::size_t>(peer)];

    // Legs: sender access (campus side if on campus), then peer's
    // side. The monitor sits at the campus border of whichever side is
    // on campus.
    Timestamp t_cursor = t_send;
    if (sender.cfg.on_campus) {
      if (sender.access->drops(t_cursor)) {
        ++stats.drops;
        schedule_p2p_retransmit(t_send, d, attempt);
        return;
      }
      Timestamp t_border = sender.access->delivery_time(t_cursor, 0);
      auto payload = media_bytes(d, sender.p2p_media_seq++);
      emit(t_border, net::build_udp(t_border, sender.cfg.ip, sender.p2p_port,
                                    rx.cfg.ip, rx.p2p_port, payload));
      ++stats.p2p_media_packets;
      t_cursor = t_border;
    }
    if (sender.wan->drops(t_cursor)) {
      ++stats.drops;
      schedule_p2p_retransmit(t_send, d, attempt);
      return;
    }
    t_cursor = sender.wan->delivery_time(t_cursor, 0);
    if (!sender.cfg.on_campus && rx.cfg.on_campus) {
      // Crossing into the campus: monitor sees it here.
      auto payload = media_bytes(d, sender.p2p_media_seq++);
      emit(t_cursor, net::build_udp(t_cursor, sender.cfg.ip, sender.p2p_port,
                                    rx.cfg.ip, rx.p2p_port, payload));
      ++stats.p2p_media_packets;
    }
    if (rx.cfg.on_campus) {
      if (rx.access->drops(t_cursor)) {
        ++stats.drops;
        schedule_p2p_retransmit(t_send, d, attempt);
        return;
      }
      t_cursor = rx.access->delivery_time(t_cursor, 1);
    }
    deliver_to_client(t_cursor, d, peer);
  }

  void schedule_p2p_retransmit(Timestamp t_send, const PacketDesc& d, int attempt) {
    if (attempt >= zoom::kMaxRetransmissions) return;
    const auto& sender = parts[static_cast<std::size_t>(d.sender)];
    double rtt_ms = 2.0 * (expected_delay_ms(*sender.access, t_send) +
                           expected_delay_ms(*sender.wan, t_send));
    schedule(t_send + Duration::micros(zoom::kRetransmitTimeoutUs) +
                 Duration::millis(static_cast<std::int64_t>(rtt_ms)),
             EvKind::RetransUp, d.sender, attempt + 1, d);
  }

  /// Ground-truth delivery bookkeeping at the receiving client.
  void deliver_to_client(Timestamp t, const PacketDesc& d, int r) {
    if (!cfg.collect_qos) return;
    // FEC sub-stream packets repair frames; they are not frames.
    if (d.payload_type == zoom::pt::kFec) return;
    auto& rx = parts[static_cast<std::size_t>(r)];
    auto& stream = rx.rx[{d.sender, static_cast<int>(d.kind)}];
    if (stream.completed.contains(d.rtp_ts)) return;  // retransmit dup
    auto& frame = stream.partial[d.rtp_ts];
    if (d.pkts_in_frame != 0) frame.need = d.pkts_in_frame;
    if (frame.need == 0) frame.need = 1;
    ++frame.got;
    if (frame.got >= frame.need) {
      stream.deliveries.push_back(t);
      stream.partial.erase(d.rtp_ts);
      stream.completed.insert(d.rtp_ts);
      stream.completed_order.push_back(d.rtp_ts);
      while (stream.completed_order.size() > 512) {
        stream.completed.erase(stream.completed_order.front());
        stream.completed_order.pop_front();
      }
      while (stream.deliveries.size() > 256) stream.deliveries.pop_front();
    }
    // Drop stale partials.
    if (stream.partial.size() > 512) stream.partial.clear();
  }

  // ---------------------------------------------------------------------
  // Event handlers
  // ---------------------------------------------------------------------

  void on_join(Timestamp t, int pi) {
    auto& p = parts[static_cast<std::size_t>(pi)];
    p.joined = true;
    if (p.cfg.leave_after) schedule(t + *p.cfg.leave_after, EvKind::Leave, pi);
    util::Rng fork = rng.fork();
    for (int k = 0; k < 3; ++k)
      p.server_port[static_cast<std::size_t>(k)] = alloc_port(p);
    p.tcp_port = alloc_port(p);

    // A third participant joining ends P2P for good (§3).
    if (p2p_active() && joined_count() > 2) revert_to_server(t);

    if (p.cfg.send_video) {
      p.video_src.emplace(p.cfg.video, fork.fork());
      p.streams[ki(zoom::MediaKind::Video)].active = true;
      p.streams[ki(zoom::MediaKind::Video)].encap_type =
          static_cast<std::uint8_t>(zoom::MediaEncapType::Video);
      schedule(t + Duration::millis(static_cast<std::int64_t>(rng.uniform(10, 120))),
               EvKind::VideoFrame, pi);
      schedule(t + Duration::seconds(1.0), EvKind::RtcpTick, pi,
               static_cast<int>(zoom::MediaKind::Video));
    }
    if (p.cfg.send_audio) {
      p.audio_src.emplace(p.cfg.audio, fork.fork());
      p.streams[ki(zoom::MediaKind::Audio)].active = true;
      p.streams[ki(zoom::MediaKind::Audio)].encap_type =
          static_cast<std::uint8_t>(zoom::MediaEncapType::Audio);
      schedule(t + Duration::millis(static_cast<std::int64_t>(rng.uniform(5, 60))),
               EvKind::AudioPacket, pi);
      schedule(t + Duration::seconds(1.0), EvKind::RtcpTick, pi,
               static_cast<int>(zoom::MediaKind::Audio));
    }
    if (p.cfg.send_screen_share) {
      p.screen_src.emplace(p.cfg.screen, fork.fork());
      p.streams[ki(zoom::MediaKind::ScreenShare)].active = true;
      p.streams[ki(zoom::MediaKind::ScreenShare)].encap_type =
          static_cast<std::uint8_t>(zoom::MediaEncapType::ScreenShare);
      schedule(t + Duration::millis(static_cast<std::int64_t>(rng.uniform(50, 400))),
               EvKind::ScreenFrame, pi);
      schedule(t + Duration::seconds(1.0), EvKind::RtcpTick, pi,
               static_cast<int>(zoom::MediaKind::ScreenShare));
    }
    if (cfg.unknown_packet_fraction > 0.0) {
      schedule(t + Duration::millis(static_cast<std::int64_t>(rng.uniform(50, 300))),
               EvKind::UnknownTick, pi);
    }
    if (cfg.with_tcp_control && p.cfg.on_campus) {
      schedule(t + Duration::millis(static_cast<std::int64_t>(rng.uniform(100, 900))),
               EvKind::TcpTick, pi);
    }
    if (cfg.collect_qos) {
      schedule(t + Duration::seconds(1.0), EvKind::QosTick, pi);
    }
  }

  void advance_clock(StreamState& s, Duration media_time) {
    s.rtp_ts += static_cast<std::uint32_t>(
        media_time.sec() * static_cast<double>(s.clock_hz));
  }

  void on_video_frame(Timestamp t, int pi) {
    auto& p = parts[static_cast<std::size_t>(pi)];
    if (!p.joined || !p.video_src || t > end_time) return;
    // Rate adaptation reads the sender's current WAN congestion (§5.2).
    p.video_src->set_congestion(p.wan->congestion(t));
    EncodedFrame frame = p.video_src->next_frame();
    auto& s = p.streams[ki(zoom::MediaKind::Video)];
    ++s.frame_seq;

    auto n_packets = static_cast<std::uint8_t>(
        std::clamp<std::size_t>((frame.size_bytes + kMtuPayload - 1) / kMtuPayload, 1, 64));
    std::uint32_t per_packet = frame.size_bytes / n_packets;
    Timestamp t_pkt = t;
    for (std::uint8_t i = 0; i < n_packets; ++i) {
      PacketDesc d;
      d.sender = pi;
      d.kind = zoom::MediaKind::Video;
      d.payload_type = zoom::pt::kVideoMain;
      d.rtp_seq = s.rtp_seq++;
      d.rtp_ts = s.rtp_ts;
      d.marker = (i + 1 == n_packets);
      d.frame_seq = s.frame_seq;
      d.pkts_in_frame = n_packets;
      d.payload_bytes = std::max<std::uint32_t>(per_packet, 24);
      s.sr_packets++;
      s.sr_octets += d.payload_bytes;
      send_media_packet(t_pkt, d, 0);
      // Back-to-back burst with sub-millisecond pacing (§5.4, Fig. 12).
      t_pkt += Duration::micros(static_cast<std::int64_t>(rng.uniform(80, 400)));
    }
    // FEC sub-stream: PT 110, same timestamp, own sequence space
    // (§4.2.3). Roughly one FEC packet per three video frames.
    if (rng.chance(0.33)) {
      PacketDesc d;
      d.sender = pi;
      d.kind = zoom::MediaKind::Video;
      d.payload_type = zoom::pt::kFec;
      d.rtp_seq = s.fec_seq++;
      d.rtp_ts = s.rtp_ts;
      d.marker = false;
      d.frame_seq = s.frame_seq;
      d.pkts_in_frame = 0;
      d.payload_bytes = static_cast<std::uint32_t>(std::min<std::uint32_t>(
          std::max<std::uint32_t>(per_packet, 200), 1100));
      // SR counters cover every packet of the SSRC, FEC included.
      s.sr_packets++;
      s.sr_octets += d.payload_bytes;
      send_media_packet(t_pkt, d, 0);
    }
    // Advance the media clock by this frame's duration AFTER emitting:
    // the next frame is sampled (and sent) exactly `duration` later, so
    // wall-clock and RTP-clock deltas pair up (zero intrinsic jitter).
    advance_clock(s, frame.duration);
    schedule(t + frame.duration, EvKind::VideoFrame, pi);
  }

  void on_audio_packet(Timestamp t, int pi) {
    auto& p = parts[static_cast<std::size_t>(pi)];
    if (!p.joined || !p.audio_src || t > end_time) return;
    AudioSource::AudioPacket ap = p.audio_src->next_packet();
    auto& s = p.streams[ki(zoom::MediaKind::Audio)];

    PacketDesc d;
    d.sender = pi;
    d.kind = zoom::MediaKind::Audio;
    d.payload_type = ap.payload_type;
    d.rtp_seq = s.rtp_seq++;
    d.rtp_ts = s.rtp_ts;
    d.marker = true;  // single-packet audio frames
    d.payload_bytes = ap.payload_bytes;
    s.sr_packets++;
    s.sr_octets += d.payload_bytes;
    send_media_packet(t, d, 0);

    // Occasional audio FEC (PT 110; §4.2.3 / Table 3).
    if (ap.payload_type == zoom::pt::kAudioSpeaking && rng.chance(0.028)) {
      PacketDesc f = d;
      f.payload_type = zoom::pt::kFec;
      f.rtp_seq = s.fec_seq++;
      f.marker = false;
      s.sr_packets++;
      s.sr_octets += f.payload_bytes;
      send_media_packet(t + Duration::micros(150), f, 0);
    }
    // Clock advances after emission (see on_video_frame).
    advance_clock(s, ap.interval);
    schedule(t + ap.interval, EvKind::AudioPacket, pi);
  }

  void on_screen_frame(Timestamp t, int pi) {
    auto& p = parts[static_cast<std::size_t>(pi)];
    if (!p.joined || !p.screen_src || t > end_time) return;
    auto& s = p.streams[ki(zoom::MediaKind::ScreenShare)];

    // Send the frame whose event this is (fetched one step ahead so the
    // gap was known when scheduling). Packets must be emitted at the
    // *current* event time — future-dated sends would push the sender's
    // FIFO leg ahead of wall clock and stall its other streams.
    if (p.pending_screen) {
      const EncodedFrame& frame = *p.pending_screen;
      ++s.frame_seq;
      auto n_packets = static_cast<std::uint32_t>(std::clamp<std::size_t>(
          (frame.size_bytes + kMtuPayload - 1) / kMtuPayload, 1, 96));
      std::uint32_t per_packet = frame.size_bytes / n_packets;
      Timestamp t_pkt = t;
      for (std::uint32_t i = 0; i < n_packets; ++i) {
        PacketDesc d;
        d.sender = pi;
        d.kind = zoom::MediaKind::ScreenShare;
        d.payload_type = zoom::pt::kScreenShareMain;
        d.rtp_seq = s.rtp_seq++;
        d.rtp_ts = s.rtp_ts;
        d.marker = (i + 1 == n_packets);
        d.payload_bytes = std::max<std::uint32_t>(per_packet, 40);
        s.sr_packets++;
        s.sr_octets += d.payload_bytes;
        send_media_packet(t_pkt, d, 0);
        t_pkt += Duration::micros(static_cast<std::int64_t>(rng.uniform(100, 500)));
      }
      p.pending_screen.reset();
    }

    // Fetch the next frame; its gap tells us when to fire again, and the
    // media clock advances by the same amount (wall/RTP pairing).
    ScreenShareSource::TimedFrame tf = p.screen_src->next_frame();
    advance_clock(s, tf.frame.duration);
    p.pending_screen = tf.frame;
    schedule(t + tf.gap, EvKind::ScreenFrame, pi);
  }

  void on_rtcp_tick(Timestamp t, int pi, int kind_index) {
    auto& p = parts[static_cast<std::size_t>(pi)];
    auto& s = p.streams[static_cast<std::size_t>(kind_index)];
    if (!p.joined || !s.active || t > end_time) return;

    proto::SenderReport sr;
    sr.sender_ssrc = s.ssrc;
    sr.ntp = proto::NtpTimestamp::from_unix(t);
    sr.rtp_timestamp = s.rtp_ts;
    sr.packet_count = s.sr_packets;
    sr.octet_count = s.sr_octets;
    bool with_sdes = rng.chance(0.77);  // Table 2: type 34 ≈ 3x type 33

    std::size_t k = static_cast<std::size_t>(kind_index);
    if (p2p_active()) {
      int peer = -1;
      for (int r = 0; r < static_cast<int>(parts.size()); ++r)
        if (r != pi && parts[static_cast<std::size_t>(r)].joined) peer = r;
      if (peer >= 0 && p.cfg.on_campus) {
        auto payload = build_rtcp_payload(s.ssrc, sr, with_sdes, p.p2p_media_seq++, rng);
        Timestamp t_border = p.access->delivery_time(t, 0);
        emit(t_border, net::build_udp(t_border, p.cfg.ip, p.p2p_port,
                                      parts[static_cast<std::size_t>(peer)].cfg.ip,
                                      parts[static_cast<std::size_t>(peer)].p2p_port,
                                      payload));
      }
    } else {
      // Uplink SR.
      if (p.cfg.on_campus && !p.access->drops(t)) {
        auto payload = build_rtcp_payload(s.ssrc, sr, with_sdes, p.media_seq_up[k]++, rng);
        auto wrapped = wrap_sfu(payload, p.sfu_seq_up[k]++, false);
        Timestamp t_border = p.access->delivery_time(t, 0);
        emit(t_border, net::build_udp(t_border, p.cfg.ip, p.server_port[k], cfg.sfu_ip,
                                      zoom::kServerMediaPort, wrapped));
      }
      // SFU forwards the SR alongside the media to each receiver.
      Timestamp t_at_sfu =
          p.wan->delivery_time(p.access->delivery_time(t, 0), 0) + sfu_proc();
      for (int r = 0; r < static_cast<int>(parts.size()); ++r) {
        if (r == pi) continue;
        auto& rx = parts[static_cast<std::size_t>(r)];
        if (!rx.joined || !rx.cfg.on_campus) continue;
        if (rx.wan->drops(t_at_sfu)) continue;
        auto payload = build_rtcp_payload(s.ssrc, sr, with_sdes, rx.media_seq_down[k]++, rng);
        auto wrapped = wrap_sfu(payload, rx.sfu_seq_down[k]++, true);
        Timestamp t_border = rx.wan->delivery_time(t_at_sfu, 1);
        emit(t_border, net::build_udp(t_border, cfg.sfu_ip, zoom::kServerMediaPort,
                                      rx.cfg.ip, rx.server_port[k], wrapped));
      }
    }
    schedule(t + Duration::seconds(1.0), EvKind::RtcpTick, pi, kind_index);
  }

  void on_unknown_tick(Timestamp t, int pi) {
    auto& p = parts[static_cast<std::size_t>(pi)];
    if (!p.joined || t > end_time) return;
    // Undecodable control traffic on the video flow (both directions).
    std::size_t k = ki(zoom::MediaKind::Video);
    static constexpr std::array<std::uint8_t, 4> kTypes = {24, 25, 30, 35};
    std::uint8_t type = kTypes[rng.next_u32() % kTypes.size()];
    auto size = static_cast<std::size_t>(rng.uniform_int(48, 180));
    if (p.cfg.on_campus && !p2p_active()) {
      auto up = build_unknown_payload(type, p.media_seq_up[k]++, size, rng);
      auto up_wrapped = wrap_sfu(up, p.sfu_seq_up[k]++, false);
      Timestamp t_border = t + p.access->sample_delay(t);
      emit(t_border, net::build_udp(t_border, p.cfg.ip, p.server_port[k], cfg.sfu_ip,
                                    zoom::kServerMediaPort, up_wrapped));
      auto down = build_unknown_payload(type, p.media_seq_down[k]++,
                                        static_cast<std::size_t>(rng.uniform_int(48, 180)),
                                        rng);
      auto down_wrapped = wrap_sfu(down, p.sfu_seq_down[k]++, true);
      Timestamp t_down = t + Duration::millis(static_cast<std::int64_t>(rng.uniform(5, 40)));
      emit(t_down, net::build_udp(t_down, cfg.sfu_ip, zoom::kServerMediaPort, p.cfg.ip,
                                  p.server_port[k], down_wrapped));
    } else if (p.cfg.on_campus && p2p_active()) {
      int peer = -1;
      for (int r = 0; r < static_cast<int>(parts.size()); ++r)
        if (r != pi && parts[static_cast<std::size_t>(r)].joined) peer = r;
      if (peer >= 0) {
        // P2P unknown packets still start with a media-encap-style type
        // byte; use a known-but-non-media framing so the dissector keeps
        // the flow (these are rare).
        auto payload = build_unknown_payload(type, p.p2p_media_seq++, size, rng);
        Timestamp t_border = t + p.access->sample_delay(t);
        emit(t_border, net::build_udp(t_border, p.cfg.ip, p.p2p_port,
                                      parts[static_cast<std::size_t>(peer)].cfg.ip,
                                      parts[static_cast<std::size_t>(peer)].p2p_port,
                                      payload));
      }
    }
    // Pace unknown traffic relative to media volume.
    double interval_s = std::clamp(0.02 / std::max(cfg.unknown_packet_fraction, 1e-3),
                                   0.05, 2.0);
    schedule(t + Duration::seconds(rng.exponential(interval_s)), EvKind::UnknownTick, pi);
  }

  void on_tcp_tick(Timestamp t, int pi) {
    auto& p = parts[static_cast<std::size_t>(pi)];
    if (!p.joined || t > end_time) return;
    // Client sends a TLS record; server acks (and sometimes responds).
    auto len = static_cast<std::uint32_t>(rng.uniform_int(80, 420));
    std::vector<std::uint8_t> data(len, 0x17);  // opaque TLS app data
    Timestamp t_border = t + p.access->sample_delay(t);
    emit(t_border, net::build_tcp(t_border, p.cfg.ip, p.tcp_port, cfg.sfu_ip, 443,
                                  p.tcp_client_seq, p.tcp_server_seq,
                                  net::kTcpAck | net::kTcpPsh, data));
    p.tcp_client_seq += len;
    // Server ack crosses the border after a WAN round trip.
    Timestamp t_ack = t_border + p.wan->sample_delay(t_border) +
                      p.wan->sample_delay(t_border);
    emit(t_ack, net::build_tcp(t_ack, cfg.sfu_ip, 443, p.cfg.ip, p.tcp_port,
                               p.tcp_server_seq, p.tcp_client_seq, net::kTcpAck, {}));
    if (rng.chance(0.5)) {
      // Server response data + client ack (client-side RTT for Fig. 11).
      auto rlen = static_cast<std::uint32_t>(rng.uniform_int(60, 300));
      std::vector<std::uint8_t> rdata(rlen, 0x17);
      Timestamp t_resp = t_ack + Duration::millis(static_cast<std::int64_t>(rng.uniform(1, 8)));
      emit(t_resp, net::build_tcp(t_resp, cfg.sfu_ip, 443, p.cfg.ip, p.tcp_port,
                                  p.tcp_server_seq, p.tcp_client_seq,
                                  net::kTcpAck | net::kTcpPsh, rdata));
      p.tcp_server_seq += rlen;
      Timestamp t_cack = t_resp + p.access->sample_delay(t_resp) +
                         p.access->sample_delay(t_resp);
      emit(t_cack, net::build_tcp(t_cack, p.cfg.ip, p.tcp_port, cfg.sfu_ip, 443,
                                  p.tcp_client_seq, p.tcp_server_seq, net::kTcpAck, {}));
    }
    schedule(t + Duration::seconds(rng.exponential(1.2)), EvKind::TcpTick, pi);
  }

  void on_qos_tick(Timestamp t, int pi) {
    auto& p = parts[static_cast<std::size_t>(pi)];
    if (!p.joined || t > end_time) return;
    // Report on the first remote video stream (the validation setup is a
    // two-party call).
    for (int s = 0; s < static_cast<int>(parts.size()); ++s) {
      if (s == pi) continue;
      auto it = p.rx.find({s, static_cast<int>(zoom::MediaKind::Video)});
      if (it == p.rx.end()) continue;
      auto& deliveries = it->second.deliveries;
      Timestamp window_start = t - Duration::seconds(1.0);
      double fps = 0;
      for (auto d : deliveries)
        if (d > window_start && d <= t) fps += 1;
      p.fps_history.push_back(fps);
      while (p.fps_history.size() > 3) p.fps_history.pop_front();
      // Zoom-like smoothing: mean of the last few seconds, so short dips
      // are partially hidden (§5.2 validation discussion).
      double smoothed = 0;
      for (double f : p.fps_history) smoothed += f;
      smoothed /= static_cast<double>(p.fps_history.size());

      // Latency refreshes only every 5 s (§5.3 validation).
      if (p.last_latency_refresh.is_zero() ||
          t - p.last_latency_refresh >= Duration::seconds(5.0)) {
        p.reported_latency_ms = 2.0 * (expected_delay_ms(*p.access, t) +
                                       expected_delay_ms(*p.wan, t));
        p.last_latency_refresh = t;
      }
      // Zoom's jitter is implausibly low and smooth (§5.4): model it as
      // a slowly moving value under 2 ms regardless of congestion.
      p.reported_jitter_ms =
          std::clamp(p.reported_jitter_ms + rng.normal(0.0, 0.05), 0.3, 1.9);
      if (p.reported_jitter_ms == 0.0) p.reported_jitter_ms = 0.8;

      qos.push_back(QosSample{t, pi, zoom::MediaKind::Video, smoothed,
                              p.reported_latency_ms, p.reported_jitter_ms});
      break;
    }
    schedule(t + Duration::seconds(1.0), EvKind::QosTick, pi);
  }

  void on_p2p_switch(Timestamp t, int phase) {
    if (joined_count() != 2 || t > end_time) return;
    if (phase == 1) {
      // Phase 1: STUN pre-flight done, media actually moves to P2P.
      mode = Mode::P2p;
      return;
    }
    // Phase 0 — STUN pre-flight: each client exchanges binding requests
    // with the zone controller from the port the P2P flow will use
    // (§4.1, Fig. 2). Media switches ~600 ms later.
    for (auto& p : parts) {
      if (!p.joined) continue;
      p.p2p_port = alloc_port(p);
      if (!p.cfg.on_campus) continue;  // off-campus STUN is invisible
      Timestamp t_stun = t;
      for (int i = 0; i < 3; ++i) {
        std::array<std::uint8_t, 12> txn{};
        for (auto& b : txn) b = static_cast<std::uint8_t>(rng.next_u32());
        util::ByteWriter req;
        proto::make_binding_request(txn).serialize(req);
        Timestamp t_req = t_stun + p.access->sample_delay(t_stun);
        emit(t_req, net::build_udp(t_req, p.cfg.ip, p.p2p_port,
                                   cfg.zone_controller_ip, proto::kStunPort,
                                   req.view()));
        util::ByteWriter resp;
        proto::make_binding_response(txn, p.cfg.ip, p.p2p_port).serialize(resp);
        Timestamp t_resp = t_req + p.wan->sample_delay(t_req) * 2;
        emit(t_resp, net::build_udp(t_resp, cfg.zone_controller_ip, proto::kStunPort,
                                    p.cfg.ip, p.p2p_port, resp.view()));
        stats.stun_packets += 2;
        t_stun += Duration::millis(150);
      }
    }
    schedule(t + Duration::millis(600), EvKind::P2pSwitch, 0, /*phase=*/1);
  }

  void revert_to_server(Timestamp /*t*/) {
    mode = Mode::Server;
    // Fresh server flows (new ephemeral ports) after the mode switch;
    // RTP-level state (SSRC, seq, ts) carries over — this is what the
    // duplicate-stream matcher keys on (§4.3 step 1).
    for (auto& p : parts) {
      if (!p.joined) continue;
      for (auto& port : p.server_port) port = alloc_port(p);
    }
  }

  void handle(const Event& ev) {
    switch (ev.kind) {
      case EvKind::Join: on_join(ev.t, ev.p); break;
      case EvKind::VideoFrame: on_video_frame(ev.t, ev.p); break;
      case EvKind::AudioPacket: on_audio_packet(ev.t, ev.p); break;
      case EvKind::ScreenFrame: on_screen_frame(ev.t, ev.p); break;
      case EvKind::RtcpTick: on_rtcp_tick(ev.t, ev.p, ev.aux); break;
      case EvKind::UnknownTick: on_unknown_tick(ev.t, ev.p); break;
      case EvKind::TcpTick: on_tcp_tick(ev.t, ev.p); break;
      case EvKind::QosTick: on_qos_tick(ev.t, ev.p); break;
      case EvKind::P2pSwitch: on_p2p_switch(ev.t, ev.aux); break;
      case EvKind::Leave:
        parts[static_cast<std::size_t>(ev.p)].joined = false;
        break;
      case EvKind::RetransUp:
        if (ev.t <= end_time) send_media_packet(ev.t, ev.desc, ev.aux);
        break;
      case EvKind::RetransDown:
        if (ev.t <= end_time)
          forward_to_receiver(ev.t, ev.desc, ev.p, ev.aux);
        break;
    }
  }

  std::optional<net::RawPacket> next_packet() {
    while (true) {
      // Release a pending packet if it cannot be preceded by anything a
      // future event could still emit.
      if (!out.empty() && (events.empty() || out.top().t <= events.top().t)) {
        net::RawPacket pkt = out.top().pkt;
        out.pop();
        return pkt;
      }
      if (events.empty()) return std::nullopt;
      Event ev = events.top();
      events.pop();
      handle(ev);
    }
  }
};

void MeetingSim::Impl::schedule(Timestamp t, EvKind kind, int p, int aux) {
  schedule(t, kind, p, aux, PacketDesc{});
}

// ---------------------------------------------------------------------------
// Public wrapper
// ---------------------------------------------------------------------------

MeetingSim::MeetingSim(MeetingConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}
MeetingSim::~MeetingSim() = default;
MeetingSim::MeetingSim(MeetingSim&&) noexcept = default;
MeetingSim& MeetingSim::operator=(MeetingSim&&) noexcept = default;

std::optional<net::RawPacket> MeetingSim::next_packet() {
  if (!impl_->corruption) return impl_->next_packet();
  return impl_->corruption->next([this] { return impl_->next_packet(); });
}

const CorruptionStats* MeetingSim::corruption_stats() const {
  return impl_->corruption ? &impl_->corruption->corruptor().stats() : nullptr;
}

const std::vector<QosSample>& MeetingSim::qos_samples() const { return impl_->qos; }

const MeetingConfig& MeetingSim::config() const { return impl_->cfg; }

double MeetingSim::nominal_rtt_ms(int participant) const {
  const auto& p = impl_->parts[static_cast<std::size_t>(participant)];
  return 2.0 * (p.access->base_delay_ms() + p.wan->base_delay_ms());
}

const MeetingSim::Stats& MeetingSim::stats() const { return impl_->stats; }

std::vector<net::RawPacket> run_meeting(MeetingConfig config,
                                        std::vector<QosSample>* qos) {
  MeetingSim sim(std::move(config));
  std::vector<net::RawPacket> packets;
  while (auto pkt = sim.next_packet()) packets.push_back(std::move(*pkt));
  if (qos) *qos = sim.qos_samples();
  return packets;
}

}  // namespace zpm::sim
