// Million-flow background-traffic synthesizer: the load a campus tap
// actually carries. The meeting/campus simulators model the *Zoom*
// fraction; this models the other ~99% — an open population of
// non-Zoom UDP flows whose sizes follow a Zipf law (a handful of
// elephants, a vast tail of mice), exactly the regime the sketch tier
// must summarize in O(1) memory.
//
// Packets deliberately avoid every Zoom discriminant (no server
// subnets, no ports 8801/3478), so the capture front end provably
// Rejects all of them: the whole trace exercises the tier's absorb path
// without perturbing the Zoom report (the bit-identity contract
// bench_sketch asserts). Flow endpoints are derived arithmetically from
// the flow rank — O(1) generator state per flow — while *realized*
// per-flow packet/byte tallies are recorded as ground truth for
// heavy-hitter recall measurement.
#pragma once

#include <cstdint>
#include <vector>

#include "net/five_tuple.h"
#include "net/packet.h"
#include "util/rng.h"
#include "util/time.h"

namespace zpm::sim {

/// Configuration for one synthetic background trace.
struct BackgroundConfig {
  std::uint64_t seed = 1;
  /// Distinct concurrent flows; every flow emits at least one packet.
  std::size_t flows = 1'000'000;
  /// Total packets; must be >= 4 * flows for full flow coverage (one in
  /// four packets introduces a new flow until all have appeared).
  std::size_t packets = 4'000'000;
  /// Zipf exponent over flow ranks (rank r drawn with weight r^-s).
  double zipf_s = 1.1;
  util::Timestamp start = util::Timestamp::from_seconds(1000);
  util::Duration duration = util::Duration::seconds(600);
  /// Burst (duty-cycle) mode: when `burst_period` is positive the even
  /// spread over `duration` is replaced by a square wave — packets are
  /// emitted at `burst_high_pps` during the first `burst_duty` fraction
  /// of each period and at `burst_low_pps` for the rest. The trace then
  /// ends when `packets` run out, not at `start + duration`. This is
  /// the overload-governor exercise load: paced replay of a bursty
  /// trace produces real ring-pressure swings.
  util::Duration burst_period = util::Duration::micros(0);
  double burst_duty = 0.25;        ///< high-rate fraction of each period
  double burst_high_pps = 200'000;
  double burst_low_pps = 10'000;
};

/// Realized per-flow load (the generator's ground truth).
struct FlowLoad {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;  ///< wire bytes (whole Ethernet frames)
};

/// See file comment. Streamed: next_batch() synthesizes packets in
/// timestamp order until `config.packets` have been emitted.
class BackgroundTraffic {
 public:
  explicit BackgroundTraffic(BackgroundConfig config);

  /// Appends up to `n` packets to `out` (not cleared). Returns the
  /// number appended; 0 means the trace is exhausted.
  std::size_t next_batch(std::size_t n, std::vector<net::RawPacket>& out);

  /// The 5-tuple of flow `rank` (0-based; lower rank = heavier flow in
  /// expectation). Purely arithmetic, no lookup.
  [[nodiscard]] net::FiveTuple flow(std::size_t rank) const;

  /// Realized per-flow tallies, indexed by rank. Grows as the trace is
  /// generated; final after the last next_batch().
  [[nodiscard]] const std::vector<FlowLoad>& realized() const { return realized_; }

  /// Ranks of the top-`k` flows by realized bytes (ties by rank).
  [[nodiscard]] std::vector<std::size_t> top_flows(std::size_t k) const;

  [[nodiscard]] const BackgroundConfig& config() const { return config_; }
  [[nodiscard]] std::size_t emitted() const { return emitted_; }

 private:
  std::size_t draw_rank();

  BackgroundConfig config_;
  util::Rng rng_;
  std::vector<double> cum_;  ///< Zipf prefix weights for inverse-CDF draws
  std::vector<FlowLoad> realized_;
  std::size_t emitted_ = 0;
  std::size_t next_unseen_ = 0;  ///< next rank owed its first packet
  double burst_cursor_us_ = 0;   ///< burst-mode timestamp cursor
};

}  // namespace zpm::sim
