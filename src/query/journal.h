// Append-only indexed metric journals — the CoMo-style export half of
// the query/export split (DESIGN.md "Query/export architecture").
//
// The epoch pipeline's durable output so far was one monolithic report
// per epoch; answering "what was media RTT for meetings on this site
// between t1 and t2" meant recomputing everything. A *metric journal*
// is the continuous alternative: the daemon appends one compact,
// length-prefixed, CRC32-framed record per (epoch × shard) — per-stream
// and per-meeting metric aggregates with bucketed RTT/jitter/bitrate
// histograms, loss/frame counters, and (on shard 0) the full encoded
// epoch report with its health ledger — and seals the file with a
// footer index (per-record time spans and offsets plus a meeting-key
// dictionary) so a reader can binary-search straight to the records
// overlapping a time window without parsing anything else.
//
// Merge model: every histogram is a capture::OffloadHistogram — 16
// power-of-two buckets, P4TG-style — and every counter is additive, so
// records merge exactly and commutatively across epochs, shards and
// sites. Meetings are keyed by a *content-derived* stable key (the
// minimum client endpoint over the meeting's streams), never by the
// grouper's assignment-order ids, so the same meeting aggregates to the
// same key no matter how a trace was split across sites or shards.
//
// Crash posture: records are flushed as they are appended; the index
// and trailer are written only at graceful drain. A journal that lost
// its index (kill -9) is still fully readable — the reader falls back
// to a sequential scan that resynchronizes on the record marker,
// skipping and *accounting* corrupt bytes, never aborting. A torn tail
// (power loss mid-append) is detected by the per-record CRC and
// reported the same way.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "capture/offload.h"
#include "core/meetings.h"
#include "core/streams.h"
#include "net/five_tuple.h"
#include "net/mapped_file.h"
#include "util/bytes.h"

namespace zpm::query {

inline constexpr std::uint32_t kJournalVersion = 1;

/// Per-stream aggregate row: one tracked media stream's contribution to
/// one epoch. Everything is additive except the identity fields and the
/// time extent (which merge by min/max).
struct StreamRow {
  net::PackedFlowKey flow;  ///< wire 5-tuple as observed
  std::uint32_t ssrc = 0;
  std::uint8_t kind = 0;       ///< zoom::MediaKind
  std::uint8_t transport = 0;  ///< zoom::Transport
  std::uint8_t direction = 0;  ///< core::StreamDirection
  /// Stable content-derived meeting key: min (client_ip << 16 | port)
  /// over the owning meeting's streams this epoch. Identical across
  /// shard counts and across per-site vs merged runs.
  std::uint64_t meeting_key = 0;
  std::uint32_t client_ip = 0;
  std::uint16_t client_port = 0;
  std::int64_t first_us = 0;
  std::int64_t last_us = 0;
  std::uint64_t media_packets = 0;
  std::uint64_t media_payload_bytes = 0;
  // Loss ledger (metrics::LossCounters over all sub-streams).
  std::uint64_t received = 0;
  std::uint64_t unique_packets = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reordered = 0;
  std::uint64_t gap_packets = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t frames = 0;     ///< completed frames (per-second sums)
  std::uint32_t seconds = 0;    ///< per-second records emitted
  std::uint32_t talk_seconds = 0;
  capture::OffloadHistogram rtt_us;       ///< injected RTT samples, µs
  capture::OffloadHistogram jitter_us;    ///< per-second jitter values, µs
  capture::OffloadHistogram bitrate_kbps; ///< per-second media bitrate, kbit/s

  bool operator==(const StreamRow&) const = default;
};

/// Per-meeting aggregate row: one grouped meeting's contribution to one
/// epoch. A meeting appears in exactly one shard record per epoch (the
/// shard owning hash(meeting_key)).
struct MeetingRow {
  std::uint64_t meeting_key = 0;
  std::uint32_t stream_rows = 0;   ///< wire streams assigned this epoch
  std::uint32_t participants = 0;  ///< distinct sending client IPs (lower bound)
  std::uint8_t saw_p2p = 0;
  std::int64_t first_us = 0;
  std::int64_t last_us = 0;
  capture::OffloadHistogram sfu_rtt_us;  ///< §5.3 method-1 samples, µs

  bool operator==(const MeetingRow&) const = default;
};

/// One journal record: epoch seq × shard. Stream rows are partitioned
/// by canonical flow hash, meeting rows by meeting-key hash; shard 0
/// additionally carries the full encoded EpochReport (health ledger,
/// counters, offload registers), so the journal subsumes the per-epoch
/// report files.
struct EpochSlice {
  std::uint64_t seq = 0;
  std::uint32_t shard = 0;
  std::uint32_t shard_count = 1;
  std::uint64_t first_packet = 0;
  std::uint64_t packets = 0;
  std::int64_t first_us = 0;
  std::int64_t last_us = 0;
  std::vector<std::uint8_t> report;  ///< encoded EpochReport; shard 0 only
  std::vector<MeetingRow> meetings;
  std::vector<StreamRow> streams;

  bool operator==(const EpochSlice&) const = default;
  /// Empties the rows but keeps their capacity (decode-into reuse).
  void clear();
};

/// All of one epoch's slices, shard 0 first (what EpochEngine emits per
/// completed epoch when journal collection is on).
using EpochSliceSet = std::vector<EpochSlice>;

/// Deterministic big-endian record payload codec. Equal slices encode
/// to equal bytes; decode reuses `out`'s row capacity and is fully
/// bounds-checked (fuzz_query fixpoint target).
void encode_epoch_slice(const EpochSlice& slice, util::ByteWriter& w);
bool decode_epoch_slice(util::ByteReader& r, EpochSlice& out);

/// Analyzer state a completed (not yet rotated) epoch exposes to the
/// slice builder.
struct SliceSource {
  std::uint64_t seq = 0;
  std::uint64_t first_packet = 0;
  std::uint64_t packets = 0;
  std::int64_t first_us = 0;
  std::int64_t last_us = 0;
  std::uint32_t shard_count = 1;
  /// All streams in global creation order (serial order; the parallel
  /// pipeline's replay-merge already restores it).
  std::span<const core::StreamInfo* const> streams;
  const core::MeetingGrouper* grouper = nullptr;
  /// Encoded EpochReport (the durable form; shard 0 carries it).
  std::span<const std::uint8_t> report;
};

/// Builds `shard_count` slices from one epoch's analyzer state. Row
/// contents are shard-count-invariant; only the partition differs, so
/// any query aggregation that sums across shards is bit-identical
/// between serial and sharded producers.
void build_epoch_slices(const SliceSource& src, EpochSliceSet& out);

// ---------------------------------------------------------------------------
// Journal files

/// Index entry for one record: everything a reader needs to decide
/// overlap and seek, without touching the payload.
struct JournalRecordInfo {
  std::uint64_t seq = 0;
  std::uint32_t shard = 0;
  std::uint64_t offset = 0;     ///< file offset of the record frame
  std::uint64_t frame_len = 0;  ///< marker through payload end
  std::int64_t first_us = 0;
  std::int64_t last_us = 0;
  std::uint64_t packets = 0;
};

/// What a (fallback) scan had to skip. All zero for a healthy indexed
/// journal.
struct JournalScanStats {
  bool used_index = false;
  std::uint64_t corrupt_records = 0;  ///< frames dropped (bad CRC/len)
  std::uint64_t skipped_bytes = 0;    ///< bytes not covered by a good frame
};

/// Appends framed records and seals the footer index. One writer per
/// file; records must arrive in nondecreasing first_us order (epochs
/// are produced in time order, so this is free).
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Creates `path` (truncating) and writes the header.
  bool open(const std::string& path, const std::string& site,
            std::uint32_t shard_count, std::string* error);
  /// Appends one record frame and flushes it to the OS, so a crash
  /// after append() never loses the record (per-record CRC framing is
  /// the journal's torn-write detection; whole-file atomicity is
  /// impossible for an append-only format).
  bool append(const EpochSlice& slice, std::string* error);
  /// Writes the footer index record + fixed trailer, fsyncs and closes.
  bool finalize(std::string* error);
  /// Closes without index/trailer (tests simulate a crash).
  void abandon();

  [[nodiscard]] bool is_open() const { return file_ != nullptr; }
  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::size_t records() const { return index_.size(); }
  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  /// Time extent over appended records (0/0 when empty).
  [[nodiscard]] std::int64_t first_us() const { return first_us_; }
  [[nodiscard]] std::int64_t last_us() const { return last_us_; }

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
  std::uint64_t write_offset_ = 0;
  std::vector<JournalRecordInfo> index_;
  /// meeting_key -> record indices (footer dictionary), gathered as
  /// records are appended.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> meeting_refs_;
  std::uint64_t epochs_ = 0;
  std::uint64_t last_epoch_seq_ = 0;
  bool any_epoch_ = false;
  std::int64_t first_us_ = 0;
  std::int64_t last_us_ = 0;
};

/// mmap-backed reader. Prefers the footer index (seek without scanning);
/// falls back to a marker-resynchronizing sequential scan when the
/// index is missing or invalid. Never aborts on corruption — bad frames
/// are skipped and accounted in scan_stats().
class JournalReader {
 public:
  /// Maps `path`. False on open/mmap failure or a bad file header
  /// (anything less is skip-and-account, not failure).
  bool open(const std::string& path, std::string* error);
  /// Same, over an in-memory image (fuzzing/tests). The span must
  /// outlive the reader.
  bool open_bytes(std::span<const std::uint8_t> bytes, std::string* error);

  [[nodiscard]] const std::string& site() const { return site_; }
  [[nodiscard]] std::uint32_t shard_count() const { return shard_count_; }
  [[nodiscard]] const std::vector<JournalRecordInfo>& records() const {
    return records_;
  }
  [[nodiscard]] const JournalScanStats& scan_stats() const { return stats_; }

  /// Smallest [begin, end) index range whose records can overlap the
  /// closed window [from_us, to_us]. Binary search over the
  /// time-ordered index — O(log n) + range size, never O(records).
  [[nodiscard]] std::pair<std::size_t, std::size_t> select(
      std::int64_t from_us, std::int64_t to_us) const;

  /// Validates (CRC) and decodes record `i` into `out`, reusing its
  /// capacity. False when the payload is corrupt — count and skip.
  bool read(std::size_t i, EpochSlice& out) const;

  /// Record indices whose slices carry `meeting_key` (footer
  /// dictionary). Empty when unknown or when the journal had no index.
  [[nodiscard]] std::span<const std::uint32_t> records_for_meeting(
      std::uint64_t meeting_key) const;

 private:
  bool parse(std::string* error);
  bool try_index();
  void scan();

  net::MappedFile map_;
  std::span<const std::uint8_t> bytes_;
  std::string site_;
  std::uint32_t shard_count_ = 1;
  std::size_t body_begin_ = 0;  ///< first byte after the header
  std::vector<JournalRecordInfo> records_;
  /// Footer dictionary: key-sorted entries pointing into dict_refs_.
  struct DictEntry {
    std::uint64_t key = 0;
    std::uint32_t begin = 0;  ///< offset into dict_refs_
    std::uint32_t count = 0;
  };
  std::vector<DictEntry> dict_;
  std::vector<std::uint32_t> dict_refs_;  ///< contiguous per-key indices
  JournalScanStats stats_;
};

// ---------------------------------------------------------------------------
// MANIFEST

/// One journal file a report directory advertises.
struct ManifestEntry {
  std::string path;  ///< relative to the manifest's directory
  std::string site;
  std::int64_t first_us = 0;
  std::int64_t last_us = 0;
  std::uint64_t epochs = 0;
  std::uint64_t records = 0;

  bool operator==(const ManifestEntry&) const = default;
};

/// The `MANIFEST` file campus_monitor --report-dir maintains (rewritten
/// atomically at every rotation): journal paths + epoch time spans, so
/// zpm_query discovers its inputs without directory scans.
struct Manifest {
  std::vector<ManifestEntry> entries;

  bool operator==(const Manifest&) const = default;
};

/// Line-oriented text codec. parse accepts unknown lines (forward
/// compatibility) and is fixpoint-stable: parse(format(parse(x))) ==
/// parse(x) for any accepted x (fuzz_query).
std::string format_manifest(const Manifest& manifest);
bool parse_manifest(std::string_view text, Manifest& out);

/// Reads/writes `<dir>/MANIFEST`; save goes through
/// util::write_file_atomic so a crash never leaves a torn manifest.
bool load_manifest(const std::string& dir, Manifest& out, std::string* error);
bool save_manifest(const Manifest& manifest, const std::string& dir,
                   std::string* error);

}  // namespace zpm::query
