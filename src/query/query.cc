#include "query/query.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <tuple>

namespace zpm::query {

namespace {

/// splitmix64 — the same finalizer family as canonical_flow_hash; good
/// avalanche for open addressing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

bool parse_i64(std::string_view value, std::int64_t& out) {
  if (value.empty() || value.size() > 20) return false;
  char buf[24];
  std::memcpy(buf, value.data(), value.size());
  buf[value.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf, &end, 10);
  if (errno != 0 || end != buf + value.size()) return false;
  out = v;
  return true;
}

bool parse_u64(std::string_view value, std::uint64_t& out) {
  if (value.empty() || value.size() > 20 || value[0] == '-') return false;
  char buf[24];
  std::memcpy(buf, value.data(), value.size());
  buf[value.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf, &end, 10);
  if (errno != 0 || end != buf + value.size()) return false;
  out = v;
  return true;
}

/// Upper bound of offload bucket b in the histogram's unit.
std::uint64_t bucket_upper(std::size_t b) {
  return std::uint64_t{1} << (b + 1);
}

}  // namespace

std::string_view metric_name(QueryMetric metric) {
  switch (metric) {
    case QueryMetric::Rtt: return "rtt";
    case QueryMetric::Jitter: return "jitter";
    case QueryMetric::Bitrate: return "bitrate";
    case QueryMetric::SfuRtt: return "sfu-rtt";
  }
  return "rtt";
}

std::string_view group_name(QueryGroupBy group) {
  switch (group) {
    case QueryGroupBy::All: return "all";
    case QueryGroupBy::Meeting: return "meeting";
    case QueryGroupBy::Site: return "site";
  }
  return "all";
}

std::string format_query_request(const QueryRequest& request) {
  char buf[160];
  int n = std::snprintf(buf, sizeof(buf),
                        "from=%lld;to=%lld;metric=%.*s;group=%.*s",
                        static_cast<long long>(request.from_us),
                        static_cast<long long>(request.to_us),
                        static_cast<int>(metric_name(request.metric).size()),
                        metric_name(request.metric).data(),
                        static_cast<int>(group_name(request.group).size()),
                        group_name(request.group).data());
  std::string out(buf, static_cast<std::size_t>(n));
  if (request.has_meeting) {
    n = std::snprintf(buf, sizeof(buf), ";meeting=%llu",
                      static_cast<unsigned long long>(request.meeting_key));
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

bool parse_query_request(std::string_view text, QueryRequest& out) {
  out = QueryRequest{};
  while (!text.empty()) {
    std::size_t sep = text.find(';');
    const std::string_view field = text.substr(0, sep);
    text = sep == std::string_view::npos ? std::string_view{}
                                         : text.substr(sep + 1);
    if (field.empty()) return false;
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) return false;
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    if (key == "from") {
      if (!parse_i64(value, out.from_us)) return false;
    } else if (key == "to") {
      if (!parse_i64(value, out.to_us)) return false;
    } else if (key == "metric") {
      if (value == "rtt") out.metric = QueryMetric::Rtt;
      else if (value == "jitter") out.metric = QueryMetric::Jitter;
      else if (value == "bitrate") out.metric = QueryMetric::Bitrate;
      else if (value == "sfu-rtt") out.metric = QueryMetric::SfuRtt;
      else return false;
    } else if (key == "group") {
      if (value == "all") out.group = QueryGroupBy::All;
      else if (value == "meeting") out.group = QueryGroupBy::Meeting;
      else if (value == "site") out.group = QueryGroupBy::Site;
      else return false;
    } else if (key == "meeting") {
      if (!parse_u64(value, out.meeting_key)) return false;
      out.has_meeting = true;
    } else {
      return false;
    }
  }
  return out.from_us <= out.to_us;
}

std::uint64_t histogram_quantile_upper(const capture::OffloadHistogram& hist,
                                       double q) {
  if (hist.samples == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(hist.samples) + 0.5);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < capture::kOffloadBuckets; ++b) {
    cum += hist.buckets[b];
    if (cum >= target) return bucket_upper(b);
  }
  return bucket_upper(capture::kOffloadBuckets - 1);
}

void encode_query_result(const QueryResult& result, util::ByteWriter& w) {
  const std::string request = format_query_request(result.request);
  w.u32be(static_cast<std::uint32_t>(request.size()));
  w.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(request.data()), request.size()));
  w.u64be(result.epochs);
  w.u32be(static_cast<std::uint32_t>(result.groups.size()));
  for (const auto& g : result.groups) {
    w.u64be(g.key);
    w.u32be(static_cast<std::uint32_t>(g.site.size()));
    w.bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(g.site.data()), g.site.size()));
    for (const std::uint64_t b : g.hist.buckets) w.u64be(b);
    w.u64be(g.hist.samples);
    w.u64be(g.stream_rows);
    w.u64be(g.meeting_rows);
    w.u64be(g.meetings);
    w.u32be(g.participants);
    w.u8(g.saw_p2p);
    w.u64be(g.media_packets);
    w.u64be(g.media_payload_bytes);
    w.u64be(g.received);
    w.u64be(g.unique_packets);
    w.u64be(g.duplicates);
    w.u64be(g.reordered);
    w.u64be(g.gap_packets);
    w.u64be(g.retransmissions);
    w.u64be(g.frames);
    w.u64be(g.talk_seconds);
  }
}

std::string render_query_result(const QueryResult& result) {
  std::string out = "query " + format_query_request(result.request) + "\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "epochs=%llu groups=%zu records_read=%llu corrupt=%llu\n",
                static_cast<unsigned long long>(result.epochs),
                result.groups.size(),
                static_cast<unsigned long long>(result.records_read),
                static_cast<unsigned long long>(result.records_corrupt));
  out += buf;
  const std::string_view unit =
      result.request.metric == QueryMetric::Bitrate ? "kbps" : "us";
  for (const auto& g : result.groups) {
    switch (result.request.group) {
      case QueryGroupBy::All:
        out += "group all";
        break;
      case QueryGroupBy::Meeting:
        std::snprintf(buf, sizeof(buf), "group meeting=%llu",
                      static_cast<unsigned long long>(g.key));
        out += buf;
        break;
      case QueryGroupBy::Site:
        out += "group site=" + (g.site.empty() ? "?" : g.site);
        break;
    }
    std::snprintf(
        buf, sizeof(buf),
        " samples=%llu p50<=%llu%.*s p90<=%llu%.*s p99<=%llu%.*s\n",
        static_cast<unsigned long long>(g.hist.samples),
        static_cast<unsigned long long>(histogram_quantile_upper(g.hist, 0.50)),
        static_cast<int>(unit.size()), unit.data(),
        static_cast<unsigned long long>(histogram_quantile_upper(g.hist, 0.90)),
        static_cast<int>(unit.size()), unit.data(),
        static_cast<unsigned long long>(histogram_quantile_upper(g.hist, 0.99)),
        static_cast<int>(unit.size()), unit.data());
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  streams=%llu meetings=%llu participants<=%u p2p=%u "
        "media_pkts=%llu frames=%llu talk_s=%llu\n",
        static_cast<unsigned long long>(g.stream_rows),
        static_cast<unsigned long long>(g.meetings), g.participants,
        g.saw_p2p, static_cast<unsigned long long>(g.media_packets),
        static_cast<unsigned long long>(g.frames),
        static_cast<unsigned long long>(g.talk_seconds));
    out += buf;
    std::snprintf(
        buf, sizeof(buf),
        "  loss: recv=%llu uniq=%llu dup=%llu reord=%llu gap=%llu rtx=%llu\n",
        static_cast<unsigned long long>(g.received),
        static_cast<unsigned long long>(g.unique_packets),
        static_cast<unsigned long long>(g.duplicates),
        static_cast<unsigned long long>(g.reordered),
        static_cast<unsigned long long>(g.gap_packets),
        static_cast<unsigned long long>(g.retransmissions));
    out += buf;
    if (g.hist.samples > 0) {
      out += "  cdf:";
      std::uint64_t cum = 0;
      for (std::size_t b = 0; b < capture::kOffloadBuckets; ++b) {
        cum += g.hist.buckets[b];
        if (g.hist.buckets[b] == 0) continue;
        std::snprintf(buf, sizeof(buf), " <=%llu:%0.1f%%",
                      static_cast<unsigned long long>(bucket_upper(b)),
                      100.0 * static_cast<double>(cum) /
                          static_cast<double>(g.hist.samples));
        out += buf;
      }
      out += '\n';
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// QueryEngine

void QueryEngine::FlatMap::clear() {
  std::fill(used_.begin(), used_.end(), 0);
  size_ = 0;
}

void QueryEngine::FlatMap::grow() {
  const std::size_t cap = keys_.empty() ? 64 : keys_.size() * 2;
  std::vector<std::uint64_t> keys(cap);
  std::vector<std::uint32_t> vals(cap);
  std::vector<std::uint8_t> used(cap, 0);
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (!used_[i]) continue;
    std::size_t slot = mix64(keys_[i]) & (cap - 1);
    while (used[slot]) slot = (slot + 1) & (cap - 1);
    keys[slot] = keys_[i];
    vals[slot] = vals_[i];
    used[slot] = 1;
  }
  keys_.swap(keys);
  vals_.swap(vals);
  used_.swap(used);
}

std::uint32_t QueryEngine::FlatMap::find_or_insert(std::uint64_t key,
                                                   std::uint32_t fresh,
                                                   bool& inserted) {
  if (keys_.empty() || size_ * 10 >= keys_.size() * 7) grow();
  std::size_t slot = mix64(key) & (keys_.size() - 1);
  while (used_[slot]) {
    if (keys_[slot] == key) {
      inserted = false;
      return vals_[slot];
    }
    slot = (slot + 1) & (keys_.size() - 1);
  }
  keys_[slot] = key;
  vals_[slot] = fresh;
  used_[slot] = 1;
  ++size_;
  inserted = true;
  return fresh;
}

void QueryEngine::begin(const QueryRequest& request,
                        std::span<const std::string> site_names) {
  request_ = request;
  site_names_.assign(site_names.begin(), site_names.end());
  groups_.clear();
  group_index_.clear();
  distinct_.clear();
  epochs_ = 0;
  any_epoch_ = false;
  last_site_ = 0;
  last_seq_ = 0;
}

bool QueryEngine::meeting_excluded(std::uint64_t meeting_key) const {
  return request_.has_meeting && meeting_key != request_.meeting_key;
}

QueryGroup& QueryEngine::group_for(std::uint64_t key, std::uint32_t site) {
  bool inserted = false;
  const std::uint32_t idx = group_index_.find_or_insert(
      key, static_cast<std::uint32_t>(groups_.size()), inserted);
  if (inserted) {
    groups_.emplace_back();
    groups_.back().key = key;
    if (request_.group == QueryGroupBy::Site && site < site_names_.size())
      groups_.back().site = site_names_[site];
  }
  return groups_[idx];
}

void QueryEngine::add_slice(const EpochSlice& slice, std::uint32_t site) {
  if (!any_epoch_ || site != last_site_ || slice.seq != last_seq_) {
    ++epochs_;
    any_epoch_ = true;
    last_site_ = site;
    last_seq_ = slice.seq;
  }
  for (const auto& m : slice.meetings) {
    if (meeting_excluded(m.meeting_key)) continue;
    std::uint64_t key = 0;
    if (request_.group == QueryGroupBy::Meeting) key = m.meeting_key;
    else if (request_.group == QueryGroupBy::Site) key = site;
    QueryGroup& g = group_for(key, site);
    ++g.meeting_rows;
    bool inserted = false;
    distinct_.find_or_insert(mix64(key) ^ m.meeting_key, 1, inserted);
    if (inserted) ++g.meetings;
    g.participants = std::max(g.participants, m.participants);
    g.saw_p2p |= m.saw_p2p;
    if (request_.metric == QueryMetric::SfuRtt) g.hist.merge(m.sfu_rtt_us);
  }
  for (const auto& s : slice.streams) {
    if (meeting_excluded(s.meeting_key)) continue;
    std::uint64_t key = 0;
    if (request_.group == QueryGroupBy::Meeting) key = s.meeting_key;
    else if (request_.group == QueryGroupBy::Site) key = site;
    QueryGroup& g = group_for(key, site);
    ++g.stream_rows;
    g.media_packets += s.media_packets;
    g.media_payload_bytes += s.media_payload_bytes;
    g.received += s.received;
    g.unique_packets += s.unique_packets;
    g.duplicates += s.duplicates;
    g.reordered += s.reordered;
    g.gap_packets += s.gap_packets;
    g.retransmissions += s.retransmissions;
    g.frames += s.frames;
    g.talk_seconds += s.talk_seconds;
    switch (request_.metric) {
      case QueryMetric::Rtt: g.hist.merge(s.rtt_us); break;
      case QueryMetric::Jitter: g.hist.merge(s.jitter_us); break;
      case QueryMetric::Bitrate: g.hist.merge(s.bitrate_kbps); break;
      case QueryMetric::SfuRtt: break;  // meeting rows carry it
    }
  }
}

void QueryEngine::finish(QueryResult& out) {
  out.request = request_;
  out.epochs = epochs_;
  out.groups = std::move(groups_);
  groups_.clear();
  std::sort(out.groups.begin(), out.groups.end(),
            [](const QueryGroup& a, const QueryGroup& b) {
              return a.key < b.key;
            });
}

// ---------------------------------------------------------------------------
// run_query

namespace {

/// One reader's contribution to the k-way merge: the record range
/// overlapping the window (or, under a meeting filter with a
/// dictionary, only that meeting's records inside the range).
struct Cursor {
  const JournalReader* reader = nullptr;
  std::uint32_t site = 0;
  std::size_t next = 0;
  std::size_t end = 0;
  std::span<const std::uint32_t> refs;  ///< dictionary mode when non-empty
  std::size_t ref_next = 0;

  [[nodiscard]] bool done() const {
    return refs.empty() ? next >= end : ref_next >= refs.size();
  }
  [[nodiscard]] std::size_t record_index() const {
    return refs.empty() ? next : refs[ref_next];
  }
  void advance() {
    if (refs.empty()) ++next;
    else ++ref_next;
  }
};

}  // namespace

bool run_query(const QueryRequest& request,
               std::span<JournalReader* const> readers,
               std::span<const std::uint32_t> site_of,
               std::span<const std::string> site_names, QueryResult& out,
               std::string* error) {
  if (readers.size() != site_of.size()) {
    if (error != nullptr) *error = "readers/site_of size mismatch";
    return false;
  }
  QueryEngine engine;
  engine.begin(request, site_names);
  out = QueryResult{};

  std::vector<Cursor> cursors;
  cursors.reserve(readers.size());
  for (std::size_t i = 0; i < readers.size(); ++i) {
    Cursor c;
    c.reader = readers[i];
    c.site = site_of[i];
    const auto [begin, end] = readers[i]->select(request.from_us, request.to_us);
    c.next = begin;
    c.end = end;
    if (request.has_meeting && readers[i]->scan_stats().used_index) {
      // Dictionary mode: only this meeting's records, clipped to the
      // window range (refs are in record order, records time-ordered).
      const auto refs = readers[i]->records_for_meeting(request.meeting_key);
      std::size_t lo = 0;
      std::size_t hi = refs.size();
      while (lo < hi && refs[lo] < begin) ++lo;
      while (hi > lo && refs[hi - 1] >= end) --hi;
      c.refs = refs.subspan(lo, hi - lo);
      c.ref_next = 0;
      if (c.refs.empty()) c.next = c.end;  // nothing for this reader
    }
    if (!c.done()) cursors.push_back(c);
  }

  // K-way merge in (first_us, site, seq, shard) order. Aggregation is
  // commutative, so the order only pins down deterministic epoch
  // counting; a heap would save comparisons but reader counts are
  // small (sites, not shards).
  EpochSlice scratch;
  while (true) {
    Cursor* best = nullptr;
    const JournalRecordInfo* best_info = nullptr;
    for (auto& c : cursors) {
      if (c.done()) continue;
      const JournalRecordInfo& info = c.reader->records()[c.record_index()];
      if (best == nullptr ||
          std::tuple(info.first_us, c.site, info.seq, info.shard) <
              std::tuple(best_info->first_us, best->site, best_info->seq,
                         best_info->shard)) {
        best = &c;
        best_info = &info;
      }
    }
    if (best == nullptr) break;
    // select() guarantees overlap only in index mode (where last_us is
    // validated nondecreasing). A scanned spliced/hostile file can put
    // a non-overlapping record inside the range; re-check with the same
    // predicate recompute_query_result uses, so such records are
    // excluded rather than folded into the answer.
    if (best_info->last_us < request.from_us ||
        best_info->first_us > request.to_us) {
      best->advance();
      continue;
    }
    if (best->reader->read(best->record_index(), scratch)) {
      ++out.records_read;
      engine.add_slice(scratch, best->site);
    } else {
      ++out.records_corrupt;
    }
    best->advance();
  }

  engine.finish(out);
  return true;
}

bool run_query_on_manifest(const QueryRequest& request, const Manifest& manifest,
                           const std::string& dir, QueryResult& out,
                           std::size_t* skipped, std::string* error) {
  std::vector<std::unique_ptr<JournalReader>> owned;
  std::vector<JournalReader*> readers;
  std::vector<std::uint32_t> site_of;
  std::vector<std::string> site_names;
  std::size_t bad = 0;
  std::string first_error;
  for (const auto& entry : manifest.entries) {
    // Manifest spans let us skip whole journals without even mapping
    // them when they cannot overlap the window.
    if (entry.records > 0 &&
        (entry.last_us < request.from_us || entry.first_us > request.to_us)) {
      continue;
    }
    auto reader = std::make_unique<JournalReader>();
    std::string err;
    const std::string path = entry.path.starts_with('/')
                                 ? entry.path
                                 : dir + "/" + entry.path;
    if (!reader->open(path, &err)) {
      ++bad;
      if (first_error.empty()) first_error = err;
      continue;
    }
    const std::string& site =
        entry.site.empty() ? reader->site() : entry.site;
    std::uint32_t site_idx = 0;
    for (; site_idx < site_names.size(); ++site_idx)
      if (site_names[site_idx] == site) break;
    if (site_idx == site_names.size()) site_names.push_back(site);
    site_of.push_back(site_idx);
    readers.push_back(reader.get());
    owned.push_back(std::move(reader));
  }
  if (skipped != nullptr) *skipped = bad;
  if (readers.empty() && bad > 0) {
    if (error != nullptr) *error = "no readable journals: " + first_error;
    return false;
  }
  if (!run_query(request, readers, site_of, site_names, out, error))
    return false;
  for (const auto& r : owned) {
    out.records_corrupt += r->scan_stats().corrupt_records;
  }
  return true;
}

}  // namespace zpm::query
