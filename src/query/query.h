// Time-windowed CDF/summary queries over metric journals — the query
// half of the CoMo-style export/query split (see journal.h for the
// export half and DESIGN.md "Query/export architecture").
//
// A query names a closed time window, a metric (RTT, jitter, bitrate,
// or SFU RTT), a grouping (all / per-meeting / per-site) and an
// optional meeting filter. run_query() answers it from N mmap'd
// journals: each reader's footer index is binary-searched for the
// records overlapping the window (select()), the per-reader ranges are
// k-way merged in (first_us, site, seq, shard) order, and only those
// records are decoded. A 1-epoch window over a 100-epoch journal
// touches ~1/100th of the file (bench_query enforces ≥10x vs full
// recompute).
//
// Aggregation is exact, not approximate merge: every histogram is a
// capture::OffloadHistogram and every counter additive (min/max for
// time extents, max for participants, OR for flags), so the result is
// bit-identical whether the same epochs came from one serial journal,
// a sharded one, or several per-site journals — and identical to a
// monolithic recompute over the same window
// (analysis::recompute_query_result, the reference path).
//
// The aggregation hot path performs no steady-state allocations: slices
// decode into a reused scratch record and group/distinct-meeting
// lookups use open-addressed flat tables that only grow (bench_query's
// counting allocator enforces zero).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "query/journal.h"
#include "util/bytes.h"

namespace zpm::query {

enum class QueryMetric : std::uint8_t {
  Rtt = 0,      ///< per-stream injected RTT samples, µs
  Jitter = 1,   ///< per-stream per-second jitter, µs
  Bitrate = 2,  ///< per-stream per-second media bitrate, kbit/s
  SfuRtt = 3,   ///< per-meeting §5.3 method-1 SFU RTT samples, µs
};

enum class QueryGroupBy : std::uint8_t {
  All = 0,      ///< one group over everything
  Meeting = 1,  ///< one group per stable meeting key
  Site = 2,     ///< one group per journal site
};

[[nodiscard]] std::string_view metric_name(QueryMetric metric);
[[nodiscard]] std::string_view group_name(QueryGroupBy group);

/// A query, with a canonical text form so requests round-trip through
/// the CLI, logs and the fuzzer:
///   from=<i64>;to=<i64>;metric=rtt|jitter|bitrate|sfu-rtt;
///   group=all|meeting|site[;meeting=<u64>]
/// The window is closed ([from_us, to_us], µs since epoch) and selects
/// whole epochs by span overlap — the epoch is the aggregation quantum.
struct QueryRequest {
  std::int64_t from_us = 0;
  std::int64_t to_us = std::numeric_limits<std::int64_t>::max();
  QueryMetric metric = QueryMetric::Rtt;
  QueryGroupBy group = QueryGroupBy::All;
  bool has_meeting = false;       ///< filter to one meeting key
  std::uint64_t meeting_key = 0;  ///< valid when has_meeting

  bool operator==(const QueryRequest&) const = default;
};

/// Canonical text codec: format() always emits every field in fixed
/// order; parse() accepts any order, rejects unknown keys and malformed
/// values, and is a fixpoint with format() (fuzz_query).
[[nodiscard]] std::string format_query_request(const QueryRequest& request);
bool parse_query_request(std::string_view text, QueryRequest& out);

/// One aggregation group of a result. All counters are sums over the
/// selected records' rows; merging two groups with the same key is
/// field-wise add (max for participants, OR for saw_p2p).
struct QueryGroup {
  std::uint64_t key = 0;  ///< 0 (all), meeting key, or site index
  std::string site;       ///< set when grouping by site
  capture::OffloadHistogram hist;  ///< the requested metric's samples
  std::uint64_t stream_rows = 0;
  std::uint64_t meeting_rows = 0;
  std::uint64_t meetings = 0;  ///< distinct meeting keys (exact)
  std::uint32_t participants = 0;  ///< max concurrent lower bound
  std::uint8_t saw_p2p = 0;
  std::uint64_t media_packets = 0;
  std::uint64_t media_payload_bytes = 0;
  std::uint64_t received = 0;
  std::uint64_t unique_packets = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reordered = 0;
  std::uint64_t gap_packets = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t frames = 0;
  std::uint64_t talk_seconds = 0;

  bool operator==(const QueryGroup&) const = default;
};

struct QueryResult {
  QueryRequest request;
  std::uint64_t epochs = 0;  ///< distinct (site, epoch seq) pairs seen
  std::vector<QueryGroup> groups;  ///< sorted by key ascending
  // Provenance, deliberately excluded from encode_query_result() so the
  // journal path and the recompute reference path (which never scans a
  // file) can be compared byte-for-byte.
  std::uint64_t records_read = 0;
  std::uint64_t records_corrupt = 0;

  bool operator==(const QueryResult&) const = default;
};

/// Deterministic encoding of a result (request in canonical text form,
/// epochs, groups in key order). Two results that encode equal are the
/// same answer — this is the bit-identity oracle used by tests and
/// bench_query.
void encode_query_result(const QueryResult& result, util::ByteWriter& w);

/// Human-readable rendering: summary line, then one block per group
/// with p50/p90/p99 (bucket upper bounds) and the non-empty CDF rows.
[[nodiscard]] std::string render_query_result(const QueryResult& result);

/// Upper bound (µs or kbit/s — bucket units) below which at least
/// fraction `q` (0..1] of the histogram's samples fall; 0 when empty.
[[nodiscard]] std::uint64_t histogram_quantile_upper(
    const capture::OffloadHistogram& hist, double q);

/// Streaming aggregator. begin() resets but keeps all table capacity,
/// so a reused engine's add_slice() path allocates only while tables
/// grow past their historical high-water mark — zero in steady state.
class QueryEngine {
 public:
  /// `site_names[i]` labels site index i (shown when grouping by site;
  /// sites are identified by index everywhere else).
  void begin(const QueryRequest& request,
             std::span<const std::string> site_names);
  /// Folds one record's rows into the groups. Slices must arrive
  /// grouped by (site, seq) — the k-way merge order and the recompute
  /// path's natural order both satisfy this — so epoch counting is a
  /// transition count, not a set.
  void add_slice(const EpochSlice& slice, std::uint32_t site);
  /// Sorts groups by key and moves the aggregate into `out`.
  void finish(QueryResult& out);

 private:
  /// Open-addressed u64 -> u32 map with power-of-two probing; grows
  /// only, never shrinks (steady-state zero-alloc).
  class FlatMap {
   public:
    void clear();
    /// Returns the value for `key`, inserting `fresh` when absent;
    /// `inserted` reports which happened.
    std::uint32_t find_or_insert(std::uint64_t key, std::uint32_t fresh,
                                 bool& inserted);

   private:
    void grow();
    std::vector<std::uint64_t> keys_;
    std::vector<std::uint32_t> vals_;
    std::vector<std::uint8_t> used_;
    std::size_t size_ = 0;
  };

  QueryGroup& group_for(std::uint64_t key, std::uint32_t site);
  [[nodiscard]] bool meeting_excluded(std::uint64_t meeting_key) const;

  QueryRequest request_;
  std::vector<std::string> site_names_;
  std::vector<QueryGroup> groups_;
  FlatMap group_index_;    ///< group key -> index into groups_
  FlatMap distinct_;       ///< mix(group key, meeting key) -> 1 (set)
  std::uint64_t epochs_ = 0;
  bool any_epoch_ = false;
  std::uint32_t last_site_ = 0;
  std::uint64_t last_seq_ = 0;
};

/// Answers `request` from already-open readers; `site_of[i]` maps
/// reader i to its site index and `site_names` labels the sites (pass
/// one name per site; readers of the same site share an index). Records
/// outside the window are never decoded; when the request filters to
/// one meeting and a reader has a footer dictionary, records without
/// that meeting are skipped too. Corrupt records are counted in
/// `out.records_corrupt`, never fatal.
bool run_query(const QueryRequest& request,
               std::span<JournalReader* const> readers,
               std::span<const std::uint32_t> site_of,
               std::span<const std::string> site_names, QueryResult& out,
               std::string* error);

/// Convenience: opens every journal in `manifest` (paths relative to
/// `dir`), assigns site indices by first appearance of each site name,
/// and runs the query. Unreadable journals are skipped and reported via
/// `skipped` (count), not fatal — unless *all* fail.
bool run_query_on_manifest(const QueryRequest& request, const Manifest& manifest,
                           const std::string& dir, QueryResult& out,
                           std::size_t* skipped, std::string* error);

}  // namespace zpm::query
