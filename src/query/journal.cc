#include "query/journal.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unordered_map>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "util/crc32.h"
#include "util/fsio.h"

namespace zpm::query {

namespace {

constexpr std::uint8_t kHeaderMagic[4] = {'Z', 'P', 'M', 'J'};
constexpr std::uint8_t kRecordMarker[4] = {'Z', 'J', 'R', 'C'};
constexpr std::uint8_t kTrailerMagic[4] = {'Z', 'P', 'M', 'X'};

constexpr std::uint8_t kKindSlice = 1;
constexpr std::uint8_t kKindIndex = 2;

/// marker(4) + kind(1) + payload_len(8) + crc32(4).
constexpr std::size_t kFrameOverhead = 17;
/// index_offset(8) + index_frame_len(8) + crc32(4) + magic(4).
constexpr std::size_t kTrailerLen = 24;

/// Fixed encoded sizes (for can_read() pre-checks on hostile counts).
constexpr std::size_t kHistogramBytes = (capture::kOffloadBuckets + 1) * 8;
constexpr std::size_t kStreamRowBytes =
    16 + 4 + 3 + 8 + 4 + 2 + 16 + 16 + 48 + 8 + 4 + 4 + 3 * kHistogramBytes;
constexpr std::size_t kMeetingRowBytes = 8 + 4 + 4 + 1 + 16 + kHistogramBytes;
constexpr std::size_t kIndexEntryBytes = 8 + 4 + 8 + 8 + 8 + 8 + 8;

void encode_histogram(const capture::OffloadHistogram& h, util::ByteWriter& w) {
  for (const std::uint64_t b : h.buckets) w.u64be(b);
  w.u64be(h.samples);
}

bool decode_histogram(util::ByteReader& r, capture::OffloadHistogram& h) {
  std::uint64_t sum = 0;
  for (auto& b : h.buckets) {
    b = r.u64be();
    sum += b;  // wraparound is fine; the check below compares wrapped
  }
  h.samples = r.u64be();
  // The sample count is redundant with the bucket sum; a mismatch means
  // a corrupt or hand-crafted record.
  return r.ok() && h.samples == sum;
}

void encode_stream_row(const StreamRow& row, util::ByteWriter& w) {
  w.u64be(row.flow.k1);
  w.u64be(row.flow.k2);
  w.u32be(row.ssrc);
  w.u8(row.kind);
  w.u8(row.transport);
  w.u8(row.direction);
  w.u64be(row.meeting_key);
  w.u32be(row.client_ip);
  w.u16be(row.client_port);
  w.u64be(static_cast<std::uint64_t>(row.first_us));
  w.u64be(static_cast<std::uint64_t>(row.last_us));
  w.u64be(row.media_packets);
  w.u64be(row.media_payload_bytes);
  w.u64be(row.received);
  w.u64be(row.unique_packets);
  w.u64be(row.duplicates);
  w.u64be(row.reordered);
  w.u64be(row.gap_packets);
  w.u64be(row.retransmissions);
  w.u64be(row.frames);
  w.u32be(row.seconds);
  w.u32be(row.talk_seconds);
  encode_histogram(row.rtt_us, w);
  encode_histogram(row.jitter_us, w);
  encode_histogram(row.bitrate_kbps, w);
}

bool decode_stream_row(util::ByteReader& r, StreamRow& row) {
  row.flow.k1 = r.u64be();
  row.flow.k2 = r.u64be();
  row.ssrc = r.u32be();
  row.kind = r.u8();
  row.transport = r.u8();
  row.direction = r.u8();
  row.meeting_key = r.u64be();
  row.client_ip = r.u32be();
  row.client_port = r.u16be();
  row.first_us = static_cast<std::int64_t>(r.u64be());
  row.last_us = static_cast<std::int64_t>(r.u64be());
  row.media_packets = r.u64be();
  row.media_payload_bytes = r.u64be();
  row.received = r.u64be();
  row.unique_packets = r.u64be();
  row.duplicates = r.u64be();
  row.reordered = r.u64be();
  row.gap_packets = r.u64be();
  row.retransmissions = r.u64be();
  row.frames = r.u64be();
  row.seconds = r.u32be();
  row.talk_seconds = r.u32be();
  return decode_histogram(r, row.rtt_us) && decode_histogram(r, row.jitter_us) &&
         decode_histogram(r, row.bitrate_kbps) && r.ok();
}

void encode_meeting_row(const MeetingRow& row, util::ByteWriter& w) {
  w.u64be(row.meeting_key);
  w.u32be(row.stream_rows);
  w.u32be(row.participants);
  w.u8(row.saw_p2p);
  w.u64be(static_cast<std::uint64_t>(row.first_us));
  w.u64be(static_cast<std::uint64_t>(row.last_us));
  encode_histogram(row.sfu_rtt_us, w);
}

bool decode_meeting_row(util::ByteReader& r, MeetingRow& row) {
  row.meeting_key = r.u64be();
  row.stream_rows = r.u32be();
  row.participants = r.u32be();
  row.saw_p2p = r.u8();
  row.first_us = static_cast<std::int64_t>(r.u64be());
  row.last_us = static_cast<std::int64_t>(r.u64be());
  return decode_histogram(r, row.sfu_rtt_us) && r.ok();
}

std::uint64_t endpoint_key(std::uint32_t ip, std::uint16_t port) {
  return (static_cast<std::uint64_t>(ip) << 16) | port;
}

std::uint64_t clamp_us(std::int64_t us) {
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

}  // namespace

void EpochSlice::clear() {
  report.clear();
  meetings.clear();
  streams.clear();
}

void encode_epoch_slice(const EpochSlice& slice, util::ByteWriter& w) {
  w.u64be(slice.seq);
  w.u32be(slice.shard);
  w.u32be(slice.shard_count);
  w.u64be(slice.first_packet);
  w.u64be(slice.packets);
  w.u64be(static_cast<std::uint64_t>(slice.first_us));
  w.u64be(static_cast<std::uint64_t>(slice.last_us));
  w.u32be(static_cast<std::uint32_t>(slice.report.size()));
  w.bytes(slice.report);
  w.u32be(static_cast<std::uint32_t>(slice.meetings.size()));
  for (const auto& m : slice.meetings) encode_meeting_row(m, w);
  w.u32be(static_cast<std::uint32_t>(slice.streams.size()));
  for (const auto& s : slice.streams) encode_stream_row(s, w);
}

bool decode_epoch_slice(util::ByteReader& r, EpochSlice& out) {
  out.clear();
  out.seq = r.u64be();
  out.shard = r.u32be();
  out.shard_count = r.u32be();
  out.first_packet = r.u64be();
  out.packets = r.u64be();
  out.first_us = static_cast<std::int64_t>(r.u64be());
  out.last_us = static_cast<std::int64_t>(r.u64be());
  if (!r.ok() || out.shard_count == 0 || out.shard >= out.shard_count)
    return false;
  const std::uint32_t report_len = r.u32be();
  if (!r.can_read(report_len)) return false;
  const auto report = r.bytes(report_len);
  out.report.assign(report.begin(), report.end());
  const std::uint32_t n_meetings = r.u32be();
  if (!r.can_read(std::size_t{n_meetings} * kMeetingRowBytes)) return false;
  for (std::uint32_t i = 0; i < n_meetings; ++i) {
    MeetingRow row;
    if (!decode_meeting_row(r, row)) return false;
    out.meetings.push_back(row);
  }
  const std::uint32_t n_streams = r.u32be();
  if (!r.can_read(std::size_t{n_streams} * kStreamRowBytes)) return false;
  for (std::uint32_t i = 0; i < n_streams; ++i) {
    StreamRow row;
    if (!decode_stream_row(r, row)) return false;
    out.streams.push_back(row);
  }
  return r.ok();
}

// ---------------------------------------------------------------------------
// Slice building

void build_epoch_slices(const SliceSource& src, EpochSliceSet& out) {
  const std::uint32_t shards = src.shard_count > 0 ? src.shard_count : 1;
  out.resize(shards);
  for (std::uint32_t i = 0; i < shards; ++i) {
    out[i].clear();
    out[i].seq = src.seq;
    out[i].shard = i;
    out[i].shard_count = shards;
    out[i].first_packet = src.first_packet;
    out[i].packets = src.packets;
    out[i].first_us = src.first_us;
    out[i].last_us = src.last_us;
  }
  out[0].report.assign(src.report.begin(), src.report.end());

  // Stable meeting keys: min client endpoint over each root meeting's
  // streams. Min is commutative, so the key is independent of stream
  // creation order, shard count, and how a trace was split into sites.
  std::unordered_map<std::uint32_t, std::uint64_t> keys;
  for (const core::StreamInfo* s : src.streams) {
    const std::uint32_t root = src.grouper->resolve(s->meeting_id);
    const std::uint64_t ek = endpoint_key(s->client_ip.value(), s->client_port);
    auto [it, fresh] = keys.try_emplace(root, ek);
    if (!fresh && ek < it->second) it->second = ek;
  }

  for (const core::Meeting* m : src.grouper->meetings()) {
    MeetingRow row;
    const auto it = keys.find(m->id);
    row.meeting_key =
        it != keys.end()
            ? it->second
            : (m->client_ips.empty()
                   ? 0
                   : static_cast<std::uint64_t>(*m->client_ips.begin()) << 16);
    row.stream_rows = static_cast<std::uint32_t>(m->stream_count);
    row.participants = static_cast<std::uint32_t>(m->active_participants());
    row.saw_p2p = m->saw_p2p ? 1 : 0;
    row.first_us = m->first_seen.us();
    row.last_us = m->last_seen.us();
    for (const auto& sample : m->rtt_to_sfu)
      row.sfu_rtt_us.add(clamp_us(sample.rtt.us()));
    const std::size_t shard =
        net::canonical_flow_hash(row.meeting_key, 0) % shards;
    out[shard].meetings.push_back(row);
  }

  for (const core::StreamInfo* s : src.streams) {
    if (!s->metrics) continue;
    const metrics::StreamMetrics& sm = *s->metrics;
    StreamRow row;
    row.flow = net::PackedFlowKey(s->key.flow);
    row.ssrc = s->key.ssrc;
    row.kind = static_cast<std::uint8_t>(s->kind);
    row.transport = static_cast<std::uint8_t>(s->transport);
    row.direction = static_cast<std::uint8_t>(s->direction);
    const std::uint32_t root = src.grouper->resolve(s->meeting_id);
    const auto it = keys.find(root);
    row.meeting_key = it != keys.end() ? it->second : 0;
    row.client_ip = s->client_ip.value();
    row.client_port = s->client_port;
    row.first_us = s->first_seen.us();
    row.last_us = s->last_seen.us();
    row.media_packets = sm.media_packets();
    row.media_payload_bytes = sm.media_payload_bytes();
    const metrics::LossCounters loss = sm.total_loss();
    row.received = loss.received;
    row.unique_packets = loss.unique;
    row.duplicates = loss.duplicates;
    row.reordered = loss.reordered;
    row.gap_packets = loss.gap_packets;
    row.retransmissions = loss.suspected_retransmissions;
    row.seconds = static_cast<std::uint32_t>(sm.seconds().size());
    row.talk_seconds = static_cast<std::uint32_t>(sm.talk_seconds());
    for (const auto& sec : sm.seconds()) {
      row.frames += sec.frames_completed;
      if (sec.jitter_ms)
        row.jitter_us.add(
            static_cast<std::uint64_t>(std::llround(
                std::max(0.0, *sec.jitter_ms) * 1000.0)));
      row.bitrate_kbps.add(sec.media_bytes * 8 / 1000);
    }
    for (const auto& sample : sm.rtt_samples())
      row.rtt_us.add(clamp_us(sample.rtt.us()));
    const std::size_t shard = net::canonical_flow_hash(row.flow) % shards;
    out[shard].streams.push_back(row);
  }
}

// ---------------------------------------------------------------------------
// JournalWriter

JournalWriter::~JournalWriter() { abandon(); }

bool JournalWriter::open(const std::string& path, const std::string& site,
                         std::uint32_t shard_count, std::string* error) {
  abandon();
  if (site.size() > 255) {
    if (error != nullptr) *error = "site name longer than 255 bytes";
    return false;
  }
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    if (error != nullptr)
      *error = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  path_ = path;
  write_offset_ = 0;
  index_.clear();
  meeting_refs_.clear();
  epochs_ = 0;
  any_epoch_ = false;
  first_us_ = 0;
  last_us_ = 0;

  util::ByteWriter w(16 + site.size());
  w.bytes(std::span<const std::uint8_t>(kHeaderMagic, 4));
  w.u32be(kJournalVersion);
  w.u8(static_cast<std::uint8_t>(site.size()));
  w.bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(site.data()), site.size()));
  w.u32be(shard_count > 0 ? shard_count : 1);
  const auto header = w.view();
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size() ||
      std::fflush(file_) != 0) {
    if (error != nullptr) *error = "cannot write header to " + path;
    abandon();
    return false;
  }
  write_offset_ = header.size();
  return true;
}

bool JournalWriter::append(const EpochSlice& slice, std::string* error) {
  if (file_ == nullptr) {
    if (error != nullptr) *error = "journal not open";
    return false;
  }
  util::ByteWriter payload(1024);
  encode_epoch_slice(slice, payload);
  util::ByteWriter frame(payload.size() + kFrameOverhead);
  frame.bytes(std::span<const std::uint8_t>(kRecordMarker, 4));
  frame.u8(kKindSlice);
  frame.u64be(payload.size());
  frame.u32be(util::crc32(payload.view()));
  frame.bytes(payload.view());
  const auto bytes = frame.view();
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size() ||
      std::fflush(file_) != 0) {
    if (error != nullptr)
      *error = "cannot append to " + path_ + ": " + std::strerror(errno);
    return false;
  }

  JournalRecordInfo info;
  info.seq = slice.seq;
  info.shard = slice.shard;
  info.offset = write_offset_;
  info.frame_len = bytes.size();
  info.first_us = slice.first_us;
  info.last_us = slice.last_us;
  info.packets = slice.packets;
  const auto record_idx = static_cast<std::uint32_t>(index_.size());
  index_.push_back(info);
  for (const auto& m : slice.meetings)
    meeting_refs_.emplace_back(m.meeting_key, record_idx);
  for (const auto& s : slice.streams) {
    // Dictionary covers meetings wherever their rows landed: a query
    // filtered to one meeting must also find the shard records holding
    // only that meeting's *stream* rows.
    if (meeting_refs_.empty() || meeting_refs_.back() !=
                                     std::pair<std::uint64_t, std::uint32_t>{
                                         s.meeting_key, record_idx})
      meeting_refs_.emplace_back(s.meeting_key, record_idx);
  }
  if (!any_epoch_ || slice.seq != last_epoch_seq_) {
    ++epochs_;
    last_epoch_seq_ = slice.seq;
    any_epoch_ = true;
  }
  if (index_.size() == 1) {
    first_us_ = slice.first_us;
    last_us_ = slice.last_us;
  } else {
    first_us_ = std::min(first_us_, slice.first_us);
    last_us_ = std::max(last_us_, slice.last_us);
  }
  write_offset_ += bytes.size();
  return true;
}

bool JournalWriter::finalize(std::string* error) {
  if (file_ == nullptr) {
    if (error != nullptr) *error = "journal not open";
    return false;
  }
  util::ByteWriter payload(64 + index_.size() * kIndexEntryBytes);
  payload.u32be(static_cast<std::uint32_t>(index_.size()));
  for (const auto& info : index_) {
    payload.u64be(info.seq);
    payload.u32be(info.shard);
    payload.u64be(info.offset);
    payload.u64be(info.frame_len);
    payload.u64be(static_cast<std::uint64_t>(info.first_us));
    payload.u64be(static_cast<std::uint64_t>(info.last_us));
    payload.u64be(info.packets);
  }
  std::sort(meeting_refs_.begin(), meeting_refs_.end());
  meeting_refs_.erase(
      std::unique(meeting_refs_.begin(), meeting_refs_.end()),
      meeting_refs_.end());
  std::uint32_t distinct = 0;
  for (std::size_t i = 0; i < meeting_refs_.size();) {
    std::size_t j = i;
    while (j < meeting_refs_.size() &&
           meeting_refs_[j].first == meeting_refs_[i].first)
      ++j;
    ++distinct;
    i = j;
  }
  payload.u32be(distinct);
  for (std::size_t i = 0; i < meeting_refs_.size();) {
    std::size_t j = i;
    while (j < meeting_refs_.size() &&
           meeting_refs_[j].first == meeting_refs_[i].first)
      ++j;
    payload.u64be(meeting_refs_[i].first);
    payload.u32be(static_cast<std::uint32_t>(j - i));
    for (std::size_t k = i; k < j; ++k) payload.u32be(meeting_refs_[k].second);
    i = j;
  }

  util::ByteWriter frame(payload.size() + kFrameOverhead + kTrailerLen);
  frame.bytes(std::span<const std::uint8_t>(kRecordMarker, 4));
  frame.u8(kKindIndex);
  frame.u64be(payload.size());
  frame.u32be(util::crc32(payload.view()));
  frame.bytes(payload.view());
  const std::uint64_t index_offset = write_offset_;
  const std::uint64_t index_frame_len = frame.size();
  // Trailer: fixed length at EOF, self-checksummed, so a reader probes
  // it without knowing anything else about the file.
  util::ByteWriter seek(16);
  seek.u64be(index_offset);
  seek.u64be(index_frame_len);
  frame.bytes(seek.view());
  frame.u32be(util::crc32(seek.view()));
  frame.bytes(std::span<const std::uint8_t>(kTrailerMagic, 4));

  const auto bytes = frame.view();
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), file_) == bytes.size();
  ok = std::fflush(file_) == 0 && ok;
#if defined(__unix__) || defined(__APPLE__)
  if (ok) ok = ::fsync(fileno(file_)) == 0;
#endif
  ok = std::fclose(file_) == 0 && ok;
  file_ = nullptr;
  if (!ok && error != nullptr)
    *error = "cannot finalize " + path_ + ": " + std::strerror(errno);
  return ok;
}

void JournalWriter::abandon() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// JournalReader

bool JournalReader::open(const std::string& path, std::string* error) {
  map_ = net::MappedFile::open(path);
  if (!map_.valid()) {
    if (error != nullptr) *error = "cannot map " + path;
    return false;
  }
  bytes_ = map_.bytes();
  return parse(error);
}

bool JournalReader::open_bytes(std::span<const std::uint8_t> bytes,
                               std::string* error) {
  map_ = net::MappedFile();
  bytes_ = bytes;
  return parse(error);
}

bool JournalReader::parse(std::string* error) {
  records_.clear();
  dict_.clear();
  dict_refs_.clear();
  stats_ = JournalScanStats{};
  site_.clear();
  shard_count_ = 1;

  util::ByteReader r(bytes_);
  const auto magic = r.bytes(4);
  if (magic.size() != 4 || std::memcmp(magic.data(), kHeaderMagic, 4) != 0) {
    if (error != nullptr) *error = "not a metric journal (bad magic)";
    return false;
  }
  if (r.u32be() != kJournalVersion) {
    if (error != nullptr) *error = "unsupported journal version";
    return false;
  }
  const std::uint8_t site_len = r.u8();
  const auto site = r.bytes(site_len);
  site_.assign(site.begin(), site.end());
  shard_count_ = r.u32be();
  if (!r.ok() || shard_count_ == 0) {
    if (error != nullptr) *error = "truncated journal header";
    return false;
  }
  body_begin_ = r.position();

  if (!try_index()) scan();
  return true;
}

bool JournalReader::try_index() {
  if (bytes_.size() < body_begin_ + kTrailerLen) return false;
  util::ByteReader t(bytes_.subspan(bytes_.size() - kTrailerLen));
  const std::uint64_t index_offset = t.u64be();
  const std::uint64_t index_frame_len = t.u64be();
  const std::uint32_t seek_crc = t.u32be();
  const auto magic = t.bytes(4);
  if (magic.size() != 4 || std::memcmp(magic.data(), kTrailerMagic, 4) != 0)
    return false;
  if (util::crc32(bytes_.subspan(bytes_.size() - kTrailerLen, 16)) != seek_crc)
    return false;
  // Subtraction-only bounds math: `index_offset + index_frame_len` can
  // wrap u64 for a hostile trailer (the seek CRC covers whatever the
  // attacker wrote), so never form that sum. body_end >= body_begin_ is
  // guaranteed by the size probe above.
  const std::uint64_t body_end = bytes_.size() - kTrailerLen;
  if (index_frame_len < kFrameOverhead ||
      index_frame_len > body_end - body_begin_ ||
      index_offset != body_end - index_frame_len)
    return false;

  util::ByteReader f(bytes_.subspan(index_offset, index_frame_len));
  const auto marker = f.bytes(4);
  if (marker.size() != 4 || std::memcmp(marker.data(), kRecordMarker, 4) != 0)
    return false;
  if (f.u8() != kKindIndex) return false;
  const std::uint64_t payload_len = f.u64be();
  const std::uint32_t crc = f.u32be();
  if (!f.ok() || payload_len != index_frame_len - kFrameOverhead) return false;
  const auto payload = f.rest();
  if (util::crc32(payload) != crc) return false;

  util::ByteReader p(payload);
  const std::uint32_t record_count = p.u32be();
  if (!p.can_read(std::size_t{record_count} * kIndexEntryBytes)) return false;
  records_.reserve(record_count);
  for (std::uint32_t i = 0; i < record_count; ++i) {
    JournalRecordInfo info;
    info.seq = p.u64be();
    info.shard = p.u32be();
    info.offset = p.u64be();
    info.frame_len = p.u64be();
    info.first_us = static_cast<std::int64_t>(p.u64be());
    info.last_us = static_cast<std::int64_t>(p.u64be());
    info.packets = p.u64be();
    // The index is trusted for *seeking*, so every claim in it is
    // validated here: offsets inside the body, spans ordered, time
    // monotone (what binary search relies on). `offset + frame_len`
    // can wrap u64, so the containment check is subtraction-based.
    if (info.offset < body_begin_ || info.frame_len < kFrameOverhead ||
        info.frame_len > index_offset ||
        info.offset > index_offset - info.frame_len ||
        info.first_us > info.last_us)
      return false;
    if (!records_.empty() && (info.first_us < records_.back().first_us ||
                              info.last_us < records_.back().last_us))
      return false;
    records_.push_back(info);
  }
  const std::uint32_t distinct = p.u32be();
  if (!p.can_read(std::size_t{distinct} * 12)) return false;
  for (std::uint32_t i = 0; i < distinct; ++i) {
    DictEntry entry;
    entry.key = p.u64be();
    const std::uint32_t count = p.u32be();
    if (!p.can_read(std::size_t{count} * 4)) return false;
    if (!dict_.empty() && entry.key <= dict_.back().key) return false;
    entry.begin = static_cast<std::uint32_t>(dict_refs_.size());
    entry.count = count;
    for (std::uint32_t k = 0; k < count; ++k) {
      const std::uint32_t idx = p.u32be();
      if (idx >= records_.size()) return false;
      dict_refs_.push_back(idx);
    }
    dict_.push_back(entry);
  }
  if (!p.ok() || p.remaining() != 0) return false;
  stats_.used_index = true;
  return true;
}

void JournalReader::scan() {
  records_.clear();
  dict_.clear();
  dict_refs_.clear();
  stats_ = JournalScanStats{};

  std::size_t pos = body_begin_;
  bool in_garbage = false;
  while (pos < bytes_.size()) {
    if (bytes_.size() - pos < kFrameOverhead ||
        std::memcmp(bytes_.data() + pos, kRecordMarker, 4) != 0) {
      // Resync: slide forward byte by byte until the next marker. One
      // garbage run counts as one corrupt record however long it is.
      if (!in_garbage) {
        ++stats_.corrupt_records;
        in_garbage = true;
      }
      ++stats_.skipped_bytes;
      ++pos;
      continue;
    }
    util::ByteReader f(bytes_.subspan(pos));
    f.skip(4);
    const std::uint8_t kind = f.u8();
    const std::uint64_t payload_len = f.u64be();
    const std::uint32_t crc = f.u32be();
    if (payload_len > bytes_.size() - pos - kFrameOverhead) {
      // Length runs past EOF: either a torn tail or a corrupt length
      // field. Either way resync from the next byte.
      if (!in_garbage) {
        ++stats_.corrupt_records;
        in_garbage = true;
      }
      ++stats_.skipped_bytes;
      ++pos;
      continue;
    }
    const auto payload = bytes_.subspan(pos + kFrameOverhead, payload_len);
    if (util::crc32(payload) != crc) {
      if (!in_garbage) {
        ++stats_.corrupt_records;
        in_garbage = true;
      }
      ++stats_.skipped_bytes;
      ++pos;
      continue;
    }
    in_garbage = false;
    if (kind == kKindSlice && payload_len >= 48) {
      util::ByteReader p(payload);
      JournalRecordInfo info;
      info.seq = p.u64be();
      info.shard = p.u32be();
      p.skip(4);  // shard_count
      p.skip(8);  // first_packet
      info.packets = p.u64be();
      info.first_us = static_cast<std::int64_t>(p.u64be());
      info.last_us = static_cast<std::int64_t>(p.u64be());
      info.offset = pos;
      info.frame_len = kFrameOverhead + payload_len;
      records_.push_back(info);
    }
    // kKindIndex frames mid-scan are ignored (the trailer probe already
    // rejected them); unknown kinds are skipped silently — the frame
    // checksummed clean, so this is a future format, not corruption.
    pos += kFrameOverhead + payload_len;
  }
  // A hostile or spliced file can present out-of-order records; sorting
  // restores the select() contract (stable: ties keep append order).
  std::stable_sort(records_.begin(), records_.end(),
                   [](const JournalRecordInfo& a, const JournalRecordInfo& b) {
                     if (a.first_us != b.first_us) return a.first_us < b.first_us;
                     if (a.seq != b.seq) return a.seq < b.seq;
                     return a.shard < b.shard;
                   });
}

std::pair<std::size_t, std::size_t> JournalReader::select(
    std::int64_t from_us, std::int64_t to_us) const {
  if (records_.empty() || from_us > to_us) return {0, 0};
  // End: first record starting after the window. first_us is
  // nondecreasing in both index and (sorted) scan mode.
  const auto end_it = std::upper_bound(
      records_.begin(), records_.end(), to_us,
      [](std::int64_t to, const JournalRecordInfo& r) { return to < r.first_us; });
  std::size_t begin;
  if (stats_.used_index) {
    // last_us is validated nondecreasing in index mode, so the begin
    // edge binary-searches too: O(log n) total.
    const auto begin_it = std::lower_bound(
        records_.begin(), records_.end(), from_us,
        [](const JournalRecordInfo& r, std::int64_t from) {
          return r.last_us < from;
        });
    begin = static_cast<std::size_t>(begin_it - records_.begin());
  } else {
    begin = 0;
    while (begin < records_.size() && records_[begin].last_us < from_us) ++begin;
  }
  const auto end = static_cast<std::size_t>(end_it - records_.begin());
  return begin < end ? std::pair<std::size_t, std::size_t>{begin, end}
                     : std::pair<std::size_t, std::size_t>{0, 0};
}

bool JournalReader::read(std::size_t i, EpochSlice& out) const {
  if (i >= records_.size()) return false;
  const JournalRecordInfo& info = records_[i];
  // Wrap-proof containment check (mirrors try_index's validation).
  if (info.frame_len > bytes_.size() ||
      info.offset > bytes_.size() - info.frame_len)
    return false;
  util::ByteReader f(bytes_.subspan(info.offset, info.frame_len));
  const auto marker = f.bytes(4);
  if (marker.size() != 4 || std::memcmp(marker.data(), kRecordMarker, 4) != 0)
    return false;
  if (f.u8() != kKindSlice) return false;
  const std::uint64_t payload_len = f.u64be();
  const std::uint32_t crc = f.u32be();
  if (!f.ok() || payload_len != info.frame_len - kFrameOverhead) return false;
  const auto payload = f.rest();
  if (util::crc32(payload) != crc) return false;
  util::ByteReader p(payload);
  if (!decode_epoch_slice(p, out) || p.remaining() != 0) return false;
  // A CRC-valid record whose identity disagrees with the (CRC-valid)
  // index entry means one of the two lies; treat it as corrupt rather
  // than answer window queries from inconsistent spans.
  return out.seq == info.seq && out.shard == info.shard &&
         out.first_us == info.first_us && out.last_us == info.last_us &&
         out.packets == info.packets;
}

std::span<const std::uint32_t> JournalReader::records_for_meeting(
    std::uint64_t meeting_key) const {
  const auto it = std::lower_bound(
      dict_.begin(), dict_.end(), meeting_key,
      [](const DictEntry& e, std::uint64_t key) { return e.key < key; });
  if (it == dict_.end() || it->key != meeting_key) return {};
  return {dict_refs_.data() + it->begin, it->count};
}

// ---------------------------------------------------------------------------
// MANIFEST

namespace {

constexpr std::string_view kManifestHeader = "zpm-manifest v1";

}  // namespace

std::string format_manifest(const Manifest& manifest) {
  std::string out(kManifestHeader);
  out += '\n';
  // Variable-length fields (path, site) append via std::string — a
  // fixed buffer would silently truncate long sites and merge the next
  // line into this one, breaking the format/parse fixpoint.
  char buf[160];
  for (const auto& e : manifest.entries) {
    out += "journal ";
    out += e.path;
    out += " site=";
    out += e.site;
    std::snprintf(buf, sizeof(buf),
                  " first_us=%lld last_us=%lld epochs=%llu records=%llu\n",
                  static_cast<long long>(e.first_us),
                  static_cast<long long>(e.last_us),
                  static_cast<unsigned long long>(e.epochs),
                  static_cast<unsigned long long>(e.records));
    out += buf;
  }
  return out;
}

bool parse_manifest(std::string_view text, Manifest& out) {
  out.entries.clear();
  std::size_t pos = 0;
  bool saw_header = false;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!saw_header) {
      if (line != kManifestHeader) return false;
      saw_header = true;
      continue;
    }
    if (!line.starts_with("journal ")) continue;  // forward compatibility
    // NUL bytes cannot survive the formatter's %s; a line carrying one
    // is not something save_manifest() wrote — drop it.
    if (line.find('\0') != std::string_view::npos) continue;
    line.remove_prefix(8);
    const std::size_t sp = line.find(' ');
    ManifestEntry entry;
    entry.path = std::string(line.substr(0, sp));
    if (entry.path.empty()) continue;
    std::string_view rest = sp == std::string_view::npos ? std::string_view{}
                                                         : line.substr(sp + 1);
    while (!rest.empty()) {
      std::size_t next = rest.find(' ');
      const std::string_view tok = rest.substr(0, next);
      rest = next == std::string_view::npos ? std::string_view{}
                                            : rest.substr(next + 1);
      const std::size_t eq = tok.find('=');
      if (eq == std::string_view::npos) continue;
      const std::string_view key = tok.substr(0, eq);
      const std::string value(tok.substr(eq + 1));
      if (key == "site") {
        entry.site = value;
      } else if (key == "first_us") {
        entry.first_us = std::strtoll(value.c_str(), nullptr, 10);
      } else if (key == "last_us") {
        entry.last_us = std::strtoll(value.c_str(), nullptr, 10);
      } else if (key == "epochs") {
        entry.epochs = std::strtoull(value.c_str(), nullptr, 10);
      } else if (key == "records") {
        entry.records = std::strtoull(value.c_str(), nullptr, 10);
      }
    }
    // Duplicate paths: last writer wins (a restarted daemon re-lists
    // its live journal every rotation).
    bool replaced = false;
    for (auto& existing : out.entries) {
      if (existing.path == entry.path) {
        existing = entry;
        replaced = true;
        break;
      }
    }
    if (!replaced) out.entries.push_back(std::move(entry));
  }
  return saw_header;
}

bool load_manifest(const std::string& dir, Manifest& out, std::string* error) {
  std::vector<std::uint8_t> bytes;
  bool missing = false;
  const std::string path = dir + "/MANIFEST";
  if (!util::read_file_all(path, bytes, missing)) {
    if (error != nullptr)
      *error = missing ? path + ": missing" : "cannot read " + path;
    return false;
  }
  if (!parse_manifest(
          std::string_view(reinterpret_cast<const char*>(bytes.data()),
                           bytes.size()),
          out)) {
    if (error != nullptr) *error = path + ": failed validation";
    return false;
  }
  return true;
}

bool save_manifest(const Manifest& manifest, const std::string& dir,
                   std::string* error) {
  const std::string text = format_manifest(manifest);
  return util::write_file_atomic(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(text.data()), text.size()),
      dir + "/MANIFEST", error);
}

}  // namespace zpm::query
