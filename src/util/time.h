// Fixed-point time used throughout zpm.
//
// Packet traces, simulator events and metric bins all use the same
// microsecond tick so there is exactly one clock in the system. A strong
// type (rather than std::chrono) keeps wire (de)serialization to pcap's
// sec/usec fields trivial and arithmetic branch-free.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace zpm::util {

/// A span of time in microseconds. Signed so differences are well formed.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration micros(std::int64_t us) { return Duration(us); }
  static constexpr Duration millis(std::int64_t ms) { return Duration(ms * 1000); }
  static constexpr Duration seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e6));
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(us_) / 1e3; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(us_) / 1e6; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration(us_ + o.us_); }
  constexpr Duration operator-(Duration o) const { return Duration(us_ - o.us_); }
  constexpr Duration operator*(std::int64_t k) const { return Duration(us_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(us_ / k); }
  constexpr Duration operator-() const { return Duration(-us_); }
  constexpr Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  constexpr Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }

 private:
  explicit constexpr Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// An absolute point in time: microseconds since the Unix epoch.
class Timestamp {
 public:
  constexpr Timestamp() = default;
  static constexpr Timestamp from_micros(std::int64_t us) { return Timestamp(us); }
  static constexpr Timestamp from_seconds(double s) {
    return Timestamp(static_cast<std::int64_t>(s * 1e6));
  }
  /// pcap record header (seconds + microseconds).
  static constexpr Timestamp from_pcap(std::uint32_t sec, std::uint32_t usec) {
    return Timestamp(static_cast<std::int64_t>(sec) * 1'000'000 + usec);
  }

  [[nodiscard]] constexpr std::int64_t us() const { return us_; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr std::uint32_t pcap_sec() const {
    return static_cast<std::uint32_t>(us_ / 1'000'000);
  }
  [[nodiscard]] constexpr std::uint32_t pcap_usec() const {
    return static_cast<std::uint32_t>(us_ % 1'000'000);
  }
  /// True for a default-constructed (unset) timestamp.
  [[nodiscard]] constexpr bool is_zero() const { return us_ == 0; }

  constexpr auto operator<=>(const Timestamp&) const = default;
  constexpr Timestamp operator+(Duration d) const { return Timestamp(us_ + d.us()); }
  constexpr Timestamp operator-(Duration d) const { return Timestamp(us_ - d.us()); }
  constexpr Duration operator-(Timestamp o) const { return Duration::micros(us_ - o.us_); }
  constexpr Timestamp& operator+=(Duration d) { us_ += d.us(); return *this; }

 private:
  explicit constexpr Timestamp(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

inline constexpr Duration operator*(std::int64_t k, Duration d) { return d * k; }

}  // namespace zpm::util
