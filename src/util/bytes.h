// Bounds-checked binary reading and writing in network byte order.
//
// All wire-format parsing in zpm goes through ByteReader so that a
// truncated or malformed packet can never read out of bounds: a reader
// that runs past the end flips into a sticky failed state and every
// subsequent read returns zero. Callers check `ok()` once at the end of
// a parse instead of checking every field.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace zpm::util {

/// Sequential big-endian reader over a borrowed byte span.
///
/// Reads never throw and never touch memory outside the span. After any
/// out-of-bounds read attempt the reader is permanently `!ok()` and all
/// further reads yield 0 / empty spans.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Bytes not yet consumed.
  [[nodiscard]] std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }
  /// Absolute read position from the start of the span.
  [[nodiscard]] std::size_t position() const { return pos_; }
  /// False once any read has run past the end of the data.
  [[nodiscard]] bool ok() const { return ok_; }

  /// Reads a single byte.
  std::uint8_t u8() {
    if (!require(1)) return 0;
    return data_[pos_++];
  }

  /// Reads a 16-bit big-endian integer.
  std::uint16_t u16be() {
    if (!require(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }

  /// Reads a 24-bit big-endian integer into the low bits of a uint32.
  std::uint32_t u24be() {
    if (!require(3)) return 0;
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                      static_cast<std::uint32_t>(data_[pos_ + 2]);
    pos_ += 3;
    return v;
  }

  /// Reads a 32-bit big-endian integer.
  std::uint32_t u32be() {
    if (!require(4)) return 0;
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                      static_cast<std::uint32_t>(data_[pos_ + 3]);
    pos_ += 4;
    return v;
  }

  /// Reads a 64-bit big-endian integer.
  std::uint64_t u64be() {
    std::uint64_t hi = u32be();
    std::uint64_t lo = u32be();
    return (hi << 32) | lo;
  }

  /// Returns a view of the next `n` bytes and advances past them.
  std::span<const std::uint8_t> bytes(std::size_t n) {
    if (!require(n)) return {};
    auto s = data_.subspan(pos_, n);
    pos_ += n;
    return s;
  }

  /// Returns everything from the current position to the end.
  std::span<const std::uint8_t> rest() {
    if (!ok_) return {};
    auto s = data_.subspan(pos_);
    pos_ = data_.size();
    return s;
  }

  /// Advances `n` bytes without reading them.
  void skip(std::size_t n) {
    if (require(n)) pos_ += n;
  }

  /// Reads a byte at `offset` from the current position without advancing.
  [[nodiscard]] std::uint8_t peek_u8(std::size_t offset = 0) const {
    if (!ok_ || pos_ + offset >= data_.size()) return 0;
    return data_[pos_ + offset];
  }

  /// True if at least `n` bytes remain (does not change state).
  [[nodiscard]] bool can_read(std::size_t n) const { return ok_ && data_.size() - pos_ >= n; }

 private:
  bool require(std::size_t n) {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Append-only big-endian writer backed by a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  /// Reserves `expected_size` bytes up front to avoid reallocation.
  explicit ByteWriter(std::size_t expected_size) { buf_.reserve(expected_size); }

  void u8(std::uint8_t v) { buf_.push_back(v); }

  void u16be(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u24be(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u32be(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void u64be(std::uint64_t v) {
    u32be(static_cast<std::uint32_t>(v >> 32));
    u32be(static_cast<std::uint32_t>(v));
  }

  void bytes(std::span<const std::uint8_t> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Appends `n` copies of `fill`.
  void fill(std::size_t n, std::uint8_t fill_byte = 0) {
    buf_.insert(buf_.end(), n, fill_byte);
  }

  /// Overwrites 2 bytes at an earlier position (e.g. a length field
  /// patched after the body is known).
  void patch_u16be(std::size_t pos, std::uint16_t v) {
    if (pos + 2 > buf_.size()) return;
    buf_[pos] = static_cast<std::uint8_t>(v >> 8);
    buf_[pos + 1] = static_cast<std::uint8_t>(v);
  }

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> view() const { return buf_; }
  [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
  /// Moves the accumulated bytes out of the writer.
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Renders bytes as lowercase hex, e.g. "05001a" (debugging / goldens).
std::string to_hex(std::span<const std::uint8_t> data);

/// Parses a hex string ("05 00 1a", spaces optional) into bytes.
/// Returns an empty vector on malformed input.
std::vector<std::uint8_t> from_hex(std::string_view hex);

}  // namespace zpm::util
