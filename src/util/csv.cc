#include "util/csv.h"

#include "util/strings.h"

namespace zpm::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

bool CsvWriter::ok() const { return out_.good(); }

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::row_numeric(const std::vector<double>& values, int decimals) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(fixed(v, decimals));
  row(cells);
}

}  // namespace zpm::util
