// ASCII table renderer used by every bench binary to print paper-style
// tables with aligned columns.
#pragma once

#include <string>
#include <vector>

namespace zpm::util {

/// Column alignment for TextTable.
enum class Align { Left, Right };

/// Builds monospace tables:
///
///   Value  Packet Type        Offset  % Pkts.
///   -----  -----------------  ------  -------
///   16     RTP: Video         24      62.00
class TextTable {
 public:
  /// Sets the header row; alignment applies per column (default Left).
  void header(std::vector<std::string> cells, std::vector<Align> aligns = {});
  /// Appends a data row; short rows are padded with empty cells.
  void row(std::vector<std::string> cells);
  /// Inserts a horizontal separator before the next row.
  void separator();
  /// Renders the table with two-space column gaps.
  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool is_separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

}  // namespace zpm::util
