#include "util/strings.h"

#include <array>
#include <cstdio>
#include <sstream>

namespace zpm::util {

std::string human_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1000.0 && unit + 1 < kUnits.size()) {
    v /= 1000.0;
    ++unit;
  }
  char buf[48];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string human_bitrate(double bits_per_second) {
  static constexpr std::array<const char*, 4> kUnits = {"bit/s", "Kbit/s", "Mbit/s", "Gbit/s"};
  double v = bits_per_second;
  std::size_t unit = 0;
  while (v >= 1000.0 && unit + 1 < kUnits.size()) {
    v /= 1000.0;
    ++unit;
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.1f %s", v, kUnits[unit]);
  return buf;
}

std::string fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string with_commas(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3;
  if (lead == 0) lead = 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string clock_label(std::int64_t seconds_since_midnight) {
  std::int64_t day = 24 * 3600;
  std::int64_t s = ((seconds_since_midnight % day) + day) % day;
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%02d:%02d",
                static_cast<int>(s / 3600), static_cast<int>((s % 3600) / 60));
  return buf;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream stream(s);
  while (std::getline(stream, item, delim)) out.push_back(item);
  if (!s.empty() && s.back() == delim) out.emplace_back();
  return out;
}

}  // namespace zpm::util
