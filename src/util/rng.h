// Deterministic pseudo-random number generation for the simulator.
//
// Every simulator component takes an Rng seeded from the experiment
// configuration so that traces, and therefore the reproduced tables and
// figures, are bit-for-bit reproducible across runs and machines (libc
// rand() and std::mt19937's distribution implementations are not
// portable across standard libraries).
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace zpm::util {

/// xoshiro256** with SplitMix64 seeding. Fast, high-quality, portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the four lanes.
    std::uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      lane = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  std::uint64_t next_u64() {
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform 32-bit value.
  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Normal deviate (Box–Muller; one value per call for determinism).
  double normal(double mean, double stddev) {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * z;
  }

  /// Exponential deviate with the given mean.
  double exponential(double mean) {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -mean * std::log(u);
  }

  /// Log-normal deviate parameterized by the target median and sigma of
  /// the underlying normal. Heavy-tailed sizes (frame sizes, slide sizes).
  double lognormal(double median, double sigma) {
    return median * std::exp(normal(0.0, sigma));
  }

  /// Pareto deviate with scale x_m and shape alpha (alpha > 0).
  double pareto(double x_m, double alpha) {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Derives an independent child generator (for per-entity streams).
  Rng fork() { return Rng(next_u64() ^ 0xda3e39cb94b95bdbULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace zpm::util
