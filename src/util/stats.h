// Streaming statistics used by the metric engines and the experiment
// drivers: Welford running moments, exponentially-weighted averages,
// quantile/CDF accumulators and correlation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace zpm::util {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  /// Removes all samples.
  void reset();

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Population variance; 0 with fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exponentially weighted moving average with configurable smoothing.
/// RFC 3550 jitter uses gain 1/16; we expose the gain directly.
class Ewma {
 public:
  explicit Ewma(double gain) : gain_(gain) {}

  void add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ += gain_ * (x - value_);
    }
  }

  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double gain_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Stores samples and answers quantile / CDF queries. Intended for
/// experiment post-processing (bounded sample counts), not the per-packet
/// hot path.
class QuantileSketch {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  /// q in [0,1]; linear interpolation between order statistics.
  double quantile(double q);
  /// Fraction of samples <= x.
  double cdf_at(double x);
  /// Evenly spaced (value, cumulative-fraction) points suitable for
  /// plotting a CDF curve with `points` steps.
  std::vector<std::pair<double, double>> cdf_curve(std::size_t points);
  /// All samples (sorted ascending).
  const std::vector<double>& sorted_samples();

 private:
  void ensure_sorted();
  std::vector<double> samples_;
  bool sorted_ = true;
};

/// Pearson product-moment correlation of two equal-length series.
/// Returns 0 when undefined (fewer than 2 points or zero variance).
double pearson(const std::vector<double>& x, const std::vector<double>& y);

/// Spearman rank correlation (average ranks for ties).
double spearman(const std::vector<double>& x, const std::vector<double>& y);

/// Shannon entropy (bits) of a byte-value histogram.
double shannon_entropy(const std::vector<std::size_t>& histogram);

}  // namespace zpm::util
