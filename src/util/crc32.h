// CRC-32 (IEEE 802.3, reflected 0xEDB88320) for snapshot integrity.
//
// Snapshot files written at epoch boundaries must be validated before a
// restart trusts them — a torn write, a truncated disk, or a flipped bit
// has to fail closed into fresh-start mode rather than half-load state.
// A checksum (not a hash table fingerprint) is the right tool: the
// threat model is accidental corruption, not adversaries. Header-only,
// constexpr table, no dependencies.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace zpm::util {

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

/// CRC-32 of `bytes`, optionally chained from a previous result via
/// `seed` (pass the prior return value to extend the checksum).
[[nodiscard]] constexpr std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                                            std::uint32_t seed = 0) {
  std::uint32_t c = ~seed;
  for (std::uint8_t b : bytes)
    c = detail::kCrc32Table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return ~c;
}

}  // namespace zpm::util
