// Lock-free single-producer/single-consumer bounded ring buffer.
//
// The parallel analysis pipeline moves every decoded packet from the
// producer (decode + dispatch) thread to exactly one analyzer shard, so
// the queue between them never needs more than one producer and one
// consumer — the classic SPSC ring covers it with two atomic indices
// and zero locks on the hot path. Producer and consumer each keep a
// cached copy of the other side's index so the common case (ring
// neither full nor empty) touches only one shared cache line per
// operation.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

namespace zpm::util {

/// Bounded SPSC queue of `T`. `push`/`try_push` may only be called from
/// one thread and `pop`/`try_pop` from one (possibly different) thread.
/// Elements are moved in and out. `close()` (producer side) makes `pop`
/// return nullopt once the ring has drained.
template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

  /// Producer: attempts to enqueue without blocking.
  bool try_push(T&& value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= slots_.size()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer: enqueues, backing off (spin, then yield, then sleep)
  /// while the ring is full. Full-ring waits are counted in
  /// push_wait_spins() so backpressure is observable rather than silent.
  void push(T value) {
    Backoff backoff;
    while (!try_push(std::move(value))) {
      ++push_wait_spins_;
      backoff.wait();
    }
  }

  /// Producer: moves as many leading elements of `batch` into the ring
  /// as fit right now, publishing them with a single atomic store —
  /// amortising the release fence and the consumer's cache miss over
  /// the whole batch. Returns the number consumed from `batch`.
  std::size_t try_push_batch(std::span<T> batch) {
    if (batch.empty()) return 0;
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = slots_.size() - static_cast<std::size_t>(tail - cached_head_);
    if (free < batch.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = slots_.size() - static_cast<std::size_t>(tail - cached_head_);
      if (free == 0) return 0;
    }
    const std::size_t n = std::min(free, batch.size());
    for (std::size_t i = 0; i < n; ++i)
      slots_[(tail + i) & mask_] = std::move(batch[i]);
    tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Producer: enqueues the whole batch, backing off while the ring is
  /// full. Zero-progress rounds count as push_wait_spins(), matching
  /// push().
  void push_batch(std::span<T> batch) {
    Backoff backoff;
    while (!batch.empty()) {
      std::size_t n = try_push_batch(batch);
      if (n == 0) {
        ++push_wait_spins_;
        backoff.wait();
        continue;
      }
      batch = batch.subspan(n);
    }
  }

  /// Number of failed push attempts (ring-full waits) seen by the
  /// producer. Producer-owned, non-atomic: read it from the producer
  /// thread, or after the producer is done (e.g. post-join).
  [[nodiscard]] std::uint64_t push_wait_spins() const { return push_wait_spins_; }

  /// Consumer: attempts to dequeue without blocking. Returns false when
  /// the ring is momentarily empty (closed or not).
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer: dequeues the next element, blocking (with backoff) while
  /// the ring is empty. Returns nullopt once the ring is closed *and*
  /// fully drained.
  std::optional<T> pop() {
    Backoff backoff;
    for (;;) {
      T value;
      if (try_pop(value)) return value;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: the close flag may have been set between the failed
        // pop and the load, racing a final push.
        if (try_pop(value)) return value;
        return std::nullopt;
      }
      backoff.wait();
    }
  }

  /// Consumer: moves up to `max` buffered elements into `out` (appended;
  /// `out` is not cleared), consuming them with a single atomic store.
  /// Returns the number moved; 0 when the ring is momentarily empty.
  std::size_t try_pop_batch(std::vector<T>& out, std::size_t max) {
    if (max == 0) return 0;
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(cached_tail_ - head);
    if (avail == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(cached_tail_ - head);
      if (avail == 0) return 0;
    }
    const std::size_t n = std::min(avail, max);
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(std::move(slots_[(head + i) & mask_]));
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Consumer: appends up to `max` elements to `out`, blocking (with
  /// backoff) while the ring is empty. Returns 0 only once the ring is
  /// closed *and* fully drained.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    Backoff backoff;
    for (;;) {
      std::size_t n = try_pop_batch(out, max);
      if (n > 0) return n;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: the close flag may have been set between the failed
        // pop and the load, racing a final push.
        n = try_pop_batch(out, max);
        return n;
      }
      backoff.wait();
    }
  }

  /// Producer: no further pushes will happen; wakes the consumer's
  /// drain-and-exit path.
  void close() { closed_.store(true, std::memory_order_release); }

  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  /// Elements currently buffered (approximate under concurrency).
  [[nodiscard]] std::size_t size() const {
    std::uint64_t tail = tail_.load(std::memory_order_acquire);
    std::uint64_t head = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - head);
  }

 private:
  /// Spin briefly, then yield, then sleep: keeps latency low when both
  /// sides are running while not starving a single-core machine.
  struct Backoff {
    void wait() {
      if (spins_ < 64) {
        ++spins_;
      } else if (spins_ < 96) {
        ++spins_;
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    int spins_ = 0;
  };

  std::vector<T> slots_;
  std::size_t mask_ = 0;

  // Producer-owned line: tail plus the producer's cached view of head.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;
  std::uint64_t push_wait_spins_ = 0;
  // Consumer-owned line: head plus the consumer's cached view of tail.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;

  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace zpm::util
