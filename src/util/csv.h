// Minimal CSV emission for exporting metric series from benches and
// examples (so figures can be re-plotted outside this repo).
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace zpm::util {

/// Writes RFC 4180-style CSV (quotes fields containing comma/quote/newline).
class CsvWriter {
 public:
  /// Opens `path` for writing; check `ok()` afterwards.
  explicit CsvWriter(const std::string& path);

  [[nodiscard]] bool ok() const;
  void row(const std::vector<std::string>& cells);
  /// Convenience for numeric rows.
  void row_numeric(const std::vector<double>& values, int decimals = 6);

 private:
  static std::string escape(const std::string& cell);
  std::ofstream out_;
};

}  // namespace zpm::util
