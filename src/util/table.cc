#include "util/table.h"

#include <algorithm>

namespace zpm::util {

void TextTable::header(std::vector<std::string> cells, std::vector<Align> aligns) {
  header_ = std::move(cells);
  aligns_ = std::move(aligns);
}

void TextTable::row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::separator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  if (ncols == 0) return {};

  std::vector<std::size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  widen(header_);
  for (const auto& r : rows_)
    if (!r.is_separator) widen(r.cells);

  auto align_of = [&](std::size_t col) {
    return col < aligns_.size() ? aligns_[col] : Align::Left;
  };

  auto emit_row = [&](std::string& out, const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string cell = i < cells.size() ? cells[i] : "";
      std::size_t pad = widths[i] - cell.size();
      if (align_of(i) == Align::Right) out.append(pad, ' ');
      out += cell;
      if (i + 1 < ncols) {
        if (align_of(i) == Align::Left) out.append(pad, ' ');
        out += "  ";
      }
    }
    // Trim trailing spaces.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
  };

  std::string out;
  if (!header_.empty()) {
    emit_row(out, header_);
    for (std::size_t i = 0; i < ncols; ++i) {
      out.append(widths[i], '-');
      if (i + 1 < ncols) out += "  ";
    }
    out.push_back('\n');
  }
  for (const auto& r : rows_) {
    if (r.is_separator) {
      for (std::size_t i = 0; i < ncols; ++i) {
        out.append(widths[i], '-');
        if (i + 1 < ncols) out += "  ";
      }
      out.push_back('\n');
    } else {
      emit_row(out, r.cells);
    }
  }
  return out;
}

}  // namespace zpm::util
