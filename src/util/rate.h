// Time-binned accumulation: the workhorse behind "X per second" series
// (bit rates, packet rates, per-second metric records) in both the
// analyzer and the experiment drivers.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/time.h"

namespace zpm::util {

/// Accumulates (timestamp, weight) observations into fixed-width bins and
/// yields an ordered series. Bins with no observations are emitted as
/// zeros between the first and last active bin so rate plots show gaps.
class IntervalBinner {
 public:
  explicit IntervalBinner(Duration bin_width) : width_us_(bin_width.us()) {}

  void add(Timestamp t, double weight = 1.0) {
    bins_[bin_index(t)] += weight;
  }

  [[nodiscard]] std::int64_t bin_index(Timestamp t) const {
    // Floor division so negative times (never expected, but safe) bin left.
    std::int64_t q = t.us() / width_us_;
    if (t.us() % width_us_ < 0) --q;
    return q;
  }

  [[nodiscard]] Duration bin_width() const { return Duration::micros(width_us_); }
  [[nodiscard]] bool empty() const { return bins_.empty(); }

  struct Bin {
    Timestamp start;
    double total;
    /// Accumulated weight divided by the bin width in seconds, i.e. a rate.
    double per_second;
  };

  /// Dense, time-ordered series covering [first bin, last bin].
  [[nodiscard]] std::vector<Bin> series() const {
    std::vector<Bin> out;
    if (bins_.empty()) return out;
    std::int64_t first = bins_.begin()->first;
    std::int64_t last = bins_.rbegin()->first;
    out.reserve(static_cast<std::size_t>(last - first + 1));
    double width_s = static_cast<double>(width_us_) / 1e6;
    for (std::int64_t i = first; i <= last; ++i) {
      auto it = bins_.find(i);
      double total = (it != bins_.end()) ? it->second : 0.0;
      out.push_back(Bin{Timestamp::from_micros(i * width_us_), total, total / width_s});
    }
    return out;
  }

 private:
  std::int64_t width_us_;
  std::map<std::int64_t, double> bins_;
};

/// Sliding-window rate estimator: "how much weight arrived in the last W".
/// Used for instantaneous bit-rate queries inside the analyzer.
class WindowedRate {
 public:
  explicit WindowedRate(Duration window) : window_(window) {}

  void add(Timestamp t, double weight) {
    events_.push_back({t, weight});
    total_ += weight;
    evict(t);
  }

  /// Weight per second over the window ending at `now`.
  double rate(Timestamp now) {
    evict(now);
    double w = window_.sec();
    return w > 0 ? total_ / w : 0.0;
  }

  /// Total weight currently inside the window ending at `now`.
  double total(Timestamp now) {
    evict(now);
    return total_;
  }

 private:
  struct Event {
    Timestamp t;
    double weight;
  };

  void evict(Timestamp now) {
    Timestamp cutoff = now - window_;
    while (head_ < events_.size() && events_[head_].t < cutoff) {
      total_ -= events_[head_].weight;
      ++head_;
    }
    // Compact occasionally so memory stays bounded.
    if (head_ > 1024 && head_ * 2 > events_.size()) {
      events_.erase(events_.begin(),
                    events_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  Duration window_;
  std::vector<Event> events_;
  std::size_t head_ = 0;
  double total_ = 0.0;
};

}  // namespace zpm::util
