// RFC 1982-style serial number arithmetic for RTP sequence numbers and
// timestamps.
//
// RTP sequence numbers are 16 bits and wrap roughly every 64k packets
// (under a minute for a video stream); timestamps are 32 bits. Naive
// comparison mis-orders packets across the wrap, which corrupts loss,
// reorder and jitter estimates (see bench_ablation_serial for the
// demonstration). These helpers compare and subtract modulo 2^N with the
// conventional "half the space" forward window.
#pragma once

#include <concepts>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace zpm::util {

template <typename T>
concept SerialInt = std::same_as<T, std::uint16_t> || std::same_as<T, std::uint32_t>;

/// Signed distance from `a` to `b` on the serial circle. Positive when `b`
/// is ahead of `a` (i.e. newer), negative when behind. The result lies in
/// [-2^(N-1), 2^(N-1)).
template <SerialInt T>
constexpr auto serial_diff(T a, T b) {
  using S = std::make_signed_t<T>;
  return static_cast<S>(static_cast<T>(b - a));
}

/// True if `b` is strictly newer than `a` in serial order.
template <SerialInt T>
constexpr bool serial_less(T a, T b) {
  return serial_diff(a, b) > 0;
}

/// True if `b` is `a` or newer.
template <SerialInt T>
constexpr bool serial_less_equal(T a, T b) {
  return serial_diff(a, b) >= 0;
}

/// Extends a wrapping serial counter into a monotone 64-bit count.
///
/// Feed observations in (roughly) arrival order; the extender tolerates
/// reordering within half the serial space. Used to turn 16-bit RTP
/// sequence numbers into stable indices for loss accounting, and 32-bit
/// RTP timestamps into an unwrapped media clock.
template <SerialInt T>
class SerialExtender {
 public:
  /// Maps a wrapped value to its extended 64-bit counterpart. The extended
  /// value is placed on the cycle closest to the highest value seen so
  /// far, so late (reordered) packets from before a wrap extend backwards
  /// correctly.
  std::int64_t extend(T value) {
    if (!initialized_) {
      initialized_ = true;
      highest_ = static_cast<std::int64_t>(value);
      return highest_;
    }
    auto d = serial_diff(static_cast<T>(highest_), value);
    std::int64_t extended = highest_ + d;
    if (extended > highest_) highest_ = extended;
    return extended;
  }

  [[nodiscard]] bool initialized() const { return initialized_; }
  /// Highest extended value observed so far.
  [[nodiscard]] std::int64_t highest() const { return highest_; }

 private:
  bool initialized_ = false;
  std::int64_t highest_ = 0;
};

}  // namespace zpm::util
