// Small formatting helpers shared by examples, benches and reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace zpm::util {

/// "1.2 GB", "430 KB" — SI units with one decimal.
std::string human_bytes(std::uint64_t bytes);

/// "222.9 Mbit/s" style rate formatting from bits per second.
std::string human_bitrate(double bits_per_second);

/// Fixed-point decimal with `decimals` fraction digits.
std::string fixed(double v, int decimals);

/// Percentage with `decimals` fraction digits, e.g. "62.00%".
std::string percent(double fraction, int decimals = 2);

/// Thousands-separated integer, e.g. "1,846,000,000".
std::string with_commas(std::uint64_t v);

/// "HH:MM" clock label from seconds since local midnight.
std::string clock_label(std::int64_t seconds_since_midnight);

/// Splits on a delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

}  // namespace zpm::util
