// Durable file I/O primitives shared by everything that persists state
// (snapshots, per-epoch report files, metric-journal manifests).
//
// The atomic-write discipline lives here so every on-disk artifact gets
// the same crash posture: write to `path`.tmp, flush, fsync, rename
// over `path`, fsync the parent directory. A reader therefore only ever
// sees either the old complete file or the new complete file — never a
// torn one. (Append-only files like metric journals cannot use whole-
// file replacement; they get per-record CRC framing instead, see
// query/journal.h.)
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace zpm::util {

/// Atomic whole-file write: `path`.tmp, flush + fsync, rename over
/// `path`, fsync of the parent directory (so the rename survives power
/// loss too). False with `error` set on any I/O failure; a failed write
/// never clobbers an existing good file.
bool write_file_atomic(std::span<const std::uint8_t> bytes,
                       const std::string& path, std::string* error = nullptr);

/// Whole-file read into `out` (appended). False on open/read failure;
/// `missing` distinguishes ENOENT from real I/O errors so callers can
/// treat a first run differently from a broken disk.
bool read_file_all(const std::string& path, std::vector<std::uint8_t>& out,
                   bool& missing);

}  // namespace zpm::util
