#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace zpm::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void QuantileSketch::ensure_sorted() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double QuantileSketch::quantile(double q) {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(samples_.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  auto hi = std::min(lo + 1, samples_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double QuantileSketch::cdf_at(double x) {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> QuantileSketch::cdf_curve(std::size_t points) {
  std::vector<std::pair<double, double>> curve;
  if (samples_.empty() || points < 2) return curve;
  ensure_sorted();
  curve.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    double q = static_cast<double>(i) / static_cast<double>(points - 1);
    curve.emplace_back(quantile(q), q);
  }
  return curve;
}

const std::vector<double>& QuantileSketch::sorted_samples() {
  ensure_sorted();
  return samples_;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double mx = std::accumulate(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(n), 0.0) /
              static_cast<double>(n);
  double my = std::accumulate(y.begin(), y.begin() + static_cast<std::ptrdiff_t>(n), 0.0) /
              static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {

// Average ranks, with ties sharing the mean of their rank range.
std::vector<double> ranks_of(const std::vector<double>& v, std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[idx[j + 1]] == v[idx[i]]) ++j;
    double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  auto rx = ranks_of(x, n);
  auto ry = ranks_of(y, n);
  return pearson(rx, ry);
}

double shannon_entropy(const std::vector<std::size_t>& histogram) {
  std::size_t total = std::accumulate(histogram.begin(), histogram.end(), std::size_t{0});
  if (total == 0) return 0.0;
  double h = 0.0;
  for (std::size_t c : histogram) {
    if (c == 0) continue;
    double p = static_cast<double>(c) / static_cast<double>(total);
    h -= p * std::log2(p);
  }
  return h;
}

}  // namespace zpm::util
