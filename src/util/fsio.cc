#include "util/fsio.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace zpm::util {

namespace {

#if defined(__unix__) || defined(__APPLE__)
/// Fsyncs the directory containing `path`, making a just-completed
/// rename() in it durable across power failure (fsync of the file alone
/// only makes the *data* durable, not the directory entry).
bool fsync_parent_dir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : slash == 0 ? "/" : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd < 0) return false;
  // Some filesystems reject fsync on directories (EINVAL); the rename
  // itself still succeeded, so treat that as best-effort, not failure.
  const bool ok = ::fsync(dfd) == 0 || errno == EINVAL;
  ::close(dfd);
  return ok;
}
#endif

}  // namespace

bool write_file_atomic(std::span<const std::uint8_t> bytes,
                       const std::string& path, std::string* error) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr)
      *error = "cannot open " + tmp + ": " + std::strerror(errno);
    return false;
  }
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  ok = std::fflush(f) == 0 && ok;
#if defined(__unix__) || defined(__APPLE__)
  if (ok) ok = ::fsync(fileno(f)) == 0;
#endif
  ok = std::fclose(f) == 0 && ok;
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
#if defined(__unix__) || defined(__APPLE__)
  if (ok) ok = fsync_parent_dir(path);
#endif
  if (!ok) {
    if (error != nullptr)
      *error = "cannot write " + path + ": " + std::strerror(errno);
    std::remove(tmp.c_str());
  }
  return ok;
}

bool read_file_all(const std::string& path, std::vector<std::uint8_t>& out,
                   bool& missing) {
  missing = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    missing = errno == ENOENT;
    return false;
  }
  std::uint8_t buf[1 << 16];
  for (;;) {
    const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
    out.insert(out.end(), buf, buf + n);
    if (n < sizeof(buf)) break;
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

}  // namespace zpm::util
