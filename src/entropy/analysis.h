// Entropy-based header analysis: the paper's §4.2 methodology as a
// library, usable against any black-box UDP protocol.
//
// Step 1 (extract): pull 8/16/32-bit value sequences at every offset of
// every packet in a flow. Step 2 (classify): label each sequence as
// random (encrypted), identifier (horizontal lines in Fig. 4/5),
// counter/sequence (angled lines), or constant. Step 3 (locate): find
// RTP headers by searching for the signature counter16 + counter32 +
// identifier32 with valid version bits, and RTCP by cross-referencing
// known SSRC values. Step 4 (differencing): group packets by their
// first byte and compare groups to discover the type byte and the
// per-type payload offsets — this rediscovers Table 2 from raw bytes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

namespace zpm::entropy {

/// A byte range interpreted across all packets of a flow.
struct FieldSequence {
  std::size_t offset = 0;  // from start of UDP payload
  std::size_t width = 1;   // 1, 2 or 4 bytes
  std::vector<std::uint64_t> values;  // one per packet long enough
};

/// Inferred field semantics (Fig. 4).
enum class FieldClass : std::uint8_t {
  Constant,    // single value
  Identifier,  // few distinct values (horizontal lines)
  Counter,     // mostly monotone with small increments, wrapping (angled)
  Random,      // near-uniform coverage — encrypted payload
  Unknown,     // none of the above cleanly
};

const char* field_class_name(FieldClass c);

/// Quantitative features behind a classification.
struct Classification {
  FieldClass cls = FieldClass::Unknown;
  double normalized_entropy = 0.0;  // byte-level entropy / maximum
  double distinct_ratio = 0.0;      // distinct values / samples
  double monotone_ratio = 0.0;      // fraction of small positive wraps
};

/// Classifies one extracted sequence.
Classification classify_sequence(const FieldSequence& seq);

/// Extracts all 1/2/4-byte sequences at offsets [0, max_offset).
/// Sequences shorter than `min_samples` packets are skipped.
std::vector<FieldSequence> extract_sequences(
    const std::vector<std::vector<std::uint8_t>>& payloads, std::size_t max_offset,
    std::size_t min_samples = 16);

/// Result of scanning one flow for RTP headers at a fixed offset.
struct RtpScan {
  std::size_t offset = 0;       // RTP header start within the UDP payload
  std::size_t matching = 0;     // packets whose bytes pass all checks
  std::size_t considered = 0;   // packets long enough to test
  double match_fraction = 0.0;
};

/// Scores a candidate RTP offset: version bits == 2, plausible payload
/// type, sequence field behaves like a counter, SSRC field like an
/// identifier.
RtpScan score_rtp_offset(const std::vector<std::vector<std::uint8_t>>& payloads,
                         std::size_t offset);

/// Finds the best RTP offset in [0, max_offset); nullopt when nothing
/// scores above `min_fraction`.
std::optional<RtpScan> locate_rtp(
    const std::vector<std::vector<std::uint8_t>>& payloads,
    std::size_t max_offset = 48, double min_fraction = 0.8);

/// §4.2.2 offset-group differencing: group packets by first byte (the
/// suspected type field) and locate the RTP offset per group. Returns
/// type value -> discovered RTP offset (only for groups with a match).
/// Against Zoom P2P traffic this returns {13: 27, 15: 19, 16: 24}.
std::map<std::uint8_t, std::size_t> discover_type_offsets(
    const std::vector<std::vector<std::uint8_t>>& payloads,
    std::size_t min_group = 24);

/// Collects SSRC values from packets with a known RTP offset (helper
/// for the RTCP cross-reference).
std::set<std::uint32_t> collect_ssrcs(
    const std::vector<std::vector<std::uint8_t>>& payloads, std::size_t rtp_offset);

/// Searches payloads for 32-bit big-endian values from `ssrcs`; returns
/// offset -> hit count. RTCP packets carry the sender SSRC at a fixed
/// offset, which is how the paper found Zoom's RTCP without knowing its
/// framing (§4.2.1).
std::map<std::size_t, std::size_t> find_ssrc_references(
    const std::vector<std::vector<std::uint8_t>>& payloads,
    const std::set<std::uint32_t>& ssrcs, std::size_t max_offset = 32);

}  // namespace zpm::entropy
