#include "entropy/analysis.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace zpm::entropy {

const char* field_class_name(FieldClass c) {
  switch (c) {
    case FieldClass::Constant: return "constant";
    case FieldClass::Identifier: return "identifier";
    case FieldClass::Counter: return "counter";
    case FieldClass::Random: return "random";
    case FieldClass::Unknown: return "unknown";
  }
  return "?";
}

Classification classify_sequence(const FieldSequence& seq) {
  Classification out;
  if (seq.values.size() < 4) return out;

  // Byte-level entropy over the field's constituent bytes.
  std::vector<std::size_t> histogram(256, 0);
  for (std::uint64_t v : seq.values) {
    for (std::size_t b = 0; b < seq.width; ++b)
      ++histogram[(v >> (8 * b)) & 0xff];
  }
  out.normalized_entropy = util::shannon_entropy(histogram) / 8.0;

  std::set<std::uint64_t> distinct(seq.values.begin(), seq.values.end());
  out.distinct_ratio =
      static_cast<double>(distinct.size()) / static_cast<double>(seq.values.size());

  // Monotonicity modulo wrap: fraction of consecutive pairs with a small
  // positive increment (relative to the field's value space).
  std::uint64_t space = seq.width >= 8 ? ~0ULL : (1ULL << (8 * seq.width));
  std::uint64_t small = std::max<std::uint64_t>(space / 256, 1);
  std::size_t monotone = 0;
  for (std::size_t i = 1; i < seq.values.size(); ++i) {
    std::uint64_t delta = (seq.values[i] - seq.values[i - 1]) & (space - 1);
    if (delta != 0 && delta <= small * 16) ++monotone;
  }
  out.monotone_ratio =
      static_cast<double>(monotone) / static_cast<double>(seq.values.size() - 1);

  if (distinct.size() == 1) {
    out.cls = FieldClass::Constant;
  } else if (out.monotone_ratio > 0.6) {
    out.cls = FieldClass::Counter;
  } else if (out.normalized_entropy > 0.93 && out.distinct_ratio > 0.5) {
    out.cls = FieldClass::Random;
  } else if (out.distinct_ratio < 0.1) {
    out.cls = FieldClass::Identifier;
  } else {
    out.cls = FieldClass::Unknown;
  }
  return out;
}

std::vector<FieldSequence> extract_sequences(
    const std::vector<std::vector<std::uint8_t>>& payloads, std::size_t max_offset,
    std::size_t min_samples) {
  static constexpr std::size_t kWidths[] = {1, 2, 4};
  std::vector<FieldSequence> out;
  for (std::size_t width : kWidths) {
    for (std::size_t offset = 0; offset < max_offset; ++offset) {
      FieldSequence seq;
      seq.offset = offset;
      seq.width = width;
      for (const auto& p : payloads) {
        if (p.size() < offset + width) continue;
        std::uint64_t v = 0;
        for (std::size_t b = 0; b < width; ++b) v = (v << 8) | p[offset + b];
        seq.values.push_back(v);
      }
      if (seq.values.size() >= min_samples) out.push_back(std::move(seq));
    }
  }
  return out;
}

RtpScan score_rtp_offset(const std::vector<std::vector<std::uint8_t>>& payloads,
                         std::size_t offset) {
  RtpScan scan;
  scan.offset = offset;
  // Per-packet structural checks, collecting the would-be (ssrc, seq)
  // pairs for the behavioural checks below.
  std::map<std::uint64_t, std::vector<std::uint64_t>> seqs_by_ssrc;
  for (const auto& p : payloads) {
    if (p.size() < offset + 12) continue;
    ++scan.considered;
    std::uint8_t b0 = p[offset];
    if ((b0 >> 6) != 2) continue;           // version must be 2 (§4.2.1)
    if ((b0 & 0x0f) != 0) continue;         // Zoom CSRC count is always 0
    std::uint8_t pt = p[offset + 1] & 0x7f;
    if (pt < 90 || pt > 127) continue;      // dynamic payload-type range
    ++scan.matching;
    std::uint64_t seq = (std::uint64_t{p[offset + 2]} << 8) | p[offset + 3];
    std::uint64_t ssrc = (std::uint64_t{p[offset + 8]} << 24) |
                         (std::uint64_t{p[offset + 9]} << 16) |
                         (std::uint64_t{p[offset + 10]} << 8) | p[offset + 11];
    seqs_by_ssrc[ssrc].push_back(seq);
  }
  if (scan.considered == 0) return scan;
  scan.match_fraction =
      static_cast<double>(scan.matching) / static_cast<double>(scan.considered);
  if (scan.matching >= 8) {
    // Behavioural checks. A flow carries several streams (both
    // directions, multiple senders), so the sequence field only behaves
    // like a counter *within* one value of the identifier field — check
    // it per SSRC, as the manual analysis would.
    if (seqs_by_ssrc.size() >
        std::max<std::size_t>(8, static_cast<std::size_t>(scan.matching) / 16)) {
      // The "SSRC" bytes take too many values to be an identifier.
      scan.match_fraction = 0.0;
      return scan;
    }
    std::size_t groups = 0, counter_like = 0;
    for (const auto& [ssrc, seqs] : seqs_by_ssrc) {
      if (seqs.size() < 8) continue;
      ++groups;
      FieldSequence fs{offset + 2, 2, seqs};
      if (classify_sequence(fs).cls == FieldClass::Counter) ++counter_like;
    }
    if (groups == 0 || counter_like * 2 < groups) scan.match_fraction = 0.0;
  }
  return scan;
}

std::optional<RtpScan> locate_rtp(
    const std::vector<std::vector<std::uint8_t>>& payloads, std::size_t max_offset,
    double min_fraction) {
  std::optional<RtpScan> best;
  for (std::size_t offset = 0; offset < max_offset; ++offset) {
    RtpScan scan = score_rtp_offset(payloads, offset);
    if (scan.match_fraction < min_fraction) continue;
    if (!best || scan.matching > best->matching) best = scan;
  }
  return best;
}

std::map<std::uint8_t, std::size_t> discover_type_offsets(
    const std::vector<std::vector<std::uint8_t>>& payloads, std::size_t min_group) {
  // Group by the suspected type byte (offset 0).
  std::map<std::uint8_t, std::vector<std::vector<std::uint8_t>>> groups;
  for (const auto& p : payloads) {
    if (p.empty()) continue;
    groups[p[0]].push_back(p);
  }
  std::map<std::uint8_t, std::size_t> out;
  for (auto& [type, group] : groups) {
    if (group.size() < min_group) continue;
    if (auto scan = locate_rtp(group)) out[type] = scan->offset;
  }
  return out;
}

std::set<std::uint32_t> collect_ssrcs(
    const std::vector<std::vector<std::uint8_t>>& payloads, std::size_t rtp_offset) {
  std::set<std::uint32_t> out;
  for (const auto& p : payloads) {
    if (p.size() < rtp_offset + 12) continue;
    if ((p[rtp_offset] >> 6) != 2) continue;
    out.insert((std::uint32_t{p[rtp_offset + 8]} << 24) |
               (std::uint32_t{p[rtp_offset + 9]} << 16) |
               (std::uint32_t{p[rtp_offset + 10]} << 8) | p[rtp_offset + 11]);
  }
  return out;
}

std::map<std::size_t, std::size_t> find_ssrc_references(
    const std::vector<std::vector<std::uint8_t>>& payloads,
    const std::set<std::uint32_t>& ssrcs, std::size_t max_offset) {
  std::map<std::size_t, std::size_t> hits;
  for (const auto& p : payloads) {
    std::size_t limit = std::min(max_offset + 4, p.size());
    for (std::size_t off = 0; off + 4 <= limit; ++off) {
      std::uint32_t v = (std::uint32_t{p[off]} << 24) | (std::uint32_t{p[off + 1]} << 16) |
                        (std::uint32_t{p[off + 2]} << 8) | p[off + 3];
      if (ssrcs.contains(v)) ++hits[off];
    }
  }
  return hits;
}

}  // namespace zpm::entropy
