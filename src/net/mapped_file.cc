#include "net/mapped_file.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define ZPM_HAVE_MMAP 1
#endif

namespace zpm::net {

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_), size_(other.size_), valid_(other.valid_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.valid_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, std::size_t{0});
    valid_ = std::exchange(other.valid_, false);
  }
  return *this;
}

void MappedFile::reset() {
#ifdef ZPM_HAVE_MMAP
  if (valid_ && data_ != nullptr)
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
#endif
  data_ = nullptr;
  size_ = 0;
  valid_ = false;
}

MappedFile MappedFile::open(const std::string& path) {
  MappedFile mf;
#ifdef ZPM_HAVE_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return mf;
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return mf;
  }
  if (st.st_size == 0) {
    // Zero-byte files cannot be mmap'd but are a valid (empty) mapping.
    ::close(fd);
    mf.valid_ = true;
    return mf;
  }
  int flags = MAP_PRIVATE;
#ifdef MAP_POPULATE
  // Prefault the page tables in one kernel sweep instead of taking a
  // demand fault every few records during the parse. The whole file is
  // read anyway, so this moves cost, it doesn't add any.
  flags |= MAP_POPULATE;
#endif
  void* addr = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                      flags, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) return mf;
#ifdef MADV_SEQUENTIAL
  // Trace analysis is one sequential sweep: tell the kernel to read
  // ahead aggressively and drop pages behind us.
  ::madvise(addr, static_cast<std::size_t>(st.st_size), MADV_SEQUENTIAL);
#endif
  mf.data_ = static_cast<const std::uint8_t*>(addr);
  mf.size_ = static_cast<std::size_t>(st.st_size);
  mf.valid_ = true;
#else
  (void)path;
#endif
  return mf;
}

}  // namespace zpm::net
