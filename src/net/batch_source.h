// Unified batch-source signaling for offline and live packet sources.
//
// The offline readers only ever needed "batch or done", so
// TraceSource::next_batch() returning 0 meant end-of-input *or* hard
// error, disambiguated by ok(). A live NIC adds a third state the old
// contract cannot express: "no batch right now, try again" — a quiet
// tap, a paced replay ahead of schedule, a poll() timeout. Collapsing
// idle into "finished" would make a long-running daemon shut down the
// moment the network goes quiet; collapsing it into "error" would make
// the watchdog reopen a perfectly healthy socket. SourceStatus names
// all four outcomes explicitly, and BatchSource is the interface the
// continuous-operation daemon drives: every source — offline trace,
// looped replay, AF_PACKET ring — speaks it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/packet.h"

namespace zpm::net {

/// Outcome of one poll on a batch source.
enum class SourceStatus : std::uint8_t {
  /// One or more packets were appended to the output batch.
  Batch,
  /// No packets available right now; the stream is healthy and more may
  /// arrive. Offline file sources never return this.
  Idle,
  /// The stream finished cleanly (finite trace or replay loop budget
  /// exhausted). Terminal for this open; reopen() may restart it.
  EndOfStream,
  /// The source failed hard (parse error, socket death); see error().
  /// Terminal for this open; reopen() may recover it.
  Error,
};

[[nodiscard]] constexpr std::string_view source_status_name(SourceStatus s) {
  switch (s) {
    case SourceStatus::Batch: return "batch";
    case SourceStatus::Idle: return "idle";
    case SourceStatus::EndOfStream: return "end-of-stream";
    case SourceStatus::Error: return "error";
  }
  return "?";
}

/// Kernel-side capture statistics for sources backed by a real tap
/// (AF_PACKET / pcap). Cumulative since open; zeros for sources without
/// a kernel stage (traces, replays). `kernel_drops` is the input to the
/// end-to-end conservation check: offered == admitted + shed +
/// kernel_drops.
struct KernelCaptureStats {
  std::uint64_t kernel_packets = 0;  ///< seen at the kernel filter point
  std::uint64_t kernel_drops = 0;    ///< dropped for lack of ring space

  bool operator==(const KernelCaptureStats&) const = default;
};

/// Abstract batched packet source. One poll_batch() call appends up to
/// `max` packets to `out` (cleared first) and reports the stream state;
/// view lifetime follows pinned().
class BatchSource {
 public:
  virtual ~BatchSource() = default;

  /// Polls for the next batch. Must never block longer than the
  /// source's own poll timeout (live sources) and never at all for
  /// offline sources.
  virtual SourceStatus poll_batch(std::vector<RawPacketView>& out,
                                  std::size_t max) = 0;

  /// Human-readable reason for the last Error status.
  [[nodiscard]] virtual const std::string& error() const = 0;

  /// Total packets delivered (or skipped) so far.
  [[nodiscard]] virtual std::uint64_t packets_read() const = 0;

  /// True when returned views stay valid until the source is destroyed
  /// (mapped files, owned replay storage). False means views die at the
  /// next poll_batch() call (reused buffers, capture rings).
  [[nodiscard]] virtual bool pinned() const = 0;

  /// Attempts to close and reopen the underlying stream after a stall
  /// or error (watchdog recovery). Default: not supported.
  virtual bool reopen() { return false; }

  /// Kernel capture counters (see KernelCaptureStats). Default: no
  /// kernel stage, all zeros.
  [[nodiscard]] virtual KernelCaptureStats kernel_stats() const { return {}; }

  /// Fast-forwards so the next delivered packet is global packet number
  /// `target` (0-based count from the start of the stream) — the crash-
  /// recovery resume hook. The default implementation consumes and
  /// discards packets; returns false when the position cannot be
  /// reached (source went idle, errored, or ended first).
  virtual bool skip_to(std::uint64_t target) {
    std::vector<RawPacketView> scratch;
    while (packets_read() < target) {
      std::size_t want = static_cast<std::size_t>(target - packets_read());
      if (poll_batch(scratch, want > 1024 ? 1024 : want) != SourceStatus::Batch)
        return false;
    }
    return packets_read() == target;
  }
};

}  // namespace zpm::net
