#include "net/pcapng.h"

#include <array>
#include <cstring>

namespace zpm::net {

namespace {
constexpr std::uint32_t kBlockSectionHeader = 0x0a0d0d0a;
constexpr std::uint32_t kBlockInterface = 0x00000001;
constexpr std::uint32_t kBlockSimplePacket = 0x00000003;
constexpr std::uint32_t kBlockEnhancedPacket = 0x00000006;
constexpr std::uint32_t kByteOrderMagic = 0x1a2b3c4d;
constexpr std::uint32_t kMaxBlockLength = 16 * 1024 * 1024;
constexpr std::uint16_t kOptionTsResol = 9;
constexpr std::uint16_t kLinkTypeEthernet = 1;
}  // namespace

PcapNgReader::PcapNgReader(std::istream& in) : in_(&in) {
  ok_ = true;  // validated lazily at the first block
}

PcapNgReader::PcapNgReader(const std::string& path)
    : file_(std::make_unique<std::ifstream>(path, std::ios::binary)),
      in_(file_.get()) {
  if (!file_->is_open()) {
    error_ = "cannot open " + path;
    return;
  }
  ok_ = true;
}

bool PcapNgReader::read_exact(std::uint8_t* out, std::size_t n) {
  in_->read(reinterpret_cast<char*>(out), static_cast<std::streamsize>(n));
  return in_->gcount() == static_cast<std::streamsize>(n);
}

std::uint32_t PcapNgReader::u32(const std::uint8_t* p) const {
  if (swapped_) {
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | p[3];
  }
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

std::uint16_t PcapNgReader::u16(const std::uint8_t* p) const {
  if (swapped_) return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

bool PcapNgReader::read_section_header(std::uint32_t block_total_length) {
  // Already consumed: type (4) + length (4). Body starts with the
  // byte-order magic.
  std::array<std::uint8_t, 4> magic{};
  if (!read_exact(magic.data(), 4)) {
    error_ = "truncated section header";
    return false;
  }
  std::uint32_t magic_le = std::uint32_t{magic[0]} | (std::uint32_t{magic[1]} << 8) |
                           (std::uint32_t{magic[2]} << 16) |
                           (std::uint32_t{magic[3]} << 24);
  if (magic_le == kByteOrderMagic) {
    swapped_ = false;
  } else if (magic_le == 0x4d3c2b1a) {
    swapped_ = true;
    // Re-read the total length in the correct order.
    std::uint8_t raw[4] = {
        static_cast<std::uint8_t>(block_total_length),
        static_cast<std::uint8_t>(block_total_length >> 8),
        static_cast<std::uint8_t>(block_total_length >> 16),
        static_cast<std::uint8_t>(block_total_length >> 24)};
    block_total_length = u32(raw);
  } else {
    error_ = "bad pcapng byte-order magic";
    return false;
  }
  if (block_total_length < 28 || block_total_length > kMaxBlockLength) {
    error_ = "implausible section header length";
    return false;
  }
  // Skip the rest of the block: version (4), section length (8), options,
  // trailing length (4). 12 bytes of body already consumed (magic is 4 of
  // the 8+4... careful): consumed so far = 8 (type+len) + 4 (magic).
  std::size_t remaining = block_total_length - 12;
  in_->ignore(static_cast<std::streamsize>(remaining));
  if (!in_->good() && !in_->eof()) {
    error_ = "truncated section header body";
    return false;
  }
  // New section: interfaces reset.
  interfaces_.clear();
  return true;
}

bool PcapNgReader::read_interface_block(const std::vector<std::uint8_t>& body) {
  if (body.size() < 8) {
    error_ = "short interface description block";
    return false;
  }
  Interface iface;
  iface.link_type = u16(&body[0]);
  // body[2..3] reserved, body[4..7] snaplen; options follow.
  std::size_t pos = 8;
  while (pos + 4 <= body.size()) {
    std::uint16_t code = u16(&body[pos]);
    std::uint16_t len = u16(&body[pos + 2]);
    pos += 4;
    if (code == 0) break;  // opt_endofopt
    if (pos + len > body.size()) break;
    if (code == kOptionTsResol && len >= 1) {
      std::uint8_t resol = body[pos];
      // Saturate implausibly fine resolutions: a hostile file can
      // declare 2^127 ticks per second, and shifting a 64-bit value by
      // >= 64 (or overflowing the decimal power) is undefined.
      unsigned exponent = resol & 0x7fu;
      if (resol & 0x80) {
        iface.ticks_per_second = exponent >= 64 ? ~0ULL : 1ULL << exponent;
      } else {
        iface.ticks_per_second = 1;
        for (unsigned i = 0; i < exponent && i < 19; ++i)
          iface.ticks_per_second *= 10;
      }
      if (iface.ticks_per_second == 0) iface.ticks_per_second = 1'000'000;
    }
    pos += (len + 3u) & ~3u;  // options padded to 32 bits
  }
  interfaces_.push_back(iface);
  return true;
}

bool PcapNgReader::parse_epb(const std::vector<std::uint8_t>& body,
                             RawPacket& out) {
  if (body.size() < 20) {
    error_ = "short enhanced packet block";
    ok_ = false;
    return false;
  }
  std::uint32_t iface_id = u32(&body[0]);
  std::uint64_t ts = (std::uint64_t{u32(&body[4])} << 32) | u32(&body[8]);
  std::uint32_t captured = u32(&body[12]);
  std::uint32_t original = u32(&body[16]);
  // Size-safe form: `20 + captured` would wrap in 32-bit arithmetic for
  // attacker-chosen captured lengths near UINT32_MAX, bypassing the
  // bounds check and reading far past the block body.
  if (captured > body.size() - 20) {
    error_ = "enhanced packet data exceeds block";
    ok_ = false;
    return false;
  }
  std::uint64_t ticks = 1'000'000;
  if (iface_id < interfaces_.size()) {
    if (interfaces_[iface_id].link_type != kLinkTypeEthernet) return false;
    ticks = interfaces_[iface_id].ticks_per_second;
  }
  out.ts = pcapng_ticks_to_timestamp(ts, ticks);
  out.orig_len = original > captured ? original : 0;
  out.data.assign(body.begin() + 20, body.begin() + 20 + captured);
  ++packets_read_;
  return true;
}

std::optional<RawPacket> PcapNgReader::next() {
  RawPacket pkt;
  if (!next_into(pkt)) return std::nullopt;
  return pkt;
}

bool PcapNgReader::next_into(RawPacket& out) {
  while (ok_) {
    std::array<std::uint8_t, 8> header{};
    in_->read(reinterpret_cast<char*>(header.data()), 8);
    if (in_->gcount() == 0) return false;  // clean EOF
    if (in_->gcount() != 8) {
      ok_ = false;
      error_ = "truncated block header";
      return false;
    }
    // The block type of an SHB is palindromic, so readable either way.
    std::uint32_t type_le = std::uint32_t{header[0]} | (std::uint32_t{header[1]} << 8) |
                            (std::uint32_t{header[2]} << 16) |
                            (std::uint32_t{header[3]} << 24);
    if (type_le == kBlockSectionHeader) {
      std::uint32_t raw_len = std::uint32_t{header[4]} |
                              (std::uint32_t{header[5]} << 8) |
                              (std::uint32_t{header[6]} << 16) |
                              (std::uint32_t{header[7]} << 24);
      if (!read_section_header(raw_len)) {
        ok_ = false;
        return false;
      }
      seen_section_ = true;
      continue;
    }
    if (!seen_section_) {
      // Every pcapng stream must open with a section header block.
      ok_ = false;
      error_ = "not a pcapng stream";
      return false;
    }
    std::uint32_t type = u32(&header[0]);
    std::uint32_t total_len = u32(&header[4]);
    if (total_len < 12 || total_len > kMaxBlockLength || total_len % 4 != 0) {
      ok_ = false;
      error_ = "implausible block length";
      return false;
    }
    body_.resize(total_len - 12);
    if (!read_exact(body_.data(), body_.size())) {
      ok_ = false;
      // Packet-carrying blocks cut off by the end of the file report the
      // same string as the pcap readers (a capture that stopped
      // mid-write is one condition, whatever the container).
      error_ = (type == kBlockEnhancedPacket || type == kBlockSimplePacket)
                   ? "truncated packet"
                   : "truncated block body";
      return false;
    }
    std::array<std::uint8_t, 4> trailer{};
    if (!read_exact(trailer.data(), 4) || u32(trailer.data()) != total_len) {
      ok_ = false;
      error_ = "block trailer mismatch";
      return false;
    }

    switch (type) {
      case kBlockInterface:
        if (!read_interface_block(body_)) {
          ok_ = false;
          return false;
        }
        break;
      case kBlockEnhancedPacket:
        if (parse_epb(body_, out)) return true;
        if (!ok_) return false;
        break;  // non-Ethernet interface: skip
      case kBlockSimplePacket: {
        // SPB: original length (4) + data; timestamp unavailable.
        if (body_.size() < 4) break;
        std::uint32_t orig = u32(&body_[0]);
        std::uint32_t captured =
            std::min<std::uint32_t>(orig, static_cast<std::uint32_t>(body_.size() - 4));
        out.ts = util::Timestamp::from_micros(0);
        out.orig_len = orig > captured ? orig : 0;
        out.data.assign(body_.begin() + 4, body_.begin() + 4 + captured);
        ++packets_read_;
        return true;
      }
      default:
        break;  // unknown block: skip per spec
    }
  }
  return false;
}

std::unique_ptr<PacketSource> open_capture(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe.is_open()) return nullptr;
  std::array<std::uint8_t, 4> magic{};
  probe.read(reinterpret_cast<char*>(magic.data()), 4);
  if (probe.gcount() != 4) return nullptr;
  std::uint32_t magic_le = std::uint32_t{magic[0]} | (std::uint32_t{magic[1]} << 8) |
                           (std::uint32_t{magic[2]} << 16) |
                           (std::uint32_t{magic[3]} << 24);
  probe.close();
  if (magic_le == 0x0a0d0d0a) {
    auto reader = std::make_unique<PcapNgReader>(path);
    return reader->ok() ? std::move(reader) : nullptr;
  }
  // Classic pcap magics (either endianness, µs or ns).
  if (magic_le == 0xa1b2c3d4 || magic_le == 0xd4c3b2a1 || magic_le == 0xa1b23c4d ||
      magic_le == 0x4d3cb2a1) {
    auto reader = std::make_unique<PcapAdapter>(path);
    return reader->ok() ? std::move(reader) : nullptr;
  }
  return nullptr;
}

}  // namespace zpm::net
