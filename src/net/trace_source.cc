#include "net/trace_source.h"

#include <algorithm>

namespace zpm::net {

namespace {
constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
constexpr std::uint32_t kMagicMicrosSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;
constexpr std::uint32_t kMagicNanosSwapped = 0x4d3cb2a1;
constexpr std::uint32_t kMagicPcapNg = 0x0a0d0d0a;
constexpr std::uint32_t kLinkTypeEthernetPcap = 1;
// Must match the streaming readers' caps so both paths reject the same
// hostile inputs with the same diagnostics.
constexpr std::uint32_t kMaxRecordLength = 256 * 1024;
constexpr std::uint32_t kBlockSectionHeader = 0x0a0d0d0a;
constexpr std::uint32_t kBlockInterface = 0x00000001;
constexpr std::uint32_t kBlockSimplePacket = 0x00000003;
constexpr std::uint32_t kBlockEnhancedPacket = 0x00000006;
constexpr std::uint32_t kByteOrderMagic = 0x1a2b3c4d;
constexpr std::uint32_t kMaxBlockLength = 16 * 1024 * 1024;
constexpr std::uint16_t kOptionTsResol = 9;
constexpr std::uint16_t kLinkTypeEthernet = 1;

std::uint32_t u32_le(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}
}  // namespace

// ---------------------------------------------------------------------------
// MappedPcapReader

MappedPcapReader::MappedPcapReader(std::span<const std::uint8_t> bytes)
    : bytes_(bytes) {
  read_global_header();
}

std::uint32_t MappedPcapReader::read_u32(const std::uint8_t* p) const {
  if (swapped_) {
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | p[3];
  }
  return u32_le(p);
}

void MappedPcapReader::read_global_header() {
  if (bytes_.size() < 24) {
    error_ = "truncated global header";
    return;
  }
  std::uint32_t magic_le = u32_le(bytes_.data());
  switch (magic_le) {
    case kMagicMicros: swapped_ = false; nanosecond_ = false; break;
    case kMagicNanos: swapped_ = false; nanosecond_ = true; break;
    case kMagicMicrosSwapped: swapped_ = true; nanosecond_ = false; break;
    case kMagicNanosSwapped: swapped_ = true; nanosecond_ = true; break;
    default:
      error_ = "bad pcap magic";
      return;
  }
  link_type_ = read_u32(&bytes_[20]);
  if (link_type_ != kLinkTypeEthernetPcap) {
    error_ = "unsupported link type " + std::to_string(link_type_);
    return;
  }
  pos_ = 24;
  ok_ = true;
}

std::optional<RawPacketView> MappedPcapReader::next() {
  if (!ok_) return std::nullopt;
  if (pos_ == bytes_.size()) return std::nullopt;  // clean EOF
  if (bytes_.size() - pos_ < 16) {
    ok_ = false;
    error_ = "truncated record header";
    return std::nullopt;
  }
  const std::uint8_t* rec = &bytes_[pos_];
  std::uint32_t ts_sec = read_u32(rec);
  std::uint32_t ts_frac = read_u32(rec + 4);
  std::uint32_t incl_len = read_u32(rec + 8);
  std::uint32_t orig_len = read_u32(rec + 12);
  if (incl_len > kMaxRecordLength) {
    ok_ = false;
    error_ = "implausible record length " + std::to_string(incl_len);
    return std::nullopt;
  }
  if (bytes_.size() - pos_ - 16 < incl_len) {
    ok_ = false;
    error_ = "truncated packet";
    return std::nullopt;
  }
  RawPacketView view;
  view.ts = pcap_record_timestamp(ts_sec, ts_frac, nanosecond_);
  view.orig_len = orig_len > incl_len ? orig_len : 0;
  view.data = bytes_.subspan(pos_ + 16, incl_len);
  pos_ += 16 + incl_len;
  ++packets_read_;
  return view;
}

std::size_t MappedPcapReader::next_batch(std::vector<RawPacketView>& out,
                                         std::size_t max) {
  if (!ok_) return 0;
  const std::size_t size = bytes_.size();
  std::size_t pos = pos_;
  std::size_t n = 0;
  while (n < max && pos != size) {
    if (size - pos < 16) {
      ok_ = false;
      error_ = "truncated record header";
      break;
    }
    const std::uint8_t* rec = &bytes_[pos];
    std::uint32_t incl_len = read_u32(rec + 8);
    if (incl_len > kMaxRecordLength) {
      ok_ = false;
      error_ = "implausible record length " + std::to_string(incl_len);
      break;
    }
    if (size - pos - 16 < incl_len) {
      ok_ = false;
      error_ = "truncated packet";
      break;
    }
    std::uint32_t orig_len = read_u32(rec + 12);
    out.push_back(RawPacketView{
        pcap_record_timestamp(read_u32(rec), read_u32(rec + 4), nanosecond_),
        bytes_.subspan(pos + 16, incl_len),
        orig_len > incl_len ? orig_len : 0});
    pos += 16 + incl_len;
    ++n;
#if defined(__GNUC__) || defined(__clang__)
    // Record headers sit ~one packet apart — an irregular stride the
    // hardware prefetcher does not follow, and each header load feeds
    // the next cursor position, so the misses form a serialized
    // DRAM-latency chain. Prefetch the next header (exact) plus a
    // ladder of same-stride guesses; media traces repeat sizes often
    // enough that several future headers arrive early and the misses
    // overlap instead of serializing. (Needs resident page tables —
    // see MAP_POPULATE in MappedFile — since prefetches to unmapped
    // pages are dropped.)
    if (size - pos >= 16) {
      __builtin_prefetch(&bytes_[pos]);
      std::size_t stride = 16 + incl_len;
      for (std::size_t guess = pos + stride;
           guess + 16 <= size && guess < pos + 12 * stride;
           guess += stride)
        __builtin_prefetch(&bytes_[guess]);
    }
#endif
  }
  pos_ = pos;
  packets_read_ += n;
  return n;
}

// ---------------------------------------------------------------------------
// MappedPcapNgReader

MappedPcapNgReader::MappedPcapNgReader(std::span<const std::uint8_t> bytes)
    : bytes_(bytes) {
  ok_ = true;  // validated lazily at the first block
}

std::uint32_t MappedPcapNgReader::u32(const std::uint8_t* p) const {
  if (swapped_) {
    return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
           (std::uint32_t{p[2]} << 8) | p[3];
  }
  return u32_le(p);
}

std::uint16_t MappedPcapNgReader::u16(const std::uint8_t* p) const {
  if (swapped_) return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

bool MappedPcapNgReader::read_section_header(std::span<const std::uint8_t> block) {
  // `block` starts at the block type; magic sits after type + length.
  if (block.size() < 12) {
    error_ = "truncated section header";
    return false;
  }
  std::uint32_t magic_le = u32_le(&block[8]);
  if (magic_le == kByteOrderMagic) {
    swapped_ = false;
  } else if (magic_le == 0x4d3c2b1a) {
    swapped_ = true;
  } else {
    error_ = "bad pcapng byte-order magic";
    return false;
  }
  std::uint32_t total_len = u32(&block[4]);
  if (total_len < 28 || total_len > kMaxBlockLength) {
    error_ = "implausible section header length";
    return false;
  }
  // Skip the rest of the block; like the streaming reader, a section
  // header truncated by end-of-file is tolerated (the next block read
  // then sees a clean EOF).
  pos_ += std::min<std::size_t>(total_len, bytes_.size() - pos_);
  interfaces_.clear();
  return true;
}

bool MappedPcapNgReader::read_interface_block(std::span<const std::uint8_t> body) {
  if (body.size() < 8) {
    error_ = "short interface description block";
    return false;
  }
  Interface iface;
  iface.link_type = u16(&body[0]);
  std::size_t pos = 8;
  while (pos + 4 <= body.size()) {
    std::uint16_t code = u16(&body[pos]);
    std::uint16_t len = u16(&body[pos + 2]);
    pos += 4;
    if (code == 0) break;  // opt_endofopt
    if (pos + len > body.size()) break;
    if (code == kOptionTsResol && len >= 1) {
      std::uint8_t resol = body[pos];
      // Saturate implausibly fine resolutions; shifting a 64-bit value
      // by >= 64 (or overflowing the decimal power) is undefined.
      unsigned exponent = resol & 0x7fu;
      if (resol & 0x80) {
        iface.ticks_per_second = exponent >= 64 ? ~0ULL : 1ULL << exponent;
      } else {
        iface.ticks_per_second = 1;
        for (unsigned i = 0; i < exponent && i < 19; ++i)
          iface.ticks_per_second *= 10;
      }
      if (iface.ticks_per_second == 0) iface.ticks_per_second = 1'000'000;
    }
    pos += (len + 3u) & ~3u;  // options padded to 32 bits
  }
  interfaces_.push_back(iface);
  return true;
}

std::optional<RawPacketView> MappedPcapNgReader::parse_epb(
    std::span<const std::uint8_t> body) {
  if (body.size() < 20) {
    error_ = "short enhanced packet block";
    ok_ = false;
    return std::nullopt;
  }
  std::uint32_t iface_id = u32(&body[0]);
  std::uint64_t ts = (std::uint64_t{u32(&body[4])} << 32) | u32(&body[8]);
  std::uint32_t captured = u32(&body[12]);
  std::uint32_t original = u32(&body[16]);
  if (captured > body.size() - 20) {
    error_ = "enhanced packet data exceeds block";
    ok_ = false;
    return std::nullopt;
  }
  std::uint64_t ticks = 1'000'000;
  if (iface_id < interfaces_.size()) {
    if (interfaces_[iface_id].link_type != kLinkTypeEthernet)
      return std::nullopt;
    ticks = interfaces_[iface_id].ticks_per_second;
  }
  RawPacketView view;
  view.ts = pcapng_ticks_to_timestamp(ts, ticks);
  view.orig_len = original > captured ? original : 0;
  view.data = body.subspan(20, captured);
  ++packets_read_;
  return view;
}

std::optional<RawPacketView> MappedPcapNgReader::next() {
  while (ok_) {
    if (pos_ == bytes_.size()) return std::nullopt;  // clean EOF
    if (bytes_.size() - pos_ < 8) {
      ok_ = false;
      error_ = "truncated block header";
      return std::nullopt;
    }
    const std::uint8_t* header = &bytes_[pos_];
    // The block type of an SHB is palindromic, so readable either way.
    std::uint32_t type_le = u32_le(header);
    if (type_le == kBlockSectionHeader) {
      if (!read_section_header(bytes_.subspan(pos_))) {
        ok_ = false;
        return std::nullopt;
      }
      seen_section_ = true;
      continue;
    }
    if (!seen_section_) {
      // Every pcapng stream must open with a section header block.
      ok_ = false;
      error_ = "not a pcapng stream";
      return std::nullopt;
    }
    std::uint32_t type = u32(header);
    std::uint32_t total_len = u32(header + 4);
    if (total_len < 12 || total_len > kMaxBlockLength || total_len % 4 != 0) {
      ok_ = false;
      error_ = "implausible block length";
      return std::nullopt;
    }
    std::size_t remaining = bytes_.size() - pos_ - 8;
    std::size_t body_len = total_len - 12;
    if (remaining < body_len) {
      ok_ = false;
      // Same wording as the pcap readers and the streaming pcapng
      // reader for a packet cut off by the end of the file.
      error_ = (type == kBlockEnhancedPacket || type == kBlockSimplePacket)
                   ? "truncated packet"
                   : "truncated block body";
      return std::nullopt;
    }
    std::span<const std::uint8_t> body = bytes_.subspan(pos_ + 8, body_len);
    if (remaining - body_len < 4 ||
        u32(&bytes_[pos_ + 8 + body_len]) != total_len) {
      ok_ = false;
      error_ = "block trailer mismatch";
      return std::nullopt;
    }
    pos_ += total_len;

    switch (type) {
      case kBlockInterface:
        if (!read_interface_block(body)) {
          ok_ = false;
          return std::nullopt;
        }
        break;
      case kBlockEnhancedPacket:
        if (auto view = parse_epb(body)) return view;
        if (!ok_) return std::nullopt;
        break;  // non-Ethernet interface: skip
      case kBlockSimplePacket: {
        // SPB: original length (4) + data; timestamp unavailable.
        if (body.size() < 4) break;
        std::uint32_t orig = u32(&body[0]);
        std::uint32_t captured =
            std::min<std::uint32_t>(orig, static_cast<std::uint32_t>(body.size() - 4));
        RawPacketView view;
        view.ts = util::Timestamp::from_micros(0);
        view.orig_len = orig > captured ? orig : 0;
        view.data = body.subspan(4, captured);
        ++packets_read_;
        return view;
      }
      default:
        break;  // unknown block: skip per spec
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// TraceSource

TraceSource::TraceSource(const std::string& path) {
  file_ = MappedFile::open(path);
  if (file_.valid() && file_.size() >= 4) {
    std::uint32_t magic_le = u32_le(file_.data());
    if (magic_le == kMagicPcapNg) {
      mapped_ng_ = std::make_unique<MappedPcapNgReader>(file_.bytes());
      mapped_ = true;
      ok_ = true;
      return;
    }
    if (magic_le == kMagicMicros || magic_le == kMagicMicrosSwapped ||
        magic_le == kMagicNanos || magic_le == kMagicNanosSwapped) {
      mapped_pcap_ = std::make_unique<MappedPcapReader>(file_.bytes());
      mapped_ = true;
      ok_ = mapped_pcap_->ok();
      if (!ok_) error_ = mapped_pcap_->error();
      return;
    }
    error_ = "unrecognized capture format";
    return;
  }
  // Not mappable (pipe, FIFO, missing mmap) or too short to sniff from
  // the mapping: use the streaming readers.
  streaming_ = open_capture(path);
  if (!streaming_) {
    error_ = "cannot open capture " + path;
    return;
  }
  ok_ = true;
}

TraceSource::~TraceSource() = default;

std::optional<RawPacketView> TraceSource::next() {
  std::optional<RawPacketView> view;
  if (mapped_pcap_) {
    view = mapped_pcap_->next();
  } else if (mapped_ng_) {
    view = mapped_ng_->next();
  } else if (streaming_) {
    if (storage_.empty()) storage_.resize(1);
    if (streaming_->next_into(storage_[0])) view = as_view(storage_[0]);
  }
  if (view) {
    ++packets_read_;
  } else {
    if (mapped_pcap_ && !mapped_pcap_->ok()) {
      ok_ = false;
      error_ = mapped_pcap_->error();
    } else if (mapped_ng_ && !mapped_ng_->ok()) {
      ok_ = false;
      error_ = mapped_ng_->error();
    } else if (streaming_ && !streaming_->ok()) {
      ok_ = false;
      error_ = streaming_->error();
    }
  }
  return view;
}

std::size_t TraceSource::next_batch(std::vector<RawPacketView>& out,
                                    std::size_t max) {
  out.clear();
  if (max == 0) return 0;
  if (streaming_) {
    // Grow (never shrink) the reusable storage so each slot's capacity
    // survives across batches — steady state reads allocate nothing.
    if (storage_.size() < max) storage_.resize(max);
    std::size_t n = 0;
    while (n < max && streaming_->next_into(storage_[n])) {
      out.push_back(as_view(storage_[n]));
      ++n;
    }
    packets_read_ += n;
    if (n < max && !streaming_->ok()) {
      ok_ = false;
      error_ = streaming_->error();
    }
    return n;
  }
  // Mapped paths: loop on the concrete reader so the per-packet work is
  // just the record parse and a push_back into reserved capacity.
  if (mapped_pcap_) {
    std::size_t n = mapped_pcap_->next_batch(out, max);
    if (n < max && !mapped_pcap_->ok()) {
      ok_ = false;
      error_ = mapped_pcap_->error();
    }
  } else if (mapped_ng_) {
    while (out.size() < max) {
      auto view = mapped_ng_->next();
      if (!view) {
        if (!mapped_ng_->ok()) {
          ok_ = false;
          error_ = mapped_ng_->error();
        }
        break;
      }
      out.push_back(*view);
    }
  }
  packets_read_ += out.size();
  return out.size();
}

}  // namespace zpm::net
