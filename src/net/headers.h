// Ethernet II, IPv4, UDP and TCP header parsing and serialization.
//
// Parsers consume from a ByteReader and return std::nullopt on anything
// that is not a well-formed header (truncated, bad version, bad lengths).
// Serializers emit wire bytes via ByteWriter, computing checksums, so the
// simulator produces traces the analyzer re-parses from scratch.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "net/addr.h"
#include "util/bytes.h"

namespace zpm::net {

/// EtherType values this library understands.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

/// IP protocol numbers.
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

/// Ethernet II frame header (no 802.1Q support; campus taps strip tags).
struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ether_type = 0;

  static constexpr std::size_t kSize = 14;

  /// Parses 14 bytes; nullopt if truncated.
  static std::optional<EthernetHeader> parse(util::ByteReader& r);
  void serialize(util::ByteWriter& w) const;
};

/// IPv4 header. Options are validated for length and skipped.
struct Ipv4Header {
  std::uint8_t ihl = 5;  // header length in 32-bit words
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0;  // 3 flag bits + 13-bit fragment offset
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;  // as seen on the wire (serializer computes)
  Ipv4Addr src;
  Ipv4Addr dst;

  [[nodiscard]] std::size_t header_length() const { return std::size_t{ihl} * 4; }
  [[nodiscard]] bool dont_fragment() const { return (flags_fragment & 0x4000) != 0; }
  [[nodiscard]] bool more_fragments() const { return (flags_fragment & 0x2000) != 0; }
  [[nodiscard]] std::uint16_t fragment_offset() const {
    return static_cast<std::uint16_t>(flags_fragment & 0x1fff);
  }

  /// Parses the header (including skipping options). Requires version 4
  /// and ihl >= 5; nullopt otherwise.
  static std::optional<Ipv4Header> parse(util::ByteReader& r);
  /// Serializes with a freshly computed header checksum. `payload_length`
  /// is the L4 segment length used to fill total_length.
  void serialize(util::ByteWriter& w, std::size_t payload_length) const;
};

/// UDP header.
struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;

  static constexpr std::size_t kSize = 8;

  static std::optional<UdpHeader> parse(util::ByteReader& r);
  /// Serializes; checksum is emitted as 0 (legal for IPv4 UDP) unless the
  /// caller filled `checksum` beforehand.
  void serialize(util::ByteWriter& w, std::size_t payload_length) const;
};

/// TCP flag bits.
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpPsh = 0x08;
inline constexpr std::uint8_t kTcpAck = 0x10;

/// TCP header. Options are length-validated and skipped.
struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  // in 32-bit words
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  [[nodiscard]] std::size_t header_length() const { return std::size_t{data_offset} * 4; }
  [[nodiscard]] bool has(std::uint8_t flag) const { return (flags & flag) != 0; }

  static std::optional<TcpHeader> parse(util::ByteReader& r);
  void serialize(util::ByteWriter& w) const;
};

}  // namespace zpm::net
