// Network addresses and subnets.
//
// IPv4 only: the paper's capture pipeline and Zoom's published server
// list are IPv4 (Appendix B), and the campus monitor filters on IPv4
// subnets. Addresses are strong types holding host-order integers so
// comparisons and subnet math are plain integer operations.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace zpm::net {

/// 48-bit Ethernet MAC address.
struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  auto operator<=>(const MacAddr&) const = default;
  [[nodiscard]] std::string to_string() const;
};

/// IPv4 address stored in host byte order.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  explicit constexpr Ipv4Addr(std::uint32_t host_order) : addr_(host_order) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : addr_((static_cast<std::uint32_t>(a) << 24) | (static_cast<std::uint32_t>(b) << 16) |
              (static_cast<std::uint32_t>(c) << 8) | d) {}

  /// Parses dotted-quad notation; nullopt on malformed input.
  static std::optional<Ipv4Addr> parse(std::string_view s);

  [[nodiscard]] constexpr std::uint32_t value() const { return addr_; }
  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Addr&) const = default;

 private:
  std::uint32_t addr_ = 0;
};

/// CIDR block, e.g. 170.114.0.0/16.
class Ipv4Subnet {
 public:
  constexpr Ipv4Subnet() = default;
  constexpr Ipv4Subnet(Ipv4Addr base, int prefix_len)
      : base_(Ipv4Addr(base.value() & mask_for(prefix_len))), prefix_len_(prefix_len) {}

  /// Parses "a.b.c.d/len"; nullopt on malformed input.
  static std::optional<Ipv4Subnet> parse(std::string_view s);

  [[nodiscard]] constexpr bool contains(Ipv4Addr ip) const {
    return (ip.value() & mask_for(prefix_len_)) == base_.value();
  }
  [[nodiscard]] constexpr Ipv4Addr base() const { return base_; }
  [[nodiscard]] constexpr int prefix_len() const { return prefix_len_; }
  /// Number of addresses covered (2^(32-len)).
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - prefix_len_);
  }
  [[nodiscard]] std::string to_string() const;

  constexpr auto operator<=>(const Ipv4Subnet&) const = default;

 private:
  static constexpr std::uint32_t mask_for(int len) {
    return len <= 0 ? 0 : (len >= 32 ? 0xffffffffu : ~((std::uint32_t{1} << (32 - len)) - 1));
  }
  Ipv4Addr base_{};
  int prefix_len_ = 0;
};

}  // namespace zpm::net

template <>
struct std::hash<zpm::net::Ipv4Addr> {
  std::size_t operator()(const zpm::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
