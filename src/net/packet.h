// Decoded-packet abstraction: the interchange type between the trace
// sources (pcap reader, simulator) and every consumer (capture filter,
// Zoom classifier, analyzer).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/five_tuple.h"
#include "net/headers.h"
#include "util/time.h"

namespace zpm::net {

/// A raw captured packet: timestamp plus owned wire bytes (starting at
/// the Ethernet header).
struct RawPacket {
  util::Timestamp ts;
  std::vector<std::uint8_t> data;
};

/// Transport protocol of a decoded packet.
enum class L4Proto : std::uint8_t { Udp, Tcp };

/// A parsed view into one packet. Non-owning: `l4_payload` points into
/// the buffer the packet was decoded from, which must outlive the view.
struct PacketView {
  util::Timestamp ts;
  EthernetHeader eth;
  Ipv4Header ip;
  L4Proto l4 = L4Proto::Udp;
  UdpHeader udp;  // valid when l4 == Udp
  TcpHeader tcp;  // valid when l4 == Tcp
  std::span<const std::uint8_t> l4_payload;

  [[nodiscard]] std::uint16_t src_port() const {
    return l4 == L4Proto::Udp ? udp.src_port : tcp.src_port;
  }
  [[nodiscard]] std::uint16_t dst_port() const {
    return l4 == L4Proto::Udp ? udp.dst_port : tcp.dst_port;
  }
  [[nodiscard]] FiveTuple five_tuple() const {
    return FiveTuple{ip.src, ip.dst, src_port(), dst_port(),
                     l4 == L4Proto::Udp ? kIpProtoUdp : kIpProtoTcp};
  }
  /// Total on-wire size (Ethernet frame length).
  [[nodiscard]] std::size_t wire_length() const { return wire_length_; }

  std::size_t wire_length_ = 0;
};

/// Decodes an Ethernet/IPv4/{UDP,TCP} packet. Returns nullopt for
/// non-IPv4, non-UDP/TCP, fragments past the first, or malformed headers.
/// The returned view borrows `frame`.
std::optional<PacketView> decode_packet(util::Timestamp ts,
                                        std::span<const std::uint8_t> frame);

/// Convenience overload for RawPacket.
std::optional<PacketView> decode_packet(const RawPacket& pkt);

}  // namespace zpm::net
