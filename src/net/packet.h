// Decoded-packet abstraction: the interchange type between the trace
// sources (pcap reader, simulator) and every consumer (capture filter,
// Zoom classifier, analyzer).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/five_tuple.h"
#include "net/headers.h"
#include "util/time.h"

namespace zpm::net {

/// A raw captured packet: timestamp plus owned wire bytes (starting at
/// the Ethernet header).
struct RawPacket {
  util::Timestamp ts;
  std::vector<std::uint8_t> data;
  /// Original on-wire length as reported by the capture format, when it
  /// differs from the captured bytes (snaplen truncation). 0 means "not
  /// reported": the packet is assumed complete.
  std::uint32_t orig_len = 0;

  /// True when the capture recorded fewer bytes than were on the wire.
  [[nodiscard]] bool is_truncated() const { return orig_len > data.size(); }
};

/// A non-owning raw captured packet: the zero-copy counterpart of
/// RawPacket used by the batched ingest path. `data` points into
/// whatever buffer the trace source yields records from (an mmap'd file
/// region or a reusable block buffer) and is only valid for the
/// lifetime the source documents.
struct RawPacketView {
  util::Timestamp ts;
  std::span<const std::uint8_t> data;
  /// See RawPacket::orig_len.
  std::uint32_t orig_len = 0;

  [[nodiscard]] bool is_truncated() const { return orig_len > data.size(); }

  /// Deep copy, for consumers that need to own the bytes.
  [[nodiscard]] RawPacket to_owned() const {
    return RawPacket{ts, std::vector<std::uint8_t>(data.begin(), data.end()),
                     orig_len};
  }
};

/// Borrows an owned packet as a view (valid while `pkt` lives).
inline RawPacketView as_view(const RawPacket& pkt) {
  return RawPacketView{pkt.ts, pkt.data, pkt.orig_len};
}

/// Why decode_packet() rejected a frame. Used by the analyzer's health
/// accounting to attribute every dropped record to a cause.
enum class DecodeFailure : std::uint8_t {
  None,           // decode succeeded
  TruncatedEth,   // frame shorter than an Ethernet header
  NonIpv4,        // ethertype != 0x0800 (ARP, IPv6, LLDP, ...)
  BadIpHeader,    // IPv4 header truncated or self-inconsistent
  IpFragment,     // non-first fragment (no L4 header to parse)
  UnsupportedL4,  // IP protocol other than UDP/TCP
  BadL4Header,    // UDP/TCP header truncated or self-inconsistent
};

/// Transport protocol of a decoded packet.
enum class L4Proto : std::uint8_t { Udp, Tcp };

/// A parsed view into one packet. Non-owning: `l4_payload` points into
/// the buffer the packet was decoded from, which must outlive the view.
struct PacketView {
  util::Timestamp ts;
  EthernetHeader eth;
  Ipv4Header ip;
  L4Proto l4 = L4Proto::Udp;
  UdpHeader udp;  // valid when l4 == Udp
  TcpHeader tcp;  // valid when l4 == Tcp
  std::span<const std::uint8_t> l4_payload;

  [[nodiscard]] std::uint16_t src_port() const {
    return l4 == L4Proto::Udp ? udp.src_port : tcp.src_port;
  }
  [[nodiscard]] std::uint16_t dst_port() const {
    return l4 == L4Proto::Udp ? udp.dst_port : tcp.dst_port;
  }
  [[nodiscard]] FiveTuple five_tuple() const {
    return FiveTuple{ip.src, ip.dst, src_port(), dst_port(),
                     l4 == L4Proto::Udp ? kIpProtoUdp : kIpProtoTcp};
  }
  /// Total on-wire size (Ethernet frame length).
  [[nodiscard]] std::size_t wire_length() const { return wire_length_; }

  std::size_t wire_length_ = 0;
};

/// Decodes an Ethernet/IPv4/{UDP,TCP} packet. Returns nullopt for
/// non-IPv4, non-UDP/TCP, fragments past the first, or malformed headers.
/// The returned view borrows `frame`. When `failure` is non-null it is
/// set to the rejection cause (or DecodeFailure::None on success).
std::optional<PacketView> decode_packet(util::Timestamp ts,
                                        std::span<const std::uint8_t> frame,
                                        DecodeFailure* failure = nullptr);

/// Convenience overload for RawPacket.
std::optional<PacketView> decode_packet(const RawPacket& pkt,
                                        DecodeFailure* failure = nullptr);

}  // namespace zpm::net
