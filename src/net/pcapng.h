// pcapng (pcap Next Generation) reader — the format modern tcpdump and
// Wireshark write by default. Supports Section Header, Interface
// Description, Enhanced Packet and Simple Packet blocks, per-interface
// timestamp resolution, and both byte orders. Unknown block types are
// skipped, as the spec requires.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "net/pcap.h"

namespace zpm::net {

/// Converts a pcapng 64-bit interface timestamp to the internal
/// microsecond tick, shared by the streaming and mapped readers.
inline util::Timestamp pcapng_ticks_to_timestamp(std::uint64_t ts,
                                                 std::uint64_t ticks) {
  if (ticks == 1'000'000) {
    return util::Timestamp::from_micros(static_cast<std::int64_t>(ts));
  }
  long double micros = static_cast<long double>(ts) /
                       static_cast<long double>(ticks) * 1'000'000.0L;
  // Clamp before the cast: converting a long double beyond the int64
  // range is undefined behaviour, and a hostile file can pick a coarse
  // if_tsresol plus an all-ones timestamp to trigger exactly that.
  constexpr long double kMaxMicros = 9'000'000'000'000'000'000.0L;
  if (micros > kMaxMicros) micros = kMaxMicros;
  return util::Timestamp::from_micros(static_cast<std::int64_t>(micros));
}

/// Abstract packet source: what the analyzer consumes, regardless of
/// capture file format.
class PacketSource {
 public:
  virtual ~PacketSource() = default;
  virtual std::optional<RawPacket> next() = 0;
  /// Reads the next record into `out`, reusing out.data's capacity
  /// where the format allows (the allocation-light form used by the
  /// batched ingest fallback). Returns false at end of file / on error.
  virtual bool next_into(RawPacket& out) {
    auto pkt = next();
    if (!pkt) return false;
    out = std::move(*pkt);
    return true;
  }
  [[nodiscard]] virtual bool ok() const = 0;
  [[nodiscard]] virtual const std::string& error() const = 0;
};

/// Reads pcapng files sequentially.
class PcapNgReader : public PacketSource {
 public:
  explicit PcapNgReader(std::istream& in);
  explicit PcapNgReader(const std::string& path);

  [[nodiscard]] bool ok() const override { return ok_; }
  [[nodiscard]] const std::string& error() const override { return error_; }

  std::optional<RawPacket> next() override;
  bool next_into(RawPacket& out) override;
  [[nodiscard]] std::uint64_t packets_read() const { return packets_read_; }

 private:
  struct Interface {
    std::uint16_t link_type = 0;
    /// Ticks per second of this interface's timestamps.
    std::uint64_t ticks_per_second = 1'000'000;
  };

  bool read_exact(std::uint8_t* out, std::size_t n);
  std::uint32_t u32(const std::uint8_t* p) const;
  std::uint16_t u16(const std::uint8_t* p) const;
  bool read_section_header(std::uint32_t block_total_length);
  bool read_interface_block(const std::vector<std::uint8_t>& body);
  bool parse_epb(const std::vector<std::uint8_t>& body, RawPacket& out);

  std::unique_ptr<std::ifstream> file_;
  std::istream* in_;
  bool ok_ = false;
  bool swapped_ = false;
  bool seen_section_ = false;
  std::vector<Interface> interfaces_;
  std::vector<std::uint8_t> body_;  // reused per-block scratch buffer
  std::uint64_t packets_read_ = 0;
  std::string error_;
};

/// Adapts the classic-format PcapReader to the PacketSource interface.
class PcapAdapter : public PacketSource {
 public:
  explicit PcapAdapter(const std::string& path) : reader_(path) {}
  std::optional<RawPacket> next() override { return reader_.next(); }
  bool next_into(RawPacket& out) override { return reader_.next_into(out); }
  [[nodiscard]] bool ok() const override { return reader_.ok(); }
  [[nodiscard]] const std::string& error() const override { return reader_.error(); }

 private:
  PcapReader reader_;
};

/// Opens a capture file of either format (classic pcap or pcapng),
/// sniffing the magic number. Returns nullptr (with no throw) when the
/// file cannot be opened or is neither format.
std::unique_ptr<PacketSource> open_capture(const std::string& path);

}  // namespace zpm::net
