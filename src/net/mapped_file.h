// Read-only memory-mapped file: the foundation of the zero-copy ingest
// path. Mapping the whole trace lets the pcap/pcapng record parsers
// yield spans pointing straight into the page cache instead of copying
// every record into a heap buffer — the paper's 1.8B-packet deployment
// is ingest-bound, and the per-record copy is the first cost to go.
//
// Only regular files can be mapped; pipes, FIFOs and stdin fall back to
// the streaming readers (see net::TraceSource).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

namespace zpm::net {

/// RAII read-only mmap of a whole file. Move-only; the mapping lives
/// until destruction, so views into it stay valid for the object's
/// lifetime.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Returns an unmapped (empty()) object when
  /// the file cannot be opened, is not a regular file, or mmap is
  /// unavailable — callers use the streaming fallback then. A mapped
  /// zero-byte regular file is valid (data() == nullptr, size() == 0).
  static MappedFile open(const std::string& path);

  /// True when a mapping (possibly zero-length) is held.
  [[nodiscard]] bool valid() const { return valid_; }
  [[nodiscard]] const std::uint8_t* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return {data_, size_};
  }

 private:
  void reset();

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool valid_ = false;
};

}  // namespace zpm::net
