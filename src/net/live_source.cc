#include "net/live_source.h"

#include <chrono>
#include <cstring>

#include "net/trace_source.h"

#if defined(__linux__)
#define ZPM_HAVE_AF_PACKET 1
#include <arpa/inet.h>
#include <linux/if_ether.h>
#include <linux/if_packet.h>
#include <net/if.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#if defined(ZPM_HAVE_PCAP)
#include <pcap/pcap.h>
#endif

namespace zpm::net {

namespace {
std::int64_t steady_now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

// ---------------------------------------------------------------------------
// LiveSource

struct LiveSource::Impl {
#if defined(ZPM_HAVE_AF_PACKET)
  int fd = -1;
  std::uint8_t* ring = nullptr;
  std::size_t ring_len = 0;
  std::size_t block_cursor = 0;  // next ring block to inspect
  // Partially-drained block (a block can hold more frames than one
  // poll_batch() asks for):
  tpacket_block_desc* blk = nullptr;
  const std::uint8_t* frame = nullptr;
  std::uint32_t frames_left = 0;
  // Fully-drained blocks whose frames were handed out in the most
  // recent batch. The caller's views point into them, so they stay
  // claimed until the next poll_batch() call invalidates the batch.
  std::vector<tpacket_block_desc*> retired;
  LiveSourceStats stats;  // accumulated: the kernel counter resets on read

  bool open_af_packet(const LiveSourceConfig& config, std::string& error);
  void close_af_packet();
  void release_block();
  void retire_block();
  void release_retired();
  bool claim_block(const LiveSourceConfig& config);
#endif
#if defined(ZPM_HAVE_PCAP)
  pcap_t* pcap = nullptr;
  std::vector<RawPacket> storage;  // reused batch copies (pcap yields one
                                   // borrowed packet at a time)
#endif
  bool using_pcap = false;
};

#if defined(ZPM_HAVE_AF_PACKET)
/// Opens the AF_PACKET TPACKET_V3 ring. On failure sets `error` and
/// leaves the ring closed.
bool LiveSource::Impl::open_af_packet(const LiveSourceConfig& config,
                                      std::string& error) {
  Impl& impl = *this;
  unsigned ifindex = if_nametoindex(config.interface.c_str());
  if (ifindex == 0) {
    error = "live capture: unknown interface " + config.interface;
    return false;
  }
  int sock_fd = ::socket(AF_PACKET, SOCK_RAW, htons(ETH_P_ALL));
  if (sock_fd < 0) {
    error = std::string("live capture: socket(AF_PACKET): ") +
            std::strerror(errno);
    return false;
  }
  int version = TPACKET_V3;
  if (::setsockopt(sock_fd, SOL_PACKET, PACKET_VERSION, &version, sizeof(version)) <
      0) {
    error = std::string("live capture: PACKET_VERSION: ") +
            std::strerror(errno);
    ::close(sock_fd);
    return false;
  }
  tpacket_req3 req{};
  req.tp_block_size = static_cast<std::uint32_t>(config.block_size);
  req.tp_block_nr = static_cast<std::uint32_t>(config.block_count);
  req.tp_frame_size = 2048;  // v3 packs variable-length frames; nominal
  req.tp_frame_nr = static_cast<std::uint32_t>(
      config.block_size / 2048 * config.block_count);
  req.tp_retire_blk_tov = config.block_timeout_ms;
  if (::setsockopt(sock_fd, SOL_PACKET, PACKET_RX_RING, &req, sizeof(req)) < 0) {
    error = std::string("live capture: PACKET_RX_RING: ") +
            std::strerror(errno);
    ::close(sock_fd);
    return false;
  }
  std::size_t map_len = config.block_size * config.block_count;
  void* mem = ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_LOCKED, sock_fd, 0);
  if (mem == MAP_FAILED) {
    // MAP_LOCKED can exceed RLIMIT_MEMLOCK; retry unlocked before failing.
    mem = ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE, MAP_SHARED, sock_fd, 0);
  }
  if (mem == MAP_FAILED) {
    error = std::string("live capture: mmap ring: ") + std::strerror(errno);
    ::close(sock_fd);
    return false;
  }
  sockaddr_ll addr{};
  addr.sll_family = AF_PACKET;
  addr.sll_protocol = htons(ETH_P_ALL);
  addr.sll_ifindex = static_cast<int>(ifindex);
  if (::bind(sock_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    error = std::string("live capture: bind ") + config.interface + ": " +
            std::strerror(errno);
    ::munmap(mem, map_len);
    ::close(sock_fd);
    return false;
  }
  impl.fd = sock_fd;
  impl.ring = static_cast<std::uint8_t*>(mem);
  impl.ring_len = map_len;
  impl.block_cursor = 0;
  impl.blk = nullptr;
  impl.frames_left = 0;
  impl.retired.clear();
  return true;
}

void LiveSource::Impl::close_af_packet() {
  Impl& impl = *this;
  if (impl.ring != nullptr) {
    ::munmap(impl.ring, impl.ring_len);
    impl.ring = nullptr;
  }
  if (impl.fd >= 0) {
    ::close(impl.fd);
    impl.fd = -1;
  }
  impl.blk = nullptr;
  impl.frames_left = 0;
  impl.retired.clear();  // ring unmapped; nothing to hand back
}

/// Releases the drained block back to the kernel immediately. Only safe
/// when no returned views point into it (e.g. an empty timeout-retired
/// block); otherwise use retire_block().
void LiveSource::Impl::release_block() {
  Impl& impl = *this;
  if (impl.blk == nullptr) return;
  __atomic_store_n(&impl.blk->hdr.bh1.block_status, TP_STATUS_KERNEL,
                   __ATOMIC_RELEASE);
  impl.blk = nullptr;
  impl.frames_left = 0;
}

/// Parks the drained block on the retired list instead of releasing it:
/// the batch just returned still holds views into it, and the kernel
/// must not overwrite it until the next poll_batch() call.
void LiveSource::Impl::retire_block() {
  Impl& impl = *this;
  if (impl.blk == nullptr) return;
  impl.retired.push_back(impl.blk);
  impl.blk = nullptr;
  impl.frames_left = 0;
}

/// Hands all retired blocks back to the kernel. Called at the top of
/// poll_batch(), once the previous batch's views are dead.
void LiveSource::Impl::release_retired() {
  for (tpacket_block_desc* desc : retired)
    __atomic_store_n(&desc->hdr.bh1.block_status, TP_STATUS_KERNEL,
                     __ATOMIC_RELEASE);
  retired.clear();
}

/// Claims the next kernel-filled block, if any.
bool LiveSource::Impl::claim_block(const LiveSourceConfig& config) {
  Impl& impl = *this;
  auto* desc = reinterpret_cast<tpacket_block_desc*>(
      impl.ring + impl.block_cursor * config.block_size);
  std::uint32_t status =
      __atomic_load_n(&desc->hdr.bh1.block_status, __ATOMIC_ACQUIRE);
  if ((status & TP_STATUS_USER) == 0) return false;
  impl.block_cursor = (impl.block_cursor + 1) % config.block_count;
  impl.blk = desc;
  impl.frames_left = desc->hdr.bh1.num_pkts;
  impl.frame = reinterpret_cast<const std::uint8_t*>(desc) +
               desc->hdr.bh1.offset_to_first_pkt;
  if (impl.frames_left == 0) release_block();  // timeout-retired, empty
  return true;
}
#endif  // ZPM_HAVE_AF_PACKET

LiveSource::LiveSource(LiveSourceConfig config) : config_(std::move(config)) {
  open();
}

LiveSource::~LiveSource() { close(); }

void LiveSource::open() {
  ok_ = false;
  impl_ = std::make_unique<Impl>();
  if (config_.interface.empty()) {
    error_ = "live capture: no interface configured";
    return;
  }
#if defined(ZPM_HAVE_AF_PACKET)
  if (!config_.prefer_pcap) {
    if (impl_->open_af_packet(config_, error_)) {
      ok_ = true;
      return;
    }
  }
#endif
#if defined(ZPM_HAVE_PCAP)
  {
    char errbuf[PCAP_ERRBUF_SIZE] = {0};
    impl_->pcap = pcap_open_live(config_.interface.c_str(), 65535, 1,
                                 config_.poll_timeout_ms, errbuf);
    if (impl_->pcap != nullptr) {
      impl_->using_pcap = true;
      ok_ = true;
      error_.clear();
      return;
    }
    if (error_.empty())
      error_ = std::string("live capture: pcap_open_live: ") + errbuf;
  }
#endif
  if (error_.empty())
    error_ =
        "live capture unsupported on this platform "
        "(no AF_PACKET; built without libpcap)";
}

void LiveSource::close() {
  if (!impl_) return;
#if defined(ZPM_HAVE_PCAP)
  if (impl_->pcap != nullptr) {
    pcap_close(impl_->pcap);
    impl_->pcap = nullptr;
  }
#endif
#if defined(ZPM_HAVE_AF_PACKET)
  impl_->close_af_packet();
#endif
  impl_.reset();
}

bool LiveSource::reopen() {
  close();
  open();
  return ok_;
}

std::string_view LiveSource::backend() const {
  if (!ok_) return "none";
  if (impl_ && impl_->using_pcap) return "pcap-live";
  return "af_packet-v3";
}

SourceStatus LiveSource::poll_batch(std::vector<RawPacketView>& out,
                                    std::size_t max) {
  out.clear();
  if (!ok_) return SourceStatus::Error;
#if defined(ZPM_HAVE_PCAP)
  if (impl_->using_pcap) {
    // pcap yields one borrowed packet per call; batch by copying into
    // reused storage (capacity persists, steady state allocation-free).
    if (impl_->storage.size() < max) impl_->storage.resize(max);
    std::size_t n = 0;
    while (n < max) {
      pcap_pkthdr* hdr = nullptr;
      const u_char* data = nullptr;
      int rc = pcap_next_ex(impl_->pcap, &hdr, &data);
      if (rc == 0) break;  // timeout
      if (rc != 1) {
        if (n > 0) break;
        error_ = std::string("live capture: ") + pcap_geterr(impl_->pcap);
        ok_ = false;
        return SourceStatus::Error;
      }
      RawPacket& slot = impl_->storage[n];
      slot.ts = util::Timestamp::from_pcap(
          static_cast<std::uint32_t>(hdr->ts.tv_sec),
          static_cast<std::uint32_t>(hdr->ts.tv_usec));
      slot.data.assign(data, data + hdr->caplen);
      slot.orig_len = hdr->len > hdr->caplen ? hdr->len : 0;
      out.push_back(as_view(slot));
      ++n;
    }
    packets_read_ += n;
    return n > 0 ? SourceStatus::Batch : SourceStatus::Idle;
  }
#endif
#if defined(ZPM_HAVE_AF_PACKET)
  // The previous batch's views are dead as of this call (documented
  // contract), so blocks fully drained by that batch can now go back to
  // the kernel. A partially-drained block stays claimed either way.
  impl_->release_retired();
  if (impl_->blk == nullptr && !impl_->claim_block(config_)) {
    pollfd pfd{};
    pfd.fd = impl_->fd;
    pfd.events = POLLIN | POLLERR;
    int rc = ::poll(&pfd, 1, config_.poll_timeout_ms);
    if (rc < 0 && errno != EINTR) {
      error_ = std::string("live capture: poll: ") + std::strerror(errno);
      ok_ = false;
      return SourceStatus::Error;
    }
    if (!impl_->claim_block(config_)) return SourceStatus::Idle;
  }
  std::size_t n = 0;
  while (n < max && impl_->blk != nullptr) {
    while (n < max && impl_->frames_left > 0) {
      const auto* hdr = reinterpret_cast<const tpacket3_hdr*>(impl_->frame);
      RawPacketView view;
      view.ts = util::Timestamp::from_pcap(hdr->tp_sec,
                                           (hdr->tp_nsec + 500) / 1000);
      view.data = std::span<const std::uint8_t>(impl_->frame + hdr->tp_mac,
                                                hdr->tp_snaplen);
      view.orig_len = hdr->tp_len > hdr->tp_snaplen ? hdr->tp_len : 0;
      out.push_back(view);
      ++n;
      --impl_->frames_left;
      impl_->frame += hdr->tp_next_offset;
    }
    if (impl_->frames_left == 0) {
      impl_->retire_block();  // views in `out` still point into it
      if (n < max) impl_->claim_block(config_);  // drain the next ready block
    }
  }
  packets_read_ += n;
  return n > 0 ? SourceStatus::Batch : SourceStatus::Idle;
#else
  (void)max;
  return SourceStatus::Error;
#endif
}

LiveSourceStats LiveSource::stats() const {
#if defined(ZPM_HAVE_AF_PACKET)
  if (impl_ && impl_->fd >= 0) {
    tpacket_stats_v3 ks{};
    socklen_t len = sizeof(ks);
    if (::getsockopt(impl_->fd, SOL_PACKET, PACKET_STATISTICS, &ks, &len) ==
        0) {
      impl_->stats.kernel_packets += ks.tp_packets;
      impl_->stats.kernel_drops += ks.tp_drops;
    }
    return impl_->stats;
  }
#endif
  return {};
}

// ---------------------------------------------------------------------------
// ReplayLiveSource

ReplayLiveSource::ReplayLiveSource(ReplayLiveSourceConfig config)
    : config_(std::move(config)) {
  TraceSource src(config_.path);
  if (!src.ok()) {
    error_ = "replay: cannot open " + config_.path + " (" + src.error() + ")";
    return;
  }
  while (auto view = src.next()) packets_.push_back(view->to_owned());
  if (!src.ok()) {
    error_ = "replay: " + config_.path + ": " + src.error();
    return;
  }
  if (packets_.empty()) {
    error_ = "replay: " + config_.path + " contains no records";
    return;
  }
  util::Duration span = packets_.back().ts - packets_.front().ts;
  if (span < util::Duration::micros(0)) span = util::Duration::micros(0);
  stride_ = span + config_.loop_gap;
  ok_ = true;
}

SourceStatus ReplayLiveSource::poll_batch(std::vector<RawPacketView>& out,
                                          std::size_t max) {
  out.clear();
  if (!ok_) return SourceStatus::Error;
  const std::uint64_t per_loop = packets_.size();
  const bool infinite = config_.loops == 0;
  const std::uint64_t budget =
      infinite ? ~std::uint64_t{0} : config_.loops * per_loop;
  if (position_ >= budget) return SourceStatus::EndOfStream;
  if (stalled_ ||
      (config_.stall_after_packets > 0 &&
       position_ >= config_.stall_after_packets)) {
    stalled_ = true;
    return SourceStatus::Idle;
  }
  std::size_t want = max;
  if (config_.stall_after_packets > 0) {
    // Stall at exactly the trigger: never deliver packets past it in
    // the same batch, so the stall position is deterministic.
    const std::uint64_t until = config_.stall_after_packets - position_;
    if (until < want) want = static_cast<std::size_t>(until);
  }
  if (config_.pace_pps > 0) {
    // Wall-clock pacing: deliver no faster than pace_pps. Affects batch
    // *timing and sizing* only; the packet sequence is unchanged. The
    // allowance is relative to pace_base_, the position where pacing
    // (re)started — skip_to()/reopen() re-base so a resumed source is
    // paced on packets delivered since resume, not absolute position.
    std::int64_t now = steady_now_us();
    if (!pace_started_) {
      pace_started_ = true;
      pace_epoch_us_ = now;
      pace_base_ = position_;
    }
    const std::uint64_t allowed =
        pace_base_ +
        static_cast<std::uint64_t>(static_cast<double>(now - pace_epoch_us_) *
                                   config_.pace_pps / 1e6);
    if (position_ >= allowed) return SourceStatus::Idle;
    std::uint64_t slack = allowed - position_;
    if (slack < want) want = static_cast<std::size_t>(slack);
  }
  std::size_t n = 0;
  while (n < want && position_ < budget) {
    std::uint64_t loop = position_ / per_loop;
    const RawPacket& pkt = packets_[position_ % per_loop];
    out.push_back(RawPacketView{
        pkt.ts + stride_ * static_cast<std::int64_t>(loop), pkt.data,
        pkt.orig_len});
    ++position_;
    ++n;
  }
  return SourceStatus::Batch;  // want >= 1 and budget > position_ on entry
}

bool ReplayLiveSource::reopen() {
  if (!ok_) return false;
  // One-shot hook: a reopened source is "fixed" — disarm the trigger
  // so the replay resumes where it stalled instead of re-stalling on
  // the very next poll.
  stalled_ = false;
  config_.stall_after_packets = 0;
  pace_started_ = false;  // re-base pacing on the next poll
  ++reopens_;
  return true;
}

bool ReplayLiveSource::skip_to(std::uint64_t target) {
  if (!ok_) return false;
  if (config_.loops != 0 && target > config_.loops * packets_.size())
    return false;
  position_ = target;
  pace_started_ = false;  // re-base pacing on the next poll
  return true;
}

}  // namespace zpm::net
