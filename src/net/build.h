// Frame construction helpers: compose full Ethernet/IPv4/{UDP,TCP}
// frames from L4 payloads. The simulator uses these so every packet the
// analyzer sees went through real serialization.
#pragma once

#include <span>

#include "net/headers.h"
#include "net/packet.h"

namespace zpm::net {

/// Deterministic per-host MAC derived from the IPv4 address (the campus
/// tap never cares about real MACs; this keeps frames valid and stable).
inline MacAddr mac_for(Ipv4Addr ip) {
  std::uint32_t v = ip.value();
  return MacAddr{{0x02, 0x5a, static_cast<std::uint8_t>(v >> 24),
                  static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 8),
                  static_cast<std::uint8_t>(v)}};
}

/// Builds an Ethernet/IPv4/UDP frame around `payload`.
inline RawPacket build_udp(util::Timestamp ts, Ipv4Addr src_ip, std::uint16_t src_port,
                           Ipv4Addr dst_ip, std::uint16_t dst_port,
                           std::span<const std::uint8_t> payload,
                           std::uint16_t ip_id = 0, std::uint8_t ttl = 64) {
  util::ByteWriter w(EthernetHeader::kSize + 20 + UdpHeader::kSize + payload.size());
  EthernetHeader eth{mac_for(dst_ip), mac_for(src_ip), kEtherTypeIpv4};
  eth.serialize(w);
  Ipv4Header ip;
  ip.identification = ip_id;
  ip.ttl = ttl;
  ip.protocol = kIpProtoUdp;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.serialize(w, UdpHeader::kSize + payload.size());
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.serialize(w, payload.size());
  w.bytes(payload);
  return RawPacket{ts, w.take()};
}

/// Builds an Ethernet/IPv4/TCP frame (no options) around `payload`.
inline RawPacket build_tcp(util::Timestamp ts, Ipv4Addr src_ip, std::uint16_t src_port,
                           Ipv4Addr dst_ip, std::uint16_t dst_port, std::uint32_t seq,
                           std::uint32_t ack, std::uint8_t flags,
                           std::span<const std::uint8_t> payload,
                           std::uint16_t window = 65535, std::uint8_t ttl = 64) {
  util::ByteWriter w(EthernetHeader::kSize + 20 + 20 + payload.size());
  EthernetHeader eth{mac_for(dst_ip), mac_for(src_ip), kEtherTypeIpv4};
  eth.serialize(w);
  Ipv4Header ip;
  ip.ttl = ttl;
  ip.protocol = kIpProtoTcp;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.serialize(w, 20 + payload.size());
  TcpHeader tcp;
  tcp.src_port = src_port;
  tcp.dst_port = dst_port;
  tcp.seq = seq;
  tcp.ack = ack;
  tcp.flags = flags;
  tcp.window = window;
  tcp.serialize(w);
  w.bytes(payload);
  return RawPacket{ts, w.take()};
}

}  // namespace zpm::net
