#include "net/headers.h"

#include "net/checksum.h"

namespace zpm::net {

std::optional<EthernetHeader> EthernetHeader::parse(util::ByteReader& r) {
  if (!r.can_read(kSize)) return std::nullopt;
  EthernetHeader h;
  for (auto& b : h.dst.bytes) b = r.u8();
  for (auto& b : h.src.bytes) b = r.u8();
  h.ether_type = r.u16be();
  return h;
}

void EthernetHeader::serialize(util::ByteWriter& w) const {
  w.bytes(dst.bytes);
  w.bytes(src.bytes);
  w.u16be(ether_type);
}

std::optional<Ipv4Header> Ipv4Header::parse(util::ByteReader& r) {
  if (!r.can_read(20)) return std::nullopt;
  std::uint8_t ver_ihl = r.u8();
  if ((ver_ihl >> 4) != 4) return std::nullopt;
  Ipv4Header h;
  h.ihl = ver_ihl & 0x0f;
  if (h.ihl < 5) return std::nullopt;
  h.dscp_ecn = r.u8();
  h.total_length = r.u16be();
  h.identification = r.u16be();
  h.flags_fragment = r.u16be();
  h.ttl = r.u8();
  h.protocol = r.u8();
  h.checksum = r.u16be();
  h.src = Ipv4Addr(r.u32be());
  h.dst = Ipv4Addr(r.u32be());
  if (h.total_length < h.header_length()) return std::nullopt;
  std::size_t options = h.header_length() - 20;
  if (options > 0) {
    if (!r.can_read(options)) return std::nullopt;
    r.skip(options);
  }
  return r.ok() ? std::optional(h) : std::nullopt;
}

void Ipv4Header::serialize(util::ByteWriter& w, std::size_t payload_length) const {
  util::ByteWriter hdr(20);
  hdr.u8(static_cast<std::uint8_t>((4 << 4) | 5));  // no options emitted
  hdr.u8(dscp_ecn);
  hdr.u16be(static_cast<std::uint16_t>(20 + payload_length));
  hdr.u16be(identification);
  hdr.u16be(flags_fragment);
  hdr.u8(ttl);
  hdr.u8(protocol);
  hdr.u16be(0);  // checksum placeholder
  hdr.u32be(src.value());
  hdr.u32be(dst.value());
  std::uint16_t csum = internet_checksum(hdr.view());
  hdr.patch_u16be(10, csum);
  w.bytes(hdr.view());
}

std::optional<UdpHeader> UdpHeader::parse(util::ByteReader& r) {
  if (!r.can_read(kSize)) return std::nullopt;
  UdpHeader h;
  h.src_port = r.u16be();
  h.dst_port = r.u16be();
  h.length = r.u16be();
  h.checksum = r.u16be();
  if (h.length < kSize) return std::nullopt;
  return h;
}

void UdpHeader::serialize(util::ByteWriter& w, std::size_t payload_length) const {
  w.u16be(src_port);
  w.u16be(dst_port);
  w.u16be(static_cast<std::uint16_t>(kSize + payload_length));
  w.u16be(checksum);
}

std::optional<TcpHeader> TcpHeader::parse(util::ByteReader& r) {
  if (!r.can_read(20)) return std::nullopt;
  TcpHeader h;
  h.src_port = r.u16be();
  h.dst_port = r.u16be();
  h.seq = r.u32be();
  h.ack = r.u32be();
  std::uint8_t offset_reserved = r.u8();
  h.data_offset = offset_reserved >> 4;
  if (h.data_offset < 5) return std::nullopt;
  h.flags = r.u8();
  h.window = r.u16be();
  h.checksum = r.u16be();
  h.urgent = r.u16be();
  std::size_t options = h.header_length() - 20;
  if (options > 0) {
    if (!r.can_read(options)) return std::nullopt;
    r.skip(options);
  }
  return r.ok() ? std::optional(h) : std::nullopt;
}

void TcpHeader::serialize(util::ByteWriter& w) const {
  w.u16be(src_port);
  w.u16be(dst_port);
  w.u32be(seq);
  w.u32be(ack);
  w.u8(static_cast<std::uint8_t>(5 << 4));  // no options emitted
  w.u8(flags);
  w.u16be(window);
  w.u16be(checksum);
  w.u16be(urgent);
}

}  // namespace zpm::net
