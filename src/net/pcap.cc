#include "net/pcap.h"

#include <array>
#include <cstring>

namespace zpm::net {

namespace {
constexpr std::uint32_t kMagicMicros = 0xa1b2c3d4;
constexpr std::uint32_t kMagicMicrosSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanos = 0xa1b23c4d;
constexpr std::uint32_t kMagicNanosSwapped = 0x4d3cb2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;
// Sanity cap: no real Ethernet capture record exceeds this.
constexpr std::uint32_t kMaxRecordLength = 256 * 1024;
}  // namespace

PcapReader::PcapReader(std::istream& in) : in_(&in) { read_global_header(); }

PcapReader::PcapReader(const std::string& path)
    : file_(std::make_unique<std::ifstream>(path, std::ios::binary)), in_(file_.get()) {
  if (!file_->is_open()) {
    error_ = "cannot open " + path;
    return;
  }
  read_global_header();
}

std::uint32_t PcapReader::read_u32(const std::uint8_t* p) const {
  if (swapped_) {
    return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
           (static_cast<std::uint32_t>(p[2]) << 8) | p[3];
  }
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint16_t PcapReader::read_u16(const std::uint8_t* p) const {
  if (swapped_) return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

void PcapReader::read_global_header() {
  std::array<std::uint8_t, 24> hdr{};
  in_->read(reinterpret_cast<char*>(hdr.data()), static_cast<std::streamsize>(hdr.size()));
  if (in_->gcount() != static_cast<std::streamsize>(hdr.size())) {
    error_ = "truncated global header";
    return;
  }
  // Magic is written in the producer's byte order; probe little-endian
  // interpretation first.
  std::uint32_t magic_le = static_cast<std::uint32_t>(hdr[0]) |
                           (static_cast<std::uint32_t>(hdr[1]) << 8) |
                           (static_cast<std::uint32_t>(hdr[2]) << 16) |
                           (static_cast<std::uint32_t>(hdr[3]) << 24);
  switch (magic_le) {
    case kMagicMicros: swapped_ = false; nanosecond_ = false; break;
    case kMagicNanos: swapped_ = false; nanosecond_ = true; break;
    case kMagicMicrosSwapped: swapped_ = true; nanosecond_ = false; break;
    case kMagicNanosSwapped: swapped_ = true; nanosecond_ = true; break;
    default:
      error_ = "bad pcap magic";
      return;
  }
  // version major/minor at offsets 4,6 — accepted as-is.
  snaplen_ = read_u32(&hdr[16]);
  link_type_ = read_u32(&hdr[20]);
  if (link_type_ != kLinkTypeEthernet) {
    error_ = "unsupported link type " + std::to_string(link_type_);
    return;
  }
  ok_ = true;
}

std::optional<RawPacket> PcapReader::next() {
  RawPacket pkt;
  if (!next_into(pkt)) return std::nullopt;
  return pkt;
}

bool PcapReader::next_into(RawPacket& out) {
  if (!ok_) return false;
  std::array<std::uint8_t, 16> rec{};
  in_->read(reinterpret_cast<char*>(rec.data()), static_cast<std::streamsize>(rec.size()));
  if (in_->gcount() == 0) return false;  // clean EOF
  if (in_->gcount() != static_cast<std::streamsize>(rec.size())) {
    ok_ = false;
    error_ = "truncated record header";
    return false;
  }
  std::uint32_t ts_sec = read_u32(&rec[0]);
  std::uint32_t ts_frac = read_u32(&rec[4]);
  std::uint32_t incl_len = read_u32(&rec[8]);
  std::uint32_t orig_len = read_u32(&rec[12]);
  if (incl_len > kMaxRecordLength) {
    ok_ = false;
    error_ = "implausible record length " + std::to_string(incl_len);
    return false;
  }
  out.ts = pcap_record_timestamp(ts_sec, ts_frac, nanosecond_);
  // Record the original wire length so snaplen truncation is visible to
  // downstream health accounting.
  out.orig_len = orig_len > incl_len ? orig_len : 0;
  out.data.resize(incl_len);
  in_->read(reinterpret_cast<char*>(out.data.data()), static_cast<std::streamsize>(incl_len));
  if (in_->gcount() != static_cast<std::streamsize>(incl_len)) {
    ok_ = false;
    error_ = "truncated packet";
    return false;
  }
  ++packets_read_;
  return true;
}

PcapWriter::PcapWriter(std::ostream& out, std::uint32_t snaplen)
    : out_(&out), snaplen_(snaplen) {
  write_global_header();
}

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen)
    : file_(std::make_unique<std::ofstream>(path, std::ios::binary)),
      out_(file_.get()),
      snaplen_(snaplen) {
  if (file_->is_open()) write_global_header();
}

bool PcapWriter::ok() const { return out_->good(); }

void PcapWriter::put_u32(std::uint32_t v) {
  // Little-endian, matching the kMagicMicros we emit.
  char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
               static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out_->write(b, 4);
}

void PcapWriter::put_u16(std::uint16_t v) {
  char b[2] = {static_cast<char>(v), static_cast<char>(v >> 8)};
  out_->write(b, 2);
}

void PcapWriter::write_global_header() {
  put_u32(kMagicMicros);
  put_u16(2);   // version major
  put_u16(4);   // version minor
  put_u32(0);   // thiszone
  put_u32(0);   // sigfigs
  put_u32(snaplen_);
  put_u32(kLinkTypeEthernet);
}

void PcapWriter::write(const RawPacket& pkt) {
  // A packet that was already truncated upstream keeps its reported
  // original length; otherwise the captured bytes are the whole packet.
  std::uint32_t orig_len = static_cast<std::uint32_t>(pkt.data.size());
  if (pkt.orig_len > orig_len) orig_len = pkt.orig_len;
  std::uint32_t incl_len = static_cast<std::uint32_t>(pkt.data.size());
  if (incl_len > snaplen_) incl_len = snaplen_;
  put_u32(pkt.ts.pcap_sec());
  put_u32(pkt.ts.pcap_usec());
  put_u32(incl_len);
  put_u32(orig_len);
  out_->write(reinterpret_cast<const char*>(pkt.data.data()), incl_len);
  ++packets_written_;
}

}  // namespace zpm::net
