#include "net/addr.h"

#include <cstdio>

#include "util/strings.h"

namespace zpm::net {

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) {
  std::uint32_t out = 0;
  int octet = 0;
  int value = -1;  // -1 = no digit seen yet in the current octet
  for (char c : s) {
    if (c >= '0' && c <= '9') {
      value = (value < 0 ? 0 : value * 10) + (c - '0');
      if (value > 255) return std::nullopt;
    } else if (c == '.') {
      if (value < 0 || octet >= 3) return std::nullopt;
      out = (out << 8) | static_cast<std::uint32_t>(value);
      value = -1;
      ++octet;
    } else {
      return std::nullopt;
    }
  }
  if (value < 0 || octet != 3) return std::nullopt;
  out = (out << 8) | static_cast<std::uint32_t>(value);
  return Ipv4Addr(out);
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr_ >> 24) & 0xff,
                (addr_ >> 16) & 0xff, (addr_ >> 8) & 0xff, addr_ & 0xff);
  return buf;
}

std::optional<Ipv4Subnet> Ipv4Subnet::parse(std::string_view s) {
  auto slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto base = Ipv4Addr::parse(s.substr(0, slash));
  if (!base) return std::nullopt;
  int len = 0;
  auto len_str = s.substr(slash + 1);
  if (len_str.empty() || len_str.size() > 2) return std::nullopt;
  for (char c : len_str) {
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + (c - '0');
  }
  if (len > 32) return std::nullopt;
  return Ipv4Subnet(*base, len);
}

std::string Ipv4Subnet::to_string() const {
  return base_.to_string() + "/" + std::to_string(prefix_len_);
}

}  // namespace zpm::net
