// Flow identity: the classic 5-tuple plus helpers for directionality.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/addr.h"

namespace zpm::net {

/// (src ip, dst ip, src port, dst port, protocol). Directional: A→B and
/// B→A are different tuples; use `reversed()` / `canonical()` when a
/// bidirectional key is needed.
struct FiveTuple {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  auto operator<=>(const FiveTuple&) const = default;

  /// The same flow seen from the other direction.
  [[nodiscard]] FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  /// Direction-independent key: the lexicographically smaller of the two
  /// orientations, so both directions of a flow map to one key.
  [[nodiscard]] FiveTuple canonical() const {
    FiveTuple rev = reversed();
    return *this <= rev ? *this : rev;
  }

  [[nodiscard]] std::string to_string() const {
    return src_ip.to_string() + ":" + std::to_string(src_port) + " -> " +
           dst_ip.to_string() + ":" + std::to_string(dst_port) +
           (protocol == 17 ? " udp" : protocol == 6 ? " tcp" : " proto" + std::to_string(protocol));
  }
};

/// A 5-tuple packed into two words — the storage format of every flat
/// flow table (capture::FlowDispatchTable, net::FlatFlowMap, the sketch
/// tier). The protocol byte sits in k2's low bits, so k2 != 0 for any
/// real UDP/TCP flow and 0 can mark empty slots.
struct PackedFlowKey {
  std::uint64_t k1 = 0;  ///< (src_ip << 32) | dst_ip
  std::uint64_t k2 = 0;  ///< (src_port << 24) | (dst_port << 8) | protocol

  constexpr PackedFlowKey() = default;
  constexpr PackedFlowKey(std::uint64_t a, std::uint64_t b) : k1(a), k2(b) {}
  explicit constexpr PackedFlowKey(const FiveTuple& t)
      : k1((std::uint64_t{t.src_ip.value()} << 32) | t.dst_ip.value()),
        k2((std::uint64_t{t.src_port} << 24) | (std::uint64_t{t.dst_port} << 8) |
           t.protocol) {}

  [[nodiscard]] constexpr bool empty() const { return k2 == 0; }
  constexpr bool operator==(const PackedFlowKey&) const = default;

  /// Inverse of the packing constructor.
  [[nodiscard]] constexpr FiveTuple unpack() const {
    return FiveTuple{Ipv4Addr(static_cast<std::uint32_t>(k1 >> 32)),
                     Ipv4Addr(static_cast<std::uint32_t>(k1)),
                     static_cast<std::uint16_t>((k2 >> 24) & 0xffff),
                     static_cast<std::uint16_t>((k2 >> 8) & 0xffff),
                     static_cast<std::uint8_t>(k2 & 0xff)};
  }
};

/// THE canonical-5-tuple hash: one multiply-xorshift chain over the
/// packed key, shared by the shard selector (std::hash<FiveTuple>
/// delegates here), the capture front end's flow-dispatch table and the
/// sketch tier — one hash per packet feeds filter, dispatch and sketch,
/// and the three can never route a flow differently
/// (tests/test_five_tuple.cc CanonicalFlowHashParityAcrossAllCallers).
constexpr std::uint64_t canonical_flow_hash(std::uint64_t k1, std::uint64_t k2) {
  std::uint64_t h = k1 ^ (k2 * 0x9e3779b97f4a7c15ULL);
  h ^= h >> 32;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 29;
  return h;
}

constexpr std::uint64_t canonical_flow_hash(const PackedFlowKey& key) {
  return canonical_flow_hash(key.k1, key.k2);
}

/// Call on `t.canonical()` when a direction-independent hash is wanted;
/// the function itself hashes the tuple exactly as given.
constexpr std::uint64_t canonical_flow_hash(const FiveTuple& t) {
  return canonical_flow_hash(PackedFlowKey(t));
}

}  // namespace zpm::net

template <>
struct std::hash<zpm::net::FiveTuple> {
  std::size_t operator()(const zpm::net::FiveTuple& t) const noexcept {
    return static_cast<std::size_t>(zpm::net::canonical_flow_hash(t));
  }
};
