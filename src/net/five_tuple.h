// Flow identity: the classic 5-tuple plus helpers for directionality.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/addr.h"

namespace zpm::net {

/// (src ip, dst ip, src port, dst port, protocol). Directional: A→B and
/// B→A are different tuples; use `reversed()` / `canonical()` when a
/// bidirectional key is needed.
struct FiveTuple {
  Ipv4Addr src_ip;
  Ipv4Addr dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  auto operator<=>(const FiveTuple&) const = default;

  /// The same flow seen from the other direction.
  [[nodiscard]] FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  /// Direction-independent key: the lexicographically smaller of the two
  /// orientations, so both directions of a flow map to one key.
  [[nodiscard]] FiveTuple canonical() const {
    FiveTuple rev = reversed();
    return *this <= rev ? *this : rev;
  }

  [[nodiscard]] std::string to_string() const {
    return src_ip.to_string() + ":" + std::to_string(src_port) + " -> " +
           dst_ip.to_string() + ":" + std::to_string(dst_port) +
           (protocol == 17 ? " udp" : protocol == 6 ? " tcp" : " proto" + std::to_string(protocol));
  }
};

}  // namespace zpm::net

template <>
struct std::hash<zpm::net::FiveTuple> {
  std::size_t operator()(const zpm::net::FiveTuple& t) const noexcept {
    // FNV-1a over the tuple fields; cheap and adequate for hash maps.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(t.src_ip.value());
    mix(t.dst_ip.value());
    mix(static_cast<std::uint64_t>(t.src_port) << 16 | t.dst_port);
    mix(t.protocol);
    return static_cast<std::size_t>(h);
  }
};
