#include "net/packet.h"

#include "util/bytes.h"

namespace zpm::net {

namespace {

std::optional<PacketView> fail(DecodeFailure* failure, DecodeFailure cause) {
  if (failure) *failure = cause;
  return std::nullopt;
}

}  // namespace

std::optional<PacketView> decode_packet(util::Timestamp ts,
                                        std::span<const std::uint8_t> frame,
                                        DecodeFailure* failure) {
  if (failure) *failure = DecodeFailure::None;
  util::ByteReader r(frame);
  auto eth = EthernetHeader::parse(r);
  if (!eth) return fail(failure, DecodeFailure::TruncatedEth);
  if (eth->ether_type != kEtherTypeIpv4) return fail(failure, DecodeFailure::NonIpv4);
  auto ip = Ipv4Header::parse(r);
  if (!ip) return fail(failure, DecodeFailure::BadIpHeader);
  // Only the first fragment carries the L4 header; later fragments are
  // not parseable and are dropped here (the capture pipeline never
  // fragments Zoom media since it fits typical MTUs).
  if (ip->fragment_offset() != 0) return fail(failure, DecodeFailure::IpFragment);

  PacketView v;
  v.ts = ts;
  v.eth = *eth;
  v.ip = *ip;
  v.wire_length_ = frame.size();

  // Clamp payload to IP total_length so trailing Ethernet padding is not
  // mistaken for payload.
  std::size_t ip_payload_len = ip->total_length - ip->header_length();
  if (ip->protocol == kIpProtoUdp) {
    auto udp = UdpHeader::parse(r);
    if (!udp) return fail(failure, DecodeFailure::BadL4Header);
    v.l4 = L4Proto::Udp;
    v.udp = *udp;
    std::size_t payload_len = udp->length - UdpHeader::kSize;
    if (payload_len > r.remaining()) payload_len = r.remaining();
    v.l4_payload = r.bytes(payload_len);
  } else if (ip->protocol == kIpProtoTcp) {
    std::size_t before = r.position();
    auto tcp = TcpHeader::parse(r);
    if (!tcp) return fail(failure, DecodeFailure::BadL4Header);
    v.l4 = L4Proto::Tcp;
    v.tcp = *tcp;
    std::size_t consumed = r.position() - before;
    std::size_t payload_len =
        ip_payload_len >= consumed ? ip_payload_len - consumed : 0;
    if (payload_len > r.remaining()) payload_len = r.remaining();
    v.l4_payload = r.bytes(payload_len);
  } else {
    return fail(failure, DecodeFailure::UnsupportedL4);
  }
  if (!r.ok()) return fail(failure, DecodeFailure::BadL4Header);
  return v;
}

std::optional<PacketView> decode_packet(const RawPacket& pkt, DecodeFailure* failure) {
  return decode_packet(pkt.ts, pkt.data, failure);
}

}  // namespace zpm::net
