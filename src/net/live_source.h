// Live and replay packet sources for continuous operation.
//
// Two BatchSource implementations back the long-running daemon:
//
//   * LiveSource — a real NIC tap. On Linux it opens an AF_PACKET
//     socket in TPACKET_V3 mode: the kernel fills mmap'd ring blocks
//     and the daemon walks whole blocks at a time, which is the same
//     "hand me a block of frames" shape as the mapped trace readers
//     (and the reason CoMo-style monitors sustain multi-gigabit taps —
//     one syscall per block, not per packet). When libpcap is available
//     (ZPM_HAVE_PCAP) a plain pcap_open_live() fallback covers
//     platforms without AF_PACKET. Requires CAP_NET_RAW; everything
//     else in the daemon is testable without it via ReplayLiveSource.
//
//   * ReplayLiveSource — a deterministic in-process stand-in: loads an
//     existing trace once into owned storage and replays it in batches,
//     optionally looping forever with per-loop timestamp shifts (so
//     capture time keeps advancing), optionally paced against the wall
//     clock (so a 30 s soak run behaves like a live tap instead of a
//     microsecond-long burst), and optionally stalling on command (so
//     watchdog recovery is testable). Batch *content* is a pure
//     function of (trace, loop budget, skip position) — pacing and
//     stalls only affect timing — which is what makes the daemon's
//     crash-recovery byte-identity test possible.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/batch_source.h"
#include "net/packet.h"
#include "util/time.h"

namespace zpm::net {

/// Live capture configuration (LiveSource).
struct LiveSourceConfig {
  /// Interface name ("eth0"). Required.
  std::string interface;
  /// TPACKET_V3 ring geometry: per-block size and block count. The
  /// defaults (4 MiB x 16) buffer ~64 MiB of burst.
  std::size_t block_size = std::size_t{4} << 20;
  std::size_t block_count = 16;
  /// Kernel block-retire timeout: an unfilled block is handed over
  /// after this long, bounding batching latency on quiet links.
  std::uint32_t block_timeout_ms = 60;
  /// poll(2) timeout per poll_batch() call; expiry returns Idle.
  int poll_timeout_ms = 50;
  /// Prefer the libpcap fallback even when AF_PACKET is available
  /// (debugging aid; no effect unless built with ZPM_HAVE_PCAP).
  bool prefer_pcap = false;
};

/// Kernel-side capture statistics (best effort; zeros when the backend
/// does not report them).
struct LiveSourceStats {
  std::uint64_t kernel_packets = 0;  ///< seen by the kernel filter point
  std::uint64_t kernel_drops = 0;    ///< dropped for lack of ring space
};

/// See file comment. Views returned by poll_batch() point into the
/// capture ring (or the pcap callback buffer) and die at the next
/// poll_batch() call — not pinned.
class LiveSource : public BatchSource {
 public:
  explicit LiveSource(LiveSourceConfig config);
  ~LiveSource() override;

  LiveSource(const LiveSource&) = delete;
  LiveSource& operator=(const LiveSource&) = delete;

  /// False when the socket/ring could not be opened (missing
  /// privileges, unknown interface, unsupported platform); error()
  /// says why. A failed-open source still supports reopen().
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const override { return error_; }
  /// Which backend is active: "af_packet-v3", "pcap-live", or "none".
  [[nodiscard]] std::string_view backend() const;

  SourceStatus poll_batch(std::vector<RawPacketView>& out,
                          std::size_t max) override;
  [[nodiscard]] std::uint64_t packets_read() const override { return packets_read_; }
  [[nodiscard]] bool pinned() const override { return false; }
  /// Closes and reopens the socket/ring with the original config.
  bool reopen() override;

  /// Snapshot of the kernel drop counters.
  [[nodiscard]] LiveSourceStats stats() const;
  /// BatchSource surface for the same counters (what the daemon's
  /// health gauges and the overload governor consume).
  [[nodiscard]] KernelCaptureStats kernel_stats() const override {
    const LiveSourceStats s = stats();
    return KernelCaptureStats{s.kernel_packets, s.kernel_drops};
  }

 private:
  struct Impl;  // platform-specific state (fd, ring mapping, pcap handle)
  void open();
  void close();

  LiveSourceConfig config_;
  std::unique_ptr<Impl> impl_;
  bool ok_ = false;
  std::string error_;
  std::uint64_t packets_read_ = 0;
};

/// Replay configuration (ReplayLiveSource).
struct ReplayLiveSourceConfig {
  /// Trace file (pcap or pcapng) to load. Required.
  std::string path;
  /// How many times to play the trace; 0 = loop forever.
  std::uint64_t loops = 1;
  /// Capture-time gap inserted between consecutive loops, so the
  /// shifted timestamps stay strictly ahead of the previous loop.
  util::Duration loop_gap = util::Duration::millis(10);
  /// Wall-clock pacing in packets per second; 0 replays at full speed.
  /// Pacing affects only the *timing* of batches (ahead-of-schedule
  /// polls return Idle), never their content or order.
  double pace_pps = 0.0;
  /// Test hook: after this many delivered packets the source stalls
  /// (returns Idle despite having data) until reopen() is called —
  /// a deterministic stand-in for a wedged NIC. One-shot: reopen()
  /// disarms the trigger so the replay resumes. 0 disables.
  std::uint64_t stall_after_packets = 0;
};

/// See file comment. Owned storage: views stay valid for the source's
/// lifetime (pinned).
class ReplayLiveSource : public BatchSource {
 public:
  explicit ReplayLiveSource(ReplayLiveSourceConfig config);

  /// False when the trace failed to load; error() says why.
  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const override { return error_; }

  SourceStatus poll_batch(std::vector<RawPacketView>& out,
                          std::size_t max) override;
  [[nodiscard]] std::uint64_t packets_read() const override { return position_; }
  [[nodiscard]] bool pinned() const override { return true; }

  /// Clears a pending stall (and counts the reopen); the replay resumes
  /// where it stalled. Always succeeds on a loaded trace.
  bool reopen() override;

  /// O(1) positional fast-forward: the next delivered packet is global
  /// packet `target` (loops included). Fails only past the loop budget.
  bool skip_to(std::uint64_t target) override;

  /// Packets in one pass of the loaded trace.
  [[nodiscard]] std::uint64_t trace_packets() const { return packets_.size(); }
  /// Capture-time extent of one loop iteration (span + loop_gap).
  [[nodiscard]] util::Duration loop_stride() const { return stride_; }
  [[nodiscard]] std::uint64_t reopen_count() const { return reopens_; }
  /// True while the stall hook is holding batches back.
  [[nodiscard]] bool stalled() const { return stalled_; }

 private:
  ReplayLiveSourceConfig config_;
  bool ok_ = false;
  std::string error_;
  std::vector<RawPacket> packets_;  // one loop's worth, owned
  util::Duration stride_;           // per-loop timestamp shift
  std::uint64_t position_ = 0;      // next global packet index
  bool stalled_ = false;
  std::uint64_t reopens_ = 0;
  // Pacing state (wall clock; never affects batch content). The pace
  // allowance is measured from (pace_epoch_us_, pace_base_), re-based
  // by skip_to()/reopen() so a resumed source never stalls waiting for
  // the wall clock to "catch up" to its absolute position.
  std::int64_t pace_epoch_us_ = 0;   // steady-clock µs when pacing began
  std::uint64_t pace_base_ = 0;      // position_ when pacing began
  bool pace_started_ = false;
};

}  // namespace zpm::net
