// Classic libpcap file format (magic 0xa1b2c3d4, microsecond timestamps,
// LINKTYPE_ETHERNET), implemented from the format specification so the
// repository has no external capture-library dependency. Reads and
// writes both byte orders; writes native-order little-endian files.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <optional>
#include <ostream>
#include <string>

#include "net/packet.h"

namespace zpm::net {

/// Converts a pcap record header timestamp to the internal microsecond
/// tick, shared by the streaming and mapped readers. Nanosecond-
/// resolution captures round to the nearest microsecond — truncating
/// would bias every timestamp down by up to 1 µs, enough to skew jitter
/// and one-way-delay estimates.
inline util::Timestamp pcap_record_timestamp(std::uint32_t ts_sec,
                                             std::uint32_t ts_frac,
                                             bool nanosecond) {
  std::uint32_t usec = nanosecond ? (ts_frac + 500) / 1000 : ts_frac;
  return util::Timestamp::from_pcap(ts_sec, usec);
}

/// Reads pcap records sequentially from a stream or file.
class PcapReader {
 public:
  /// Wraps an existing stream (must outlive the reader).
  explicit PcapReader(std::istream& in);
  /// Opens a file; check ok() afterwards.
  explicit PcapReader(const std::string& path);

  /// True if the global header parsed and no read error has occurred.
  [[nodiscard]] bool ok() const { return ok_; }
  /// Human-readable reason for !ok().
  [[nodiscard]] const std::string& error() const { return error_; }
  /// Link type from the global header (1 = Ethernet).
  [[nodiscard]] std::uint32_t link_type() const { return link_type_; }

  /// Next packet, or nullopt at end of file / on error.
  std::optional<RawPacket> next();

  /// Reads the next record into `out`, reusing out.data's capacity (the
  /// allocation-light form used by the batched ingest fallback). Returns
  /// false at end of file / on error.
  bool next_into(RawPacket& out);

  /// Number of records returned so far.
  [[nodiscard]] std::uint64_t packets_read() const { return packets_read_; }

 private:
  void read_global_header();
  std::uint32_t read_u32(const std::uint8_t* p) const;
  std::uint16_t read_u16(const std::uint8_t* p) const;

  std::unique_ptr<std::ifstream> file_;
  std::istream* in_;
  bool ok_ = false;
  bool swapped_ = false;     // file byte order != little-endian
  bool nanosecond_ = false;  // 0xa1b23c4d magic
  std::uint32_t link_type_ = 0;
  std::uint32_t snaplen_ = 0;
  std::uint64_t packets_read_ = 0;
  std::string error_;
};

/// Writes pcap records sequentially to a stream or file.
class PcapWriter {
 public:
  /// Wraps an existing stream (must outlive the writer); writes the
  /// global header immediately.
  explicit PcapWriter(std::ostream& out, std::uint32_t snaplen = 65535);
  /// Opens a file; check ok() afterwards.
  explicit PcapWriter(const std::string& path, std::uint32_t snaplen = 65535);

  [[nodiscard]] bool ok() const;

  /// Appends one record; frames longer than snaplen are truncated with
  /// the original length recorded.
  void write(const RawPacket& pkt);

  [[nodiscard]] std::uint64_t packets_written() const { return packets_written_; }

 private:
  void write_global_header();
  void put_u32(std::uint32_t v);
  void put_u16(std::uint16_t v);

  std::unique_ptr<std::ofstream> file_;
  std::ostream* out_;
  std::uint32_t snaplen_;
  std::uint64_t packets_written_ = 0;
};

}  // namespace zpm::net
