// Zero-copy trace ingest: memory-mapped pcap/pcapng record parsers that
// yield RawPacketView spans pointing straight into the mapping, plus a
// TraceSource facade that picks the mapped fast path when the input is
// a regular file and falls back to the streaming readers (stdin, pipes,
// platforms without mmap) otherwise.
//
// The mapped readers replicate the streaming readers' validation
// semantics and error strings exactly — tests/test_trace_source.cc
// asserts byte-identical analyzer output on clean, byte-swapped,
// nanosecond, corrupted and truncated traces.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "net/batch_source.h"
#include "net/mapped_file.h"
#include "net/packet.h"
#include "net/pcap.h"
#include "net/pcapng.h"

namespace zpm::net {

/// Parses classic pcap records out of a memory-mapped buffer. Views
/// returned by next() point into the buffer and stay valid for the
/// buffer's lifetime.
class MappedPcapReader {
 public:
  explicit MappedPcapReader(std::span<const std::uint8_t> bytes);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] std::uint32_t link_type() const { return link_type_; }

  /// Next record as a non-owning view, or nullopt at end / on error.
  std::optional<RawPacketView> next();

  /// Appends up to `max` records to `out`; the batched form of next()
  /// with one tight parse loop (TraceSource's mapped fast path).
  std::size_t next_batch(std::vector<RawPacketView>& out, std::size_t max);

  [[nodiscard]] std::uint64_t packets_read() const { return packets_read_; }

 private:
  void read_global_header();
  [[nodiscard]] std::uint32_t read_u32(const std::uint8_t* p) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = false;
  bool swapped_ = false;
  bool nanosecond_ = false;
  std::uint32_t link_type_ = 0;
  std::uint64_t packets_read_ = 0;
  std::string error_;
};

/// Parses pcapng blocks out of a memory-mapped buffer. Views returned
/// by next() point into the buffer and stay valid for its lifetime.
class MappedPcapNgReader {
 public:
  explicit MappedPcapNgReader(std::span<const std::uint8_t> bytes);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const { return error_; }

  std::optional<RawPacketView> next();

  [[nodiscard]] std::uint64_t packets_read() const { return packets_read_; }

 private:
  struct Interface {
    std::uint16_t link_type = 0;
    std::uint64_t ticks_per_second = 1'000'000;
  };

  [[nodiscard]] std::uint32_t u32(const std::uint8_t* p) const;
  [[nodiscard]] std::uint16_t u16(const std::uint8_t* p) const;
  bool read_section_header(std::span<const std::uint8_t> block);
  bool read_interface_block(std::span<const std::uint8_t> body);
  std::optional<RawPacketView> parse_epb(std::span<const std::uint8_t> body);

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  bool ok_ = false;
  bool swapped_ = false;
  bool seen_section_ = false;
  std::vector<Interface> interfaces_;
  std::uint64_t packets_read_ = 0;
  std::string error_;
};

/// Unified trace input. Opens a capture of either format, preferring
/// the mapped zero-copy path; falls back to the streaming readers when
/// the file cannot be mapped. Consumers use next()/next_batch() and
/// treat the returned views as valid until the TraceSource is
/// destroyed (mapped path) or until the next call (streaming path —
/// batch storage is reused).
class TraceSource : public BatchSource {
 public:
  /// Opens `path`, sniffing the format magic. Check ok() afterwards.
  explicit TraceSource(const std::string& path);
  ~TraceSource() override;

  TraceSource(const TraceSource&) = delete;
  TraceSource& operator=(const TraceSource&) = delete;

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] const std::string& error() const override { return error_; }
  /// True when the zero-copy mapped fast path is active.
  [[nodiscard]] bool mapped() const { return mapped_; }
  /// Mapped views alias the mapping (valid until destruction); the
  /// streaming fallback reuses its batch storage.
  [[nodiscard]] bool pinned() const override { return mapped_; }

  /// Next packet as a view. On the mapped path the view aliases the
  /// mapping (valid until destruction); on the streaming path it
  /// aliases an internal buffer reused by the following next()/
  /// next_batch() call.
  std::optional<RawPacketView> next();

  /// Appends up to `max` packets to `out` (which is cleared first).
  /// Returns the number appended; 0 means end of input or error. View
  /// lifetime follows the same rule as next().
  std::size_t next_batch(std::vector<RawPacketView>& out, std::size_t max);

  /// BatchSource form of next_batch() with the unified end-of-stream /
  /// error split (a file is never Idle): Batch while records remain,
  /// then EndOfStream on a clean end or Error with error() set.
  SourceStatus poll_batch(std::vector<RawPacketView>& out,
                          std::size_t max) override {
    return next_batch(out, max) > 0
               ? SourceStatus::Batch
               : (ok_ ? SourceStatus::EndOfStream : SourceStatus::Error);
  }

  [[nodiscard]] std::uint64_t packets_read() const override {
    return packets_read_;
  }

 private:
  bool ok_ = false;
  bool mapped_ = false;
  std::string error_;
  std::uint64_t packets_read_ = 0;

  MappedFile file_;
  std::unique_ptr<MappedPcapReader> mapped_pcap_;
  std::unique_ptr<MappedPcapNgReader> mapped_ng_;
  std::unique_ptr<PacketSource> streaming_;
  // Streaming fallback: owned packets whose capacity is reused across
  // batches so the steady state allocates nothing new.
  std::vector<RawPacket> storage_;
};

}  // namespace zpm::net
