// RFC 1071 Internet checksum.
#pragma once

#include <cstdint>
#include <span>

namespace zpm::net {

/// One's-complement sum over `data`, folded to 16 bits and complemented.
/// Odd trailing byte is padded with zero per RFC 1071.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// Incremental accumulation variant for checksums spanning multiple
/// buffers (e.g. pseudo-header + segment).
class ChecksumAccumulator {
 public:
  void add(std::span<const std::uint8_t> data);
  void add_u16(std::uint16_t v);
  void add_u32(std::uint32_t v);
  /// Finalized ~sum.
  [[nodiscard]] std::uint16_t finish() const;

 private:
  std::uint64_t sum_ = 0;
  bool odd_ = false;
};

}  // namespace zpm::net
