// Open-addressing flat hash containers keyed by 5-tuples, the exact-
// tier counterpart of the sketch tier's fixed tables: packed keys
// (net::PackedFlowKey), the shared canonical hash, linear probing and
// backward-shift deletion. One contiguous slot array — no per-node
// allocations, no buckets — replaces std::unordered_{set,map} on the
// analyzer's per-packet flow lookups (zoom_flows_, malformed_streaks_,
// quarantined_), keeping behavior bit-identical: only membership and
// values are observable, never iteration order.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/five_tuple.h"

namespace zpm::net {

/// Flat map from canonical 5-tuples to small values. Power-of-two
/// capacity, grown at 3/4 load. V must be default-constructible;
/// erase() uses backward-shift deletion so lookups stay one linear
/// probe with no tombstone scans.
template <typename V>
class FlatFlowMap {
 public:
  explicit FlatFlowMap(std::size_t initial_capacity = 16) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] bool contains(const FiveTuple& flow) const {
    return find(flow) != nullptr;
  }

  [[nodiscard]] const V* find(const FiveTuple& flow) const {
    const PackedFlowKey key(flow);
    std::size_t idx = canonical_flow_hash(key) & mask_;
    for (;;) {
      const Slot& s = slots_[idx];
      if (s.key.empty()) return nullptr;
      if (s.key == key) return &s.value;
      idx = (idx + 1) & mask_;
    }
  }
  [[nodiscard]] V* find(const FiveTuple& flow) {
    return const_cast<V*>(std::as_const(*this).find(flow));
  }

  /// The value for `flow`, default-constructed on first sight.
  V& operator[](const FiveTuple& flow) {
    const PackedFlowKey key(flow);
    for (;;) {
      std::size_t idx = canonical_flow_hash(key) & mask_;
      for (;;) {
        Slot& s = slots_[idx];
        if (s.key.empty()) {
          if ((size_ + 1) * 4 > slots_.size() * 3) {
            grow();
            break;  // re-probe against the grown table
          }
          s.key = key;
          s.value = V{};
          ++size_;
          return s.value;
        }
        if (s.key == key) return s.value;
        idx = (idx + 1) & mask_;
      }
    }
  }

  /// True when the key was present. Backward-shift deletion.
  bool erase(const FiveTuple& flow) {
    const PackedFlowKey key(flow);
    std::size_t idx = canonical_flow_hash(key) & mask_;
    for (;;) {
      if (slots_[idx].key.empty()) return false;
      if (slots_[idx].key == key) break;
      idx = (idx + 1) & mask_;
    }
    std::size_t hole = idx;
    for (std::size_t next = (hole + 1) & mask_;; next = (next + 1) & mask_) {
      Slot& s = slots_[next];
      if (s.key.empty()) break;
      const std::size_t home = canonical_flow_hash(s.key) & mask_;
      // Shift only entries whose probe chain would break once the hole
      // empties: home must not lie in the open interval (hole, next].
      if (((next - home) & mask_) >= ((next - hole) & mask_)) {
        slots_[hole] = s;
        hole = next;
      }
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

  /// Calls fn(const FiveTuple&, const V&) for every entry, in
  /// unspecified order (do not let results depend on it).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_)
      if (!s.key.empty()) fn(s.key.unpack(), s.value);
  }

 private:
  struct Slot {
    PackedFlowKey key;  // empty() marks a free slot
    V value{};
  };

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});
    mask_ = slots_.size() - 1;
    for (const Slot& s : old) {
      if (s.key.empty()) continue;
      std::size_t idx = canonical_flow_hash(s.key) & mask_;
      while (!slots_[idx].key.empty()) idx = (idx + 1) & mask_;
      slots_[idx] = s;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Flat set of canonical 5-tuples: FlatFlowMap with no payload.
class FlatFlowSet {
 public:
  explicit FlatFlowSet(std::size_t initial_capacity = 16)
      : map_(initial_capacity) {}

  [[nodiscard]] std::size_t size() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }
  [[nodiscard]] bool contains(const FiveTuple& flow) const {
    return map_.contains(flow);
  }

  /// True when the flow was newly inserted.
  bool insert(const FiveTuple& flow) {
    const std::size_t before = map_.size();
    map_[flow];
    return map_.size() != before;
  }

  bool erase(const FiveTuple& flow) { return map_.erase(flow); }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    map_.for_each([&fn](const FiveTuple& flow, const Empty&) { fn(flow); });
  }

 private:
  struct Empty {};
  FlatFlowMap<Empty> map_;
};

}  // namespace zpm::net
