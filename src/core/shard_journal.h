// Event journal for the flow-sharded parallel pipeline.
//
// A shard analyzer owns all per-flow and per-stream state outright, but
// three pieces of the serial Analyzer are *cross-flow*: duplicate-media
// matching (same SSRC on different 5-tuples, §4.3 step 1), meeting
// grouping (§4.3 step 2) and SFU RTT copy-matching (§5.3 method 1 —
// egress and ingress copies travel on different flows). When a journal
// is attached, the analyzer records those operations instead of
// performing them; the parallel driver replays the journals of all
// shards in global packet order through a single MeetingGrouper and
// RtpCopyMatcher, which reproduces the serial results bit for bit.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <variant>
#include <vector>

#include "net/five_tuple.h"
#include "util/time.h"
#include "zoom/classify.h"

namespace zpm::core {

/// Cross-shard-sensitive operations, in the exact order the serial
/// analyzer would have performed them for the same packet.
struct ShardJournal {
  /// A stream was created: everything duplicate matching and
  /// `MeetingGrouper::assign` consume.
  struct StreamCreate {
    net::FiveTuple flow;
    zoom::MediaKind kind = zoom::MediaKind::Audio;
    std::uint32_t first_rtp_ts = 0;
    /// The stream's extended RTP timestamp right after creation.
    std::int64_t ext_rtp_ts = 0;
    net::Ipv4Addr client_ip;
    std::uint16_t client_port = 0;
    bool is_p2p = false;
    std::optional<std::pair<net::Ipv4Addr, std::uint16_t>> peer;
  };
  /// A media packet advanced the stream (duplicate-match bookkeeping +
  /// `MeetingGrouper::touch`). Values are post-update, so replay assigns
  /// rather than recomputes.
  struct StreamTouch {
    std::int64_t ext_rtp_ts = 0;
    util::Timestamp last_seen;
  };
  /// RtpCopyMatcher::on_egress arguments.
  struct RtpEgress {
    std::uint32_t ssrc = 0;
    std::uint16_t rtp_seq = 0;
    std::uint32_t rtp_ts = 0;
  };
  /// RtpCopyMatcher::on_ingress arguments; a match attributes the RTT
  /// sample to `stream` and its meeting.
  struct RtpIngress {
    std::uint32_t ssrc = 0;
    std::uint16_t rtp_seq = 0;
    std::uint32_t rtp_ts = 0;
  };

  struct Event {
    /// Global packet sequence number (assigned by the dispatcher);
    /// events of one packet share it and stay in append order.
    std::uint64_t seq = 0;
    /// Shard-local stream index (meaningless for RtpEgress).
    std::uint32_t stream = 0;
    util::Timestamp ts;
    std::variant<StreamCreate, StreamTouch, RtpEgress, RtpIngress> data;
  };

  /// Set by the driver before each packet is offered to the shard.
  std::uint64_t seq = 0;
  std::vector<Event> events;
};

}  // namespace zpm::core
