// Media-stream tracking and duplicate-stream detection (paper §4.3
// step 1).
//
// A stream is identified on the wire by (IP 5-tuple, SSRC). The same
// *media* appears as several such streams: once on its way to the SFU
// and once more per on-campus receiver the SFU forwards it to, and with
// a brand-new 5-tuple after a P2P<->SFU mode switch. Because Zoom's SFU
// does not rewrite RTP headers, copies share SSRC, sequence numbers and
// timestamps; matching a new stream's first RTP timestamp against the
// most recent timestamp of existing same-SSRC streams assigns all copies
// one media id (the paper's "unique identifier" S1, S2 of Fig. 8).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "metrics/stream_metrics.h"
#include "net/five_tuple.h"
#include "util/serial.h"
#include "zoom/classify.h"

namespace zpm::core {

/// Wire-level stream key.
struct StreamKey {
  net::FiveTuple flow;
  std::uint32_t ssrc = 0;

  bool operator==(const StreamKey&) const = default;
};

/// Direction of a stream relative to the Zoom infrastructure.
enum class StreamDirection : std::uint8_t { ToSfu, FromSfu, P2p };

/// One tracked media stream with its metric engine.
struct StreamInfo {
  std::uint64_t index = 0;  // position in the table
  StreamKey key;
  zoom::MediaKind kind = zoom::MediaKind::Video;
  zoom::Transport transport = zoom::Transport::ServerBased;
  StreamDirection direction = StreamDirection::ToSfu;
  /// Shared by all wire-level copies of the same media (§4.3 step 1).
  std::uint64_t media_id = 0;
  /// Campus-side endpoint (the participant), used for meeting grouping.
  net::Ipv4Addr client_ip;
  std::uint16_t client_port = 0;
  /// Meeting this stream was assigned to (filled by the grouper).
  std::uint32_t meeting_id = 0;

  std::unique_ptr<metrics::StreamMetrics> metrics;
  util::SerialExtender<std::uint32_t> rtp_ts_extender;
  std::int64_t last_ext_rtp_ts = 0;
  std::uint32_t first_rtp_ts = 0;
  util::Timestamp first_seen;
  util::Timestamp last_seen;
};

/// Parameters of the duplicate-stream match.
struct DuplicateMatchConfig {
  /// Maximum |ΔRTP-timestamp| between an existing stream's latest
  /// timestamp and a new stream's first timestamp to consider them the
  /// same media (~ a few seconds at 90 kHz).
  std::int64_t max_rtp_ts_delta = 5 * 90'000;
  /// The existing stream must have been active this recently.
  util::Duration max_wall_gap = util::Duration::seconds(30);
  /// Disable timestamp checking entirely (ablation: SSRC-only matching
  /// merges unrelated meetings because Zoom SSRCs are not unique —
  /// §4.3.1 challenge 2).
  bool require_timestamp_match = true;
};

/// Owns all streams; performs duplicate detection on stream creation.
class StreamTable {
 public:
  explicit StreamTable(DuplicateMatchConfig config = {}) : config_(config) {}

  /// Overrides how metric engines are configured per media kind
  /// (default: metrics::default_config).
  using MetricsConfigFactory =
      std::function<metrics::StreamMetricsConfig(zoom::MediaKind)>;
  void set_metrics_config_factory(MetricsConfigFactory factory) {
    metrics_factory_ = std::move(factory);
  }

  /// Finds the stream for (flow, ssrc) or creates it, running the
  /// duplicate-media match when creating. `first_rtp_ts` is the RTP
  /// timestamp of the packet triggering creation. Implemented as a
  /// single hash probe (try_emplace); when `created` is non-null it is
  /// set to whether a new stream was made, so per-packet callers can
  /// skip their creation-only bookkeeping without a second lookup.
  StreamInfo& get_or_create(const StreamKey& key, zoom::MediaKind kind,
                            zoom::Transport transport, StreamDirection direction,
                            net::Ipv4Addr client_ip, std::uint16_t client_port,
                            std::uint32_t first_rtp_ts, util::Timestamp now,
                            bool* created = nullptr);

  /// Looks up an existing stream, or nullptr.
  StreamInfo* find(const StreamKey& key);

  /// Records activity (keeps the duplicate-match bookkeeping current).
  void touch(StreamInfo& stream, std::uint32_t rtp_ts, util::Timestamp now);

  [[nodiscard]] const std::vector<std::unique_ptr<StreamInfo>>& streams() const {
    return streams_;
  }
  [[nodiscard]] std::size_t size() const { return streams_.size(); }
  /// Number of distinct media ids (unique media, not wire copies).
  [[nodiscard]] std::uint64_t media_count() const { return next_media_id_; }

 private:
  struct KeyHash {
    std::size_t operator()(const StreamKey& k) const noexcept {
      return std::hash<net::FiveTuple>{}(k.flow) ^ (std::size_t{k.ssrc} * 0x9e3779b97f4a7c15ULL);
    }
  };

  DuplicateMatchConfig config_;
  MetricsConfigFactory metrics_factory_;
  std::unordered_map<StreamKey, std::size_t, KeyHash> by_key_;
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_ssrc_;
  std::vector<std::unique_ptr<StreamInfo>> streams_;
  std::uint64_t next_media_id_ = 0;
};

}  // namespace zpm::core
