#include "core/meetings.h"

#include <algorithm>

namespace zpm::core {

std::uint32_t MeetingGrouper::find_root(std::uint32_t id) const {
  while (parent_[id] != id) {
    parent_[id] = parent_[parent_[id]];  // path halving
    id = parent_[id];
  }
  return id;
}

std::uint32_t MeetingGrouper::resolve(std::uint32_t meeting_id) const {
  if (meeting_id >= parent_.size()) return meeting_id;
  return find_root(meeting_id);
}

std::uint32_t MeetingGrouper::merge(std::uint32_t a, std::uint32_t b) {
  a = find_root(a);
  b = find_root(b);
  if (a == b) return a;
  // Keep the older meeting as the root.
  if (b < a) std::swap(a, b);
  parent_[b] = a;
  Meeting& dst = meetings_[a];
  Meeting& src = meetings_[b];
  dst.media_ids.insert(src.media_ids.begin(), src.media_ids.end());
  dst.client_ips.insert(src.client_ips.begin(), src.client_ips.end());
  dst.stream_count += src.stream_count;
  dst.first_seen = std::min(dst.first_seen, src.first_seen);
  dst.last_seen = std::max(dst.last_seen, src.last_seen);
  dst.saw_p2p = dst.saw_p2p || src.saw_p2p;
  dst.rtt_to_sfu.insert(dst.rtt_to_sfu.end(), src.rtt_to_sfu.begin(),
                        src.rtt_to_sfu.end());
  src = Meeting{};  // release merged-away state
  return a;
}

std::uint32_t MeetingGrouper::assign(
    std::uint64_t media_id, net::Ipv4Addr client_ip, std::uint16_t client_port,
    util::Timestamp when, bool is_p2p,
    std::optional<std::pair<net::Ipv4Addr, std::uint16_t>> peer_endpoint) {
  // Gather all meetings any of the stream's keys already point to.
  std::vector<std::uint32_t> matches;
  auto consider = [&](std::optional<std::uint32_t> m) {
    if (m) matches.push_back(find_root(*m));
  };
  if (auto it = by_media_id_.find(media_id); it != by_media_id_.end())
    consider(it->second);
  if (auto it = by_client_ip_.find(client_ip.value()); it != by_client_ip_.end())
    consider(it->second);
  if (auto it = by_endpoint_.find(endpoint_key(client_ip, client_port));
      it != by_endpoint_.end())
    consider(it->second);
  if (peer_endpoint) {
    if (auto it = by_client_ip_.find(peer_endpoint->first.value());
        it != by_client_ip_.end())
      consider(it->second);
    if (auto it = by_endpoint_.find(endpoint_key(peer_endpoint->first, peer_endpoint->second));
        it != by_endpoint_.end())
      consider(it->second);
  }

  std::uint32_t id;
  if (matches.empty()) {
    id = static_cast<std::uint32_t>(meetings_.size());
    parent_.push_back(id);
    Meeting m;
    m.id = id;
    m.first_seen = when;
    m.last_seen = when;
    meetings_.push_back(std::move(m));
  } else {
    // "If there are several matches with different meeting ids, the
    // matched meetings are merged."
    id = matches[0];
    for (std::size_t i = 1; i < matches.size(); ++i) id = merge(id, matches[i]);
  }

  Meeting& m = meetings_[find_root(id)];
  m.media_ids.insert(media_id);
  m.client_ips.insert(client_ip.value());
  if (peer_endpoint) m.client_ips.insert(peer_endpoint->first.value());
  ++m.stream_count;
  m.first_seen = std::min(m.first_seen, when);
  m.last_seen = std::max(m.last_seen, when);
  m.saw_p2p = m.saw_p2p || is_p2p;

  std::uint32_t root = find_root(id);
  by_media_id_[media_id] = root;
  by_client_ip_[client_ip.value()] = root;
  by_endpoint_[endpoint_key(client_ip, client_port)] = root;
  if (peer_endpoint) {
    by_client_ip_[peer_endpoint->first.value()] = root;
    by_endpoint_[endpoint_key(peer_endpoint->first, peer_endpoint->second)] = root;
  }
  return root;
}

void MeetingGrouper::touch(std::uint32_t meeting_id, util::Timestamp t) {
  if (meeting_id >= parent_.size()) return;
  Meeting& m = meetings_[find_root(meeting_id)];
  if (t > m.last_seen) m.last_seen = t;
}

void MeetingGrouper::add_rtt_sample(std::uint32_t meeting_id,
                                    const metrics::RttSample& sample) {
  if (meeting_id >= parent_.size()) return;
  meetings_[find_root(meeting_id)].rtt_to_sfu.push_back(sample);
}

std::vector<const Meeting*> MeetingGrouper::meetings() const {
  std::vector<const Meeting*> out;
  for (std::uint32_t i = 0; i < meetings_.size(); ++i)
    if (find_root(i) == i) out.push_back(&meetings_[i]);
  return out;
}

std::size_t MeetingGrouper::meeting_count() const { return meetings().size(); }

}  // namespace zpm::core
