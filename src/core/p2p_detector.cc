#include "core/p2p_detector.h"

#include <vector>

namespace zpm::core {

void P2pDetector::on_stun_exchange(util::Timestamp t, net::Ipv4Addr client_ip,
                                   std::uint16_t client_port) {
  candidates_[key(client_ip, client_port)] = t;
}

bool P2pDetector::is_candidate(util::Timestamp t, net::Ipv4Addr ip,
                               std::uint16_t port) const {
  auto it = candidates_.find(key(ip, port));
  if (it == candidates_.end()) return false;
  return t - it->second <= timeout_ && t >= it->second;
}

void P2pDetector::confirm_flow(const net::FiveTuple& flow) {
  confirmed_.insert(flow.canonical());
}

void P2pDetector::reject_flow(const net::FiveTuple& flow) {
  rejected_.insert(flow.canonical());
}

bool P2pDetector::is_confirmed(const net::FiveTuple& flow) const {
  return confirmed_.contains(flow.canonical());
}

void P2pDetector::expire(util::Timestamp now) {
  std::vector<std::uint64_t> stale;
  for (const auto& [k, t] : candidates_)
    if (now - t > timeout_) stale.push_back(k);
  for (std::uint64_t k : stale) candidates_.erase(k);
}

}  // namespace zpm::core
