#include "core/analyzer.h"

namespace zpm::core {

Analyzer::Analyzer(AnalyzerConfig config)
    : config_(std::move(config)),
      p2p_(config_.p2p_timeout),
      streams_(config_.duplicate_match) {
  streams_.set_metrics_config_factory(
      [keep = config_.keep_frames,
       every = config_.frame_sample_every](zoom::MediaKind kind) {
        auto c = metrics::default_config(kind);
        c.keep_frames = keep;
        c.frame_sample_every = every;
        return c;
      });
}

void AnalyzerCounters::merge(const AnalyzerCounters& other) {
  total_packets += other.total_packets;
  total_bytes += other.total_bytes;
  zoom_packets += other.zoom_packets;
  zoom_bytes += other.zoom_bytes;
  server_udp_packets += other.server_udp_packets;
  p2p_udp_packets += other.p2p_udp_packets;
  stun_packets += other.stun_packets;
  tcp_control_packets += other.tcp_control_packets;
  media_packets += other.media_packets;
  rtcp_packets += other.rtcp_packets;
  unknown_sfu_packets += other.unknown_sfu_packets;
  unknown_media_packets += other.unknown_media_packets;
  p2p_false_positives += other.p2p_false_positives;
  for (const auto& [type, tally] : other.encap_types) {
    auto& dst = encap_types[type];
    dst.packets += tally.packets;
    dst.bytes += tally.bytes;
  }
  for (const auto& [key, tally] : other.payload_types) {
    auto& dst = payload_types[key];
    dst.packets += tally.packets;
    dst.bytes += tally.bytes;
  }
}

bool Analyzer::offer(const net::RawPacket& pkt) {
  auto view = net::decode_packet(pkt);
  ++counters_.total_packets;
  counters_.total_bytes += pkt.data.size();
  if (!view) return false;
  return process_decoded(*view);
}

bool Analyzer::process(const net::PacketView& view) {
  ++counters_.total_packets;
  counters_.total_bytes += view.wire_length();
  return process_decoded(view);
}

bool Analyzer::process_decoded(const net::PacketView& view) {
  const auto& db = config_.server_db;
  bool src_is_server = db.contains(view.ip.src);
  bool dst_is_server = db.contains(view.ip.dst);

  if (view.l4 == net::L4Proto::Udp) {
    if (src_is_server || dst_is_server) {
      // STUN pre-flight with a zone controller (§4.1).
      if ((dst_is_server && view.udp.dst_port == zoom::kStunServerPort) ||
          (src_is_server && view.udp.src_port == zoom::kStunServerPort)) {
        return handle_stun(view, src_is_server);
      }
      return handle_server_udp(view);
    }
    return handle_p2p_udp(view);
  }
  if (view.l4 == net::L4Proto::Tcp && (src_is_server || dst_is_server)) {
    return handle_tcp(view);
  }
  return false;
}

void Analyzer::account_zoom(const net::PacketView& view) {
  ++counters_.zoom_packets;
  counters_.zoom_bytes += view.wire_length();
  zoom_flows_.insert(view.five_tuple().canonical());
}

bool Analyzer::handle_stun(const net::PacketView& view, bool server_is_src) {
  auto zp = zoom::dissect_stun(view.l4_payload);
  if (!zp) return false;
  account_zoom(view);
  ++counters_.stun_packets;
  // The campus endpoint that will later carry the P2P flow is the
  // non-server side (§4.1).
  if (server_is_src) {
    p2p_.on_stun_exchange(view.ts, view.ip.dst, view.udp.dst_port);
  } else {
    p2p_.on_stun_exchange(view.ts, view.ip.src, view.udp.src_port);
  }
  return true;
}

void Analyzer::register_stun_candidate(const net::PacketView& view) {
  auto zp = zoom::dissect_stun(view.l4_payload);
  if (!zp) return;
  bool server_is_src = config_.server_db.contains(view.ip.src);
  if (server_is_src) {
    p2p_.on_stun_exchange(view.ts, view.ip.dst, view.udp.dst_port);
  } else {
    p2p_.on_stun_exchange(view.ts, view.ip.src, view.udp.src_port);
  }
}

bool Analyzer::handle_server_udp(const net::PacketView& view) {
  bool dst_is_server = config_.server_db.contains(view.ip.dst);
  // Media flows use server port 8801 (§3); anything else to a Zoom IP is
  // still Zoom traffic (counted) but not dissected as media.
  std::uint16_t server_port = dst_is_server ? view.udp.dst_port : view.udp.src_port;
  account_zoom(view);
  ++counters_.server_udp_packets;
  if (server_port != zoom::kServerMediaPort) {
    ++counters_.unknown_media_packets;
    return true;
  }
  auto zp = zoom::dissect(view.l4_payload, zoom::Transport::ServerBased);
  if (!zp) {
    ++counters_.unknown_media_packets;
    return true;
  }
  handle_dissected(view, *zp,
                   dst_is_server ? StreamDirection::ToSfu : StreamDirection::FromSfu);
  return true;
}

bool Analyzer::handle_p2p_udp(const net::PacketView& view) {
  const net::FiveTuple flow = view.five_tuple();
  bool known = p2p_.is_confirmed(flow);
  if (!known) {
    bool candidate = p2p_.is_candidate(view.ts, view.ip.src, view.udp.src_port) ||
                     p2p_.is_candidate(view.ts, view.ip.dst, view.udp.dst_port);
    if (!candidate) return false;
  }
  auto zp = zoom::dissect(view.l4_payload, zoom::Transport::P2P);
  if (!zp) {
    if (!known) {
      // Port reuse false positive: the payload is not Zoom (§4.1).
      ++counters_.p2p_false_positives;
      p2p_.reject_flow(flow);
    }
    return false;
  }
  p2p_.confirm_flow(flow);
  account_zoom(view);
  ++counters_.p2p_udp_packets;
  handle_dissected(view, *zp, StreamDirection::P2p);
  return true;
}

bool Analyzer::handle_tcp(const net::PacketView& view) {
  // Zoom control connections use server port 443 (§3).
  bool dst_is_server = config_.server_db.contains(view.ip.dst);
  std::uint16_t server_port = dst_is_server ? view.tcp.dst_port : view.tcp.src_port;
  if (server_port != 443) return false;
  account_zoom(view);
  ++counters_.tcp_control_packets;
  if (config_.track_tcp_rtt) {
    auto& estimator = tcp_rtt_[view.five_tuple().canonical()];
    estimator.on_packet(view.ts, view.tcp, view.l4_payload.size(), dst_is_server);
  }
  return true;
}

StreamInfo& Analyzer::stream_for(const net::PacketView& view,
                                 const zoom::ZoomPacket& zp,
                                 StreamDirection direction, std::uint32_t ssrc,
                                 std::uint32_t first_rtp_ts) {
  StreamKey key{view.five_tuple(), ssrc};
  // Client side: for server traffic the non-server endpoint; for P2P the
  // sender (both sides are clients — the peer endpoint is registered
  // with the grouper separately).
  net::Ipv4Addr client_ip;
  std::uint16_t client_port;
  if (direction == StreamDirection::ToSfu || direction == StreamDirection::P2p) {
    client_ip = view.ip.src;
    client_port = view.udp.src_port;
  } else {
    client_ip = view.ip.dst;
    client_port = view.udp.dst_port;
  }

  if (StreamInfo* existing = streams_.find(key)) return *existing;

  auto kind = zp.media_kind().value_or(zoom::MediaKind::Audio);
  StreamInfo& stream =
      streams_.get_or_create(key, kind, zp.transport, direction, client_ip,
                             client_port, first_rtp_ts, view.ts);
  std::optional<std::pair<net::Ipv4Addr, std::uint16_t>> peer;
  if (direction == StreamDirection::P2p)
    peer = std::pair{view.ip.dst, view.udp.dst_port};
  if (journal_) {
    // The merge step re-runs duplicate matching globally and assigns
    // media/meeting ids there; the shard-local ids are placeholders.
    journal_->events.push_back(ShardJournal::Event{
        journal_->seq, static_cast<std::uint32_t>(stream.index), view.ts,
        ShardJournal::StreamCreate{key.flow, kind, first_rtp_ts,
                                   stream.last_ext_rtp_ts, client_ip, client_port,
                                   direction == StreamDirection::P2p, peer}});
  } else {
    stream.meeting_id = grouper_.assign(stream.media_id, client_ip, client_port,
                                        view.ts,
                                        direction == StreamDirection::P2p, peer);
  }
  return stream;
}

void Analyzer::handle_dissected(const net::PacketView& view,
                                const zoom::ZoomPacket& zp,
                                StreamDirection direction) {
  switch (zp.category) {
    case zoom::PacketCategory::UnknownSfu:
      ++counters_.unknown_sfu_packets;
      return;
    case zoom::PacketCategory::UnknownMedia:
      ++counters_.unknown_media_packets;
      return;
    case zoom::PacketCategory::Stun:
      ++counters_.stun_packets;
      return;
    case zoom::PacketCategory::Rtcp: {
      ++counters_.rtcp_packets;
      auto& tally = counters_.encap_types[zp.media->type];
      ++tally.packets;
      tally.bytes += view.l4_payload.size();
      // RTCP accompanies a media stream: attribute bytes to it if the
      // stream exists (it may briefly precede the first media packet),
      // and feed sender reports to the stream's clock mapper (§4.2.3).
      if (auto ssrc = zp.ssrc()) {
        StreamKey key{view.five_tuple(), *ssrc};
        if (StreamInfo* stream = streams_.find(key)) {
          stream->metrics->on_rtcp_packet(view.ts, view.l4_payload.size());
          for (const auto& pkt : zp.rtcp) {
            if (const auto* sr = std::get_if<proto::SenderReport>(&pkt)) {
              stream->metrics->on_sender_report(sr->ntp.to_unix(),
                                                sr->rtp_timestamp,
                                                sr->packet_count);
            }
          }
        }
      }
      return;
    }
    case zoom::PacketCategory::Media:
      break;
  }

  const auto& encap = *zp.media;
  const auto& rtp = *zp.rtp;
  ++counters_.media_packets;
  {
    auto& tally = counters_.encap_types[encap.type];
    ++tally.packets;
    tally.bytes += view.l4_payload.size();
  }
  auto kind = zp.media_kind().value_or(zoom::MediaKind::Audio);
  {
    auto& tally = counters_.payload_types[{static_cast<std::uint8_t>(kind),
                                           rtp.payload_type}];
    ++tally.packets;
    tally.bytes += view.l4_payload.size();
  }

  StreamInfo& stream = stream_for(view, zp, direction, rtp.ssrc, rtp.timestamp);
  streams_.touch(stream, rtp.timestamp, view.ts);
  if (journal_) {
    journal_->events.push_back(ShardJournal::Event{
        journal_->seq, static_cast<std::uint32_t>(stream.index), view.ts,
        ShardJournal::StreamTouch{stream.last_ext_rtp_ts, stream.last_seen}});
  } else {
    grouper_.touch(stream.meeting_id, view.ts);
  }
  stream.metrics->on_media_packet(view.ts, encap, rtp, zp.rtp_payload.size(),
                                  view.l4_payload.size());

  // §5.3 method 1: RTT via SFU-forwarded copies. Egress and ingress
  // copies ride different flows, so in sharded mode the match itself is
  // deferred to the merge step's global replay.
  if (direction == StreamDirection::ToSfu) {
    if (journal_) {
      journal_->events.push_back(ShardJournal::Event{
          journal_->seq, static_cast<std::uint32_t>(stream.index), view.ts,
          ShardJournal::RtpEgress{rtp.ssrc, rtp.sequence, rtp.timestamp}});
    } else {
      copy_matcher_.on_egress(view.ts, rtp.ssrc, rtp.sequence, rtp.timestamp);
    }
  } else if (direction == StreamDirection::FromSfu) {
    if (journal_) {
      journal_->events.push_back(ShardJournal::Event{
          journal_->seq, static_cast<std::uint32_t>(stream.index), view.ts,
          ShardJournal::RtpIngress{rtp.ssrc, rtp.sequence, rtp.timestamp}});
    } else if (auto sample = copy_matcher_.on_ingress(view.ts, rtp.ssrc,
                                                      rtp.sequence, rtp.timestamp)) {
      stream.metrics->on_rtt_sample(*sample);
      grouper_.add_rtt_sample(stream.meeting_id, *sample);
    }
  }
}

void Analyzer::finish() {
  for (const auto& stream : streams_.streams()) stream->metrics->finish();
}

}  // namespace zpm::core
