#include "core/analyzer.h"

namespace zpm::core {

namespace {

/// Flaws that indicate mangled bytes (as opposed to merely
/// undocumented-but-well-formed traffic); these feed quarantine.
bool is_malformed(zoom::DissectFlaw flaw) {
  return flaw == zoom::DissectFlaw::TruncatedSfu ||
         flaw == zoom::DissectFlaw::TruncatedMediaEncap ||
         flaw == zoom::DissectFlaw::BadRtp || flaw == zoom::DissectFlaw::BadRtcp;
}

}  // namespace

Analyzer::Analyzer(AnalyzerConfig config)
    : config_(std::move(config)),
      p2p_(config_.p2p_timeout),
      streams_(config_.duplicate_match) {
  streams_.set_metrics_config_factory(
      [keep = config_.keep_frames,
       every = config_.frame_sample_every](zoom::MediaKind kind) {
        auto c = metrics::default_config(kind);
        c.keep_frames = keep;
        c.frame_sample_every = every;
        return c;
      });
}

void AnalyzerCounters::merge(const AnalyzerCounters& other) {
  total_packets += other.total_packets;
  total_bytes += other.total_bytes;
  zoom_packets += other.zoom_packets;
  zoom_bytes += other.zoom_bytes;
  server_udp_packets += other.server_udp_packets;
  p2p_udp_packets += other.p2p_udp_packets;
  stun_packets += other.stun_packets;
  tcp_control_packets += other.tcp_control_packets;
  media_packets += other.media_packets;
  rtcp_packets += other.rtcp_packets;
  unknown_sfu_packets += other.unknown_sfu_packets;
  unknown_media_packets += other.unknown_media_packets;
  p2p_false_positives += other.p2p_false_positives;
  for (std::size_t i = 0; i < encap_tally.size(); ++i) {
    encap_tally[i].packets += other.encap_tally[i].packets;
    encap_tally[i].bytes += other.encap_tally[i].bytes;
  }
  for (std::size_t i = 0; i < payload_tally.size(); ++i) {
    payload_tally[i].packets += other.payload_tally[i].packets;
    payload_tally[i].bytes += other.payload_tally[i].bytes;
  }
}

std::map<std::uint8_t, Tally> AnalyzerCounters::encap_types() const {
  std::map<std::uint8_t, Tally> out;
  for (std::size_t i = 0; i < encap_tally.size(); ++i) {
    if (encap_tally[i].packets != 0 || encap_tally[i].bytes != 0)
      out.emplace(static_cast<std::uint8_t>(i), encap_tally[i]);
  }
  return out;
}

std::map<std::pair<std::uint8_t, std::uint8_t>, Tally>
AnalyzerCounters::payload_types() const {
  std::map<std::pair<std::uint8_t, std::uint8_t>, Tally> out;
  for (std::size_t i = 0; i < payload_tally.size(); ++i) {
    if (payload_tally[i].packets != 0 || payload_tally[i].bytes != 0)
      out.emplace(std::pair{static_cast<std::uint8_t>(i / 256),
                            static_cast<std::uint8_t>(i % 256)},
                  payload_tally[i]);
  }
  return out;
}

void Analyzer::flag(std::uint64_t AnalyzerHealth::* field,
                    std::string_view category, util::Timestamp ts) {
  ++(health_.*field);
  if (config_.strict && !violation_) {
    // Sequence numbers are 1-based offer indices; in sharded mode the
    // journal carries the dispatcher's 0-based global sequence.
    violation_ = StrictViolation{
        category, journal_ ? journal_->seq + 1 : counters_.total_packets, ts};
  }
}

void Analyzer::note_decode_failure(net::DecodeFailure df, util::Timestamp ts) {
  std::string_view category = apply_decode_failure(health_, df);
  if (!category.empty() && config_.strict && !violation_)
    violation_ = StrictViolation{category, counters_.total_packets, ts};
}

void Analyzer::note_dissect_flaw(zoom::DissectFlaw flaw, util::Timestamp ts) {
  switch (flaw) {
    // Undocumented type bytes are expected wild traffic, not corruption.
    case zoom::DissectFlaw::None:
    case zoom::DissectFlaw::UnknownMediaType:
      return;
    case zoom::DissectFlaw::TruncatedSfu:
      flag(&AnalyzerHealth::bad_sfu_encap, "bad-sfu-encap", ts);
      return;
    case zoom::DissectFlaw::TruncatedMediaEncap:
      flag(&AnalyzerHealth::bad_media_encap, "bad-media-encap", ts);
      return;
    case zoom::DissectFlaw::BadRtp:
      flag(&AnalyzerHealth::malformed_rtp, "malformed-rtp", ts);
      return;
    case zoom::DissectFlaw::BadRtcp:
      flag(&AnalyzerHealth::malformed_rtcp, "malformed-rtcp", ts);
      return;
  }
}

void Analyzer::note_stream_order(util::Timestamp ts) {
  if (last_offer_ts_ && ts < *last_offer_ts_) ++health_.non_monotonic_ts;
  last_offer_ts_ = ts;
}

void Analyzer::note_flow_quality(const net::FiveTuple& flow, bool malformed,
                                 util::Timestamp ts) {
  if (config_.quarantine_threshold == 0) return;
  if (!malformed) {
    // A well-formed packet only needs to reset a streak that exists; the
    // filter answers "this flow was never malformed" without touching
    // the hash table at all.
    if (!malformed_streaks_.empty() && bloom_maybe_contains(flow))
      malformed_streaks_.erase(flow);
    return;
  }
  bloom_mark(flow);
  std::uint32_t& streak = malformed_streaks_[flow];
  if (++streak >= config_.quarantine_threshold) {
    malformed_streaks_.erase(flow);
    quarantined_.insert(flow);
    flag(&AnalyzerHealth::quarantined_flows, "quarantined-flows", ts);
  }
}

bool Analyzer::offer(const net::RawPacketView& pkt, bool covered) {
  covered_packet_ = covered;
  ++counters_.total_packets;
  counters_.total_bytes += pkt.data.size();
  if (journal_ == nullptr) {
    // Capture-quality observations belong to the global offer order; in
    // sharded mode the dispatcher performs them instead.
    note_stream_order(pkt.ts);
    if (pkt.is_truncated()) ++health_.snaplen_truncated;
  }
  net::DecodeFailure df = net::DecodeFailure::None;
  auto view = net::decode_packet(pkt.ts, pkt.data, &df);
  if (!view) {
    if (journal_ == nullptr) note_decode_failure(df, pkt.ts);
    return false;
  }
  return process_decoded(*view);
}

void Analyzer::account_frontend_rejected(const net::RawPacketView& pkt) {
  // Mirrors offer() up to (but excluding) the decode; the front end only
  // rejects packets whose decode provably succeeds without touching any
  // other counter or flow state.
  ++counters_.total_packets;
  counters_.total_bytes += pkt.data.size();
  if (journal_ == nullptr) {
    note_stream_order(pkt.ts);
    if (pkt.is_truncated()) ++health_.snaplen_truncated;
  }
  ++health_.frontend_rejected;
}

bool Analyzer::process(const net::PacketView& view, bool covered) {
  covered_packet_ = covered;
  ++counters_.total_packets;
  counters_.total_bytes += view.wire_length();
  if (journal_ == nullptr) note_stream_order(view.ts);
  return process_decoded(view);
}

bool Analyzer::process_decoded(const net::PacketView& view) {
  const auto& db = config_.server_db;
  bool src_is_server = db.contains(view.ip.src);
  bool dst_is_server = db.contains(view.ip.dst);

  if (view.l4 == net::L4Proto::Udp) {
    if (src_is_server || dst_is_server) {
      // STUN pre-flight with a zone controller (§4.1).
      if ((dst_is_server && view.udp.dst_port == zoom::kStunServerPort) ||
          (src_is_server && view.udp.src_port == zoom::kStunServerPort)) {
        return handle_stun(view, src_is_server);
      }
      return handle_server_udp(view);
    }
    return handle_p2p_udp(view);
  }
  if (view.l4 == net::L4Proto::Tcp && (src_is_server || dst_is_server)) {
    return handle_tcp(view);
  }
  return false;
}

void Analyzer::account_zoom(const net::PacketView& view) {
  ++counters_.zoom_packets;
  counters_.zoom_bytes += view.wire_length();
  net::FiveTuple flow = view.five_tuple().canonical();
  if (!last_zoom_flow_ || !(flow == *last_zoom_flow_)) {
    zoom_flows_.insert(flow);
    last_zoom_flow_ = flow;
  }
}

bool Analyzer::handle_stun(const net::PacketView& view, bool server_is_src) {
  auto zp = zoom::dissect_stun(view.l4_payload);
  if (!zp) {
    // Port 3478 to/from a Zoom zone controller that does not parse as
    // STUN: mangled in flight, or a squatter on the STUN port.
    flag(&AnalyzerHealth::malformed_stun, "malformed-stun", view.ts);
    return false;
  }
  account_zoom(view);
  ++counters_.stun_packets;
  // The campus endpoint that will later carry the P2P flow is the
  // non-server side (§4.1).
  if (server_is_src) {
    p2p_.on_stun_exchange(view.ts, view.ip.dst, view.udp.dst_port);
  } else {
    p2p_.on_stun_exchange(view.ts, view.ip.src, view.udp.src_port);
  }
  return true;
}

void Analyzer::register_stun_candidate(util::Timestamp ts, net::Ipv4Addr ip,
                                       std::uint16_t port) {
  p2p_.on_stun_exchange(ts, ip, port);
}

bool Analyzer::handle_server_udp(const net::PacketView& view) {
  bool dst_is_server = config_.server_db.contains(view.ip.dst);
  // Media flows use server port 8801 (§3); anything else to a Zoom IP is
  // still Zoom traffic (counted) but not dissected as media.
  std::uint16_t server_port = dst_is_server ? view.udp.dst_port : view.udp.src_port;
  account_zoom(view);
  ++counters_.server_udp_packets;
  if (server_port != zoom::kServerMediaPort) {
    ++counters_.unknown_media_packets;
    return true;
  }
  const net::FiveTuple flow = view.five_tuple().canonical();
  if (is_quarantined(flow)) {
    ++health_.quarantined_packets;
    return true;
  }
  zoom::DissectFlaw flaw = zoom::DissectFlaw::None;
  auto zp = zoom::dissect(view.l4_payload, zoom::Transport::ServerBased, &flaw);
  note_dissect_flaw(flaw, view.ts);
  note_flow_quality(flow, is_malformed(flaw), view.ts);
  if (!zp) {
    ++counters_.unknown_media_packets;
    return true;
  }
  handle_dissected(view, *zp,
                   dst_is_server ? StreamDirection::ToSfu : StreamDirection::FromSfu);
  return true;
}

bool Analyzer::handle_p2p_udp(const net::PacketView& view) {
  const net::FiveTuple flow = view.five_tuple();
  bool known = p2p_.is_confirmed(flow);
  if (!known) {
    bool candidate = p2p_.is_candidate(view.ts, view.ip.src, view.udp.src_port) ||
                     p2p_.is_candidate(view.ts, view.ip.dst, view.udp.dst_port);
    if (!candidate) return false;
  }
  if (known && is_quarantined(flow.canonical())) {
    ++health_.quarantined_packets;
    return false;
  }
  zoom::DissectFlaw flaw = zoom::DissectFlaw::None;
  auto zp = zoom::dissect(view.l4_payload, zoom::Transport::P2P, &flaw);
  if (known) {
    // On a confirmed Zoom flow a parse failure is corruption, not a
    // port-reuse false positive — account for it instead of silently
    // discarding the record.
    note_dissect_flaw(flaw, view.ts);
    note_flow_quality(flow.canonical(), is_malformed(flaw), view.ts);
  }
  if (!zp) {
    if (!known) {
      // Port reuse false positive: the payload is not Zoom (§4.1).
      ++counters_.p2p_false_positives;
      p2p_.reject_flow(flow);
    }
    return false;
  }
  p2p_.confirm_flow(flow);
  account_zoom(view);
  ++counters_.p2p_udp_packets;
  handle_dissected(view, *zp, StreamDirection::P2p);
  return true;
}

bool Analyzer::handle_tcp(const net::PacketView& view) {
  // Zoom control connections use server port 443 (§3).
  bool dst_is_server = config_.server_db.contains(view.ip.dst);
  std::uint16_t server_port = dst_is_server ? view.tcp.dst_port : view.tcp.src_port;
  if (server_port != 443) return false;
  account_zoom(view);
  ++counters_.tcp_control_packets;
  if (config_.track_tcp_rtt) {
    auto& estimator = tcp_rtt_[view.five_tuple().canonical()];
    estimator.on_packet(view.ts, view.tcp, view.l4_payload.size(), dst_is_server);
  }
  return true;
}

StreamInfo& Analyzer::stream_for(const net::PacketView& view,
                                 const zoom::ZoomPacket& zp,
                                 StreamDirection direction, std::uint32_t ssrc,
                                 std::uint32_t first_rtp_ts) {
  StreamKey key{view.five_tuple(), ssrc};
  // Client side: for server traffic the non-server endpoint; for P2P the
  // sender (both sides are clients — the peer endpoint is registered
  // with the grouper separately).
  net::Ipv4Addr client_ip;
  std::uint16_t client_port;
  if (direction == StreamDirection::ToSfu || direction == StreamDirection::P2p) {
    client_ip = view.ip.src;
    client_port = view.udp.src_port;
  } else {
    client_ip = view.ip.dst;
    client_port = view.udp.dst_port;
  }

  auto kind = zp.media_kind().value_or(zoom::MediaKind::Audio);
  // Single probe: get_or_create reports whether it inserted, so the
  // common case (existing stream) does one hash lookup, not two.
  bool created = false;
  StreamInfo& stream =
      streams_.get_or_create(key, kind, zp.transport, direction, client_ip,
                             client_port, first_rtp_ts, view.ts, &created);
  if (!created) return stream;
  std::optional<std::pair<net::Ipv4Addr, std::uint16_t>> peer;
  if (direction == StreamDirection::P2p)
    peer = std::pair{view.ip.dst, view.udp.dst_port};
  if (journal_) {
    // The merge step re-runs duplicate matching globally and assigns
    // media/meeting ids there; the shard-local ids are placeholders.
    journal_->events.push_back(ShardJournal::Event{
        journal_->seq, static_cast<std::uint32_t>(stream.index), view.ts,
        ShardJournal::StreamCreate{key.flow, kind, first_rtp_ts,
                                   stream.last_ext_rtp_ts, client_ip, client_port,
                                   direction == StreamDirection::P2p, peer}});
  } else {
    stream.meeting_id = grouper_.assign(stream.media_id, client_ip, client_port,
                                        view.ts,
                                        direction == StreamDirection::P2p, peer);
  }
  return stream;
}

void Analyzer::handle_dissected(const net::PacketView& view,
                                const zoom::ZoomPacket& zp,
                                StreamDirection direction) {
  switch (zp.category) {
    case zoom::PacketCategory::UnknownSfu:
      ++counters_.unknown_sfu_packets;
      return;
    case zoom::PacketCategory::UnknownMedia:
      ++counters_.unknown_media_packets;
      return;
    case zoom::PacketCategory::Stun:
      ++counters_.stun_packets;
      return;
    case zoom::PacketCategory::Rtcp: {
      ++counters_.rtcp_packets;
      auto& tally = counters_.encap(zp.media->type);
      ++tally.packets;
      tally.bytes += view.l4_payload.size();
      // RTCP accompanies a media stream: attribute bytes to it if the
      // stream exists (it may briefly precede the first media packet),
      // and feed sender reports to the stream's clock mapper (§4.2.3).
      if (auto ssrc = zp.ssrc()) {
        StreamKey key{view.five_tuple(), *ssrc};
        if (StreamInfo* stream = streams_.find(key)) {
          stream->metrics->on_rtcp_packet(view.ts, view.l4_payload.size());
          for (const auto& pkt : zp.rtcp) {
            if (const auto* sr = std::get_if<proto::SenderReport>(&pkt)) {
              stream->metrics->on_sender_report(sr->ntp.to_unix(),
                                                sr->rtp_timestamp,
                                                sr->packet_count);
            }
          }
        }
      }
      return;
    }
    case zoom::PacketCategory::Media:
      break;
  }

  const auto& encap = *zp.media;
  const auto& rtp = *zp.rtp;
  ++counters_.media_packets;
  {
    auto& tally = counters_.encap(encap.type);
    ++tally.packets;
    tally.bytes += view.l4_payload.size();
  }
  auto kind = zp.media_kind().value_or(zoom::MediaKind::Audio);
  {
    auto& tally =
        counters_.payload(static_cast<std::uint8_t>(kind), rtp.payload_type);
    ++tally.packets;
    tally.bytes += view.l4_payload.size();
  }
  // Payload types outside Table 3 are analyzed normally but recorded as
  // a health observation (could be a new Zoom mode — or a flipped bit).
  if (!zoom::is_known_payload_type(kind, rtp.payload_type))
    ++health_.unknown_payload_type;

  StreamInfo& stream = stream_for(view, zp, direction, rtp.ssrc, rtp.timestamp);
  streams_.touch(stream, rtp.timestamp, view.ts);
  if (journal_) {
    journal_->events.push_back(ShardJournal::Event{
        journal_->seq, static_cast<std::uint32_t>(stream.index), view.ts,
        ShardJournal::StreamTouch{stream.last_ext_rtp_ts, stream.last_seen}});
  } else {
    grouper_.touch(stream.meeting_id, view.ts);
  }
  stream.metrics->on_media_packet(view.ts, encap, rtp, zp.rtp_payload.size(),
                                  view.l4_payload.size(), covered_packet_);

  // Offload-covered packets skip the copy matcher entirely: the data
  // plane's spin-bit probe already derived their RTT samples into its
  // histogram registers.
  if (covered_packet_) return;

  // §5.3 method 1: RTT via SFU-forwarded copies. Egress and ingress
  // copies ride different flows, so in sharded mode the match itself is
  // deferred to the merge step's global replay.
  if (direction == StreamDirection::ToSfu) {
    if (journal_) {
      journal_->events.push_back(ShardJournal::Event{
          journal_->seq, static_cast<std::uint32_t>(stream.index), view.ts,
          ShardJournal::RtpEgress{rtp.ssrc, rtp.sequence, rtp.timestamp}});
    } else {
      copy_matcher_.on_egress(view.ts, rtp.ssrc, rtp.sequence, rtp.timestamp);
    }
  } else if (direction == StreamDirection::FromSfu) {
    if (journal_) {
      journal_->events.push_back(ShardJournal::Event{
          journal_->seq, static_cast<std::uint32_t>(stream.index), view.ts,
          ShardJournal::RtpIngress{rtp.ssrc, rtp.sequence, rtp.timestamp}});
    } else if (auto sample = copy_matcher_.on_ingress(view.ts, rtp.ssrc,
                                                      rtp.sequence, rtp.timestamp)) {
      stream.metrics->on_rtt_sample(*sample);
      grouper_.add_rtt_sample(stream.meeting_id, *sample);
    }
  }
}

void Analyzer::finish() {
  for (const auto& stream : streams_.streams()) stream->metrics->finish();
}

}  // namespace zpm::core
