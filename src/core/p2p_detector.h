// Stateful P2P connection detection (paper §4.1, Fig. 2).
//
// Before a two-party meeting goes peer-to-peer, each client exchanges
// cleartext STUN binding requests with a Zoom Zone Controller on UDP
// 3478, using the *same local port* the subsequent P2P media flow will
// use. Remembering (client ip, port, time) therefore lets a passive
// monitor deterministically recognize the otherwise-unidentifiable P2P
// flow: any later packet from that endpoint to a non-Zoom address within
// a timeout is treated as Zoom P2P media (false positives from port
// reuse are discarded when the payload fails Zoom dissection — §4.2).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "net/addr.h"
#include "net/five_tuple.h"
#include "util/time.h"

namespace zpm::core {

/// Tracks STUN-announced candidate endpoints and confirmed P2P flows.
class P2pDetector {
 public:
  /// `timeout`: how long after the STUN exchange an endpoint remains a
  /// P2P candidate (the ablation bench sweeps this).
  explicit P2pDetector(util::Duration timeout = util::Duration::seconds(60))
      : timeout_(timeout) {}

  /// Records a STUN exchange between a campus client endpoint and a
  /// Zoom server.
  void on_stun_exchange(util::Timestamp t, net::Ipv4Addr client_ip,
                        std::uint16_t client_port);

  /// True if this endpoint announced itself via STUN within the timeout.
  [[nodiscard]] bool is_candidate(util::Timestamp t, net::Ipv4Addr ip,
                                  std::uint16_t port) const;

  /// Marks a flow as confirmed Zoom P2P (its packets dissected
  /// successfully); confirmed flows stay matched beyond the timeout.
  void confirm_flow(const net::FiveTuple& flow);
  /// Removes a flow that failed dissection (port-reuse false positive).
  void reject_flow(const net::FiveTuple& flow);
  [[nodiscard]] bool is_confirmed(const net::FiveTuple& flow) const;

  [[nodiscard]] std::size_t candidates() const { return candidates_.size(); }
  [[nodiscard]] std::size_t confirmed_flows() const { return confirmed_.size(); }

  /// Drops candidates whose STUN exchange aged beyond the timeout.
  void expire(util::Timestamp now);

 private:
  static std::uint64_t key(net::Ipv4Addr ip, std::uint16_t port) {
    return (static_cast<std::uint64_t>(ip.value()) << 16) | port;
  }

  util::Duration timeout_;
  std::unordered_map<std::uint64_t, util::Timestamp> candidates_;
  std::unordered_set<net::FiveTuple> confirmed_;
  std::unordered_set<net::FiveTuple> rejected_;
};

}  // namespace zpm::core
