// The end-to-end passive Zoom analyzer: raw captured packets in,
// dissected streams / meetings / per-second metrics out.
//
// This is the library's main entry point, combining every technique in
// the paper: Zoom traffic detection incl. stateful P2P detection (§3,
// §4.1), header dissection (§4.2), stream tracking and meeting grouping
// (§4.3), and the performance metrics of §5. It mirrors what the
// paper's software analysis tools run on the output of the P4 capture
// filter.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/health.h"
#include "core/meetings.h"
#include "core/p2p_detector.h"
#include "core/shard_journal.h"
#include "core/streams.h"
#include "metrics/latency.h"
#include "net/flow_map.h"
#include "net/packet.h"
#include "zoom/classify.h"
#include "zoom/server_db.h"

namespace zpm::core {

/// Analyzer configuration.
struct AnalyzerConfig {
  /// Zoom's published server subnets (stateless detection).
  zoom::ServerDb server_db = zoom::ServerDb::official();
  /// P2P candidate lifetime after the STUN exchange (§4.1).
  util::Duration p2p_timeout = util::Duration::seconds(60);
  /// Duplicate-stream matching knobs (§4.3 step 1).
  DuplicateMatchConfig duplicate_match;
  /// Track TCP control-connection RTTs (§5.3 method 2).
  bool track_tcp_rtt = true;
  /// Retain per-frame records in stream metrics (frame-size CDFs).
  bool keep_frames = true;
  /// Keep only every Nth frame record (memory bound on long traces).
  std::uint32_t frame_sample_every = 1;
  /// Strict mode: record the first malformed record as a
  /// StrictViolation (see strict_violation()) so a driver can fail fast
  /// when debugging a hostile trace. Lenient (false) keeps counting.
  bool strict = false;
  /// Consecutive malformed Zoom-layer payloads on one flow before the
  /// flow is quarantined (further packets skipped and counted in
  /// AnalyzerHealth::quarantined_packets). 0 disables quarantine.
  std::uint32_t quarantine_threshold = 32;
};

/// Packet/byte pair used by the distribution tallies.
struct Tally {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;

  bool operator==(const Tally&) const = default;
};

/// Aggregate counters over the analyzed trace.
struct AnalyzerCounters {
  std::uint64_t total_packets = 0;
  std::uint64_t total_bytes = 0;      // wire bytes of all offered packets
  std::uint64_t zoom_packets = 0;
  std::uint64_t zoom_bytes = 0;

  std::uint64_t server_udp_packets = 0;
  std::uint64_t p2p_udp_packets = 0;
  std::uint64_t stun_packets = 0;
  std::uint64_t tcp_control_packets = 0;

  std::uint64_t media_packets = 0;
  std::uint64_t rtcp_packets = 0;
  std::uint64_t unknown_sfu_packets = 0;
  std::uint64_t unknown_media_packets = 0;
  std::uint64_t p2p_false_positives = 0;

  /// Number of zoom::MediaKind values (Table 3's first index).
  static constexpr std::size_t kMediaKindCount = 3;

  /// Table 2 tallies indexed by the Zoom media-encap type byte. A flat
  /// array instead of a map: the per-packet hot path must not chase
  /// node-based-container pointers (or allocate on first touch). Bytes
  /// are UDP payload bytes; denominator = zoom UDP packets.
  std::array<Tally, 256> encap_tally{};
  /// Table 3 tallies indexed by kind * 256 + RTP payload type.
  std::array<Tally, kMediaKindCount * 256> payload_tally{};

  [[nodiscard]] Tally& encap(std::uint8_t type) { return encap_tally[type]; }
  [[nodiscard]] Tally& payload(std::uint8_t kind, std::uint8_t pt) {
    return payload_tally[std::size_t{kind} * 256 + pt];
  }

  /// Reporting view of encap_tally: the touched entries as the ordered
  /// map the analysis tables consume.
  [[nodiscard]] std::map<std::uint8_t, Tally> encap_types() const;
  /// Reporting view of payload_tally: (media kind, RTP payload type) ->
  /// packets/bytes.
  [[nodiscard]] std::map<std::pair<std::uint8_t, std::uint8_t>, Tally>
  payload_types() const;

  bool operator==(const AnalyzerCounters&) const = default;

  /// Adds another shard's counters (plain sums + tally merges).
  void merge(const AnalyzerCounters& other);
};

/// See file comment.
class Analyzer {
 public:
  explicit Analyzer(AnalyzerConfig config = {});

  /// Offers one raw captured frame. Returns true if it was recognized
  /// as Zoom traffic (any category). `covered` marks a packet the
  /// data-plane offload already absorbed (capture::kFlagOffloadCovered):
  /// it is analyzed normally except that the per-packet jitter/latency
  /// metric updates — the work the switch registers now hold — are
  /// skipped (StreamMetrics clock/jitter estimators, RTT copy-matching).
  bool offer(const net::RawPacket& pkt, bool covered = false) {
    return offer(net::as_view(pkt), covered);
  }
  /// Same, for a non-owning view (the zero-copy ingest path). The view
  /// only needs to stay valid for the duration of the call.
  bool offer(const net::RawPacketView& pkt, bool covered = false);
  /// Same, for an already-decoded packet.
  bool process(const net::PacketView& view, bool covered = false);

  /// Accounts a packet the capture front end (capture::BatchFilter)
  /// rejected without decoding: replays exactly the totals /
  /// stream-order / snaplen bookkeeping offer() would have done before
  /// decode, plus the frontend_rejected health counter. The bit-identity
  /// contract of the front end rests on the rejected packet having no
  /// other observable effect.
  void account_frontend_rejected(const net::RawPacketView& pkt);

  /// Flushes trailing metric bins; call once after the last packet.
  void finish();

  /// Sharded mode: records cross-flow operations (duplicate grouping,
  /// meeting assignment, RTT copy-matching) into `journal` instead of
  /// performing them; the parallel driver replays all shards' journals
  /// in global packet order. nullptr (default) restores serial behavior.
  void set_shard_journal(ShardJournal* journal) { journal_ = journal; }

  /// Sharded mode: registers the P2P candidate endpoint of a STUN
  /// exchange without counting the packet. The dispatcher broadcasts
  /// STUN exchanges to all shards through this hook because P2P
  /// candidates are keyed by endpoint, not 5-tuple — the later media
  /// flow can hash to any shard (§4.1). The dispatcher has already
  /// validated the STUN message and resolved the campus-side (non-
  /// server) endpoint, so only that endpoint travels to the shards —
  /// not a copy of the packet bytes.
  void register_stun_candidate(util::Timestamp ts, net::Ipv4Addr ip,
                               std::uint16_t port);

  [[nodiscard]] const AnalyzerCounters& counters() const { return counters_; }
  /// Robustness counters: what was dropped/distrusted and why.
  [[nodiscard]] const AnalyzerHealth& health() const { return health_; }
  [[nodiscard]] AnalyzerHealth& health() { return health_; }
  /// First malformed record, when config.strict is set.
  [[nodiscard]] const std::optional<StrictViolation>& strict_violation() const {
    return violation_;
  }
  [[nodiscard]] const StreamTable& streams() const { return streams_; }
  [[nodiscard]] StreamTable& streams() { return streams_; }
  [[nodiscard]] const MeetingGrouper& meetings() const { return grouper_; }
  [[nodiscard]] const P2pDetector& p2p_detector() const { return p2p_; }
  /// Distinct Zoom flows (canonical 5-tuples) seen, for Table 6.
  [[nodiscard]] std::size_t zoom_flow_count() const { return zoom_flows_.size(); }
  /// All TCP control-connection RTT estimators, keyed by canonical flow.
  [[nodiscard]] const std::unordered_map<net::FiveTuple, metrics::TcpRttEstimator>&
  tcp_rtt() const {
    return tcp_rtt_;
  }
  /// All §5.3 method-1 RTT samples (monitor <-> SFU), trace-wide.
  [[nodiscard]] const std::vector<metrics::RttSample>& sfu_rtt_samples() const {
    return copy_matcher_.samples();
  }

 private:
  bool process_decoded(const net::PacketView& view);
  bool handle_server_udp(const net::PacketView& view);
  bool handle_p2p_udp(const net::PacketView& view);
  bool handle_stun(const net::PacketView& view, bool server_is_src);
  bool handle_tcp(const net::PacketView& view);
  void account_zoom(const net::PacketView& view);
  /// Increments a health counter and arms the strict violation.
  void flag(std::uint64_t AnalyzerHealth::* field, std::string_view category,
            util::Timestamp ts);
  void note_decode_failure(net::DecodeFailure df, util::Timestamp ts);
  void note_dissect_flaw(zoom::DissectFlaw flaw, util::Timestamp ts);
  /// Timestamp monotonicity is a property of the global offer order, so
  /// it is only checked at a global-order point: serial offer()/process()
  /// (journal_ == nullptr) or the parallel dispatcher. Shard-local
  /// subsequences would count differently.
  void note_stream_order(util::Timestamp ts);
  /// Updates the per-flow malformed streak; returns true when the flow
  /// just crossed the quarantine threshold.
  void note_flow_quality(const net::FiveTuple& flow, bool malformed,
                         util::Timestamp ts);
  [[nodiscard]] bool is_quarantined(const net::FiveTuple& flow) const {
    return !quarantined_.empty() && quarantined_.contains(flow);
  }
  /// Bloom-style membership filter over flows that have *ever* had a
  /// malformed streak entry. Bits are only set, never cleared, so a
  /// negative answer is exact: the common case (clean trace, flow never
  /// malformed) skips the hash-table erase probe that used to run for
  /// every well-formed packet.
  void bloom_mark(const net::FiveTuple& flow) {
    std::size_t h = std::hash<net::FiveTuple>{}(flow);
    ever_malformed_[(h & 0xffff) >> 6] |= 1ULL << (h & 63);
    std::size_t h2 = (h >> 16) & 0xffff;
    ever_malformed_[h2 >> 6] |= 1ULL << (h2 & 63);
  }
  [[nodiscard]] bool bloom_maybe_contains(const net::FiveTuple& flow) const {
    std::size_t h = std::hash<net::FiveTuple>{}(flow);
    if (!(ever_malformed_[(h & 0xffff) >> 6] & (1ULL << (h & 63)))) return false;
    std::size_t h2 = (h >> 16) & 0xffff;
    return (ever_malformed_[h2 >> 6] & (1ULL << (h2 & 63))) != 0;
  }
  void handle_dissected(const net::PacketView& view, const zoom::ZoomPacket& zp,
                        StreamDirection direction);
  StreamInfo& stream_for(const net::PacketView& view, const zoom::ZoomPacket& zp,
                         StreamDirection direction, std::uint32_t ssrc,
                         std::uint32_t first_rtp_ts);

  AnalyzerConfig config_;
  AnalyzerCounters counters_;
  AnalyzerHealth health_;
  std::optional<StrictViolation> violation_;
  std::optional<util::Timestamp> last_offer_ts_;
  // Flat open-addressing tables over the shared canonical flow hash
  // (net::FlatFlowMap): the per-packet membership probes here must not
  // chase unordered_{set,map} node pointers or allocate per flow. Only
  // membership/values are observable, so reports stay bit-identical.
  net::FlatFlowMap<std::uint32_t> malformed_streaks_;
  net::FlatFlowSet quarantined_;
  /// 65536-bit filter backing bloom_mark/bloom_maybe_contains.
  std::array<std::uint64_t, 1024> ever_malformed_{};
  P2pDetector p2p_;
  StreamTable streams_;
  MeetingGrouper grouper_;
  metrics::RtpCopyMatcher copy_matcher_;
  net::FlatFlowSet zoom_flows_;
  /// Media packets arrive in bursts on one flow; caching the last
  /// inserted canonical flow skips the zoom_flows_ hash probe for
  /// back-to-back packets of the same flow.
  std::optional<net::FiveTuple> last_zoom_flow_;
  std::unordered_map<net::FiveTuple, metrics::TcpRttEstimator> tcp_rtt_;
  ShardJournal* journal_ = nullptr;
  /// Offload coverage of the packet currently being processed; set at
  /// every entry point, consumed by handle_dissected.
  bool covered_packet_ = false;
};

}  // namespace zpm::core
