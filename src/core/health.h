// Analyzer health accounting: per-category counters for every record
// the pipeline drops, quarantines, or merely distrusts. A production
// tap (the paper ran 12 hours against 1.8B live campus packets)
// delivers snaplen-truncated records, middlebox-mangled headers,
// capture gaps and port-squatting non-Zoom traffic; these counters make
// that visible instead of silently skewing the metrics.
//
// Determinism contract: every counter except the gauges —
// `ring_wait_spins`, `source_stalls`, `kernel_packets`, `kernel_drops`
// — is a pure function of the offered packet sequence, so serial and
// sharded runs must produce bit-identical values (enforced by
// tests/test_health.cc). `ring_wait_spins` measures backpressure of
// the parallel pipeline's SPSC rings, `source_stalls` counts wall-
// clock watchdog firings, and the kernel counters mirror the live
// capture backend's drop statistics; all are inherently timing-
// dependent and are zeroed in durable epoch records
// (src/analysis/epoch.cc). The `overload_shed_l*` counters sit on the
// deterministic side *when pressure is injected* (overload::
// PressureSchedule drives the governor from packet indices); under
// real live-mode signals they are timing-dependent like any shed.
#pragma once

#include <cstdint>
#include <string_view>

#include "net/packet.h"
#include "util/time.h"

namespace zpm::core {

/// See file comment. All counters count packets (records), not bytes.
struct AnalyzerHealth {
  // -- L2-L4 decode failures (net::decode_packet drop sites) --
  std::uint64_t truncated_l2 = 0;    // frame shorter than an Ethernet header
  std::uint64_t non_ipv4 = 0;        // ARP / IPv6 / LLDP / ... (benign)
  std::uint64_t bad_l3 = 0;          // truncated or inconsistent IPv4 header
  std::uint64_t ip_fragments = 0;    // non-first fragments (no L4 header)
  std::uint64_t unsupported_l4 = 0;  // IP protocol other than UDP/TCP (benign)
  std::uint64_t bad_l4 = 0;          // truncated or inconsistent UDP/TCP header

  // -- capture-quality observations (packet still analyzed) --
  std::uint64_t snaplen_truncated = 0;  // captured bytes < reported wire length
  std::uint64_t non_monotonic_ts = 0;   // timestamp regressed vs. previous record

  // -- front-end screening (capture::BatchFilter; packet counted in the
  //    totals but provably irrelevant, so it is never decoded) --
  std::uint64_t frontend_rejected = 0;
  // -- sketch tier churn (accounting only, no packet is dropped): flows
  //    the bounded heavy-hitter table evicted under memory pressure plus
  //    flows explicitly demoted from exact tracking back to the sketch --
  std::uint64_t sketch_evicted = 0;

  // -- Zoom-layer parse failures --
  std::uint64_t bad_sfu_encap = 0;    // server payload < 8-byte SFU encap
  std::uint64_t bad_media_encap = 0;  // known encap type, truncated header
  std::uint64_t malformed_rtp = 0;    // media encap promised RTP, parse failed
  std::uint64_t malformed_rtcp = 0;   // RTCP encap type, empty compound parse
  std::uint64_t malformed_stun = 0;   // port-3478 exchange that is not STUN

  // -- suspicious-but-analyzed observations --
  std::uint64_t unknown_payload_type = 0;  // RTP payload type outside Table 3

  // -- flow quarantine (repeatedly malformed flows, see AnalyzerConfig) --
  std::uint64_t quarantined_flows = 0;    // flows that crossed the threshold
  std::uint64_t quarantined_packets = 0;  // packets skipped on those flows

  // -- epoch rotation (continuous operation; accounting only, no packet
  //    is dropped): flow/meeting state retired when the daemon closes an
  //    epoch and resets its engine, so bounded memory is visible --
  std::uint64_t epoch_evicted_flows = 0;
  std::uint64_t epoch_evicted_meetings = 0;

  // -- overload-governor sheds (zpm::overload ladder; every packet the
  //    pipeline deliberately gave up, by the level that shed it — the
  //    conservation invariant offered == admitted + shed + kernel_drops
  //    is asserted over these) --
  std::uint64_t overload_shed_l1 = 0;  // Reject verdicts dropped pre-dispatch
  std::uint64_t overload_shed_l2 = 0;  // non-Zoom-candidate admission sampling
  std::uint64_t overload_shed_l3 = 0;  // media-flow packet sampling (degraded)
  std::uint64_t overload_shed_l4 = 0;  // whole-batch head-drop + ring sheds

  // -- parallel-pipeline backpressure (nondeterministic, see above) --
  std::uint64_t ring_wait_spins = 0;  // producer spins on a full shard ring
  // -- live-source watchdog (nondeterministic: wall-clock driven) --
  std::uint64_t source_stalls = 0;  // watchdog-detected quiet source + reopen
  // -- kernel capture statistics (live sources only; gauges, zeroed in
  //    durable records like ring_wait_spins / source_stalls) --
  std::uint64_t kernel_packets = 0;  // seen at the kernel filter point
  std::uint64_t kernel_drops = 0;    // dropped for lack of ring space

  // -- data-plane metric offload (capture/offload.h; accounting only,
  //    no packet is dropped — covered packets are analyzed normally
  //    minus the metric work the switch registers absorbed). Like
  //    sketch_evicted, the collision/eviction churn depends on how
  //    flows partition across per-shard offload instances, so these sit
  //    outside the serial-vs-sharded bit-identity contract. --
  std::uint64_t offload_covered_packets = 0;  // packets the offload absorbed
  std::uint64_t offload_collisions = 0;  // probe + telemetry slot overwrites
  std::uint64_t offload_evictions = 0;   // jitter scratch slot overwrites

  bool operator==(const AnalyzerHealth&) const = default;

  /// Adds another shard's counters. Plain u64 sums: merging per-shard
  /// values in any order is bit-identical to serial counting.
  void merge(const AnalyzerHealth& o) {
    truncated_l2 += o.truncated_l2;
    non_ipv4 += o.non_ipv4;
    bad_l3 += o.bad_l3;
    ip_fragments += o.ip_fragments;
    unsupported_l4 += o.unsupported_l4;
    bad_l4 += o.bad_l4;
    snaplen_truncated += o.snaplen_truncated;
    non_monotonic_ts += o.non_monotonic_ts;
    frontend_rejected += o.frontend_rejected;
    sketch_evicted += o.sketch_evicted;
    bad_sfu_encap += o.bad_sfu_encap;
    bad_media_encap += o.bad_media_encap;
    malformed_rtp += o.malformed_rtp;
    malformed_rtcp += o.malformed_rtcp;
    malformed_stun += o.malformed_stun;
    unknown_payload_type += o.unknown_payload_type;
    quarantined_flows += o.quarantined_flows;
    quarantined_packets += o.quarantined_packets;
    epoch_evicted_flows += o.epoch_evicted_flows;
    epoch_evicted_meetings += o.epoch_evicted_meetings;
    overload_shed_l1 += o.overload_shed_l1;
    overload_shed_l2 += o.overload_shed_l2;
    overload_shed_l3 += o.overload_shed_l3;
    overload_shed_l4 += o.overload_shed_l4;
    ring_wait_spins += o.ring_wait_spins;
    source_stalls += o.source_stalls;
    kernel_packets += o.kernel_packets;
    kernel_drops += o.kernel_drops;
    offload_covered_packets += o.offload_covered_packets;
    offload_collisions += o.offload_collisions;
    offload_evictions += o.offload_evictions;
  }

  /// Total packets deliberately shed by the overload ladder (all
  /// levels). Accounted degradation, not loss: excluded from
  /// dropped_records() for the same reason frontend_rejected is.
  [[nodiscard]] std::uint64_t overload_shed_total() const {
    return overload_shed_l1 + overload_shed_l2 + overload_shed_l3 +
           overload_shed_l4;
  }

  /// Records that could not be (fully) analyzed: undecodable frames,
  /// Zoom-layer parse failures, and quarantined packets. Benign
  /// out-of-scope traffic (non-IPv4, unsupported L4, fragments) and
  /// pure observations (snaplen, timestamps, payload types) are not
  /// "drops" and are excluded.
  [[nodiscard]] std::uint64_t dropped_records() const {
    return truncated_l2 + bad_l3 + bad_l4 + bad_sfu_encap + bad_media_encap +
           malformed_rtp + malformed_rtcp + malformed_stun + quarantined_packets;
  }

  /// True when every counter is zero — the expected state on a clean
  /// (e.g. simulator-generated, uncorrupted) trace.
  [[nodiscard]] bool all_clear() const { return *this == AnalyzerHealth{}; }
};

/// Applies one decode failure to `h`. Returns the health category name
/// when the failure indicates a mangled record (strict-mode relevant),
/// or an empty view for success and benign out-of-scope traffic. Shared
/// between the serial Analyzer and the parallel dispatcher so both
/// attribute identically.
inline std::string_view apply_decode_failure(AnalyzerHealth& h,
                                             net::DecodeFailure df) {
  switch (df) {
    case net::DecodeFailure::None: break;
    case net::DecodeFailure::TruncatedEth: ++h.truncated_l2; return "truncated-l2";
    case net::DecodeFailure::NonIpv4: ++h.non_ipv4; break;
    case net::DecodeFailure::BadIpHeader: ++h.bad_l3; return "bad-l3";
    case net::DecodeFailure::IpFragment: ++h.ip_fragments; break;
    case net::DecodeFailure::UnsupportedL4: ++h.unsupported_l4; break;
    case net::DecodeFailure::BadL4Header: ++h.bad_l4; return "bad-l4";
  }
  return {};
}

/// First malformed record seen in strict mode (AnalyzerConfig::strict):
/// which health category fired, at which global packet sequence number
/// (1-based offer index; in sharded mode the dispatcher's global
/// sequence), and the record's capture timestamp.
struct StrictViolation {
  std::string_view category;
  std::uint64_t sequence = 0;
  util::Timestamp ts;
};

}  // namespace zpm::core
