// Heuristic grouping of streams into meetings (paper §4.3 step 2,
// Fig. 8).
//
// Zoom packets carry no meeting identifier, so meetings are inferred:
// the grouper keeps mappings from (a) the duplicate-detection media id,
// (b) the client IP, and (c) the client IP:port to meeting ids. A new
// stream joining keys that already point at different meetings merges
// those meetings (union-find). The known failure modes (Fig. 9 —
// passive participants invisible, campus NAT merging meetings) are
// properties of the vantage point, not bugs; bench_fig8_grouping
// demonstrates both.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "metrics/latency.h"
#include "net/addr.h"
#include "util/time.h"

namespace zpm::core {

/// A grouped meeting as seen from the monitor.
struct Meeting {
  std::uint32_t id = 0;
  std::set<std::uint64_t> media_ids;      // distinct media (not wire copies)
  std::set<std::uint32_t> client_ips;     // observed participant addresses
  std::size_t stream_count = 0;           // wire-level streams assigned
  util::Timestamp first_seen;
  util::Timestamp last_seen;
  bool saw_p2p = false;
  std::vector<metrics::RttSample> rtt_to_sfu;  // §5.3 method-1 samples

  /// Lower bound on the number of active participants: distinct client
  /// addresses observed sending media (§4.3.1 — passive participants
  /// are invisible by construction).
  [[nodiscard]] std::size_t active_participants() const { return client_ips.size(); }
};

/// Incremental stream→meeting assignment with merging.
class MeetingGrouper {
 public:
  /// Assigns a stream to a meeting and returns the meeting id. For P2P
  /// streams, pass the remote peer endpoint too so both participants'
  /// keys land in the same meeting.
  std::uint32_t assign(std::uint64_t media_id, net::Ipv4Addr client_ip,
                       std::uint16_t client_port, util::Timestamp when,
                       bool is_p2p,
                       std::optional<std::pair<net::Ipv4Addr, std::uint16_t>>
                           peer_endpoint = std::nullopt);

  /// Adds an RTT sample to the meeting owning `meeting_id`.
  void add_rtt_sample(std::uint32_t meeting_id, const metrics::RttSample& sample);

  /// Records meeting activity (extends last_seen).
  void touch(std::uint32_t meeting_id, util::Timestamp t);

  /// Resolves a possibly-merged id to its current root meeting id.
  [[nodiscard]] std::uint32_t resolve(std::uint32_t meeting_id) const;

  /// All root (live) meetings, in creation order.
  [[nodiscard]] std::vector<const Meeting*> meetings() const;
  [[nodiscard]] std::size_t meeting_count() const;

 private:
  static std::uint64_t endpoint_key(net::Ipv4Addr ip, std::uint16_t port) {
    return (static_cast<std::uint64_t>(ip.value()) << 16) | port;
  }

  std::uint32_t find_root(std::uint32_t id) const;
  std::uint32_t merge(std::uint32_t a, std::uint32_t b);

  // Union-find over meeting ids; meetings_[i].id == i for roots.
  mutable std::vector<std::uint32_t> parent_;
  std::vector<Meeting> meetings_;

  std::unordered_map<std::uint64_t, std::uint32_t> by_media_id_;
  std::unordered_map<std::uint32_t, std::uint32_t> by_client_ip_;
  std::unordered_map<std::uint64_t, std::uint32_t> by_endpoint_;
};

}  // namespace zpm::core
