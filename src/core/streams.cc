#include "core/streams.h"

#include <cstdlib>

namespace zpm::core {

StreamInfo* StreamTable::find(const StreamKey& key) {
  auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : streams_[it->second].get();
}

StreamInfo& StreamTable::get_or_create(const StreamKey& key, zoom::MediaKind kind,
                                       zoom::Transport transport,
                                       StreamDirection direction,
                                       net::Ipv4Addr client_ip,
                                       std::uint16_t client_port,
                                       std::uint32_t first_rtp_ts,
                                       util::Timestamp now, bool* created) {
  auto [slot, inserted] = by_key_.try_emplace(key, streams_.size());
  if (created) *created = inserted;
  if (!inserted) return *streams_[slot->second];

  auto stream = std::make_unique<StreamInfo>();
  stream->index = streams_.size();
  stream->key = key;
  stream->kind = kind;
  stream->transport = transport;
  stream->direction = direction;
  stream->client_ip = client_ip;
  stream->client_port = client_port;
  stream->first_rtp_ts = first_rtp_ts;
  stream->first_seen = now;
  stream->last_seen = now;
  stream->metrics = std::make_unique<metrics::StreamMetrics>(
      kind, key.ssrc,
      metrics_factory_ ? metrics_factory_(kind) : metrics::default_config(kind));

  // §4.3 step 1: look for an existing stream carrying the same media —
  // same SSRC, different 5-tuple, same kind, recently active, and RTP
  // timestamps that line up.
  std::optional<std::uint64_t> matched_media_id;
  if (auto it = by_ssrc_.find(key.ssrc); it != by_ssrc_.end()) {
    for (std::size_t idx : it->second) {
      const StreamInfo& other = *streams_[idx];
      if (other.key.flow == key.flow) continue;
      if (other.kind != kind) continue;
      if (now - other.last_seen > config_.max_wall_gap) continue;
      if (config_.require_timestamp_match) {
        std::int64_t delta = std::llabs(
            util::serial_diff(static_cast<std::uint32_t>(other.last_ext_rtp_ts),
                              first_rtp_ts));
        if (delta > config_.max_rtp_ts_delta) continue;
      }
      matched_media_id = other.media_id;
      break;
    }
  }
  stream->media_id = matched_media_id ? *matched_media_id : next_media_id_++;
  stream->last_ext_rtp_ts = stream->rtp_ts_extender.extend(first_rtp_ts);

  by_ssrc_[key.ssrc].push_back(stream->index);
  streams_.push_back(std::move(stream));
  return *streams_.back();
}

void StreamTable::touch(StreamInfo& stream, std::uint32_t rtp_ts, util::Timestamp now) {
  std::int64_t ext = stream.rtp_ts_extender.extend(rtp_ts);
  if (ext > stream.last_ext_rtp_ts) stream.last_ext_rtp_ts = ext;
  if (now > stream.last_seen) stream.last_seen = now;
}

}  // namespace zpm::core
