#include "proto/rtcp.h"

namespace zpm::proto {

namespace {
// Offset between the NTP epoch (1900) and the Unix epoch (1970).
constexpr std::uint64_t kNtpUnixOffsetSeconds = 2208988800ULL;
}  // namespace

util::Timestamp NtpTimestamp::to_unix() const {
  std::int64_t unix_sec =
      static_cast<std::int64_t>(seconds) - static_cast<std::int64_t>(kNtpUnixOffsetSeconds);
  // fraction is in units of 2^-32 seconds.
  std::int64_t us = (static_cast<std::int64_t>(fraction) * 1'000'000) >> 32;
  return util::Timestamp::from_micros(unix_sec * 1'000'000 + us);
}

NtpTimestamp NtpTimestamp::from_unix(util::Timestamp t) {
  std::int64_t us = t.us();
  std::int64_t sec = us / 1'000'000;
  std::int64_t frac_us = us % 1'000'000;
  NtpTimestamp ntp;
  ntp.seconds = static_cast<std::uint32_t>(static_cast<std::uint64_t>(sec) + kNtpUnixOffsetSeconds);
  ntp.fraction = static_cast<std::uint32_t>((static_cast<std::uint64_t>(frac_us) << 32) / 1'000'000);
  return ntp;
}

namespace {

ReportBlock parse_report_block(util::ByteReader& r) {
  ReportBlock b;
  b.ssrc = r.u32be();
  std::uint32_t lost_word = r.u32be();
  b.fraction_lost = static_cast<std::uint8_t>(lost_word >> 24);
  std::uint32_t cum = lost_word & 0x00ffffff;
  // Sign-extend the 24-bit cumulative loss count.
  b.cumulative_lost = (cum & 0x800000) ? static_cast<std::int32_t>(cum | 0xff000000u)
                                       : static_cast<std::int32_t>(cum);
  b.highest_seq = r.u32be();
  b.jitter = r.u32be();
  b.last_sr = r.u32be();
  b.delay_since_last_sr = r.u32be();
  return b;
}

}  // namespace

std::optional<RtcpPacket> parse_rtcp_packet(util::ByteReader& r) {
  if (!r.can_read(4)) return std::nullopt;
  std::uint8_t b0 = r.u8();
  if ((b0 >> 6) != 2) return std::nullopt;
  std::uint8_t count = b0 & 0x1f;
  std::uint8_t pt = r.u8();
  std::uint16_t length_words = r.u16be();
  std::size_t body_len = std::size_t{length_words} * 4;
  if (!r.can_read(body_len)) return std::nullopt;
  util::ByteReader body(r.bytes(body_len));

  switch (pt) {
    case kRtcpSenderReport: {
      SenderReport sr;
      sr.sender_ssrc = body.u32be();
      sr.ntp.seconds = body.u32be();
      sr.ntp.fraction = body.u32be();
      sr.rtp_timestamp = body.u32be();
      sr.packet_count = body.u32be();
      sr.octet_count = body.u32be();
      for (std::uint8_t i = 0; i < count; ++i) sr.reports.push_back(parse_report_block(body));
      if (!body.ok()) return std::nullopt;
      return RtcpPacket{sr};
    }
    case kRtcpReceiverReport: {
      ReceiverReport rr;
      rr.sender_ssrc = body.u32be();
      for (std::uint8_t i = 0; i < count; ++i) rr.reports.push_back(parse_report_block(body));
      if (!body.ok()) return std::nullopt;
      return RtcpPacket{rr};
    }
    case kRtcpSdes: {
      Sdes sdes;
      for (std::uint8_t c = 0; c < count; ++c) {
        SdesChunk chunk;
        chunk.ssrc = body.u32be();
        // Items until a zero terminator, then pad to a 32-bit boundary.
        while (body.ok()) {
          std::uint8_t type = body.u8();
          if (type == 0) break;
          std::uint8_t len = body.u8();
          auto text = body.bytes(len);
          chunk.items.push_back(SdesChunk::Item{
              type, std::string(text.begin(), text.end())});
        }
        while (body.ok() && body.position() % 4 != 0) body.u8();
        if (!body.ok()) return std::nullopt;
        sdes.chunks.push_back(std::move(chunk));
      }
      return RtcpPacket{sdes};
    }
    case kRtcpBye: {
      Bye bye;
      for (std::uint8_t i = 0; i < count; ++i) bye.ssrcs.push_back(body.u32be());
      if (!body.ok()) return std::nullopt;
      return RtcpPacket{bye};
    }
    default:
      return std::nullopt;
  }
}

std::vector<RtcpPacket> parse_rtcp_compound(std::span<const std::uint8_t> data) {
  std::vector<RtcpPacket> packets;
  util::ByteReader r(data);
  while (r.remaining() >= 4) {
    auto pkt = parse_rtcp_packet(r);
    if (!pkt) break;
    packets.push_back(std::move(*pkt));
  }
  return packets;
}

void serialize_sender_report(util::ByteWriter& w, const SenderReport& sr) {
  std::uint8_t count = static_cast<std::uint8_t>(sr.reports.size() & 0x1f);
  std::size_t body_words = 6 + sr.reports.size() * 6;
  w.u8(static_cast<std::uint8_t>((2 << 6) | count));
  w.u8(kRtcpSenderReport);
  w.u16be(static_cast<std::uint16_t>(body_words));
  w.u32be(sr.sender_ssrc);
  w.u32be(sr.ntp.seconds);
  w.u32be(sr.ntp.fraction);
  w.u32be(sr.rtp_timestamp);
  w.u32be(sr.packet_count);
  w.u32be(sr.octet_count);
  for (const auto& b : sr.reports) {
    w.u32be(b.ssrc);
    w.u32be((static_cast<std::uint32_t>(b.fraction_lost) << 24) |
            (static_cast<std::uint32_t>(b.cumulative_lost) & 0x00ffffff));
    w.u32be(b.highest_seq);
    w.u32be(b.jitter);
    w.u32be(b.last_sr);
    w.u32be(b.delay_since_last_sr);
  }
}

void serialize_empty_sdes(util::ByteWriter& w, std::uint32_t ssrc) {
  // One chunk: SSRC + END item + 3 bytes padding = 8 body bytes = 2 words.
  w.u8(static_cast<std::uint8_t>((2 << 6) | 1));
  w.u8(kRtcpSdes);
  w.u16be(2);
  w.u32be(ssrc);
  w.u32be(0);  // END + padding
}

bool looks_like_rtcp(std::span<const std::uint8_t> data) {
  if (data.size() < 4) return false;
  if ((data[0] >> 6) != 2) return false;
  std::uint8_t pt = data[1];
  if (pt < 200 || pt > 204) return false;
  std::size_t len = (static_cast<std::size_t>(data[2]) << 8 | data[3]) * 4 + 4;
  return len <= data.size();
}

}  // namespace zpm::proto
