// STUN (RFC 5389) message parsing and construction.
//
// Zoom clients exchange cleartext STUN binding requests with a Zone
// Controller on UDP port 3478 before any peer-to-peer media flows
// (paper §4.1, Fig. 2). The P2P detector keys off these messages; only
// the binding request/response subset Zoom uses is modelled in depth,
// but arbitrary attributes round-trip.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/addr.h"
#include "util/bytes.h"

namespace zpm::proto {

/// Well-known STUN server port (used by Zoom Zone Controllers).
inline constexpr std::uint16_t kStunPort = 3478;
/// Fixed magic cookie (RFC 5389 §6).
inline constexpr std::uint32_t kStunMagicCookie = 0x2112a442;

/// Method/class combinations Zoom uses.
inline constexpr std::uint16_t kStunBindingRequest = 0x0001;
inline constexpr std::uint16_t kStunBindingResponse = 0x0101;

/// Attribute types.
inline constexpr std::uint16_t kStunAttrMappedAddress = 0x0001;
inline constexpr std::uint16_t kStunAttrXorMappedAddress = 0x0020;
inline constexpr std::uint16_t kStunAttrSoftware = 0x8022;

/// A single TLV attribute (value unpadded).
struct StunAttribute {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> value;
};

/// A parsed STUN message.
struct StunMessage {
  std::uint16_t type = kStunBindingRequest;
  std::array<std::uint8_t, 12> transaction_id{};
  std::vector<StunAttribute> attributes;

  [[nodiscard]] bool is_request() const { return (type & 0x0110) == 0x0000; }
  [[nodiscard]] bool is_success_response() const { return (type & 0x0110) == 0x0100; }

  /// Finds the first attribute of `type`, or nullptr.
  [[nodiscard]] const StunAttribute* find(std::uint16_t attr_type) const;

  /// Decodes an XOR-MAPPED-ADDRESS attribute into (ip, port).
  [[nodiscard]] std::optional<std::pair<net::Ipv4Addr, std::uint16_t>>
  xor_mapped_address() const;

  /// Parses a full STUN message; validates magic cookie, zero top bits
  /// and the length field. nullopt otherwise.
  static std::optional<StunMessage> parse(std::span<const std::uint8_t> data);

  /// Allocation-free validity check: true exactly when parse(data)
  /// would succeed, without materialising the attribute vector. The
  /// parallel dispatcher's STUN-candidate hot path depends on the
  /// equivalence (tests assert it).
  static bool validates(std::span<const std::uint8_t> data);

  void serialize(util::ByteWriter& w) const;
};

/// Builds a binding request with the given transaction id.
StunMessage make_binding_request(std::array<std::uint8_t, 12> txn_id);

/// Builds a binding success response carrying XOR-MAPPED-ADDRESS.
StunMessage make_binding_response(std::array<std::uint8_t, 12> txn_id,
                                  net::Ipv4Addr mapped_ip, std::uint16_t mapped_port);

/// Cheap probe: first byte top bits zero, magic cookie present, length
/// multiple of 4 and within the buffer.
bool looks_like_stun(std::span<const std::uint8_t> data);

}  // namespace zpm::proto
