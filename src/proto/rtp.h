// RTP (RFC 3550) fixed header, CSRC list and header extension.
//
// Zoom transmits RTP in cleartext inside its proprietary encapsulations
// (paper §4.2); this parser is what the entropy-based locator confirms
// against and what every media metric is computed from.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/bytes.h"

namespace zpm::proto {

/// Fixed RTP version required by RFC 3550 ("the first two bits ... must
/// contain the value 10", i.e. 2).
inline constexpr std::uint8_t kRtpVersion = 2;

/// Parsed RTP header (fixed part + CSRCs + one extension block).
struct RtpHeader {
  std::uint8_t version = kRtpVersion;
  bool padding = false;
  bool extension = false;
  std::uint8_t csrc_count = 0;
  bool marker = false;
  std::uint8_t payload_type = 0;
  std::uint16_t sequence = 0;
  std::uint32_t timestamp = 0;
  std::uint32_t ssrc = 0;
  std::vector<std::uint32_t> csrcs;
  /// RFC 3550 §5.3.1 extension: profile-defined id + raw words.
  std::uint16_t extension_profile = 0;
  std::vector<std::uint8_t> extension_data;

  /// Total serialized header length in bytes (fixed + CSRC + extension).
  [[nodiscard]] std::size_t header_length() const {
    std::size_t len = 12 + std::size_t{csrc_count} * 4;
    if (extension) len += 4 + extension_data.size();
    return len;
  }

  /// Parses a header from the reader. Fails (nullopt) when the version
  /// is not 2 or the data is truncated. On success the reader is
  /// positioned at the start of the RTP payload.
  static std::optional<RtpHeader> parse(util::ByteReader& r);

  void serialize(util::ByteWriter& w) const;
};

/// A header plus a view of the payload that follows it.
struct ParsedRtp {
  RtpHeader header;
  std::span<const std::uint8_t> payload;
};

/// Parses a full RTP packet from a raw buffer.
std::optional<ParsedRtp> parse_rtp_packet(std::span<const std::uint8_t> data);

/// Cheap plausibility probe used by the entropy-based header locator:
/// checks version bits, payload-type range and that a full fixed header
/// fits, without allocating.
bool looks_like_rtp(std::span<const std::uint8_t> data);

}  // namespace zpm::proto
