#include "proto/stun.h"

namespace zpm::proto {

const StunAttribute* StunMessage::find(std::uint16_t attr_type) const {
  for (const auto& a : attributes)
    if (a.type == attr_type) return &a;
  return nullptr;
}

std::optional<std::pair<net::Ipv4Addr, std::uint16_t>> StunMessage::xor_mapped_address()
    const {
  const StunAttribute* attr = find(kStunAttrXorMappedAddress);
  if (!attr || attr->value.size() < 8) return std::nullopt;
  util::ByteReader r(attr->value);
  r.u8();  // reserved
  std::uint8_t family = r.u8();
  if (family != 0x01) return std::nullopt;  // IPv4
  std::uint16_t xport = r.u16be();
  std::uint32_t xip = r.u32be();
  std::uint16_t port = static_cast<std::uint16_t>(xport ^ (kStunMagicCookie >> 16));
  return std::pair{net::Ipv4Addr(xip ^ kStunMagicCookie), port};
}

std::optional<StunMessage> StunMessage::parse(std::span<const std::uint8_t> data) {
  if (data.size() < 20) return std::nullopt;
  util::ByteReader r(data);
  std::uint16_t type = r.u16be();
  if ((type & 0xc000) != 0) return std::nullopt;  // top two bits must be 0
  std::uint16_t length = r.u16be();
  if (length % 4 != 0) return std::nullopt;
  std::uint32_t cookie = r.u32be();
  if (cookie != kStunMagicCookie) return std::nullopt;
  StunMessage msg;
  msg.type = type;
  auto txn = r.bytes(12);
  std::copy(txn.begin(), txn.end(), msg.transaction_id.begin());
  if (!r.can_read(length)) return std::nullopt;
  util::ByteReader body(r.bytes(length));
  while (body.remaining() >= 4) {
    StunAttribute attr;
    attr.type = body.u16be();
    std::uint16_t alen = body.u16be();
    auto value = body.bytes(alen);
    if (!body.ok()) return std::nullopt;
    attr.value.assign(value.begin(), value.end());
    // Attributes are padded to 32-bit boundaries.
    std::size_t pad = (4 - alen % 4) % 4;
    body.skip(pad);
    msg.attributes.push_back(std::move(attr));
  }
  if (!body.ok()) return std::nullopt;
  return msg;
}

bool StunMessage::validates(std::span<const std::uint8_t> data) {
  // Mirrors parse() exactly — any divergence would make the parallel
  // dispatcher's STUN-candidate broadcast disagree with the serial
  // analyzer. Keep the two in lockstep.
  if (data.size() < 20) return false;
  util::ByteReader r(data);
  std::uint16_t type = r.u16be();
  if ((type & 0xc000) != 0) return false;  // top two bits must be 0
  std::uint16_t length = r.u16be();
  if (length % 4 != 0) return false;
  std::uint32_t cookie = r.u32be();
  if (cookie != kStunMagicCookie) return false;
  r.bytes(12);  // transaction id
  if (!r.can_read(length)) return false;
  util::ByteReader body(r.bytes(length));
  while (body.remaining() >= 4) {
    body.u16be();  // attribute type
    std::uint16_t alen = body.u16be();
    body.bytes(alen);
    if (!body.ok()) return false;
    body.skip((4 - alen % 4) % 4);
  }
  return body.ok();
}

void StunMessage::serialize(util::ByteWriter& w) const {
  util::ByteWriter body;
  for (const auto& a : attributes) {
    body.u16be(a.type);
    body.u16be(static_cast<std::uint16_t>(a.value.size()));
    body.bytes(a.value);
    body.fill((4 - a.value.size() % 4) % 4);
  }
  w.u16be(type);
  w.u16be(static_cast<std::uint16_t>(body.size()));
  w.u32be(kStunMagicCookie);
  w.bytes(transaction_id);
  w.bytes(body.view());
}

StunMessage make_binding_request(std::array<std::uint8_t, 12> txn_id) {
  StunMessage msg;
  msg.type = kStunBindingRequest;
  msg.transaction_id = txn_id;
  return msg;
}

StunMessage make_binding_response(std::array<std::uint8_t, 12> txn_id,
                                  net::Ipv4Addr mapped_ip, std::uint16_t mapped_port) {
  StunMessage msg;
  msg.type = kStunBindingResponse;
  msg.transaction_id = txn_id;
  StunAttribute attr;
  attr.type = kStunAttrXorMappedAddress;
  util::ByteWriter v(8);
  v.u8(0);
  v.u8(0x01);  // IPv4
  v.u16be(static_cast<std::uint16_t>(mapped_port ^ (kStunMagicCookie >> 16)));
  v.u32be(mapped_ip.value() ^ kStunMagicCookie);
  attr.value = v.take();
  msg.attributes.push_back(std::move(attr));
  return msg;
}

bool looks_like_stun(std::span<const std::uint8_t> data) {
  if (data.size() < 20) return false;
  if ((data[0] & 0xc0) != 0) return false;
  std::uint32_t cookie = (static_cast<std::uint32_t>(data[4]) << 24) |
                         (static_cast<std::uint32_t>(data[5]) << 16) |
                         (static_cast<std::uint32_t>(data[6]) << 8) | data[7];
  if (cookie != kStunMagicCookie) return false;
  std::size_t length = (static_cast<std::size_t>(data[2]) << 8) | data[3];
  return length % 4 == 0 && 20 + length <= data.size();
}

}  // namespace zpm::proto
