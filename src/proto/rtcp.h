// RTCP (RFC 3550): sender reports, receiver reports and source
// description packets, including compound-packet parsing.
//
// Zoom emits only sender reports (sometimes with an empty SDES) — paper
// §4.2.3. The analyzer uses SRs to map RTP timestamps to NTP wall-clock
// and the locator uses SSRC cross-referencing to find RTCP at unknown
// offsets.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "util/bytes.h"
#include "util/time.h"

namespace zpm::proto {

/// RTCP packet type codes.
inline constexpr std::uint8_t kRtcpSenderReport = 200;
inline constexpr std::uint8_t kRtcpReceiverReport = 201;
inline constexpr std::uint8_t kRtcpSdes = 202;
inline constexpr std::uint8_t kRtcpBye = 203;

/// 64-bit NTP timestamp (seconds since 1900 in the top word, fraction in
/// the bottom word).
struct NtpTimestamp {
  std::uint32_t seconds = 0;
  std::uint32_t fraction = 0;

  /// Converts to a Unix-epoch Timestamp (microseconds).
  [[nodiscard]] util::Timestamp to_unix() const;
  /// Builds from a Unix-epoch Timestamp.
  static NtpTimestamp from_unix(util::Timestamp t);

  auto operator<=>(const NtpTimestamp&) const = default;
};

/// RR/SR report block (RFC 3550 §6.4.1).
struct ReportBlock {
  std::uint32_t ssrc = 0;
  std::uint8_t fraction_lost = 0;
  std::int32_t cumulative_lost = 0;  // 24-bit signed on the wire
  std::uint32_t highest_seq = 0;
  std::uint32_t jitter = 0;
  std::uint32_t last_sr = 0;
  std::uint32_t delay_since_last_sr = 0;
};

/// Sender report (PT 200).
struct SenderReport {
  std::uint32_t sender_ssrc = 0;
  NtpTimestamp ntp;
  std::uint32_t rtp_timestamp = 0;
  std::uint32_t packet_count = 0;
  std::uint32_t octet_count = 0;
  std::vector<ReportBlock> reports;
};

/// Receiver report (PT 201). Zoom does not emit these (§4.2.1); parsing
/// support exists for generality and for the negative finding itself.
struct ReceiverReport {
  std::uint32_t sender_ssrc = 0;
  std::vector<ReportBlock> reports;
};

/// One SDES chunk: an SSRC and its (possibly empty) item list.
struct SdesChunk {
  std::uint32_t ssrc = 0;
  struct Item {
    std::uint8_t type = 0;  // 1 = CNAME, ...
    std::string value;
  };
  std::vector<Item> items;
};

/// Source description (PT 202).
struct Sdes {
  std::vector<SdesChunk> chunks;
};

/// Goodbye (PT 203).
struct Bye {
  std::vector<std::uint32_t> ssrcs;
};

/// Any single parsed RTCP packet.
using RtcpPacket = std::variant<SenderReport, ReceiverReport, Sdes, Bye>;

/// Parses one RTCP packet starting at the reader. On success the reader
/// is positioned after the packet (RTCP length field). nullopt on
/// malformed input.
std::optional<RtcpPacket> parse_rtcp_packet(util::ByteReader& r);

/// Parses a full compound RTCP packet (one or more stacked packets).
/// Returns the packets parsed before the first malformed one; empty
/// vector means the buffer does not start with valid RTCP.
std::vector<RtcpPacket> parse_rtcp_compound(std::span<const std::uint8_t> data);

/// Serializes a sender report (+ optional trailing empty SDES, matching
/// Zoom's observed "SR + SDES" type-34 packets).
void serialize_sender_report(util::ByteWriter& w, const SenderReport& sr);
void serialize_empty_sdes(util::ByteWriter& w, std::uint32_t ssrc);

/// Cheap probe: does this look like the start of an RTCP packet
/// (version 2, PT in 200..204, coherent length)?
bool looks_like_rtcp(std::span<const std::uint8_t> data);

}  // namespace zpm::proto
