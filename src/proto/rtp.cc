#include "proto/rtp.h"

namespace zpm::proto {

std::optional<RtpHeader> RtpHeader::parse(util::ByteReader& r) {
  if (!r.can_read(12)) return std::nullopt;
  RtpHeader h;
  std::uint8_t b0 = r.u8();
  h.version = b0 >> 6;
  if (h.version != kRtpVersion) return std::nullopt;
  h.padding = (b0 & 0x20) != 0;
  h.extension = (b0 & 0x10) != 0;
  h.csrc_count = b0 & 0x0f;
  std::uint8_t b1 = r.u8();
  h.marker = (b1 & 0x80) != 0;
  h.payload_type = b1 & 0x7f;
  h.sequence = r.u16be();
  h.timestamp = r.u32be();
  h.ssrc = r.u32be();
  h.csrcs.reserve(h.csrc_count);
  for (std::uint8_t i = 0; i < h.csrc_count; ++i) h.csrcs.push_back(r.u32be());
  if (h.extension) {
    h.extension_profile = r.u16be();
    std::uint16_t words = r.u16be();
    auto data = r.bytes(std::size_t{words} * 4);
    h.extension_data.assign(data.begin(), data.end());
  }
  if (!r.ok()) return std::nullopt;
  return h;
}

std::optional<ParsedRtp> parse_rtp_packet(std::span<const std::uint8_t> data) {
  util::ByteReader r(data);
  auto h = RtpHeader::parse(r);
  if (!h) return std::nullopt;
  return ParsedRtp{*h, r.rest()};
}

void RtpHeader::serialize(util::ByteWriter& w) const {
  std::uint8_t cc = static_cast<std::uint8_t>(csrcs.size() & 0x0f);
  w.u8(static_cast<std::uint8_t>((kRtpVersion << 6) | (padding ? 0x20 : 0) |
                                 (extension ? 0x10 : 0) | cc));
  w.u8(static_cast<std::uint8_t>((marker ? 0x80 : 0) | (payload_type & 0x7f)));
  w.u16be(sequence);
  w.u32be(timestamp);
  w.u32be(ssrc);
  for (std::uint32_t csrc : csrcs) w.u32be(csrc);
  if (extension) {
    w.u16be(extension_profile);
    // Round data up to whole 32-bit words.
    std::size_t words = (extension_data.size() + 3) / 4;
    w.u16be(static_cast<std::uint16_t>(words));
    w.bytes(extension_data);
    w.fill(words * 4 - extension_data.size());
  }
}

bool looks_like_rtp(std::span<const std::uint8_t> data) {
  if (data.size() < 12) return false;
  if ((data[0] >> 6) != kRtpVersion) return false;
  std::uint8_t cc = data[0] & 0x0f;
  bool ext = (data[0] & 0x10) != 0;
  std::size_t need = 12 + std::size_t{cc} * 4 + (ext ? 4 : 0);
  return data.size() >= need;
}

}  // namespace zpm::proto
