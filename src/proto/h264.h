// H.264 NAL unit / fragmentation unit headers (RFC 6184).
//
// Zoom video packets carry an RTP header followed by an H.264 FU-A NAL
// indication before the encrypted payload (paper §4.2.3). The dissector
// surfaces these two bytes; everything after them is opaque.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

namespace zpm::proto {

/// NAL unit types relevant to Zoom video.
inline constexpr std::uint8_t kNalTypeFuA = 28;

/// First byte of a NAL unit: forbidden bit, NRI, type.
struct NalHeader {
  bool forbidden = false;
  std::uint8_t nri = 0;   // importance (0-3)
  std::uint8_t type = 0;  // 1-23 single NAL, 28 = FU-A

  static NalHeader from_byte(std::uint8_t b) {
    return NalHeader{(b & 0x80) != 0, static_cast<std::uint8_t>((b >> 5) & 0x3),
                     static_cast<std::uint8_t>(b & 0x1f)};
  }
  [[nodiscard]] std::uint8_t to_byte() const {
    return static_cast<std::uint8_t>((forbidden ? 0x80 : 0) |
                                     ((nri & 0x3) << 5) | (type & 0x1f));
  }
};

/// FU header (second byte of an FU-A fragment): start/end flags and the
/// original NAL type.
struct FuHeader {
  bool start = false;
  bool end = false;
  std::uint8_t nal_type = 0;

  static FuHeader from_byte(std::uint8_t b) {
    return FuHeader{(b & 0x80) != 0, (b & 0x40) != 0,
                    static_cast<std::uint8_t>(b & 0x1f)};
  }
  [[nodiscard]] std::uint8_t to_byte() const {
    return static_cast<std::uint8_t>((start ? 0x80 : 0) | (end ? 0x40 : 0) |
                                     (nal_type & 0x1f));
  }
};

/// A parsed FU-A indication + header pair.
struct FuA {
  NalHeader indicator;
  FuHeader fu;
};

/// Parses the two FU-A bytes at the start of an RTP video payload;
/// nullopt when the payload is too short or not an FU-A fragment.
inline std::optional<FuA> parse_fu_a(std::span<const std::uint8_t> payload) {
  if (payload.size() < 2) return std::nullopt;
  NalHeader ind = NalHeader::from_byte(payload[0]);
  if (ind.forbidden || ind.type != kNalTypeFuA) return std::nullopt;
  return FuA{ind, FuHeader::from_byte(payload[1])};
}

}  // namespace zpm::proto
