// Load shedder: applies the overload ladder (see governor.h) to one
// classified batch by *compaction* — survivors are copied (views only,
// never packet bytes) into a caller-owned scratch batch with
// index-aligned verdicts, so the downstream dispatch paths
// (pipeline::ParallelAnalyzer::offer_batch, the serial verdict loop)
// run unchanged on the compacted batch. At L0 apply() declines and the
// caller uses the original batch — the disabled/zero-pressure path is
// byte-identical by construction.
//
// Shedding priority (most expendable first — Zoom media flows are the
// *last* thing degraded, matching the instrument's purpose):
//   L1  Reject verdicts. The sketch tier already summarized them
//       during classify(); dropping the dispatch-side accounting replay
//       is pure CPU savings with zero effect on Zoom metrics.
//   L2  Admitted packets that carry neither kFlagZoomShaped nor
//       kFlagStunPort: kept iff mix64(flow_hash ^ seed) % 100 <
//       l2_keep_pct. The decision depends only on the canonical flow
//       hash, so a flow is kept or shed *as a whole* and identical
//       replays shed identically.
//   L3  Zoom-media admits (kFlagZoomShaped): per-flow packet sampling
//       keyed by the front end's first-sight-order flow slot — keep
//       packet k of a flow iff k % l3_keep_one_in == 0. Slot ids are
//       shard-count-independent, so governed runs stay serial-vs-
//       sharded identical. STUN-flagged admits are never sampled (they
//       arm P2P candidates; rare and load-bearing).
//   L4  the whole batch, head-dropped before classification.
// FullParse packets are never shed below L4: the probe could not prove
// anything about them, so the full decode path must see them.
//
// Without a front end there are no verdicts, so L1..L3 have nothing to
// key on and only L4 sheds (documented degradation of --no-frontend).
//
// Every shed packet lands in ShedStats by level; the epoch engine folds
// the per-epoch deltas into AnalyzerHealth::overload_shed_l*, which is
// what the end-to-end conservation check sums.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "capture/batch_filter.h"
#include "net/packet.h"

namespace zpm::overload {

/// Shedding knobs. Defaults match docs/ROBUSTNESS.md §5.
struct ShedConfig {
  /// Seed for the L2 flow-hash keep decision. Fixed default so replays
  /// shed identically without configuration.
  std::uint64_t seed = 0x7a6f6f6d70657266ULL;  // "zoomperf"
  /// Percent (0..100) of non-Zoom-candidate flows kept at L2.
  std::uint32_t l2_keep_pct = 25;
  /// At L3, keep one of every N packets per media flow (N >= 1).
  std::uint32_t l3_keep_one_in = 4;

  bool operator==(const ShedConfig&) const = default;
};

/// Monotone shed totals, by the level that shed each packet.
struct ShedStats {
  std::uint64_t l1_packets = 0;
  std::uint64_t l2_packets = 0;
  std::uint64_t l3_packets = 0;
  std::uint64_t l4_packets = 0;
  std::uint64_t shed_bytes = 0;       ///< wire bytes, all levels
  std::uint64_t batches_dropped = 0;  ///< whole-batch L4 head-drops

  [[nodiscard]] std::uint64_t total_packets() const {
    return l1_packets + l2_packets + l3_packets + l4_packets;
  }

  bool operator==(const ShedStats&) const = default;
};

/// See file comment. Single-threaded (producer side).
class LoadShedder {
 public:
  explicit LoadShedder(ShedConfig config = {});

  /// Applies `level` to a classified run. Returns true when shedding
  /// was applied: survivors (possibly zero) are in `out_run` /
  /// `out_verdicts` (both fully overwritten; promotions copied through
  /// from the original verdicts). Returns false when the run passes
  /// untouched (level <= 0, or nothing to key on) — the caller must
  /// then use the original batch, which keeps the governed-but-calm
  /// path byte-identical to the ungoverned one.
  /// `verdicts` may be null (no front end): only L4 sheds then.
  bool apply(int level, std::span<const net::RawPacketView> run,
             const capture::BatchVerdicts* verdicts,
             std::vector<net::RawPacketView>& out_run,
             capture::BatchVerdicts& out_verdicts);

  /// Epoch rotation hook: the front end is rebuilt and its first-sight
  /// slot ids restart from zero, so the per-flow sampling counters must
  /// restart with them.
  void reset_flow_state() { flow_counters_.clear(); }

  [[nodiscard]] const ShedStats& stats() const { return stats_; }
  [[nodiscard]] const ShedConfig& config() const { return config_; }

  /// The L2 keep decision for one flow (pure; exposed for tests).
  [[nodiscard]] bool keep_at_l2(std::uint64_t flow_hash) const;

 private:
  ShedConfig config_;
  ShedStats stats_;
  /// Per-flow packet counters for L3 sampling, indexed by the front
  /// end's flow slot (first-sight order, grown on demand).
  std::vector<std::uint32_t> flow_counters_;
};

}  // namespace zpm::overload
