#include "overload/governor.h"

#include <algorithm>
#include <cstdlib>

namespace zpm::overload {

OverloadGovernor::OverloadGovernor(GovernorConfig config)
    : config_(config) {}

double OverloadGovernor::normalize(const PressureSignals& signals) const {
  // Max, not sum: any one saturated resource is enough to warrant
  // shedding, and max keeps the scalar interpretable (1.0 == "some
  // resource is at its configured ceiling").
  double p = 0.0;
  if (config_.ring_occupancy_hi > 0.0) {
    p = std::max(p, signals.ring_occupancy / config_.ring_occupancy_hi);
  }
  if (config_.spins_hi > 0.0) {
    p = std::max(p, static_cast<double>(signals.spins_delta) / config_.spins_hi);
  }
  if (config_.latency_hi_us > 0.0) {
    p = std::max(p, signals.latency_us / config_.latency_hi_us);
  }
  if (signals.kernel_drops_delta > 0) {
    // The kernel is already losing packets: past saturation by
    // definition, whatever the local signals say.
    p = std::max(p, 1.0);
  }
  return p;
}

int OverloadGovernor::observe(const PressureSignals& signals) {
  return observe_pressure(normalize(signals));
}

int OverloadGovernor::observe_pressure(double pressure) {
  if (pressure < 0.0) pressure = 0.0;
  ++stats_.observations;
  if (!seeded_) {
    ewma_ = pressure;
    seeded_ = true;
  } else {
    ewma_ += config_.alpha * (pressure - ewma_);
  }

  if (ewma_ >= config_.high_watermark) {
    calm_streak_ = 0;
    if (++over_streak_ >= config_.escalate_after && level_ < kMaxLevel) {
      ++level_;
      ++stats_.escalations;
      stats_.max_level = std::max(stats_.max_level, level_);
      over_streak_ = 0;  // each further step needs a fresh streak
    }
  } else if (ewma_ <= config_.low_watermark) {
    over_streak_ = 0;
    if (++calm_streak_ >= config_.recover_after && level_ > 0) {
      --level_;
      ++stats_.recoveries;
      calm_streak_ = 0;
    }
  } else {
    // Dead band: hold the level, reset both streaks so a boundary
    // flapper cannot accumulate progress in either direction.
    over_streak_ = 0;
    calm_streak_ = 0;
  }
  return level_;
}

bool PressureSchedule::parse(const std::string& spec) {
  ranges_.clear();
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string part = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (part.empty()) continue;

    const std::size_t dash = part.find('-');
    const std::size_t colon = part.find(':', dash == std::string::npos ? 0 : dash);
    if (dash == std::string::npos || colon == std::string::npos ||
        dash == 0 || colon <= dash + 1 || colon + 1 >= part.size()) {
      ranges_.clear();
      return false;
    }
    char* end = nullptr;
    Range r;
    r.begin = std::strtoull(part.c_str(), &end, 10);
    if (end != part.c_str() + dash) { ranges_.clear(); return false; }
    r.end = std::strtoull(part.c_str() + dash + 1, &end, 10);
    if (end != part.c_str() + colon) { ranges_.clear(); return false; }
    r.pressure = std::strtod(part.c_str() + colon + 1, &end);
    if (end != part.c_str() + part.size() || r.end <= r.begin ||
        r.pressure < 0.0) {
      ranges_.clear();
      return false;
    }
    ranges_.push_back(r);
  }
  return !ranges_.empty();
}

double PressureSchedule::pressure_at(std::uint64_t index) const {
  double p = 0.0;
  for (const Range& r : ranges_) {
    if (index >= r.begin && index < r.end) p = std::max(p, r.pressure);
  }
  return p;
}

}  // namespace zpm::overload
