// Umbrella header + pipeline-facing configuration for zpm::overload.
#pragma once

#include <cstdint>
#include <string>

#include "overload/governor.h"
#include "overload/shedder.h"

namespace zpm::overload {

/// Everything a pipeline needs to run governed. Default-constructed ==
/// governor off == byte-identical to the ungoverned pipeline.
struct OverloadOptions {
  bool enabled = false;
  GovernorConfig governor;
  ShedConfig shed;
  /// Observation-window size in packets: the governor observes once
  /// every `window_packets` offered packets, at absolute global-index
  /// boundaries (so the decision points are batch-alignment- and
  /// restart-independent).
  std::uint64_t window_packets = 2048;
  /// Deterministic pressure injection spec (PressureSchedule::parse
  /// format). Non-empty replaces the real signals entirely: every
  /// observation reads the schedule at the current global packet index.
  std::string inject;

  bool operator==(const OverloadOptions&) const = default;
};

}  // namespace zpm::overload
