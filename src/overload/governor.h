// Overload governor: the decision core of graceful degradation.
//
// A production tap does not get to choose its offered load. When
// analysis capacity is exceeded the pipeline must degrade *predictably*
// — shedding the least valuable work first and accounting for every
// packet it gives up — instead of blocking the poll loop and letting
// the kernel drop packets silently and arbitrarily. This module is the
// pure decision logic of that plan:
//
//   * OverloadGovernor derives a pressure level L0..L4 from EWMA-
//     smoothed signals (shard ring occupancy, producer push-wait spin
//     deltas, batch-processing latency, kernel drop deltas) with
//     hysteresis on both escalation and recovery: the level moves at
//     most one step per observation, and only after `escalate_after`
//     consecutive over-threshold (resp. `recover_after` consecutive
//     calm) observations. In the dead band between the watermarks the
//     level holds. Fuzzed invariants (tests/fuzz/fuzz_overload.cc):
//     |Δlevel| <= 1 per observe, level in [0,4], counters monotone.
//
//   * PressureSchedule is the deterministic overload injector: a spec
//     like "5000-20000:0.95,30000-40000:1.2" maps *global packet index*
//     ranges to raw pressure values, making every governor decision —
//     and therefore every shed decision — a pure function of the packet
//     sequence. Identical replays produce identical reports and
//     identical shed accounting, which is what makes the ladder
//     testable end to end.
//
// What each level sheds (overload::LoadShedder applies it; see
// docs/ROBUSTNESS.md §5 for the full table):
//   L0  nothing — normal operation.
//   L1  front-end Reject verdicts: dropped at the admission boundary
//       without the totals/stream-order replay (the sketch tier already
//       summarized them during classification).
//   L2  hash-based admission sampling of non-Zoom-candidate admits,
//       seeded from the canonical flow hash (replay-deterministic).
//   L3  per-flow packet sampling on Zoom media flows — the *last*
//       thing degraded before whole-batch drops; reports are flagged.
//   L4  whole-batch head-drop (and, in live mode, bounded-dispatch
//       ring sheds), with full per-packet accounting.
//
// Conservation invariant, asserted end to end by tests:
//   offered == admitted + shed(L1..L4) + kernel_drops.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace zpm::overload {

/// Number of ladder levels (L0..L4).
inline constexpr int kMaxLevel = 4;

/// Governor tuning. All thresholds are live-retunable (daemon SIGHUP).
struct GovernorConfig {
  /// EWMA smoothing factor for the pressure scalar (0 < alpha <= 1;
  /// higher reacts faster).
  double alpha = 0.4;
  /// Escalate when the smoothed pressure sits at or above this for
  /// `escalate_after` consecutive observations.
  double high_watermark = 0.85;
  /// Recover when it sits at or below this for `recover_after`
  /// consecutive observations. Must be < high_watermark; the gap is
  /// the hysteresis dead band where the level holds.
  double low_watermark = 0.35;
  std::uint32_t escalate_after = 2;
  std::uint32_t recover_after = 4;

  // -- raw-signal normalization (observe(PressureSignals)) --
  /// Ring occupancy fraction (0..1) that maps to pressure 1.0.
  double ring_occupancy_hi = 0.5;
  /// Producer push-wait spins per observation window mapping to 1.0.
  double spins_hi = 512.0;
  /// Mean batch-processing latency (µs per packet) mapping to 1.0.
  double latency_hi_us = 25.0;

  bool operator==(const GovernorConfig&) const = default;
};

/// One observation window's raw signals. Every field is optional in
/// spirit: a zero contributes no pressure.
struct PressureSignals {
  /// Max over shards of ring occupancy (0..1) at the window boundary.
  double ring_occupancy = 0.0;
  /// Producer push-wait spins accumulated during the window.
  std::uint64_t spins_delta = 0;
  /// Mean processing latency over the window, µs per packet.
  double latency_us = 0.0;
  /// Kernel drops reported by the live source during the window. Any
  /// nonzero value means the kernel is already losing packets — it
  /// pins the pressure at saturation regardless of the other signals.
  std::uint64_t kernel_drops_delta = 0;
};

/// Monotone counters over a governor's lifetime (all strictly
/// non-decreasing; fuzzed).
struct GovernorStats {
  std::uint64_t observations = 0;
  std::uint64_t escalations = 0;  ///< level went up by one
  std::uint64_t recoveries = 0;   ///< level came down by one
  int max_level = 0;              ///< highest level ever reached
};

/// See file comment. Single-threaded; one observation per window.
class OverloadGovernor {
 public:
  explicit OverloadGovernor(GovernorConfig config = {});

  /// Normalizes raw signals to a pressure scalar and feeds the ladder.
  /// Returns the (possibly changed) level.
  int observe(const PressureSignals& signals);
  /// Feeds a raw pressure value directly (the injection path).
  int observe_pressure(double pressure);

  [[nodiscard]] int level() const { return level_; }
  /// Smoothed pressure after the last observation.
  [[nodiscard]] double pressure() const { return ewma_; }
  [[nodiscard]] const GovernorStats& stats() const { return stats_; }
  [[nodiscard]] const GovernorConfig& config() const { return config_; }

  /// Live threshold retune (SIGHUP): level, streaks and counters are
  /// preserved — only the decision thresholds change.
  void set_config(const GovernorConfig& config) { config_ = config; }

  /// Maps raw signals to the pressure scalar (max over the normalized
  /// signals; kernel drops pin it at saturation). Pure; exposed for
  /// tests.
  [[nodiscard]] double normalize(const PressureSignals& signals) const;

 private:
  GovernorConfig config_;
  int level_ = 0;
  double ewma_ = 0.0;
  bool seeded_ = false;           ///< first sample primes the EWMA
  std::uint32_t over_streak_ = 0;
  std::uint32_t calm_streak_ = 0;
  GovernorStats stats_;
};

/// Deterministic overload injection: half-open global-packet-index
/// ranges mapped to raw pressure values (see file comment). Outside
/// every range the injected pressure is 0.
class PressureSchedule {
 public:
  struct Range {
    std::uint64_t begin = 0;  ///< first packet index covered
    std::uint64_t end = 0;    ///< one past the last index covered
    double pressure = 0.0;
  };

  PressureSchedule() = default;

  /// Parses "begin-end:pressure[,begin-end:pressure...]". Returns false
  /// (schedule left empty) on a malformed spec.
  bool parse(const std::string& spec);

  [[nodiscard]] bool empty() const { return ranges_.empty(); }
  /// Injected pressure for the observation at global packet `index`.
  [[nodiscard]] double pressure_at(std::uint64_t index) const;
  [[nodiscard]] const std::vector<Range>& ranges() const { return ranges_; }

 private:
  std::vector<Range> ranges_;
};

}  // namespace zpm::overload
