#include "overload/shedder.h"

#include "overload/governor.h"

namespace zpm::overload {

namespace {

/// 64-bit finalizer (splitmix64): decorrelates the canonical flow hash
/// from the seed so the L2 keep set is an unbiased pseudo-random
/// `l2_keep_pct`% of flows.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

LoadShedder::LoadShedder(ShedConfig config) : config_(config) {
  if (config_.l3_keep_one_in == 0) config_.l3_keep_one_in = 1;
  if (config_.l2_keep_pct > 100) config_.l2_keep_pct = 100;
}

bool LoadShedder::keep_at_l2(std::uint64_t flow_hash) const {
  return mix64(flow_hash ^ config_.seed) % 100 < config_.l2_keep_pct;
}

bool LoadShedder::apply(int level, std::span<const net::RawPacketView> run,
                        const capture::BatchVerdicts* verdicts,
                        std::vector<net::RawPacketView>& out_run,
                        capture::BatchVerdicts& out_verdicts) {
  if (level <= 0 || run.empty()) return false;

  if (level >= kMaxLevel) {
    // L4: head-drop the whole run before any classification work.
    stats_.l4_packets += run.size();
    for (const auto& pkt : run) stats_.shed_bytes += pkt.data.size();
    ++stats_.batches_dropped;
    out_run.clear();
    out_verdicts.resize(0);
    return true;
  }

  // L1..L3 key on front-end verdicts; without them nothing can be
  // proven expendable, so the run passes untouched.
  if (verdicts == nullptr) return false;

  out_run.clear();
  out_verdicts.resize(0);
  out_run.reserve(run.size());
  out_verdicts.verdicts.reserve(run.size());
  out_verdicts.flags.reserve(run.size());
  out_verdicts.shard.reserve(run.size());
  out_verdicts.slot.reserve(run.size());
  out_verdicts.flow_hash.reserve(run.size());

  for (std::size_t i = 0; i < run.size(); ++i) {
    const capture::Verdict v = verdicts->verdicts[i];
    const std::uint8_t flags = verdicts->flags[i];
    bool keep = true;
    if (v == capture::Verdict::Reject) {
      // L1: the sketch tier already absorbed it during classify().
      keep = false;
      ++stats_.l1_packets;
    } else if (v == capture::Verdict::Admit &&
               (flags & capture::kFlagStunPort) == 0) {
      if ((flags & capture::kFlagZoomShaped) == 0) {
        // L2: whole-flow keep decision off the canonical flow hash.
        if (level >= 2 && !keep_at_l2(verdicts->flow_hash[i])) {
          keep = false;
          ++stats_.l2_packets;
        }
      } else if (level >= 3) {
        // L3: per-flow 1-in-N packet sampling, keyed by flow slot so
        // the decision sequence is shard-count-independent.
        const std::uint32_t slot = verdicts->slot[i];
        if (slot >= flow_counters_.size()) flow_counters_.resize(slot + 1, 0);
        if (flow_counters_[slot]++ % config_.l3_keep_one_in != 0) {
          keep = false;
          ++stats_.l3_packets;
        }
      }
    }
    if (!keep) {
      stats_.shed_bytes += run[i].data.size();
      continue;
    }
    out_run.push_back(run[i]);
    out_verdicts.verdicts.push_back(v);
    out_verdicts.flags.push_back(flags);
    out_verdicts.shard.push_back(verdicts->shard[i]);
    out_verdicts.slot.push_back(verdicts->slot[i]);
    out_verdicts.flow_hash.push_back(verdicts->flow_hash[i]);
  }
  // Promotions already mutated the tier during classify(); carry them to
  // the dispatcher even if the admitting packet itself was sampled out.
  out_verdicts.promotions = verdicts->promotions;
  return true;
}

}  // namespace zpm::overload
