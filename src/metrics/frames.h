// Frame assembly and frame-rate estimation (paper §5.2).
//
// Method 1 ("delivered" frame rate): assemble frames from RTP packets,
// declare completion, and count completions inside a sliding one-second
// window. For video, completion uses the packets-in-frame field Zoom
// carries in its media encapsulation; for streams without that field
// (screen share, audio) completion falls back to the RTP marker bit plus
// sequence continuity.
//
// Method 2 ("encoder" frame rate): clock / ΔRTP-timestamp between
// consecutive frames. The two diverge under congestion — that divergence
// is itself the signal (§5.2).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "metrics/records.h"
#include "util/serial.h"
#include "util/time.h"

namespace zpm::metrics {

/// Completion strategy for FrameAssembler.
enum class CompletionMode : std::uint8_t {
  /// Frame is complete once `expected_packets` distinct sequence numbers
  /// with the frame's timestamp have arrived (video: Zoom media encap
  /// carries the count — §4.2, Table 1).
  ExpectedCount,
  /// Frame is complete when its marker-bit packet has arrived and no
  /// sequence gap exists inside the frame (screen share / audio).
  MarkerBit,
};

/// Assembles RTP packets into frames and reports completed frames in
/// completion order via a callback.
class FrameAssembler {
 public:
  using FrameCallback = std::function<void(const FrameRecord&)>;

  FrameAssembler(CompletionMode mode, std::uint32_t clock_hz, FrameCallback on_frame);

  /// Feeds one RTP media packet of the stream's main sub-stream.
  /// `expected_packets` comes from the Zoom media encapsulation and is
  /// only meaningful in ExpectedCount mode (0 = unknown).
  void on_packet(util::Timestamp arrival, std::uint16_t seq, std::uint32_t rtp_ts,
                 bool marker, std::uint32_t payload_bytes,
                 std::uint8_t expected_packets);

  /// Abandons partial frames older than `age` relative to `now` (handles
  /// frames whose tail was lost and never retransmitted successfully).
  void expire_stale(util::Timestamp now, util::Duration age = util::Duration::millis(5000));

  [[nodiscard]] std::uint64_t frames_completed() const { return frames_completed_; }
  [[nodiscard]] std::size_t partial_frames() const { return partial_.size(); }

 private:
  struct Partial {
    std::set<std::int64_t> seqs;  // extended sequence numbers seen
    util::Timestamp first_packet;
    util::Timestamp last_packet;
    std::uint32_t payload_bytes = 0;
    std::uint8_t expected = 0;
    bool marker_seen = false;
    std::int64_t marker_seq = 0;
    std::int64_t min_seq = 0;
    std::int64_t max_seq = 0;
  };

  void try_complete(std::int64_t ext_ts, Partial& p);
  void finish(std::int64_t ext_ts, const Partial& p);

  CompletionMode mode_;
  std::uint32_t clock_hz_;
  FrameCallback on_frame_;
  std::map<std::int64_t, Partial> partial_;  // keyed by extended RTP timestamp
  util::SerialExtender<std::uint32_t> ts_extender_;
  util::SerialExtender<std::uint16_t> seq_extender_;
  std::optional<std::int64_t> last_completed_ts_;
  std::uint64_t frames_completed_ = 0;
};

/// Sliding one-second window over frame completions: the paper's
/// method-1 frame rate ("the current frame rate is then simply the
/// occupancy of this buffer").
class FrameRateWindow {
 public:
  explicit FrameRateWindow(util::Duration window = util::Duration::millis(1000))
      : window_(window) {}

  void on_frame_completed(util::Timestamp when) {
    completions_.push_back(when);
    evict(when);
  }

  /// Frames completed in the window ending at `now`.
  [[nodiscard]] std::uint32_t rate(util::Timestamp now) {
    evict(now);
    return static_cast<std::uint32_t>(completions_.size());
  }

 private:
  void evict(util::Timestamp now) {
    while (!completions_.empty() && completions_.front() <= now - window_)
      completions_.pop_front();
  }
  util::Duration window_;
  std::deque<util::Timestamp> completions_;
};

}  // namespace zpm::metrics
