#include "metrics/jitter.h"

#include <cmath>

namespace zpm::metrics {

void JitterEstimator::add(util::Timestamp arrival, std::uint32_t rtp_ts) {
  std::int64_t ext_ts = ts_extender_.extend(rtp_ts);
  ++samples_;
  if (!have_prev_) {
    have_prev_ = true;
    prev_arrival_ = arrival;
    prev_ext_ts_ = ext_ts;
    return;
  }
  if (clock_hz_ == 0) return;
  // Express both deltas in RTP clock units.
  double arrival_delta_units = (arrival - prev_arrival_).sec() * static_cast<double>(clock_hz_);
  double rtp_delta_units = static_cast<double>(ext_ts - prev_ext_ts_);
  double d = std::abs(arrival_delta_units - rtp_delta_units);
  // RFC 3550: J(i) = J(i-1) + (|D(i-1,i)| - J(i-1)) / 16.
  jitter_ += (d - jitter_) / 16.0;
  last_d_ms_ = d * 1000.0 / static_cast<double>(clock_hz_);
  prev_arrival_ = arrival;
  prev_ext_ts_ = ext_ts;
}

void NaiveInterarrivalJitter::add(util::Timestamp arrival) {
  if (!have_prev_) {
    have_prev_ = true;
    prev_ = arrival;
    return;
  }
  double x = (arrival - prev_).ms();
  prev_ = arrival;
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double NaiveInterarrivalJitter::jitter_ms() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_));
}

}  // namespace zpm::metrics
