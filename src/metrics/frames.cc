#include "metrics/frames.h"

#include <vector>

namespace zpm::metrics {

FrameAssembler::FrameAssembler(CompletionMode mode, std::uint32_t clock_hz,
                               FrameCallback on_frame)
    : mode_(mode), clock_hz_(clock_hz), on_frame_(std::move(on_frame)) {}

void FrameAssembler::on_packet(util::Timestamp arrival, std::uint16_t seq,
                               std::uint32_t rtp_ts, bool marker,
                               std::uint32_t payload_bytes,
                               std::uint8_t expected_packets) {
  std::int64_t ext_ts = ts_extender_.extend(rtp_ts);
  std::int64_t ext_seq = seq_extender_.extend(seq);

  // A packet for an already-completed frame is a retransmission
  // duplicate arriving after completion; nothing to assemble.
  if (last_completed_ts_ && ext_ts <= *last_completed_ts_ &&
      partial_.find(ext_ts) == partial_.end()) {
    return;
  }

  auto [it, inserted] = partial_.try_emplace(ext_ts);
  Partial& p = it->second;
  if (inserted) {
    p.first_packet = arrival;
    p.min_seq = p.max_seq = ext_seq;
  }
  // Duplicate within a partial frame (retransmission that raced the
  // original): count once.
  if (!p.seqs.insert(ext_seq).second) return;

  p.last_packet = arrival;
  p.payload_bytes += payload_bytes;
  p.expected = expected_packets != 0 ? expected_packets : p.expected;
  p.min_seq = std::min(p.min_seq, ext_seq);
  p.max_seq = std::max(p.max_seq, ext_seq);
  if (marker) {
    p.marker_seen = true;
    p.marker_seq = ext_seq;
  }
  try_complete(ext_ts, p);
}

void FrameAssembler::try_complete(std::int64_t ext_ts, Partial& p) {
  bool complete = false;
  switch (mode_) {
    case CompletionMode::ExpectedCount:
      // "We consider a frame complete when we see N distinct (per
      // sequence number) RTP packets with the same RTP timestamp" (§5.2).
      complete = p.expected != 0 && p.seqs.size() >= p.expected;
      break;
    case CompletionMode::MarkerBit:
      complete = p.marker_seen && p.max_seq == p.marker_seq &&
                 static_cast<std::int64_t>(p.seqs.size()) == p.max_seq - p.min_seq + 1;
      break;
  }
  if (complete) finish(ext_ts, p);
}

void FrameAssembler::finish(std::int64_t ext_ts, const Partial& p) {
  FrameRecord rec;
  rec.rtp_timestamp = ext_ts;
  rec.first_packet = p.first_packet;
  rec.completed = p.last_packet;
  rec.packets = static_cast<std::uint32_t>(p.seqs.size());
  rec.payload_bytes = p.payload_bytes;
  rec.saw_marker = p.marker_seen;
  if (last_completed_ts_ && clock_hz_ > 0) {
    std::int64_t delta = ext_ts - *last_completed_ts_;
    if (delta > 0) {
      // Packetization time = ΔRTP / clock; encoder fps = clock / ΔRTP.
      rec.packetization_time = util::Duration::micros(delta * 1'000'000 / clock_hz_);
      rec.encoder_fps = static_cast<double>(clock_hz_) / static_cast<double>(delta);
    }
  }
  if (!last_completed_ts_ || ext_ts > *last_completed_ts_) last_completed_ts_ = ext_ts;
  ++frames_completed_;
  partial_.erase(ext_ts);
  if (on_frame_) on_frame_(rec);
}

void FrameAssembler::expire_stale(util::Timestamp now, util::Duration age) {
  std::vector<std::int64_t> stale;
  for (const auto& [ts, p] : partial_)
    if (now - p.last_packet > age) stale.push_back(ts);
  for (std::int64_t ts : stale) partial_.erase(ts);
}

}  // namespace zpm::metrics
