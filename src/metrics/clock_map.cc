#include "metrics/clock_map.h"

namespace zpm::metrics {

void RtcpClockMapper::on_sender_report(util::Timestamp ntp_wall,
                                       std::uint32_t rtp_ts) {
  std::int64_t ext = extender_.extend(rtp_ts);
  if (reports_ == 0) {
    first_wall_ = ntp_wall;
    first_ext_ts_ = ext;
  }
  // Ignore out-of-order SRs (they would wreck the anchor).
  if (reports_ == 0 || ntp_wall > last_wall_) {
    last_wall_ = ntp_wall;
    last_ext_ts_ = ext;
  }
  ++reports_;
}

std::optional<double> RtcpClockMapper::estimated_clock_hz() const {
  if (reports_ < 2) return std::nullopt;
  double wall_s = (last_wall_ - first_wall_).sec();
  if (wall_s < 0.1) return std::nullopt;
  return static_cast<double>(last_ext_ts_ - first_ext_ts_) / wall_s;
}

std::optional<util::Timestamp> RtcpClockMapper::to_wall(
    std::uint32_t rtp_ts, std::optional<double> clock_hz) const {
  if (reports_ == 0) return std::nullopt;
  double hz = 0;
  if (clock_hz) {
    hz = *clock_hz;
  } else if (auto est = estimated_clock_hz()) {
    hz = *est;
  } else {
    return std::nullopt;
  }
  if (hz <= 0) return std::nullopt;
  // Extend relative to the last anchor without mutating state: place the
  // query on the cycle closest to the anchor.
  std::int64_t delta =
      util::serial_diff(static_cast<std::uint32_t>(last_ext_ts_), rtp_ts);
  double offset_s = static_cast<double>(delta) / hz;
  return last_wall_ + util::Duration::seconds(offset_s);
}

void ClockRateEstimator::add(util::Timestamp arrival, std::uint32_t rtp_ts) {
  std::int64_t ext = extender_.extend(rtp_ts);
  if (samples_ == 0) {
    first_arrival_ = arrival;
    first_ext_ts_ = ext;
    last_arrival_ = arrival;
    last_ext_ts_ = ext;
  } else if (arrival > last_arrival_ && ext > last_ext_ts_) {
    last_arrival_ = arrival;
    last_ext_ts_ = ext;
  }
  ++samples_;
}

std::optional<double> ClockRateEstimator::raw_hz() const {
  if (samples_ < 2) return std::nullopt;
  double wall_s = (last_arrival_ - first_arrival_).sec();
  if (wall_s < 0.1) return std::nullopt;
  return static_cast<double>(last_ext_ts_ - first_ext_ts_) / wall_s;
}

std::optional<double> ClockRateEstimator::snapped_hz(double tolerance) const {
  auto raw = raw_hz();
  if (!raw) return std::nullopt;
  for (double standard : kStandardClockRates) {
    if (std::abs(*raw - standard) / standard <= tolerance) return standard;
  }
  return raw;
}

}  // namespace zpm::metrics
