#include "metrics/latency.h"

namespace zpm::metrics {

void RtpCopyMatcher::on_egress(util::Timestamp t, std::uint32_t ssrc,
                               std::uint16_t seq, std::uint32_t rtp_ts) {
  std::uint64_t k = key(ssrc, seq);
  // Overwrite on collision: the newest egress is the one a future copy
  // will correspond to (sequence numbers wrap).
  pending_[k] = Egress{t, rtp_ts};
  order_.emplace_back(t, k);
  evict(t);
}

std::optional<RttSample> RtpCopyMatcher::on_ingress(util::Timestamp t,
                                                    std::uint32_t ssrc,
                                                    std::uint16_t seq,
                                                    std::uint32_t rtp_ts) {
  evict(t);
  auto it = pending_.find(key(ssrc, seq));
  if (it == pending_.end()) return std::nullopt;
  // Fourth feature: the RTP timestamp must match too (the SFU never
  // rewrites it). Guards against SSRC collisions across meetings.
  if (it->second.rtp_ts != rtp_ts) return std::nullopt;
  RttSample s{t, t - it->second.t};
  if (s.rtt < util::Duration::micros(0)) return std::nullopt;
  pending_.erase(it);
  samples_.push_back(s);
  return s;
}

void RtpCopyMatcher::evict(util::Timestamp now) {
  util::Timestamp cutoff = now - window_;
  while (!order_.empty() && order_.front().first < cutoff) {
    auto [t, k] = order_.front();
    order_.pop_front();
    auto it = pending_.find(k);
    // Only erase if the stored record is still the one that aged out
    // (it may have been overwritten by a newer egress with the same key).
    if (it != pending_.end() && it->second.t == t) pending_.erase(it);
  }
}

util::Duration RtpCopyMatcher::mean_rtt() const {
  if (samples_.empty()) return util::Duration::micros(0);
  std::int64_t total = 0;
  for (const auto& s : samples_) total += s.rtt.us();
  return util::Duration::micros(total / static_cast<std::int64_t>(samples_.size()));
}

void TcpRttEstimator::record_send(Direction& dir, util::Timestamp t,
                                  std::uint32_t seq, std::size_t len,
                                  bool syn_or_fin) {
  // SYN/FIN consume one sequence number and are ack-eligible.
  std::uint32_t consumed = static_cast<std::uint32_t>(len) + (syn_or_fin ? 1u : 0u);
  if (consumed == 0) return;  // pure ack: nothing to time
  std::uint32_t end_seq = seq + consumed;
  if (dir.max_end_seq && !util::serial_less(*dir.max_end_seq, end_seq)) {
    // Not beyond the highest byte sent: a retransmission. Mark any
    // overlapping in-flight record so its eventual ack is not sampled
    // (Karn's algorithm).
    for (auto& s : dir.inflight)
      if (util::serial_less(seq, s.end_seq) || s.end_seq == end_seq)
        s.retransmitted = true;
    return;
  }
  dir.max_end_seq = end_seq;
  dir.inflight.push_back(Sent{end_seq, t, false});
  // Bound state for long-lived connections.
  while (dir.inflight.size() > 4096) dir.inflight.pop_front();
}

void TcpRttEstimator::record_ack(Direction& dir, util::Timestamp t,
                                 std::uint32_t ack, std::vector<RttSample>& out) {
  std::optional<Sent> best;
  while (!dir.inflight.empty() &&
         util::serial_less_equal(dir.inflight.front().end_seq, ack)) {
    best = dir.inflight.front();
    dir.inflight.pop_front();
  }
  if (best && !best->retransmitted) {
    util::Duration rtt = t - best->t;
    if (rtt >= util::Duration::micros(0)) out.push_back(RttSample{t, rtt});
  }
}

void TcpRttEstimator::on_packet(util::Timestamp t, const net::TcpHeader& tcp,
                                std::size_t payload_len, bool outbound) {
  bool syn_or_fin = tcp.has(net::kTcpSyn) || tcp.has(net::kTcpFin);
  if (outbound) {
    record_send(out_dir_, t, tcp.seq, payload_len, syn_or_fin);
    if (tcp.has(net::kTcpAck)) record_ack(in_dir_, t, tcp.ack, client_rtt_);
  } else {
    record_send(in_dir_, t, tcp.seq, payload_len, syn_or_fin);
    if (tcp.has(net::kTcpAck)) record_ack(out_dir_, t, tcp.ack, server_rtt_);
  }
}

}  // namespace zpm::metrics
