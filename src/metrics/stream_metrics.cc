#include "metrics/stream_metrics.h"

#include "zoom/classify.h"

namespace zpm::metrics {

StreamMetricsConfig default_config(zoom::MediaKind kind) {
  StreamMetricsConfig c;
  switch (kind) {
    case zoom::MediaKind::Video:
    case zoom::MediaKind::ScreenShare:
      c.clock_hz = zoom::kVideoClockHz;
      break;
    case zoom::MediaKind::Audio:
      c.clock_hz = zoom::kAudioClockHz;
      break;
  }
  return c;
}

StreamMetrics::StreamMetrics(zoom::MediaKind kind, std::uint32_t ssrc,
                             StreamMetricsConfig config)
    : kind_(kind),
      ssrc_(ssrc),
      config_(config),
      assembler_(kind == zoom::MediaKind::Video ? CompletionMode::ExpectedCount
                                                : CompletionMode::MarkerBit,
                 config.clock_hz,
                 [this](const FrameRecord& f) { on_frame(f); }),
      frame_jitter_(config.clock_hz) {}

bool StreamMetrics::is_main_substream(std::uint8_t payload_type) const {
  // FEC sub-streams (PT 110) share timestamps with the main sub-stream
  // but use their own sequence space (§4.2.3); they must not enter frame
  // assembly or frame-level jitter.
  return payload_type != zoom::pt::kFec;
}

void StreamMetrics::advance_to(util::Timestamp arrival) {
  std::int64_t bin = arrival.us() / 1'000'000;
  if (!cur_bin_) {
    cur_bin_ = bin;
    cur_ = StreamSecond{};
    cur_.bin_start = util::Timestamp::from_micros(bin * 1'000'000);
    cur_.kind = kind_;
    cur_.ssrc = ssrc_;
    return;
  }
  while (*cur_bin_ < bin) {
    flush_bin();
    ++*cur_bin_;
    cur_ = StreamSecond{};
    cur_.bin_start = util::Timestamp::from_micros(*cur_bin_ * 1'000'000);
    cur_.kind = kind_;
    cur_.ssrc = ssrc_;
  }
}

void StreamMetrics::flush_bin() {
  // Jitter: the estimator's value at the end of the bin.
  if (frame_jitter_.has_estimate()) cur_.jitter_ms = frame_jitter_.jitter_ms();
  if (cur_.frames_completed > 0)
    cur_.avg_frame_bytes = bin_frame_bytes_sum_ / cur_.frames_completed;
  cur_.encoder_fps = bin_encoder_fps_;
  cur_.frame_rate_fps = cur_.frames_completed;
  seconds_.push_back(cur_);
  bin_frame_bytes_sum_ = 0.0;
  bin_encoder_fps_.reset();
}

void StreamMetrics::on_frame(const FrameRecord& frame) {
  // Frames complete in arrival order; attribute to the current bin.
  if (config_.keep_frames &&
      frame_counter_++ % std::max<std::uint32_t>(config_.frame_sample_every, 1) == 0)
    frames_.push_back(frame);
  stall_.on_frame(frame);
  ++cur_.frames_completed;
  bin_frame_bytes_sum_ += frame.payload_bytes;
  if (frame.encoder_fps) bin_encoder_fps_ = frame.encoder_fps;
  // Frame-level jitter: one observation per frame, timed at the frame's
  // first packet (the "arrival" of the frame); frames completing out of
  // media order (late retransmission-repaired frames) are skipped.
  // Offload-covered packets skip it wholesale — the data plane's
  // histogram registers hold the jitter signal for those streams.
  if (packet_covered_) return;
  if (!last_jitter_ts_ || frame.rtp_timestamp > *last_jitter_ts_) {
    last_jitter_ts_ = frame.rtp_timestamp;
    frame_jitter_.add(frame.first_packet,
                      static_cast<std::uint32_t>(frame.rtp_timestamp & 0xffffffff));
  }
}

void StreamMetrics::on_media_packet(util::Timestamp arrival,
                                    const zoom::MediaEncap& encap,
                                    const proto::RtpHeader& rtp,
                                    std::size_t rtp_payload_bytes,
                                    std::size_t udp_payload_bytes, bool covered) {
  packet_covered_ = covered;
  if (first_seen_.is_zero()) first_seen_ = arrival;
  last_seen_ = arrival;
  advance_to(arrival);

  ++media_packets_;
  media_payload_bytes_ += rtp_payload_bytes;
  ++cur_.packets;
  cur_.transport_bytes += udp_payload_bytes;
  cur_.media_bytes += rtp_payload_bytes;
  // Talk-activity signal (§4.2.3): speaking-mode vs silent-mode audio.
  if (kind_ == zoom::MediaKind::Audio) {
    if (rtp.payload_type == zoom::pt::kAudioSpeaking) {
      ++cur_.talk_packets;
      ++talk_packets_total_;
    } else if (rtp.payload_type == zoom::pt::kAudioSilent) {
      ++cur_.silent_packets;
    }
  }

  auto [it, _] = seq_trackers_.try_emplace(rtp.payload_type, config_.seq_window);
  const auto& counters_before = it->second.counters();
  std::uint64_t dups_before = counters_before.duplicates;
  std::uint64_t reord_before = counters_before.reordered;
  std::uint64_t gaps_before = counters_before.gap_packets;
  it->second.on_packet(arrival, rtp.sequence);
  const auto& counters_after = it->second.counters();
  cur_.duplicates += static_cast<std::uint32_t>(counters_after.duplicates - dups_before);
  cur_.reordered += static_cast<std::uint32_t>(counters_after.reordered - reord_before);
  cur_.gap_packets += static_cast<std::uint32_t>(counters_after.gap_packets - gaps_before);

  if (is_main_substream(rtp.payload_type)) {
    // Passive clock recovery uses the main sub-stream's timestamps.
    // Covered packets skip the estimators (clock recovery, packet-level
    // jitter): that per-packet work is exactly what the data-plane
    // offload absorbed. Frame counting and assembly stay host-side —
    // they feed records the switch does not keep.
    if (!covered) clock_estimator_.add(arrival, rtp.timestamp);
    if (kind_ == zoom::MediaKind::Audio) {
      // Audio frames are single packets; count frames directly and feed
      // packet-level jitter (each packet carries a fresh timestamp).
      // Retransmissions / reordered packets carry a non-advancing
      // timestamp and are excluded from the jitter computation.
      ++cur_.frames_completed;
      bin_frame_bytes_sum_ += static_cast<double>(rtp_payload_bytes);
      if (!covered) {
        std::int64_t ext = jitter_ts_extender_.extend(rtp.timestamp);
        if (!last_jitter_ts_ || ext > *last_jitter_ts_) {
          last_jitter_ts_ = ext;
          frame_jitter_.add(arrival, rtp.timestamp);
        }
      }
    } else {
      assembler_.on_packet(arrival, rtp.sequence, rtp.timestamp, rtp.marker,
                           static_cast<std::uint32_t>(rtp_payload_bytes),
                           encap.is_video() ? encap.packets_in_frame : 0);
      assembler_.expire_stale(arrival);
    }
  }
}

void StreamMetrics::on_rtcp_packet(util::Timestamp arrival,
                                   std::size_t udp_payload_bytes) {
  if (first_seen_.is_zero()) first_seen_ = arrival;
  last_seen_ = arrival;
  advance_to(arrival);
  cur_.transport_bytes += udp_payload_bytes;
}

void StreamMetrics::on_sender_report(util::Timestamp ntp_wall, std::uint32_t rtp_ts,
                                     std::uint32_t sender_packet_count) {
  clock_mapper_.on_sender_report(ntp_wall, rtp_ts);
  std::uint64_t observed = 0;
  for (const auto& [pt, tracker] : seq_trackers_) observed += tracker.counters().unique;
  SrSnapshot snap{sender_packet_count, observed};
  if (!first_sr_) first_sr_ = snap;
  // Sender counters are monotone; ignore reordered SRs.
  if (!last_sr_ || sender_packet_count >= last_sr_->sender_count) last_sr_ = snap;
}

std::optional<std::uint64_t> StreamMetrics::sr_expected_packets() const {
  if (!first_sr_ || !last_sr_ || last_sr_->sender_count <= first_sr_->sender_count)
    return std::nullopt;
  return last_sr_->sender_count - first_sr_->sender_count;
}

std::optional<std::uint64_t> StreamMetrics::upstream_loss_estimate() const {
  auto expected = sr_expected_packets();
  if (!expected) return std::nullopt;
  std::uint64_t observed = last_sr_->observed_unique - first_sr_->observed_unique;
  return observed >= *expected ? 0 : *expected - observed;
}

void StreamMetrics::on_rtt_sample(const RttSample& sample) {
  rtt_samples_.push_back(sample);
  // Binning is deferred to finish() so each second's latency is a pure
  // function of the sample set, independent of injection order. Samples
  // can arrive out of packet order (hostile traces regress timestamps,
  // and the sharded pipeline's merge step injects every match after all
  // packets were processed), so inline accumulation would attribute the
  // same set differently in the serial and sharded engines.
  auto& [sum, count] = late_latency_[sample.when.us() / 1'000'000];
  sum += sample.rtt.ms();
  ++count;
}

void StreamMetrics::finish() {
  if (cur_bin_) flush_bin();
  cur_bin_.reset();
  if (!late_latency_.empty() && !seconds_.empty()) {
    // Per-second records are contiguous from the first bin on. Samples
    // whose bin falls outside the stream's records (possible only on
    // traces with regressed or mangled timestamps) stay in the overall
    // mean but get no per-second row.
    std::int64_t first_bin = seconds_.front().bin_start.us() / 1'000'000;
    for (const auto& [bin, acc] : late_latency_) {
      std::int64_t idx = bin - first_bin;
      if (idx < 0 || idx >= static_cast<std::int64_t>(seconds_.size())) continue;
      seconds_[static_cast<std::size_t>(idx)].latency_ms =
          acc.first / acc.second;
    }
    late_latency_.clear();
  }
  for (auto& [pt, tracker] : seq_trackers_) tracker.finish();
}

LossCounters StreamMetrics::total_loss() const {
  LossCounters total;
  for (const auto& [pt, tracker] : seq_trackers_) {
    const auto& c = tracker.counters();
    total.received += c.received;
    total.unique += c.unique;
    total.duplicates += c.duplicates;
    total.reordered += c.reordered;
    total.gap_packets += c.gap_packets;
    total.suspected_retransmissions += c.suspected_retransmissions;
  }
  return total;
}

std::optional<double> StreamMetrics::jitter_ms() const {
  if (!frame_jitter_.has_estimate()) return std::nullopt;
  return frame_jitter_.jitter_ms();
}

std::optional<double> StreamMetrics::mean_latency_ms() const {
  if (rtt_samples_.empty()) return std::nullopt;
  double sum = 0.0;
  for (const auto& s : rtt_samples_) sum += s.rtt.ms();
  return sum / static_cast<double>(rtt_samples_.size());
}

}  // namespace zpm::metrics
