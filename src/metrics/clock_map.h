// RTP media-clock <-> wall-clock mapping.
//
// Two pieces the paper describes:
//  * RTCP sender reports pair an NTP wall-clock timestamp with the RTP
//    timestamp of the same instant (§4.2.3: "periodically synchronize
//    wall-clock time with RTP timestamps"); two or more SRs let a
//    passive observer both recover the stream's sampling rate and map
//    any RTP timestamp to wall time — this is how receivers sync audio
//    with video.
//  * §5.2 determines the 90 kHz video clock "through a simple parameter
//    sweep"; estimate_clock_hz implements that recovery from passive
//    observations alone (RTP timestamp progress vs. wall time), with a
//    snap to the standard RTP rates.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <optional>

#include "util/serial.h"
#include "util/time.h"

namespace zpm::metrics {

/// Maps RTP timestamps to wall-clock time using RTCP sender reports.
class RtcpClockMapper {
 public:
  /// Feeds one sender report (NTP already converted to a Unix-epoch
  /// Timestamp, plus the RTP timestamp sampled at the same instant).
  void on_sender_report(util::Timestamp ntp_wall, std::uint32_t rtp_ts);

  [[nodiscard]] std::size_t reports() const { return reports_; }

  /// Sampling rate implied by the first and latest SR (Hz); nullopt
  /// with fewer than two reports or degenerate spacing.
  [[nodiscard]] std::optional<double> estimated_clock_hz() const;

  /// Maps an RTP timestamp to wall-clock time using the latest SR as
  /// the anchor and the estimated (or supplied) clock rate.
  [[nodiscard]] std::optional<util::Timestamp> to_wall(
      std::uint32_t rtp_ts, std::optional<double> clock_hz = std::nullopt) const;

 private:
  util::SerialExtender<std::uint32_t> extender_;
  std::size_t reports_ = 0;
  util::Timestamp first_wall_, last_wall_;
  std::int64_t first_ext_ts_ = 0;
  std::int64_t last_ext_ts_ = 0;
};

/// Standard RTP clock rates to snap estimates onto (RFC 3551 audio
/// rates + the 90 kHz video rate).
inline constexpr std::array<double, 7> kStandardClockRates = {
    8'000, 16'000, 24'000, 32'000, 44'100, 48'000, 90'000};

/// Estimates a stream's sampling clock from passive observations: total
/// RTP-timestamp progress divided by total wall time (the §5.2 sweep in
/// closed form). Feed (arrival, rtp_ts) pairs via the accumulator.
class ClockRateEstimator {
 public:
  void add(util::Timestamp arrival, std::uint32_t rtp_ts);
  [[nodiscard]] std::size_t samples() const { return samples_; }
  /// Raw ratio estimate (Hz); nullopt with < 2 samples or < 100 ms span.
  [[nodiscard]] std::optional<double> raw_hz() const;
  /// Raw estimate snapped to the nearest standard rate when within
  /// `tolerance` (fractional); otherwise returns the raw value.
  [[nodiscard]] std::optional<double> snapped_hz(double tolerance = 0.05) const;

 private:
  util::SerialExtender<std::uint32_t> extender_;
  std::size_t samples_ = 0;
  util::Timestamp first_arrival_, last_arrival_;
  std::int64_t first_ext_ts_ = 0;
  std::int64_t last_ext_ts_ = 0;
};

}  // namespace zpm::metrics
