// Metric record types shared between the metric engines, the analyzer
// and the experiment drivers.
#pragma once

#include <cstdint>
#include <optional>

#include "util/time.h"
#include "zoom/constants.h"

namespace zpm::metrics {

/// One completely delivered media frame (paper §5.2, §5.5).
struct FrameRecord {
  std::int64_t rtp_timestamp = 0;       // extended (unwrapped) RTP timestamp
  util::Timestamp first_packet;         // arrival of the frame's first packet
  util::Timestamp completed;            // arrival of the frame's last packet
  std::uint32_t packets = 0;
  std::uint32_t payload_bytes = 0;      // sum of RTP payload sizes
  bool saw_marker = false;
  /// Encoder packetization time derived from the RTP timestamp increment
  /// to the previous frame (§5.2 method 2); unset for the first frame.
  std::optional<util::Duration> packetization_time;
  /// Encoder ("intended") frame rate = clock / ΔRTP (§5.2 method 2).
  std::optional<double> encoder_fps;

  /// Delivery time from first to last packet (§5.5 "frame delay").
  [[nodiscard]] util::Duration delay() const { return completed - first_packet; }
};

/// Per-second per-stream metric sample — the unit the campus analysis
/// (§6.2) bins everything into ("roughly 33 million data points").
struct StreamSecond {
  util::Timestamp bin_start;
  zoom::MediaKind kind = zoom::MediaKind::Video;
  std::uint32_t ssrc = 0;

  std::uint32_t packets = 0;
  std::uint64_t transport_bytes = 0;  // UDP payload bytes (incl. Zoom headers)
  std::uint64_t media_bytes = 0;      // RTP payload bytes (actual media)
  std::uint32_t frames_completed = 0;
  double frame_rate_fps = 0.0;           // method 1, end-of-bin value
  std::optional<double> encoder_fps;     // method 2, last frame in bin
  std::optional<double> avg_frame_bytes; // mean completed-frame size
  std::optional<double> jitter_ms;       // RFC 3550 frame-level jitter
  std::optional<double> latency_ms;      // mean RTT sample in bin (if any)
  std::uint32_t duplicates = 0;
  std::uint32_t reordered = 0;
  std::uint32_t gap_packets = 0;  // sequence holes (lost or late beyond window)
  /// Audio only: packets in speaking mode (PT 112) vs. silent mode
  /// (PT 99) this second — the §4.2.3 talk-activity signal ("quantify
  /// how much and when a participant actually talks").
  std::uint32_t talk_packets = 0;
  std::uint32_t silent_packets = 0;

  /// Audio: true when the participant was audibly talking this second.
  [[nodiscard]] bool talking() const { return talk_packets > silent_packets; }

  [[nodiscard]] double media_bitrate_bps() const {
    return static_cast<double>(media_bytes) * 8.0;
  }
  [[nodiscard]] double transport_bitrate_bps() const {
    return static_cast<double>(transport_bytes) * 8.0;
  }
};

}  // namespace zpm::metrics
