// Per-media-stream metric engine: consumes dissected Zoom media packets
// for a single (SSRC, media kind) stream and produces the per-second
// records (§6.2) plus stream-lifetime aggregates.
//
// Combines: bit-rate accounting (§5.1), frame assembly + both frame-rate
// methods (§5.2), frame sizes and frame delay (§5.2/§5.5), RFC 3550
// frame-level jitter (§5.4), per-sub-stream sequence tracking (§5.5) and
// RTT samples injected by the meeting-level matcher (§5.3).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "metrics/clock_map.h"
#include "metrics/frames.h"
#include "metrics/jitter.h"
#include "metrics/latency.h"
#include "metrics/loss.h"
#include "metrics/records.h"
#include "metrics/stall.h"
#include "proto/rtp.h"
#include "zoom/encap.h"

namespace zpm::metrics {

/// Configuration for a StreamMetrics engine.
struct StreamMetricsConfig {
  /// RTP clock for timestamp→time conversion. Video is known to be
  /// 90 kHz (§5.2); audio defaults to 48 kHz.
  std::uint32_t clock_hz = zoom::kVideoClockHz;
  /// Keep FrameRecords (needed for frame-size CDFs and the
  /// packetization analysis; disable for very long traces if memory
  /// matters).
  bool keep_frames = true;
  /// Retain only every Nth frame record (memory bound for campus-scale
  /// runs; 1 = keep all). Counting still covers every frame.
  std::uint32_t frame_sample_every = 1;
  /// Reorder window for sequence/loss tracking.
  std::size_t seq_window = 512;
};

/// Sensible defaults per media kind.
StreamMetricsConfig default_config(zoom::MediaKind kind);

/// Metric engine for one media stream (one SSRC within one meeting leg).
class StreamMetrics {
 public:
  StreamMetrics(zoom::MediaKind kind, std::uint32_t ssrc, StreamMetricsConfig config);

  /// Feeds one dissected RTP media packet belonging to this stream.
  /// `covered` marks a packet the data-plane offload already absorbed:
  /// counting, loss/sequence tracking, frame assembly and talk activity
  /// proceed unchanged, but the per-packet estimator work the switch
  /// registers now hold — clock-rate recovery and frame-level jitter —
  /// is skipped (those fields simply stay empty for covered streams).
  void on_media_packet(util::Timestamp arrival, const zoom::MediaEncap& encap,
                       const proto::RtpHeader& rtp, std::size_t rtp_payload_bytes,
                       std::size_t udp_payload_bytes, bool covered = false);

  /// Feeds an RTCP packet of the stream (counts toward transport bytes).
  void on_rtcp_packet(util::Timestamp arrival, std::size_t udp_payload_bytes);

  /// Feeds a parsed RTCP sender report: the NTP/RTP timestamp pair
  /// enables the media-clock mapping of §4.2.3, and the sender's packet
  /// counter is ground truth for upstream-loss estimation (§5.5 calls
  /// sequence-number-only loss inference fundamentally ambiguous; the
  /// SR counter resolves the upstream half).
  void on_sender_report(util::Timestamp ntp_wall, std::uint32_t rtp_ts,
                        std::uint32_t sender_packet_count = 0);

  /// Packets the sender reports having sent between the first and last
  /// SR observed; nullopt with fewer than two SRs.
  [[nodiscard]] std::optional<std::uint64_t> sr_expected_packets() const;
  /// Packets that never reached the monitor although the sender sent
  /// them (SR delta minus unique packets observed over the same span);
  /// nullopt with fewer than two SRs.
  [[nodiscard]] std::optional<std::uint64_t> upstream_loss_estimate() const;

  /// Injects an RTT sample attributed to this stream (from the
  /// meeting-level RtpCopyMatcher or the TCP proxy).
  void on_rtt_sample(const RttSample& sample);

  /// Flushes the trailing partial second and finalizes loss accounting.
  void finish();

  [[nodiscard]] zoom::MediaKind kind() const { return kind_; }
  [[nodiscard]] std::uint32_t ssrc() const { return ssrc_; }
  [[nodiscard]] const std::vector<StreamSecond>& seconds() const { return seconds_; }
  [[nodiscard]] const std::vector<FrameRecord>& frames() const { return frames_; }
  /// Loss counters summed over all sub-streams.
  [[nodiscard]] LossCounters total_loss() const;
  /// Loss counters per RTP payload type (sub-stream).
  [[nodiscard]] const std::map<std::uint8_t, SeqTracker>& substreams() const {
    return seq_trackers_;
  }
  [[nodiscard]] std::uint64_t media_packets() const { return media_packets_; }
  [[nodiscard]] std::uint64_t media_payload_bytes() const { return media_payload_bytes_; }
  [[nodiscard]] util::Timestamp first_seen() const { return first_seen_; }
  [[nodiscard]] util::Timestamp last_seen() const { return last_seen_; }
  /// Current frame-level jitter estimate (ms), if enough samples.
  [[nodiscard]] std::optional<double> jitter_ms() const;
  /// Jitter-buffer stall prediction (§5.5 extension); meaningful for
  /// video / screen-share streams.
  [[nodiscard]] const StallPredictor& stall() const { return stall_; }
  /// SR-based RTP->wall clock mapping (populated from sender reports).
  [[nodiscard]] const RtcpClockMapper& clock_mapper() const { return clock_mapper_; }
  /// Seconds in which the participant was audibly talking (§4.2.3;
  /// audio streams only). Derived from the emitted per-second records.
  [[nodiscard]] std::size_t talk_seconds() const {
    std::size_t n = 0;
    for (const auto& sec : seconds_)
      if (sec.talking()) ++n;
    return n;
  }
  [[nodiscard]] std::uint64_t talk_packets_total() const { return talk_packets_total_; }
  /// Passive sampling-rate recovery (§5.2 parameter sweep, closed form).
  [[nodiscard]] const ClockRateEstimator& clock_estimate() const {
    return clock_estimator_;
  }
  /// Mean RTT over injected samples.
  [[nodiscard]] std::optional<double> mean_latency_ms() const;
  /// Every RTT sample injected via on_rtt_sample, in injection order.
  [[nodiscard]] const std::vector<RttSample>& rtt_samples() const {
    return rtt_samples_;
  }

 private:
  void advance_to(util::Timestamp arrival);
  void flush_bin();
  bool is_main_substream(std::uint8_t payload_type) const;
  void on_frame(const FrameRecord& frame);

  zoom::MediaKind kind_;
  std::uint32_t ssrc_;
  StreamMetricsConfig config_;

  FrameAssembler assembler_;
  JitterEstimator frame_jitter_;
  // Jitter observations must advance in media time: retransmitted /
  // out-of-order packets would otherwise register as spurious multi-
  // hundred-ms transit differences (§5.5 — retransmissions reuse the
  // original RTP timestamps).
  util::SerialExtender<std::uint32_t> jitter_ts_extender_;
  std::optional<std::int64_t> last_jitter_ts_;
  StallPredictor stall_;
  RtcpClockMapper clock_mapper_;
  // (sender packet counter, unique packets observed at that moment) at
  // the first and latest SR.
  struct SrSnapshot {
    std::uint32_t sender_count = 0;
    std::uint64_t observed_unique = 0;
  };
  std::optional<SrSnapshot> first_sr_, last_sr_;
  ClockRateEstimator clock_estimator_;
  std::map<std::uint8_t, SeqTracker> seq_trackers_;

  std::vector<StreamSecond> seconds_;
  std::vector<FrameRecord> frames_;

  // Current one-second bin under construction.
  std::optional<std::int64_t> cur_bin_;  // bin index = floor(arrival sec)
  StreamSecond cur_{};
  double bin_frame_bytes_sum_ = 0.0;
  std::optional<double> bin_encoder_fps_;

  /// True while processing an offload-covered packet (on_media_packet
  /// sets it; on_frame, called synchronously from frame assembly, reads
  /// it to skip the jitter observation for frames completed by one).
  bool packet_covered_ = false;
  std::uint64_t media_packets_ = 0;
  std::uint64_t media_payload_bytes_ = 0;
  std::uint64_t talk_packets_total_ = 0;
  std::uint32_t frame_counter_ = 0;
  util::Timestamp first_seen_;
  util::Timestamp last_seen_;
  std::vector<RttSample> rtt_samples_;
  // Per-second RTT sums/counts, folded into `seconds_` at finish() —
  // deferred so the result is independent of sample injection order.
  std::map<std::int64_t, std::pair<double, std::uint32_t>> late_latency_;
};

}  // namespace zpm::metrics
