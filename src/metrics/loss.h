// Sequence-number-based loss / duplicate / reordering accounting
// (paper §5.5).
//
// Zoom retransmits lost packets (up to twice) with the SAME RTP sequence
// number, so a vantage point downstream of the loss sees duplicates
// rather than holes, and a vantage point upstream sees nothing at all.
// The paper is explicit that loss inference from sequence numbers alone
// is fundamentally ambiguous; this tracker therefore reports the raw
// observable events (gaps, duplicates, reorderings) plus a
// suspected-retransmission count derived from the §5.5 delay heuristic
// (out-of-order arrival later than ~RTT + 100 ms).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "util/serial.h"
#include "util/time.h"

namespace zpm::metrics {

/// Counters exposed by SeqTracker.
struct LossCounters {
  std::uint64_t received = 0;     // packets fed in
  std::uint64_t unique = 0;       // distinct sequence numbers
  std::uint64_t duplicates = 0;   // same seq seen again
  std::uint64_t reordered = 0;    // arrived behind the highest seq seen
  std::uint64_t gap_packets = 0;  // holes that aged out of the window unfilled
  std::uint64_t suspected_retransmissions = 0;  // §5.5 delay heuristic hits
};

/// Per-sub-stream sequence tracker with a bounded reorder window.
class SeqTracker {
 public:
  /// `window` bounds how long a hole may stay open before it is counted
  /// as lost (reordered packets arriving within the window fill their
  /// hole silently).
  explicit SeqTracker(std::size_t window = 512) : window_(window) {}

  /// Feeds one packet. `rtt_hint` (if known) drives the retransmission
  /// heuristic: a reordered arrival more than rtt + 100 ms after the
  /// hole opened is counted as a suspected retransmission.
  void on_packet(util::Timestamp arrival, std::uint16_t seq,
                 std::optional<util::Duration> rtt_hint = std::nullopt);

  /// Flushes all remaining holes into gap_packets (end of stream).
  void finish();

  [[nodiscard]] const LossCounters& counters() const { return counters_; }
  /// Fraction of expected packets that never arrived (0 when nothing
  /// expected yet).
  [[nodiscard]] double loss_fraction() const;

 private:
  struct Hole {
    std::int64_t seq;
    util::Timestamp opened;
  };

  void age_holes(std::int64_t highest);

  std::size_t window_;
  util::SerialExtender<std::uint16_t> extender_;
  std::optional<std::int64_t> highest_;
  std::deque<Hole> holes_;         // open gaps, ascending seq
  std::deque<std::int64_t> seen_;  // recently seen seqs for dup detection
  LossCounters counters_;
};

}  // namespace zpm::metrics
