// Jitter-buffer stall prediction — the §5.5 extension the paper leaves
// as future work: "we can compare a frame's packetization time with its
// delay. If the delay is larger than the packetization time over the
// course of several frames, the jitter buffer gets drained and the
// video will eventually stall."
//
// Model: the receiver's playout buffer holds media time. Each completed
// frame deposits its packetization time; playback drains the buffer at
// wall-clock rate between frame completions. Occupancy reaching zero is
// a (predicted) stall; playback then rebuffers to the target before
// resuming.
#pragma once

#include <algorithm>
#include <cstdint>

#include "metrics/records.h"
#include "util/time.h"

namespace zpm::metrics {

/// Configuration for the playout-buffer model.
struct StallPredictorConfig {
  /// Target (and initial) buffer depth in media milliseconds.
  double target_buffer_ms = 150.0;
  /// Hard cap on buffered media (receivers drop very early frames).
  double max_buffer_ms = 600.0;
};

/// See file comment. Feed completed frames in completion order.
class StallPredictor {
 public:
  explicit StallPredictor(StallPredictorConfig config = {}) : config_(config) {
    level_ms_ = config_.target_buffer_ms;
  }

  /// Consumes one completed frame.
  void on_frame(const FrameRecord& frame) {
    if (have_prev_) {
      double wall_gap_ms = (frame.completed - prev_completed_).ms();
      double media_ms =
          frame.packetization_time ? frame.packetization_time->ms() : 0.0;
      // Playback drained wall_gap_ms while this frame contributed
      // media_ms of fresh content.
      level_ms_ += media_ms - wall_gap_ms;
      if (level_ms_ <= 0.0) {
        ++stall_events_;
        stalled_ms_ += -level_ms_;
        level_ms_ = config_.target_buffer_ms;  // rebuffer
      }
      level_ms_ = std::min(level_ms_, config_.max_buffer_ms);
      min_level_ms_ = std::min(min_level_ms_, level_ms_);
    }
    prev_completed_ = frame.completed;
    have_prev_ = true;
    ++frames_;
  }

  /// Current modelled buffer occupancy (media milliseconds).
  [[nodiscard]] double buffer_level_ms() const { return level_ms_; }
  /// True when the buffer is below a quarter of its target (early
  /// warning — frames are arriving slower than they play out).
  [[nodiscard]] bool at_risk() const {
    return have_prev_ && level_ms_ < config_.target_buffer_ms * 0.25;
  }
  /// Number of predicted stalls (buffer fully drained).
  [[nodiscard]] std::uint32_t stall_events() const { return stall_events_; }
  /// Total predicted frozen time (ms) across stalls.
  [[nodiscard]] double stalled_ms() const { return stalled_ms_; }
  [[nodiscard]] double min_level_ms() const {
    return frames_ > 1 ? min_level_ms_ : level_ms_;
  }
  [[nodiscard]] std::uint64_t frames() const { return frames_; }

 private:
  StallPredictorConfig config_;
  bool have_prev_ = false;
  util::Timestamp prev_completed_;
  double level_ms_ = 0.0;
  double min_level_ms_ = 1e18;
  double stalled_ms_ = 0.0;
  std::uint32_t stall_events_ = 0;
  std::uint64_t frames_ = 0;
};

}  // namespace zpm::metrics
