#include "metrics/loss.h"

#include <algorithm>

#include "zoom/constants.h"

namespace zpm::metrics {

void SeqTracker::on_packet(util::Timestamp arrival, std::uint16_t seq,
                           std::optional<util::Duration> rtt_hint) {
  ++counters_.received;
  std::int64_t ext = extender_.extend(seq);

  if (!highest_) {
    highest_ = ext;
    ++counters_.unique;
    seen_.push_back(ext);
    return;
  }

  if (ext > *highest_) {
    // Open holes for any skipped sequence numbers.
    for (std::int64_t s = *highest_ + 1; s < ext; ++s)
      holes_.push_back(Hole{s, arrival});
    *highest_ = ext;
    ++counters_.unique;
    seen_.push_back(ext);
  } else {
    // At or behind the highest: either a duplicate or a late packet
    // filling a hole.
    auto hole = std::find_if(holes_.begin(), holes_.end(),
                             [ext](const Hole& h) { return h.seq == ext; });
    if (hole != holes_.end()) {
      ++counters_.unique;
      ++counters_.reordered;
      // §5.5: a late arrival beyond RTT + retransmit timeout is very
      // likely a retransmission of a packet lost upstream of us.
      util::Duration threshold =
          (rtt_hint ? *rtt_hint : util::Duration::millis(0)) +
          util::Duration::micros(zoom::kRetransmitTimeoutUs);
      if (arrival - hole->opened > threshold) ++counters_.suspected_retransmissions;
      holes_.erase(hole);
      seen_.push_back(ext);
    } else if (std::find(seen_.begin(), seen_.end(), ext) != seen_.end()) {
      ++counters_.duplicates;
    } else {
      // Behind the window: too old to classify precisely; count as
      // reordered (it did arrive).
      ++counters_.unique;
      ++counters_.reordered;
      seen_.push_back(ext);
    }
  }

  age_holes(*highest_);
  while (seen_.size() > window_) seen_.pop_front();
}

void SeqTracker::age_holes(std::int64_t highest) {
  // A hole further than `window_` behind the frontier will not be filled
  // by ordinary reordering any more: count it lost.
  while (!holes_.empty() &&
         highest - holes_.front().seq > static_cast<std::int64_t>(window_)) {
    ++counters_.gap_packets;
    holes_.pop_front();
  }
}

void SeqTracker::finish() {
  counters_.gap_packets += holes_.size();
  holes_.clear();
}

double SeqTracker::loss_fraction() const {
  std::uint64_t expected = counters_.unique + counters_.gap_packets;
  if (expected == 0) return 0.0;
  return static_cast<double>(counters_.gap_packets) / static_cast<double>(expected);
}

}  // namespace zpm::metrics
