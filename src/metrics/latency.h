// Latency estimation from a passive vantage point (paper §5.3, Fig. 11).
//
// Method 1: the SFU forwards RTP packets without rewriting sequence
// numbers or timestamps, so when two on-campus participants share a
// meeting, the monitor sees the *same* packet go out to the SFU and come
// back. Matching on (SSRC, sequence, RTP timestamp) within a time window
// yields an RTT-to-SFU sample per forwarded packet — tens to hundreds of
// samples per second.
//
// Method 2: the client's TCP control connection gives RTTs via seq/ack
// matching, splitting the path at the monitor: monitor->SFU and
// monitor->client. The difference localizes congestion inside vs.
// outside the campus.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/headers.h"
#include "util/serial.h"
#include "util/time.h"

namespace zpm::metrics {

/// One passive RTT observation.
struct RttSample {
  util::Timestamp when;  // time of the returning packet
  util::Duration rtt;
};

/// §5.3 method 1: matches egress RTP packets against their SFU-forwarded
/// copies. All four features (time window, SSRC, sequence, timestamp)
/// must match — see §4.3.1 on why this makes the match robust.
class RtpCopyMatcher {
 public:
  /// `window` bounds how long an egress record waits for its copy.
  explicit RtpCopyMatcher(util::Duration window = util::Duration::millis(3000))
      : window_(window) {}

  /// Records a packet heading to the SFU (campus egress).
  void on_egress(util::Timestamp t, std::uint32_t ssrc, std::uint16_t seq,
                 std::uint32_t rtp_ts);

  /// Offers a packet coming from the SFU (campus ingress). Returns the
  /// RTT sample if it is a copy of a recorded egress packet.
  std::optional<RttSample> on_ingress(util::Timestamp t, std::uint32_t ssrc,
                                      std::uint16_t seq, std::uint32_t rtp_ts);

  [[nodiscard]] const std::vector<RttSample>& samples() const { return samples_; }
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  /// Mean RTT over all samples so far (0 if none).
  [[nodiscard]] util::Duration mean_rtt() const;

 private:
  struct Egress {
    util::Timestamp t;
    std::uint32_t rtp_ts;
  };
  static std::uint64_t key(std::uint32_t ssrc, std::uint16_t seq) {
    return (static_cast<std::uint64_t>(ssrc) << 16) | seq;
  }
  void evict(util::Timestamp now);

  util::Duration window_;
  std::unordered_map<std::uint64_t, Egress> pending_;
  std::deque<std::pair<util::Timestamp, std::uint64_t>> order_;
  std::vector<RttSample> samples_;
};

/// §5.3 method 2: passive TCP RTT from one control connection, split at
/// the monitor. Feed every packet of the connection with its direction
/// (outbound = campus client -> Zoom server).
class TcpRttEstimator {
 public:
  void on_packet(util::Timestamp t, const net::TcpHeader& tcp,
                 std::size_t payload_len, bool outbound);

  /// RTT between monitor and the Zoom server (outbound data -> inbound ack).
  [[nodiscard]] const std::vector<RttSample>& server_rtt() const { return server_rtt_; }
  /// RTT between monitor and the campus client (inbound data -> outbound ack).
  [[nodiscard]] const std::vector<RttSample>& client_rtt() const { return client_rtt_; }

 private:
  struct Sent {
    std::uint32_t end_seq;  // seq just past this segment's payload
    util::Timestamp t;
    bool retransmitted = false;
  };
  struct Direction {
    std::deque<Sent> inflight;
    std::optional<std::uint32_t> max_end_seq;
  };

  void record_send(Direction& dir, util::Timestamp t, std::uint32_t seq,
                   std::size_t len, bool syn_or_fin);
  void record_ack(Direction& dir, util::Timestamp t, std::uint32_t ack,
                  std::vector<RttSample>& out);

  Direction out_dir_;  // data flowing campus -> server
  Direction in_dir_;   // data flowing server -> campus
  std::vector<RttSample> server_rtt_;
  std::vector<RttSample> client_rtt_;
};

}  // namespace zpm::metrics
