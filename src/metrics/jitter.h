// Interarrival jitter per RFC 3550 §6.4.1 / A.8, applied at the frame
// level (paper §5.4).
//
// D(i,j) = (Rj - Ri) - (Sj - Si): the difference between how far apart
// two frames arrived and how far apart they were sampled. The RTP
// timestamp delta corrects for Zoom's variable packetization intervals;
// naive packet interarrival variance is wrong on two counts the paper
// calls out (multiple sub-streams per flow, bursty back-to-back packets
// within a frame) — see bench_ablation_jitter.
#pragma once

#include <cstdint>
#include <optional>

#include "util/serial.h"
#include "util/time.h"

namespace zpm::metrics {

/// RFC 3550 jitter estimator with the standard 1/16 gain. Feed one
/// observation per frame (the frame's first-packet arrival time and its
/// RTP timestamp); for packet-level jitter feed every packet instead.
class JitterEstimator {
 public:
  explicit JitterEstimator(std::uint32_t clock_hz) : clock_hz_(clock_hz) {}

  /// Adds an (arrival wall-clock, RTP timestamp) observation.
  void add(util::Timestamp arrival, std::uint32_t rtp_ts);

  /// Current smoothed jitter in RTP clock units.
  [[nodiscard]] double jitter_rtp_units() const { return jitter_; }
  /// Current smoothed jitter converted to milliseconds via the clock.
  [[nodiscard]] double jitter_ms() const {
    return clock_hz_ ? jitter_ * 1000.0 / static_cast<double>(clock_hz_) : 0.0;
  }
  [[nodiscard]] bool has_estimate() const { return samples_ >= 2; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }

  /// The most recent |D| transit-difference magnitude in ms (unsmoothed);
  /// useful for diagnostics.
  [[nodiscard]] std::optional<double> last_abs_d_ms() const { return last_d_ms_; }

 private:
  std::uint32_t clock_hz_;
  util::SerialExtender<std::uint32_t> ts_extender_;
  bool have_prev_ = false;
  util::Timestamp prev_arrival_;
  std::int64_t prev_ext_ts_ = 0;
  double jitter_ = 0.0;  // RTP units
  std::uint64_t samples_ = 0;
  std::optional<double> last_d_ms_;
};

/// The deliberately naive estimator the paper argues against: variance
/// of raw packet interarrival times, ignoring sub-streams and RTP
/// timestamps. Exists for the ablation comparison only.
class NaiveInterarrivalJitter {
 public:
  void add(util::Timestamp arrival);
  /// Standard deviation of interarrival time, in ms.
  [[nodiscard]] double jitter_ms() const;
  [[nodiscard]] std::uint64_t samples() const { return n_; }

 private:
  bool have_prev_ = false;
  util::Timestamp prev_;
  // Welford over interarrival ms.
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace zpm::metrics
