#include "pipeline/parallel_analyzer.h"

#include <cstdlib>
#include <limits>
#include <optional>
#include <string_view>
#include <utility>

#include "proto/stun.h"
#include "util/serial.h"
#include "zoom/constants.h"

namespace zpm::pipeline {

namespace {
/// How many items a shard drains per ring operation. Large enough to
/// amortise the atomics, small enough to keep per-shard latency and the
/// reusable batch buffer modest.
constexpr std::size_t kConsumeBatch = 256;
}  // namespace

/// One unit of work shipped to a shard.
///
/// Full items carry a decoded view whose spans point into, in order of
/// preference: the caller's pinned bytes (mapped trace — `owned` empty,
/// `block` null), a refcounted per-batch block shared by every item of
/// the batch (`block`), or this item's own `owned.data` (the per-packet
/// offer() path). StunCandidate items carry only the already-resolved
/// candidate endpoint — broadcasting a P2P candidate to the non-owner
/// shards does not copy packet bytes.
struct ParallelAnalyzer::Item {
  enum class Kind : std::uint8_t {
    Full,           ///< full analysis on the owner shard
    StunCandidate,  ///< broadcast: register the P2P candidate endpoint
  };
  std::uint64_t seq = 0;
  Kind kind = Kind::Full;
  /// Data-plane offload coverage (capture::kFlagOffloadCovered): the
  /// shard's analyzer skips the per-packet metric updates for this item.
  bool covered = false;
  net::PacketView view;
  net::RawPacket owned;
  std::shared_ptr<const std::vector<std::uint8_t>> block;
  // StunCandidate payload (§4.1): when/where the campus endpoint spoke.
  util::Timestamp ts;
  net::Ipv4Addr ip;
  std::uint16_t port = 0;
};

struct ParallelAnalyzer::Shard {
  Shard(const core::AnalyzerConfig& cfg, std::size_t ring_capacity)
      : analyzer(cfg), ring(ring_capacity) {
    analyzer.set_shard_journal(&journal);
  }

  void run() {
    std::vector<Item> batch;
    batch.reserve(kConsumeBatch);
    while (ring.pop_batch(batch, kConsumeBatch) > 0) {
      if (slow_us > 0) {
        // Fault injection (config.fault_slow_shard): a deterministic
        // stand-in for a wedged consumer, used by the overload tests to
        // manufacture ring backpressure on demand.
        std::this_thread::sleep_for(std::chrono::microseconds(slow_us));
      }
      for (Item& item : batch) {
        journal.seq = item.seq;
        if (item.kind == Item::Kind::Full) {
          analyzer.process(item.view, item.covered);
        } else {
          analyzer.register_stun_candidate(item.ts, item.ip, item.port);
        }
      }
      // Destroys the items (releasing block refcounts) but keeps the
      // buffer's capacity for the next drain.
      batch.clear();
    }
  }

  core::Analyzer analyzer;
  core::ShardJournal journal;
  util::SpscRing<Item> ring;
  std::thread thread;
  std::uint32_t slow_us = 0;  // fault injection, see run()
};

ParallelAnalyzer::ParallelAnalyzer(ParallelAnalyzerConfig config)
    : config_(std::move(config)) {
  std::size_t n = config_.shards > 0 ? config_.shards : 1;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(config_.analyzer, config_.ring_capacity));
    if (i == config_.fault_slow_shard) shards_[i]->slow_us = config_.fault_slow_us;
  }
  for (auto& shard : shards_)
    shard->thread = std::thread([s = shard.get()] { s->run(); });
}

ParallelAnalyzer::~ParallelAnalyzer() {
  if (!finished_) {
    for (auto& shard : shards_) shard->ring.close();
    for (auto& shard : shards_)
      if (shard->thread.joinable()) shard->thread.join();
  }
}

std::optional<net::PacketView> ParallelAnalyzer::ingest(
    std::uint64_t seq, const net::RawPacketView& pkt,
    std::span<const std::uint8_t> bytes) {
  // Global-order observations happen here, exactly as the serial
  // Analyzer does them in offer(): shards only ever see their own flow
  // subsequence, which would count differently.
  if (last_offer_ts_ && pkt.ts < *last_offer_ts_) ++health_.non_monotonic_ts;
  last_offer_ts_ = pkt.ts;
  if (pkt.is_truncated()) ++health_.snaplen_truncated;

  net::DecodeFailure df = net::DecodeFailure::None;
  auto view = net::decode_packet(pkt.ts, bytes, &df);
  if (!view) {
    // The serial offer() counts every raw packet before decoding.
    ++undecoded_packets_;
    undecoded_bytes_ += pkt.data.size();
    std::string_view category = core::apply_decode_failure(health_, df);
    if (!category.empty() && config_.analyzer.strict && !violation_)
      violation_ = core::StrictViolation{category, seq + 1, pkt.ts};
    return std::nullopt;
  }
  return view;
}

bool ParallelAnalyzer::stun_candidate(const net::PacketView& view,
                                      net::Ipv4Addr* ip,
                                      std::uint16_t* port) const {
  if (view.l4 != net::L4Proto::Udp) return false;
  const auto& db = config_.analyzer.server_db;
  // STUN pre-flight exchanges announce P2P candidate endpoints that a
  // later flow on *any* shard may need (§4.1). The predicate mirrors
  // Analyzer::process_decoded's STUN branch, and the validates() check
  // mirrors handle_stun's parse — a shard registering the candidate
  // itself would reach the same verdict on the same bytes.
  bool src_is_server = db.contains(view.ip.src);
  bool dst_is_server = db.contains(view.ip.dst);
  bool stun_exchange =
      (dst_is_server && view.udp.dst_port == zoom::kStunServerPort) ||
      (src_is_server && view.udp.src_port == zoom::kStunServerPort);
  if (!stun_exchange) return false;
  if (!proto::StunMessage::validates(view.l4_payload)) return false;
  // The campus endpoint that will later carry the P2P flow is the
  // non-server side (§4.1).
  if (src_is_server) {
    *ip = view.ip.dst;
    *port = view.udp.dst_port;
  } else {
    *ip = view.ip.src;
    *port = view.udp.src_port;
  }
  return true;
}

void ParallelAnalyzer::offer(net::RawPacket pkt) {
  const std::uint64_t seq = next_seq_++;
  auto view = ingest(seq, net::as_view(pkt), pkt.data);
  if (!view) return;

  std::size_t owner = net::canonical_flow_hash(view->five_tuple().canonical()) %
                      shards_.size();

  net::Ipv4Addr cand_ip;
  std::uint16_t cand_port = 0;
  if (stun_candidate(*view, &cand_ip, &cand_port)) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (i == owner) continue;
      Item cand;
      cand.seq = seq;
      cand.kind = Item::Kind::StunCandidate;
      cand.ts = pkt.ts;
      cand.ip = cand_ip;
      cand.port = cand_port;
      shards_[i]->ring.push(std::move(cand));
    }
  }

  Item item;
  item.seq = seq;
  item.kind = Item::Kind::Full;
  item.owned = std::move(pkt);  // the vector move keeps the view's spans valid
  item.view = *view;
  shards_[owner]->ring.push(std::move(item));
}

void ParallelAnalyzer::offer_batch(std::span<const net::RawPacketView> batch,
                                   BatchLifetime lifetime) {
  offer_batch_impl(batch, lifetime, nullptr);
}

void ParallelAnalyzer::offer_batch(std::span<const net::RawPacketView> batch,
                                   BatchLifetime lifetime,
                                   const capture::BatchVerdicts& verdicts) {
  offer_batch_impl(batch, lifetime, &verdicts);
}

void ParallelAnalyzer::offer_batch_impl(std::span<const net::RawPacketView> batch,
                                        BatchLifetime lifetime,
                                        const capture::BatchVerdicts* verdicts) {
  if (batch.empty()) return;
  if (staging_.size() != shards_.size()) staging_.resize(shards_.size());
  for (auto& stage : staging_) stage.clear();

  if (verdicts != nullptr && !verdicts->promotions.empty())
    promotions_.insert(promotions_.end(), verdicts->promotions.begin(),
                       verdicts->promotions.end());

  // Transient sources reuse their buffer after we return, so the batch
  // is copied once into a refcounted block all its items share. Pinned
  // sources (mapped traces) are analyzed in place.
  std::shared_ptr<const std::vector<std::uint8_t>> block;
  const std::uint8_t* base = nullptr;
  if (lifetime == BatchLifetime::Transient) {
    std::size_t total = 0;
    for (const auto& pkt : batch) total += pkt.data.size();
    auto buf = std::make_shared<std::vector<std::uint8_t>>();
    buf->reserve(total);
    block_offsets_.clear();
    for (const auto& pkt : batch) {
      block_offsets_.push_back(buf->size());
      buf->insert(buf->end(), pkt.data.begin(), pkt.data.end());
    }
    base = buf->data();
    block = std::move(buf);
  }

  for (std::size_t idx = 0; idx < batch.size(); ++idx) {
    const net::RawPacketView& pkt = batch[idx];
    const std::uint64_t seq = next_seq_++;

    const capture::Verdict verdict =
        verdicts ? verdicts->verdicts[idx] : capture::Verdict::FullParse;
    if (verdict == capture::Verdict::Reject) {
      // The front end proved this packet cannot affect analysis; replay
      // only the global-order accounting ingest() would have done before
      // decode (the seq above is still consumed, keeping strict-mode
      // sequence numbers identical with the front end on or off).
      if (last_offer_ts_ && pkt.ts < *last_offer_ts_) ++health_.non_monotonic_ts;
      last_offer_ts_ = pkt.ts;
      if (pkt.is_truncated()) ++health_.snaplen_truncated;
      ++health_.frontend_rejected;
      ++frontend_rejected_packets_;
      frontend_rejected_bytes_ += pkt.data.size();
      continue;
    }

    std::span<const std::uint8_t> bytes =
        lifetime == BatchLifetime::Transient
            ? std::span<const std::uint8_t>(base + block_offsets_[idx],
                                            pkt.data.size())
            : pkt.data;
    auto view = ingest(seq, pkt, bytes);
    if (!view) continue;

    // Admits carry the owner shard stage 2 precomputed (bit-compatible
    // with the hash below by the FlowDispatchTable contract).
    std::size_t owner =
        verdict == capture::Verdict::Admit
            ? verdicts->shard[idx]
            : net::canonical_flow_hash(view->five_tuple().canonical()) %
                  shards_.size();

    // The STUN-candidate predicate can only pass for UDP packets
    // touching port 3478; admitted packets tell us that bit for free.
    const bool stun_possible =
        verdict != capture::Verdict::Admit ||
        (verdicts->flags[idx] & capture::kFlagStunPort) != 0;

    net::Ipv4Addr cand_ip;
    std::uint16_t cand_port = 0;
    if (stun_possible && stun_candidate(*view, &cand_ip, &cand_port)) {
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (i == owner) continue;
        Item cand;
        cand.seq = seq;
        cand.kind = Item::Kind::StunCandidate;
        cand.ts = pkt.ts;
        cand.ip = cand_ip;
        cand.port = cand_port;
        staging_[i].push_back(std::move(cand));
      }
    }

    Item item;
    item.seq = seq;
    item.kind = Item::Kind::Full;
    item.covered = verdict == capture::Verdict::Admit &&
                   (verdicts->flags[idx] & capture::kFlagOffloadCovered) != 0;
    item.view = *view;
    item.block = block;  // null on the pinned path
    staging_[owner].push_back(std::move(item));
  }

  // One publish per shard per batch: a single release-store amortised
  // over every item staged for that shard.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (staging_[i].empty()) continue;
    if (!config_.bounded_push) {
      shards_[i]->ring.push_batch(std::span<Item>(staging_[i]));
      continue;
    }
    // Bounded dispatch (live mode): never block the poll loop on a full
    // ring. Retry with yields for a bounded number of rounds, then shed
    // the remainder — every shed Full item is accounted (a StunCandidate
    // is a broadcast duplicate, not a packet, so it is not counted; the
    // owner shard's Full item carries the packet).
    std::span<Item> items(staging_[i]);
    std::uint32_t rounds = 0;
    while (!items.empty()) {
      const std::size_t n = shards_[i]->ring.try_push_batch(items);
      items = items.subspan(n);
      if (items.empty()) break;
      ++health_.ring_wait_spins;
      if (++rounds > config_.push_retry_rounds) {
        std::uint64_t shed = 0;
        for (const Item& item : items)
          if (item.kind == Item::Kind::Full) ++shed;
        ring_shed_packets_ += shed;
        health_.overload_shed_l4 += shed;
        break;
      }
      std::this_thread::yield();
    }
  }
}

double ParallelAnalyzer::max_ring_occupancy() const {
  double occ = 0.0;
  for (const auto& shard : shards_) {
    const double cap = static_cast<double>(shard->ring.capacity());
    occ = std::max(occ, static_cast<double>(shard->ring.size()) / cap);
  }
  return occ;
}

std::uint64_t ParallelAnalyzer::producer_wait_spins() const {
  std::uint64_t spins = 0;
  for (const auto& shard : shards_) spins += shard->ring.push_wait_spins();
  return spins;
}

void ParallelAnalyzer::finish() {
  if (finished_) return;
  for (auto& shard : shards_) shard->ring.close();
  for (auto& shard : shards_) shard->thread.join();

  counters_ = core::AnalyzerCounters{};
  counters_.total_packets = undecoded_packets_ + frontend_rejected_packets_;
  counters_.total_bytes = undecoded_bytes_ + frontend_rejected_bytes_;
  zoom_flow_count_ = 0;
  for (auto& shard : shards_) {
    counters_.merge(shard->analyzer.counters());
    zoom_flow_count_ += shard->analyzer.zoom_flow_count();
    // Health merging is plain u64 sums, so shard order cannot matter;
    // ring spins ride along as the (nondeterministic) backpressure gauge.
    health_.merge(shard->analyzer.health());
    health_.ring_wait_spins += shard->ring.push_wait_spins();
    if (const auto& v = shard->analyzer.strict_violation();
        v && (!violation_ || v->sequence < violation_->sequence)) {
      violation_ = *v;
    }
  }

  replay_journals();

  // Metrics finish after the replay so deferred RTT samples fold into
  // their per-second bins.
  for (auto& shard : shards_) shard->analyzer.finish();

  for (auto& shard : shards_)
    for (const auto& [flow, estimator] : shard->analyzer.tcp_rtt())
      tcp_rtt_.emplace(flow, estimator);

  finished_ = true;
}

void ParallelAnalyzer::replay_journals() {
  // Per-stream state the duplicate-media match reads (§4.3 step 1),
  // rebuilt across shards in global creation order.
  struct MergedStream {
    core::StreamInfo* info = nullptr;
    std::int64_t last_ext_rtp_ts = 0;
    util::Timestamp last_seen;
  };
  std::vector<MergedStream> merged;
  std::vector<std::vector<std::size_t>> local_to_merged(shards_.size());
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> by_ssrc;
  metrics::RtpCopyMatcher matcher;
  const core::DuplicateMatchConfig& dup = config_.analyzer.duplicate_match;

  std::vector<std::size_t> pos(shards_.size(), 0);
  for (;;) {
    // Pick the shard holding the globally-next event; per-shard journals
    // are already in ascending packet order, so this is a k-way merge.
    std::size_t best = shards_.size();
    std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const auto& events = shards_[i]->journal.events;
      if (pos[i] < events.size() && events[pos[i]].seq < best_seq) {
        best = i;
        best_seq = events[pos[i]].seq;
      }
    }
    if (best == shards_.size()) break;

    const core::ShardJournal::Event& ev = shards_[best]->journal.events[pos[best]++];
    auto& shard_streams = shards_[best]->analyzer.streams().streams();

    if (const auto* create = std::get_if<core::ShardJournal::StreamCreate>(&ev.data)) {
      core::StreamInfo* info = shard_streams[ev.stream].get();
      // Same match rules as StreamTable::get_or_create, now against the
      // merged cross-shard state.
      std::optional<std::uint64_t> matched_media_id;
      if (auto it = by_ssrc.find(info->key.ssrc); it != by_ssrc.end()) {
        for (std::size_t idx : it->second) {
          const MergedStream& other = merged[idx];
          if (other.info->key.flow == create->flow) continue;
          if (other.info->kind != create->kind) continue;
          if (ev.ts - other.last_seen > dup.max_wall_gap) continue;
          if (dup.require_timestamp_match) {
            std::int64_t delta = std::llabs(util::serial_diff(
                static_cast<std::uint32_t>(other.last_ext_rtp_ts),
                create->first_rtp_ts));
            if (delta > dup.max_rtp_ts_delta) continue;
          }
          matched_media_id = other.info->media_id;
          break;
        }
      }
      info->media_id = matched_media_id ? *matched_media_id : next_media_id_++;
      info->meeting_id =
          grouper_.assign(info->media_id, create->client_ip, create->client_port,
                          ev.ts, create->is_p2p, create->peer);
      info->index = merged.size();
      by_ssrc[info->key.ssrc].push_back(merged.size());
      local_to_merged[best].push_back(merged.size());
      merged.push_back(MergedStream{info, create->ext_rtp_ts, ev.ts});
      streams_.push_back(info);
    } else if (const auto* touch =
                   std::get_if<core::ShardJournal::StreamTouch>(&ev.data)) {
      MergedStream& ms = merged[local_to_merged[best][ev.stream]];
      ms.last_ext_rtp_ts = touch->ext_rtp_ts;
      ms.last_seen = touch->last_seen;
      grouper_.touch(ms.info->meeting_id, ev.ts);
    } else if (const auto* egress =
                   std::get_if<core::ShardJournal::RtpEgress>(&ev.data)) {
      matcher.on_egress(ev.ts, egress->ssrc, egress->rtp_seq, egress->rtp_ts);
    } else if (const auto* ingress =
                   std::get_if<core::ShardJournal::RtpIngress>(&ev.data)) {
      if (auto sample = matcher.on_ingress(ev.ts, ingress->ssrc, ingress->rtp_seq,
                                           ingress->rtp_ts)) {
        MergedStream& ms = merged[local_to_merged[best][ev.stream]];
        ms.info->metrics->on_rtt_sample(*sample);
        grouper_.add_rtt_sample(ms.info->meeting_id, *sample);
      }
    }
  }

  sfu_rtt_samples_ = matcher.samples();
}

}  // namespace zpm::pipeline
