// Flow-sharded parallel analysis pipeline.
//
// The paper's campus deployment pushed 1.8B packets through the
// analysis tools in 12 hours; a single-threaded per-packet loop caps
// well short of that. This module scales `core::Analyzer` across cores
// with the classic capture-pipeline split (cf. CoMo): a producer stage
// decodes raw frames and dispatches each packet by
// hash(five_tuple().canonical()) % N over lock-free SPSC rings to N
// worker shards, each owning a private Analyzer — all per-flow,
// per-stream and per-meeting state stays thread-local, so the hot path
// takes zero locks.
//
// Two kinds of state are not 5-tuple-local and get special treatment:
//   * STUN-announced P2P candidates are keyed by endpoint (§4.1); the
//     dispatcher broadcasts STUN exchanges to every shard (candidate
//     registration only — the owner shard alone counts the packet).
//   * Duplicate-media grouping (§4.3), meeting grouping and SFU RTT
//     copy-matching (§5.3 M1) span flows; shards journal those
//     operations (core::ShardJournal) and finish() replays all journals
//     in global packet order through one MeetingGrouper/RtpCopyMatcher.
//
// The replay makes the merged result *bit-identical* to the serial
// Analyzer on the same trace — the correctness contract, enforced by
// tests/test_parallel_pipeline.cc.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "capture/batch_filter.h"
#include "core/analyzer.h"
#include "net/packet.h"
#include "util/spsc_ring.h"

namespace zpm::pipeline {

/// Parallel pipeline configuration.
struct ParallelAnalyzerConfig {
  /// Per-shard analyzer configuration (identical across shards).
  core::AnalyzerConfig analyzer;
  /// Worker shard count. 1 still runs the full dispatch/merge machinery
  /// (useful for testing); use core::Analyzer directly for a serial path.
  std::size_t shards = 4;
  /// Per-shard ring capacity in packets (rounded up to a power of two).
  std::size_t ring_capacity = 1 << 13;
  /// Live-mode bounded dispatch: publish with bounded retries instead of
  /// blocking on a full shard ring; items that still do not fit after
  /// `push_retry_rounds` are shed (Full items land in
  /// health().overload_shed_l4, see ring_shed_packets()). Off by
  /// default — replay/file modes keep the lossless blocking push and
  /// all existing bit-identity guarantees.
  bool bounded_push = false;
  /// Retry rounds (each a yield) before bounded dispatch sheds.
  std::uint32_t push_retry_rounds = 128;
  /// Fault injection for overload tests: the worker with this shard
  /// index sleeps `fault_slow_us` microseconds per drained batch,
  /// deterministically manufacturing ring backpressure. SIZE_MAX
  /// disables.
  std::size_t fault_slow_shard = SIZE_MAX;
  std::uint32_t fault_slow_us = 0;
};

/// How long the packet bytes behind an offer_batch() call stay valid.
enum class BatchLifetime : std::uint8_t {
  /// The views point into storage that outlives finish() — e.g. a
  /// memory-mapped trace held by the caller. Shards analyze the bytes
  /// in place; nothing is copied.
  Pinned,
  /// The views point into a buffer the caller reuses after the call
  /// returns (the streaming reader's block). The batch's bytes are
  /// copied once into a refcounted block shared by all its items.
  Transient,
};

/// See file comment.
class ParallelAnalyzer {
 public:
  explicit ParallelAnalyzer(ParallelAnalyzerConfig config);
  /// Joins workers; safe after finish().
  ~ParallelAnalyzer();

  ParallelAnalyzer(const ParallelAnalyzer&) = delete;
  ParallelAnalyzer& operator=(const ParallelAnalyzer&) = delete;

  /// Offers one raw captured frame (producer thread only). The packet
  /// is decoded here and shipped to its owner shard; recognition
  /// results are only available after finish().
  void offer(net::RawPacket pkt);

  /// Offers a batch of raw frames (producer thread only): the zero-copy
  /// fast path. Packets are decoded here, grouped per owner shard, and
  /// published with one ring operation per shard per batch. With
  /// BatchLifetime::Pinned nothing is copied; with Transient the batch
  /// is copied once into a shared block (never per packet, per shard).
  /// Bit-identical to calling offer() per packet.
  void offer_batch(std::span<const net::RawPacketView> batch,
                   BatchLifetime lifetime);

  /// Same, with capture front-end verdicts (index-aligned with `batch`,
  /// from a capture::BatchFilter configured with this pipeline's server
  /// db and shard count — both are part of the bit-identity contract):
  ///   * Reject  — accounted (totals, stream order, snaplen,
  ///     frontend_rejected) and dropped without header decode.
  ///   * Admit   — decoded and shipped to the precomputed owner shard;
  ///     the STUN-candidate broadcast check runs only when
  ///     capture::kFlagStunPort is set (a superset of packets that can
  ///     pass it).
  ///   * FullParse — exactly the plain offer_batch() path.
  /// Results stay bit-identical to offer_batch() without verdicts.
  void offer_batch(std::span<const net::RawPacketView> batch,
                   BatchLifetime lifetime,
                   const capture::BatchVerdicts& verdicts);

  /// Closes the rings, joins the workers and runs the merge step. Must
  /// be called exactly once, after the last offer().
  void finish();

  // --- Results (valid after finish()) ---------------------------------

  /// Merged trace-wide counters (bit-identical to serial).
  [[nodiscard]] const core::AnalyzerCounters& counters() const { return counters_; }
  /// Merged health counters. Every field except `ring_wait_spins`
  /// (timing-dependent backpressure) is bit-identical to serial.
  [[nodiscard]] const core::AnalyzerHealth& health() const { return health_; }
  /// Earliest strict violation across dispatcher and shards, when
  /// config.analyzer.strict is set (populated by finish(); decode-level
  /// violations are visible as soon as offer() sees them).
  [[nodiscard]] const std::optional<core::StrictViolation>& strict_violation() const {
    return violation_;
  }
  /// All streams in global creation order (the serial Analyzer's order);
  /// media/meeting ids are the re-grouped global ones.
  [[nodiscard]] const std::vector<core::StreamInfo*>& streams() const {
    return streams_;
  }
  /// Distinct media ids after cross-shard duplicate re-grouping.
  [[nodiscard]] std::uint64_t media_count() const { return next_media_id_; }
  /// The merged meeting grouper.
  [[nodiscard]] const core::MeetingGrouper& meetings() const { return grouper_; }
  /// Distinct Zoom flows (canonical 5-tuples) across all shards.
  [[nodiscard]] std::size_t zoom_flow_count() const { return zoom_flow_count_; }
  /// §5.3 method-1 RTT samples from the global replay, trace-wide.
  [[nodiscard]] const std::vector<metrics::RttSample>& sfu_rtt_samples() const {
    return sfu_rtt_samples_;
  }
  /// TCP control-connection RTT estimators merged across shards.
  [[nodiscard]] const std::unordered_map<net::FiveTuple, metrics::TcpRttEstimator>&
  tcp_rtt() const {
    return tcp_rtt_;
  }

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }

  // --- Live pressure signals (producer thread; valid before finish()) --

  /// Max over shards of ring occupancy as a fraction of capacity.
  /// Approximate under concurrency — a pressure signal, not an
  /// accounting value.
  [[nodiscard]] double max_ring_occupancy() const;
  /// Producer push-wait spins accumulated so far across all shard
  /// rings (producer-owned counters; read from the producer thread).
  [[nodiscard]] std::uint64_t producer_wait_spins() const;
  /// Full items shed so far by bounded dispatch (config.bounded_push);
  /// the same count is folded into health().overload_shed_l4.
  [[nodiscard]] std::uint64_t ring_shed_packets() const {
    return ring_shed_packets_;
  }

  /// Sketch-tier promotions seen across all verdict-aware offer_batch()
  /// calls, in arrival order: the pre-admission byte/packet aggregates
  /// the capture front end carried for flows that reached exact
  /// tracking. Side-band context only (reported via --sketch-stats);
  /// never folded into the standard report, which stays bit-identical
  /// with the tier on or off.
  [[nodiscard]] const std::vector<capture::BatchVerdicts::Promotion>&
  promotions() const {
    return promotions_;
  }

 private:
  struct Item;
  struct Shard;

  /// Global-order capture-quality observations + decode, shared by
  /// offer() and offer_batch(). Returns the decoded view, or nullopt
  /// after accounting the undecoded packet.
  std::optional<net::PacketView> ingest(std::uint64_t seq,
                                        const net::RawPacketView& pkt,
                                        std::span<const std::uint8_t> bytes);
  /// If `view` is a valid STUN exchange with a Zoom server, resolves
  /// the campus-side candidate endpoint (§4.1) into ip/port.
  bool stun_candidate(const net::PacketView& view, net::Ipv4Addr* ip,
                      std::uint16_t* port) const;
  /// Shared body of both offer_batch() overloads; `verdicts` is null on
  /// the plain path.
  void offer_batch_impl(std::span<const net::RawPacketView> batch,
                        BatchLifetime lifetime,
                        const capture::BatchVerdicts* verdicts);
  void replay_journals();

  ParallelAnalyzerConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::uint64_t next_seq_ = 0;
  bool finished_ = false;

  // offer_batch() scratch, reused so the steady state allocates nothing:
  // per-shard item staging and the transient block's per-packet offsets.
  std::vector<std::vector<Item>> staging_;
  std::vector<std::size_t> block_offsets_;

  // Packets the producer could not decode still count toward totals
  // (the serial offer() counts them before decoding).
  std::uint64_t undecoded_packets_ = 0;
  std::uint64_t undecoded_bytes_ = 0;

  // Packets the capture front end rejected: counted toward totals, never
  // decoded or shipped to a shard.
  std::uint64_t frontend_rejected_packets_ = 0;
  std::uint64_t frontend_rejected_bytes_ = 0;

  // Sketch-tier promotions accumulated from verdict batches.
  std::vector<capture::BatchVerdicts::Promotion> promotions_;

  // Full items shed by bounded dispatch (see ring_shed_packets()).
  std::uint64_t ring_shed_packets_ = 0;

  // Producer-side health: capture-quality observations and decode
  // failures belong to the global offer order, mirroring the serial
  // Analyzer's journal_ == nullptr accounting. Shard healths are merged
  // in at finish().
  core::AnalyzerHealth health_;
  std::optional<core::StrictViolation> violation_;
  std::optional<util::Timestamp> last_offer_ts_;

  // Merged results.
  core::AnalyzerCounters counters_;
  core::MeetingGrouper grouper_;
  std::vector<core::StreamInfo*> streams_;
  std::uint64_t next_media_id_ = 0;
  std::size_t zoom_flow_count_ = 0;
  std::vector<metrics::RttSample> sfu_rtt_samples_;
  std::unordered_map<net::FiveTuple, metrics::TcpRttEstimator> tcp_rtt_;
};

}  // namespace zpm::pipeline
