// Vectorized two-stage capture front end: the software model of putting
// the paper's Tofino filter (§5) *in front of* the analysis pipeline.
//
// In the campus deployment only the Zoom-identified fraction of 1.8B
// tapped packets ever reached the software tools; everything else was
// rejected at line rate by fixed-offset match tables. This module plays
// that role for trace replay:
//
//   * Stage 1 (BatchFilter::classify) computes a per-packet verdict —
//     Admit / Reject / FullParse — for a whole net::TraceSource batch
//     using branch-light fixed-offset probes on the discriminants the
//     paper reverse-engineers (UDP ports 8801/3478 + the server subnet
//     list, SFU encap type 5, media types {13,15,16,33,34}, the RTP
//     payload-type set, the STUN magic cookie), before any full header
//     decode. A SWAR/SSE2 probe and a scalar reference implementation
//     are selected at runtime (ZPM_NO_SIMD forces scalar) and must be
//     bit-identical (enforced by tests/fuzz/fuzz_batch_filter).
//   * Stage 2 (FlowDispatchTable) replaces the per-packet hash-map flow
//     lookup of the dispatch path with an open-addressing flat table
//     over packed canonical 5-tuples, so admitted packets carry a
//     precomputed owner shard + flow slot into
//     pipeline::ParallelAnalyzer::offer_batch.
//
// Correctness contract (the analyzer's output must stay bit-identical
// with the front end on or off): a packet may only be Rejected when the
// analyzer would provably have returned "not Zoom" with zero counter or
// state side effects beyond the total/stream-order/snaplen accounting
// the caller replays (Analyzer::account_frontend_rejected /
// ParallelAnalyzer's verdict-aware offer_batch). Concretely:
//   * the packet must be "probe-clean" — guaranteed to decode (fixed
//     20-byte IPv4 header, complete UDP/TCP header), so no decode-
//     failure health counter could have fired, and
//   * UDP: neither address is in the server list and neither endpoint
//     was ever a P2P candidate. The filter arms a *superset* of the
//     analyzer's candidate set (both endpoints of any IPv4/UDP packet
//     touching port 3478, never expiring), so it can over-admit —
//     costing only a full parse — but never over-reject.
//   * TCP: neither address is in the server list (the analyzer ignores
//     such packets unconditionally).
// Everything uncertain (non-IPv4, IP options, fragments, truncated L4,
// short frames) is FullParse: the normal decode path, unchanged.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "capture/offload.h"
#include "net/five_tuple.h"
#include "net/packet.h"
#include "sketch/sketch.h"
#include "zoom/server_db.h"

namespace zpm::capture {

/// Stage-1 verdict for one packet of a batch.
enum class Verdict : std::uint8_t {
  FullParse = 0,  ///< cannot pre-classify cheaply; normal decode path
  Admit = 1,      ///< will be analyzed; carries precomputed shard + slot
  Reject = 2,     ///< provably cannot affect analysis; never decoded
};

/// Per-packet auxiliary flags accompanying an Admit verdict.
/// The packet is UDP and touches the STUN port (3478) — the dispatcher
/// only needs to run its STUN-candidate broadcast check on these.
inline constexpr std::uint8_t kFlagStunPort = 0x01;
/// The payload passed the Zoom shape probe (SFU type 5 + known media
/// type + known RTP payload type, or a valid STUN prefix). Look-alike
/// port squatters never get this flag (tests/test_batch_filter.cc).
inline constexpr std::uint8_t kFlagZoomShaped = 0x02;
/// The data-plane offload absorbed this packet's metric work (capture/
/// offload.h): the host dispatch path must skip its per-packet
/// jitter/latency updates for it. Only set when the offload is enabled
/// and extract_offload_fields succeeded on the frame.
inline constexpr std::uint8_t kFlagOffloadCovered = 0x04;

/// classify() output, index-aligned with the input batch. The arrays
/// are only resized (geometric capacity growth), so reusing one
/// instance across batches is allocation-free in steady state.
struct BatchVerdicts {
  /// A flow the sketch tier handed to exact tracking during this batch:
  /// its first Admit arrived after the tier had already summarized
  /// packets for it (e.g. a P2P flow rejected until its endpoint was
  /// STUN-armed). `carried` is the tier's accumulated pre-admission
  /// aggregate — side-band context for the exact tracker, never part of
  /// the standard report (bit-identity contract).
  struct Promotion {
    net::FiveTuple flow;  ///< canonical
    std::uint32_t shard = 0;
    sketch::FlowStats carried;

    bool operator==(const Promotion&) const = default;
  };

  std::vector<Verdict> verdicts;
  std::vector<std::uint8_t> flags;
  std::vector<std::uint32_t> shard;  ///< owner shard; valid for Admit
  std::vector<std::uint32_t> slot;   ///< flow slot; valid for Admit
  /// net::canonical_flow_hash of the packet's canonical 5-tuple; 0 for
  /// packets that were never resolved (FullParse without a probe-clean
  /// header). The overload shedder keys its deterministic admission
  /// sampling off this, so replays shed identically.
  std::vector<std::uint64_t> flow_hash;
  std::vector<Promotion> promotions;  ///< sketch-tier promotions, batch order

  void resize(std::size_t n) {
    verdicts.resize(n);
    flags.resize(n);
    shard.resize(n);
    slot.resize(n);
    flow_hash.resize(n);
    promotions.clear();
  }

  bool operator==(const BatchVerdicts&) const = default;
};

/// Cumulative front-end counters (the filter's selectivity on a trace,
/// cf. the paper's Fig. 17 processed-vs-filtered series).
struct FrontEndStats {
  std::uint64_t packets = 0;       ///< classified, total
  std::uint64_t admitted = 0;      ///< Verdict::Admit
  std::uint64_t rejected = 0;      ///< Verdict::Reject
  std::uint64_t full_parse = 0;    ///< Verdict::FullParse (fallback)
  std::uint64_t zoom_shaped = 0;   ///< admitted with kFlagZoomShaped
  std::uint64_t stun_flagged = 0;  ///< admitted with kFlagStunPort
  std::uint64_t simd_batches = 0;
  std::uint64_t scalar_batches = 0;
  /// Data-plane offload coverage and register churn (zero unless
  /// BatchFilterConfig::dataplane_offload is on).
  std::uint64_t offload_covered = 0;    ///< admits with kFlagOffloadCovered
  std::uint64_t offload_collisions = 0; ///< probe + telemetry slot overwrites
  std::uint64_t offload_evictions = 0;  ///< jitter scratch slot overwrites
};

/// Stage 2: open-addressing flat map from packed canonical 5-tuples to
/// (owner shard, flow slot). Replaces the per-packet
/// std::hash<FiveTuple> + unordered-map probe of the dispatch path for
/// flows seen before: media traffic arrives in per-flow bursts, so the
/// common case is one multiply-xorshift hash and one cache line. Slots
/// are assigned in first-sight order and stable for the table's life.
class FlowDispatchTable {
 public:
  explicit FlowDispatchTable(std::size_t initial_capacity = 1 << 10);

  struct Hit {
    std::uint32_t shard = 0;
    std::uint32_t slot = 0;
    bool inserted = false;  ///< first sight of this flow
  };

  /// Looks up `canonical` (must be a canonical() 5-tuple), inserting on
  /// first sight with the owner the parallel dispatcher would compute:
  /// net::canonical_flow_hash % shards. Bit-compatibility with
  /// ParallelAnalyzer's routing is the whole point; tests assert it.
  Hit lookup_or_insert(const net::FiveTuple& canonical, std::size_t shards);
  /// Same, with the key and hash the caller already has in hand.
  Hit lookup_or_insert(const net::PackedFlowKey& key, std::uint64_t hash,
                       std::size_t shards);

  /// Removes a flow (sketch-tier demotion). Backward-shift deletion, no
  /// tombstones; the flow's slot id is retired, never reused, so slot
  /// ids stay unique for the table's life. Returns false when absent.
  bool erase(const net::FiveTuple& canonical);

  /// Flows currently resident (insertions minus erasures).
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  struct Entry {
    std::uint64_t k1 = 0;  ///< (src_ip << 32) | dst_ip
    std::uint64_t k2 = 0;  ///< (src_port << 24) | (dst_port << 8) | proto; 0 = empty
    std::uint32_t shard = 0;
    std::uint32_t slot = 0;
  };

  void grow();

  std::vector<Entry> entries_;
  std::size_t mask_;
  std::size_t size_ = 0;
  std::size_t next_slot_ = 0;  ///< first-sight slot counter (never reused)
};

/// Stage-1 configuration. `server_db` and `shards` must match the
/// analyzer configuration the verdicts are fed into, or the
/// bit-identity contract (and shard routing) breaks.
struct BatchFilterConfig {
  zoom::ServerDb server_db = zoom::ServerDb::official();
  /// Worker shard count of the consuming pipeline; 1 for serial use.
  std::size_t shards = 1;
  /// Total byte budget for the sketch tier, split evenly across one
  /// sketch::FlowTier per shard; 0 disables the tier. Rejected packets
  /// are summarized (never decoded or shipped), and a flow's first
  /// Admit promotes its accumulated aggregate via
  /// BatchVerdicts::promotions. Verdicts are identical with the tier on
  /// or off — the tier only *observes* the Reject stream.
  std::size_t flow_memory_budget = 0;
  /// Enables the data-plane metric offload (capture/offload.h): one
  /// DataPlaneOffload per shard absorbs the jitter/RTT metric work for
  /// server media packets it can classify at fixed offsets, marking
  /// them kFlagOffloadCovered so the host skips those updates. Verdicts
  /// are identical with the offload on or off — it only adds a flag.
  bool dataplane_offload = false;
  OffloadConfig offload;  ///< register sizing when enabled
};

/// See file comment.
class BatchFilter {
 public:
  enum class Mode : std::uint8_t {
    Auto,         ///< SIMD when compiled in and ZPM_NO_SIMD is unset
    ForceScalar,  ///< scalar reference probe
    ForceSimd,    ///< SWAR/SSE2 probe (still scalar-built binaries SWAR)
  };

  explicit BatchFilter(BatchFilterConfig config, Mode mode = Mode::Auto);

  /// Classifies one batch. `out` is index-aligned with `batch` and
  /// fully overwritten. Stateful: STUN exchanges in this batch arm P2P
  /// candidate endpoints for all later packets (including later in the
  /// same batch, mirroring the analyzer's in-order processing).
  void classify(std::span<const net::RawPacketView> batch, BatchVerdicts& out);

  [[nodiscard]] const FrontEndStats& stats() const { return stats_; }
  /// True when classify() runs the SWAR/SSE2 probe.
  [[nodiscard]] bool simd_active() const { return simd_; }
  /// Distinct admitted flows (FlowDispatchTable size).
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  /// Armed candidate endpoints (superset of the analyzer's, see above).
  [[nodiscard]] std::size_t candidate_endpoint_count() const {
    return candidates_size_;
  }

  // --- Sketch tier ------------------------------------------------------

  [[nodiscard]] bool sketch_enabled() const { return !tiers_.empty(); }
  /// Hands an exact-tracked flow back to the sketch tier (meeting ended,
  /// tracker evicted): removes it from the dispatch table and folds
  /// `carried` — the aggregate the exact tier accumulated — into the
  /// owning shard's sketch. Returns false when the flow is unknown or
  /// the tier is disabled. Counted under `sketch-evicted`.
  bool demote_flow(const net::FiveTuple& canonical,
                   const sketch::FlowStats& carried);
  /// Health feed for the `sketch-evicted` category: SpaceSaving
  /// minimum-entry evictions plus explicit demotions, all shards.
  [[nodiscard]] std::uint64_t sketch_evicted() const;
  /// Merged cross-shard tier report (stats sum + re-ranked heavy
  /// hitters). Exact merge: a flow lives in exactly one shard's tier.
  [[nodiscard]] sketch::TierReport sketch_report(std::size_t limit) const;
  /// Shard-local tier (bench/test introspection); requires sketch_enabled().
  [[nodiscard]] const sketch::FlowTier& tier(std::size_t shard) const {
    return tiers_[shard];
  }

  // --- Data-plane offload -----------------------------------------------

  [[nodiscard]] bool offload_enabled() const { return !offloads_.empty(); }
  /// Merged register contents across all shards (exact: every counter
  /// register is increment-only, so summing is lossless).
  [[nodiscard]] OffloadReport offload_report() const;
  /// Shard-local offload (bench/test introspection); requires
  /// offload_enabled().
  [[nodiscard]] const DataPlaneOffload& offload(std::size_t shard) const {
    return offloads_[shard];
  }

 private:
  /// Order-independent per-packet facts, produced identically by the
  /// scalar and SWAR/SSE2 probe layers; the stateful resolve pass that
  /// consumes them is shared, which is what makes scalar/SIMD parity
  /// structural rather than incidental.
  struct Probe {
    std::uint32_t flags = 0;
    std::uint32_t src_ip = 0;
    std::uint32_t dst_ip = 0;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint8_t proto = 0;
  };

  /// Scalar reference probe for one packet — the byte-by-byte
  /// specification the SWAR/SSE2 path must match (and falls back to for
  /// lanes it cannot handle: short frames, odd layouts, big-endian).
  static Probe probe_one_scalar(std::span<const std::uint8_t> data);

  void probe_batch_scalar(std::span<const net::RawPacketView> batch);
  void probe_batch_simd(std::span<const net::RawPacketView> batch);
  void resolve(std::span<const net::RawPacketView> batch, BatchVerdicts& out);

  // Never-expiring open-addressing set over (ip << 16 | port) keys.
  [[nodiscard]] bool candidate_contains(std::uint64_t key) const;
  void candidate_insert(std::uint64_t key);
  void candidate_grow();

  BatchFilterConfig config_;
  bool simd_;
  FrontEndStats stats_;
  FlowDispatchTable flows_;
  std::vector<sketch::FlowTier> tiers_;  // one per shard; empty = disabled
  std::vector<DataPlaneOffload> offloads_;  // one per shard; empty = disabled
  std::vector<Probe> probes_;  // classify() scratch, reused
  std::vector<std::uint64_t> candidates_;
  std::size_t candidates_mask_;
  std::size_t candidates_size_ = 0;
  bool candidates_has_zero_ = false;
};

}  // namespace zpm::capture
