#include "capture/resources.h"

namespace zpm::capture {

ResourceUsage estimate_usage(const ComponentSpec& spec, const SwitchModel& model) {
  ResourceUsage u;
  u.component = spec.name;
  u.stages = spec.stages;

  double tcam_bits_total = static_cast<double>(model.tcam_blocks) *
                           SwitchModel::kTcamBlockEntries * SwitchModel::kTcamBlockBits;
  double sram_bits_total = static_cast<double>(model.sram_blocks) *
                           SwitchModel::kSramBlockEntries * SwitchModel::kSramBlockBits;

  double tcam_bits = 0.0;
  double sram_bits = 0.0;
  for (const auto& t : spec.tables) {
    double key_bits = static_cast<double>(t.entries) * static_cast<double>(t.key_bits);
    double action_bits =
        static_cast<double>(t.entries) * static_cast<double>(t.action_data_bits);
    if (t.match == MatchType::Exact) {
      // Exact-match keys live in SRAM (hash-way tables).
      sram_bits += key_bits + action_bits;
    } else {
      // Ternary/LPM keys live in TCAM; action data still in SRAM.
      tcam_bits += key_bits;
      sram_bits += action_bits;
    }
  }
  for (const auto& r : spec.registers) {
    sram_bits += static_cast<double>(r.entries) * static_cast<double>(r.width_bits);
  }

  u.tcam = tcam_bits / tcam_bits_total;
  u.sram = sram_bits / sram_bits_total;
  u.instructions = static_cast<double>(spec.instructions) /
                   static_cast<double>(model.instruction_slots);
  u.hash_units =
      static_cast<double>(spec.hash_units) / static_cast<double>(model.hash_units);
  return u;
}

}  // namespace zpm::capture
