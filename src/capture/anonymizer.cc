#include "capture/anonymizer.h"

#include "net/checksum.h"
#include "net/headers.h"
#include "util/bytes.h"

namespace zpm::capture {

bool PrefixPreservingAnonymizer::prf_bit(std::uint32_t prefix, int len) const {
  // SplitMix64-style mix of (key, prefix, len); one output bit.
  std::uint64_t x = key_ ^ (static_cast<std::uint64_t>(prefix) << 8) ^
                    static_cast<std::uint64_t>(static_cast<unsigned>(len)) ^
                    std::uint64_t{0x9e3779b97f4a7c15};
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return (x & 1) != 0;
}

net::Ipv4Addr PrefixPreservingAnonymizer::anonymize(net::Ipv4Addr ip) const {
  std::uint32_t v = ip.value();
  std::uint32_t out = 0;
  // Crypto-PAN construction: bit i of the output flips bit i of the
  // input based on a PRF of the i-bit prefix, preserving shared
  // prefixes exactly.
  for (int i = 0; i < 32; ++i) {
    std::uint32_t prefix = i == 0 ? 0 : (v >> (32 - i));
    std::uint32_t bit = (v >> (31 - i)) & 1;
    std::uint32_t flip = prf_bit(prefix, i) ? 1u : 0u;
    out = (out << 1) | (bit ^ flip);
  }
  return net::Ipv4Addr(out);
}

void PrefixPreservingAnonymizer::anonymize_frame(net::RawPacket& pkt) const {
  // Minimal in-place rewrite: Ethernet (14) + IPv4 src at 26, dst at 30.
  if (pkt.data.size() < 34) return;
  util::ByteReader probe(pkt.data);
  auto eth = net::EthernetHeader::parse(probe);
  if (!eth || eth->ether_type != net::kEtherTypeIpv4) return;
  if ((pkt.data[14] >> 4) != 4) return;

  auto read_u32 = [&](std::size_t off) {
    return (std::uint32_t{pkt.data[off]} << 24) | (std::uint32_t{pkt.data[off + 1]} << 16) |
           (std::uint32_t{pkt.data[off + 2]} << 8) | pkt.data[off + 3];
  };
  auto write_u32 = [&](std::size_t off, std::uint32_t v) {
    pkt.data[off] = static_cast<std::uint8_t>(v >> 24);
    pkt.data[off + 1] = static_cast<std::uint8_t>(v >> 16);
    pkt.data[off + 2] = static_cast<std::uint8_t>(v >> 8);
    pkt.data[off + 3] = static_cast<std::uint8_t>(v);
  };

  write_u32(26, anonymize(net::Ipv4Addr(read_u32(26))).value());
  write_u32(30, anonymize(net::Ipv4Addr(read_u32(30))).value());

  // Recompute the IPv4 header checksum.
  std::size_t ihl = (pkt.data[14] & 0x0f) * std::size_t{4};
  if (pkt.data.size() < 14 + ihl) return;
  pkt.data[24] = 0;
  pkt.data[25] = 0;
  std::uint16_t csum = net::internet_checksum(
      std::span<const std::uint8_t>(pkt.data).subspan(14, ihl));
  pkt.data[24] = static_cast<std::uint8_t>(csum >> 8);
  pkt.data[25] = static_cast<std::uint8_t>(csum);
}

}  // namespace zpm::capture
