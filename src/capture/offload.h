// Data-plane metric offload — bucketed RTT/jitter histograms plus a
// spin-bit-style RTT probe, modelled with switch-legal primitives.
//
// The paper (§8) observes its metrics "can be implemented in a
// streaming fashion and are amenable to data-plane implementation".
// This module is that extension for the Tofino model in capture/: the
// switch keeps pre-aggregated interarrival-jitter and RTT histograms
// for the media flows it can fully classify at fixed offsets, so the
// host analyzer skips its per-packet floating-point metric work for
// those "covered" packets and folds the histograms into epoch records
// instead.
//
// Everything here obeys the same data-plane constraints as
// DataPlaneTelemetry (inline_telemetry.h): fixed-size register arrays
// indexed by a hash with collision-overwrite semantics, integer-only
// arithmetic (EWMA via arithmetic shift, power-of-two histogram bucket
// boundaries computed with a priority encoder / bit_width), and no
// per-packet allocation. Three register groups:
//
//   * per-flow jitter scratch (hash of ssrc+direction+media type →
//     last arrival + integer EWMA of the interarrival delta): each
//     covered packet emits |delta − ewma| into the global jitter
//     histogram. A colliding stream overwrites the slot (counted as an
//     eviction); histogram counters are global, so no samples are lost
//     — only the evicted stream's scratch state restarts.
//   * a spin-bit-like edge probe: an upstream (to-SFU) media packet
//     stamps its arrival into a slot keyed by hash(ssrc, seq, rtp_ts);
//     when the SFU's forwarded copy (identical ssrc/seq/ts, the fact
//     the host RtpCopyMatcher exploits) passes the tap downstream, the
//     arrival delta is an RTT sample for the tap↔SFU path — derived
//     without parsing media payloads, like tracking the QUIC spin bit.
//   * histogram counter registers: 16 buckets each for jitter and RTT,
//     P4TG-style with power-of-two boundaries (bucket b counts samples
//     in [2^b, 2^(b+1)) µs; bucket 0 also absorbs 0–1 µs; the top
//     bucket clamps).
//
// A DataPlaneTelemetry instance rides along per offload (one packet
// feed serves both), so its per-SSRC collision counter is finally
// surfaced through AnalyzerHealth / --frontend-stats.
//
// Register contents are cumulative for the life of the filter, exactly
// what a control plane polling switch registers observes. Collision and
// eviction patterns depend on how flows partition across per-shard
// offload instances, so — like the sketch tier's churn counters — the
// offload section is NOT part of the serial-vs-sharded bit-identity
// contract; the standard report sections remain so.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "capture/inline_telemetry.h"
#include "capture/resources.h"
#include "util/bytes.h"
#include "util/time.h"

namespace zpm::capture {

/// Histogram bucket count (fits a 4-bit priority-encoder result).
inline constexpr std::size_t kOffloadBuckets = 16;

/// Power-of-two bucketing: bucket b covers [2^b, 2^(b+1)) µs for b ≥ 1;
/// bucket 0 covers [0, 2) µs; values ≥ 2^15 µs clamp to the top bucket.
/// One subtract + count-leading-zeros — a single-stage switch primitive.
std::size_t offload_bucket(std::uint64_t us);

/// One cumulative histogram register group.
struct OffloadHistogram {
  std::array<std::uint64_t, kOffloadBuckets> buckets{};
  std::uint64_t samples = 0;

  void add(std::uint64_t us) {
    ++buckets[offload_bucket(us)];
    ++samples;
  }
  void merge(const OffloadHistogram& other) {
    for (std::size_t b = 0; b < kOffloadBuckets; ++b) buckets[b] += other.buckets[b];
    samples += other.samples;
  }
  bool operator==(const OffloadHistogram&) const = default;
};

/// The control-plane view of one offload instance's registers (merged
/// across shards by OffloadReport::merge; summing is exact because each
/// counter register is only ever incremented).
struct OffloadReport {
  OffloadHistogram jitter;  ///< |interarrival − EWMA| deviation, µs
  OffloadHistogram rtt;     ///< tap↔SFU probe round trips, µs
  std::uint64_t covered_packets = 0;   ///< packets the offload absorbed
  std::uint64_t probe_arms = 0;        ///< upstream stamps written
  std::uint64_t probe_collisions = 0;  ///< armed slot overwritten by another word
  std::uint64_t flow_evictions = 0;    ///< jitter scratch slot overwritten
  std::uint64_t telemetry_collisions = 0;  ///< embedded DataPlaneTelemetry

  void merge(const OffloadReport& other);
  /// probe + telemetry slot overwrites (the AnalyzerHealth feed).
  [[nodiscard]] std::uint64_t collisions() const {
    return probe_collisions + telemetry_collisions;
  }
  bool operator==(const OffloadReport&) const = default;
};

/// Deterministic big-endian codec for the epoch/snapshot formats and
/// the fuzz_offload fixpoint target.
void encode_offload_report(const OffloadReport& report, util::ByteWriter& w);
std::optional<OffloadReport> decode_offload_report(util::ByteReader& r);

/// Fields the data plane extracts from a covered media frame at fixed
/// offsets (no parsing): SFU direction byte, media encap type, and the
/// RTP seq/ts/ssrc behind the documented per-type payload offset.
struct OffloadFields {
  std::uint8_t direction = 0;   ///< zoom::kSfuDirToSfu or kSfuDirFromSfu
  std::uint8_t media_type = 0;  ///< zoom::MediaEncapType (media kinds only)
  std::uint16_t seq = 0;
  std::uint32_t rtp_ts = 0;
  std::uint32_t ssrc = 0;
  std::uint32_t clock_hz = 0;       ///< from the media kind (90 k / 48 k)
  std::uint32_t payload_bytes = 0;  ///< UDP payload length
};

/// Fixed-offset extraction from a raw Ethernet frame that already passed
/// the front end's Zoom shape probe (clean 20-byte IPv4 + UDP, SFU type
/// 5, known media type, known RTP payload type). Returns nullopt when
/// the frame is not a server media packet with a complete RTP fixed
/// header and a known SFU direction — those packets stay host-handled.
std::optional<OffloadFields> extract_offload_fields(
    std::span<const std::uint8_t> frame);

/// Register array sizing. Both counts must be powers of two.
struct OffloadConfig {
  std::size_t flow_slots = 1024;   ///< jitter scratch registers
  std::size_t probe_slots = 2048;  ///< spin-bit probe registers
};

/// What one on_media_packet() update did, so the caller can account
/// coverage and churn without re-reading the registers.
struct OffloadUpdate {
  std::uint8_t probe_collisions = 0;
  std::uint8_t flow_evictions = 0;
  std::uint8_t telemetry_collisions = 0;
};

/// See file comment.
class DataPlaneOffload {
 public:
  explicit DataPlaneOffload(OffloadConfig config = {});

  /// Absorbs one covered media packet (fields from
  /// extract_offload_fields, arrival from the capture record).
  OffloadUpdate on_media_packet(util::Timestamp arrival, const OffloadFields& f);

  /// Register contents so far (telemetry collisions folded in).
  [[nodiscard]] OffloadReport report() const;
  [[nodiscard]] const DataPlaneTelemetry& telemetry() const { return telemetry_; }
  [[nodiscard]] const OffloadConfig& config() const { return config_; }

 private:
  struct FlowSlot {
    std::uint64_t tag = 0;  ///< stream key; 0 = empty
    std::int64_t last_arrival_us = 0;
    std::int64_t ewma_us = 0;
    bool have_delta = false;
  };
  struct ProbeSlot {
    std::uint64_t tag = 0;  ///< probe word; 0 = empty
    std::int64_t arrival_us = 0;
  };

  OffloadConfig config_;
  std::vector<FlowSlot> flows_;
  std::vector<ProbeSlot> probes_;
  OffloadReport report_;
  DataPlaneTelemetry telemetry_;
};

/// Straightforward reimplementation of the update specification, kept
/// deliberately naive: the differential reference for fuzz_offload and
/// the bucketed-vs-exact CDF tests. Same register sizes and collision
/// semantics, but it additionally records every exact µs sample, and
/// its report is rebuilt from those samples with a loop-based bucket
/// search instead of the priority-encoder formulation.
class OffloadReference {
 public:
  explicit OffloadReference(OffloadConfig config = {});

  void on_media_packet(util::Timestamp arrival, const OffloadFields& f);

  /// Histograms rebuilt from the exact sample lists; must equal the
  /// DataPlaneOffload report fed the same packets, bit for bit.
  [[nodiscard]] OffloadReport report() const;
  [[nodiscard]] const std::vector<std::uint64_t>& jitter_samples_us() const {
    return jitter_samples_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& rtt_samples_us() const {
    return rtt_samples_;
  }

 private:
  struct FlowState {
    std::uint64_t tag = 0;
    std::int64_t last_arrival_us = 0;
    std::int64_t ewma_us = 0;
    bool have_delta = false;
  };
  struct ProbeState {
    std::uint64_t tag = 0;
    std::int64_t arrival_us = 0;
  };

  OffloadConfig config_;
  std::vector<FlowState> flows_;
  std::vector<ProbeState> probes_;
  std::vector<std::uint64_t> jitter_samples_;
  std::vector<std::uint64_t> rtt_samples_;
  std::uint64_t covered_packets_ = 0;
  std::uint64_t probe_arms_ = 0;
  std::uint64_t probe_collisions_ = 0;
  std::uint64_t flow_evictions_ = 0;
  DataPlaneTelemetry telemetry_;
};

/// Table 5 rows for the offload extension: the histogram stages and the
/// spin-bit probe, sized from `config`. Appended to
/// capture_program_components() when the offload is enabled.
std::vector<ComponentSpec> offload_program_components(
    const OffloadConfig& config = {});

}  // namespace zpm::capture
