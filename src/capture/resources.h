// Tofino-style resource model for the P4 capture program (paper §6.1,
// Table 5).
//
// Each functional component of the Fig. 13 pipeline declares its
// match-action structures (tables, register arrays, ALU ops, hash
// calculations, pipeline stages); the model converts those into
// fractions of a Tofino-like switch's resources. Stage and instruction
// counts reflect the program structure; TCAM/SRAM fractions are derived
// from the declared table/register sizes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace zpm::capture {

/// Match kinds with different memory homes.
enum class MatchType : std::uint8_t { Exact, Ternary, Lpm };

/// One match-action table.
struct TableSpec {
  std::string name;
  MatchType match = MatchType::Exact;
  std::size_t entries = 0;
  std::size_t key_bits = 0;
  std::size_t action_data_bits = 0;
};

/// One stateful register array.
struct RegisterSpec {
  std::string name;
  std::size_t entries = 0;
  std::size_t width_bits = 0;
};

/// A functional component of the pipeline (one Table 5 row).
struct ComponentSpec {
  std::string name;
  std::size_t stages = 0;      // physical stages the component spans
  std::size_t instructions = 0;  // VLIW instruction slots
  std::size_t hash_units = 0;    // hash distribution units
  std::vector<TableSpec> tables;
  std::vector<RegisterSpec> registers;
};

/// Capacity of the modelled switch (Tofino-like).
struct SwitchModel {
  std::size_t stages = 12;
  // TCAM: blocks of 512 entries x 44 bits.
  std::size_t tcam_blocks = 144;
  static constexpr std::size_t kTcamBlockEntries = 512;
  static constexpr std::size_t kTcamBlockBits = 44;
  // SRAM: blocks of 1024 entries x 128 bits.
  std::size_t sram_blocks = 960;
  static constexpr std::size_t kSramBlockEntries = 1024;
  static constexpr std::size_t kSramBlockBits = 128;
  std::size_t instruction_slots = 384;  // 32 per stage
  std::size_t hash_units = 12;
};

/// Resource usage of one component as fractions of the switch.
struct ResourceUsage {
  std::string component;
  std::size_t stages = 0;
  double tcam = 0.0;   // fraction of total TCAM bits
  double sram = 0.0;   // fraction of total SRAM bits
  double instructions = 0.0;
  double hash_units = 0.0;
};

/// Computes a component's usage against the switch model.
ResourceUsage estimate_usage(const ComponentSpec& spec, const SwitchModel& model);

}  // namespace zpm::capture
