#include "capture/offload.h"

#include <bit>

#include "zoom/classify.h"
#include "zoom/constants.h"

namespace zpm::capture {

namespace {

inline std::uint16_t be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}

inline std::uint32_t be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline std::uint64_t mix64(std::uint64_t key) {
  std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  return h;
}

/// Jitter scratch key: one stream per (SSRC, direction, media type).
/// Never zero — media_type is one of {13, 15, 16}.
inline std::uint64_t stream_tag(const OffloadFields& f) {
  return (std::uint64_t{f.ssrc} << 16) | (std::uint64_t{f.direction} << 8) |
         f.media_type;
}

/// Probe word: the same (ssrc, seq, rtp_ts) triple on both sides of the
/// SFU hop identifies the upstream packet and its forwarded copy.
inline std::uint64_t probe_word(const OffloadFields& f) {
  const std::uint64_t word = (std::uint64_t{f.ssrc} << 32) ^
                             (std::uint64_t{f.rtp_ts} << 16) ^ f.seq;
  return word == 0 ? 1 : word;  // 0 marks an empty slot
}

std::size_t pow2_at_least(std::size_t n) {
  std::size_t cap = 16;
  while (cap < n) cap <<= 1;
  return cap;
}

}  // namespace

std::size_t offload_bucket(std::uint64_t us) {
  if (us < 2) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(us)) - 1;
  return b < kOffloadBuckets - 1 ? b : kOffloadBuckets - 1;
}

void OffloadReport::merge(const OffloadReport& other) {
  jitter.merge(other.jitter);
  rtt.merge(other.rtt);
  covered_packets += other.covered_packets;
  probe_arms += other.probe_arms;
  probe_collisions += other.probe_collisions;
  flow_evictions += other.flow_evictions;
  telemetry_collisions += other.telemetry_collisions;
}

void encode_offload_report(const OffloadReport& report, util::ByteWriter& w) {
  w.u32be(static_cast<std::uint32_t>(kOffloadBuckets));
  for (std::uint64_t b : report.jitter.buckets) w.u64be(b);
  w.u64be(report.jitter.samples);
  for (std::uint64_t b : report.rtt.buckets) w.u64be(b);
  w.u64be(report.rtt.samples);
  w.u64be(report.covered_packets);
  w.u64be(report.probe_arms);
  w.u64be(report.probe_collisions);
  w.u64be(report.flow_evictions);
  w.u64be(report.telemetry_collisions);
}

std::optional<OffloadReport> decode_offload_report(util::ByteReader& r) {
  if (r.u32be() != kOffloadBuckets) return std::nullopt;
  OffloadReport report;
  auto histogram = [&](OffloadHistogram& h) {
    std::uint64_t sum = 0;
    for (std::uint64_t& b : h.buckets) {
      b = r.u64be();
      sum += b;
    }
    h.samples = r.u64be();
    return h.samples == sum;  // counters only ever increment together
  };
  if (!histogram(report.jitter) || !histogram(report.rtt)) return std::nullopt;
  report.covered_packets = r.u64be();
  report.probe_arms = r.u64be();
  report.probe_collisions = r.u64be();
  report.flow_evictions = r.u64be();
  report.telemetry_collisions = r.u64be();
  if (!r.ok()) return std::nullopt;
  return report;
}

std::optional<OffloadFields> extract_offload_fields(
    std::span<const std::uint8_t> d) {
  // The same clean fixed layout the front end's shape probe verifies:
  // Ethernet + exactly-20-byte IPv4, first fragment, complete UDP
  // header, server media port on either side.
  if (d.size() < 42) return std::nullopt;
  if (d[12] != 0x08 || d[13] != 0x00 || d[14] != 0x45) return std::nullopt;
  if ((be16(d.data() + 20) & 0x1fff) != 0) return std::nullopt;
  if (d[23] != 17) return std::nullopt;
  const std::uint16_t udp_len = be16(d.data() + 38);
  if (udp_len < 8) return std::nullopt;
  const std::uint16_t src_port = be16(d.data() + 34);
  const std::uint16_t dst_port = be16(d.data() + 36);
  if (src_port != zoom::kServerMediaPort && dst_port != zoom::kServerMediaPort)
    return std::nullopt;
  const std::size_t plen = std::min(d.size() - 42, std::size_t{udp_len} - 8);
  const std::uint8_t* pl = d.data() + 42;

  // SFU media encap with a known direction word and one of the three
  // RTP-carrying media types; the full 12-byte RTP fixed header must be
  // present so seq/ts/ssrc are real fields, not padding.
  if (plen < 9 || pl[0] != zoom::kSfuTypeMedia) return std::nullopt;
  const std::uint8_t direction = pl[7];
  if (direction != zoom::kSfuDirToSfu && direction != zoom::kSfuDirFromSfu)
    return std::nullopt;
  const std::uint8_t media_type = pl[8];
  const auto kind = zoom::media_kind_of(media_type);
  if (!kind) return std::nullopt;
  const std::size_t rtp_off = 8 + zoom::media_payload_offset(media_type);
  if (plen < rtp_off + 12) return std::nullopt;
  const std::uint8_t payload_type = pl[rtp_off + 1] & 0x7f;
  if (!zoom::is_known_rtp_payload_type(payload_type)) return std::nullopt;

  OffloadFields f;
  f.direction = direction;
  f.media_type = media_type;
  f.seq = be16(pl + rtp_off + 2);
  f.rtp_ts = be32(pl + rtp_off + 4);
  f.ssrc = be32(pl + rtp_off + 8);
  f.clock_hz =
      *kind == zoom::MediaKind::Audio ? zoom::kAudioClockHz : zoom::kVideoClockHz;
  f.payload_bytes = static_cast<std::uint32_t>(plen);
  return f;
}

// ---------------------------------------------------------------------------
// DataPlaneOffload

DataPlaneOffload::DataPlaneOffload(OffloadConfig config)
    : config_{pow2_at_least(config.flow_slots), pow2_at_least(config.probe_slots)},
      flows_(config_.flow_slots),
      probes_(config_.probe_slots),
      telemetry_(config_.flow_slots) {}

OffloadUpdate DataPlaneOffload::on_media_packet(util::Timestamp arrival,
                                                const OffloadFields& f) {
  OffloadUpdate update;
  ++report_.covered_packets;
  const std::int64_t arr = arrival.us();

  // The embedded per-SSRC telemetry sketch shares the packet feed.
  const std::uint64_t tcol_before = telemetry_.collisions();
  telemetry_.on_media_packet(arrival, f.ssrc, f.seq, f.rtp_ts, f.payload_bytes,
                             f.clock_hz);
  update.telemetry_collisions =
      static_cast<std::uint8_t>(telemetry_.collisions() - tcol_before);
  report_.telemetry_collisions += update.telemetry_collisions;

  // Interarrival-jitter scratch + global histogram. A sample exists
  // from the third packet of a stream's residency: the first stores the
  // arrival, the second seeds the EWMA with its delta.
  const std::uint64_t tag = stream_tag(f);
  FlowSlot& fs = flows_[mix64(tag) & (config_.flow_slots - 1)];
  if (fs.tag != tag) {
    if (fs.tag != 0) {
      update.flow_evictions = 1;
      ++report_.flow_evictions;
    }
    fs = FlowSlot{tag, arr, 0, false};
  } else {
    std::int64_t delta = arr - fs.last_arrival_us;
    if (delta < 0) delta = 0;  // hostile traces: timestamp regressions
    if (!fs.have_delta) {
      fs.ewma_us = delta;
      fs.have_delta = true;
    } else {
      const std::int64_t dev = delta - fs.ewma_us;
      report_.jitter.add(static_cast<std::uint64_t>(dev < 0 ? -dev : dev));
      fs.ewma_us += (delta - fs.ewma_us) >> 4;  // RFC 3550-style gain 1/16
    }
    fs.last_arrival_us = arr;
  }

  // Spin-bit probe: upstream stamps, the SFU's forwarded copy reads.
  const std::uint64_t word = probe_word(f);
  ProbeSlot& ps = probes_[mix64(word) & (config_.probe_slots - 1)];
  if (f.direction == zoom::kSfuDirToSfu) {
    if (ps.tag != 0 && ps.tag != word) {
      update.probe_collisions = 1;
      ++report_.probe_collisions;
    }
    ps = ProbeSlot{word, arr};
    ++report_.probe_arms;
  } else if (ps.tag == word) {
    const std::int64_t rtt = arr - ps.arrival_us;
    if (rtt >= 0) report_.rtt.add(static_cast<std::uint64_t>(rtt));
    ps.tag = 0;
  }
  return update;
}

OffloadReport DataPlaneOffload::report() const { return report_; }

// ---------------------------------------------------------------------------
// OffloadReference

OffloadReference::OffloadReference(OffloadConfig config)
    : config_{pow2_at_least(config.flow_slots), pow2_at_least(config.probe_slots)},
      flows_(config_.flow_slots),
      probes_(config_.probe_slots),
      telemetry_(config_.flow_slots) {}

void OffloadReference::on_media_packet(util::Timestamp arrival,
                                       const OffloadFields& f) {
  ++covered_packets_;
  const std::int64_t arr = arrival.us();
  telemetry_.on_media_packet(arrival, f.ssrc, f.seq, f.rtp_ts, f.payload_bytes,
                             f.clock_hz);

  const std::uint64_t tag = stream_tag(f);
  FlowState& fs = flows_[mix64(tag) & (config_.flow_slots - 1)];
  if (fs.tag != tag) {
    if (fs.tag != 0) ++flow_evictions_;
    fs = FlowState{tag, arr, 0, false};
  } else {
    std::int64_t delta = arr - fs.last_arrival_us;
    if (delta < 0) delta = 0;
    if (!fs.have_delta) {
      fs.ewma_us = delta;
      fs.have_delta = true;
    } else {
      const std::int64_t dev = delta - fs.ewma_us;
      jitter_samples_.push_back(static_cast<std::uint64_t>(dev < 0 ? -dev : dev));
      fs.ewma_us += (delta - fs.ewma_us) >> 4;
    }
    fs.last_arrival_us = arr;
  }

  const std::uint64_t word = probe_word(f);
  ProbeState& ps = probes_[mix64(word) & (config_.probe_slots - 1)];
  if (f.direction == zoom::kSfuDirToSfu) {
    if (ps.tag != 0 && ps.tag != word) ++probe_collisions_;
    ps = ProbeState{word, arr};
    ++probe_arms_;
  } else if (ps.tag == word) {
    const std::int64_t rtt = arr - ps.arrival_us;
    if (rtt >= 0) rtt_samples_.push_back(static_cast<std::uint64_t>(rtt));
    ps.tag = 0;
  }
}

OffloadReport OffloadReference::report() const {
  OffloadReport report;
  // Loop-based bucket search — an independent formulation of the same
  // [2^b, 2^(b+1)) boundaries the priority-encoder path computes.
  auto bucket_slow = [](std::uint64_t us) {
    std::size_t b = 0;
    while (b + 1 < kOffloadBuckets && us >= (std::uint64_t{1} << (b + 1))) ++b;
    return b;
  };
  for (std::uint64_t us : jitter_samples_) {
    ++report.jitter.buckets[bucket_slow(us)];
    ++report.jitter.samples;
  }
  for (std::uint64_t us : rtt_samples_) {
    ++report.rtt.buckets[bucket_slow(us)];
    ++report.rtt.samples;
  }
  report.covered_packets = covered_packets_;
  report.probe_arms = probe_arms_;
  report.probe_collisions = probe_collisions_;
  report.flow_evictions = flow_evictions_;
  report.telemetry_collisions = telemetry_.collisions();
  return report;
}

// ---------------------------------------------------------------------------
// Resource model

std::vector<ComponentSpec> offload_program_components(const OffloadConfig& config) {
  const std::size_t flow_slots = pow2_at_least(config.flow_slots);
  const std::size_t probe_slots = pow2_at_least(config.probe_slots);
  std::vector<ComponentSpec> components;

  // Histogram stages: media-type dispatch (clock + RTP offset as action
  // data), the jitter scratch read-modify-write, the bucket priority
  // encoder, and the two counter arrays. The embedded per-SSRC
  // telemetry registers ride in the same stages.
  ComponentSpec hist;
  hist.name = "RTT/Jitter Histograms";
  hist.stages = 4;
  hist.instructions = 14;
  hist.hash_units = 1;
  hist.tables.push_back(TableSpec{"media_type_dispatch", MatchType::Exact,
                                  /*entries=*/8, /*key_bits=*/8,
                                  /*action_data_bits=*/40});
  hist.registers.push_back(RegisterSpec{"jitter_scratch", flow_slots, 192});
  hist.registers.push_back(RegisterSpec{"jitter_hist", kOffloadBuckets, 64});
  hist.registers.push_back(RegisterSpec{"rtt_hist", kOffloadBuckets, 64});
  hist.registers.push_back(RegisterSpec{"ssrc_telemetry", flow_slots, 224});
  components.push_back(std::move(hist));

  // Spin-bit probe: one hash over (ssrc, seq, ts), a stamp/match/clear
  // register, and the RTT subtraction feeding the histogram above.
  ComponentSpec probe;
  probe.name = "Spin-Bit RTT Probe";
  probe.stages = 3;
  probe.instructions = 10;
  probe.hash_units = 1;
  probe.registers.push_back(RegisterSpec{"rtt_probe", probe_slots, 128});
  components.push_back(std::move(probe));
  return components;
}

}  // namespace zpm::capture
