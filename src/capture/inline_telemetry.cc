#include "capture/inline_telemetry.h"

#include <cstdlib>

#include "net/checksum.h"
#include "util/serial.h"

namespace zpm::capture {

DataPlaneTelemetry::DataPlaneTelemetry(std::size_t slots)
    : slots_(slots == 0 ? 1 : slots) {}

std::size_t DataPlaneTelemetry::index(std::uint32_t ssrc) const {
  std::uint64_t x = ssrc * 0x9e3779b97f4a7c15ULL;
  x ^= x >> 29;
  return static_cast<std::size_t>(x) % slots_.size();
}

void DataPlaneTelemetry::on_media_packet(util::Timestamp arrival,
                                         std::uint32_t ssrc, std::uint16_t seq,
                                         std::uint32_t rtp_ts, std::uint32_t bytes,
                                         std::uint32_t clock_hz) {
  Slot& slot = slots_[index(ssrc)];
  if (slot.valid && slot.snap.ssrc != ssrc) {
    // Collision: the register is reused by the new stream (data-plane
    // semantics — no chaining).
    ++collisions_;
    slot = Slot{};
  }
  if (!slot.valid) {
    slot.valid = true;
    slot.snap.ssrc = ssrc;
  }
  auto& s = slot.snap;
  ++s.packets;
  s.bytes += bytes;

  if (slot.have_prev && clock_hz > 0) {
    std::int64_t arrival_delta_us = arrival.us() - s.last_arrival_us;
    // Media delta in µs via integer math: delta_ticks * 1e6 / clock.
    std::int64_t ticks = util::serial_diff(slot.last_rtp_ts, rtp_ts);
    std::int64_t media_delta_us = ticks * 1'000'000 / clock_hz;
    if (media_delta_us >= 0) {
      std::int64_t d = arrival_delta_us - media_delta_us;
      std::int64_t abs_d = d < 0 ? -d : d;
      // J += (|D| - J) >> 4 — the RFC 3550 gain in shift form (signed
      // arithmetic so the estimate can decay).
      std::int64_t j = s.jitter_us;
      j += (abs_d - j) >> 4;
      s.jitter_us = static_cast<std::uint32_t>(j < 0 ? 0 : j);
    }
    auto seq_delta = util::serial_diff(slot.last_seq, seq);
    if (seq_delta > 1) s.seq_gaps += static_cast<std::uint32_t>(seq_delta - 1);
  }
  // Only advance the frontier on in-order packets.
  if (!slot.have_prev || util::serial_less(slot.last_seq, seq)) {
    slot.last_seq = seq;
    slot.last_rtp_ts = rtp_ts;
    s.last_arrival_us = arrival.us();
  }
  slot.have_prev = true;
}

std::optional<TelemetrySnapshot> DataPlaneTelemetry::query(std::uint32_t ssrc) const {
  const Slot& slot = slots_[index(ssrc)];
  if (!slot.valid || slot.snap.ssrc != ssrc) return std::nullopt;
  return slot.snap;
}

std::vector<TelemetrySnapshot> DataPlaneTelemetry::residents() const {
  std::vector<TelemetrySnapshot> out;
  for (const auto& slot : slots_)
    if (slot.valid) out.push_back(slot.snap);
  return out;
}

std::uint8_t dscp_for(zoom::MediaKind kind, bool is_fec) {
  if (is_fec) return 8;  // CS1: repair data is the first to drop
  switch (kind) {
    case zoom::MediaKind::Audio: return 46;        // EF
    case zoom::MediaKind::Video: return 34;        // AF41
    case zoom::MediaKind::ScreenShare: return 18;  // AF21
  }
  return 0;
}

bool annotate_dscp(net::RawPacket& pkt, std::uint8_t dscp) {
  if (pkt.data.size() < 34) return false;
  if (pkt.data[12] != 0x08 || pkt.data[13] != 0x00) return false;  // not IPv4
  if ((pkt.data[14] >> 4) != 4) return false;
  // Byte 15 = DSCP(6) | ECN(2); keep ECN bits.
  pkt.data[15] = static_cast<std::uint8_t>((dscp << 2) | (pkt.data[15] & 0x03));
  // Recompute the IPv4 header checksum.
  std::size_t ihl = (pkt.data[14] & 0x0f) * std::size_t{4};
  if (pkt.data.size() < 14 + ihl) return false;
  pkt.data[24] = 0;
  pkt.data[25] = 0;
  std::uint16_t csum = net::internet_checksum(
      std::span<const std::uint8_t>(pkt.data).subspan(14, ihl));
  pkt.data[24] = static_cast<std::uint8_t>(csum >> 8);
  pkt.data[25] = static_cast<std::uint8_t>(csum);
  return true;
}

std::optional<std::uint8_t> read_dscp(const net::RawPacket& pkt) {
  if (pkt.data.size() < 16) return std::nullopt;
  if (pkt.data[12] != 0x08 || pkt.data[13] != 0x00) return std::nullopt;
  return static_cast<std::uint8_t>(pkt.data[15] >> 2);
}

}  // namespace zpm::capture
