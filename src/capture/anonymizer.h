// Prefix-preserving IPv4 anonymization (the ONTAS-style component of
// the capture pipeline, §6.1 / Table 5).
//
// Two addresses sharing a k-bit prefix map to anonymized addresses
// sharing a k-bit prefix, so subnet structure (and therefore campus /
// non-campus distinctions) survives anonymization while real addresses
// do not. Deterministic under a secret key; implemented Crypto-PAN
// style with a keyed PRF per prefix.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/addr.h"
#include "net/packet.h"

namespace zpm::capture {

/// See file comment.
class PrefixPreservingAnonymizer {
 public:
  explicit PrefixPreservingAnonymizer(std::uint64_t key) : key_(key) {}

  /// Maps an address; deterministic for a fixed key.
  net::Ipv4Addr anonymize(net::Ipv4Addr ip) const;

  /// Rewrites src/dst of an Ethernet/IPv4 frame in place (recomputing
  /// the IP checksum). Frames that do not parse are left untouched.
  void anonymize_frame(net::RawPacket& pkt) const;

 private:
  /// Keyed PRF bit for a given prefix.
  bool prf_bit(std::uint32_t prefix, int len) const;
  std::uint64_t key_;
};

}  // namespace zpm::capture
