#include "capture/batch_filter.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "proto/stun.h"
#include "zoom/classify.h"
#include "zoom/constants.h"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace zpm::capture {

namespace {

// Internal probe flags (BatchFilter::Probe::flags). kProbeClean marks a
// packet net::decode_packet is guaranteed to accept via the fixed-offset
// fast layout (20-byte IPv4 header, complete L4 header), which is the
// precondition for every Reject.
constexpr std::uint32_t kProbeClean = 1u << 0;
constexpr std::uint32_t kUdp = 1u << 1;
constexpr std::uint32_t kTcp = 1u << 2;
constexpr std::uint32_t kStunPortTouch = 1u << 3;  // UDP port 3478 either side
constexpr std::uint32_t kZoomShape = 1u << 4;      // payload shape verified
constexpr std::uint32_t kArmCandidates = 1u << 5;  // register both endpoints

inline std::uint16_t be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((std::uint16_t{p[0]} << 8) | p[1]);
}

inline std::uint32_t be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

/// (ip << 16) | port — the same endpoint key core::P2pDetector uses.
inline std::uint64_t endpoint_key(std::uint32_t ip, std::uint16_t port) {
  return (std::uint64_t{ip} << 16) | port;
}

inline std::uint64_t endpoint_hash(std::uint64_t key) {
  std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
  h ^= h >> 32;
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// FlowDispatchTable

FlowDispatchTable::FlowDispatchTable(std::size_t initial_capacity) {
  std::size_t cap = 16;
  while (cap < initial_capacity) cap <<= 1;
  entries_.resize(cap);
  mask_ = cap - 1;
}

FlowDispatchTable::Hit FlowDispatchTable::lookup_or_insert(
    const net::FiveTuple& canonical, std::size_t shards) {
  // Protocol in the low byte keeps k2 non-zero for every real flow
  // (probe-clean packets are UDP or TCP), so k2 == 0 marks empty slots.
  const net::PackedFlowKey key(canonical);
  return lookup_or_insert(key, net::canonical_flow_hash(key), shards);
}

FlowDispatchTable::Hit FlowDispatchTable::lookup_or_insert(
    const net::PackedFlowKey& key, std::uint64_t hash, std::size_t shards) {
  std::size_t idx = hash & mask_;
  for (;;) {
    Entry& e = entries_[idx];
    if (e.k2 == 0) {
      if ((size_ + 1) * 4 > entries_.size() * 3) {
        grow();
        return lookup_or_insert(key, hash, shards);
      }
      e.k1 = key.k1;
      e.k2 = key.k2;
      // The owner shard the parallel dispatcher would have computed —
      // one canonical hash feeds table placement AND shard routing;
      // bit-compatible routing is the contract.
      e.shard = static_cast<std::uint32_t>(hash % (shards > 0 ? shards : 1));
      e.slot = static_cast<std::uint32_t>(next_slot_++);
      ++size_;
      return Hit{e.shard, e.slot, true};
    }
    if (e.k1 == key.k1 && e.k2 == key.k2) return Hit{e.shard, e.slot, false};
    idx = (idx + 1) & mask_;
  }
}

bool FlowDispatchTable::erase(const net::FiveTuple& canonical) {
  const net::PackedFlowKey key(canonical);
  std::size_t idx = net::canonical_flow_hash(key) & mask_;
  for (;;) {
    Entry& e = entries_[idx];
    if (e.k2 == 0) return false;
    if (e.k1 == key.k1 && e.k2 == key.k2) break;
    idx = (idx + 1) & mask_;
  }
  // Backward-shift deletion keeps probe chains intact without
  // tombstones: pull each displaced successor into the vacated slot.
  std::size_t hole = idx;
  for (std::size_t next = (hole + 1) & mask_;; next = (next + 1) & mask_) {
    Entry& e = entries_[next];
    if (e.k2 == 0) break;
    const std::size_t home = net::canonical_flow_hash(e.k1, e.k2) & mask_;
    // Move only if the entry's home slot does not lie in (hole, next] —
    // i.e. leaving it would break its probe chain once the hole empties.
    const bool reachable = ((next - home) & mask_) >= ((next - hole) & mask_);
    if (reachable) {
      entries_[hole] = e;
      hole = next;
    }
  }
  entries_[hole] = Entry{};
  --size_;
  return true;
}

void FlowDispatchTable::grow() {
  std::vector<Entry> old = std::move(entries_);
  entries_.assign(old.size() * 2, Entry{});
  mask_ = entries_.size() - 1;
  for (const Entry& e : old) {
    if (e.k2 == 0) continue;
    std::size_t idx = net::canonical_flow_hash(e.k1, e.k2) & mask_;
    while (entries_[idx].k2 != 0) idx = (idx + 1) & mask_;
    entries_[idx] = e;
  }
}

// ---------------------------------------------------------------------------
// BatchFilter

BatchFilter::BatchFilter(BatchFilterConfig config, Mode mode)
    : config_(std::move(config)) {
  switch (mode) {
    case Mode::ForceScalar: simd_ = false; break;
    case Mode::ForceSimd: simd_ = true; break;
    case Mode::Auto: simd_ = std::getenv("ZPM_NO_SIMD") == nullptr; break;
  }
  candidates_.assign(1 << 10, 0);
  candidates_mask_ = candidates_.size() - 1;
  if (config_.flow_memory_budget > 0) {
    const std::size_t shards = config_.shards > 0 ? config_.shards : 1;
    const std::size_t per_shard = config_.flow_memory_budget / shards;
    tiers_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) tiers_.emplace_back(per_shard);
  }
  if (config_.dataplane_offload) {
    // One offload per shard, mirroring the sketch tier: every update
    // happens on the producer thread inside classify(), so the register
    // partitioning (and its collision pattern) follows the shard map.
    const std::size_t shards = config_.shards > 0 ? config_.shards : 1;
    offloads_.reserve(shards);
    for (std::size_t i = 0; i < shards; ++i) offloads_.emplace_back(config_.offload);
  }
}

OffloadReport BatchFilter::offload_report() const {
  OffloadReport merged;
  for (const auto& offload : offloads_) merged.merge(offload.report());
  return merged;
}

bool BatchFilter::demote_flow(const net::FiveTuple& canonical,
                              const sketch::FlowStats& carried) {
  if (tiers_.empty()) return false;
  if (!flows_.erase(canonical)) return false;
  const net::PackedFlowKey key(canonical);
  const std::uint64_t hash = net::canonical_flow_hash(key);
  tiers_[hash % tiers_.size()].demote(key, hash, carried);
  return true;
}

std::uint64_t BatchFilter::sketch_evicted() const {
  std::uint64_t total = 0;
  for (const auto& tier : tiers_)
    total += tier.stats().evictions + tier.stats().demotions;
  return total;
}

sketch::TierReport BatchFilter::sketch_report(std::size_t limit) const {
  std::vector<const sketch::FlowTier*> tiers;
  tiers.reserve(tiers_.size());
  for (const auto& tier : tiers_) tiers.push_back(&tier);
  return sketch::merge_tiers(tiers, limit);
}

bool BatchFilter::candidate_contains(std::uint64_t key) const {
  if (key == 0) return candidates_has_zero_;
  std::size_t idx = endpoint_hash(key) & candidates_mask_;
  while (candidates_[idx] != 0) {
    if (candidates_[idx] == key) return true;
    idx = (idx + 1) & candidates_mask_;
  }
  return false;
}

void BatchFilter::candidate_insert(std::uint64_t key) {
  if (key == 0) {
    candidates_has_zero_ = true;
    return;
  }
  std::size_t idx = endpoint_hash(key) & candidates_mask_;
  while (candidates_[idx] != 0) {
    if (candidates_[idx] == key) return;
    idx = (idx + 1) & candidates_mask_;
  }
  if ((candidates_size_ + 1) * 4 > candidates_.size() * 3) {
    candidate_grow();
    candidate_insert(key);
    return;
  }
  candidates_[idx] = key;
  ++candidates_size_;
}

void BatchFilter::candidate_grow() {
  std::vector<std::uint64_t> old = std::move(candidates_);
  candidates_.assign(old.size() * 2, 0);
  candidates_mask_ = candidates_.size() - 1;
  for (std::uint64_t key : old) {
    if (key == 0) continue;
    std::size_t idx = endpoint_hash(key) & candidates_mask_;
    while (candidates_[idx] != 0) idx = (idx + 1) & candidates_mask_;
    candidates_[idx] = key;
  }
}

namespace {

/// Zoom payload shape probe for a probe-clean UDP packet: fixed-offset
/// discriminants only, no parsing. Purely informational — it refines an
/// Admit (kZoomShape) but never turns one into a Reject — so look-alike
/// traffic can lose the flag without risking the bit-identity contract.
std::uint32_t shape_flags(std::span<const std::uint8_t> d, std::uint16_t src_port,
                          std::uint16_t dst_port, bool stun_touch) {
  // Probe-clean guarantees d.size() >= 42 and udp_len >= 8.
  const std::size_t udp_payload = std::size_t{be16(d.data() + 38)} - 8;
  const std::size_t plen = std::min(d.size() - 42, udp_payload);
  const std::uint8_t* pl = d.data() + 42;
  if (src_port == zoom::kServerMediaPort || dst_port == zoom::kServerMediaPort) {
    // 8-byte SFU encap of type 5, then a documented media encap type;
    // for RTP-carrying types the payload-type byte must be in Table 3.
    if (plen < 9 || pl[0] != zoom::kSfuTypeMedia) return 0;
    const std::uint8_t media_type = pl[8];
    if (zoom::is_rtcp_encap_type(media_type)) return kZoomShape;
    if (!zoom::media_kind_of(media_type)) return 0;
    const std::size_t rtp_off = 8 + zoom::media_payload_offset(media_type);
    if (plen < rtp_off + 2) return 0;
    const std::uint8_t payload_type = pl[rtp_off + 1] & 0x7f;
    return zoom::is_known_rtp_payload_type(payload_type) ? kZoomShape : 0;
  }
  if (stun_touch) {
    // RFC 5389 fixed prefix: zero top bits + magic cookie.
    if (plen < 8 || (pl[0] & 0xc0) != 0) return 0;
    if (be32(pl + 4) == proto::kStunMagicCookie) return kZoomShape;
  }
  return 0;
}

}  // namespace

/// Scalar reference probe: the byte-by-byte specification of the
/// per-packet facts. The SWAR/SSE2 probe must produce verdict-relevant
/// fields bit-identically (fuzz_batch_filter diffs them on arbitrary
/// bytes); any lane the vector path cannot handle falls back to this.
BatchFilter::Probe BatchFilter::probe_one_scalar(std::span<const std::uint8_t> d) {
  BatchFilter::Probe p;
  const std::size_t n = d.size();
  // Ethernet + the IPv4 header fields through the protocol byte.
  if (n < 24) return p;
  if (d[12] != 0x08 || d[13] != 0x00) return p;  // ethertype != IPv4
  const std::uint8_t vihl = d[14];
  if ((vihl >> 4) != 4) return p;
  const std::uint8_t ihl = vihl & 0x0f;
  if (ihl < 5) return p;
  p.proto = d[23];
  const bool not_fragment = (be16(d.data() + 20) & 0x1fff) == 0;

  // Candidate arming is deliberately more liberal than the clean probe:
  // the analyzer registers P2P candidates from any *decodable* STUN
  // exchange, including IPv4-with-options packets the clean probe
  // refuses. Missing one of those would let the filter reject a P2P
  // flow the analyzer would have counted; over-arming merely admits a
  // few extra packets into the full parse.
  const std::size_t l4 = 14 + std::size_t{ihl} * 4;
  if (p.proto == 17 && not_fragment && n >= l4 + 4) {
    const std::uint16_t sp = be16(d.data() + l4);
    const std::uint16_t dp = be16(d.data() + l4 + 2);
    if (sp == zoom::kStunServerPort || dp == zoom::kStunServerPort) {
      p.flags |= kArmCandidates;
      p.src_ip = be32(d.data() + 26);
      p.dst_ip = be32(d.data() + 30);
      p.src_port = sp;
      p.dst_port = dp;
    }
  }

  // Clean layout: exactly-20-byte IPv4 header, first fragment only,
  // plausible total length, complete UDP/TCP header — the conditions
  // under which net::decode_packet cannot fail.
  if (ihl != 5 || !not_fragment) return p;
  if (be16(d.data() + 16) < 20) return p;  // total_length < header_length
  // Address/port reads stay behind the per-protocol length checks: a
  // frame cut anywhere inside the IPv4 header (n in [24, 33]) must not
  // be dereferenced past its end (fuzz_batch_filter regression).
  if (p.proto == 17) {
    if (n < 42) return p;
    p.src_ip = be32(d.data() + 26);
    p.dst_ip = be32(d.data() + 30);
    p.src_port = be16(d.data() + 34);
    p.dst_port = be16(d.data() + 36);
    if (be16(d.data() + 38) < 8) return p;  // UDP length field
    p.flags |= kProbeClean | kUdp;
    const bool stun_touch = p.src_port == zoom::kStunServerPort ||
                            p.dst_port == zoom::kStunServerPort;
    if (stun_touch) p.flags |= kStunPortTouch;
    p.flags |= shape_flags(d, p.src_port, p.dst_port, stun_touch);
  } else if (p.proto == 6) {
    if (n < 54) return p;
    const std::size_t data_offset = d[46] >> 4;
    if (data_offset < 5 || n < 34 + data_offset * 4) return p;
    p.src_ip = be32(d.data() + 26);
    p.dst_ip = be32(d.data() + 30);
    p.src_port = be16(d.data() + 34);
    p.dst_port = be16(d.data() + 36);
    p.flags |= kProbeClean | kTcp;
  }
  return p;
}

void BatchFilter::probe_batch_scalar(std::span<const net::RawPacketView> batch) {
  probes_.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    probes_[i] = probe_one_scalar(batch[i].data);
}

void BatchFilter::probe_batch_simd(std::span<const net::RawPacketView> batch) {
  probes_.resize(batch.size());

#if defined(__SSE2__)
  // One masked 16-byte compare over frame bytes 12..27 answers the
  // branchy header questions at once: ethertype == IPv4, version 4 with
  // a 20-byte header (0x45), fragment offset 0. A single movemask test
  // replaces five data-dependent branches per packet.
  alignas(16) static constexpr std::uint8_t kMaskBytes[16] = {
      0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0x1f, 0xff, 0, 0, 0, 0, 0, 0};
  alignas(16) static constexpr std::uint8_t kPatBytes[16] = {
      0x08, 0x00, 0x45, 0, 0, 0, 0, 0, 0x00, 0x00, 0, 0, 0, 0, 0, 0};
  const __m128i mask = _mm_load_si128(reinterpret_cast<const __m128i*>(kMaskBytes));
  const __m128i pat = _mm_load_si128(reinterpret_cast<const __m128i*>(kPatBytes));
#elif defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  // SWAR fallback: the same masked compare with two 64-bit words
  // (bytes 12..19 and 16..23 of the frame, little-endian loads).
  constexpr std::uint64_t kMask0 = 0x0000000000ffffffULL;  // d[12..14]
  constexpr std::uint64_t kPat0 = 0x0000000000450008ULL;   // 08 00 45
  constexpr std::uint64_t kMask1 = 0x0000ff1f00000000ULL;  // d[20..21] frag bits
  constexpr std::uint64_t kPat1 = 0;
#endif

  for (std::size_t i = 0; i < batch.size(); ++i) {
    std::span<const std::uint8_t> d = batch[i].data;
    const std::size_t n = d.size();
    // Short frames (and everything the vector screen rejects below) go
    // through the scalar reference — bit-identical by construction.
    if (n < 44) {
      probes_[i] = probe_one_scalar(d);
      continue;
    }

    bool fast_header;
#if defined(__SSE2__)
    const __m128i chunk =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(d.data() + 12));
    fast_header =
        _mm_movemask_epi8(_mm_cmpeq_epi8(_mm_and_si128(chunk, mask), pat)) == 0xffff;
#elif defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
    std::uint64_t w0;
    std::uint64_t w1;
    std::memcpy(&w0, d.data() + 12, 8);
    std::memcpy(&w1, d.data() + 16, 8);
    fast_header = (w0 & kMask0) == kPat0 && (w1 & kMask1) == kPat1;
#else
    fast_header = false;
#endif
    if (!fast_header) {
      // Odd layout (non-IPv4, IP options, fragment): the scalar probe
      // settles it, including the liberal candidate-arming rule.
      probes_[i] = probe_one_scalar(d);
      continue;
    }

    // Fast-header packets: ethertype IPv4, 20-byte header, fragment
    // offset 0. Field extraction is plain loads; the remaining checks
    // mirror probe_one_scalar's clean path exactly.
    Probe p;
    p.proto = d[23];
    p.src_ip = be32(d.data() + 26);
    p.dst_ip = be32(d.data() + 30);
    const bool total_len_ok = be16(d.data() + 16) >= 20;
    if (p.proto == 17) {
      p.src_port = be16(d.data() + 34);
      p.dst_port = be16(d.data() + 36);
      const bool stun_touch = p.src_port == zoom::kStunServerPort ||
                              p.dst_port == zoom::kStunServerPort;
      if (stun_touch) p.flags |= kArmCandidates;
      if (total_len_ok && be16(d.data() + 38) >= 8) {
        p.flags |= kProbeClean | kUdp;
        if (stun_touch) p.flags |= kStunPortTouch;
        p.flags |= shape_flags(d, p.src_port, p.dst_port, stun_touch);
      }
    } else if (p.proto == 6 && total_len_ok && n >= 54) {
      const std::size_t data_offset = d[46] >> 4;
      if (data_offset >= 5 && n >= 34 + data_offset * 4) {
        p.src_port = be16(d.data() + 34);
        p.dst_port = be16(d.data() + 36);
        p.flags |= kProbeClean | kTcp;
      }
    }
    probes_[i] = p;
  }
}

void BatchFilter::resolve(std::span<const net::RawPacketView> batch,
                          BatchVerdicts& out) {
  const zoom::ServerDb& db = config_.server_db;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Probe& p = probes_[i];
    ++stats_.packets;
    out.flags[i] = 0;
    out.shard[i] = 0;
    out.slot[i] = 0;
    out.flow_hash[i] = 0;

    // Arm first, then classify: the packet's own endpoints joining the
    // candidate set only ever promotes a would-be Reject to Admit
    // (over-admission is safe; under-arming is not).
    if (p.flags & kArmCandidates) {
      candidate_insert(endpoint_key(p.src_ip, p.src_port));
      candidate_insert(endpoint_key(p.dst_ip, p.dst_port));
    }

    if (!(p.flags & kProbeClean)) {
      out.verdicts[i] = Verdict::FullParse;
      ++stats_.full_parse;
      continue;
    }

    const bool src_server = db.contains(net::Ipv4Addr(p.src_ip));
    const bool dst_server = db.contains(net::Ipv4Addr(p.dst_ip));
    bool admit;
    if (p.flags & kUdp) {
      admit = src_server || dst_server ||
              candidate_contains(endpoint_key(p.src_ip, p.src_port)) ||
              candidate_contains(endpoint_key(p.dst_ip, p.dst_port));
    } else {
      // TCP: the analyzer only ever looks at server-involved flows.
      admit = src_server || dst_server;
    }
    // One canonical hash per packet feeds the sketch tier, the dispatch
    // table and the owner-shard choice alike (net::canonical_flow_hash).
    const net::FiveTuple canonical =
        net::FiveTuple{net::Ipv4Addr(p.src_ip), net::Ipv4Addr(p.dst_ip),
                       p.src_port, p.dst_port, p.proto}
            .canonical();
    const net::PackedFlowKey key(canonical);
    const std::uint64_t hash = net::canonical_flow_hash(key);
    out.flow_hash[i] = hash;

    if (!admit) {
      out.verdicts[i] = Verdict::Reject;
      ++stats_.rejected;
      // The sketch tier summarizes what the filter rejects: counts only,
      // no decode, no verdict influence — captured wire bytes, same as
      // the analyzer's total-bytes accounting for these packets.
      if (!tiers_.empty())
        tiers_[hash % tiers_.size()].absorb(
            key, hash, static_cast<std::uint32_t>(batch[i].data.size()));
      continue;
    }

    out.verdicts[i] = Verdict::Admit;
    ++stats_.admitted;
    std::uint8_t flags = 0;
    if ((p.flags & kUdp) && (p.flags & kStunPortTouch)) {
      flags |= kFlagStunPort;
      ++stats_.stun_flagged;
    }
    if (p.flags & kZoomShape) {
      flags |= kFlagZoomShaped;
      ++stats_.zoom_shaped;
    }
    out.flags[i] = flags;

    const FlowDispatchTable::Hit hit =
        flows_.lookup_or_insert(key, hash, config_.shards);
    out.shard[i] = hit.shard;
    out.slot[i] = hit.slot;

    // Data-plane metric offload: server media packets whose jitter/RTT
    // fields sit at fixed offsets are absorbed by the owner shard's
    // register stage and marked covered, so the host dispatch path
    // skips its per-packet metric updates for them. Coverage never
    // changes a verdict — uncovered flows are untouched either way.
    if (!offloads_.empty() && (p.flags & kUdp) && (p.flags & kZoomShape)) {
      if (const auto fields = extract_offload_fields(batch[i].data)) {
        const OffloadUpdate u =
            offloads_[hit.shard].on_media_packet(batch[i].ts, *fields);
        out.flags[i] |= kFlagOffloadCovered;
        ++stats_.offload_covered;
        stats_.offload_collisions += u.probe_collisions + u.telemetry_collisions;
        stats_.offload_evictions += u.flow_evictions;
      }
    }

    // First Admit of a flow the tier had already summarized (rejected
    // until a STUN exchange armed its endpoint): hand the accumulated
    // aggregate to exact tracking.
    if (hit.inserted && !tiers_.empty()) {
      const sketch::FlowStats carried =
          tiers_[hash % tiers_.size()].promote(key, hash);
      if (carried.packets > 0)
        out.promotions.push_back(
            BatchVerdicts::Promotion{canonical, hit.shard, carried});
    }
  }
}

void BatchFilter::classify(std::span<const net::RawPacketView> batch,
                           BatchVerdicts& out) {
  out.resize(batch.size());
  if (batch.empty()) return;
  if (simd_) {
    probe_batch_simd(batch);
    ++stats_.simd_batches;
  } else {
    probe_batch_scalar(batch);
    ++stats_.scalar_batches;
  }
  resolve(batch, out);
}

}  // namespace zpm::capture
