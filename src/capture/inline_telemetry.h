// In-network monitoring and control — the §8 future-work extension.
//
// The paper observes that its metrics "can be implemented in a
// streaming fashion and are amenable to data-plane implementation",
// with control actions like annotating packets (e.g. DSCP) by type or
// importance. This module provides both halves under data-plane
// constraints: fixed-size register arrays indexed by a hash (collisions
// overwrite, as on a switch), integer-only arithmetic, no per-packet
// allocation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/packet.h"
#include "util/time.h"
#include "zoom/constants.h"

namespace zpm::capture {

/// Per-stream telemetry snapshot, as readable from the register arrays.
struct TelemetrySnapshot {
  std::uint32_t ssrc = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  /// Integer EWMA of |interarrival - media delta| in microseconds,
  /// RFC 3550-style with shift-by-4 gain (data planes have no floats).
  std::uint32_t jitter_us = 0;
  std::uint32_t seq_gaps = 0;  // observed forward jumps > 1
  std::int64_t last_arrival_us = 0;
};

/// Streaming per-SSRC metric sketch with switch-like resource behaviour.
class DataPlaneTelemetry {
 public:
  /// `slots` should be a power of two (register array size).
  explicit DataPlaneTelemetry(std::size_t slots = 1024);

  /// Processes one media packet (already dissected by the parser stage).
  /// `clock_hz` converts the RTP timestamp delta to wall time.
  void on_media_packet(util::Timestamp arrival, std::uint32_t ssrc,
                       std::uint16_t seq, std::uint32_t rtp_ts,
                       std::uint32_t bytes, std::uint32_t clock_hz);

  /// Reads the slot currently holding `ssrc`; nullopt if evicted by a
  /// colliding stream (exactly what a control plane polling switch
  /// registers would observe).
  [[nodiscard]] std::optional<TelemetrySnapshot> query(std::uint32_t ssrc) const;

  /// Streams currently resident across all slots.
  [[nodiscard]] std::vector<TelemetrySnapshot> residents() const;
  [[nodiscard]] std::uint64_t collisions() const { return collisions_; }

 private:
  struct Slot {
    bool valid = false;
    TelemetrySnapshot snap;
    std::uint16_t last_seq = 0;
    std::uint32_t last_rtp_ts = 0;
    bool have_prev = false;
  };
  std::size_t index(std::uint32_t ssrc) const;

  std::vector<Slot> slots_;
  std::uint64_t collisions_ = 0;
};

/// DSCP codepoints for Zoom media classes (EF for audio, AF41 for
/// video, AF21 for screen share, CS1 for FEC — importance-based marking
/// as §8 suggests).
std::uint8_t dscp_for(zoom::MediaKind kind, bool is_fec);

/// Rewrites the DSCP bits of an Ethernet/IPv4 frame in place (fixing the
/// IP checksum). Returns false if the frame is not IPv4.
bool annotate_dscp(net::RawPacket& pkt, std::uint8_t dscp);

/// Reads back the DSCP of a frame (testing / verification).
std::optional<std::uint8_t> read_dscp(const net::RawPacket& pkt);

}  // namespace zpm::capture
