#include "capture/filter.h"

#include "proto/stun.h"
#include "zoom/constants.h"

namespace zpm::capture {

CaptureFilter::CaptureFilter(CaptureConfig config)
    : config_(std::move(config)),
      anonymizer_(config_.anonymization_key),
      p2p_sources_(config_.p2p_register_entries),
      p2p_destinations_(config_.p2p_register_entries) {}

bool CaptureFilter::is_campus(net::Ipv4Addr ip) const {
  for (const auto& subnet : config_.campus_subnets)
    if (subnet.contains(ip)) return true;
  return false;
}

std::size_t CaptureFilter::reg_index(net::Ipv4Addr ip, std::uint16_t port) const {
  // CRC-like hash as the data plane would compute.
  std::uint64_t x = (static_cast<std::uint64_t>(ip.value()) << 16) | port;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return static_cast<std::size_t>(x) & (config_.p2p_register_entries - 1);
}

void CaptureFilter::register_endpoint(std::vector<RegisterEntry>& array,
                                      net::Ipv4Addr ip, std::uint16_t port,
                                      util::Timestamp t) {
  RegisterEntry& e = array[reg_index(ip, port)];
  e.ip = ip.value();
  e.port = port;
  e.stamp_us = t.us();
  e.valid = true;
}

bool CaptureFilter::lookup_endpoint(const std::vector<RegisterEntry>& array,
                                    net::Ipv4Addr ip, std::uint16_t port,
                                    util::Timestamp t) const {
  const RegisterEntry& e = array[reg_index(ip, port)];
  if (!e.valid || e.ip != ip.value() || e.port != port) return false;
  return t.us() - e.stamp_us <= config_.p2p_register_timeout.us();
}

std::optional<net::RawPacket> CaptureFilter::process(const net::RawPacket& pkt) {
  ++counters_.processed;
  auto view = net::decode_packet(pkt);
  if (!view) {
    ++counters_.dropped;
    return std::nullopt;
  }

  bool src_is_zoom = config_.server_db.contains(view->ip.src);
  bool dst_is_zoom = config_.server_db.contains(view->ip.dst);
  bool keep = false;

  if (src_is_zoom || dst_is_zoom) {
    // Stateless branch of Fig. 13: anything to/from a Zoom subnet.
    ++counters_.zoom_ip_matched;
    keep = true;
    // STUN packets additionally arm the P2P registers: the campus
    // peer's (ip, port) is the future P2P endpoint (§4.1).
    if (view->l4 == net::L4Proto::Udp &&
        (view->udp.dst_port == proto::kStunPort ||
         view->udp.src_port == proto::kStunPort) &&
        proto::looks_like_stun(view->l4_payload)) {
      ++counters_.stun_observed;
      if (view->udp.dst_port == proto::kStunPort) {
        register_endpoint(p2p_sources_, view->ip.src, view->udp.src_port, view->ts);
        register_endpoint(p2p_destinations_, view->ip.src, view->udp.src_port,
                          view->ts);
      } else {
        register_endpoint(p2p_sources_, view->ip.dst, view->udp.dst_port, view->ts);
        register_endpoint(p2p_destinations_, view->ip.dst, view->udp.dst_port,
                          view->ts);
      }
    }
  } else if (view->l4 == net::L4Proto::Udp) {
    // Stateful branch: non-server UDP whose campus endpoint was armed
    // by a recent STUN exchange.
    bool src_campus = is_campus(view->ip.src);
    bool dst_campus = is_campus(view->ip.dst);
    if ((src_campus &&
         lookup_endpoint(p2p_sources_, view->ip.src, view->udp.src_port, view->ts)) ||
        (dst_campus && lookup_endpoint(p2p_destinations_, view->ip.dst,
                                       view->udp.dst_port, view->ts))) {
      ++counters_.p2p_matched;
      keep = true;
    }
  }

  if (!keep) {
    ++counters_.dropped;
    return std::nullopt;
  }
  ++counters_.passed;
  net::RawPacket out = pkt;
  if (config_.anonymize) anonymizer_.anonymize_frame(out);
  return out;
}

std::vector<ResourceUsage> CaptureFilter::resource_report(
    const SwitchModel& model) const {
  std::vector<ResourceUsage> report;
  for (const auto& spec : capture_program_components(config_))
    report.push_back(estimate_usage(spec, model));
  return report;
}

std::vector<ComponentSpec> capture_program_components(const CaptureConfig& config) {
  std::vector<ComponentSpec> specs;

  // Zoom IP match: one LPM table over the published subnet list plus a
  // result table. Cheap and stateless.
  {
    ComponentSpec c;
    c.name = "Zoom IP Match";
    c.stages = 2;
    c.instructions = 5;
    c.hash_units = 0;
    c.tables.push_back(TableSpec{"zoom_subnets_src", MatchType::Lpm, 356, 32, 8});
    c.tables.push_back(TableSpec{"zoom_subnets_dst", MatchType::Lpm, 356, 32, 8});
    specs.push_back(std::move(c));
  }

  // P2P detection: STUN port match, campus match, then two register
  // arrays keyed by hash(ip, port) — the SRAM- and hash-heavy part.
  {
    ComponentSpec c;
    c.name = "P2P Detection";
    c.stages = 7;
    c.instructions = 13;
    c.hash_units = 2;  // one per register array
    c.tables.push_back(TableSpec{"stun_port", MatchType::Ternary, 8, 32, 4});
    c.tables.push_back(TableSpec{"campus_subnets", MatchType::Lpm, 1024, 32, 4});
    auto entries = config.p2p_register_entries;
    // Each entry stores ip (32) + port (16) + a coarse 4-bit timestamp
    // epoch for the timeout check — the data plane cannot afford full
    // 64-bit timestamps per slot.
    c.registers.push_back(RegisterSpec{"p2p_sources", entries, 52});
    c.registers.push_back(RegisterSpec{"p2p_destinations", entries, 52});
    specs.push_back(std::move(c));
  }

  // Anonymization (ONTAS-style): per-bit prefix PRF pipeline; the most
  // complex component (11 stages), mostly instructions + one hash unit.
  {
    ComponentSpec c;
    c.name = "Anonymization";
    c.stages = 11;
    c.instructions = 20;
    c.hash_units = 1;
    c.tables.push_back(TableSpec{"anon_prefix_src", MatchType::Ternary, 688, 33, 33});
    c.tables.push_back(TableSpec{"anon_prefix_dst", MatchType::Ternary, 688, 33, 33});
    c.registers.push_back(RegisterSpec{"anon_state", 4096, 64});
    specs.push_back(std::move(c));
  }
  return specs;
}

}  // namespace zpm::capture
