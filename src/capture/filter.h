// Software model of the P4/Tofino Zoom packet filter (paper §6.1,
// Fig. 13): all campus packets in, only (anonymized) Zoom packets out.
//
// Mirrors the data-plane structure faithfully, including its
// limitations: the P2P state lives in fixed-size register arrays
// indexed by a hash of (ip, port) — colliding entries overwrite each
// other, exactly as they would on the switch.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "capture/anonymizer.h"
#include "capture/resources.h"
#include "net/packet.h"
#include "zoom/server_db.h"

namespace zpm::capture {

/// Filter configuration.
struct CaptureConfig {
  zoom::ServerDb server_db = zoom::ServerDb::official();
  std::vector<net::Ipv4Subnet> campus_subnets;
  bool anonymize = true;
  std::uint64_t anonymization_key = 0x5eed'cafe'f00d'd00dULL;
  /// P2P register entries age out after this long (data-plane timeout).
  util::Duration p2p_register_timeout = util::Duration::seconds(120);
  /// Register array size (power of two); collisions overwrite.
  std::size_t p2p_register_entries = 1 << 17;
};

/// Per-run counters (the paper instrumented the same two series for
/// Fig. 17: processed vs. filtered packets).
struct CaptureCounters {
  std::uint64_t processed = 0;
  std::uint64_t passed = 0;          // written out as Zoom
  std::uint64_t zoom_ip_matched = 0;
  std::uint64_t stun_observed = 0;
  std::uint64_t p2p_matched = 0;
  std::uint64_t dropped = 0;
};

/// See file comment.
class CaptureFilter {
 public:
  explicit CaptureFilter(CaptureConfig config);

  /// Processes one packet: nullopt = dropped (non-Zoom); otherwise the
  /// packet as it would reach the collection server (anonymized when
  /// configured).
  std::optional<net::RawPacket> process(const net::RawPacket& pkt);

  [[nodiscard]] const CaptureCounters& counters() const { return counters_; }

  /// The pipeline's functional components with their resource usage
  /// (Table 5). Static property of the program, not of the traffic.
  [[nodiscard]] std::vector<ResourceUsage> resource_report(
      const SwitchModel& model = {}) const;

 private:
  struct RegisterEntry {
    std::uint32_t ip = 0;
    std::uint16_t port = 0;
    std::int64_t stamp_us = 0;
    bool valid = false;
  };

  bool is_campus(net::Ipv4Addr ip) const;
  std::size_t reg_index(net::Ipv4Addr ip, std::uint16_t port) const;
  void register_endpoint(std::vector<RegisterEntry>& array, net::Ipv4Addr ip,
                         std::uint16_t port, util::Timestamp t);
  bool lookup_endpoint(const std::vector<RegisterEntry>& array, net::Ipv4Addr ip,
                       std::uint16_t port, util::Timestamp t) const;

  CaptureConfig config_;
  CaptureCounters counters_;
  PrefixPreservingAnonymizer anonymizer_;
  std::vector<RegisterEntry> p2p_sources_;
  std::vector<RegisterEntry> p2p_destinations_;
};

/// The Fig.-13 program's component inventory (shared by the filter's
/// resource report and bench_table5).
std::vector<ComponentSpec> capture_program_components(const CaptureConfig& config);

}  // namespace zpm::capture
