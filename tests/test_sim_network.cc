// Path model: delay/jitter/loss and congestion episodes.
#include <gtest/gtest.h>

#include "sim/network.h"

namespace zpm::sim {
namespace {

using util::Timestamp;

TEST(CongestionEpisode, IntensityProfile) {
  CongestionEpisode ep;
  ep.start = Timestamp::from_seconds(100);
  ep.end = Timestamp::from_seconds(120);
  ep.ramp = 0.25;  // 5 s ramps
  EXPECT_EQ(ep.intensity(Timestamp::from_seconds(99)), 0.0);
  EXPECT_EQ(ep.intensity(Timestamp::from_seconds(121)), 0.0);
  EXPECT_NEAR(ep.intensity(Timestamp::from_seconds(102.5)), 0.5, 1e-9);
  EXPECT_EQ(ep.intensity(Timestamp::from_seconds(110)), 1.0);
  EXPECT_NEAR(ep.intensity(Timestamp::from_seconds(118.75)), 0.25, 1e-9);
}

TEST(PathModel, DelayAboveBaseAndReasonable) {
  PathModel::Params p;
  p.base_delay_ms = 20.0;
  p.jitter_ms = 1.0;
  p.spike_prob = 0.0;
  PathModel path(p, util::Rng(1));
  Timestamp t = Timestamp::from_seconds(0);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    auto d = path.sample_delay(t);
    EXPECT_GE(d.ms(), 20.0);
    EXPECT_LT(d.ms(), 60.0);
    sum += d.ms();
  }
  EXPECT_NEAR(sum / 5000, 21.0, 0.3);  // base + mean(Exp(1 ms))
}

TEST(PathModel, CongestionAddsDelayAndLoss) {
  PathModel::Params p;
  p.base_delay_ms = 10.0;
  p.jitter_ms = 0.5;
  p.spike_prob = 0.0;
  p.loss = 0.0;
  PathModel path(p, util::Rng(2));
  CongestionEpisode ep;
  ep.start = Timestamp::from_seconds(100);
  ep.end = Timestamp::from_seconds(110);
  ep.extra_delay_ms = 40.0;
  ep.extra_loss = 0.2;
  path.add_episode(ep);

  Timestamp quiet = Timestamp::from_seconds(50);
  Timestamp busy = Timestamp::from_seconds(105);
  double quiet_sum = 0, busy_sum = 0;
  int quiet_drops = 0, busy_drops = 0;
  for (int i = 0; i < 3000; ++i) {
    quiet_sum += path.sample_delay(quiet).ms();
    busy_sum += path.sample_delay(busy).ms();
    quiet_drops += path.drops(quiet) ? 1 : 0;
    busy_drops += path.drops(busy) ? 1 : 0;
  }
  EXPECT_GT(busy_sum / 3000, quiet_sum / 3000 + 20.0);
  EXPECT_EQ(quiet_drops, 0);
  EXPECT_GT(busy_drops, 300);
  EXPECT_EQ(path.congestion(quiet), 0.0);
  EXPECT_EQ(path.congestion(busy), 1.0);
}

TEST(PathModel, LossRateMatchesConfig) {
  PathModel::Params p;
  p.loss = 0.01;
  PathModel path(p, util::Rng(3));
  int drops = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    drops += path.drops(Timestamp::from_seconds(1)) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.01, 0.002);
}

}  // namespace
}  // namespace zpm::sim
