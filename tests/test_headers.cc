// Ethernet / IPv4 / UDP / TCP parsing, serialization and checksums.
#include <gtest/gtest.h>

#include "net/checksum.h"
#include "net/headers.h"
#include "util/bytes.h"

namespace zpm::net {
namespace {

TEST(Checksum, KnownVector) {
  // Classic RFC 1071 example.
  auto data = util::from_hex("0001 f203 f4f5 f6f7");
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero) {
  auto even = util::from_hex("ab00");
  auto odd = util::from_hex("ab");
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, AccumulatorMatchesOneShot) {
  auto data = util::from_hex("deadbeef0102030405");
  ChecksumAccumulator acc;
  acc.add(std::span<const std::uint8_t>(data).subspan(0, 3));  // odd split
  acc.add(std::span<const std::uint8_t>(data).subspan(3));
  EXPECT_EQ(acc.finish(), internet_checksum(data));
}

TEST(Ethernet, RoundTrip) {
  EthernetHeader h;
  h.dst = MacAddr{{1, 2, 3, 4, 5, 6}};
  h.src = MacAddr{{7, 8, 9, 10, 11, 12}};
  h.ether_type = kEtherTypeIpv4;
  util::ByteWriter w;
  h.serialize(w);
  EXPECT_EQ(w.size(), EthernetHeader::kSize);
  util::ByteReader r(w.view());
  auto parsed = EthernetHeader::parse(r);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->ether_type, kEtherTypeIpv4);
}

TEST(Ethernet, TruncatedFails) {
  auto data = util::from_hex("0102030405");
  util::ByteReader r(data);
  EXPECT_FALSE(EthernetHeader::parse(r));
}

TEST(Ipv4, SerializeComputesValidChecksum) {
  Ipv4Header h;
  h.protocol = kIpProtoUdp;
  h.src = Ipv4Addr(10, 0, 0, 1);
  h.dst = Ipv4Addr(170, 114, 0, 10);
  util::ByteWriter w;
  h.serialize(w, 100);
  // Checksumming the emitted header must yield zero.
  EXPECT_EQ(internet_checksum(w.view()), 0);
  util::ByteReader r(w.view());
  auto parsed = Ipv4Header::parse(r);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->total_length, 120);
  EXPECT_EQ(parsed->protocol, kIpProtoUdp);
}

TEST(Ipv4, RejectsBadVersionAndIhl) {
  Ipv4Header h;
  util::ByteWriter w;
  h.serialize(w, 0);
  auto bytes = w.take();
  bytes[0] = 0x65;  // version 6
  util::ByteReader r1(bytes);
  EXPECT_FALSE(Ipv4Header::parse(r1));
  bytes[0] = 0x43;  // version 4, ihl 3 (< 5)
  util::ByteReader r2(bytes);
  EXPECT_FALSE(Ipv4Header::parse(r2));
}

TEST(Ipv4, OptionsAreSkipped) {
  // Hand-build a header with ihl=6 (4 option bytes).
  util::ByteWriter w;
  w.u8(0x46);
  w.u8(0);
  w.u16be(24 + 8);
  w.u16be(1);
  w.u16be(0);
  w.u8(64);
  w.u8(kIpProtoUdp);
  w.u16be(0);
  w.u32be(Ipv4Addr(1, 1, 1, 1).value());
  w.u32be(Ipv4Addr(2, 2, 2, 2).value());
  w.u32be(0x01020304);  // options
  w.u64be(0);           // payload start
  util::ByteReader r(w.view());
  auto parsed = Ipv4Header::parse(r);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->header_length(), 24u);
  EXPECT_EQ(r.position(), 24u);
}

TEST(Ipv4, FragmentFlagsDecode) {
  Ipv4Header h;
  h.flags_fragment = 0x2000 | 100;  // MF set, offset 100
  EXPECT_TRUE(h.more_fragments());
  EXPECT_FALSE(h.dont_fragment());
  EXPECT_EQ(h.fragment_offset(), 100);
}

TEST(Udp, RoundTripAndBadLength) {
  UdpHeader h;
  h.src_port = 40000;
  h.dst_port = 8801;
  util::ByteWriter w;
  h.serialize(w, 42);
  util::ByteReader r(w.view());
  auto parsed = UdpHeader::parse(r);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->src_port, 40000);
  EXPECT_EQ(parsed->dst_port, 8801);
  EXPECT_EQ(parsed->length, 50);

  auto bad = util::from_hex("0001 0002 0003 0000");  // length 3 < 8
  util::ByteReader rb(bad);
  EXPECT_FALSE(UdpHeader::parse(rb));
}

TEST(Tcp, RoundTripWithFlags) {
  TcpHeader h;
  h.src_port = 55555;
  h.dst_port = 443;
  h.seq = 0xdeadbeef;
  h.ack = 0x01020304;
  h.flags = kTcpAck | kTcpPsh;
  h.window = 4096;
  util::ByteWriter w;
  h.serialize(w);
  util::ByteReader r(w.view());
  auto parsed = TcpHeader::parse(r);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->seq, h.seq);
  EXPECT_EQ(parsed->ack, h.ack);
  EXPECT_TRUE(parsed->has(kTcpAck));
  EXPECT_TRUE(parsed->has(kTcpPsh));
  EXPECT_FALSE(parsed->has(kTcpSyn));
  EXPECT_EQ(parsed->header_length(), 20u);
}

TEST(Tcp, OptionsSkippedAndBadOffsetRejected) {
  TcpHeader h;
  util::ByteWriter w;
  h.serialize(w);
  auto bytes = w.take();
  bytes[12] = 0x60;  // data offset 6 -> 4 option bytes
  bytes.insert(bytes.end(), {1, 1, 1, 0});
  util::ByteReader r(bytes);
  auto parsed = TcpHeader::parse(r);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->header_length(), 24u);

  bytes[12] = 0x30;  // data offset 3 < 5
  util::ByteReader r2(bytes);
  EXPECT_FALSE(TcpHeader::parse(r2));
}

}  // namespace
}  // namespace zpm::net
